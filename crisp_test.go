package crisp

import (
	"bytes"
	"testing"

	"repro/internal/data"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// TestPublicAPIEndToEnd exercises the facade exactly as README's quickstart
// does: dataset → model → pretrain → personalize.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds := NewDataset(data.Config{
		Name: "api-test", NumClasses: 8, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: 21,
	})
	model := NewModel(ResNet, ds.NumClasses, 1, 22)
	Pretrain(model, ds, 3, 10, 23)

	user := ds.UserClasses(24, 3)
	cfg := DefaultConfig(0.85)
	cfg.BlockSize = 4
	cfg.Iterations = 2
	cfg.FinetuneEpochs = 1
	cfg.BatchSize = 16
	cfg.LR = 0.01

	res := Personalize(model, ds, user, cfg)
	if res.Report.AchievedSparsity < 0.78 {
		t.Fatalf("achieved sparsity %v", res.Report.AchievedSparsity)
	}
	if res.Accuracy < 0 || res.Accuracy > 1 {
		t.Fatalf("accuracy %v", res.Accuracy)
	}
	if len(res.Classes) != 3 {
		t.Fatalf("classes %v", res.Classes)
	}
	// The pruned model must satisfy the hybrid invariants end to end.
	for _, p := range model.PrunableParams() {
		if err := sparsity.VerifyNM(p.MaskMatrixView(), cfg.NM); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

// TestFacadeServerWorkflow exercises the serving facade: pretrain once,
// then personalize and predict through the cached-engine server.
func TestFacadeServerWorkflow(t *testing.T) {
	ds := NewDataset(data.Config{
		Name: "server-test", NumClasses: 8, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: 41,
	})
	model := NewModel(ResNet, ds.NumClasses, 1, 42)
	Pretrain(model, ds, 2, 8, 43)

	cfg := DefaultConfig(0.7)
	cfg.BlockSize = 4
	cfg.Iterations = 1
	cfg.FinetuneEpochs = 1
	cfg.BatchSize = 8
	cfg.LR = 0.01
	srv, err := NewServer(model, ResNet, 1, 42, ds, ServerConfig{
		Prune: cfg, TrainPerClass: 6, TestPerClass: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	user := []int{2, 5}
	p, cached, err := srv.Personalize(user)
	if err != nil {
		t.Fatal(err)
	}
	if cached || p.Report.AchievedSparsity <= 0 {
		t.Fatalf("personalization %+v (cached=%v)", p.Report, cached)
	}
	if _, cached, _ = srv.Personalize([]int{5, 2}); !cached {
		t.Fatal("reordered class set must hit the cache")
	}
	test := ds.MakeSplit("server-predict", user, 4)
	preds, err := srv.Predict(user, test.X)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != test.Len() {
		t.Fatalf("%d predictions for %d samples", len(preds), test.Len())
	}
	// The base model must be untouched by personalization.
	for _, prm := range model.Params() {
		if prm.Mask != nil {
			t.Fatalf("%s: serving masked the universal model", prm.Name)
		}
	}
}

// TestFacadeWarmRestart checks the durable-serving facade: a server with
// SnapshotDir persists its personalizations, and a second NewServer on the
// same directory restores them without running any pruning jobs.
func TestFacadeWarmRestart(t *testing.T) {
	ds := NewDataset(data.Config{
		Name: "warm-test", NumClasses: 8, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: 51,
	})
	model := NewModel(ResNet, ds.NumClasses, 1, 52)
	Pretrain(model, ds, 2, 8, 53)

	cfg := DefaultConfig(0.7)
	cfg.BlockSize = 4
	cfg.Iterations = 1
	cfg.FinetuneEpochs = 1
	cfg.BatchSize = 8
	cfg.LR = 0.01
	scfg := ServerConfig{Prune: cfg, TrainPerClass: 6, TestPerClass: 4, SnapshotDir: t.TempDir()}

	srv1, err := NewServer(model, ResNet, 1, 52, ds, scfg)
	if err != nil {
		t.Fatal(err)
	}
	user := []int{2, 5}
	if _, _, err := srv1.Personalize(user); err != nil {
		t.Fatal(err)
	}
	test := ds.MakeSplit("warm-predict", user, 4)
	before, err := srv1.Predict(user, test.X)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv1.Flush(); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	// NewServer warm-restarts from the snapshot directory by itself.
	srv2, err := NewServer(model, ResNet, 1, 52, ds, scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	st := srv2.Stats()
	if st.RestoreHits != 1 || st.Personalizations != 0 {
		t.Fatalf("facade warm restart stats %+v (want 1 restore hit, 0 pruning jobs)", st)
	}
	after, err := srv2.Predict(user, test.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("prediction %d diverged across restart: %d vs %d", i, before[i], after[i])
		}
	}
	if st := srv2.Stats(); st.Personalizations != 0 {
		t.Fatalf("restored engine re-pruned: %+v", st)
	}
}

// TestFacadeMemoryBudget exercises the tiered cache through the public
// facade alone: a byte budget demotes the LRU tenant to a warm delta
// record, and its next request promotes it back with identical
// predictions — no internal/serve import required.
func TestFacadeMemoryBudget(t *testing.T) {
	ds := NewDataset(data.Config{
		Name: "budget-test", NumClasses: 8, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: 61,
	})
	model := NewModel(ResNet, ds.NumClasses, 1, 62)
	Pretrain(model, ds, 2, 8, 63)

	cfg := DefaultConfig(0.7)
	cfg.BlockSize = 4
	cfg.Iterations = 1
	cfg.FinetuneEpochs = 1
	cfg.BatchSize = 8
	cfg.LR = 0.01
	srv, err := NewServer(model, ResNet, 1, 62, ds, ServerConfig{
		Prune: cfg, TrainPerClass: 6, TestPerClass: 4,
		CacheSize:         1,
		MemoryBudgetBytes: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	user := []int{2, 5}
	test := ds.MakeSplit("budget-predict", user, 4)
	before, err := srv.Predict(user, test.X)
	if err != nil {
		t.Fatal(err)
	}
	// A second tenant demotes the first out of the one-engine hot tier.
	if _, _, err := srv.Personalize([]int{1, 4}); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Demotions != 1 || st.WarmEntries != 1 {
		t.Fatalf("budget did not tier: %+v", st)
	}
	if st.MemoryBudgetBytes != 1<<30 {
		t.Fatalf("budget not echoed in stats: %+v", st)
	}
	after, err := srv.Predict(user, test.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("prediction %d diverged across demote/promote: %d vs %d", i, before[i], after[i])
		}
	}
	if st := srv.Stats(); st.Promotions != 1 || st.PromoteErrors != 0 {
		t.Fatalf("warm promotion not taken: %+v", st)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(0.9)
	if cfg.Target != 0.9 {
		t.Fatalf("target %v", cfg.Target)
	}
	if cfg.NM != (NM{N: 2, M: 4}) {
		t.Fatalf("default NM %v", cfg.NM)
	}
}

// TestDeployRejectsInvalidConfig checks Deploy reports invalid options as
// an error instead of panicking (WithDefaults panics; Deploy validates
// first).
func TestDeployRejectsInvalidConfig(t *testing.T) {
	model := NewModel(ResNet, 4, 1, 1)
	if _, err := Deploy(model, Config{Target: 1.5}); err == nil {
		t.Fatal("invalid target must surface as an error")
	}
	if _, err := Deploy(model, Config{Momentum: 1.0}); err == nil {
		t.Fatal("invalid momentum must surface as an error")
	}
}

func TestDatasetConfigsExported(t *testing.T) {
	in := SynthImageNet()
	if in.NumClasses != 1000 {
		t.Fatalf("synth imagenet classes %d", in.NumClasses)
	}
	cf := SynthCIFAR()
	if cf.NumClasses != 100 {
		t.Fatalf("synth cifar classes %d", cf.NumClasses)
	}
}

func TestFacadeDeployWorkflow(t *testing.T) {
	ds := NewDataset(data.Config{
		Name: "deploy-test", NumClasses: 8, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: 31,
	})
	model := NewModel(ResNet, ds.NumClasses, 1, 32)
	Pretrain(model, ds, 2, 8, 33)
	user := ds.UserClasses(34, 3)
	cfg := DefaultConfig(0.8)
	cfg.BlockSize = 4
	cfg.Iterations = 2
	cfg.FinetuneEpochs = 1
	cfg.BatchSize = 16
	cfg.LR = 0.01
	Personalize(model, ds, user, cfg)

	// Checkpoint round trip through the facade.
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, model); err != nil {
		t.Fatal(err)
	}
	restored := NewModel(ResNet, ds.NumClasses, 1, 99)
	if err := LoadCheckpoint(&buf, restored); err != nil {
		t.Fatal(err)
	}

	// Deployment: compression + bit-identical sparse inference.
	dep, err := Deploy(restored, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Compression <= 1.5 {
		t.Fatalf("compression %v too small at κ=0.8", dep.Compression)
	}
	test := ds.MakeSplit("user-test", user, 4)
	x, _ := test.Sample(0)
	dense := restored.Logits(x, false)
	sparse := dep.Engine.Logits(x)
	if !tensor.Equal(dense, sparse, 1e-9) {
		t.Fatal("deployed engine disagrees with restored model")
	}
}

// TestFacadeQuantizedServing: the public int8 serving path — a server
// configured with PrecisionInt8 personalizes, serves predictions from
// quantized engines, and reports the measured agreement per tenant and in
// the aggregate stats.
func TestFacadeQuantizedServing(t *testing.T) {
	ds := NewDataset(data.Config{
		Name: "server-int8-test", NumClasses: 8, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: 44,
	})
	model := NewModel(ResNet, ds.NumClasses, 1, 45)
	Pretrain(model, ds, 2, 8, 46)

	cfg := DefaultConfig(0.7)
	cfg.BlockSize = 4
	cfg.Iterations = 1
	cfg.FinetuneEpochs = 1
	cfg.BatchSize = 8
	cfg.LR = 0.01
	srv, err := NewServer(model, ResNet, 1, 45, ds, ServerConfig{
		Prune: cfg, TrainPerClass: 6, TestPerClass: 4,
		Precision: PrecisionInt8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	user := []int{2, 5}
	p, _, err := srv.Personalize(user)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Engine().Precision(); got != PrecisionInt8 {
		t.Fatalf("engine precision %v, want int8", got)
	}
	if p.Agreement <= 0 || p.Agreement > 1 {
		t.Fatalf("agreement %v outside (0, 1]", p.Agreement)
	}
	test := ds.MakeSplit("server-int8-predict", user, 4)
	preds, err := srv.Predict(user, test.X)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != test.Len() {
		t.Fatalf("%d predictions for %d samples", len(preds), test.Len())
	}
	st := srv.Stats()
	if st.Precision != "int8" || st.AgreementSamples == 0 {
		t.Fatalf("stats %+v", st)
	}
}
