// Quickstart: prune a small model with CRISP in a few lines.
//
// A universal 20-class model is pre-trained on a synthetic dataset, then
// personalized to 4 user classes at 85% sparsity with the paper's hybrid
// 2:4 + block pattern.
package main

import (
	"fmt"

	crisp "repro"
	"repro/internal/data"
)

func main() {
	// 1. A synthetic dataset (stands in for ImageNet; see DESIGN.md).
	ds := crisp.NewDataset(data.Config{
		Name: "quickstart", NumClasses: 20, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: 42,
	})

	// 2. A universal model over all 20 classes.
	model := crisp.NewModel(crisp.ResNet, ds.NumClasses, 2, 7)
	fmt.Println("pre-training the universal model...")
	crisp.Pretrain(model, ds, 5, 12, 8)

	// 3. Personalize: the user only ever sees 4 classes.
	user := ds.UserClasses(9, 4)
	cfg := crisp.DefaultConfig(0.85) // 85% global sparsity, 2:4 + blocks
	cfg.BlockSize = 4
	cfg.Iterations = 3
	cfg.FinetuneEpochs = 2

	fmt.Printf("personalizing to classes %v...\n", user)
	res := crisp.Personalize(model, ds, user, cfg)

	// 4. Results.
	fmt.Println()
	fmt.Println(res.Report.String())
	fmt.Printf("held-out accuracy on the user's classes: %.1f%%\n", 100*res.Accuracy)
	fmt.Printf("model FLOPs reduced to %.0f%% of dense\n", 100*res.Report.FLOPsRatio)
}
