// Tiered serving: many tenants under one memory budget. A full-copy
// engine cache holds a complete pruned model per tenant; with
// ServerConfig.MemoryBudgetBytes set, each tenant is instead a delta over
// the shared universal weights, and the cache becomes a hot/warm/cold
// hierarchy — compiled engines, compact delta records, disk snapshots.
// This example personalizes more tenants than the full-copy footprint
// would allow, shows them all staying resident, and round-trips one
// tenant through demotion and promotion with identical predictions.
package main

import (
	"fmt"

	crisp "repro"
	"repro/internal/data"
)

func main() {
	ds := crisp.NewDataset(data.Config{
		Name: "tiered", NumClasses: 12, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: 17,
	})

	fmt.Println("pre-training the universal model (once)...")
	model := crisp.NewModel(crisp.ResNet, ds.NumClasses, 1, 18)
	crisp.Pretrain(model, ds, 5, 12, 19)

	cfg := crisp.DefaultConfig(0.85)
	cfg.BlockSize = 4
	cfg.Iterations = 2
	cfg.FinetuneEpochs = 2
	cfg.BatchSize = 8
	cfg.LR = 0.01

	tenants := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}, {10, 11}}

	// Pass 1: no budget — every tenant is a full-copy hot engine.
	// Measures the baseline footprint the budget will undercut.
	full, err := crisp.NewServer(model, crisp.ResNet, 1, 18, ds, crisp.ServerConfig{
		Prune: cfg, TrainPerClass: 12, TestPerClass: 6,
	})
	if err != nil {
		panic(err)
	}
	for _, u := range tenants {
		if _, _, err := full.Personalize(u); err != nil {
			panic(err)
		}
	}
	fullBytes := full.Stats().HotBytes
	full.Close()
	fmt.Printf("full-copy cache: %d tenants in %d bytes\n", len(tenants), fullBytes)

	// Pass 2: the same tenants under a third of that budget.
	srv, err := crisp.NewServer(model, crisp.ResNet, 1, 18, ds, crisp.ServerConfig{
		Prune: cfg, TrainPerClass: 12, TestPerClass: 6,
		MemoryBudgetBytes: fullBytes / 3,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	for _, u := range tenants {
		if _, _, err := srv.Personalize(u); err != nil {
			panic(err)
		}
	}
	st := srv.Stats()
	resident := st.HotBytes + st.WarmBytes
	fmt.Printf("tiered cache:    %d hot + %d warm tenants in %d bytes (%.1fx denser)\n",
		st.CachedEngines, st.WarmEntries, resident, float64(fullBytes)/float64(resident))

	// A warm tenant promotes back bit-identically on its next request.
	probe := tenants[0]
	split := ds.MakeSplit("tiered-probe", probe, 4)
	preds, err := srv.Predict(probe, split.X)
	if err != nil {
		panic(err)
	}
	correct := 0
	for i, p := range preds {
		if p == split.Labels[i] {
			correct++
		}
	}
	st = srv.Stats()
	fmt.Printf("tenant %v promoted from the warm tier (%d promotions, %d errors): %d/%d correct\n",
		probe, st.Promotions, st.PromoteErrors, correct, len(preds))
}
