// Personalization scenario: the paper's motivating workload. A "camera
// roll" user encounters only a handful of ImageNet classes; we compare
// CRISP against the dense fine-tuned reference and the OCAP/CAPNN-style
// channel-pruning baseline at a matched sparsity target, for several
// user-class counts.
package main

import (
	"fmt"
	"math/rand"

	crisp "repro"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
)

func main() {
	ds := crisp.NewDataset(data.Config{
		Name: "personalization", NumClasses: 30, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: 5,
	})

	fmt.Println("pre-training the universal model (once)...")
	universal := crisp.NewModel(crisp.ResNet, ds.NumClasses, 2, 11)
	crisp.Pretrain(universal, ds, 5, 12, 12)

	fmt.Printf("%-8s  %-10s  %-9s  %-9s  %-6s\n", "classes", "method", "accuracy", "sparsity", "flops")
	for _, k := range []int{2, 5, 10} {
		user := ds.UserClasses(int64(100+k), k)
		train := ds.MakeSplit("user-train", user, 48)
		test := ds.MakeSplit("user-test", user, 16)
		target := 0.9
		if k >= 10 {
			target = 0.85
		}

		// Dense fine-tuned reference with the same epoch budget as pruning.
		ref := crisp.NewModel(crisp.ResNet, ds.NumClasses, 2, 11)
		universal.CloneWeightsTo(ref)
		opt := nn.NewSGD(0.01, 0.9, 4e-5)
		pruner.Finetune(ref, train, 10, 16, opt, rand.New(rand.NewSource(int64(k))))
		report(k, "dense-ft", ref.Accuracy(test.X, test.Labels), 0, 1)

		// CRISP.
		m := crisp.NewModel(crisp.ResNet, ds.NumClasses, 2, 11)
		universal.CloneWeightsTo(m)
		cfg := crisp.DefaultConfig(target)
		cfg.BlockSize = 4
		cfg.Iterations = 3
		cfg.FinetuneEpochs = 2
		cfg.FinalFinetuneEpochs = 4
		rep := pruner.NewCRISP(cfg).Prune(m, train)
		report(k, "crisp", m.Accuracy(test.X, test.Labels), rep.AchievedSparsity, rep.FLOPsRatio)

		// Channel-pruning baseline (OCAP/CAPNN-style) at the same target.
		c := crisp.NewModel(crisp.ResNet, ds.NumClasses, 2, 11)
		universal.CloneWeightsTo(c)
		ccfg := crisp.DefaultConfig(target)
		ccfg.Iterations = 3
		ccfg.FinetuneEpochs = 2
		ccfg.FinalFinetuneEpochs = 4
		crep := pruner.NewChannel(ccfg).Prune(c, train)
		report(k, "channel", c.Accuracy(test.X, test.Labels), crep.AchievedSparsity, crep.FLOPsRatio)
	}
	_ = models.ResNet
}

func report(k int, method string, acc, sparsity, flops float64) {
	fmt.Printf("%-8d  %-10s  %-9.3f  %-9.3f  %-6.3f\n", k, method, acc, sparsity, flops)
}
