// Storage-format comparison: encode a real hybrid-sparse weight matrix in
// CSR, ELLPACK, Blocked-ELLPACK and the CRISP format, verify they all
// round-trip and multiply identically, and compare metadata overheads —
// then scale the comparison analytically to full-size ResNet-50 layers
// (the paper's Fig. 4 right).
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/format"
	"repro/internal/models"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

func main() {
	// Build a hybrid-sparse matrix the way CRISP would: 2:4 N:M plus
	// rank-column-balanced block pruning.
	rng := rand.New(rand.NewSource(3))
	rows, cols, b := 64, 256, 16
	nm := sparsity.NM{N: 2, M: 4}

	scores := tensor.New(rows, cols)
	for i := range scores.Data {
		scores.Data[i] = math.Abs(rng.NormFloat64()) + 0.01
	}
	mask := tensor.New(rows, cols)
	sparsity.ApplyNM(mask, scores, nm)
	g := sparsity.NewBlockGrid(rows, cols, b)
	rcs := sparsity.RankColumns(sparsity.BlockScores(tensor.Mul(scores, mask), g))
	for i := 0; i < g.GridCols()/2; i++ { // prune half the block columns
		sparsity.PruneRankColumn(mask, g, rcs[i])
	}
	w := tensor.Randn(rng, 1, rows, cols)
	w.MulInPlace(mask)

	fmt.Printf("matrix %dx%d, %s + B=%d blocks, sparsity %.1f%%\n\n",
		rows, cols, nm, b, 100*(1-sparsity.Density(mask)))

	x := tensor.Randn(rng, 1, cols, 8)
	want := tensor.MatMul(w, x)

	encs := []format.Encoded{format.EncodeCSR(w), format.EncodeELLPACK(w)}
	if be, err := format.EncodeBlockedELL(w, b); err == nil {
		encs = append(encs, be)
	}
	ce, err := format.EncodeCRISP(w, b, nm)
	if err != nil {
		panic(err)
	}
	encs = append(encs, ce)

	fmt.Printf("%-12s %14s %12s %10s %8s\n", "format", "metadata(bits)", "data(bits)", "vs-crisp", "spmm-ok")
	for _, e := range encs {
		ok := tensor.Equal(e.MatMul(x), want, 1e-9) && tensor.Equal(e.Decode(), w, 0)
		fmt.Printf("%-12s %14d %12d %9.1fx %8v\n",
			e.Name(), e.MetadataBits(), e.DataBits(8),
			float64(e.MetadataBits())/float64(ce.MetadataBits()), ok)
	}

	fmt.Println("\nanalytical metadata on full-size ResNet-50 layers (B=32, half block cols kept):")
	fmt.Printf("%-12s %12s %12s %12s\n", "layer", "crisp", "csr/crisp", "ellpack/crisp")
	const bigB = 32
	for _, l := range models.RepresentativeResNet50Layers() {
		m, k, _ := l.GEMMDims()
		if k < bigB || m < bigB {
			continue
		}
		grid := sparsity.NewBlockGrid(m, k, bigB)
		keptPerRow := grid.GridCols() / 2
		nnzPerRow := keptPerRow * bigB * nm.N / nm.M
		cr := format.CRISPMetadataBits(m, k, bigB, keptPerRow, nm)
		csr := format.CSRMetadataBits(m, k, m*nnzPerRow)
		ell := format.ELLPACKMetadataBits(m, nnzPerRow)
		fmt.Printf("%-12s %12d %11.1fx %12.1fx\n",
			l.Name, cr, float64(csr)/float64(cr), float64(ell)/float64(cr))
	}
}
