// Transformer extension: the paper's stated future work, demonstrated. A
// small vision transformer (patch embedding, two pre-norm encoder blocks
// with multi-head attention and MLPs) is pre-trained, then personalized
// with CRISP's hybrid N:M + block pattern — the same code path the conv
// models use, because every projection is an ordinary prunable matrix.
package main

import (
	"fmt"

	crisp "repro"
	"repro/internal/data"
	"repro/internal/sparsity"
)

func main() {
	ds := crisp.NewDataset(data.Config{
		Name: "vit-demo", NumClasses: 16, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: 17,
	})

	model := crisp.NewModel(crisp.TransformerFamily, ds.NumClasses, 2, 18)
	fmt.Println("pre-training the vision transformer...")
	crisp.Pretrain(model, ds, 6, 12, 19)

	user := ds.UserClasses(20, 4)
	fmt.Printf("personalizing to classes %v with 2:4 + block sparsity...\n", user)
	cfg := crisp.DefaultConfig(0.8)
	cfg.BlockSize = 4
	cfg.Iterations = 3
	cfg.FinetuneEpochs = 2

	res := crisp.Personalize(model, ds, user, cfg)
	fmt.Println()
	fmt.Println(res.Report.String())
	fmt.Printf("held-out accuracy: %.1f%%\n", 100*res.Accuracy)

	fmt.Println("\nattention/MLP projection sparsity:")
	for _, ls := range res.Report.Layers {
		fmt.Printf("  %-20s %4dx%-4d sparsity %.3f\n", ls.Name, ls.Rows, ls.Cols, ls.Sparsity)
	}

	// The masks satisfy the same hardware invariants as the conv models.
	for _, p := range model.PrunableParams() {
		if err := sparsity.VerifyNM(p.MaskMatrixView(), cfg.NM); err != nil {
			panic(err)
		}
	}
	fmt.Println("\nall projections satisfy the 2:4 invariant — CRISP-STC ready")
}
