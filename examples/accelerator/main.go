// Accelerator comparison: sweep the representative ResNet-50 layers (exact
// full-size ImageNet shapes) across the four simulated architectures —
// dense, NVIDIA-STC, DSTC and CRISP-STC — reproducing the structure of the
// paper's Fig. 8.
package main

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/models"
	"repro/internal/sparsity"
)

func main() {
	hw := accel.EdgeHW()
	e := energy.Default()
	dense := accel.NewDense(hw, e)
	archs := []accel.Arch{
		accel.NewNvidiaSTC(hw, e),
		accel.NewDSTC(hw, e),
		accel.NewCRISPSTC(hw, e),
	}

	nm := sparsity.NM{N: 2, M: 4}
	fmt.Printf("hybrid sparsity: %s, kept block columns 30%%, B=64 (≈85%% weight sparsity)\n\n", nm)
	fmt.Printf("%-12s %-12s %10s %9s %12s %9s\n", "layer", "arch", "cycles", "speedup", "energy(uJ)", "en-gain")

	for _, l := range models.RepresentativeResNet50Layers() {
		base := dense.Simulate(l, accel.Dense())
		fmt.Printf("%-12s %-12s %10.0f %8.1fx %12.1f %8.1fx\n",
			l.Name, "dense", base.Cycles, 1.0, base.EnergyUJ(), 1.0)
		for _, a := range archs {
			sp := accel.Sparsity{NM: nm, KeptColFrac: 0.3, BlockSize: 64, ActDensity: 1}
			if a.Name() == "dstc" {
				sp.ActDensity = 0.6 // DSTC also exploits activation sparsity
			}
			p := a.Simulate(l, sp)
			fmt.Printf("%-12s %-12s %10.0f %8.1fx %12.1f %8.1fx\n",
				l.Name, a.Name(), p.Cycles, base.Cycles/p.Cycles, p.EnergyUJ(), base.EnergyUJ()/p.EnergyUJ())
		}
		fmt.Println()
	}

	fmt.Println("block-size sweep on conv4_2.b (CRISP-STC, 2:4, 30% kept):")
	crisp := accel.NewCRISPSTC(hw, e)
	var conv models.LayerShape
	for _, l := range models.RepresentativeResNet50Layers() {
		if l.Name == "conv4_2.b" {
			conv = l
		}
	}
	base := dense.Simulate(conv, accel.Dense())
	for _, b := range []int{16, 32, 64} {
		p := crisp.Simulate(conv, accel.Sparsity{NM: nm, KeptColFrac: 0.3, BlockSize: b, ActDensity: 1})
		fmt.Printf("  B=%-3d  cycles %10.0f  speedup %5.1fx  energy %8.1f uJ\n",
			b, p.Cycles, base.Cycles/p.Cycles, p.EnergyUJ())
	}
}
