package crisp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/energy"
	"repro/internal/exp"
	"repro/internal/format"
	"repro/internal/inference"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/serve"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// Figure/table benchmarks: each regenerates one of the paper's evaluation
// artifacts at quick scale (DESIGN.md §4 maps benchmarks to figures; see
// EXPERIMENTS.md for recorded outputs). They report one op per full
// regeneration.

func benchHarness() *exp.Harness {
	return exp.NewHarness(exp.Config{Scale: exp.Quick, Seed: 1})
}

// BenchmarkFig1_NMRatios regenerates Fig. 1 (accuracy at N:M ∈ {1,2,3}:4
// for the three model families).
func BenchmarkFig1_NMRatios(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, _ := h.Figure1()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig2_LayerSparsity regenerates Fig. 2 (layer-wise sparsity
// distribution after global CRISP pruning).
func BenchmarkFig2_LayerSparsity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, _ := h.Figure2()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig3_CRISPvsBlock regenerates Fig. 3 (CRISP vs block pruning
// across sparsity levels).
func BenchmarkFig3_CRISPvsBlock(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, _ := h.Figure3()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig4_Metadata regenerates Fig. 4 right (metadata overhead of
// CSR/ELLPACK vs the CRISP format on full-size layers).
func BenchmarkFig4_Metadata(b *testing.B) {
	b.ReportAllocs()
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		rows, _ := h.Figure4()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig7_AccuracyVsClasses regenerates Fig. 7 (accuracy and FLOPs
// ratio vs the number of user classes, CRISP vs channel pruning vs dense).
func BenchmarkFig7_AccuracyVsClasses(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, _ := h.Figure7()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig8_SpeedupEnergy regenerates Fig. 8 (layer-wise speedup and
// energy of CRISP-STC vs NVIDIA-STC, DSTC and dense on ResNet-50).
func BenchmarkFig8_SpeedupEnergy(b *testing.B) {
	b.ReportAllocs()
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		rows, _ := h.Figure8()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAblation_Iterative regenerates ablation A (one-shot vs
// iterative pruning).
func BenchmarkAblation_Iterative(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, _ := h.AblationIterative()
		if len(rows) != 2 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkAblation_Saliency regenerates ablation B (class-aware vs
// magnitude saliency).
func BenchmarkAblation_Saliency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, _ := h.AblationSaliency()
		if len(rows) != 2 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkAblation_Balance regenerates ablation C (balanced vs
// unconstrained block pruning with load-imbalance accounting).
func BenchmarkAblation_Balance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, _ := h.AblationBalance()
		if len(rows) != 2 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkExt_Transformer regenerates the transformer extension experiment
// (the paper's future-work direction: CRISP on attention architectures).
func BenchmarkExt_Transformer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, _ := h.ExtTransformer()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkExt_NetworkTable regenerates the end-to-end network latency and
// energy table (whole-network sums over the full-size shape tables).
func BenchmarkExt_NetworkTable(b *testing.B) {
	b.ReportAllocs()
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		rows, _ := h.NetworkTable()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkMem_ModelSize regenerates the deployed-model-size table (the
// paper's memory-consumption claim, quantified per model family).
func BenchmarkMem_ModelSize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, _ := h.MemoryTable()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// Micro-benchmarks of the core kernels.

// BenchmarkGEMM measures the parallel dense GEMM on a conv-sized problem.
func BenchmarkGEMM(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	m, k, n := 128, 576, 784
	a := tensor.Randn(rng, 1, m, k)
	x := tensor.Randn(rng, 1, k, n)
	c := make([]float64, m*n)
	b.ReportMetric(float64(2*m*k*n), "flop/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(false, false, m, n, k, 1, a.Data, x.Data, 0, c)
	}
}

// benchHybridMatrix builds a CRISP-invariant sparse matrix for the format
// and kernel benchmarks.
func benchHybridMatrix(rows, cols, blk int, nm sparsity.NM) *tensor.Tensor {
	rng := rand.New(rand.NewSource(2))
	scores := tensor.New(rows, cols)
	for i := range scores.Data {
		scores.Data[i] = math.Abs(rng.NormFloat64()) + 0.01
	}
	mask := tensor.New(rows, cols)
	sparsity.ApplyNM(mask, scores, nm)
	g := sparsity.NewBlockGrid(rows, cols, blk)
	rcs := sparsity.RankColumns(sparsity.BlockScores(tensor.Mul(scores, mask), g))
	for i := 0; i < g.GridCols()/2; i++ {
		sparsity.PruneRankColumn(mask, g, rcs[i])
	}
	w := tensor.Randn(rng, 1, rows, cols)
	w.MulInPlace(mask)
	return w
}

// BenchmarkSpMM_CRISPFormat measures the CRISP-format sparse kernel.
func BenchmarkSpMM_CRISPFormat(b *testing.B) {
	b.ReportAllocs()
	nm := sparsity.NM{N: 2, M: 4}
	w := benchHybridMatrix(128, 512, 16, nm)
	e, err := format.EncodeCRISP(w, 16, nm)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := tensor.Randn(rng, 1, 512, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MatMul(x)
	}
}

// BenchmarkSpMM_CSR measures the CSR sparse kernel on the same matrix.
func BenchmarkSpMM_CSR(b *testing.B) {
	b.ReportAllocs()
	w := benchHybridMatrix(128, 512, 16, sparsity.NM{N: 2, M: 4})
	e := format.EncodeCSR(w)
	rng := rand.New(rand.NewSource(3))
	x := tensor.Randn(rng, 1, 512, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MatMul(x)
	}
}

// benchPlanPair compiles the float and int8 plans of one memory-bound
// hybrid-sparse matrix plus a batch-16 activation block — the SpMM
// precision shoot-out fixture (512×4096 at ~10% density: the gather walks
// far more activation memory than fits in cache lines per row, so the
// kernels are bound by operand traffic, which is exactly where 8-bit
// operands pay).
func benchPlanPair(b *testing.B) (*format.Plan, *format.QuantPlan, *tensor.Tensor) {
	b.Helper()
	w := benchHybridMatrix(512, 4096, 16, sparsity.NM{N: 2, M: 4})
	p := format.EncodeCSR(w).Compile()
	q, err := p.Quantize()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	x := tensor.Randn(rng, 1, 4096, 16)
	return p, q, x
}

// BenchmarkSpMM_PlanFloatBatch16 is the float compiled-plan kernel on the
// batch-16 memory-bound shape — the reference the int8 kernel must meet.
// Output and scratch live outside the loop, so steady state is
// allocation-free up to the row-parallel fan-out.
func BenchmarkSpMM_PlanFloatBatch16(b *testing.B) {
	b.ReportAllocs()
	p, _, x := benchPlanPair(b)
	out := tensor.New(p.Rows, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MatMulInto(x, out)
	}
}

// BenchmarkSpMM_PlanInt8Batch16 is the quantized kernel on the same shape:
// per-column activation quantization + SWAR integer MAC + dequantizing
// store, with recycled scratch. The acceptance bar is ns/op at or below
// the float plan's.
func BenchmarkSpMM_PlanInt8Batch16(b *testing.B) {
	b.ReportAllocs()
	_, q, x := benchPlanPair(b)
	out := tensor.New(q.Rows, 16)
	s := q.Scratch(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.MatMulInto(x, out, s)
	}
}

// BenchmarkSpMM_BlockedFloatBatch16 pins the register-blocked, cache-tiled
// float kernel on the plan-pair shape: the explicit 64×128 tiling bypasses
// the auto heuristic (which would pick scalar at this batch width), so the
// blocked outer loop + panel microkernels are measured in isolation against
// BenchmarkSpMM_PlanFloatBatch16's dispatch. Bit-identical output is
// enforced separately by the conformance harness (internal/format).
func BenchmarkSpMM_BlockedFloatBatch16(b *testing.B) {
	b.ReportAllocs()
	p, _, x := benchPlanPair(b)
	p.SetTiling(format.Tiling{RowTile: 64, ColTile: 128})
	out := tensor.New(p.Rows, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MatMulInto(x, out)
	}
}

// BenchmarkSpMM_BlockedInt8Batch16 is the quantized kernel riding the same
// blocked outer loops: the packed SWAR accumulators stay in registers
// across each column tile instead of round-tripping the scratch slabs.
func BenchmarkSpMM_BlockedInt8Batch16(b *testing.B) {
	b.ReportAllocs()
	_, q, x := benchPlanPair(b)
	q.SetTiling(format.Tiling{RowTile: 64, ColTile: 128})
	out := tensor.New(q.Rows, 16)
	s := q.Scratch(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.MatMulInto(x, out, s)
	}
}

// BenchmarkSpMM_CRISPFastPath measures the CRISP-structure-specialized
// blocked kernel: the hybrid matrix compiles with a proved uniform span
// width, so the blocked path runs its fixed-trip-count microkernel loop
// (blockedTileUniform) with no per-row span bookkeeping, at the
// single-panel batch width where the blocked family wins outright.
func BenchmarkSpMM_CRISPFastPath(b *testing.B) {
	b.ReportAllocs()
	w := benchHybridMatrix(512, 512, 16, sparsity.NM{N: 2, M: 4})
	e, err := format.EncodeCRISP(w, 16, sparsity.NM{N: 2, M: 4})
	if err != nil {
		b.Fatal(err)
	}
	p := e.Compile()
	if p.UniformSpan() == 0 {
		b.Fatal("bench matrix did not compile to a uniform-span plan")
	}
	rng := rand.New(rand.NewSource(6))
	x := tensor.Randn(rng, 1, 512, 8)
	out := tensor.New(p.Rows, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MatMulInto(x, out)
	}
}

// BenchmarkApplyNM measures N:M mask generation on a large layer.
func BenchmarkApplyNM(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(4))
	scores := tensor.Randn(rng, 1, 512, 4608)
	mask := tensor.New(512, 4608)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparsity.ApplyNM(mask, scores, sparsity.NM{N: 2, M: 4})
	}
}

// BenchmarkRankColumns measures the rank-column aggregation (Algorithm 1
// lines 6–7) on a full-size layer grid.
func BenchmarkRankColumns(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(5))
	bs := tensor.Randn(rng, 1, 32, 72) // 2048×4608 at B=64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparsity.RankColumns(bs)
	}
}

// BenchmarkAccelSimulate measures the full four-architecture layer sweep.
func BenchmarkAccelSimulate(b *testing.B) {
	b.ReportAllocs()
	hw := accel.EdgeHW()
	e := energy.Default()
	archs := []accel.Arch{
		accel.NewDense(hw, e), accel.NewNvidiaSTC(hw, e),
		accel.NewDSTC(hw, e), accel.NewCRISPSTC(hw, e),
	}
	layers := models.ResNet50Shapes()
	sp := accel.Sparsity{NM: sparsity.NM{N: 2, M: 4}, KeptColFrac: 0.3, BlockSize: 64, ActDensity: 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range layers {
			for _, a := range archs {
				a.Simulate(l, sp)
			}
		}
	}
}

// BenchmarkInference_MaskedDense measures inference through masked dense
// GEMMs (the training-time representation).
func BenchmarkInference_MaskedDense(b *testing.B) {
	b.ReportAllocs()
	clf, x := benchPrunedModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.Logits(x, false)
	}
}

// BenchmarkInference_SparseEngine measures inference through the CRISP
// storage format's SpMM kernels (the deployed representation).
func BenchmarkInference_SparseEngine(b *testing.B) {
	b.ReportAllocs()
	clf, x := benchPrunedModel(b)
	eng, err := inference.New(clf, 4, sparsity.NM{N: 2, M: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Logits(x)
	}
}

// benchSamples splits the bench batch into single-sample tensors.
func benchSamples(x *tensor.Tensor) []*tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	xs := make([]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		xs[i] = tensor.FromSlice(x.Data[i*c*h*w:(i+1)*c*h*w], 1, c, h, w)
	}
	return xs
}

// BenchmarkInference_SparsePerSample16 serves a 16-sample workload one
// sample at a time: 16 sparse forward passes, 16 SpMMs per layer.
func BenchmarkInference_SparsePerSample16(b *testing.B) {
	b.ReportAllocs()
	clf, x := benchPrunedModel(b)
	eng, err := inference.New(clf, 4, sparsity.NM{N: 2, M: 4})
	if err != nil {
		b.Fatal(err)
	}
	xs := benchSamples(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range xs {
			eng.Logits(s)
		}
	}
}

// BenchmarkInference_SparseBatch16 serves the same 16-sample workload as
// one batch: one sparse forward pass, one SpMM per layer (the serving
// layer's fast path; compare against SparsePerSample16 for the batching
// win, which must be ≥2× at batch 16).
func BenchmarkInference_SparseBatch16(b *testing.B) {
	b.ReportAllocs()
	clf, x := benchPrunedModel(b)
	eng, err := inference.New(clf, 4, sparsity.NM{N: 2, M: 4})
	if err != nil {
		b.Fatal(err)
	}
	xs := benchSamples(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.LogitsBatch(xs)
	}
}

// BenchmarkInference_TransformerPerSample16 is the per-sample loop on the
// transformer, where each sample offers the SpMM only a handful of token
// columns — the worst case for per-sample serving: the sparse metadata is
// decoded once per nonzero but amortized over almost nothing.
func BenchmarkInference_TransformerPerSample16(b *testing.B) {
	b.ReportAllocs()
	clf, x := benchPrunedFamily(b, models.Transformer)
	eng, err := inference.New(clf, 4, sparsity.NM{N: 2, M: 4})
	if err != nil {
		b.Fatal(err)
	}
	xs := benchSamples(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range xs {
			eng.Logits(s)
		}
	}
}

// BenchmarkInference_TransformerBatch16 is the batched path on the same
// workload: 16× the activation columns per SpMM, so the metadata decode
// amortizes and batched inference beats the per-sample loop by ≥2× even on
// one core (conv families lower each sample to OH·OW columns via im2col,
// so their per-sample baseline is already partially batched; token/linear
// layers are where serving one sample at a time really pays).
func BenchmarkInference_TransformerBatch16(b *testing.B) {
	b.ReportAllocs()
	clf, x := benchPrunedFamily(b, models.Transformer)
	eng, err := inference.New(clf, 4, sparsity.NM{N: 2, M: 4})
	if err != nil {
		b.Fatal(err)
	}
	xs := benchSamples(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.LogitsBatch(xs)
	}
}

// BenchmarkInference_Int8Batch16 serves the 16-sample CNN workload through
// the int8 engine — the quantized twin of Inference_SparseBatch16 (same
// model, same batch): per-column activation quantization, SWAR integer
// MACs and dequantizing stores ride the engine arena, so allocs/op must
// stay at the float engine's level.
func BenchmarkInference_Int8Batch16(b *testing.B) {
	b.ReportAllocs()
	clf, x := benchPrunedModel(b)
	eng, err := inference.NewWithOptions(clf, 4, sparsity.NM{N: 2, M: 4}, inference.CompileOptions{Precision: inference.Int8})
	if err != nil {
		b.Fatal(err)
	}
	xs := benchSamples(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.LogitsBatch(xs)
	}
}

// BenchmarkInference_Int8TransformerBatch16 is the quantized twin of
// Inference_TransformerBatch16 — the token-heavy family where SpMM
// dominates the pass.
func BenchmarkInference_Int8TransformerBatch16(b *testing.B) {
	b.ReportAllocs()
	clf, x := benchPrunedFamily(b, models.Transformer)
	eng, err := inference.NewWithOptions(clf, 4, sparsity.NM{N: 2, M: 4}, inference.CompileOptions{Precision: inference.Int8})
	if err != nil {
		b.Fatal(err)
	}
	xs := benchSamples(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.LogitsBatch(xs)
	}
}

// benchPrunedModel builds a 90%-sparse classifier and an input batch.
func benchPrunedModel(b *testing.B) (*nn.Classifier, *tensor.Tensor) {
	return benchPrunedFamily(b, models.ResNet)
}

// benchPrunedFamily builds a 90%-sparse classifier of the family and a
// 16-sample input batch.
func benchPrunedFamily(b *testing.B, f models.Family) (*nn.Classifier, *tensor.Tensor) {
	b.Helper()
	cfg := data.Config{Name: "bench-inf", NumClasses: 8, Channels: 3, H: 8, W: 8, Noise: 0.25, Jitter: 1, Seed: 9}
	ds := data.New(cfg)
	clf := models.Build(f, rand.New(rand.NewSource(51)), cfg.NumClasses, 2)
	p := pruner.NewCRISP(pruner.Options{
		Target: 0.9, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
		Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
	})
	p.Prune(clf, ds.MakeSplit("user", []int{1, 5}, 12))
	test := ds.MakeSplit("test", []int{1, 5}, 8)
	return clf, test.X
}

// BenchmarkAblation_Schedule regenerates ablation D (linear vs cubic κ_p
// schedule).
func BenchmarkAblation_Schedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, _ := h.AblationSchedule()
		if len(rows) != 2 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkAblation_MixedNM regenerates ablation E (CRISP's global ranking
// vs a per-layer N:M search).
func BenchmarkAblation_MixedNM(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, _ := h.AblationMixedNM()
		if len(rows) != 2 {
			b.Fatal("bad rows")
		}
	}
}

// --- Serving-layer benchmarks (the dynamic-batching hot path) ---

// serveBenchEnv shares one tiny dataset and pretrained universal model
// across the serving benchmarks; each benchmark builds its own Server so
// batching configurations never interfere.
type serveBenchEnv struct {
	ds    *data.Dataset
	build func() *nn.Classifier
	base  *nn.Classifier
}

var benchServeEnv = sync.OnceValue(func() *serveBenchEnv {
	cfg := data.Config{Name: "bench-serve", NumClasses: 8, Channels: 3, H: 8, W: 8, Noise: 0.25, Jitter: 1, Seed: 31}
	ds := data.New(cfg)
	// The transformer is the family where per-sample serving hurts most:
	// each sample offers the SpMM only a handful of token columns, so the
	// metadata decode amortizes only across a batch (see the
	// Inference_Transformer* benchmarks) — exactly the workload
	// cross-request batching exists for.
	build := func() *nn.Classifier {
		return models.Build(models.Transformer, rand.New(rand.NewSource(33)), cfg.NumClasses, 2)
	}
	base := build()
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	opt := nn.NewSGD(0.05, 0.9, 4e-5)
	pruner.Finetune(base, ds.MakeSplit("pretrain", all, 8), 2, 16, opt, rand.New(rand.NewSource(34)))
	return &serveBenchEnv{ds: ds, build: build, base: base}
})

// benchServePredict drives 16 concurrent clients, each issuing b.N
// single-sample Predict calls against one personalization — the busy-tenant
// workload dynamic batching exists for. One benchmark op is one predict per
// client (16 predicts), so Concurrent vs Solo ns/op is directly the
// throughput ratio of batching on vs off.
func benchServePredict(b *testing.B, maxBatch int, precision inference.Precision) {
	env := benchServeEnv()
	s, err := serve.NewServer(env.build, env.base, env.ds, serve.Options{
		Prune: pruner.Options{
			Target: 0.9, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
			Iterations: 1, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
		},
		TrainPerClass: 8,
		TestPerClass:  4,
		MaxBatch:      maxBatch,
		Linger:        time.Millisecond,
		MaxQueue:      1024,
		Precision:     precision,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	classes := []int{1, 5}
	if _, _, err := s.Personalize(classes); err != nil {
		b.Fatal(err)
	}
	const clients = 16
	split := env.ds.MakeSplit("bench-predict", classes, clients/2)
	xs := make([]*tensor.Tensor, clients)
	vol := env.ds.Channels * env.ds.H * env.ds.W
	for i := range xs {
		xs[i] = tensor.FromSlice(split.X.Data[i*vol:(i+1)*vol], 1, env.ds.Channels, env.ds.H, env.ds.W)
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if _, err := s.Predict(classes, xs[c]); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// BenchmarkServePredict_Concurrent is the batched serving path: concurrent
// predicts coalesce into shared engine invocations (MaxBatch 16). The
// acceptance bar is ≥1.5× the throughput of ServePredict_Solo.
func BenchmarkServePredict_Concurrent(b *testing.B) {
	b.ReportAllocs()
	benchServePredict(b, 16, inference.Float32)
}

// BenchmarkServePredict_Solo is the same workload with batching disabled
// (MaxBatch 1): every request runs its own engine call — the pre-batching
// serving path, kept as the baseline for the coalescing win.
func BenchmarkServePredict_Solo(b *testing.B) {
	b.ReportAllocs()
	benchServePredict(b, 1, inference.Float32)
}

// BenchmarkServePredict_Int8 is the batched serving path on an Int8 server
// (quantized engines end to end): same 16-client workload as _Concurrent,
// so their ns/op compare the deployed cost of precision directly; the
// allocs/op gate holds the quantized predict path to the float path's
// steady state.
func BenchmarkServePredict_Int8(b *testing.B) {
	b.ReportAllocs()
	benchServePredict(b, 16, inference.Int8)
}

// --- Cluster-router benchmark (the proxy hot path) ---

// routerBench shares one three-shard cluster — real serve.Servers behind
// the real HTTP mux, fronted by the consistent-hash router — across
// benchmark repeats; rebuilding three servers per repeat would dwarf the
// path under measurement.
type routerBench struct {
	url    string
	body   []byte
	client *http.Client
	err    error
}

var benchRouterEnv = sync.OnceValue(func() *routerBench {
	env := benchServeEnv()
	rb := &routerBench{}
	rt := cluster.NewRouter(cluster.Options{ProbeInterval: time.Second})
	for i := 1; i <= 3; i++ {
		s, err := serve.NewServer(env.build, env.base, env.ds, serve.Options{
			Prune: pruner.Options{
				Target: 0.9, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
				Iterations: 1, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
			},
			TrainPerClass: 8,
			TestPerClass:  4,
			MaxBatch:      16,
			Linger:        time.Millisecond,
			MaxQueue:      1024,
		})
		if err != nil {
			rb.err = err
			return rb
		}
		id := fmt.Sprintf("s%d", i)
		ts := httptest.NewServer(api.NewMux(s, env.ds, api.Config{ShardID: id}))
		rt.AddShard(id, ts.Listener.Addr().String())
	}
	rt.Start()
	front := httptest.NewServer(rt.Mux())
	rb.url = front.URL + "/predict"

	classes := []int{1, 5}
	pb, _ := json.Marshal(map[string]any{"classes": classes})
	resp, err := http.Post(front.URL+"/personalize", "application/json", bytes.NewReader(pb))
	if err != nil {
		rb.err = err
		return rb
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rb.err = fmt.Errorf("personalize via router: status %d", resp.StatusCode)
		return rb
	}
	vol := env.ds.Channels * env.ds.H * env.ds.W
	split := env.ds.MakeSplit("bench-router", classes, 1)
	rb.body, _ = json.Marshal(map[string]any{
		"classes": classes, "inputs": [][]float64{split.X.Data[:vol]},
	})
	// 16 clients reuse connections; the default two idle conns per host
	// would re-dial constantly and measure the TCP stack instead.
	rb.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	return rb
})

// BenchmarkRouterPredict_3Shards measures the cluster proxy hot path: 16
// concurrent clients issuing single-sample HTTP predicts through the
// consistent-hash router into a three-shard tier over real TCP. One op is
// one predict per client (mirroring ServePredict_Concurrent), so the ns/op
// delta against that benchmark is the router + HTTP serialization tax.
func BenchmarkRouterPredict_3Shards(b *testing.B) {
	b.ReportAllocs()
	rb := benchRouterEnv()
	if rb.err != nil {
		b.Fatal(rb.err)
	}
	const clients = 16
	b.ResetTimer()
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func() {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				resp, err := rb.client.Post(rb.url, "application/json", bytes.NewReader(rb.body))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("predict status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// --- Memory-density benchmark (the tiered-cache acceptance gate) ---

// tenantsDensity is the once-computed density measurement shared across
// benchmark repeats: the tenant fixture is deterministic, so re-personalizing
// per repeat would re-measure the same bytes at great cost.
type tenantsDensity struct {
	tenantsPerGB float64 // resident tenants per GB under the byte budget
	ratio        float64 // density vs the full-copy cache (acceptance: >= 3x)
	err          error
}

var benchDensity = sync.OnceValue(func() *tenantsDensity {
	env := benchServeEnv()
	opts := serve.Options{
		Prune: pruner.Options{
			Target: 0.9, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
			Iterations: 1, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
		},
		TrainPerClass: 8,
		TestPerClass:  4,
	}
	sets := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {0, 7}, {1, 6}}

	// Full-copy baseline: no budget, every tenant stays a hot engine.
	full, err := serve.NewServer(env.build, env.base, env.ds, opts)
	if err != nil {
		return &tenantsDensity{err: err}
	}
	defer full.Close()
	for _, set := range sets {
		if _, _, err := full.Personalize(set); err != nil {
			return &tenantsDensity{err: err}
		}
	}
	fullBytes := full.Stats().HotBytes

	// Tiered: a budget a third of the full-copy residency forces all but
	// one tenant into warm delta records.
	opts.MemoryBudgetBytes = fullBytes / 3
	tiered, err := serve.NewServer(env.build, env.base, env.ds, opts)
	if err != nil {
		return &tenantsDensity{err: err}
	}
	defer tiered.Close()
	for _, set := range sets {
		if _, _, err := tiered.Personalize(set); err != nil {
			return &tenantsDensity{err: err}
		}
	}
	st := tiered.Stats()
	if st.CachedEngines+st.WarmEntries != len(sets) {
		return &tenantsDensity{err: fmt.Errorf("only %d of %d tenants resident (hot %d, warm %d)",
			st.CachedEngines+st.WarmEntries, len(sets), st.CachedEngines, st.WarmEntries)}
	}
	resident := st.HotBytes + st.WarmBytes
	return &tenantsDensity{
		tenantsPerGB: float64(len(sets)) * float64(1<<30) / float64(resident),
		ratio:        float64(fullBytes) / float64(resident),
	}
})

// BenchmarkServeTenantsPerGB measures how many resident tenants one GB of
// tenant state holds under the tiered cache, and the density multiple over
// the full-copy engine cache at identical serving behavior (promotion is
// bit-identical). Both surface as custom benchmark metrics; benchcheck
// gates them as higher-is-better against BENCH_baseline.json, so a change
// that bloats warm records or stops demoting fails CI the same way a
// latency regression does.
func BenchmarkServeTenantsPerGB(b *testing.B) {
	var d *tenantsDensity
	for i := 0; i < b.N; i++ {
		d = benchDensity()
	}
	if d.err != nil {
		b.Fatal(d.err)
	}
	b.ReportMetric(d.tenantsPerGB, "tenants/GB")
	b.ReportMetric(d.ratio, "densityX")
}
