// Command crisp-chaos replays deterministic Zipf traffic against an
// in-process CRISP cluster — a router fronting real shards on real TCP
// listeners, sharing one snapshot store — while a seeded fault schedule
// tears at it: a network partition black-holes one shard, a tenant's
// on-disk snapshot record is bit-flipped, the shard owning it is killed,
// fsyncs stall, and the dead shard later restarts on its old address. It is
// the robustness half of CI: the chaos job runs it at a pinned seed and
// fails the build if recovery is anything less than exact.
//
// The run asserts, after the storm heals:
//
//   - Zero lost tenants: every prewarmed tenant still answers /predict
//     through the router.
//   - Zero unexpected re-prunes: failovers recover tenants by snapshot
//     restore; only the deliberately corrupted record may cost a pruning
//     run (quarantine → exactly one re-prune, never a crash or a loop).
//   - Exactly one quarantine: the corrupted record was moved aside and
//     de-indexed, not served and not retried forever.
//   - Bit-identical logits: every tenant's post-chaos engine produces the
//     same logits as its prewarm baseline — restores are exact, and even
//     the re-pruned tenant reproduces bit-for-bit because pruning is
//     deterministic per key.
//   - An availability floor (-min-ok) over the replayed window: the storm
//     may cost requests while failures are being detected, but the router's
//     deadlines, breaker and failover must keep the fraction bounded.
//
// Everything is derived from -seed: tenant class sets, QoS assignment, the
// Zipf draw, the fault schedule and the injected faults themselves. Same
// seed, same storm, same verdict.
//
// Usage:
//
//	crisp-chaos -seed 7 -shards 3 -tenants 8 -requests 400 -out chaos.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/fault"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/serve"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crisp-chaos: ")
	var (
		seed      = flag.Int64("seed", 7, "chaos seed: tenants, Zipf draw, fault schedule and injected faults all derive from it")
		nShards   = flag.Int("shards", 3, "shards in the fleet (>= 3 so a partition plus a crash leaves a survivor)")
		nTenants  = flag.Int("tenants", 8, "prewarmed tenants")
		nRequests = flag.Int("requests", 400, "replayed predict requests")
		zipfS     = flag.Float64("zipf-s", 1.2, "Zipf skew of tenant popularity (> 1)")
		minOK     = flag.Float64("min-ok", 0.90, "minimum fraction of replayed predicts that must return 200")
		out       = flag.String("out", "", "write the JSON chaos report here (default stdout)")
	)
	flag.Parse()
	if *nShards < 3 {
		log.Fatal("-shards must be >= 3: the schedule partitions one shard and kills another")
	}
	if *nTenants < 2 || *nRequests < 20 {
		log.Fatal("need at least 2 tenants and 20 requests for the schedule to fit")
	}

	rep, err := run(*seed, *nShards, *nTenants, *nRequests, *zipfS, *minOK)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeReport(*out, rep); err != nil {
		log.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			log.Printf("VIOLATION: %s", v)
		}
		os.Exit(1)
	}
	log.Printf("clean: %d/%d ok (%.3f), %d quarantine, %d re-prune, all logits bit-identical",
		rep.OK, rep.Requests, rep.Availability, rep.Quarantines, rep.RePrunes)
}

// event is one scheduled storm action, pinned to a request index so the
// timeline is a function of the seed and request count alone.
type event struct {
	At   int    `json:"at"`
	Kind string `json:"kind"`
	Note string `json:"note"`
}

type chaosReport struct {
	Seed         int64   `json:"seed"`
	Shards       int     `json:"shards"`
	Tenants      int     `json:"tenants"`
	Requests     int     `json:"requests"`
	ZipfS        float64 `json:"zipf_s"`
	OK           int     `json:"ok"`
	Failed       int     `json:"failed"`
	Availability float64 `json:"availability"`
	Events       []event `json:"events"`

	CorruptedTenant string   `json:"corrupted_tenant"`
	Quarantines     uint64   `json:"quarantines"`
	RePrunes        uint64   `json:"re_prunes"`
	FsyncStalls     uint64   `json:"fsync_stalls"`
	Blackholed      uint64   `json:"blackholed"`
	LostTenants     []string `json:"lost_tenants"`
	LogitMismatches []string `json:"logit_mismatches"`
	Violations      []string `json:"violations"`
	ElapsedSec      float64  `json:"elapsed_sec"`
}

// shardProc is one in-process crisp-serve: a real serve.Server behind the
// real API mux on a real TCP listener. Kill closes the listener and every
// connection — the process is gone as far as the cluster can tell — while
// the serve.Server object survives only so the harness can read its
// counters and close it at exit.
type shardProc struct {
	id   string
	addr string
	srv  *serve.Server
	hs   *http.Server
}

func (sp *shardProc) kill() { sp.hs.Close() }

type env struct {
	ds    *data.Dataset
	build func() *nn.Classifier
	base  *nn.Classifier
}

func buildEnv(seed int64) *env {
	cfg := data.Config{Name: "chaos", NumClasses: 6, Channels: 3, H: 8, W: 8, Noise: 0.25, Jitter: 1, Seed: seed}
	ds := data.New(cfg)
	build := func() *nn.Classifier {
		return models.Build(models.ResNet, rand.New(rand.NewSource(seed+1)), cfg.NumClasses, 1)
	}
	base := build()
	pruner.Finetune(base, ds.MakeSplit("pretrain", []int{0, 1, 2, 3, 4, 5}, 8), 2, 16,
		nn.NewSGD(0.05, 0.9, 4e-5), rand.New(rand.NewSource(seed+2)))
	return &env{ds: ds, build: build, base: base}
}

// newShard starts a shard sharing snapshot directory dir through the fault
// filesystem. A non-empty addr rebinds that address — restarting a dead
// shard's process on its old identity.
func newShard(e *env, id, dir, addr string, ffs fault.FS) (*shardProc, error) {
	srv, err := serve.NewServer(e.build, e.base, e.ds, serve.Options{
		Workers:     2,
		SnapshotDir: dir,
		FS:          ffs,
		Prune: pruner.Options{
			Target: 0.7, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
			Iterations: 1, FinetuneEpochs: 1, BatchSize: 8, LR: 0.01,
		},
		TrainPerClass: 6,
		TestPerClass:  4,
	})
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", id, err)
	}
	ln, err := listen(addr)
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("shard %s: %w", id, err)
	}
	sp := &shardProc{id: id, addr: ln.Addr().String(), srv: srv,
		hs: &http.Server{Handler: api.NewMux(srv, e.ds, api.Config{ShardID: id})}}
	go sp.hs.Serve(ln)
	return sp, nil
}

// listen binds addr ("" for an ephemeral port). Rebinding a just-killed
// shard's address races the kernel releasing it, so a named addr retries.
func listen(addr string) (net.Listener, error) {
	if addr == "" {
		return net.Listen("tcp", "127.0.0.1:0")
	}
	var err error
	for i := 0; i < 100; i++ {
		var ln net.Listener
		if ln, err = net.Listen("tcp", addr); err == nil {
			return ln, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return nil, fmt.Errorf("rebinding %s: %w", addr, err)
}

func canonKey(classes []int) string {
	sorted := append([]int(nil), classes...)
	sort.Ints(sorted)
	parts := make([]string, len(sorted))
	for i, c := range sorted {
		parts[i] = strconv.Itoa(c)
	}
	return strings.Join(parts, ",")
}

// makeTenants draws distinct class pairs; order is popularity order (index
// 0 is the Zipf head).
func makeTenants(rng *rand.Rand, n, numClasses int) [][]int {
	seen := map[string]bool{}
	var ts [][]int
	for len(ts) < n {
		a, b := rng.Intn(numClasses), rng.Intn(numClasses)
		if a == b {
			continue
		}
		classes := []int{a, b}
		if key := canonKey(classes); !seen[key] {
			seen[key] = true
			ts = append(ts, classes)
		}
	}
	return ts
}

func run(seed int64, nShards, nTenants, nRequests int, zipfS, minOK float64) (*chaosReport, error) {
	start := time.Now()
	rep := &chaosReport{Seed: seed, Shards: nShards, Tenants: nTenants, Requests: nRequests, ZipfS: zipfS}

	dir, err := os.MkdirTemp("", "crisp-chaos-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	e := buildEnv(seed)
	tenants := makeTenants(rand.New(rand.NewSource(seed+3)), nTenants, 6)

	// One fault filesystem under every shard (they share the snapshot dir,
	// so they share its disk), quiet until the storm; one fault transport
	// inside the router for resets, latency and the partition.
	ffs := fault.NewFS(fault.OS{}, fault.NewInjector(seed+4), fault.DiskFaults{
		SyncDelay: 2 * time.Millisecond,
		Match:     func(name string) bool { return strings.HasSuffix(name, ".ckpt") },
	})
	ffs.SetEnabled(false)
	frt := fault.NewRoundTripper(nil, fault.NewInjector(seed+5), fault.NetFaults{
		LatencyProb: 0.05, Latency: 20 * time.Millisecond,
		ResetProb: 0.02,
		Paths:     []string{"/predict"},
	})

	fleet := map[string]*shardProc{}
	var graveyard []*shardProc // killed processes: counters dead, closed at exit
	defer func() {
		for _, sp := range fleet {
			sp.kill()
			sp.srv.Close()
		}
		for _, sp := range graveyard {
			sp.srv.Close()
		}
	}()

	rt := cluster.NewRouter(cluster.Options{
		ProbeInterval:    100 * time.Millisecond,
		FailThreshold:    2,
		PredictRetries:   3,
		RetryBackoff:     25 * time.Millisecond,
		PredictTimeout:   2 * time.Second,
		PredictFloor:     150 * time.Millisecond,
		BudgetScale:      25,
		BreakerThreshold: 3,
		Client:           &http.Client{Transport: frt},
		ProbeClient:      &http.Client{Timeout: time.Second, Transport: frt},
	})
	defer rt.Close()
	for i := 0; i < nShards; i++ {
		id := fmt.Sprintf("s%d", i+1)
		sp, err := newShard(e, id, dir, "", ffs)
		if err != nil {
			return nil, err
		}
		fleet[id] = sp
		rt.AddShard(id, sp.addr)
	}
	rt.Start()

	frontLn, err := listen("")
	if err != nil {
		return nil, err
	}
	front := &http.Server{Handler: rt.Mux()}
	go front.Serve(frontLn)
	defer front.Close()
	frontURL := "http://" + frontLn.Addr().String()

	// Prewarm every tenant through the router (teaching it each QoS class),
	// capture baseline logits from the owning engine, then flush so every
	// record is durable before the storm. Re-prunes after this point are
	// recoveries, and only the corrupted record is allowed one.
	qosNames := []string{"standard", "gold", "batch"}
	baseline := map[string][]float64{}
	for i, classes := range tenants {
		key := canonKey(classes)
		if err := personalizeVia(frontURL, classes, qosNames[i%len(qosNames)]); err != nil {
			return nil, fmt.Errorf("prewarm %q: %w", key, err)
		}
		owner, ok := rt.LookupShard(key)
		if !ok {
			return nil, fmt.Errorf("prewarm %q: no owner", key)
		}
		logits, err := logitsOn(e, fleet[owner].srv, classes)
		if err != nil {
			return nil, fmt.Errorf("prewarm %q on %s: %w", key, owner, err)
		}
		baseline[key] = logits
	}
	basePruned := map[*serve.Server]uint64{}
	for _, sp := range fleet {
		if _, err := sp.srv.Flush(); err != nil {
			return nil, fmt.Errorf("prewarm flush %s: %w", sp.id, err)
		}
		basePruned[sp.srv] = sp.srv.Stats().Personalizations
	}

	// The storm schedule, as request-index fractions: partition one shard,
	// corrupt a tenant record on disk and kill its owner, heal the
	// partition, then restart the dead shard on its old address.
	schedule := struct{ partition, corrupt, heal, restart, calm int }{
		partition: nRequests * 25 / 100,
		corrupt:   nRequests * 40 / 100,
		heal:      nRequests * 55 / 100,
		restart:   nRequests * 70 / 100,
		calm:      nRequests * 80 / 100,
	}
	partitionID := "s1"
	var killedID, killedAddr, corruptKey string

	zipf := rand.NewZipf(rand.New(rand.NewSource(seed+6)), zipfS, 1, uint64(len(tenants)-1))
	for i := 0; i < nRequests; i++ {
		switch i {
		case schedule.partition:
			ffs.SetEnabled(true)
			frt.Partition(fleet[partitionID].addr, true)
			rep.Events = append(rep.Events, event{At: i, Kind: "partition", Note: partitionID + " black-holed; fsync stalls on"})
		case schedule.corrupt:
			key, victim, err := corruptOneRecord(rt, dir, tenants, partitionID)
			if err != nil {
				return nil, err
			}
			corruptKey = key
			rep.CorruptedTenant = key
			killedID, killedAddr = victim, fleet[victim].addr
			fleet[victim].kill()
			graveyard = append(graveyard, fleet[victim])
			delete(fleet, victim)
			rep.Events = append(rep.Events, event{At: i, Kind: "corrupt+kill",
				Note: fmt.Sprintf("record of %q bit-flipped on disk, owner %s killed", key, victim)})
		case schedule.heal:
			frt.Partition(fleet[partitionID].addr, false)
			rep.Events = append(rep.Events, event{At: i, Kind: "heal", Note: partitionID + " partition healed"})
		case schedule.restart:
			// Flush survivors first so any re-snapshot (the quarantined
			// tenant's heal) is durable before the restarted shard can be
			// asked to restore it.
			for _, sp := range fleet {
				if _, err := sp.srv.Flush(); err != nil {
					return nil, fmt.Errorf("pre-restart flush %s: %w", sp.id, err)
				}
			}
			sp, err := newShard(e, killedID, dir, killedAddr, ffs)
			if err != nil {
				return nil, err
			}
			fleet[killedID] = sp
			basePruned[sp.srv] = 0 // fresh process: every pruning run it does is a recovery
			rep.Events = append(rep.Events, event{At: i, Kind: "restart",
				Note: killedID + " restarted on " + killedAddr + "; prober readmits it"})
		case schedule.calm:
			ffs.SetEnabled(false)
			rep.Events = append(rep.Events, event{At: i, Kind: "calm", Note: "fsync stalls off"})
		}

		classes := tenants[zipf.Uint64()]
		if status, err := predictVia(frontURL, classes); err == nil && status == http.StatusOK {
			rep.OK++
		} else {
			rep.Failed++
		}
	}
	rep.Availability = float64(rep.OK) / float64(nRequests)

	// Let the cluster converge: the prober must have readmitted both the
	// partitioned and the restarted shard before recovery is judged.
	if err := awaitConverged(frontURL, nShards, 15*time.Second); err != nil {
		rep.Violations = append(rep.Violations, err.Error())
	}

	// Verdict 1: zero lost tenants.
	for _, classes := range tenants {
		key := canonKey(classes)
		if !eventually(10, 200*time.Millisecond, func() bool {
			status, err := predictVia(frontURL, classes)
			return err == nil && status == http.StatusOK
		}) {
			rep.LostTenants = append(rep.LostTenants, key)
		}
	}

	// Verdict 2: bit-identical logits on each tenant's current owner.
	for _, classes := range tenants {
		key := canonKey(classes)
		owner, ok := rt.LookupShard(key)
		if !ok {
			rep.LogitMismatches = append(rep.LogitMismatches, key+" (no owner)")
			continue
		}
		logits, err := logitsOn(e, fleet[owner].srv, classes)
		if err != nil {
			rep.LogitMismatches = append(rep.LogitMismatches, key+" ("+err.Error()+")")
			continue
		}
		if !equalBits(logits, baseline[key]) {
			rep.LogitMismatches = append(rep.LogitMismatches, key)
		}
	}

	// Verdict 3: exactly one quarantine and one re-prune across the fleet.
	for _, sp := range fleet {
		st := sp.srv.Stats()
		rep.Quarantines += st.SnapshotsQuarantined
		rep.RePrunes += st.Personalizations - basePruned[sp.srv]
	}
	fst := ffs.Stats()
	rep.FsyncStalls = fst.SyncStalls
	rep.Blackholed = frt.Blackholed.Load()
	rep.ElapsedSec = time.Since(start).Seconds()

	if len(rep.LostTenants) > 0 {
		rep.Violations = append(rep.Violations, fmt.Sprintf("lost tenants: %v", rep.LostTenants))
	}
	if len(rep.LogitMismatches) > 0 {
		rep.Violations = append(rep.Violations, fmt.Sprintf("logits diverged after recovery: %v", rep.LogitMismatches))
	}
	if rep.Quarantines != 1 {
		rep.Violations = append(rep.Violations, fmt.Sprintf("quarantines = %d, want exactly 1 (the corrupted record %q)", rep.Quarantines, corruptKey))
	}
	if rep.RePrunes != 1 {
		rep.Violations = append(rep.Violations, fmt.Sprintf("re-prunes = %d, want exactly 1: failovers must restore, not re-prune", rep.RePrunes))
	}
	if rep.Availability < minOK {
		rep.Violations = append(rep.Violations, fmt.Sprintf("availability %.3f under the %.3f floor", rep.Availability, minOK))
	}
	return rep, nil
}

// corruptOneRecord flips a byte in the middle of one tenant's snapshot
// record — bitrot under a live fleet. The tenant is chosen so its owner is
// neither the partitioned shard (the two faults must be independent) nor
// unknown; the owner's id is returned so the schedule can kill it, forcing
// the next access to read the corrupted record cold.
func corruptOneRecord(rt *cluster.Router, dir string, tenants [][]int, partitionID string) (key, owner string, err error) {
	idx, err := checkpoint.ReadIndex(filepath.Join(dir, checkpoint.IndexFile))
	if err != nil {
		return "", "", fmt.Errorf("reading snapshot index: %w", err)
	}
	for _, classes := range tenants {
		k := canonKey(classes)
		o, ok := rt.LookupShard(k)
		if !ok || o == partitionID {
			continue
		}
		name, ok := idx[k]
		if !ok {
			continue
		}
		path := filepath.Join(dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			return "", "", fmt.Errorf("reading record %s: %w", path, err)
		}
		if len(raw) < 16 {
			continue
		}
		raw[len(raw)/2] ^= 0x10
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return "", "", fmt.Errorf("writing corrupted record %s: %w", path, err)
		}
		return k, o, nil
	}
	return "", "", errors.New("no corruptible tenant: every record is owned by the partitioned shard")
}

// logitsOn returns the tenant's logits over its deterministic probe batch,
// from the engine resident (or restored) on srv.
func logitsOn(e *env, srv *serve.Server, classes []int) ([]float64, error) {
	p, _, err := srv.Personalize(classes)
	if err != nil {
		return nil, err
	}
	x := probeX(e, classes)
	return append([]float64(nil), p.Engine().Logits(x).Data...), nil
}

func probeX(e *env, classes []int) *tensor.Tensor {
	return e.ds.MakeSplit("chaos-probe-"+canonKey(classes), classes, 2).X
}

func equalBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func personalizeVia(frontURL string, classes []int, qos string) error {
	body, _ := json.Marshal(map[string]any{"classes": classes, "qos": qos})
	resp, err := http.Post(frontURL+"/personalize", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var pr struct {
		Fingerprint uint64 `json:"fingerprint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || pr.Fingerprint == 0 {
		return fmt.Errorf("status %d, fingerprint %d", resp.StatusCode, pr.Fingerprint)
	}
	return nil
}

func predictVia(frontURL string, classes []int) (int, error) {
	body, _ := json.Marshal(map[string]any{"classes": classes, "samples": 2})
	resp, err := http.Post(frontURL+"/predict", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_ = json.NewDecoder(resp.Body).Decode(&struct{}{})
	return resp.StatusCode, nil
}

// awaitConverged polls the router's /ring until every shard is Up and on
// the ring — the storm is over and the prober has readmitted everyone.
func awaitConverged(frontURL string, nShards int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		var view struct {
			Shards []struct {
				ID     string `json:"id"`
				State  string `json:"state"`
				OnRing bool   `json:"on_ring"`
			} `json:"shards"`
		}
		resp, err := http.Get(frontURL + "/ring")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&view)
			resp.Body.Close()
		}
		if err == nil && len(view.Shards) == nShards {
			up := 0
			for _, sh := range view.Shards {
				if sh.State == "up" && sh.OnRing {
					up++
				}
			}
			if up == nShards {
				return nil
			}
			last = fmt.Sprintf("%d/%d shards up", up, nShards)
		} else if err != nil {
			last = err.Error()
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("cluster did not converge within %s (%s)", timeout, last)
}

func eventually(attempts int, gap time.Duration, ok func() bool) bool {
	for i := 0; i < attempts; i++ {
		if ok() {
			return true
		}
		time.Sleep(gap)
	}
	return false
}

func writeReport(path string, rep *chaosReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
