// Command crisp runs the full CRISP pipeline end to end on the synthetic
// substrate: pre-train a universal model, personalize it to a set of user
// classes with hybrid structured pruning, and report sparsity, FLOPs and
// accuracy against the dense fine-tuned reference.
//
// Usage:
//
//	crisp -model resnet-s -classes 10 -target 0.9 -nm 2:4 -block 4
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"

	crisp "repro"
	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/export"
	"repro/internal/inference"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crisp: ")

	var (
		model    = flag.String("model", "resnet-s", "model family: resnet-s, vgg-s, mobilenet-s, transformer-s")
		classes  = flag.Int("classes", 10, "number of user-preferred classes")
		target   = flag.Float64("target", 0.9, "global sparsity target κ")
		nmFlag   = flag.String("nm", "2:4", "fine-grained N:M pattern")
		block    = flag.Int("block", 4, "block size B")
		iters    = flag.Int("iterations", 4, "pruning iterations n")
		epochs   = flag.Int("finetune-epochs", 2, "fine-tune epochs δ per iteration")
		pretrain = flag.Int("pretrain-epochs", 6, "universal pre-training epochs")
		seed     = flag.Int64("seed", 1, "random seed")
		saveCkpt = flag.String("save", "", "write the pruned model checkpoint to this path")
		loadCkpt = flag.String("load", "", "load a pre-trained checkpoint instead of pre-training")
	)
	flag.Parse()

	nm, err := parseNM(*nmFlag)
	if err != nil {
		log.Fatal(err)
	}
	family := models.Family(*model)
	switch family {
	case models.ResNet, models.VGG, models.MobileNet, models.Transformer:
	default:
		log.Fatalf("unknown model %q (want resnet-s, vgg-s, mobilenet-s or transformer-s)", *model)
	}

	// A mid-scale synthetic dataset: large enough to be non-trivial, small
	// enough for a laptop run.
	ds := crisp.NewDataset(data.Config{
		Name: "synth", NumClasses: 40, Channels: 3, H: 10, W: 10,
		Noise: 0.3, Jitter: 1, Seed: *seed,
	})
	if *classes < 1 || *classes > ds.NumClasses {
		log.Fatalf("classes must be in [1,%d]", ds.NumClasses)
	}

	modelClf := crisp.NewModel(family, ds.NumClasses, widthFor(family), *seed+1)
	if *loadCkpt != "" {
		fmt.Printf("loading checkpoint %s...\n", *loadCkpt)
		f, err := os.Open(*loadCkpt)
		if err != nil {
			log.Fatal(err)
		}
		if err := checkpoint.Load(f, modelClf); err != nil {
			log.Fatal(err)
		}
		f.Close()
	} else {
		fmt.Printf("pre-training universal %s on %d classes...\n", family, ds.NumClasses)
		crisp.Pretrain(modelClf, ds, *pretrain, 16, *seed+2)
	}

	user := ds.UserClasses(*seed+3, *classes)
	fmt.Printf("user classes: %v\n", user)

	// Dense fine-tuned reference with a matched epoch budget.
	ref := crisp.NewModel(family, ds.NumClasses, widthFor(family), *seed+1)
	modelClf.CloneWeightsTo(ref)
	train := ds.MakeSplit("user-train", user, 32)
	test := ds.MakeSplit("user-test", user, 16)
	opt := nn.NewSGD(0.01, 0.9, 4e-5)
	pruner.Finetune(ref, train, *iters**epochs+*epochs, 16, opt, rand.New(rand.NewSource(*seed+4)))
	denseAcc := ref.Accuracy(test.X, test.Labels)

	cfg := crisp.DefaultConfig(*target)
	cfg.NM = nm
	cfg.BlockSize = *block
	cfg.Iterations = *iters
	cfg.FinetuneEpochs = *epochs
	cfg.Seed = *seed + 5

	fmt.Printf("pruning with CRISP (%s, B=%d, κ=%.2f, %d iterations)...\n", nm, *block, *target, *iters)
	res := crisp.Personalize(modelClf, ds, user, cfg)

	fmt.Println()
	fmt.Println(res.Report.String())
	fmt.Printf("accuracy: crisp %.3f vs dense fine-tuned %.3f\n", res.Accuracy, denseAcc)
	fmt.Println("\nper-layer state:")
	for _, ls := range res.Report.Layers {
		keep := "n:m only"
		if ls.KeptBlockCols >= 0 {
			keep = fmt.Sprintf("%d/%d block cols", ls.KeptBlockCols, ls.GridCols)
		}
		fmt.Printf("  %-24s %4dx%-5d sparsity %.3f  (%s)\n", ls.Name, ls.Rows, ls.Cols, ls.Sparsity, keep)
	}

	// Validate that the compressed representation computes identically and
	// report the deployed size.
	if eng, err := inference.New(modelClf, *block, nm); err == nil {
		x, _ := test.Sample(0)
		dense := modelClf.Logits(x, false)
		sparse := eng.Logits(x)
		match := tensor.Equal(dense, sparse, 1e-9)
		fmt.Printf("\nsparse inference engine: %d compressed layers, output match: %v\n",
			eng.CompressedLayers, match)
	}
	if ms, err := export.Sizes(modelClf, *block, nm, 8); err == nil {
		fmt.Printf("deployed size at 8-bit: dense %d B → crisp %d B (%.1fx compression)\n",
			ms.DenseBytes, ms.FormatBytes["crisp"], ms.CompressionRatio("crisp"))
	}

	if *saveCkpt != "" {
		f, err := os.Create(*saveCkpt)
		if err != nil {
			log.Fatal(err)
		}
		if err := checkpoint.Save(f, modelClf); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *saveCkpt)
	}
}

func widthFor(f models.Family) int {
	if f == models.MobileNet {
		return 1
	}
	return 2
}

func parseNM(s string) (sparsity.NM, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return sparsity.NM{}, fmt.Errorf("bad N:M %q (want like 2:4)", s)
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil {
		return sparsity.NM{}, fmt.Errorf("bad N in %q: %v", s, err)
	}
	m, err := strconv.Atoi(parts[1])
	if err != nil {
		return sparsity.NM{}, fmt.Errorf("bad M in %q: %v", s, err)
	}
	nm := sparsity.NM{N: n, M: m}
	return nm, nm.Validate()
}
