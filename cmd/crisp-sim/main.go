// Command crisp-sim drives the accelerator simulator directly: pick a
// network and sparsity configuration and print per-layer latency/energy on
// the four simulated architectures, optionally with the discrete-event tile
// trace of a specific layer.
//
// Usage:
//
//	crisp-sim -network resnet50 -nm 2:4 -kept 0.3 -block 64
//	crisp-sim -network resnet50 -layer conv4_2.b -trace
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/models"
	"repro/internal/sparsity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crisp-sim: ")
	var (
		network = flag.String("network", "resnet50", "network: resnet50, vgg16, mobilenetv2")
		layer   = flag.String("layer", "", "only simulate the named layer")
		nmFlag  = flag.String("nm", "2:4", "fine-grained N:M pattern")
		kept    = flag.Float64("kept", 0.3, "kept block-column fraction K'/K")
		block   = flag.Int("block", 64, "block size B")
		actDen  = flag.Float64("act-density", 0.6, "activation density for DSTC")
		trace   = flag.Bool("trace", false, "print the tile-level trace (dense and crisp-stc)")
		repOnly = flag.Bool("representative", false, "restrict ResNet-50 to the representative layer set")
	)
	flag.Parse()

	nm, err := parseNM(*nmFlag)
	if err != nil {
		log.Fatal(err)
	}
	var shapes []models.LayerShape
	switch *network {
	case "resnet50":
		if *repOnly {
			shapes = models.RepresentativeResNet50Layers()
		} else {
			shapes = models.ResNet50Shapes()
		}
	case "vgg16":
		shapes = models.VGG16Shapes()
	case "mobilenetv2":
		shapes = models.MobileNetV2Shapes()
	default:
		log.Fatalf("unknown network %q", *network)
	}
	if *layer != "" {
		var filtered []models.LayerShape
		for _, l := range shapes {
			if l.Name == *layer {
				filtered = append(filtered, l)
			}
		}
		if len(filtered) == 0 {
			log.Fatalf("layer %q not found in %s", *layer, *network)
		}
		shapes = filtered
	}

	hw := accel.EdgeHW()
	e := energy.Default()
	dense := accel.NewDense(hw, e)
	archs := []accel.Arch{
		accel.NewNvidiaSTC(hw, e),
		accel.NewDSTC(hw, e),
		accel.NewCRISPSTC(hw, e),
	}

	sp := accel.Sparsity{NM: nm, KeptColFrac: *kept, BlockSize: *block, ActDensity: 1}
	fmt.Printf("%s · %s + B=%d blocks · kept %.0f%% of block columns (weight density %.3f)\n\n",
		*network, nm, *block, 100**kept, sp.WeightDensity())
	fmt.Printf("%-12s %-12s %12s %9s %12s %9s\n", "layer", "arch", "cycles", "speedup", "energy(uJ)", "en-gain")
	for _, l := range shapes {
		spL := sp
		if l.Kind == models.KindDepthwise {
			spL.KeptColFrac = 1 // block-exempt
		}
		d := dense.Simulate(l, accel.Dense())
		fmt.Printf("%-12s %-12s %12.0f %8.1fx %12.1f %8.1fx\n", l.Name, "dense", d.Cycles, 1.0, d.EnergyUJ(), 1.0)
		for _, a := range archs {
			spA := spL
			if a.Name() == "dstc" {
				spA.ActDensity = *actDen
			}
			p := a.Simulate(l, spA)
			fmt.Printf("%-12s %-12s %12.0f %8.1fx %12.1f %8.1fx\n",
				l.Name, a.Name(), p.Cycles, d.Cycles/p.Cycles, p.EnergyUJ(), d.EnergyUJ()/p.EnergyUJ())
		}
		if *trace {
			for _, arch := range []string{"dense", "crisp-stc"} {
				spT := spL
				if arch == "dense" {
					spT = accel.Dense()
				}
				tr, err := accel.TileSim(hw, arch, l, spT)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  tile trace: %s\n", tr)
				for _, ev := range head(tr.Events, 4) {
					fmt.Printf("    tile %2d: load [%8.0f → %8.0f)  compute [%8.0f → %8.0f)\n",
						ev.Index, ev.LoadStart, ev.LoadEnd, ev.ComputeStart, ev.ComputeEnd)
				}
				if len(tr.Events) > 4 {
					fmt.Printf("    … %d more tiles\n", len(tr.Events)-4)
				}
			}
		}
		fmt.Println()
	}
}

// head returns the first n events.
func head(evs []accel.TileEvent, n int) []accel.TileEvent {
	if len(evs) < n {
		return evs
	}
	return evs[:n]
}

func parseNM(s string) (sparsity.NM, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return sparsity.NM{}, fmt.Errorf("bad N:M %q (want like 2:4)", s)
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil {
		return sparsity.NM{}, err
	}
	m, err := strconv.Atoi(parts[1])
	if err != nil {
		return sparsity.NM{}, err
	}
	nm := sparsity.NM{N: n, M: m}
	return nm, nm.Validate()
}
