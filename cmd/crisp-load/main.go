// Command crisp-load replays a synthetic multi-tenant traffic trace against
// an in-process CRISP serving fleet and emits a machine-readable SLO report
// (internal/sloreport). It is the load half of the CI SLO gate: CI runs it
// at a fixed seed and rate, then cmd/slocheck compares the report against
// the checked-in SLO_baseline.json.
//
// The trace is deterministic end to end — same seed, same schedule:
//
//   - Tenant popularity is Zipf-distributed (-zipf-s): a few tenants draw
//     most of the traffic, the tail is cold. Rank 0 is the hottest tenant.
//   - The arrival schedule is open-loop at -rps average, modulated by a
//     sinusoidal diurnal curve (-diurnal amplitude, -diurnal-period): the
//     run sweeps through a burst peak and a trough instead of a flat rate.
//   - Tenants are assigned QoS classes by the -mix fractions and spread
//     across one in-process server per -precisions entry (a mixed
//     float32/int8 fleet), so the replay exercises quota shedding, deadline
//     flushes and batching across classes and precisions at once.
//
// Every tenant is personalized (prewarmed) before the clock starts, so the
// measured window is pure serving — scheduling, batching, quotas — not
// pruning. -fifo disables the QoS layer (serve.QoSOptions.Disabled) to
// produce the baseline the QoS run is judged against: gold p99 must beat
// standard's under QoS while aggregate goodput does not regress vs FIFO.
//
// Usage:
//
//	crisp-load -seed 1 -rps 300 -duration 20s -tenants 24 -out report.json
//	crisp-load -seed 1 -rps 300 -duration 20s -tenants 24 -fifo -out fifo.json
//	slocheck -report report.json -baseline SLO_baseline.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/inference"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/serve"
	"repro/internal/sloreport"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crisp-load: ")
	var (
		seed       = flag.Int64("seed", 1, "replay seed: tenant class sets, QoS assignment and the Zipf draw are all derived from it")
		duration   = flag.Duration("duration", 20*time.Second, "measured replay window (after prewarm)")
		rps        = flag.Float64("rps", 300, "average offered request rate over the window")
		tenants    = flag.Int("tenants", 24, "distinct tenants (class sets) in the trace")
		classesPer = flag.Int("classes-per-tenant", 2, "classes per tenant class set")
		zipfS      = flag.Float64("zipf-s", 1.2, "Zipf skew of tenant popularity (> 1; larger = hotter head)")
		mix        = flag.String("mix", "gold=0.25,standard=0.5,batch=0.25", "QoS class mix over tenants, fractions summing to ~1")
		diurnal    = flag.Float64("diurnal", 0.5, "diurnal burst amplitude in [0,1): rate swings rps*(1±amplitude) over -diurnal-period")
		diurnalPer = flag.Duration("diurnal-period", 0, "diurnal cycle length (0: one full cycle over -duration)")
		conc       = flag.Int("conc", 64, "max in-flight requests (client-side concurrency bound)")
		samplesPer = flag.Int("samples-per-req", 1, "samples per predict request")
		fifo       = flag.Bool("fifo", false, "disable QoS load shaping (the FIFO baseline run)")
		precisions = flag.String("precisions", "float32,int8", "comma-separated engine precisions; one in-process server per entry, tenants spread across them")
		out        = flag.String("out", "-", "report destination path (-: stdout)")

		// Fleet shape: small enough to prewarm in seconds, loaded enough for
		// batching and quotas to matter.
		family     = flag.String("model", "resnet-s", "model family for the in-process fleet")
		width      = flag.Int("width", 1, "model width multiplier")
		numClasses = flag.Int("num-classes", 10, "classes in the universal model")
		pretrain   = flag.Int("pretrain-epochs", 1, "universal pre-training epochs")
		maxBatch   = flag.Int("max-batch", 16, "samples per coalesced engine call")
		linger     = flag.Duration("linger", 20*time.Millisecond, "batcher linger; set above the gold budget so deadline flushes are visible")
		maxQueue   = flag.Int("max-queue", 256, "per-tenant predict queue bound in samples")
	)
	flag.Parse()
	if *zipfS <= 1 {
		log.Fatalf("-zipf-s must be > 1, got %g", *zipfS)
	}
	if *diurnal < 0 || *diurnal >= 1 {
		log.Fatalf("-diurnal must be in [0,1), got %g", *diurnal)
	}
	period := *diurnalPer
	if period <= 0 {
		period = *duration
	}

	fractions, err := parseMix(*mix)
	if err != nil {
		log.Fatal(err)
	}
	precs, err := parsePrecisions(*precisions)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Build the fleet: one pretrained base shared by every server. ----
	f := models.Family(*family)
	prune := pruner.Options{
		Target: 0.7, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
		Iterations: 1, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
	}
	if err := prune.Validate(); err != nil {
		log.Fatal(err)
	}
	ds := data.New(data.Config{
		Name: "load", NumClasses: *numClasses, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: *seed,
	})
	build := func() *nn.Classifier {
		return models.Build(f, rand.New(rand.NewSource(*seed+1)), *numClasses, *width)
	}
	log.Printf("pre-training universal %s (%d classes, %d epoch(s))...", f, *numClasses, *pretrain)
	base := build()
	all := make([]int, *numClasses)
	for i := range all {
		all[i] = i
	}
	pruner.Finetune(base, ds.MakeSplit("pretrain", all, 8), *pretrain, 16,
		nn.NewSGD(0.05, 0.9, 4e-5), rand.New(rand.NewSource(*seed+2)))

	servers := make([]*serve.Server, len(precs))
	for i, prec := range precs {
		s, err := serve.NewServer(build, base, ds, serve.Options{
			CacheSize: *tenants + 8,
			Prune:     prune,
			MaxBatch:  *maxBatch,
			Linger:    *linger,
			MaxQueue:  *maxQueue,
			Precision: prec,
			QoS:       serve.QoSOptions{Disabled: *fifo},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		servers[i] = s
	}

	// ---- Derive the tenant population. ----
	rng := rand.New(rand.NewSource(*seed + 3))
	ts := makeTenants(rng, ds, servers, *tenants, *classesPer, *samplesPer, fractions)

	log.Printf("prewarming %d tenants across %d server(s) (%s)...", len(ts), len(servers), *precisions)
	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, len(ts))
	for _, tn := range ts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := tn.srv.PersonalizeQoS(tn.classes, tn.qos); err != nil {
				errc <- fmt.Errorf("prewarm tenant %v: %w", tn.classes, err)
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		log.Fatal(err)
	}
	log.Printf("prewarmed in %.1fs", time.Since(start).Seconds())

	// ---- Replay. ----
	schedule := makeSchedule(*duration, *rps, *diurnal, period)
	zipf := rand.NewZipf(rand.New(rand.NewSource(*seed+4)), *zipfS, 1, uint64(len(ts)-1))
	rec := newRecorder()
	before := fleetStats(servers)

	log.Printf("replaying %d arrivals over %v (%.0f rps avg, diurnal ±%.0f%%)...",
		len(schedule), *duration, *rps, *diurnal*100)
	sem := make(chan struct{}, *conc)
	clock := time.Now()
	for _, at := range schedule {
		tn := ts[int(zipf.Uint64())]
		if d := at - time.Since(clock); d > 0 {
			time.Sleep(d)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			x := tn.nextInput()
			t0 := time.Now()
			_, err := tn.srv.Predict(tn.classes, x)
			rec.record(tn.qos, x.Shape[0], time.Since(t0), err)
		}()
	}
	wg.Wait()
	elapsed := time.Since(clock)
	after := fleetStats(servers)

	report := rec.report(elapsed)
	report.Seed = *seed
	report.TargetRPS = *rps
	report.Duration = elapsed.Seconds()
	report.Tenants = len(ts)
	report.ZipfS = *zipfS
	report.QoS = !*fifo
	report.Precisions = *precisions
	report.FlushSize = after.FlushSize - before.FlushSize
	report.FlushLinger = after.FlushLinger - before.FlushLinger
	report.FlushDeadline = after.FlushDeadline - before.FlushDeadline
	report.FlushForced = after.FlushForced - before.FlushForced

	if err := writeReport(*out, report); err != nil {
		log.Fatal(err)
	}
	log.Printf("done: %d requests (%.1f rps achieved), goodput %.1f rps, shed %d, overloaded %d",
		report.Aggregate.Requests, report.AchievedRPS, report.GoodputRPS,
		report.Aggregate.Shed, report.Aggregate.Overloaded)
	for _, name := range []string{"gold", "standard", "batch"} {
		if c := report.Classes[name]; c != nil && c.Requests > 0 {
			log.Printf("  %-8s p50 %6.2fms  p99 %6.2fms  p999 %6.2fms  shed %.1f%%  (%d reqs)",
				name, c.P50MS, c.P99MS, c.P999MS, c.ShedRate*100, c.Requests)
		}
	}
}

// tenant is one replayed class set: its home server (precision), QoS class,
// and a small pool of precomputed input batches the replay cycles through —
// predict cost must not include per-request sample synthesis.
type tenant struct {
	classes []int
	qos     serve.QoSClass
	srv     *serve.Server
	inputs  []*tensor.Tensor
	next    int
	mu      sync.Mutex
}

func (t *tenant) nextInput() *tensor.Tensor {
	t.mu.Lock()
	x := t.inputs[t.next%len(t.inputs)]
	t.next++
	t.mu.Unlock()
	return x
}

// makeTenants derives the deterministic tenant population: distinct class
// sets, QoS classes dealt by the mix fractions over a seeded shuffle (so
// popularity rank and QoS class are independent), servers round-robin.
func makeTenants(rng *rand.Rand, ds *data.Dataset, servers []*serve.Server, n, classesPer, samplesPer int, fractions map[serve.QoSClass]float64) []*tenant {
	seen := map[string]bool{}
	ts := make([]*tenant, 0, n)
	for salt := int64(0); len(ts) < n; salt++ {
		classes := ds.UserClasses(rng.Int63()+salt, classesPer)
		sort.Ints(classes)
		key := fmt.Sprint(classes)
		if seen[key] {
			continue
		}
		seen[key] = true
		ts = append(ts, &tenant{classes: classes})
	}
	// Deal QoS classes over a shuffled view so rank ⊥ class.
	perm := rng.Perm(n)
	gold := int(math.Round(fractions[serve.QoSGold] * float64(n)))
	batch := int(math.Round(fractions[serve.QoSBatch] * float64(n)))
	for i, p := range perm {
		switch {
		case i < gold:
			ts[p].qos = serve.QoSGold
		case i < gold+batch:
			ts[p].qos = serve.QoSBatch
		default:
			ts[p].qos = serve.QoSStandard
		}
	}
	for i, tn := range ts {
		tn.srv = servers[i%len(servers)]
		// 4 precomputed input batches per tenant, cycled round-robin.
		split := ds.MakeSplit("load-replay", tn.classes, 4*samplesPer)
		for j := 0; j < 4; j++ {
			idx := make([]int, 0, samplesPer)
			for k := 0; k < samplesPer; k++ {
				idx = append(idx, (j*samplesPer+k)%split.Len())
			}
			tn.inputs = append(tn.inputs, split.Subset(idx).X)
		}
	}
	return ts
}

// makeSchedule integrates the diurnally-modulated rate into a deterministic
// arrival-time list: the k-th arrival fires when the cumulative expected
// count crosses k. No randomness — the offered load is part of the trace.
func makeSchedule(duration time.Duration, rps, amp float64, period time.Duration) []time.Duration {
	var schedule []time.Duration
	const step = 100 * time.Microsecond
	acc := 0.0
	k := 0.0
	for t := time.Duration(0); t < duration; t += step {
		rate := rps * (1 + amp*math.Sin(2*math.Pi*t.Seconds()/period.Seconds()))
		acc += rate * step.Seconds()
		for acc >= k+1 {
			k++
			schedule = append(schedule, t)
		}
	}
	return schedule
}

// recorder accumulates per-class outcomes under one lock; the predict path
// it observes is milliseconds-scale, so contention here is negligible.
type recorder struct {
	mu  sync.Mutex
	cls [serve.NumQoSClasses]struct {
		reqs, samples, ok, shed, overloaded, errs int
		lat                                       []float64 // ms, OK only
	}
}

func newRecorder() *recorder { return &recorder{} }

func (r *recorder) record(qos serve.QoSClass, samples int, d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &r.cls[qos]
	c.reqs++
	c.samples += samples
	switch {
	case err == nil:
		c.ok++
		c.lat = append(c.lat, float64(d.Nanoseconds())/1e6)
	case errors.Is(err, serve.ErrOverQuota):
		c.shed++
	case errors.Is(err, serve.ErrOverloaded):
		c.overloaded++
	default:
		c.errs++
	}
}

func (r *recorder) report(elapsed time.Duration) *sloreport.Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &sloreport.Report{Classes: map[string]*sloreport.ClassReport{}}
	var allLat []float64
	for qos := serve.QoSClass(0); qos < serve.NumQoSClasses; qos++ {
		c := r.cls[qos]
		cr := &sloreport.ClassReport{
			Requests: c.reqs, Samples: c.samples, OK: c.ok,
			Shed: c.shed, Overloaded: c.overloaded, Errors: c.errs,
		}
		cr.Summarize(c.lat)
		rep.Classes[qos.String()] = cr
		rep.Aggregate.Requests += c.reqs
		rep.Aggregate.Samples += c.samples
		rep.Aggregate.OK += c.ok
		rep.Aggregate.Shed += c.shed
		rep.Aggregate.Overloaded += c.overloaded
		rep.Aggregate.Errors += c.errs
		allLat = append(allLat, c.lat...)
	}
	rep.Aggregate.Summarize(allLat)
	if s := elapsed.Seconds(); s > 0 {
		rep.GoodputRPS = float64(rep.Aggregate.OK) / s
		rep.AchievedRPS = float64(rep.Aggregate.Requests) / s
	}
	return rep
}

// fleetStats sums the flush counters across the servers.
func fleetStats(servers []*serve.Server) (sum serve.Stats) {
	for _, s := range servers {
		st := s.Stats()
		sum.FlushSize += st.FlushSize
		sum.FlushLinger += st.FlushLinger
		sum.FlushDeadline += st.FlushDeadline
		sum.FlushForced += st.FlushForced
	}
	return sum
}

func parseMix(s string) (map[serve.QoSClass]float64, error) {
	m := map[serve.QoSClass]float64{}
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want class=fraction)", part)
		}
		qos, err := serve.ParseQoSClass(k)
		if err != nil {
			return nil, err
		}
		var f float64
		if _, err := fmt.Sscanf(strings.TrimSpace(v), "%g", &f); err != nil || f < 0 {
			return nil, fmt.Errorf("bad -mix fraction %q", v)
		}
		m[qos] = f
		total += f
	}
	if total <= 0 || total > 1.001 {
		return nil, fmt.Errorf("-mix fractions sum to %g, want (0,1]", total)
	}
	return m, nil
}

func parsePrecisions(s string) ([]inference.Precision, error) {
	var out []inference.Precision
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "float32", "float", "fp32":
			out = append(out, inference.Float32)
		case "int8", "i8":
			out = append(out, inference.Int8)
		case "":
		default:
			return nil, fmt.Errorf("unknown precision %q (want float32 or int8)", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-precisions is empty")
	}
	return out, nil
}

func writeReport(path string, rep *sloreport.Report) error {
	enc := json.NewEncoder(os.Stdout)
	if path != "-" && path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
