// Command slocheck gates a crisp-load report against a checked-in SLO
// baseline: it prints one line per violated threshold and exits non-zero if
// any SLO is broken. CI runs it after the seeded replay so a latency or
// shed-rate regression fails the build instead of landing silently.
//
// Usage:
//
//	slocheck -report report.json -baseline SLO_baseline.json
//
// Refreshing the baseline after an intentional performance change:
//
//  1. Run the CI replay locally at the pinned seed and rate (see the slo
//     job in .github/workflows/ci.yml for the exact flags).
//  2. Read the new report's p50/p99/p999 and shed rates.
//  3. Edit SLO_baseline.json, keeping thresholds ~2x the freshly observed
//     values so runner jitter does not flake the gate, and commit it with
//     the change that moved the numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/sloreport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slocheck: ")
	var (
		reportPath   = flag.String("report", "report.json", "crisp-load report to check")
		baselinePath = flag.String("baseline", "SLO_baseline.json", "SLO baseline to check against")
	)
	flag.Parse()

	var report sloreport.Report
	if err := readJSON(*reportPath, &report); err != nil {
		log.Fatal(err)
	}
	var baseline sloreport.Baseline
	if err := readJSON(*baselinePath, &baseline); err != nil {
		log.Fatal(err)
	}

	violations := sloreport.Check(&report, &baseline)
	if len(violations) == 0 {
		log.Printf("PASS: %d requests, goodput %.1f rps, gold p99 %.2fms, standard p99 %.2fms",
			report.Aggregate.Requests, report.GoodputRPS,
			classP99(&report, "gold"), classP99(&report, "standard"))
		return
	}
	for _, v := range violations {
		log.Printf("FAIL: %s", v)
	}
	os.Exit(1)
}

func classP99(r *sloreport.Report, name string) float64 {
	if c := r.Classes[name]; c != nil {
		return c.P99MS
	}
	return 0
}

func readJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
