package main

import (
	"bytes"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/serve"
	"repro/internal/sparsity"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"0", 0, true},
		{"1048576", 1 << 20, true},
		{"512K", 512 << 10, true},
		{"512k", 512 << 10, true},
		{"64M", 64 << 20, true},
		{"64MB", 64 << 20, true},
		{"64MiB", 64 << 20, true},
		{"2G", 2 << 30, true},
		{"1T", 1 << 40, true},
		{" 2G ", 2 << 30, true},
		{"-1", 0, false},
		{"lots", 0, false},
		{"1.5G", 0, false},
	}
	for _, tc := range cases {
		got, err := parseBytes(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("parseBytes(%q) err=%v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && got != tc.want {
			t.Fatalf("parseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// newShutdownFixture builds the smallest durable server worth shutting
// down: one worker (so the write-behind snapshot can be pinned behind a
// blocker job) and a snapshot directory.
func newShutdownFixture(t *testing.T, dir string) (*serve.Server, *data.Dataset) {
	t.Helper()
	ds := data.New(data.Config{
		Name: "serve-shutdown-test", NumClasses: 4, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: 11,
	})
	build := func() *nn.Classifier {
		return models.Build(models.ResNet, rand.New(rand.NewSource(71)), ds.NumClasses, 1)
	}
	base := build()
	opt := nn.NewSGD(0.05, 0.9, 4e-5)
	pruner.Finetune(base, ds.MakeSplit("pretrain", []int{0, 1, 2, 3}, 8), 2, 16, opt, rand.New(rand.NewSource(72)))
	s, err := serve.NewServer(build, base, ds, serve.Options{
		Workers:     1,
		SnapshotDir: dir,
		Prune: pruner.Options{
			Target: 0.7, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
			Iterations: 1, FinetuneEpochs: 1, BatchSize: 8, LR: 0.01,
		},
		TrainPerClass: 6,
		TestPerClass:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, ds
}

// TestGracefulShutdownFlushesPendingSnapshots is the shutdown e2e: a
// SIGTERM delivered while a completed personalization's write-behind
// snapshot is still pinned in the worker queue must not lose the record —
// the old log.Fatal(http.ListenAndServe(...)) exit did exactly that. The
// test personalizes over real HTTP, wedges the single pool worker so the
// snapshot cannot land, signals the server, and asserts that after run()
// returns a fresh server on the same directory restores the tenant from
// disk with zero pruning jobs.
func TestGracefulShutdownFlushesPendingSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, ds := newShutdownFixture(t, dir)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigc := make(chan os.Signal, 1)
	done := make(chan error, 1)
	var logBuf bytes.Buffer
	log.SetOutput(&logBuf)
	defer log.SetOutput(os.Stderr)
	go func() {
		done <- run(ln, api.NewMux(s, ds, api.Config{ShardID: "shutdown-test"}), "127.0.0.1:0", s, true, sigc, 10*time.Second)
	}()

	url := "http://" + ln.Addr().String()
	resp, err := http.Post(url+"/personalize", "application/json", strings.NewReader(`{"classes":[0,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/personalize status %d", resp.StatusCode)
	}

	// Wedge the lone pool worker so a not-yet-landed write-behind snapshot
	// stays pending across the signal: the shutdown path (Flush before
	// exit) must wait it out rather than abandon it.
	release := make(chan struct{})
	blocked := make(chan struct{})
	go s.Pool().Do(func() { close(blocked); <-release })
	<-blocked

	sigc <- syscall.SIGTERM
	close(release)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}

	// New connections must be refused after shutdown.
	if _, err := http.Get(url + "/stats"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}

	// Every completed personalization is on disk: a fresh server restores
	// it without a single pruning job.
	s2, _ := newShutdownFixture(t, dir)
	defer s2.Close()
	n, err := s2.Restore()
	if err != nil || n != 1 {
		t.Fatalf("post-shutdown restore: n=%d err=%v (stats %+v)", n, err, s2.Stats())
	}
	if st := s2.Stats(); st.Personalizations != 0 || st.RestoreHits != 1 {
		t.Fatalf("post-shutdown stats %+v (want pure restore)", st)
	}

	// The pprof listener must exit through Shutdown, not by erroring out.
	if text := logBuf.String(); strings.Contains(text, "pprof listener exited") {
		t.Fatalf("spurious pprof exit log:\n%s", text)
	}
}

// TestShutdownOnListenerError: when the listener dies on its own the
// teardown still flushes and run returns the cause.
func TestShutdownOnListenerError(t *testing.T) {
	dir := t.TempDir()
	s, ds := newShutdownFixture(t, dir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigc := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ln, api.NewMux(s, ds, api.Config{}), "", s, true, sigc, 5*time.Second)
	}()
	// Give Serve a moment to pick the listener up, then yank it away.
	time.Sleep(50 * time.Millisecond)
	ln.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run returned nil after the listener died")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after the listener died")
	}
}
