// Command crisp-serve exposes the CRISP personalization service over HTTP:
// one pretrained universal model, per-user pruned engines built on a
// bounded worker pool, cached with LRU eviction and in-flight deduplication
// (see internal/serve for the cache semantics).
//
// Endpoints:
//
//	POST /personalize {"classes":[3,17,42]}
//	POST /predict     {"classes":[3,17,42], "samples":16}
//	POST /predict     {"classes":[3,17,42], "inputs":[[...C*H*W floats...], ...]}
//	POST /snapshot    (flush every cached engine to the snapshot dir)
//	GET  /stats
//	GET  /metrics     (Prometheus text exposition of the /stats counters)
//
// With -snapshot-dir the server is durable: completed personalizations are
// snapshotted write-behind, evicted engines keep their disk copy, and a
// restart restores every engine from disk instead of re-pruning.
//
// With -memory-budget (e.g. -memory-budget 512M) the engine cache becomes a
// three-tier hot/warm/cold hierarchy: hot compiled engines up to
// -hot-fraction of the budget, evicted engines demoted to compact warm
// delta records over the shared universal weights, and warm records
// squeezed past the budget falling back to disk snapshots. Promotion back
// to hot is bit-identical (QuantSignature-identical on int8); /metrics
// exposes the tier gauges and flow counters (crisp_serve_hot_bytes,
// crisp_serve_warm_bytes, crisp_serve_demotions_total, ...).
//
// Concurrent /predict requests for the same class set coalesce into shared
// engine invocations (dynamic batching; -max-batch, -linger, -max-queue).
// When a personalization's predict queue is full the server sheds load
// with 429 Too Many Requests instead of queueing without bound.
//
// With -precision int8 every personalized engine runs from int8 quantized
// plans (the CRISP-STC deployment precision): int8 weight codes, int32
// accumulation, dequantize-on-store. Each personalization measures its
// top-1 agreement against the full-precision engine once, on its held-out
// split; /personalize reports it per tenant and /stats and /metrics
// aggregate it fleet-wide (crisp_serve_top1_agreement).
//
// With -pprof-addr the server additionally exposes net/http/pprof on a
// separate listener (off by default; bind it to localhost), so CPU and heap
// profiles of the predict hot path can be captured in-situ.
//
// Usage:
//
//	crisp-serve -addr :8080 -num-classes 20 -target 0.85 -precision int8 -snapshot-dir /var/lib/crisp -pprof-addr localhost:6060
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (served only via -pprof-addr)
	"strconv"
	"strings"
	"time"

	"repro/internal/data"
	"repro/internal/inference"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/serve"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crisp-serve: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		family     = flag.String("model", "resnet-s", "model family: resnet-s, vgg-s, mobilenet-s, transformer-s")
		width      = flag.Int("width", 2, "model width multiplier")
		numClasses = flag.Int("num-classes", 20, "number of classes in the universal model")
		pretrain   = flag.Int("pretrain-epochs", 4, "universal pre-training epochs at startup")
		perClass   = flag.Int("pretrain-per-class", 12, "pre-training samples per class")
		target     = flag.Float64("target", 0.85, "global sparsity target κ per personalization")
		workers    = flag.Int("workers", 0, "personalization worker bound (0 = GOMAXPROCS)")
		cacheSize  = flag.Int("cache", 64, "maximum cached engines (LRU beyond)")
		memBudget  = flag.String("memory-budget", "", "resident tenant-state byte budget enabling the hot/warm/cold tiered cache, e.g. 512M or 2G (empty: single-level LRU)")
		hotFrac    = flag.Float64("hot-fraction", 0.75, "share of -memory-budget reserved for hot compiled engines; the rest holds warm delta records")
		snapDir    = flag.String("snapshot-dir", "", "durable personalization store directory (empty: memory-only)")
		maxBatch   = flag.Int("max-batch", 16, "coalesce concurrent predicts up to this many samples per engine call (1 disables batching)")
		linger     = flag.Duration("linger", 2*time.Millisecond, "max time a predict waits for batch mates before flushing")
		maxQueue   = flag.Int("max-queue", 256, "per-personalization predict queue bound in samples (full queue replies 429)")
		precision  = flag.String("precision", "float32", "engine precision: float32 (exact) or int8 (quantized plans; ~int8 tensor-core deployment)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty: disabled)")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	f := models.Family(*family)
	switch f {
	case models.ResNet, models.VGG, models.MobileNet, models.Transformer:
	default:
		log.Fatalf("unknown model %q (want resnet-s, vgg-s, mobilenet-s or transformer-s)", *family)
	}

	var prec inference.Precision
	switch *precision {
	case "float32", "float", "fp32":
		prec = inference.Float32
	case "int8", "i8":
		prec = inference.Int8
	default:
		log.Fatalf("unknown precision %q (want float32 or int8)", *precision)
	}

	budget, err := parseBytes(*memBudget)
	if err != nil {
		log.Fatal(err)
	}

	// Reject bad pruning flags before paying for pre-training.
	prune := pruner.Options{
		Target: *target, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
		Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
	}
	if err := prune.Validate(); err != nil {
		log.Fatal(err)
	}

	ds := data.New(data.Config{
		Name: "serve", NumClasses: *numClasses, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: *seed,
	})
	build := func() *nn.Classifier {
		return models.Build(f, rand.New(rand.NewSource(*seed+1)), *numClasses, *width)
	}

	log.Printf("pre-training universal %s (%d classes, %d epochs)...", f, *numClasses, *pretrain)
	start := time.Now()
	base := build()
	all := make([]int, *numClasses)
	for i := range all {
		all[i] = i
	}
	opt := nn.NewSGD(0.05, 0.9, 4e-5)
	pruner.Finetune(base, ds.MakeSplit("pretrain", all, *perClass), *pretrain, 16, opt, rand.New(rand.NewSource(*seed+2)))
	log.Printf("pre-trained in %.1fs", time.Since(start).Seconds())

	s, err := serve.NewServer(build, base, ds, serve.Options{
		Workers:           *workers,
		CacheSize:         *cacheSize,
		Prune:             prune,
		SnapshotDir:       *snapDir,
		MaxBatch:          *maxBatch,
		Linger:            *linger,
		MaxQueue:          *maxQueue,
		Precision:         prec,
		MemoryBudgetBytes: budget,
		HotFraction:       *hotFrac,
	})
	if err != nil {
		log.Fatal(err)
	}
	// No Close/drain on the way out: ListenAndServe only returns on error
	// and log.Fatal exits the process, which releases the pool with it.

	if *snapDir != "" {
		n, err := s.Restore()
		if err != nil {
			log.Fatal(err)
		}
		st := s.Stats()
		log.Printf("restored %d personalization(s) from %s (%d bad record(s) skipped)", n, *snapDir, st.RestoreErrors)
	}

	if *pprofAddr != "" {
		// The profiling endpoint is opt-in and on its own listener (bind it
		// to localhost), so hot-path profiles can be captured in-situ
		// without exposing /debug/pprof next to the public API. The pprof
		// import registers on DefaultServeMux; the API mux below is
		// separate, so the main address never serves profiles.
		go func() {
			log.Printf("pprof on %s (go tool pprof http://%s/debug/pprof/profile)", *pprofAddr, *pprofAddr)
			// A failed debug listener must not take live traffic down with
			// it: log and keep serving the API.
			log.Printf("pprof listener exited: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	tierMode := "single-level LRU"
	if budget > 0 {
		tierMode = fmt.Sprintf("tiered, budget %d bytes (hot %.0f%%)", budget, *hotFrac*100)
	}
	log.Printf("serving on %s (%d workers, cache %d, %s, max-batch %d, linger %v, max-queue %d, precision %s)",
		*addr, s.Stats().Workers, *cacheSize, tierMode, *maxBatch, *linger, *maxQueue, prec)
	log.Fatal(http.ListenAndServe(*addr, newMux(s, ds)))
}

// newMux wires the HTTP API around a server. It is separated from main so
// tests can hammer the handlers through httptest.
func newMux(s *serve.Server, ds *data.Dataset) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /personalize", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Classes []int `json:"classes"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		// Canonicalize separates caller errors (bad class set → 400) from
		// server-side personalization failures (→ 500).
		canon, _, err := s.Canonicalize(req.Classes)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		p, cached, err := s.Personalize(canon)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, map[string]any{
			"key":               p.Key,
			"classes":           p.Classes,
			"cached":            cached,
			"accuracy":          p.Accuracy,
			"sparsity":          p.Report.AchievedSparsity,
			"flops_ratio":       p.Report.FLOPsRatio,
			"compressed_layers": p.Engine().CompressedLayers,
			"precision":         p.Engine().Precision().String(),
			"agreement":         p.Agreement,
		})
	})
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Classes []int       `json:"classes"`
			Samples int         `json:"samples"`
			Inputs  [][]float64 `json:"inputs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		canon, key, err := s.Canonicalize(req.Classes)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if len(req.Inputs) > 0 {
			x, err := inputsToBatch(req.Inputs, ds)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			preds, err := s.Predict(canon, x)
			if err != nil {
				httpError(w, predictStatus(err), err)
				return
			}
			writeJSON(w, map[string]any{"key": key, "predictions": preds, "samples": len(preds)})
			return
		}
		preds, labels, acc, err := s.PredictSamples(canon, req.Samples)
		if err != nil {
			httpError(w, predictStatus(err), err)
			return
		}
		writeJSON(w, map[string]any{
			"key": key, "predictions": preds, "labels": labels,
			"accuracy": acc, "samples": len(preds),
		})
	})
	mux.HandleFunc("POST /snapshot", func(w http.ResponseWriter, r *http.Request) {
		// Explicit flush: write every cached engine that is not yet on disk.
		// Routine persistence does not need this (completions snapshot
		// write-behind); it is the admin hook before a planned restart.
		written, err := s.Flush()
		if errors.Is(err, serve.ErrNoSnapshotDir) {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		st := s.Stats()
		writeJSON(w, map[string]any{
			"written":         written,
			"snapshot_writes": st.SnapshotWrites,
			"snapshot_errors": st.SnapshotErrors,
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetrics(w, s.Stats())
	})
	return mux
}

// predictStatus maps a predict-path error to its HTTP status: admission
// rejections are the caller's signal to back off (429), everything else is
// a server-side failure.
func predictStatus(err error) int {
	if errors.Is(err, serve.ErrOverloaded) {
		return http.StatusTooManyRequests
	}
	return http.StatusInternalServerError
}

// writeMetrics renders the serve.Stats counters in the Prometheus text
// exposition format, including the batch-size distribution as a proper
// cumulative histogram.
func writeMetrics(w io.Writer, st serve.Stats) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP crisp_serve_%s %s\n# TYPE crisp_serve_%s counter\ncrisp_serve_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP crisp_serve_%s %s\n# TYPE crisp_serve_%s gauge\ncrisp_serve_%s %d\n", name, help, name, name, v)
	}
	counter("requests_total", "Personalize calls, including cache hits.", st.Requests)
	counter("cache_hits_total", "Requests served from the engine cache.", st.CacheHits)
	counter("cache_misses_total", "Requests that started a pruning job.", st.CacheMisses)
	counter("dedup_joins_total", "Requests that joined an in-flight identical job.", st.DedupJoins)
	counter("evictions_total", "Engines dropped by the LRU policy.", st.Evictions)
	counter("personalizations_total", "Completed pruning jobs.", st.Personalizations)
	counter("predict_batches_total", "Engine invocations on the predict path.", st.PredictBatches)
	counter("samples_predicted_total", "Samples served by those invocations.", st.SamplesPredicted)
	counter("rejected_total", "Predicts dropped by admission control (429).", st.Rejected)
	counter("flush_size_total", "Batches flushed by reaching max-batch.", st.FlushSize)
	counter("flush_linger_total", "Batches flushed by the linger timer.", st.FlushLinger)
	counter("flush_forced_total", "Partial batches forced out by a drain.", st.FlushForced)
	counter("predict_ns_total", "Wall nanoseconds inside predict engine calls.", st.PredictNS)
	counter("snapshot_writes_total", "Personalization records written to disk.", st.SnapshotWrites)
	counter("snapshot_errors_total", "Failed snapshot writes.", st.SnapshotErrors)
	counter("restore_hits_total", "Engines rebuilt from disk instead of re-pruned.", st.RestoreHits)
	counter("restore_errors_total", "Snapshot records that failed to load.", st.RestoreErrors)
	counter("agreement_samples_total", "Held-out samples measured for int8-vs-float top-1 agreement.", st.AgreementSamples)
	counter("agreement_matches_total", "Measured samples whose int8 and float top-1 agreed.", st.AgreementMatches)
	counter("warm_hits_total", "Cache misses resolved by a warm delta record.", st.WarmHits)
	counter("promotions_total", "Warm records promoted back to hot engines.", st.Promotions)
	counter("demotions_total", "Hot engines demoted to warm delta records.", st.Demotions)
	counter("warm_evictions_total", "Warm records dropped to the cold tier for budget.", st.WarmEvictions)
	counter("promote_errors_total", "Warm records that failed promote-time verification.", st.PromoteErrors)
	gauge("cached_engines", "Engines currently in the hot tier.", st.CachedEngines)
	gauge("in_flight", "Personalization jobs currently running.", st.InFlight)
	gauge("queue_depth", "Samples waiting in predict queues.", st.QueueDepth)
	gauge("workers", "Worker pool bound.", st.Workers)
	gauge64 := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP crisp_serve_%s %s\n# TYPE crisp_serve_%s gauge\ncrisp_serve_%s %d\n", name, help, name, name, v)
	}
	gauge64("memory_budget_bytes", "Configured resident tenant-state budget (0: single-level LRU).", st.MemoryBudgetBytes)
	gauge64("hot_bytes", "Resident bytes of hot compiled engines.", st.HotBytes)
	gauge64("warm_bytes", "Resident bytes of warm delta records.", st.WarmBytes)
	gauge("warm_entries", "Tenants currently held as warm delta records.", st.WarmEntries)
	gauge("cold_records", "Personalization records indexed in the snapshot store.", st.ColdRecords)
	gauge("shared_plans", "Canonical compiled plans in the cross-tenant dedup registry.", st.SharedPlans)
	gauge("shared_plan_refs", "Engine references onto canonical shared plans.", st.SharedPlanRefs)
	gauge64("shared_plan_bytes", "Bytes held once for all engines sharing each canonical plan.", st.SharedPlanBytes)

	// Precision as an info-style gauge (the mode is a label) and the
	// measured agreement ratio as a float gauge.
	fmt.Fprintf(w, "# HELP crisp_serve_precision Engine precision mode (1 for the active mode).\n# TYPE crisp_serve_precision gauge\ncrisp_serve_precision{mode=%q} 1\n", st.Precision)
	fmt.Fprintf(w, "# HELP crisp_serve_top1_agreement Measured int8-vs-float top-1 agreement ratio (1 when unmeasured).\n# TYPE crisp_serve_top1_agreement gauge\ncrisp_serve_top1_agreement %g\n", st.Top1Agreement)

	// Batch sizes as a cumulative histogram; Stats buckets are per-range.
	fmt.Fprintf(w, "# HELP crisp_serve_batch_size Samples per predict engine invocation.\n# TYPE crisp_serve_batch_size histogram\n")
	bounds := []string{"1", "2", "4", "8", "16", "32", "64", "+Inf"}
	cum := uint64(0)
	for i, le := range bounds {
		cum += st.BatchSizeHist[i]
		fmt.Fprintf(w, "crisp_serve_batch_size_bucket{le=%q} %d\n", le, cum)
	}
	fmt.Fprintf(w, "crisp_serve_batch_size_sum %d\n", st.SamplesPredicted)
	fmt.Fprintf(w, "crisp_serve_batch_size_count %d\n", st.PredictBatches)
}

// parseBytes parses a human byte size: a plain integer, or one with a K/M/G
// binary suffix (case-insensitive, optional trailing B/iB). Empty means 0
// (tiering disabled).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	up := strings.ToUpper(s)
	up = strings.TrimSuffix(strings.TrimSuffix(up, "IB"), "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(up, "K"):
		mult, up = 1<<10, strings.TrimSuffix(up, "K")
	case strings.HasSuffix(up, "M"):
		mult, up = 1<<20, strings.TrimSuffix(up, "M")
	case strings.HasSuffix(up, "G"):
		mult, up = 1<<30, strings.TrimSuffix(up, "G")
	case strings.HasSuffix(up, "T"):
		mult, up = 1<<40, strings.TrimSuffix(up, "T")
	}
	n, err := strconv.ParseInt(up, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q (want e.g. 1073741824, 512M, 2G)", s)
	}
	return n * mult, nil
}

// inputsToBatch validates caller-provided images against the dataset shape
// and stacks them into one [B,C,H,W] batch.
func inputsToBatch(inputs [][]float64, ds *data.Dataset) (*tensor.Tensor, error) {
	c, h, w := ds.Channels, ds.H, ds.W
	vol := c * h * w
	xs := make([]*tensor.Tensor, len(inputs))
	for i, in := range inputs {
		if len(in) != vol {
			return nil, fmt.Errorf("input %d has %d values, want C*H*W=%d", i, len(in), vol)
		}
		xs[i] = tensor.FromSlice(in, 1, c, h, w)
	}
	return tensor.Concat(xs), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
