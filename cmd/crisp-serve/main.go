// Command crisp-serve exposes the CRISP personalization service over HTTP:
// one pretrained universal model, per-user pruned engines built on a
// bounded worker pool, cached with LRU eviction and in-flight deduplication
// (see internal/serve for the cache semantics, internal/api for the
// endpoint surface).
//
// Endpoints (internal/api):
//
//	POST /personalize {"classes":[3,17,42]}
//	POST /predict     {"classes":[3,17,42], "samples":16}
//	POST /predict     {"classes":[3,17,42], "inputs":[[...C*H*W floats...], ...]}
//	POST /snapshot    (flush every cached engine to the snapshot dir)
//	GET  /stats
//	GET  /metrics     (Prometheus text exposition of the /stats counters)
//	GET  /healthz     (liveness + load; probed by crisp-router)
//	POST /drain       (shard drain: flush + handoff manifest)
//	POST /handoff     (adopt a tenant from the shared snapshot store)
//
// With -snapshot-dir the server is durable: completed personalizations are
// snapshotted write-behind, evicted engines keep their disk copy, and a
// restart restores every engine from disk instead of re-pruning. Pointing
// several shards at one shared directory makes it the cluster's handoff
// channel (see cmd/crisp-router).
//
// With -memory-budget (e.g. -memory-budget 512M) the engine cache becomes a
// three-tier hot/warm/cold hierarchy: hot compiled engines up to
// -hot-fraction of the budget, evicted engines demoted to compact warm
// delta records over the shared universal weights, and warm records
// squeezed past the budget falling back to disk snapshots. Promotion back
// to hot is bit-identical (QuantSignature-identical on int8); /metrics
// exposes the tier gauges and flow counters (crisp_serve_hot_bytes,
// crisp_serve_warm_bytes, crisp_serve_demotions_total, ...).
//
// Concurrent /predict requests for the same class set coalesce into shared
// engine invocations (dynamic batching; -max-batch, -linger, -max-queue).
// When a personalization's predict queue is full the server sheds load
// with 429 Too Many Requests instead of queueing without bound.
//
// Tenants carry a QoS class (gold, standard or batch; set via the
// /personalize "qos" field) that shapes scheduling: per-class latency
// budgets flush batches before a rider's deadline, and per-tenant
// class-weighted token buckets shed over-quota tenants (429) once the
// server is under queue pressure — so a single abusive tenant is shed
// before admission control has to reject everyone. Tune with -qos-gold /
// -qos-standard / -qos-batch ("budget=10ms,rps=400,burst=100"),
// -shed-watermark and -shed-global-queue; -qos-off reverts to plain FIFO
// batching (the baseline cmd/crisp-load compares against).
//
// With -precision int8 every personalized engine runs from int8 quantized
// plans (the CRISP-STC deployment precision): int8 weight codes, int32
// accumulation, dequantize-on-store. Each personalization measures its
// top-1 agreement against the full-precision engine once, on its held-out
// split; /personalize reports it per tenant and /stats and /metrics
// aggregate it fleet-wide (crisp_serve_top1_agreement).
//
// With -pprof-addr the server additionally exposes net/http/pprof on a
// separate listener (off by default; bind it to localhost), so CPU and heap
// profiles of the predict hot path can be captured in-situ.
//
// Shutdown is graceful: SIGINT/SIGTERM stops the listener, drains in-flight
// handlers (bounded by -shutdown-timeout), kicks queued predict batches out
// so no rider is stranded, flushes every pending write-behind snapshot to
// disk, and only then exits. Killing a shard with -snapshot-dir set
// therefore never loses a completed personalization — the invariant the
// cluster's drain/handoff machinery is built on.
//
// Usage:
//
//	crisp-serve -addr :8080 -num-classes 20 -target 0.85 -precision int8 -snapshot-dir /var/lib/crisp -shard-id shard-0
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (served only via -pprof-addr)
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/data"
	"repro/internal/fault"
	"repro/internal/inference"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/serve"
	"repro/internal/sparsity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crisp-serve: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		family     = flag.String("model", "resnet-s", "model family: resnet-s, vgg-s, mobilenet-s, transformer-s")
		width      = flag.Int("width", 2, "model width multiplier")
		numClasses = flag.Int("num-classes", 20, "number of classes in the universal model")
		pretrain   = flag.Int("pretrain-epochs", 4, "universal pre-training epochs at startup")
		perClass   = flag.Int("pretrain-per-class", 12, "pre-training samples per class")
		target     = flag.Float64("target", 0.85, "global sparsity target κ per personalization")
		workers    = flag.Int("workers", 0, "personalization worker bound (0 = GOMAXPROCS)")
		cacheSize  = flag.Int("cache", 64, "maximum cached engines (LRU beyond)")
		memBudget  = flag.String("memory-budget", "", "resident tenant-state byte budget enabling the hot/warm/cold tiered cache, e.g. 512M or 2G (empty: single-level LRU)")
		hotFrac    = flag.Float64("hot-fraction", 0.75, "share of -memory-budget reserved for hot compiled engines; the rest holds warm delta records")
		snapDir    = flag.String("snapshot-dir", "", "durable personalization store directory (empty: memory-only); shards sharing one directory can hand tenants off through it")
		maxBatch   = flag.Int("max-batch", 16, "coalesce concurrent predicts up to this many samples per engine call (1 disables batching)")
		linger     = flag.Duration("linger", 2*time.Millisecond, "max time a predict waits for batch mates before flushing")
		maxQueue   = flag.Int("max-queue", 256, "per-personalization predict queue bound in samples (full queue replies 429)")
		precision  = flag.String("precision", "float32", "engine precision: float32 (exact) or int8 (quantized plans; ~int8 tensor-core deployment)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty: disabled)")
		shardID    = flag.String("shard-id", "", "shard identity reported on /healthz and in drain manifests (empty: standalone)")
		shutdownTO = flag.Duration("shutdown-timeout", 30*time.Second, "max time to wait for in-flight requests on SIGINT/SIGTERM before forcing the listener closed")
		seed       = flag.Int64("seed", 1, "random seed")

		qosOff      = flag.Bool("qos-off", false, "disable QoS load shaping (no per-tenant quotas or deadline flushes; the FIFO baseline)")
		qosGold     = flag.String("qos-gold", "", "gold-class policy overrides, e.g. budget=10ms,rps=400,burst=100 (empty: defaults)")
		qosStandard = flag.String("qos-standard", "", "standard-class policy overrides (empty: defaults)")
		qosBatch    = flag.String("qos-batch", "", "batch-class policy overrides (empty: defaults)")
		shedWM      = flag.Float64("shed-watermark", 0, "fraction of -shed-global-queue at which over-quota tenants shed (0: default 0.5)")
		shedGlobal  = flag.Int("shed-global-queue", 0, "server-wide queued-sample reference for the shed watermark (0: 4 x max-queue)")

		faultDisk = flag.String("fault-disk", "", "ARM SEEDED DISK FAULTS under the snapshot store (testing only), e.g. write-err=0.01,torn=0.005,read-flip=0.001,sync-err=0.01,rename-err=0.01,sync-delay=2ms (empty: none)")
		faultSeed = flag.Int64("fault-seed", 0, "injection seed for -fault-disk; same seed, same fault sequence (0: derived from -seed)")
	)
	flag.Parse()

	f := models.Family(*family)
	switch f {
	case models.ResNet, models.VGG, models.MobileNet, models.Transformer:
	default:
		log.Fatalf("unknown model %q (want resnet-s, vgg-s, mobilenet-s or transformer-s)", *family)
	}

	var prec inference.Precision
	switch *precision {
	case "float32", "float", "fp32":
		prec = inference.Float32
	case "int8", "i8":
		prec = inference.Int8
	default:
		log.Fatalf("unknown precision %q (want float32 or int8)", *precision)
	}

	budget, err := parseBytes(*memBudget)
	if err != nil {
		log.Fatal(err)
	}

	qos := serve.QoSOptions{
		Disabled:      *qosOff,
		ShedWatermark: *shedWM,
		GlobalQueue:   *shedGlobal,
	}
	for _, c := range []struct {
		class serve.QoSClass
		spec  string
		dst   *serve.QoSPolicy
	}{
		{serve.QoSGold, *qosGold, &qos.Gold},
		{serve.QoSStandard, *qosStandard, &qos.Standard},
		{serve.QoSBatch, *qosBatch, &qos.Batch},
	} {
		pol, err := serve.ParseQoSPolicy(serve.DefaultQoSPolicy(c.class), c.spec)
		if err != nil {
			log.Fatalf("-qos-%s: %v", c.class, err)
		}
		*c.dst = pol
	}

	// Reject bad pruning flags before paying for pre-training.
	prune := pruner.Options{
		Target: *target, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
		Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
	}
	if err := prune.Validate(); err != nil {
		log.Fatal(err)
	}

	ds := data.New(data.Config{
		Name: "serve", NumClasses: *numClasses, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: *seed,
	})
	build := func() *nn.Classifier {
		return models.Build(f, rand.New(rand.NewSource(*seed+1)), *numClasses, *width)
	}

	log.Printf("pre-training universal %s (%d classes, %d epochs)...", f, *numClasses, *pretrain)
	start := time.Now()
	base := build()
	all := make([]int, *numClasses)
	for i := range all {
		all[i] = i
	}
	opt := nn.NewSGD(0.05, 0.9, 4e-5)
	pruner.Finetune(base, ds.MakeSplit("pretrain", all, *perClass), *pretrain, 16, opt, rand.New(rand.NewSource(*seed+2)))
	log.Printf("pre-trained in %.1fs", time.Since(start).Seconds())

	var fsys fault.FS
	if *faultDisk != "" {
		df, err := parseDiskFaults(*faultDisk)
		if err != nil {
			log.Fatalf("-fault-disk: %v", err)
		}
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed + 3
		}
		fsys = fault.NewFS(fault.OS{}, fault.NewInjector(fseed), df)
		log.Printf("WARNING: seeded disk faults armed under the snapshot store (%s; seed %d) — testing configuration, never production", *faultDisk, fseed)
	}

	s, err := serve.NewServer(build, base, ds, serve.Options{
		Workers:           *workers,
		CacheSize:         *cacheSize,
		Prune:             prune,
		SnapshotDir:       *snapDir,
		FS:                fsys,
		MaxBatch:          *maxBatch,
		Linger:            *linger,
		MaxQueue:          *maxQueue,
		Precision:         prec,
		MemoryBudgetBytes: budget,
		HotFraction:       *hotFrac,
		QoS:               qos,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *snapDir != "" {
		n, err := s.Restore()
		if err != nil {
			log.Fatal(err)
		}
		st := s.Stats()
		log.Printf("restored %d personalization(s) from %s (%d bad record(s) skipped)", n, *snapDir, st.RestoreErrors)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}

	tierMode := "single-level LRU"
	if budget > 0 {
		tierMode = fmt.Sprintf("tiered, budget %d bytes (hot %.0f%%)", budget, *hotFrac*100)
	}
	shard := "standalone"
	if *shardID != "" {
		shard = "shard " + *shardID
	}
	qosMode := "qos on"
	if *qosOff {
		qosMode = "qos off (FIFO)"
	}
	log.Printf("serving on %s (%s, %d workers, cache %d, %s, max-batch %d, linger %v, max-queue %d, precision %s, %s)",
		ln.Addr(), shard, s.Stats().Workers, *cacheSize, tierMode, *maxBatch, *linger, *maxQueue, prec, qosMode)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	mux := api.NewMux(s, ds, api.Config{ShardID: *shardID})
	if err := run(ln, mux, *pprofAddr, s, *snapDir != "", sigc, *shutdownTO); err != nil {
		log.Fatal(err)
	}
	log.Printf("shutdown complete")
}

// run serves mux on ln until the listener fails or a signal arrives on
// sigc, then shuts down losslessly, in dependency order:
//
//  1. http.Server.Shutdown stops accepting and drains in-flight handlers
//     (bounded by timeout), so no request is cut off mid-response.
//  2. Server.DrainBatches kicks any predict batch still lingering for
//     batch mates, so queued riders are answered instead of stranded.
//  3. Server.Flush synchronously writes every personalization the
//     write-behind path has not landed yet — nothing durable is lost.
//  4. Server.Close drains the worker pool and the remaining pending
//     snapshot registrations.
//
// The predecessor of this path was log.Fatal(http.ListenAndServe(...)):
// a SIGTERM killed the process between a completed personalization and its
// write-behind snapshot, silently dropping records — the bug that made
// shard draining impossible to build. Both listeners carry read/header/idle
// timeouts so a slow-loris client cannot pin a connection open forever, and
// the pprof listener is shut down through the same path instead of dying
// with a spurious error log.
func run(ln net.Listener, mux http.Handler, pprofAddr string, s *serve.Server, hasStore bool, sigc <-chan os.Signal, timeout time.Duration) error {
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	var pprofSrv *http.Server
	if pprofAddr != "" {
		// The profiling endpoint is opt-in and on its own listener (bind it
		// to localhost), so hot-path profiles can be captured in-situ
		// without exposing /debug/pprof next to the public API. The pprof
		// import registers on DefaultServeMux; the API mux is separate, so
		// the main address never serves profiles.
		pprofSrv = &http.Server{
			Addr:              pprofAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			log.Printf("pprof on %s (go tool pprof http://%s/debug/pprof/profile)", pprofAddr, pprofAddr)
			// A failed debug listener must not take live traffic down with
			// it: log and keep serving the API. ErrServerClosed is the
			// normal shutdown path, not an error worth logging.
			if err := pprofSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof listener exited: %v", err)
			}
		}()
	}

	select {
	case err := <-errc:
		// The listener failed outright (port taken away, fd limit): still
		// run the lossless teardown so pending snapshots reach disk.
		gracefulStop(nil, pprofSrv, s, hasStore, timeout)
		return err
	case sig := <-sigc:
		log.Printf("received %v, shutting down (draining requests, flushing snapshots)...", sig)
		gracefulStop(srv, pprofSrv, s, hasStore, timeout)
		return nil
	}
}

// gracefulStop is the teardown half of run; srv may be nil when the
// listener already died.
func gracefulStop(srv, pprofSrv *http.Server, s *serve.Server, hasStore bool, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: draining requests: %v", err)
		}
	}
	if pprofSrv != nil {
		if err := pprofSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: stopping pprof listener: %v", err)
		}
	}
	s.DrainBatches()
	if hasStore {
		if n, err := s.Flush(); err != nil {
			log.Printf("shutdown: flushing snapshots: %v", err)
		} else if n > 0 {
			log.Printf("shutdown: flushed %d pending snapshot(s)", n)
		}
	}
	s.Close()
}

// parseBytes parses a human byte size: a plain integer, or one with a K/M/G
// binary suffix (case-insensitive, optional trailing B/iB). Empty means 0
// (tiering disabled).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	up := strings.ToUpper(s)
	up = strings.TrimSuffix(strings.TrimSuffix(up, "IB"), "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(up, "K"):
		mult, up = 1<<10, strings.TrimSuffix(up, "K")
	case strings.HasSuffix(up, "M"):
		mult, up = 1<<20, strings.TrimSuffix(up, "M")
	case strings.HasSuffix(up, "G"):
		mult, up = 1<<30, strings.TrimSuffix(up, "G")
	case strings.HasSuffix(up, "T"):
		mult, up = 1<<40, strings.TrimSuffix(up, "T")
	}
	n, err := strconv.ParseInt(up, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q (want e.g. 1073741824, 512M, 2G)", s)
	}
	return n * mult, nil
}

// parseDiskFaults parses the -fault-disk spec: comma-separated key=value
// pairs over the fault.DiskFaults probabilities plus sync-delay as a
// duration, e.g. "write-err=0.01,torn=0.005,sync-delay=2ms".
func parseDiskFaults(spec string) (fault.DiskFaults, error) {
	var df fault.DiskFaults
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return df, fmt.Errorf("%q is not key=value", kv)
		}
		if key == "sync-delay" {
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return df, fmt.Errorf("invalid sync-delay %q", val)
			}
			df.SyncDelay = d
			continue
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return df, fmt.Errorf("invalid probability %q for %s", val, key)
		}
		switch key {
		case "write-err":
			df.WriteErr = p
		case "torn":
			df.TornWrite = p
		case "read-flip":
			df.ReadFlip = p
		case "sync-err":
			df.SyncErr = p
		case "rename-err":
			df.RenameErr = p
		default:
			return df, fmt.Errorf("unknown fault %q (want write-err, torn, read-flip, sync-err, rename-err, sync-delay)", key)
		}
	}
	return df, nil
}
