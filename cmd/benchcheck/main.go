// Command benchcheck turns `go test -bench` output into a machine-readable
// JSON artifact and gates benchmark regressions against a checked-in
// baseline — the CI side of the serving/inference micro-benchmarks.
//
// Usage:
//
//	go test -bench 'Inference|Serve' -benchtime 1x -run '^$' . | \
//	    benchcheck -out BENCH_serve.json -baseline BENCH_baseline.json
//
// Each benchmark records ns/op and, when the benchmark reports it
// (b.ReportAllocs or -benchmem), allocs/op. The gate fails (exit 1) when:
//
//   - any baseline benchmark's ns/op regresses by more than -threshold
//     (default 0.30, i.e. +30%),
//   - any baseline benchmark's allocs/op regresses by more than
//     -allocs-threshold (default 0.30) AND by more than -allocs-slack
//     absolute allocations (default 16; the slack keeps tiny counts, where
//     a single sync.Pool warm-up miss is a large ratio, from flapping),
//   - or a baseline benchmark disappeared from the run entirely (a deleted
//     or renamed benchmark must refresh the baseline).
//
// Custom metrics a benchmark reports via b.ReportMetric are recorded in the
// artifact under "custom". Units listed in gatedUnits (tenants/GB,
// densityX) are gated in their own direction — higher is better, so the
// gate fails when the value DROPS by more than -threshold, and when a
// baseline's gated unit disappears from the run; the timing noise floor
// does not silence them. All other custom units are informational.
//
// Benchmarks absent from the baseline are reported but never fail — they
// are adopted on the next refresh. Sub-(-min-ns) baselines are skipped
// entirely: below that scale, scheduler noise swamps any real regression.
// Baselines written before allocs/op was recorded (plain-number JSON
// values) still load; their allocation gate is simply inactive until the
// next refresh.
//
// Refresh the baseline by re-running the same pipeline with -out pointed at
// the baseline file (see README "Benchmark regression gate").
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkServePredict_Concurrent-8   20   706111 ns/op   84 B/op   2 allocs/op
//
// capturing the name (GOMAXPROCS suffix stripped) and the ns/op value,
// which gotest prints as an integer or a float depending on magnitude.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

// allocsField matches the allocs/op metric anywhere on a result line.
var allocsField = regexp.MustCompile(`\s([0-9.e+]+) allocs/op`)

// Metric is one benchmark's recorded costs. AllocsOp is -1 when the run
// (or a pre-allocs baseline) did not report allocations. Custom holds every
// non-standard unit the benchmark reported via b.ReportMetric (e.g.
// "tenants/GB"); all are recorded in artifacts, but only units listed in
// gatedUnits participate in the regression gate.
type Metric struct {
	NsOp     float64            `json:"ns_op"`
	AllocsOp float64            `json:"allocs_op"`
	Custom   map[string]float64 `json:"custom,omitempty"`
}

// gatedUnits names the custom units the gate enforces and their direction:
// true means larger is an improvement (throughput, density — the gate fails
// when the value drops past the threshold), false means smaller is.
// Unlisted custom units (flop/op, MB/s, ...) are informational only: gating
// arbitrary units would let one noisy reporter fail unrelated changes.
var gatedUnits = map[string]bool{
	"tenants/GB": true,
	"densityX":   true,
}

// UnmarshalJSON accepts both the current object form and the legacy
// baseline schema, where each benchmark mapped to a bare ns/op number.
func (m *Metric) UnmarshalJSON(b []byte) error {
	var ns float64
	if err := json.Unmarshal(b, &ns); err == nil {
		m.NsOp, m.AllocsOp = ns, -1
		return nil
	}
	type metricJSON Metric // no methods: avoids recursing into this func
	// A missing allocs_op field must mean "not recorded" (gate inactive),
	// not "zero allocations" — the zero value would fail the allocs gate
	// for every benchmark on the next run.
	v := metricJSON{AllocsOp: -1}
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*m = Metric(v)
	return nil
}

// Report is the BENCH_serve.json schema: benchmark name → metrics.
type Report struct {
	Benchmarks map[string]Metric `json:"benchmarks"`
}

// parseBench extracts ns/op and allocs/op per benchmark from
// `go test -bench` output. Duplicate names (e.g. -count > 1) keep the
// minimum of each metric: the repeat least disturbed by the machine is the
// closest to the code's true cost.
func parseBench(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: map[string]Metric{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return rep, fmt.Errorf("benchcheck: bad ns/op in %q: %w", line, err)
		}
		allocs := -1.0
		if am := allocsField.FindStringSubmatch(line); am != nil {
			allocs, err = strconv.ParseFloat(am[1], 64)
			if err != nil {
				return rep, fmt.Errorf("benchcheck: bad allocs/op in %q: %w", line, err)
			}
		}
		custom := parseCustom(line)
		cur, seen := rep.Benchmarks[m[1]]
		if !seen {
			rep.Benchmarks[m[1]] = Metric{NsOp: ns, AllocsOp: allocs, Custom: custom}
			continue
		}
		if ns < cur.NsOp {
			cur.NsOp = ns
		}
		if allocs >= 0 && (cur.AllocsOp < 0 || allocs < cur.AllocsOp) {
			cur.AllocsOp = allocs
		}
		// Repeats keep the best value per direction: the run least disturbed
		// by the machine (max for higher-is-better units, min otherwise).
		for unit, v := range custom {
			if cur.Custom == nil {
				cur.Custom = map[string]float64{}
			}
			if old, ok := cur.Custom[unit]; !ok || (gatedUnits[unit] && v > old) || (!gatedUnits[unit] && v < old) {
				cur.Custom[unit] = v
			}
		}
		rep.Benchmarks[m[1]] = cur
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("benchcheck: no benchmark lines found in input")
	}
	return rep, nil
}

// stdUnits are the metric units handled by dedicated parsing (or ignored);
// anything else on a result line is a custom b.ReportMetric unit.
var stdUnits = map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true}

// parseCustom extracts the custom value/unit pairs from one result line.
// After the name and iteration count, gotest output is strictly
// "value unit" pairs, so a pair scan is exact; nil when there are none.
func parseCustom(line string) map[string]float64 {
	f := strings.Fields(line)
	var out map[string]float64
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			break
		}
		if stdUnits[f[i+1]] {
			continue
		}
		if out == nil {
			out = map[string]float64{}
		}
		out[f[i+1]] = v
	}
	return out
}

// gateOptions are the regression thresholds (see the command doc).
type gateOptions struct {
	threshold       float64 // max ns/op regression, fractional
	minNS           float64 // skip baselines below this ns/op (noise floor)
	allocsThreshold float64 // max allocs/op regression, fractional
	allocsSlack     float64 // absolute allocs/op regression always tolerated
}

// gate compares a run against the baseline and returns human-readable
// verdict lines plus the failures.
func gate(run, base Report, opts gateOptions) (lines []string, failures []string) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		old := base.Benchmarks[name]
		cur, ok := run.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from the run (refresh the baseline if it was removed)", name))
			continue
		}
		// The timing floor silences timing and allocation verdicts — at that
		// scale scheduler noise swamps both — but not custom units: a density
		// or throughput metric is a measured property, not a wall time.
		skipTiming := old.NsOp < opts.minNS
		switch {
		case skipTiming:
			lines = append(lines, fmt.Sprintf("%s: %.0f ns/op (baseline %.0f below the %.0f ns gate floor, skipped)", name, cur.NsOp, old.NsOp, opts.minNS))
		case cur.NsOp > old.NsOp*(1+opts.threshold):
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%, limit +%.0f%%)",
				name, cur.NsOp, old.NsOp, 100*(cur.NsOp/old.NsOp-1), 100*opts.threshold))
		default:
			lines = append(lines, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%)", name, cur.NsOp, old.NsOp, 100*(cur.NsOp/old.NsOp-1)))
		}
		// The allocation gate runs alongside the timing verdict, but only
		// when both sides recorded allocs.
		switch {
		case skipTiming || old.AllocsOp < 0 || cur.AllocsOp < 0:
		case cur.AllocsOp > old.AllocsOp*(1+opts.allocsThreshold) && cur.AllocsOp > old.AllocsOp+opts.allocsSlack:
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (%+.1f%%, limit +%.0f%% and +%.0f absolute)",
				name, cur.AllocsOp, old.AllocsOp, 100*(cur.AllocsOp/old.AllocsOp-1), 100*opts.allocsThreshold, opts.allocsSlack))
		default:
			lines = append(lines, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f", name, cur.AllocsOp, old.AllocsOp))
		}
		// Custom-unit gate: only gatedUnits fail the run, in their own
		// direction; everything else custom is informational.
		units := make([]string, 0, len(old.Custom))
		for unit := range old.Custom {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			ov := old.Custom[unit]
			cv, have := cur.Custom[unit]
			higher, gated := gatedUnits[unit]
			if !gated {
				continue
			}
			switch {
			case !have:
				failures = append(failures, fmt.Sprintf("%s: custom metric %s in baseline but missing from the run", name, unit))
			case higher && cv < ov*(1-opts.threshold):
				failures = append(failures, fmt.Sprintf("%s: %.2f %s vs baseline %.2f (%+.1f%%, limit -%.0f%%)",
					name, cv, unit, ov, 100*(cv/ov-1), 100*opts.threshold))
			case !higher && cv > ov*(1+opts.threshold):
				failures = append(failures, fmt.Sprintf("%s: %.2f %s vs baseline %.2f (%+.1f%%, limit +%.0f%%)",
					name, cv, unit, ov, 100*(cv/ov-1), 100*opts.threshold))
			default:
				lines = append(lines, fmt.Sprintf("%s: %.2f %s vs baseline %.2f (%+.1f%%)", name, cv, unit, ov, 100*(cv/ov-1)))
			}
		}
	}
	for name := range run.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			lines = append(lines, fmt.Sprintf("%s: %.0f ns/op (new, not in baseline)", name, run.Benchmarks[name].NsOp))
		}
	}
	return lines, failures
}

func main() {
	var (
		in        = flag.String("in", "-", "bench output to read (- = stdin)")
		out       = flag.String("out", "", "write the run as JSON to this path (empty: don't)")
		baseline  = flag.String("baseline", "", "baseline JSON to gate against (empty: no gate)")
		threshold = flag.Float64("threshold", 0.30, "max allowed ns/op regression, as a fraction")
		minNS     = flag.Float64("min-ns", 100_000, "skip baselines below this many ns/op (noise floor)")
		allocsThr = flag.Float64("allocs-threshold", 0.30, "max allowed allocs/op regression, as a fraction")
		allocsSlk = flag.Float64("allocs-slack", 16, "absolute allocs/op regression always tolerated")
	)
	flag.Parse()

	src := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	run, err := parseBench(src)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		buf, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: wrote %d benchmark(s) to %s\n", len(run.Benchmarks), *out)
	}
	if *baseline == "" {
		return
	}
	buf, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		fatal(fmt.Errorf("benchcheck: baseline %s: %w", *baseline, err))
	}
	lines, failures := gate(run, base, gateOptions{
		threshold:       *threshold,
		minNS:           *minNS,
		allocsThreshold: *allocsThr,
		allocsSlack:     *allocsSlk,
	})
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION "+f)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
