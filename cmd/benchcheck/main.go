// Command benchcheck turns `go test -bench` output into a machine-readable
// JSON artifact and gates benchmark regressions against a checked-in
// baseline — the CI side of the serving/inference micro-benchmarks.
//
// Usage:
//
//	go test -bench 'Inference|Serve' -benchtime 1x -run '^$' . | \
//	    benchcheck -out BENCH_serve.json -baseline BENCH_baseline.json
//
// The gate fails (exit 1) when any baseline benchmark regresses by more
// than -threshold (default 0.30, i.e. +30% ns/op), or disappeared from the
// run entirely (a deleted or renamed benchmark must refresh the baseline).
// Benchmarks absent from the baseline are reported but never fail — they
// are adopted on the next refresh. Sub-(-min-ns) baselines are skipped:
// below that scale, scheduler noise swamps any real regression.
//
// Refresh the baseline by re-running the same pipeline with -out pointed at
// the baseline file (see README "Benchmark regression gate").
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkServePredict_Concurrent-8   20   706111 ns/op   12 flop/op
//
// capturing the name (GOMAXPROCS suffix stripped) and the ns/op value,
// which gotest prints as an integer or a float depending on magnitude.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

// Report is the BENCH_serve.json schema: benchmark name → ns/op.
type Report struct {
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// parseBench extracts ns/op per benchmark from `go test -bench` output.
// Duplicate names (e.g. -count > 1) keep the minimum: the repeat least
// disturbed by the machine is the closest to the code's true cost.
func parseBench(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: map[string]float64{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return rep, fmt.Errorf("benchcheck: bad ns/op in %q: %w", sc.Text(), err)
		}
		if old, ok := rep.Benchmarks[m[1]]; !ok || ns < old {
			rep.Benchmarks[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("benchcheck: no benchmark lines found in input")
	}
	return rep, nil
}

// gate compares a run against the baseline and returns human-readable
// verdict lines plus the failures. minNS skips baselines too small to gate
// (pure scheduler noise at that scale).
func gate(run, base Report, threshold, minNS float64) (lines []string, failures []string) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		old := base.Benchmarks[name]
		ns, ok := run.Benchmarks[name]
		switch {
		case !ok:
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from the run (refresh the baseline if it was removed)", name))
		case old < minNS:
			lines = append(lines, fmt.Sprintf("%s: %.0f ns/op (baseline %.0f below the %.0f ns gate floor, skipped)", name, ns, old, minNS))
		case ns > old*(1+threshold):
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%, limit +%.0f%%)",
				name, ns, old, 100*(ns/old-1), 100*threshold))
		default:
			lines = append(lines, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%)", name, ns, old, 100*(ns/old-1)))
		}
	}
	for name := range run.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			lines = append(lines, fmt.Sprintf("%s: %.0f ns/op (new, not in baseline)", name, run.Benchmarks[name]))
		}
	}
	return lines, failures
}

func main() {
	var (
		in        = flag.String("in", "-", "bench output to read (- = stdin)")
		out       = flag.String("out", "", "write the run as JSON to this path (empty: don't)")
		baseline  = flag.String("baseline", "", "baseline JSON to gate against (empty: no gate)")
		threshold = flag.Float64("threshold", 0.30, "max allowed ns/op regression, as a fraction")
		minNS     = flag.Float64("min-ns", 100_000, "skip baselines below this many ns/op (noise floor)")
	)
	flag.Parse()

	src := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	run, err := parseBench(src)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		buf, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: wrote %d benchmark(s) to %s\n", len(run.Benchmarks), *out)
	}
	if *baseline == "" {
		return
	}
	buf, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		fatal(fmt.Errorf("benchcheck: baseline %s: %w", *baseline, err))
	}
	lines, failures := gate(run, base, *threshold, *minNS)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION "+f)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
