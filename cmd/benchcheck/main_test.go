package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInference_SparseBatch16 	      10	  12288496 ns/op	 5242880 B/op	     320 allocs/op
BenchmarkInference_TransformerBatch16-8 	      10	    870526 ns/op	  131072 B/op	      64 allocs/op
BenchmarkServePredict_Concurrent 	      20	    706111 ns/op
BenchmarkGEMM 	     100	  11479391 ns/op	 115605504 flop/op	      12 allocs/op
BenchmarkTiny 	 1000000	      1052 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	3.797s
`

// metricEq compares two metrics including their custom units (Metric holds
// a map, so == is unavailable).
func metricEq(a, b Metric) bool {
	if a.NsOp != b.NsOp || a.AllocsOp != b.AllocsOp || len(a.Custom) != len(b.Custom) {
		return false
	}
	for unit, v := range a.Custom {
		if b.Custom[unit] != v {
			return false
		}
	}
	return true
}

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Metric{
		"BenchmarkInference_SparseBatch16":      {NsOp: 12288496, AllocsOp: 320},
		"BenchmarkInference_TransformerBatch16": {NsOp: 870526, AllocsOp: 64}, // -8 suffix stripped
		"BenchmarkServePredict_Concurrent":      {NsOp: 706111, AllocsOp: -1}, // no allocs reported
		"BenchmarkGEMM":                         {NsOp: 11479391, AllocsOp: 12, Custom: map[string]float64{"flop/op": 115605504}},
		"BenchmarkTiny":                         {NsOp: 1052, AllocsOp: 0},
	}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("parsed %v, want %d entries", rep.Benchmarks, len(want))
	}
	for name, m := range want {
		if !metricEq(rep.Benchmarks[name], m) {
			t.Errorf("%s = %+v, want %+v", name, rep.Benchmarks[name], m)
		}
	}
}

func TestParseBenchCustomMetrics(t *testing.T) {
	// Repeats keep the best value per direction: max for gated
	// higher-is-better units, min for everything else.
	out := "BenchmarkServeTenantsPerGB \t 1\t 900000000 ns/op\t 140.50 tenants/GB\t 3.20 densityX\n" +
		"BenchmarkServeTenantsPerGB \t 1\t 800000000 ns/op\t 150.25 tenants/GB\t 3.10 densityX\n"
	rep, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Benchmarks["BenchmarkServeTenantsPerGB"]
	if m.NsOp != 800000000 {
		t.Fatalf("ns/op %v, want min of repeats", m.NsOp)
	}
	if m.Custom["tenants/GB"] != 150.25 || m.Custom["densityX"] != 3.20 {
		t.Fatalf("custom metrics %v, want max of repeats for gated units", m.Custom)
	}
	// Round-trips through the JSON artifact schema.
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !metricEq(back.Benchmarks["BenchmarkServeTenantsPerGB"], m) {
		t.Fatalf("round trip = %+v, want %+v", back.Benchmarks["BenchmarkServeTenantsPerGB"], m)
	}
}

func TestParseBenchKeepsMinimumOfRepeats(t *testing.T) {
	out := "BenchmarkX \t 10\t 2000000 ns/op\t 10 allocs/op\nBenchmarkX \t 10\t 1500000 ns/op\t 12 allocs/op\n"
	rep, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Benchmarks["BenchmarkX"]; got.NsOp != 1500000 || got.AllocsOp != 10 {
		t.Fatalf("repeats must keep the per-metric minimum: got %+v", got)
	}
}

func TestParseBenchRejectsEmptyInput(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("no benchmark lines must be an error, not an empty artifact")
	}
}

// TestLegacyBaselineLoads: baselines written before allocs/op was recorded
// map benchmark names to bare ns/op numbers; they must still load, with the
// allocation gate inactive.
func TestLegacyBaselineLoads(t *testing.T) {
	legacy := `{"benchmarks": {"BenchmarkA": 1000000, "BenchmarkB": 2.5e6}}`
	var rep Report
	if err := json.Unmarshal([]byte(legacy), &rep); err != nil {
		t.Fatal(err)
	}
	if m := rep.Benchmarks["BenchmarkA"]; m.NsOp != 1_000_000 || m.AllocsOp != -1 {
		t.Fatalf("BenchmarkA = %+v", m)
	}
	if m := rep.Benchmarks["BenchmarkB"]; m.NsOp != 2_500_000 || m.AllocsOp != -1 {
		t.Fatalf("BenchmarkB = %+v", m)
	}
	// Object form without allocs_op (e.g. a hand-merged baseline) must mean
	// "not recorded", not "zero allocations".
	var partial Report
	if err := json.Unmarshal([]byte(`{"benchmarks": {"BenchmarkP": {"ns_op": 42}}}`), &partial); err != nil {
		t.Fatal(err)
	}
	if m := partial.Benchmarks["BenchmarkP"]; m.NsOp != 42 || m.AllocsOp != -1 {
		t.Fatalf("object form without allocs_op = %+v, want AllocsOp -1", m)
	}
	// Current-schema artifacts round-trip unchanged.
	buf, err := json.Marshal(Report{Benchmarks: map[string]Metric{"BenchmarkC": {NsOp: 5, AllocsOp: 7}}})
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if m := back.Benchmarks["BenchmarkC"]; m.NsOp != 5 || m.AllocsOp != 7 {
		t.Fatalf("round trip = %+v", m)
	}
}

var testGateOpts = gateOptions{threshold: 0.30, minNS: 100_000, allocsThreshold: 0.30, allocsSlack: 16}

func TestGate(t *testing.T) {
	base := Report{Benchmarks: map[string]Metric{
		"BenchmarkSteady":  {NsOp: 1_000_000, AllocsOp: 100},
		"BenchmarkSlower":  {NsOp: 1_000_000, AllocsOp: 100},
		"BenchmarkGone":    {NsOp: 1_000_000, AllocsOp: 100},
		"BenchmarkTooTiny": {NsOp: 10_000, AllocsOp: 100}, // below the noise floor
	}}
	run := Report{Benchmarks: map[string]Metric{
		"BenchmarkSteady":  {NsOp: 1_250_000, AllocsOp: 110}, // +25% ns, +10% allocs: inside budget
		"BenchmarkSlower":  {NsOp: 1_400_000, AllocsOp: 100}, // +40% ns: regression
		"BenchmarkTooTiny": {NsOp: 90_000, AllocsOp: 900},    // +800% but under the floor: skipped
		"BenchmarkNew":     {NsOp: 5_000_000, AllocsOp: 5},   // not in baseline: reported, not failed
	}}
	lines, failures := gate(run, base, testGateOpts)
	if len(failures) != 2 {
		t.Fatalf("failures %v, want regression + missing", failures)
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "BenchmarkSlower") || !strings.Contains(joined, "+40.0%") {
		t.Errorf("missing the +40%% regression: %v", failures)
	}
	if !strings.Contains(joined, "BenchmarkGone") || !strings.Contains(joined, "missing from the run") {
		t.Errorf("missing the vanished-benchmark failure: %v", failures)
	}
	all := strings.Join(lines, "\n")
	for _, want := range []string{"BenchmarkSteady", "BenchmarkTooTiny", "skipped", "BenchmarkNew", "not in baseline"} {
		if !strings.Contains(all, want) {
			t.Errorf("verdict lines missing %q:\n%s", want, all)
		}
	}
}

func TestGateAllocsRegression(t *testing.T) {
	base := Report{Benchmarks: map[string]Metric{
		"BenchmarkChurn": {NsOp: 1_000_000, AllocsOp: 100},
		"BenchmarkTiny":  {NsOp: 1_000_000, AllocsOp: 2},
		"BenchmarkNoOld": {NsOp: 1_000_000, AllocsOp: -1}, // legacy baseline entry
	}}
	run := Report{Benchmarks: map[string]Metric{
		"BenchmarkChurn": {NsOp: 1_000_000, AllocsOp: 200}, // +100% and +100 absolute: regression
		"BenchmarkTiny":  {NsOp: 1_000_000, AllocsOp: 10},  // +400% but within the absolute slack
		"BenchmarkNoOld": {NsOp: 1_000_000, AllocsOp: 999}, // no baseline allocs: gate inactive
	}}
	lines, failures := gate(run, base, testGateOpts)
	if len(failures) != 1 {
		t.Fatalf("failures %v, want exactly the allocs regression", failures)
	}
	if !strings.Contains(failures[0], "BenchmarkChurn") || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("wrong failure: %v", failures[0])
	}
	if !strings.Contains(strings.Join(lines, "\n"), "BenchmarkTiny") {
		t.Errorf("slack-tolerated benchmark missing from verdicts: %v", lines)
	}
}

func TestGateCustomMetrics(t *testing.T) {
	base := Report{Benchmarks: map[string]Metric{
		"BenchmarkDenser": {NsOp: 1_000_000, Custom: map[string]float64{"tenants/GB": 100, "densityX": 4}},
		"BenchmarkLost":   {NsOp: 1_000_000, Custom: map[string]float64{"tenants/GB": 100}},
		"BenchmarkInfo":   {NsOp: 1_000_000, Custom: map[string]float64{"flop/op": 100}},
		"BenchmarkFast":   {NsOp: 10_000, Custom: map[string]float64{"tenants/GB": 100}}, // under the ns floor
	}}
	run := Report{Benchmarks: map[string]Metric{
		// densityX improved, tenants/GB collapsed past -30%: one failure.
		"BenchmarkDenser": {NsOp: 1_000_000, Custom: map[string]float64{"tenants/GB": 60, "densityX": 5}},
		// Stopped reporting a gated unit: failure.
		"BenchmarkLost": {NsOp: 1_000_000},
		// Ungated unit regressing wildly: informational only.
		"BenchmarkInfo": {NsOp: 1_000_000, Custom: map[string]float64{"flop/op": 10_000}},
		// Timing floor must not silence the custom gate.
		"BenchmarkFast": {NsOp: 9_000, Custom: map[string]float64{"tenants/GB": 50}},
	}}
	lines, failures := gate(run, base, testGateOpts)
	if len(failures) != 3 {
		t.Fatalf("failures %v, want drop + missing unit + under-floor drop", failures)
	}
	joined := strings.Join(failures, "\n")
	for _, want := range []string{
		"BenchmarkDenser: 60.00 tenants/GB vs baseline 100.00",
		"BenchmarkLost: custom metric tenants/GB in baseline but missing",
		"BenchmarkFast: 50.00 tenants/GB vs baseline 100.00",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("failures missing %q:\n%s", want, joined)
		}
	}
	all := strings.Join(lines, "\n")
	if !strings.Contains(all, "densityX vs baseline 4.00") {
		t.Errorf("improved gated unit missing from verdicts:\n%s", all)
	}
	if strings.Contains(joined, "flop/op") {
		t.Errorf("ungated unit must never fail the gate:\n%s", joined)
	}

	// A gated improvement alone is a clean pass.
	_, failures = gate(
		Report{Benchmarks: map[string]Metric{"BenchmarkDenser": {NsOp: 1_000_000, Custom: map[string]float64{"tenants/GB": 400, "densityX": 4}}}},
		Report{Benchmarks: map[string]Metric{"BenchmarkDenser": {NsOp: 1_000_000, Custom: map[string]float64{"tenants/GB": 100, "densityX": 4}}}},
		testGateOpts)
	if len(failures) != 0 {
		t.Fatalf("improvement failed the gate: %v", failures)
	}
}

func TestGateCleanRun(t *testing.T) {
	base := Report{Benchmarks: map[string]Metric{"BenchmarkA": {NsOp: 1_000_000, AllocsOp: 50}}}
	run := Report{Benchmarks: map[string]Metric{"BenchmarkA": {NsOp: 900_000, AllocsOp: 40}}}
	lines, failures := gate(run, base, testGateOpts)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures %v", failures)
	}
	if len(lines) != 2 || !strings.Contains(lines[0], "-10.0%") || !strings.Contains(lines[1], "allocs/op") {
		t.Fatalf("lines %v", lines)
	}
}
