package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInference_SparseBatch16 	      10	  12288496 ns/op
BenchmarkInference_TransformerBatch16-8 	      10	    870526 ns/op
BenchmarkServePredict_Concurrent 	      20	    706111 ns/op
BenchmarkGEMM 	     100	  11479391 ns/op	 115605504 flop/op
BenchmarkTiny 	 1000000	      1052 ns/op
PASS
ok  	repro	3.797s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkInference_SparseBatch16":      12288496,
		"BenchmarkInference_TransformerBatch16": 870526, // -8 suffix stripped
		"BenchmarkServePredict_Concurrent":      706111,
		"BenchmarkGEMM":                         11479391, // extra flop/op metric ignored
		"BenchmarkTiny":                         1052,
	}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("parsed %v, want %d entries", rep.Benchmarks, len(want))
	}
	for name, ns := range want {
		if rep.Benchmarks[name] != ns {
			t.Errorf("%s = %v, want %v", name, rep.Benchmarks[name], ns)
		}
	}
}

func TestParseBenchKeepsMinimumOfRepeats(t *testing.T) {
	out := "BenchmarkX \t 10\t 2000000 ns/op\nBenchmarkX \t 10\t 1500000 ns/op\n"
	rep, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks["BenchmarkX"] != 1500000 {
		t.Fatalf("repeats must keep the fastest: got %v", rep.Benchmarks["BenchmarkX"])
	}
}

func TestParseBenchRejectsEmptyInput(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("no benchmark lines must be an error, not an empty artifact")
	}
}

func TestGate(t *testing.T) {
	base := Report{Benchmarks: map[string]float64{
		"BenchmarkSteady":  1_000_000,
		"BenchmarkSlower":  1_000_000,
		"BenchmarkGone":    1_000_000,
		"BenchmarkTooTiny": 10_000, // below the noise floor
	}}
	run := Report{Benchmarks: map[string]float64{
		"BenchmarkSteady":  1_250_000, // +25%: inside the 30% budget
		"BenchmarkSlower":  1_400_000, // +40%: regression
		"BenchmarkTooTiny": 90_000,    // +800% but under the floor: skipped
		"BenchmarkNew":     5_000_000, // not in baseline: reported, not failed
	}}
	lines, failures := gate(run, base, 0.30, 100_000)
	if len(failures) != 2 {
		t.Fatalf("failures %v, want regression + missing", failures)
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "BenchmarkSlower") || !strings.Contains(joined, "+40.0%") {
		t.Errorf("missing the +40%% regression: %v", failures)
	}
	if !strings.Contains(joined, "BenchmarkGone") || !strings.Contains(joined, "missing from the run") {
		t.Errorf("missing the vanished-benchmark failure: %v", failures)
	}
	all := strings.Join(lines, "\n")
	for _, want := range []string{"BenchmarkSteady", "BenchmarkTooTiny", "skipped", "BenchmarkNew", "not in baseline"} {
		if !strings.Contains(all, want) {
			t.Errorf("verdict lines missing %q:\n%s", want, all)
		}
	}
}

func TestGateCleanRun(t *testing.T) {
	base := Report{Benchmarks: map[string]float64{"BenchmarkA": 1_000_000}}
	run := Report{Benchmarks: map[string]float64{"BenchmarkA": 900_000}}
	lines, failures := gate(run, base, 0.30, 100_000)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures %v", failures)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "-10.0%") {
		t.Fatalf("lines %v", lines)
	}
}
