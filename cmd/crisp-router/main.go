// Command crisp-router fronts a set of crisp-serve shards with a
// consistent-hash ring: it places tenants by class-set key, proxies
// /personalize and /predict to the owning shard, health-checks members,
// fails predicts over when a shard dies, and orchestrates graceful drains
// (POST /drain {"shard":"id"}) so a shard can leave without losing a
// tenant. See internal/cluster for the design.
//
// Shards are named on the command line and must share one snapshot
// directory — the store is the handoff channel:
//
//	crisp-router -addr :8090 \
//	  -shards s1=127.0.0.1:8080,s2=127.0.0.1:8081,s3=127.0.0.1:8082
//
// Like crisp-serve, the router exits gracefully: SIGINT/SIGTERM stops the
// listener, lets in-flight proxies finish, and shuts the prober down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	shards := flag.String("shards", "", "comma-separated shard list, id=host:port each")
	vnodes := flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per shard on the hash ring")
	probeInterval := flag.Duration("probe-interval", time.Second, "health probe period")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive probe failures before a shard leaves the ring")
	retries := flag.Int("predict-retries", 2, "retries for idempotent predicts after a shard failure")
	shutdownTO := flag.Duration("shutdown-timeout", 30*time.Second, "graceful shutdown deadline")
	flag.Parse()

	members, err := parseShards(*shards)
	if err != nil {
		log.Fatalf("crisp-router: %v", err)
	}
	if len(members) == 0 {
		log.Fatal("crisp-router: -shards is required (id=host:port,...)")
	}

	rt := cluster.NewRouter(cluster.Options{
		VNodes:         *vnodes,
		ProbeInterval:  *probeInterval,
		FailThreshold:  *failThreshold,
		PredictRetries: *retries,
	})
	for _, m := range members {
		rt.AddShard(m.id, m.addr)
		log.Printf("crisp-router: shard %s at %s", m.id, m.addr)
	}
	rt.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("crisp-router: listen: %v", err)
	}
	log.Printf("crisp-router: listening on %s with %d shards", ln.Addr(), len(members))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	if err := run(ln, rt, sigc, *shutdownTO); err != nil {
		log.Fatalf("crisp-router: %v", err)
	}
}

type member struct{ id, addr string }

func parseShards(s string) ([]member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []member
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad shard %q, want id=host:port", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("duplicate shard id %q", id)
		}
		seen[id] = true
		out = append(out, member{id: id, addr: addr})
	}
	return out, nil
}

// run serves until the listener fails or a signal arrives, then tears down
// in order: stop accepting, finish in-flight proxies, stop the prober.
func run(ln net.Listener, rt *cluster.Router, sigc <-chan os.Signal, timeout time.Duration) error {
	srv := &http.Server{
		Handler:           rt.Mux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		rt.Close()
		return err
	case sig := <-sigc:
		log.Printf("crisp-router: %v: shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("crisp-router: shutdown: %v", err)
		}
		rt.Close()
		return nil
	}
}
