// Command crisp-bench regenerates the CRISP paper's tables and figures as
// text tables on the reproduction substrate (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	crisp-bench                # all figures, quick scale
//	crisp-bench -fig 8         # one figure
//	crisp-bench -full          # full scale (slower)
//	crisp-bench -fig ablations # the three ablation studies
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crisp-bench: ")
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 1,2,3,4,7,8,ablations,all")
		full   = flag.Bool("full", false, "run the full-scale configuration")
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "text", "output format: text, csv, md")
	)
	flag.Parse()

	scale := exp.Quick
	if *full {
		scale = exp.Full
	}
	h := exp.NewHarness(exp.Config{Scale: scale, Seed: *seed})

	run := func(name string, fn func() *exp.Table) {
		start := time.Now()
		t := fn()
		fmt.Println(t.Render(*format))
		if *format == "text" {
			fmt.Printf("(%s generated in %.1fs)\n\n", name, time.Since(start).Seconds())
		}
	}

	figures := map[string]func(){
		"1": func() {
			run("fig1", func() *exp.Table { _, t := h.Figure1(); return t })
		},
		"2": func() {
			run("fig2", func() *exp.Table { _, t := h.Figure2(); return t })
		},
		"3": func() {
			run("fig3", func() *exp.Table { _, t := h.Figure3(); return t })
		},
		"4": func() {
			run("fig4", func() *exp.Table { _, t := h.Figure4(); return t })
		},
		"7": func() {
			run("fig7", func() *exp.Table { _, t := h.Figure7(); return t })
		},
		"8": func() {
			run("fig8", func() *exp.Table { _, t := h.Figure8(); return t })
		},
		"ablations": func() {
			run("ablation-A", func() *exp.Table { _, t := h.AblationIterative(); return t })
			run("ablation-B", func() *exp.Table { _, t := h.AblationSaliency(); return t })
			run("ablation-C", func() *exp.Table { _, t := h.AblationBalance(); return t })
			run("ablation-D", func() *exp.Table { _, t := h.AblationSchedule(); return t })
			run("ablation-E", func() *exp.Table { _, t := h.AblationMixedNM(); return t })
		},
		"ext": func() {
			run("ext-transformer", func() *exp.Table { _, t := h.ExtTransformer(); return t })
			run("ext-network", func() *exp.Table { _, t := h.NetworkTable(); return t })
		},
		"mem": func() {
			run("memory", func() *exp.Table { _, t := h.MemoryTable(); return t })
		},
		"validate": func() {
			run("tile-sim", func() *exp.Table { _, t := h.ValidateTileSim(); return t })
			run("sweep", func() *exp.Table { _, t := h.SweepSparsity(); return t })
			run("quant", func() *exp.Table { _, t := h.AblationQuant(); return t })
		},
	}

	if *fig == "all" {
		for _, k := range []string{"1", "2", "3", "4", "7", "8", "ablations", "ext", "mem", "validate"} {
			figures[k]()
		}
		return
	}
	fn, ok := figures[*fig]
	if !ok {
		log.Fatalf("unknown figure %q (want 1,2,3,4,7,8,ablations,ext,mem,validate,all)", *fig)
	}
	fn()
}
