// Command crisp-bench regenerates the CRISP paper's tables and figures as
// text tables on the reproduction substrate (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for recorded results). The suite fans
// out across a bounded worker pool (the same scheduler cmd/crisp-serve
// uses), so a multi-core machine regenerates all figures concurrently.
//
// Usage:
//
//	crisp-bench                # all figures, quick scale, GOMAXPROCS workers
//	crisp-bench -fig 8         # one figure
//	crisp-bench -fig ablations # the five ablation studies
//	crisp-bench -full          # full scale (slower)
//	crisp-bench -workers 1     # sequential run
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crisp-bench: ")
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 1,2,3,4,7,8,ablations,ext,mem,validate,all or an exact name like ablation-C")
		full    = flag.Bool("full", false, "run the full-scale configuration")
		seed    = flag.Int64("seed", 1, "random seed")
		format  = flag.String("format", "text", "output format: text, csv, md")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	scale := exp.Quick
	if *full {
		scale = exp.Full
	}
	h := exp.NewHarness(exp.Config{Scale: scale, Seed: *seed})

	figs, err := exp.Select(exp.Figures(), *fig)
	if err != nil {
		log.Fatal(err)
	}

	pool := serve.NewPool(*workers)
	defer pool.Close()

	// Wrap every figure with its own timer so the streamed output keeps the
	// per-figure generation time even when figures run concurrently.
	durs := make([]time.Duration, len(figs))
	for i := range figs {
		i, orig := i, figs[i].Run
		figs[i].Run = func(h *exp.Harness) *exp.Table {
			t0 := time.Now()
			t := orig(h)
			durs[i] = time.Since(t0)
			return t
		}
	}

	// Stream tables in input order as they complete: figure i prints as
	// soon as it and everything before it are done, so an interrupted -full
	// run keeps the artifacts already generated.
	var mu sync.Mutex
	next := 0
	ready := make([]*exp.Table, len(figs))
	start := time.Now()
	exp.RunParallel(pool, h, figs, func(i int, t *exp.Table) {
		mu.Lock()
		defer mu.Unlock()
		ready[i] = t
		for next < len(ready) && ready[next] != nil {
			fmt.Println(ready[next].Render(*format))
			if *format == "text" {
				fmt.Printf("(%s generated in %.1fs)\n\n", figs[next].Name, durs[next].Seconds())
			}
			next++
		}
	})
	if *format == "text" {
		fmt.Printf("(%d artifacts in %.1fs on %d workers)\n", len(figs), time.Since(start).Seconds(), pool.Workers())
	}
}
