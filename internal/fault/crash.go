package fault

import (
	"os"
	"sync/atomic"
)

// CrashExitCode is the exit status the default crash action dies with, so
// a parent test can tell an armed crash from any other subprocess failure.
const CrashExitCode = 86

// crashState is the armed crash point; at most one is armed at a time
// (crash tests exercise one point per subprocess).
type crashState struct {
	point string
	fn    func()
}

var armedCrash atomic.Pointer[crashState]

// Crash is a named crash point. Production code marks the instants a
// power cut would be most damaging — e.g. "snapshot.before-rename",
// between a record's temp-file write and the rename that publishes it —
// and a crash test arms one of them to kill the process exactly there.
// Unarmed (always, in production) it costs one atomic load.
func Crash(point string) {
	if st := armedCrash.Load(); st != nil && st.point == point {
		st.fn()
	}
}

// ArmCrash arms one crash point; a nil fn means os.Exit(CrashExitCode) —
// the moral equivalent of kill -9 at that instant (no deferred cleanup, no
// flushes). It replaces any previously armed point.
func ArmCrash(point string, fn func()) {
	if fn == nil {
		fn = func() { os.Exit(CrashExitCode) }
	}
	armedCrash.Store(&crashState{point: point, fn: fn})
}

// DisarmCrash clears the armed crash point.
func DisarmCrash() { armedCrash.Store(nil) }

// CrashEnv is the environment variable ArmCrashFromEnv reads, so a re-
// exec'd test binary (the subprocess crash pattern) can be armed by its
// parent without new flags.
const CrashEnv = "CRISP_CRASHPOINT"

// ArmCrashFromEnv arms the crash point named by $CRISP_CRASHPOINT and
// reports whether one was armed.
func ArmCrashFromEnv() bool {
	point := os.Getenv(CrashEnv)
	if point == "" {
		return false
	}
	ArmCrash(point, nil)
	return true
}
