// Package fault is a deterministic, seed-driven fault-injection layer for
// the serving stack. It exists so the crash/partition behavior of the
// snapshot store, the checkpoint index, and the cluster router can be
// tested — and chaos-replayed in CI — with reproducible failures instead of
// hand-placed sleeps and one-off monkey patches.
//
// Three injection points:
//
//   - Disk: FS is the filesystem seam the snapshot store and checkpoint
//     index write through. NewFS wraps any FS with seeded DiskFaults (torn
//     writes, ENOSPC, bit-flips on read, fsync stalls and failures) plus an
//     op trace that tests use to assert durability ordering (fsync before
//     rename, directory fsync after).
//   - Network: RoundTripper proxies an http.RoundTripper with added
//     latency, mid-exchange connection resets, truncated response bodies,
//     and black-hole partitions (Partition) between router and shards.
//   - Process: Crash marks named crash points (e.g. between a temp-file
//     write and its rename); ArmCrash aborts the process when execution
//     reaches one, which subprocess tests use as a deterministic kill -9.
//
// Determinism: every decision is a pure function of (seed, site, n) where
// n counts prior decisions at that site — the Nth write sees the same fate
// on every run with the same seed, independent of goroutine interleaving
// at other sites.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
)

// ErrInjected is the root of every injected error; tests and callers can
// errors.Is against it to distinguish injected failures from real ones.
var ErrInjected = errors.New("injected fault")

// injected builds one injected error, tagged with the fault kind.
func injected(kind string) error {
	return fmt.Errorf("fault: %s: %w", kind, ErrInjected)
}

// Injector is a seeded source of fault decisions. Each named site has its
// own decision counter, so concurrent callers at different sites cannot
// perturb each other's sequences.
type Injector struct {
	seed uint64

	mu    sync.Mutex
	sites map[string]uint64
}

// NewInjector builds an injector; equal seeds give equal decision streams.
func NewInjector(seed int64) *Injector {
	return &Injector{seed: uint64(seed), sites: map[string]uint64{}}
}

// mix is the splitmix64 finalizer: a cheap, well-distributed 64-bit hash.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw consumes one decision at site and returns its 64-bit value.
func (in *Injector) draw(site string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	in.mu.Lock()
	n := in.sites[site]
	in.sites[site] = n + 1
	in.mu.Unlock()
	return mix(in.seed ^ mix(h.Sum64()) ^ mix(n))
}

// Hit reports whether the next decision at site fires with probability p.
func (in *Injector) Hit(site string, p float64) bool {
	if in == nil || p <= 0 {
		return false
	}
	return float64(in.draw(site))/float64(1<<63)/2 < p
}

// Intn returns a deterministic value in [0, n) for the next decision at
// site (used to pick torn-write lengths and bit positions).
func (in *Injector) Intn(site string, n int) int {
	if in == nil || n <= 1 {
		return 0
	}
	return int(in.draw(site) % uint64(n))
}
