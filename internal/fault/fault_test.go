package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestInjectorDeterminism: the same seed gives the same decision stream per
// site, and different sites do not perturb each other.
func TestInjectorDeterminism(t *testing.T) {
	run := func(interleave bool) []bool {
		in := NewInjector(42)
		var out []bool
		for i := 0; i < 64; i++ {
			if interleave {
				in.Hit("other-site", 0.5) // must not shift "site" decisions
			}
			out = append(out, in.Hit("site", 0.3))
		}
		return out
	}
	a, b, c := run(false), run(false), run(true)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical runs", i)
		}
		if a[i] != c[i] {
			t.Fatalf("decision %d perturbed by another site's draws", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("p=0.3 over %d draws hit %d times — injector not probabilistic", len(a), hits)
	}
	if NewInjector(7).Hit("site", 0) {
		t.Fatal("p=0 fired")
	}
	d := NewInjector(43)
	same := true
	for i := range a {
		if d.Hit("site", 0.3) != a[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical decision streams")
	}
}

// TestFaultFSWriteFaults: ENOSPC-style write errors and torn writes fire
// with certainty at p=1, carry ErrInjected, and a torn write really leaves
// only a prefix on disk.
func TestFaultFSWriteFaults(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(OS{}, NewInjector(1), DiskFaults{WriteErr: 1})
	f, err := ffs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	f.Close()
	if b, _ := os.ReadFile(filepath.Join(dir, "a")); len(b) != 0 {
		t.Fatalf("failed write left %d bytes", len(b))
	}

	ffs = NewFS(OS{}, NewInjector(1), DiskFaults{TornWrite: 1})
	f, err = ffs.OpenFile(filepath.Join(dir, "b"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef0123456789abcdef")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error = %v, want ErrInjected", err)
	}
	f.Close()
	b, _ := os.ReadFile(filepath.Join(dir, "b"))
	if len(b) != n || n >= len(payload) || string(b) != string(payload[:n]) {
		t.Fatalf("torn write persisted %d bytes (reported %d) of %d", len(b), n, len(payload))
	}
	if st := ffs.Stats(); st.TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want 1", st.TornWrites)
	}
}

// TestFaultFSReadFlip: a read under ReadFlip=1 differs from the file's real
// content by exactly one bit.
func TestFaultFSReadFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec")
	want := []byte("exactly one bit of this will flip")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFS(OS{}, NewInjector(3), DiskFaults{ReadFlip: 1})
	f, err := ffs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range want {
		for bit := 0; bit < 8; bit++ {
			if (want[i]^got[i])&(1<<bit) != 0 {
				diff++
			}
		}
	}
	// io.ReadAll may issue multiple Reads; each non-empty one flips a bit.
	if diff == 0 {
		t.Fatal("ReadFlip=1 read came back clean")
	}
	if st := ffs.Stats(); st.ReadFlips == 0 {
		t.Fatal("ReadFlips counter never moved")
	}
}

// TestFaultFSMatchAndEnable: the Match filter scopes faults to chosen
// files, and SetEnabled(false) turns them all off.
func TestFaultFSMatchAndEnable(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(OS{}, NewInjector(5), DiskFaults{
		WriteErr: 1,
		Match:    func(name string) bool { return strings.HasSuffix(name, ".ckpt") },
	})
	safe, err := ffs.OpenFile(filepath.Join(dir, "index"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := safe.Write([]byte("x")); err != nil {
		t.Fatalf("write outside Match failed: %v", err)
	}
	safe.Close()

	hot, err := ffs.OpenFile(filepath.Join(dir, "p0.ckpt"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hot.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write inside Match = %v, want ErrInjected", err)
	}
	ffs.SetEnabled(false)
	if _, err := hot.Write([]byte("x")); err != nil {
		t.Fatalf("write with faults disabled failed: %v", err)
	}
	hot.Close()
}

// TestFaultFSTraceOrdering: the trace records the durability dance in
// order — create, write, sync, close, rename, syncdir.
func TestFaultFSTraceOrdering(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(OS{}, NewInjector(0), DiskFaults{})
	ffs.EnableTrace()
	tmp, err := ffs.CreateTemp(dir, "rec.*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	tmp.Write([]byte("x"))
	tmp.Sync()
	tmp.Close()
	if err := ffs.Rename(tmp.Name(), filepath.Join(dir, "rec")); err != nil {
		t.Fatal(err)
	}
	if err := ffs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, op := range ffs.Trace() {
		kinds = append(kinds, op.Kind)
	}
	want := []string{"create", "write", "sync", "close", "rename", "syncdir"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("trace %v, want %v", kinds, want)
	}
}

// TestCrashPoint: Crash fires only the armed point, and only while armed.
func TestCrashPoint(t *testing.T) {
	fired := 0
	ArmCrash("test.point", func() { fired++ })
	defer DisarmCrash()
	Crash("other.point")
	if fired != 0 {
		t.Fatal("unarmed point fired")
	}
	Crash("test.point")
	if fired != 1 {
		t.Fatalf("armed point fired %d times, want 1", fired)
	}
	DisarmCrash()
	Crash("test.point")
	if fired != 1 {
		t.Fatal("disarmed point fired")
	}
}

// TestRoundTripperFaults: resets surface as ErrInjected-free transport
// errors, truncation cuts the body, and a partitioned host hangs until the
// request deadline.
func TestRoundTripperFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "a perfectly healthy response body")
	}))
	defer srv.Close()

	rt := NewRoundTripper(nil, NewInjector(9), NetFaults{ResetProb: 1})
	client := &http.Client{Transport: rt}
	if _, err := client.Get(srv.URL + "/predict"); err == nil {
		t.Fatal("reset fault produced no error")
	}
	if rt.Resets.Load() != 1 {
		t.Fatalf("Resets = %d, want 1", rt.Resets.Load())
	}

	rt = NewRoundTripper(nil, NewInjector(9), NetFaults{TruncateProb: 1})
	client = &http.Client{Transport: rt}
	resp, err := client.Get(srv.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil || len(b) >= len("a perfectly healthy response body") {
		t.Fatalf("truncated read: %d bytes, err %v", len(b), err)
	}

	// Path filtering: a fault configured for /predict must not touch /healthz.
	rt = NewRoundTripper(nil, NewInjector(9), NetFaults{ResetProb: 1, Paths: []string{"/predict"}})
	client = &http.Client{Transport: rt}
	if _, err := client.Get(srv.URL + "/healthz"); err != nil {
		t.Fatalf("filtered path faulted: %v", err)
	}

	rt = NewRoundTripper(nil, NewInjector(9), NetFaults{})
	rt.Partition(strings.TrimPrefix(srv.URL, "http://"), true)
	client = &http.Client{Transport: rt, Timeout: 50 * time.Millisecond}
	start := time.Now()
	if _, err := client.Get(srv.URL + "/predict"); err == nil {
		t.Fatal("partitioned host answered")
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("partitioned request failed in %v — black hole returned early", d)
	}
	rt.Partition(strings.TrimPrefix(srv.URL, "http://"), false)
	if _, err := client.Get(srv.URL + "/predict"); err != nil {
		t.Fatalf("healed partition still failing: %v", err)
	}
}
