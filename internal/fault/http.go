package fault

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// NetFaults tunes a RoundTripper. Probabilities are per-request; zero
// disables that fault.
type NetFaults struct {
	// LatencyProb adds Latency to a request before it is sent (slow link,
	// overloaded NIC).
	LatencyProb float64
	Latency     time.Duration
	// ResetProb fails the exchange with a connection-reset error after the
	// request was (as far as the caller can tell) sent: the inconclusive
	// mid-body failure a router must not treat as proof the peer is dead.
	ResetProb float64
	// TruncateProb delivers the response with its body cut short, so the
	// reader hits an unexpected EOF mid-stream.
	TruncateProb float64
	// Paths restricts faults to these URL paths; empty means all. Black-
	// hole partitions (Partition) ignore it — a partition drops everything.
	Paths []string
}

// RoundTripper injects network faults between an HTTP client and its
// transport. Partition additionally black-holes whole hosts: requests to a
// partitioned host hang until their context expires, exactly like packets
// into a dead link — no RST, no FIN, just silence.
type RoundTripper struct {
	inner http.RoundTripper
	inj   *Injector
	cfg   NetFaults

	mu          sync.Mutex
	partitioned map[string]bool

	// Resets, Truncates, Delays, Blackholed count fired faults.
	Resets, Truncates, Delays, Blackholed atomic.Uint64
}

// NewRoundTripper wraps inner (nil: http.DefaultTransport).
func NewRoundTripper(inner http.RoundTripper, inj *Injector, cfg NetFaults) *RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &RoundTripper{inner: inner, inj: inj, cfg: cfg, partitioned: map[string]bool{}}
}

// Partition black-holes (on=true) or heals (on=false) all traffic to host
// (a host:port as it appears in request URLs).
func (rt *RoundTripper) Partition(host string, on bool) {
	rt.mu.Lock()
	if on {
		rt.partitioned[host] = true
	} else {
		delete(rt.partitioned, host)
	}
	rt.mu.Unlock()
}

func (rt *RoundTripper) isPartitioned(host string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.partitioned[host]
}

func (rt *RoundTripper) pathEligible(path string) bool {
	if len(rt.cfg.Paths) == 0 {
		return true
	}
	for _, p := range rt.cfg.Paths {
		if p == path {
			return true
		}
	}
	return false
}

func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if rt.isPartitioned(req.URL.Host) {
		rt.Blackholed.Add(1)
		// Hang like a dead link. The 30s cap only exists so a request
		// issued without any deadline cannot leak a goroutine forever.
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("fault: black hole %s: %w", req.URL.Host, ErrInjected)
		}
	}
	if !rt.pathEligible(req.URL.Path) {
		return rt.inner.RoundTrip(req)
	}
	site := "net:" + req.URL.Path
	if rt.inj.Hit(site+":latency", rt.cfg.LatencyProb) {
		rt.Delays.Add(1)
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(rt.cfg.Latency):
		}
	}
	if rt.inj.Hit(site+":reset", rt.cfg.ResetProb) {
		rt.Resets.Add(1)
		// Drain the request body first: the caller observed its request
		// leave, so it cannot know whether the peer processed it.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	}
	resp, err := rt.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if rt.inj.Hit(site+":truncate", rt.cfg.TruncateProb) && resp.Body != nil {
		rt.Truncates.Add(1)
		resp.Body = &truncatedBody{rc: resp.Body, remain: 3}
	}
	return resp, nil
}

// truncatedBody yields the first remain bytes, then an unexpected EOF —
// the shape of a connection dropped mid-response.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= n
	if err == nil && b.remain <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }
