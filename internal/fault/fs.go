package fault

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// File is the subset of *os.File the checkpoint layer writes through.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	Name() string
	Stat() (fs.FileInfo, error)
	Sync() error
}

// FS is the filesystem seam of the durable layer: everything the snapshot
// store and checkpoint index touch goes through one of these, so a fault
// layer (NewFS) can sit between them and the kernel. OS is the real thing.
type FS interface {
	MkdirAll(dir string, perm fs.FileMode) error
	Open(name string) (File, error)
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory, making renames and creates inside it
	// durable (the second half of the write-fsync-rename-fsyncdir dance).
	SyncDir(dir string) error
}

// OS is the passthrough FS backed by the real filesystem.
type OS struct{}

func (OS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }
func (OS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                    { return os.Remove(name) }
func (OS) Stat(name string) (fs.FileInfo, error)       { return os.Stat(name) }

func (OS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	// Some filesystems (and most network mounts) reject fsync on a
	// directory handle; that is a property of the mount, not a failed
	// write, so it must not fail the snapshot.
	if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		return nil
	}
	return err
}

// DiskFaults tunes NewFS. All probabilities are per-operation; zero means
// the fault never fires.
type DiskFaults struct {
	// WriteErr fails a Write outright with an injected ENOSPC-style error
	// (nothing reaches the file).
	WriteErr float64
	// TornWrite persists only a prefix of the buffer, then errors — the
	// short-write/torn-write case every journaling layer must survive.
	TornWrite float64
	// ReadFlip flips one bit of a successful read's buffer: silent media
	// corruption, which checksummed formats must fail closed on.
	ReadFlip float64
	// SyncErr fails an fsync (file or directory).
	SyncErr float64
	// RenameErr fails a rename.
	RenameErr float64
	// SyncDelay stalls every fsync by this much (a slow or contended disk);
	// it always applies, independent of SyncErr.
	SyncDelay time.Duration
	// Match restricts faults to files it accepts (by path); nil means every
	// file. Op recording and SyncDelay ignore it — only error/corruption
	// faults are filtered.
	Match func(name string) bool
}

// Op is one recorded filesystem operation (see FaultFS.Trace): Kind is
// "write", "sync", "close", "rename", "syncdir", "create", "open" or
// "remove"; Name is the base name of the file (for renames, the target).
type Op struct {
	Kind string
	Name string
}

// FSStats counts operations and injected faults on a FaultFS.
type FSStats struct {
	Writes, Syncs, SyncDirs, Renames                       uint64
	WriteErrs, TornWrites, ReadFlips, SyncErrs, RenameErrs uint64
	SyncStalls                                             uint64
}

// FaultFS wraps an FS with seeded disk faults and an operation trace. The
// zero probability configuration is a pure recorder: tests use that to
// assert durability ordering (data fsync before rename, directory fsync
// after) without perturbing behavior.
type FaultFS struct {
	inner FS
	inj   *Injector
	disk  DiskFaults

	// enabled gates the error/corruption faults (trace and counters always
	// run): a chaos harness arms faults only for the storm window, keeping
	// setup and post-chaos verification clean.
	enabled atomic.Bool

	mu      sync.Mutex
	tracing bool
	trace   []Op
	stats   FSStats
}

// NewFS wraps inner with the given faults, enabled from the start.
func NewFS(inner FS, inj *Injector, disk DiskFaults) *FaultFS {
	f := &FaultFS{inner: inner, inj: inj, disk: disk}
	f.enabled.Store(true)
	return f
}

// SetEnabled arms or disarms the error/corruption faults.
func (f *FaultFS) SetEnabled(on bool) { f.enabled.Store(on) }

// EnableTrace starts recording every operation (see Trace).
func (f *FaultFS) EnableTrace() {
	f.mu.Lock()
	f.tracing = true
	f.mu.Unlock()
}

// Trace returns a copy of the recorded operations, in order.
func (f *FaultFS) Trace() []Op {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Op(nil), f.trace...)
}

// Stats returns a snapshot of the op/fault counters.
func (f *FaultFS) Stats() FSStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *FaultFS) record(kind, name string, bump ...*uint64) {
	f.mu.Lock()
	if f.tracing {
		f.trace = append(f.trace, Op{Kind: kind, Name: filepath.Base(name)})
	}
	for _, b := range bump {
		*b++
	}
	f.mu.Unlock()
}

// active reports whether error/corruption faults apply to name.
func (f *FaultFS) active(name string) bool {
	return f.enabled.Load() && (f.disk.Match == nil || f.disk.Match(name))
}

func (f *FaultFS) MkdirAll(dir string, perm fs.FileMode) error { return f.inner.MkdirAll(dir, perm) }
func (f *FaultFS) Stat(name string) (fs.FileInfo, error)       { return f.inner.Stat(name) }

func (f *FaultFS) Open(name string) (File, error) {
	f.record("open", name)
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f}, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f.record("open", name)
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	f.record("create", file.Name())
	return &faultFile{f: file, fs: f}, nil
}

func (f *FaultFS) Remove(name string) error {
	f.record("remove", name)
	return f.inner.Remove(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	f.stats.Renames++
	f.mu.Unlock()
	if f.active(newpath) && f.inj.Hit("fs.rename", f.disk.RenameErr) {
		f.record("rename-err", newpath, &f.stats.RenameErrs)
		return injected("rename " + filepath.Base(newpath))
	}
	f.record("rename", newpath)
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	f.stats.SyncDirs++
	f.mu.Unlock()
	if f.disk.SyncDelay > 0 && f.enabled.Load() {
		f.mu.Lock()
		f.stats.SyncStalls++
		f.mu.Unlock()
		time.Sleep(f.disk.SyncDelay)
	}
	if f.active(dir) && f.inj.Hit("fs.syncdir", f.disk.SyncErr) {
		f.record("syncdir-err", dir, &f.stats.SyncErrs)
		return injected("syncdir " + filepath.Base(dir))
	}
	f.record("syncdir", dir)
	return f.inner.SyncDir(dir)
}

// faultFile threads reads, writes and syncs through the parent FaultFS.
type faultFile struct {
	f  File
	fs *FaultFS
}

func (ff *faultFile) Name() string               { return ff.f.Name() }
func (ff *faultFile) Stat() (fs.FileInfo, error) { return ff.f.Stat() }
func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := ff.f.ReadAt(p, off)
	ff.maybeFlip(p[:max(n, 0)])
	return n, err
}

func (ff *faultFile) Read(p []byte) (int, error) {
	n, err := ff.f.Read(p)
	if n > 0 {
		ff.maybeFlip(p[:n])
	}
	return n, err
}

// maybeFlip corrupts one bit of a successfully read buffer.
func (ff *faultFile) maybeFlip(p []byte) {
	f := ff.fs
	if len(p) == 0 || !f.active(ff.f.Name()) || !f.inj.Hit("fs.read", f.disk.ReadFlip) {
		return
	}
	bit := f.inj.Intn("fs.read-bit", len(p)*8)
	p[bit/8] ^= 1 << (bit % 8)
	f.record("read-flip", ff.f.Name(), &f.stats.ReadFlips)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	f.stats.Writes++
	f.mu.Unlock()
	if f.active(ff.f.Name()) {
		if f.inj.Hit("fs.write", f.disk.WriteErr) {
			f.record("write-err", ff.f.Name(), &f.stats.WriteErrs)
			return 0, injected("write " + filepath.Base(ff.f.Name()) + ": no space left on device")
		}
		if len(p) > 0 && f.inj.Hit("fs.write", f.disk.TornWrite) {
			n := f.inj.Intn("fs.write-torn", len(p))
			if n > 0 {
				ff.f.Write(p[:n])
			}
			f.record("torn-write", ff.f.Name(), &f.stats.TornWrites)
			return n, injected("torn write " + filepath.Base(ff.f.Name()))
		}
	}
	f.record("write", ff.f.Name())
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	f.stats.Syncs++
	f.mu.Unlock()
	if f.disk.SyncDelay > 0 && f.enabled.Load() {
		f.mu.Lock()
		f.stats.SyncStalls++
		f.mu.Unlock()
		time.Sleep(f.disk.SyncDelay)
	}
	if f.active(ff.f.Name()) && f.inj.Hit("fs.sync", f.disk.SyncErr) {
		f.record("sync-err", ff.f.Name(), &f.stats.SyncErrs)
		return injected("fsync " + filepath.Base(ff.f.Name()))
	}
	f.record("sync", ff.f.Name())
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	ff.fs.record("close", ff.f.Name())
	return ff.f.Close()
}
