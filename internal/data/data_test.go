package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func smallCfg() Config {
	return Config{Name: "t", NumClasses: 10, Channels: 2, H: 8, W: 8, Noise: 0.2, Jitter: 1, Seed: 7}
}

func TestDeterministicPrototypes(t *testing.T) {
	a := New(smallCfg())
	b := New(smallCfg())
	for c := 0; c < 10; c++ {
		pa, pb := a.Prototype(c), b.Prototype(c)
		for i := range pa.Data {
			if pa.Data[i] != pb.Data[i] {
				t.Fatalf("prototype %d differs at %d", c, i)
			}
		}
	}
}

func TestPrototypesDistinct(t *testing.T) {
	d := New(smallCfg())
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			diff := 0.0
			pi, pj := d.Prototype(i), d.Prototype(j)
			for k := range pi.Data {
				diff += math.Abs(pi.Data[k] - pj.Data[k])
			}
			if diff < 1e-6 {
				t.Fatalf("prototypes %d and %d are identical", i, j)
			}
		}
	}
}

func TestMakeSplitShapeAndLabels(t *testing.T) {
	d := New(smallCfg())
	s := d.MakeSplit("train", []int{3, 5}, 4)
	if s.Len() != 8 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.X.Shape[0] != 8 || s.X.Shape[1] != 2 || s.X.Shape[2] != 8 || s.X.Shape[3] != 8 {
		t.Fatalf("shape %v", s.X.Shape)
	}
	for i := 0; i < 4; i++ {
		if s.Labels[i] != 3 {
			t.Fatalf("label[%d] = %d", i, s.Labels[i])
		}
	}
	for i := 4; i < 8; i++ {
		if s.Labels[i] != 5 {
			t.Fatalf("label[%d] = %d", i, s.Labels[i])
		}
	}
}

func TestSplitDeterministicAndStreamsDiffer(t *testing.T) {
	d := New(smallCfg())
	a := d.MakeSplit("train", []int{1}, 3)
	b := d.MakeSplit("train", []int{1}, 3)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same stream must be deterministic")
		}
	}
	c := d.MakeSplit("test", []int{1}, 3)
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("train and test streams must differ")
	}
}

func TestSplitIndependentOfClassOrder(t *testing.T) {
	d := New(smallCfg())
	a := d.MakeSplit("train", []int{2, 7}, 2)
	b := d.MakeSplit("train", []int{7, 2}, 2)
	// Class 2's samples must be identical regardless of position.
	vol := 2 * 8 * 8
	for i := 0; i < 2*vol; i++ {
		if a.X.Data[i] != b.X.Data[2*vol+i] {
			t.Fatal("class samples depend on class order")
		}
	}
}

func TestSamplesClusterAroundPrototype(t *testing.T) {
	cfg := smallCfg()
	cfg.Jitter = 0 // isolate noise behaviour
	d := New(cfg)
	s := d.MakeSplit("train", []int{0}, 64)
	p := d.Prototype(0)
	vol := len(p.Data)
	// Mean over samples should approach the prototype.
	mean := make([]float64, vol)
	for b := 0; b < 64; b++ {
		for i := 0; i < vol; i++ {
			mean[i] += s.X.Data[b*vol+i]
		}
	}
	maxErr := 0.0
	for i := range mean {
		mean[i] /= 64
		if e := math.Abs(mean[i] - p.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.25 {
		t.Fatalf("sample mean deviates from prototype by %v", maxErr)
	}
}

func TestUserClassesDistinctAndDeterministic(t *testing.T) {
	d := New(smallCfg())
	a := d.UserClasses(42, 5)
	b := d.UserClasses(42, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("UserClasses must be deterministic")
		}
	}
	seen := map[int]bool{}
	for _, c := range a {
		if seen[c] {
			t.Fatal("duplicate class")
		}
		if c < 0 || c >= 10 {
			t.Fatalf("class %d out of range", c)
		}
		seen[c] = true
	}
}

func TestBatchesCoverAllSamplesOnce(t *testing.T) {
	d := New(smallCfg())
	s := d.MakeSplit("train", []int{0, 1, 2}, 5)
	rng := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	total := 0
	Batches(rng, s, 4, func(x *tensor.Tensor, labels []int) {
		if x.Shape[0] != len(labels) {
			t.Fatalf("batch shape %v vs %d labels", x.Shape, len(labels))
		}
		if x.Shape[0] > 4 {
			t.Fatalf("batch larger than requested: %d", x.Shape[0])
		}
		for _, l := range labels {
			counts[l]++
			total++
		}
	})
	if total != 15 {
		t.Fatalf("saw %d samples, want 15", total)
	}
	for c := 0; c < 3; c++ {
		if counts[c] != 5 {
			t.Fatalf("class %d seen %d times, want 5", c, counts[c])
		}
	}
}

func TestSubsetAndSample(t *testing.T) {
	d := New(smallCfg())
	s := d.MakeSplit("train", []int{4, 6}, 3)
	sub := s.Subset([]int{0, 5})
	if sub.Len() != 2 || sub.Labels[0] != 4 || sub.Labels[1] != 6 {
		t.Fatalf("subset labels %v", sub.Labels)
	}
	x, l := s.Sample(5)
	if l != 6 {
		t.Fatalf("sample label %d", l)
	}
	for i := range x.Data {
		if x.Data[i] != sub.X.Data[len(x.Data)+i] {
			t.Fatal("Sample/Subset disagree")
		}
	}
}

// Property: every generated sample is finite.
func TestSamplesFiniteProperty(t *testing.T) {
	d := New(smallCfg())
	f := func(classRaw uint8, perClassRaw uint8) bool {
		class := int(classRaw) % 10
		perClass := int(perClassRaw)%4 + 1
		s := d.MakeSplit("q", []int{class}, perClass)
		for _, v := range s.X.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
