package data

import (
	"bytes"
	"math"
	"testing"
)

// fakeCIFAR builds n synthetic CIFAR-100 records with deterministic
// contents: record i has fine label i%100 and pixel bytes (i+j)%256.
func fakeCIFAR(n int) []byte {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		buf.WriteByte(byte(i % 20))  // coarse label (ignored)
		buf.WriteByte(byte(i % 100)) // fine label
		for j := 0; j < cifarPixels; j++ {
			buf.WriteByte(byte((i + j) % 256))
		}
	}
	return buf.Bytes()
}

func TestLoadCIFAR100ParsesRecords(t *testing.T) {
	s, err := LoadCIFAR100(bytes.NewReader(fakeCIFAR(5)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("records %d", s.Len())
	}
	if s.X.Shape[1] != 3 || s.X.Shape[2] != 32 || s.X.Shape[3] != 32 {
		t.Fatalf("shape %v", s.X.Shape)
	}
	for i := 0; i < 5; i++ {
		if s.Labels[i] != i%100 {
			t.Fatalf("label[%d] = %d", i, s.Labels[i])
		}
	}
	// Pixel 0 of record 2 is byte 2 → 2/127.5−1.
	want := 2.0/127.5 - 1
	if math.Abs(s.X.At(2, 0, 0, 0)-want) > 1e-12 {
		t.Fatalf("pixel = %v, want %v", s.X.At(2, 0, 0, 0), want)
	}
}

func TestLoadCIFAR100MaxRecords(t *testing.T) {
	s, err := LoadCIFAR100(bytes.NewReader(fakeCIFAR(10)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("records %d, want 3", s.Len())
	}
}

func TestLoadCIFAR100PixelRange(t *testing.T) {
	s, err := LoadCIFAR100(bytes.NewReader(fakeCIFAR(2)), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.X.Data {
		if v < -1 || v > 1 {
			t.Fatalf("pixel %v outside [-1,1]", v)
		}
	}
}

func TestLoadCIFAR100Truncated(t *testing.T) {
	raw := fakeCIFAR(2)
	if _, err := LoadCIFAR100(bytes.NewReader(raw[:len(raw)-10]), 0); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestLoadCIFAR100Empty(t *testing.T) {
	if _, err := LoadCIFAR100(bytes.NewReader(nil), 0); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestLoadCIFAR100FileMissing(t *testing.T) {
	if _, err := LoadCIFAR100File("/nonexistent/cifar.bin", 0); err == nil {
		t.Fatal("missing file accepted")
	}
}
