package data

import (
	"bytes"
	"testing"
)

// FuzzLoadCIFAR100 feeds arbitrary bytes to the CIFAR-100 parser: it must
// return an error or a well-formed split — never panic.
func FuzzLoadCIFAR100(f *testing.F) {
	f.Add([]byte{})
	f.Add(fakeCIFAR(1))
	f.Add(fakeCIFAR(2)[:100])
	bad := fakeCIFAR(1)
	bad[1] = 200 // fine label out of range
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadCIFAR100(bytes.NewReader(data), 4)
		if err != nil {
			return
		}
		if s.Len() == 0 {
			t.Fatal("nil error with empty split")
		}
		if s.X.Len() != s.Len()*cifarPixels {
			t.Fatalf("inconsistent split: %d labels, %d pixels", s.Len(), s.X.Len())
		}
		for _, l := range s.Labels {
			if l < 0 || l > 99 {
				t.Fatalf("label %d out of range", l)
			}
		}
	})
}
