package data

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestHFlipMirrors(t *testing.T) {
	img := []float64{1, 2, 3, 4, 5, 6}
	HFlip{P: 1}.Apply(rand.New(rand.NewSource(1)), img, 1, 2, 3)
	want := []float64{3, 2, 1, 6, 5, 4}
	for i := range want {
		if img[i] != want[i] {
			t.Fatalf("flip[%d] = %v, want %v", i, img[i], want[i])
		}
	}
}

func TestHFlipIdempotentTwice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	orig := []float64{1, 2, 3, 4}
	img := append([]float64(nil), orig...)
	HFlip{P: 1}.Apply(rng, img, 1, 2, 2)
	HFlip{P: 1}.Apply(rng, img, 1, 2, 2)
	for i := range orig {
		if img[i] != orig[i] {
			t.Fatal("double flip must restore the image")
		}
	}
}

func TestShiftZeroPads(t *testing.T) {
	// Deterministic: Max=1 with a seed whose first draws give dy=1, dx=1.
	img := []float64{1, 2, 3, 4}
	var rng *rand.Rand
	for seed := int64(0); ; seed++ {
		rng = rand.New(rand.NewSource(seed))
		if rng.Intn(3)-1 == 1 && rng.Intn(3)-1 == 1 {
			rng = rand.New(rand.NewSource(seed))
			break
		}
	}
	Shift{Max: 1}.Apply(rng, img, 1, 2, 2)
	// Shift down-right by (1,1): only top-left survives at bottom-right.
	want := []float64{0, 0, 0, 1}
	for i := range want {
		if img[i] != want[i] {
			t.Fatalf("shift = %v, want %v", img, want)
		}
	}
}

func TestGaussianNoiseChangesPixels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	img := make([]float64, 16)
	GaussianNoise{Std: 0.5}.Apply(rng, img, 1, 4, 4)
	sum := 0.0
	for _, v := range img {
		sum += math.Abs(v)
	}
	if sum == 0 {
		t.Fatal("noise did nothing")
	}
}

func TestContrastScales(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	img := []float64{1, -2, 3, -4}
	orig := append([]float64(nil), img...)
	Contrast{Lo: 2, Hi: 2}.Apply(rng, img, 1, 2, 2)
	for i := range img {
		if math.Abs(img[i]-2*orig[i]) > 1e-12 {
			t.Fatalf("contrast[%d] = %v, want %v", i, img[i], 2*orig[i])
		}
	}
}

func TestAugmentPreservesInputAndLabels(t *testing.T) {
	d := New(smallCfg())
	s := d.MakeSplit("train", []int{1, 2}, 3)
	before := append([]float64(nil), s.X.Data...)
	out := Augment(rand.New(rand.NewSource(5)), s, HFlip{P: 1}, GaussianNoise{Std: 0.1})
	for i := range before {
		if s.X.Data[i] != before[i] {
			t.Fatal("Augment mutated its input")
		}
	}
	if out.Len() != s.Len() {
		t.Fatalf("augmented length %d", out.Len())
	}
	for i := range out.Labels {
		if out.Labels[i] != s.Labels[i] {
			t.Fatal("labels changed")
		}
	}
	changed := false
	for i := range before {
		if out.X.Data[i] != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("augmentation was a no-op")
	}
}

func TestConcat(t *testing.T) {
	d := New(smallCfg())
	a := d.MakeSplit("train", []int{0}, 2)
	b := d.MakeSplit("train", []int{3}, 3)
	c := Concat(a, b)
	if c.Len() != 5 {
		t.Fatalf("len %d", c.Len())
	}
	if c.Labels[0] != 0 || c.Labels[4] != 3 {
		t.Fatalf("labels %v", c.Labels)
	}
	// First samples equal a's, later equal b's.
	if c.X.Data[0] != a.X.Data[0] {
		t.Fatal("head mismatch")
	}
	if c.X.Data[c.X.Len()-1] != b.X.Data[b.X.Len()-1] {
		t.Fatal("tail mismatch")
	}
}

func TestConcatShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := Split{X: tensor.New(1, 1, 2, 2), Labels: []int{0}}
	b := Split{X: tensor.New(1, 1, 3, 3), Labels: []int{0}}
	Concat(a, b)
}
