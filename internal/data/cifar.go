package data

import (
	"fmt"
	"io"
	"os"

	"repro/internal/tensor"
)

// CIFAR-100 binary layout ("train.bin" / "test.bin"): each record is one
// coarse label byte, one fine label byte, then 3×32×32 pixel bytes in
// channel-major order. This loader lets the reproduction run on the real
// dataset when the files are present; the synthetic datasets remain the
// offline default (DESIGN.md §2).
const (
	cifarChannels = 3
	cifarSide     = 32
	cifarPixels   = cifarChannels * cifarSide * cifarSide
	cifarRecord   = 2 + cifarPixels
)

// LoadCIFAR100 parses up to maxRecords CIFAR-100 records from r (0 = all).
// Pixels are scaled to [-1, 1]; labels are the fine labels (0..99).
func LoadCIFAR100(r io.Reader, maxRecords int) (Split, error) {
	var (
		images []float64
		labels []int
		buf    = make([]byte, cifarRecord)
	)
	for maxRecords <= 0 || len(labels) < maxRecords {
		_, err := io.ReadFull(r, buf)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			return Split{}, fmt.Errorf("data: truncated CIFAR-100 record %d", len(labels))
		}
		if err != nil {
			return Split{}, fmt.Errorf("data: reading CIFAR-100: %w", err)
		}
		fine := int(buf[1])
		if fine > 99 {
			return Split{}, fmt.Errorf("data: fine label %d out of range in record %d", fine, len(labels))
		}
		labels = append(labels, fine)
		for _, b := range buf[2:] {
			images = append(images, float64(b)/127.5-1)
		}
	}
	if len(labels) == 0 {
		return Split{}, fmt.Errorf("data: no CIFAR-100 records found")
	}
	x := tensor.FromSlice(images, len(labels), cifarChannels, cifarSide, cifarSide)
	return Split{X: x, Labels: labels}, nil
}

// LoadCIFAR100File opens and parses a CIFAR-100 binary file.
func LoadCIFAR100File(path string, maxRecords int) (Split, error) {
	f, err := os.Open(path)
	if err != nil {
		return Split{}, fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	return LoadCIFAR100(f, maxRecords)
}
