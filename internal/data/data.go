// Package data provides seeded synthetic classification datasets that stand
// in for ImageNet and CIFAR-100 in this reproduction (the pruning pipeline
// only consumes (sample, label) pairs and their gradients — see DESIGN.md).
//
// Each class is a smooth low-frequency prototype image; samples are the
// prototype under random circular shift ("jitter") plus Gaussian pixel
// noise. Classes are therefore clustered, mutually distinguishable, and
// learnable by small convolutional networks, while class-conditional
// gradients differ enough for class-aware saliency to matter.
package data

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Config describes a synthetic dataset.
type Config struct {
	Name       string
	NumClasses int
	Channels   int
	H, W       int
	// Noise is the standard deviation of additive pixel noise.
	Noise float64
	// Jitter is the maximum circular shift, in pixels, along each axis.
	Jitter int
	// Seed makes the dataset (prototypes and every split) deterministic.
	Seed int64
}

// SynthImageNet stands in for ImageNet: 1000 classes of 16×16 RGB images.
func SynthImageNet() Config {
	return Config{Name: "synth-imagenet", NumClasses: 1000, Channels: 3, H: 16, W: 16, Noise: 0.35, Jitter: 2, Seed: 1}
}

// SynthCIFAR stands in for CIFAR-100: 100 classes of 12×12 RGB images.
func SynthCIFAR() Config {
	return Config{Name: "synth-cifar", NumClasses: 100, Channels: 3, H: 12, W: 12, Noise: 0.3, Jitter: 1, Seed: 2}
}

// Dataset generates samples for a Config. Prototypes are materialized once;
// samples are drawn on demand from split-specific deterministic streams.
type Dataset struct {
	Config
	protos []*tensor.Tensor // one [C,H,W] prototype per class
}

// New builds the dataset, materializing all class prototypes.
func New(cfg Config) *Dataset {
	if cfg.NumClasses <= 0 || cfg.Channels <= 0 || cfg.H <= 0 || cfg.W <= 0 {
		panic(fmt.Sprintf("data: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{Config: cfg, protos: make([]*tensor.Tensor, cfg.NumClasses)}
	for c := range d.protos {
		d.protos[c] = smoothField(rng, cfg.Channels, cfg.H, cfg.W)
	}
	return d
}

// smoothField draws a coarse 4×4 grid per channel and bilinearly upsamples
// it, yielding a low-frequency pattern with unit-scale amplitude.
func smoothField(rng *rand.Rand, c, h, w int) *tensor.Tensor {
	const g = 4
	coarse := make([]float64, c*g*g)
	for i := range coarse {
		coarse[i] = rng.NormFloat64() * 1.5
	}
	out := tensor.New(c, h, w)
	for ch := 0; ch < c; ch++ {
		grid := coarse[ch*g*g : (ch+1)*g*g]
		for y := 0; y < h; y++ {
			fy := float64(y) / float64(h-1) * float64(g-1)
			y0 := int(fy)
			if y0 >= g-1 {
				y0 = g - 2
			}
			ty := fy - float64(y0)
			for x := 0; x < w; x++ {
				fx := float64(x) / float64(w-1) * float64(g-1)
				x0 := int(fx)
				if x0 >= g-1 {
					x0 = g - 2
				}
				tx := fx - float64(x0)
				v00 := grid[y0*g+x0]
				v01 := grid[y0*g+x0+1]
				v10 := grid[(y0+1)*g+x0]
				v11 := grid[(y0+1)*g+x0+1]
				v := v00*(1-ty)*(1-tx) + v01*(1-ty)*tx + v10*ty*(1-tx) + v11*ty*tx
				out.Set(v, ch, y, x)
			}
		}
	}
	return out
}

// Prototype returns the clean prototype of class c (shared storage; callers
// must not mutate it).
func (d *Dataset) Prototype(c int) *tensor.Tensor { return d.protos[c] }

// Split is a materialized set of samples.
type Split struct {
	// X has shape [N, C, H, W].
	X *tensor.Tensor
	// Labels holds the class id of each sample (indices into the full head).
	Labels []int
}

// Len returns the number of samples.
func (s Split) Len() int { return len(s.Labels) }

// Sample returns the b-th image as a [1,C,H,W] view-copy and its label.
func (s Split) Sample(b int) (*tensor.Tensor, int) {
	c, h, w := s.X.Shape[1], s.X.Shape[2], s.X.Shape[3]
	x := tensor.New(1, c, h, w)
	copy(x.Data, s.X.Data[b*c*h*w:(b+1)*c*h*w])
	return x, s.Labels[b]
}

// Subset returns the rows of s whose index appears in idx.
func (s Split) Subset(idx []int) Split {
	c, h, w := s.X.Shape[1], s.X.Shape[2], s.X.Shape[3]
	x := tensor.New(len(idx), c, h, w)
	labels := make([]int, len(idx))
	for i, b := range idx {
		copy(x.Data[i*c*h*w:(i+1)*c*h*w], s.X.Data[b*c*h*w:(b+1)*c*h*w])
		labels[i] = s.Labels[b]
	}
	return Split{X: x, Labels: labels}
}

// gen draws one sample of class c into dst.
func (d *Dataset) gen(rng *rand.Rand, c int, dst []float64) {
	p := d.protos[c]
	ch, h, w := d.Channels, d.H, d.W
	dy, dx := 0, 0
	if d.Jitter > 0 {
		dy = rng.Intn(2*d.Jitter+1) - d.Jitter
		dx = rng.Intn(2*d.Jitter+1) - d.Jitter
	}
	for cc := 0; cc < ch; cc++ {
		for y := 0; y < h; y++ {
			sy := ((y+dy)%h + h) % h
			for x := 0; x < w; x++ {
				sx := ((x+dx)%w + w) % w
				dst[(cc*h+y)*w+x] = p.At(cc, sy, sx) + rng.NormFloat64()*d.Noise
			}
		}
	}
}

// MakeSplit materializes perClass samples for each listed class. The stream
// name ("train", "test", ...) decorrelates splits deterministically.
func (d *Dataset) MakeSplit(stream string, classes []int, perClass int) Split {
	n := len(classes) * perClass
	x := tensor.New(n, d.Channels, d.H, d.W)
	labels := make([]int, n)
	vol := d.Channels * d.H * d.W
	i := 0
	for _, c := range classes {
		if c < 0 || c >= d.NumClasses {
			panic(fmt.Sprintf("data: class %d out of range [0,%d)", c, d.NumClasses))
		}
		// Per (stream, class) RNG keeps splits independent of class order.
		rng := rand.New(rand.NewSource(d.Seed*1_000_003 + int64(c)*31 + int64(HashString(stream))))
		for k := 0; k < perClass; k++ {
			d.gen(rng, c, x.Data[i*vol:(i+1)*vol])
			labels[i] = c
			i++
		}
	}
	return Split{X: x, Labels: labels}
}

// UserClasses deterministically samples k distinct "user-preferred" classes.
func (d *Dataset) UserClasses(seed int64, k int) []int {
	if k > d.NumClasses {
		panic(fmt.Sprintf("data: requested %d classes from %d", k, d.NumClasses))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(d.NumClasses)
	out := append([]int(nil), perm[:k]...)
	return out
}

// HashString is a small FNV-1a over s, used to derive deterministic,
// order-independent seeds from stream and cache-key names.
func HashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Batches shuffles the split with rng and invokes fn on successive batches
// of at most batchSize samples. It is the training-loop iterator.
func Batches(rng *rand.Rand, s Split, batchSize int, fn func(x *tensor.Tensor, labels []int)) {
	n := s.Len()
	order := rng.Perm(n)
	c, h, w := s.X.Shape[1], s.X.Shape[2], s.X.Shape[3]
	vol := c * h * w
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		bs := end - start
		x := tensor.New(bs, c, h, w)
		labels := make([]int, bs)
		for i := 0; i < bs; i++ {
			b := order[start+i]
			copy(x.Data[i*vol:(i+1)*vol], s.X.Data[b*vol:(b+1)*vol])
			labels[i] = s.Labels[b]
		}
		fn(x, labels)
	}
}
