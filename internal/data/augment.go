package data

import (
	"math/rand"

	"repro/internal/tensor"
)

// Transform mutates one [C,H,W] image in place using rng. Transforms
// compose left to right via Augment.
type Transform interface {
	Apply(rng *rand.Rand, img []float64, c, h, w int)
}

// HFlip mirrors the image horizontally with probability P.
type HFlip struct {
	// P is the flip probability (0.5 when zero).
	P float64
}

// Apply implements Transform.
func (t HFlip) Apply(rng *rand.Rand, img []float64, c, h, w int) {
	p := t.P
	if p == 0 {
		p = 0.5
	}
	if rng.Float64() >= p {
		return
	}
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			row := img[(ch*h+y)*w : (ch*h+y+1)*w]
			for x := 0; x < w/2; x++ {
				row[x], row[w-1-x] = row[w-1-x], row[x]
			}
		}
	}
}

// Shift translates the image by up to Max pixels along each axis with
// zero padding (a crop-and-pad augmentation).
type Shift struct {
	Max int
}

// Apply implements Transform.
func (t Shift) Apply(rng *rand.Rand, img []float64, c, h, w int) {
	if t.Max <= 0 {
		return
	}
	dy := rng.Intn(2*t.Max+1) - t.Max
	dx := rng.Intn(2*t.Max+1) - t.Max
	if dy == 0 && dx == 0 {
		return
	}
	src := append([]float64(nil), img...)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				sy, sx := y-dy, x-dx
				v := 0.0
				if sy >= 0 && sy < h && sx >= 0 && sx < w {
					v = src[(ch*h+sy)*w+sx]
				}
				img[(ch*h+y)*w+x] = v
			}
		}
	}
}

// GaussianNoise adds N(0, Std²) noise per pixel.
type GaussianNoise struct {
	Std float64
}

// Apply implements Transform.
func (t GaussianNoise) Apply(rng *rand.Rand, img []float64, c, h, w int) {
	if t.Std <= 0 {
		return
	}
	for i := range img {
		img[i] += rng.NormFloat64() * t.Std
	}
}

// Contrast scales the image by a factor drawn uniformly from [Lo, Hi].
type Contrast struct {
	Lo, Hi float64
}

// Apply implements Transform.
func (t Contrast) Apply(rng *rand.Rand, img []float64, c, h, w int) {
	lo, hi := t.Lo, t.Hi
	if lo == 0 && hi == 0 {
		lo, hi = 0.8, 1.2
	}
	f := lo + rng.Float64()*(hi-lo)
	for i := range img {
		img[i] *= f
	}
}

// Augment returns a new split with every sample passed through the
// transforms in order. The input split is unchanged.
func Augment(rng *rand.Rand, s Split, transforms ...Transform) Split {
	c, h, w := s.X.Shape[1], s.X.Shape[2], s.X.Shape[3]
	vol := c * h * w
	x := tensor.New(s.X.Shape...)
	copy(x.Data, s.X.Data)
	for b := 0; b < s.Len(); b++ {
		img := x.Data[b*vol : (b+1)*vol]
		for _, t := range transforms {
			t.Apply(rng, img, c, h, w)
		}
	}
	labels := append([]int(nil), s.Labels...)
	return Split{X: x, Labels: labels}
}

// Concat appends the samples of b to a (shapes must match).
func Concat(a, b Split) Split {
	if len(a.X.Shape) != 4 || len(b.X.Shape) != 4 ||
		a.X.Shape[1] != b.X.Shape[1] || a.X.Shape[2] != b.X.Shape[2] || a.X.Shape[3] != b.X.Shape[3] {
		panic("data: Concat requires matching sample shapes")
	}
	x := tensor.New(a.Len()+b.Len(), a.X.Shape[1], a.X.Shape[2], a.X.Shape[3])
	copy(x.Data, a.X.Data)
	copy(x.Data[a.X.Len():], b.X.Data)
	labels := append(append([]int(nil), a.Labels...), b.Labels...)
	return Split{X: x, Labels: labels}
}
