package sparsity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestNMValidate(t *testing.T) {
	if err := (NM{2, 4}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []NM{{0, 4}, {5, 4}, {1, 0}, {-1, 4}} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("pattern %v accepted", bad)
		}
	}
}

func TestApplyNMKeepsTopScores(t *testing.T) {
	scores := tensor.FromSlice([]float64{
		4, 1, 3, 2, 9, 8, 7, 6,
	}, 1, 8)
	mask := tensor.New(1, 8)
	ApplyNM(mask, scores, NM{2, 4})
	want := []float64{1, 0, 1, 0, 1, 1, 0, 0}
	for i, w := range want {
		if mask.Data[i] != w {
			t.Fatalf("mask[%d] = %v, want %v (mask %v)", i, mask.Data[i], w, mask.Data)
		}
	}
}

func TestApplyNMPartialGroup(t *testing.T) {
	// 6 columns with M=4: trailing group of 2 keeps min(N=2, 2)=2.
	scores := tensor.FromSlice([]float64{5, 1, 2, 3, 9, 8}, 1, 6)
	mask := tensor.New(1, 6)
	ApplyNM(mask, scores, NM{2, 4})
	if mask.Data[4] != 1 || mask.Data[5] != 1 {
		t.Fatalf("partial group mishandled: %v", mask.Data)
	}
	if err := VerifyNM(mask, NM{2, 4}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyNM1of4Density(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	scores := tensor.Randn(rng, 1, 8, 16)
	mask := tensor.New(8, 16)
	ApplyNM(mask, scores, NM{1, 4})
	if d := Density(mask); d != 0.25 {
		t.Fatalf("1:4 density = %v, want 0.25", d)
	}
	if err := VerifyNM(mask, NM{1, 4}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyNMDetectsViolation(t *testing.T) {
	mask := tensor.Full(1, 1, 4) // 4 non-zeros in one group
	if err := VerifyNM(mask, NM{2, 4}); err == nil {
		t.Fatal("violation not detected")
	}
}

// Property: ApplyNM always yields a valid N:M mask with exact density when
// cols is a multiple of M.
func TestApplyNMValidProperty(t *testing.T) {
	f := func(seed int64, nRaw, rowsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%4 + 1 // 1..4
		rows := int(rowsRaw)%6 + 1
		cols := 4 * (int(seed&3) + 2) // multiple of 4
		nm := NM{N: n, M: 4}
		scores := tensor.Randn(rng, 1, rows, cols)
		mask := tensor.New(rows, cols)
		ApplyNM(mask, scores, nm)
		if VerifyNM(mask, nm) != nil {
			return false
		}
		return math.Abs(Density(mask)-nm.Density()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockGridGeometry(t *testing.T) {
	g := NewBlockGrid(10, 14, 4)
	if g.GridRows() != 3 || g.GridCols() != 4 {
		t.Fatalf("grid %dx%d, want 3x4", g.GridRows(), g.GridCols())
	}
	r0, r1, c0, c1 := g.Bounds(2, 3)
	if r0 != 8 || r1 != 10 || c0 != 12 || c1 != 14 {
		t.Fatalf("edge block bounds %d %d %d %d", r0, r1, c0, c1)
	}
}

func TestBlockScoresSums(t *testing.T) {
	scores := tensor.FromSlice([]float64{
		1, 2, 10, 20,
		3, 4, 30, 40,
	}, 2, 4)
	bs := BlockScores(scores, NewBlockGrid(2, 4, 2))
	if bs.At(0, 0) != 10 || bs.At(0, 1) != 100 {
		t.Fatalf("block scores %v", bs.Data)
	}
}

func TestRankColumnsOrderingAndScores(t *testing.T) {
	// Two block rows, three block columns.
	bs := tensor.FromSlice([]float64{
		5, 1, 3,
		2, 9, 4,
	}, 2, 3)
	rcs := RankColumns(bs)
	if len(rcs) != 3 {
		t.Fatalf("rank count %d", len(rcs))
	}
	// Rank 0: row0 picks col1 (1), row1 picks col0 (2) → score 3.
	if rcs[0].Score != 3 || rcs[0].BlockCols[0] != 1 || rcs[0].BlockCols[1] != 0 {
		t.Fatalf("rank0 = %+v", rcs[0])
	}
	// Rank 1: row0 col2 (3), row1 col2 (4) → 7.
	if rcs[1].Score != 7 || rcs[1].BlockCols[0] != 2 || rcs[1].BlockCols[1] != 2 {
		t.Fatalf("rank1 = %+v", rcs[1])
	}
	// Rank 2: row0 col0 (5), row1 col1 (9) → 14.
	if rcs[2].Score != 14 {
		t.Fatalf("rank2 = %+v", rcs[2])
	}
	// Monotone scores.
	for i := 1; i < len(rcs); i++ {
		if rcs[i].Score < rcs[i-1].Score {
			t.Fatal("rank scores not monotone")
		}
	}
}

func TestPruneRankColumnBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows, cols, b := 8, 12, 4
	mask := tensor.Full(1, rows, cols)
	scores := tensor.Randn(rng, 1, rows, cols)
	for i := range scores.Data {
		scores.Data[i] = math.Abs(scores.Data[i])
	}
	g := NewBlockGrid(rows, cols, b)
	bs := BlockScores(scores, g)
	rcs := RankColumns(bs)
	PruneRankColumn(mask, g, rcs[0])
	counts := KeptBlocksPerRow(mask, g)
	for _, c := range counts {
		if c != 2 { // 3 block cols - 1 pruned
			t.Fatalf("kept per row %v, want 2", counts)
		}
	}
	if err := VerifyRowBalance(mask, g); err != nil {
		t.Fatal(err)
	}
	if f := KeptBlockFraction(mask, g); math.Abs(f-2.0/3.0) > 1e-12 {
		t.Fatalf("kept fraction %v", f)
	}
}

// Property: pruning any prefix of rank columns preserves row balance.
func TestRankPrefixBalanceProperty(t *testing.T) {
	f := func(seed int64, prefixRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols, b := 12, 20, 4
		g := NewBlockGrid(rows, cols, b)
		scores := tensor.Randn(rng, 1, rows, cols)
		mask := tensor.Full(1, rows, cols)
		bs := BlockScores(scores, g)
		rcs := RankColumns(bs)
		prefix := int(prefixRaw) % (len(rcs) + 1)
		for i := 0; i < prefix; i++ {
			PruneRankColumn(mask, g, rcs[i])
		}
		if VerifyRowBalance(mask, g) != nil {
			return false
		}
		counts := KeptBlocksPerRow(mask, g)
		return counts[0] == g.GridCols()-prefix
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank columns within one layer never prune the same block twice.
func TestRankColumnsDisjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bs := tensor.Randn(rng, 1, 5, 7)
		rcs := RankColumns(bs)
		for r := 0; r < 5; r++ {
			seen := map[int]bool{}
			for _, rc := range rcs {
				if seen[rc.BlockCols[r]] {
					return false
				}
				seen[rc.BlockCols[r]] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridCompose(t *testing.T) {
	// N:M then block prune: result satisfies N:M everywhere and balance.
	rng := rand.New(rand.NewSource(3))
	rows, cols, b := 8, 16, 4
	nm := NM{2, 4}
	scores := tensor.Randn(rng, 1, rows, cols)
	for i := range scores.Data {
		scores.Data[i] = math.Abs(scores.Data[i])
	}
	mask := tensor.New(rows, cols)
	ApplyNM(mask, scores, nm)
	g := NewBlockGrid(rows, cols, b)
	masked := tensor.Mul(scores, mask)
	bs := BlockScores(masked, g)
	rcs := RankColumns(bs)
	PruneRankColumn(mask, g, rcs[0])
	PruneRankColumn(mask, g, rcs[1])
	if err := VerifyNM(mask, nm); err != nil {
		t.Fatalf("hybrid mask violates N:M: %v", err)
	}
	if err := VerifyRowBalance(mask, g); err != nil {
		t.Fatalf("hybrid mask violates balance: %v", err)
	}
	// Overall sparsity matches the paper's formula 1-(K'/K)(N/M).
	kept := KeptBlockFraction(mask, g)
	want := HybridSparsity(kept, nm)
	got := 1 - Density(mask)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("sparsity %v, formula %v", got, want)
	}
}

func TestHybridSparsityFormula(t *testing.T) {
	// Paper Sec III-A: sparsity = 1 − (K'/K)·(N/M).
	if s := HybridSparsity(0.5, NM{2, 4}); s != 0.75 {
		t.Fatalf("HybridSparsity = %v, want 0.75", s)
	}
	if s := HybridSparsity(1, NM{4, 4}); s != 0 {
		t.Fatalf("dense = %v", s)
	}
}
