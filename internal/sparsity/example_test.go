package sparsity_test

import (
	"fmt"

	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// ExampleApplyNM demonstrates fine-grained 2:4 masking: in every group of
// four consecutive weights, the two highest-scoring survive.
func ExampleApplyNM() {
	scores := tensor.FromSlice([]float64{
		9, 1, 8, 2, // group 1: keep positions 0 and 2
		3, 7, 4, 6, // group 2: keep positions 1 and 3
	}, 1, 8)
	mask := tensor.New(1, 8)
	sparsity.ApplyNM(mask, scores, sparsity.NM{N: 2, M: 4})
	fmt.Println(mask.Data)
	// Output: [1 0 1 0 0 1 0 1]
}

// ExampleRankColumns demonstrates CRISP's pruning unit: the o-th rank
// column names, per block row, the o-th least important block — pruning it
// removes exactly one block from every row.
func ExampleRankColumns() {
	blockScores := tensor.FromSlice([]float64{
		5, 1, 3, // block row 0: ascending order is cols 1, 2, 0
		2, 9, 4, // block row 1: ascending order is cols 0, 2, 1
	}, 2, 3)
	rcs := sparsity.RankColumns(blockScores)
	fmt.Printf("rank 0: score %.0f, blocks %v\n", rcs[0].Score, rcs[0].BlockCols)
	fmt.Printf("rank 1: score %.0f, blocks %v\n", rcs[1].Score, rcs[1].BlockCols)
	// Output:
	// rank 0: score 3, blocks [1 0]
	// rank 1: score 7, blocks [2 2]
}

// ExampleHybridSparsity shows the paper's overall-sparsity formula
// 1 − (K'/K)·(N/M).
func ExampleHybridSparsity() {
	s := sparsity.HybridSparsity(0.4, sparsity.NM{N: 1, M: 4})
	fmt.Printf("%.2f\n", s)
	// Output: 0.90
}
