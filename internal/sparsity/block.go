package sparsity

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// BlockGrid tiles a rows×cols matrix into B×B blocks; edge blocks may be
// smaller when B does not divide the matrix dimensions.
type BlockGrid struct {
	Rows, Cols, B int
}

// NewBlockGrid validates and constructs the grid.
func NewBlockGrid(rows, cols, b int) BlockGrid {
	if rows <= 0 || cols <= 0 || b <= 0 {
		panic(fmt.Sprintf("sparsity: invalid block grid %dx%d B=%d", rows, cols, b))
	}
	return BlockGrid{Rows: rows, Cols: cols, B: b}
}

// GridRows returns the number of block rows.
func (g BlockGrid) GridRows() int { return (g.Rows + g.B - 1) / g.B }

// GridCols returns the number of block columns.
func (g BlockGrid) GridCols() int { return (g.Cols + g.B - 1) / g.B }

// Bounds returns the half-open element ranges [r0,r1)×[c0,c1) of block
// (br, bc), clamped at the matrix edge.
func (g BlockGrid) Bounds(br, bc int) (r0, r1, c0, c1 int) {
	r0 = br * g.B
	r1 = r0 + g.B
	if r1 > g.Rows {
		r1 = g.Rows
	}
	c0 = bc * g.B
	c1 = c0 + g.B
	if c1 > g.Cols {
		c1 = g.Cols
	}
	return
}

// BlockScores sums scores per block, returning a [GridRows, GridCols]
// tensor. scores must be rank-2 with the grid's matrix shape.
func BlockScores(scores *tensor.Tensor, g BlockGrid) *tensor.Tensor {
	rows, cols := checkMatrix(scores, scores)
	if rows != g.Rows || cols != g.Cols {
		panic(fmt.Sprintf("sparsity: scores %v do not match grid %dx%d", scores.Shape, g.Rows, g.Cols))
	}
	out := tensor.New(g.GridRows(), g.GridCols())
	gc := g.GridCols()
	for r := 0; r < rows; r++ {
		br := r / g.B
		base := r * cols
		for c := 0; c < cols; c++ {
			out.Data[br*gc+c/g.B] += scores.Data[base+c]
		}
	}
	return out
}

// RankColumn is CRISP's pruning unit: removing rank o deletes the o-th
// least-important block from *every* block row of a layer, preserving the
// uniform per-row balance the hardware needs. BlockCols[i] names the block
// column pruned in block row i.
type RankColumn struct {
	// Rank is the 0-based sorted position o within the layer.
	Rank int
	// Score is c_o = Σ over block rows of the o-th smallest block score.
	Score float64
	// BlockCols[i] is the block column selected in block row i.
	BlockCols []int
}

// RankColumns implements lines 6–7 of Algorithm 1: it sorts each block row's
// scores ascending and aggregates the o-th smallest across rows into c_o.
// The result is ordered by rank (and therefore by non-decreasing score).
func RankColumns(blockScores *tensor.Tensor) []RankColumn {
	gr, gc := checkMatrix(blockScores, blockScores)
	// Per row, the ascending order of block columns.
	order := make([][]int, gr)
	for r := 0; r < gr; r++ {
		idx := make([]int, gc)
		for i := range idx {
			idx[i] = i
		}
		row := blockScores.Data[r*gc : (r+1)*gc]
		sort.SliceStable(idx, func(a, b int) bool { return row[idx[a]] < row[idx[b]] })
		order[r] = idx
	}
	out := make([]RankColumn, gc)
	for o := 0; o < gc; o++ {
		rc := RankColumn{Rank: o, BlockCols: make([]int, gr)}
		for r := 0; r < gr; r++ {
			bc := order[r][o]
			rc.BlockCols[r] = bc
			rc.Score += blockScores.Data[r*gc+bc]
		}
		out[o] = rc
	}
	return out
}

// PruneRankColumn zeroes the blocks selected by rc in mask.
func PruneRankColumn(mask *tensor.Tensor, g BlockGrid, rc RankColumn) {
	rows, cols := checkMatrix(mask, mask)
	if rows != g.Rows || cols != g.Cols {
		panic(fmt.Sprintf("sparsity: mask %v does not match grid %dx%d", mask.Shape, g.Rows, g.Cols))
	}
	for br, bc := range rc.BlockCols {
		r0, r1, c0, c1 := g.Bounds(br, bc)
		for r := r0; r < r1; r++ {
			for c := c0; c < c1; c++ {
				mask.Data[r*cols+c] = 0
			}
		}
	}
}

// BlockKept reports whether block (br, bc) of mask holds any non-zero.
func BlockKept(mask *tensor.Tensor, g BlockGrid, br, bc int) bool {
	_, cols := checkMatrix(mask, mask)
	r0, r1, c0, c1 := g.Bounds(br, bc)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			if mask.Data[r*cols+c] != 0 {
				return true
			}
		}
	}
	return false
}

// KeptBlocksPerRow counts, for each block row, how many blocks contain at
// least one non-zero.
func KeptBlocksPerRow(mask *tensor.Tensor, g BlockGrid) []int {
	out := make([]int, g.GridRows())
	for br := range out {
		for bc := 0; bc < g.GridCols(); bc++ {
			if BlockKept(mask, g, br, bc) {
				out[br]++
			}
		}
	}
	return out
}

// VerifyRowBalance returns an error unless every block row of mask keeps
// exactly the same number of non-zero blocks — the load-balancing invariant
// CRISP's accelerator exploits.
func VerifyRowBalance(mask *tensor.Tensor, g BlockGrid) error {
	counts := KeptBlocksPerRow(mask, g)
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			return fmt.Errorf("sparsity: block row %d keeps %d blocks, row 0 keeps %d", i, counts[i], counts[0])
		}
	}
	return nil
}

// KeptBlockFraction returns the fraction of grid blocks containing at least
// one non-zero.
func KeptBlockFraction(mask *tensor.Tensor, g BlockGrid) float64 {
	total := g.GridRows() * g.GridCols()
	kept := 0
	for _, c := range KeptBlocksPerRow(mask, g) {
		kept += c
	}
	return float64(kept) / float64(total)
}

// HybridSparsity returns the overall sparsity of the paper's formula
// 1 − (K'/K)·(N/M) for a kept-column fraction and N:M pattern.
func HybridSparsity(keptColFraction float64, nm NM) float64 {
	return 1 - keptColFraction*nm.Density()
}
