// Package sparsity implements the mask algebra behind CRISP's hybrid
// structured sparsity: fine-grained N:M masks along the reduction dimension,
// coarse-grained B×B block grids with per-row rank-column pruning, their
// composition, and validators/statistics for every invariant the paper's
// hardware design relies on (N:M validity, uniform non-zero blocks per row).
//
// All functions operate on rank-2 tensors (the [rows=outputs, cols=reduction]
// pruning view of a layer's weights) and are independent of the nn package.
package sparsity

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// NM is a fine-grained N:M sparsity pattern: at most N non-zeros in every
// group of M consecutive elements along a matrix row.
type NM struct {
	N, M int
}

// Validate reports whether the pattern is well-formed.
func (nm NM) Validate() error {
	if nm.M <= 0 || nm.N <= 0 || nm.N > nm.M {
		return fmt.Errorf("sparsity: invalid N:M pattern %d:%d", nm.N, nm.M)
	}
	return nil
}

// Density returns N/M, the kept fraction under the pattern.
func (nm NM) Density() float64 { return float64(nm.N) / float64(nm.M) }

// String implements fmt.Stringer ("2:4").
func (nm NM) String() string { return fmt.Sprintf("%d:%d", nm.N, nm.M) }

// ApplyNM writes an N:M mask into mask: within every group of M consecutive
// elements of each row of scores, the N highest-scoring positions are kept
// (set to 1) and the rest zeroed. Partial trailing groups of size s keep
// min(N, s) elements. mask and scores must be rank-2 with equal shapes.
func ApplyNM(mask, scores *tensor.Tensor, nm NM) {
	if err := nm.Validate(); err != nil {
		panic(err)
	}
	rows, cols := checkMatrix(mask, scores)
	type idxScore struct {
		idx   int
		score float64
	}
	group := make([]idxScore, 0, nm.M)
	for r := 0; r < rows; r++ {
		base := r * cols
		for g0 := 0; g0 < cols; g0 += nm.M {
			g1 := g0 + nm.M
			if g1 > cols {
				g1 = cols
			}
			group = group[:0]
			for i := g0; i < g1; i++ {
				group = append(group, idxScore{i, scores.Data[base+i]})
			}
			keep := nm.N
			if keep > len(group) {
				keep = len(group)
			}
			sort.Slice(group, func(a, b int) bool { return group[a].score > group[b].score })
			for k, gs := range group {
				if k < keep {
					mask.Data[base+gs.idx] = 1
				} else {
					mask.Data[base+gs.idx] = 0
				}
			}
		}
	}
}

// VerifyNM returns an error when any row group of mask holds more than N
// non-zeros per M consecutive elements.
func VerifyNM(mask *tensor.Tensor, nm NM) error {
	if err := nm.Validate(); err != nil {
		return err
	}
	rows, cols := checkMatrix(mask, mask)
	for r := 0; r < rows; r++ {
		base := r * cols
		for g0 := 0; g0 < cols; g0 += nm.M {
			g1 := g0 + nm.M
			if g1 > cols {
				g1 = cols
			}
			nz := 0
			for i := g0; i < g1; i++ {
				if mask.Data[base+i] != 0 {
					nz++
				}
			}
			if nz > nm.N {
				return fmt.Errorf("sparsity: row %d group [%d,%d) has %d non-zeros, pattern %s", r, g0, g1, nz, nm)
			}
		}
	}
	return nil
}

// Density returns the fraction of non-zero entries in mask.
func Density(mask *tensor.Tensor) float64 {
	if mask.Len() == 0 {
		return 0
	}
	return float64(mask.CountNonZero()) / float64(mask.Len())
}

// checkMatrix validates that a and b are rank-2 with identical shapes and
// returns (rows, cols).
func checkMatrix(a, b *tensor.Tensor) (int, int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("sparsity: rank-2 tensors required, got %v and %v", a.Shape, b.Shape))
	}
	if a.Shape[0] != b.Shape[0] || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("sparsity: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	return a.Shape[0], a.Shape[1]
}
