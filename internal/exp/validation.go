package exp

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/models"
	"repro/internal/pruner"
	"repro/internal/quant"
	"repro/internal/sparsity"
)

// TileSimRow cross-validates one layer between the closed-form model and
// the discrete-event tile simulator.
type TileSimRow struct {
	Layer       string
	Arch        string
	ClosedForm  float64
	TileSim     float64
	Ratio       float64
	Utilization float64
}

// ValidateTileSim compares the closed-form cycle model against the
// event-driven double-buffered tile schedule on the representative
// ResNet-50 layers — the reproduction's internal consistency check for the
// hardware results.
func (h *Harness) ValidateTileSim() ([]TileSimRow, *Table) {
	hw := accel.EdgeHW()
	e := energy.Default()
	dense := accel.NewDense(hw, e)
	crisp := accel.NewCRISPSTC(hw, e)
	sp := accel.Sparsity{NM: sparsity.NM{N: 2, M: 4}, KeptColFrac: 0.3, BlockSize: 64, ActDensity: 1}

	var rows []TileSimRow
	for _, l := range models.RepresentativeResNet50Layers() {
		if l.Kind != models.KindConv {
			continue
		}
		for _, arch := range []string{"dense", "crisp-stc"} {
			spA := accel.Dense()
			closed := dense.Simulate(l, spA).Cycles
			if arch == "crisp-stc" {
				spA = sp
				closed = crisp.Simulate(l, spA).Cycles
			}
			tr, err := accel.TileSim(hw, arch, l, spA)
			if err != nil {
				panic(fmt.Sprintf("exp: tile sim %s/%s: %v", arch, l.Name, err))
			}
			rows = append(rows, TileSimRow{
				Layer: l.Name, Arch: arch,
				ClosedForm: closed, TileSim: tr.Cycles,
				Ratio:       tr.Cycles / closed,
				Utilization: tr.Utilization(),
			})
		}
	}
	t := &Table{
		Title:   "Validation: closed-form model vs discrete-event tile simulator",
		Columns: []string{"layer", "arch", "closed-form", "tile-sim", "ratio", "compute-busy"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Layer, r.Arch, fmt.Sprintf("%.0f", r.ClosedForm), fmt.Sprintf("%.0f", r.TileSim),
			fmt.Sprintf("%.2f", r.Ratio), fmt.Sprintf("%.0f%%", 100*r.Utilization),
		})
	}
	t.Notes = append(t.Notes, "ratios near 1.0 mean the max(compute,memory) bound captures the real schedule")
	return rows, t
}

// SweepRow is one point of the sparsity sweep.
type SweepRow struct {
	Kept    float64
	Speedup float64
	EGain   float64
	Bound   string
}

// SweepSparsity sweeps the kept block-column fraction on a mid-network
// layer, exposing where CRISP-STC transitions from compute-bound to
// memory-bound — the knee that caps attainable speedup.
func (h *Harness) SweepSparsity() ([]SweepRow, *Table) {
	hw := accel.EdgeHW()
	e := energy.Default()
	dense := accel.NewDense(hw, e)
	crisp := accel.NewCRISPSTC(hw, e)
	var layer models.LayerShape
	for _, l := range models.RepresentativeResNet50Layers() {
		if l.Name == "conv2_1.b" {
			layer = l
		}
	}
	base := dense.Simulate(layer, accel.Dense())
	var rows []SweepRow
	for _, kept := range []float64{1.0, 0.8, 0.6, 0.4, 0.3, 0.2, 0.1, 0.05} {
		sp := accel.Sparsity{NM: sparsity.NM{N: 2, M: 4}, KeptColFrac: kept, BlockSize: 64, ActDensity: 1}
		p := crisp.Simulate(layer, sp)
		bound := "compute"
		if p.MemoryCycles > p.ComputeCycles {
			bound = "memory"
		}
		rows = append(rows, SweepRow{
			Kept:    kept,
			Speedup: base.Cycles / p.Cycles,
			EGain:   base.EnergyUJ() / p.EnergyUJ(),
			Bound:   bound,
		})
	}
	t := &Table{
		Title:   "Sweep: CRISP-STC speedup vs kept block-column fraction (conv2_1.b, 2:4, B=64)",
		Columns: []string{"kept", "speedup", "energy-gain", "bound"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{f3(r.Kept), f1(r.Speedup) + "x", f1(r.EGain) + "x", r.Bound})
	}
	t.Notes = append(t.Notes, "the compute→memory crossover caps attainable speedup at extreme sparsity")
	return rows, t
}

// QuantRow records accuracy before/after int8 weight quantization.
type QuantRow struct {
	Family models.Family
	Before float64
	After  float64
	MaxErr float64
}

// AblationQuant measures the accuracy cost of 8-bit per-channel weights on
// CRISP-pruned models — the deployment precision CRISP-STC computes at.
func (h *Harness) AblationQuant() ([]QuantRow, *Table) {
	ds := h.ImageNetLike
	sc := h.Scenario(ds, 5)
	var rows []QuantRow
	for _, f := range []models.Family{models.ResNet, models.VGG} {
		clf := h.Pretrained(f, ds)
		o := h.pruneOpts(0.8)
		o.NM = sparsity.NM{N: 2, M: 4}
		pruner.NewCRISP(o).Prune(clf, sc.Train)
		before := clf.Accuracy(sc.Test.X, sc.Test.Labels)
		errs, err := quant.QuantizeModel(clf, quant.PerChannel)
		if err != nil {
			// A pruned+fine-tuned model with non-finite weights means the
			// training diverged — an experiment invariant, not a data error.
			panic(fmt.Sprintf("exp: quantizing %s: %v", f, err))
		}
		after := clf.Accuracy(sc.Test.X, sc.Test.Labels)
		worst := 0.0
		for _, e := range errs {
			if e > worst {
				worst = e
			}
		}
		rows = append(rows, QuantRow{Family: f, Before: before, After: after, MaxErr: worst})
	}
	t := &Table{
		Title:   "Ablation F: int8 per-channel weight quantization after CRISP pruning (κ=0.80)",
		Columns: []string{"model", "acc-fp64", "acc-int8", "max-reconstruction-err"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{string(r.Family), f3(r.Before), f3(r.After), fmt.Sprintf("%.4f", r.MaxErr)})
	}
	t.Notes = append(t.Notes, "CRISP-STC computes on int8 operands; quantization must not undo the pruning accuracy")
	return rows, t
}
