package exp

import (
	"flag"
	"testing"

	"repro/internal/models"
)

// fullScale opts the slow training figures in: `go test ./internal/exp
// -full` is the nightly path. Without it (and in -short mode) the heavy
// end-to-end figure regenerations are skipped so tier-1 stays fast; the
// cheap analytical figures and harness tests always run.
var fullScale = flag.Bool("full", false, "run the full-scale training figures (nightly path)")

// skipHeavy skips a training-based figure test unless -full was passed.
func skipHeavy(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("training experiment (short mode)")
	}
	if !*fullScale {
		t.Skip("training experiment; pass -full (nightly path) to run")
	}
}

// The training-based figures are exercised end to end at quick scale. They
// are the slowest tests in the repository; each asserts the paper's
// qualitative claim, not absolute accuracy.

func TestFigure1Shape(t *testing.T) {
	skipHeavy(t)
	h := quickHarness()
	rows, tb := h.Figure1()
	if len(rows) != 9 { // 3 families × 3 ratios
		t.Fatalf("rows %d, want 9", len(rows))
	}
	if len(tb.Rows) != len(rows) {
		t.Fatal("table mismatch")
	}
	for _, r := range rows {
		if r.Accuracy < 0 || r.Accuracy > 1 || r.DenseAcc < 0 || r.DenseAcc > 1 {
			t.Fatalf("accuracy out of range: %+v", r)
		}
	}
	// Fig 1's claim: at 1:4, the compact MobileNet's gap to its dense
	// reference is at least as large as the over-parameterized ResNet's.
	gap := map[models.Family]float64{}
	for _, r := range rows {
		if r.NM.N == 1 {
			gap[r.Family] = r.DenseAcc - r.Accuracy
		}
	}
	if gap[models.MobileNet] < gap[models.ResNet]-0.15 {
		t.Fatalf("compact-model gap (%v) unexpectedly below resnet gap (%v)",
			gap[models.MobileNet], gap[models.ResNet])
	}
}

func TestFigure2NonUniform(t *testing.T) {
	skipHeavy(t)
	h := quickHarness()
	rows, _ := h.Figure2()
	if len(rows) < 5 {
		t.Fatalf("too few layers: %d", len(rows))
	}
	minS, maxS := 1.0, 0.0
	for _, r := range rows {
		if r.Sparsity < 0 || r.Sparsity > 1 {
			t.Fatalf("sparsity out of range: %+v", r)
		}
		if r.Sparsity < minS {
			minS = r.Sparsity
		}
		if r.Sparsity > maxS {
			maxS = r.Sparsity
		}
	}
	// The paper's point: the distribution is non-uniform.
	if maxS-minS < 0.05 {
		t.Fatalf("layer sparsity too uniform: [%v, %v]", minS, maxS)
	}
}

func TestFigure3CRISPBeatsBlockAtHighSparsity(t *testing.T) {
	skipHeavy(t)
	h := quickHarness()
	rows, _ := h.Figure3()
	// Compare the canonical curves: crisp 2:4 B=4 vs block B=4.
	acc := map[string]map[float64]float64{"crisp": {}, "block": {}}
	for _, r := range rows {
		if r.Block != 4 {
			continue
		}
		if r.Method == "crisp" && (r.NM.N != 2 || r.NM.M != 4) {
			continue
		}
		acc[r.Method][r.Target] = r.Accuracy
	}
	// At the highest target, CRISP must not trail block pruning meaningfully.
	high := 0.92
	if acc["crisp"][high] < acc["block"][high]-0.05 {
		t.Fatalf("at κ=%.2f crisp %.3f trails block %.3f", high, acc["crisp"][high], acc["block"][high])
	}
}

func TestFigure7Shape(t *testing.T) {
	skipHeavy(t)
	h := quickHarness()
	rows, _ := h.Figure7()
	// quick: 2 datasets × 2 families × 3 class counts × 3 methods.
	if len(rows) != 2*2*3*3 {
		t.Fatalf("rows %d, want 36", len(rows))
	}
	for _, r := range rows {
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Fatalf("accuracy out of range: %+v", r)
		}
		if r.Method == "dense-ft" && r.FLOPsRatio != 1 {
			t.Fatalf("dense FLOPs ratio %v", r.FLOPsRatio)
		}
		if r.Method != "dense-ft" && (r.FLOPsRatio <= 0 || r.FLOPsRatio >= 1) {
			t.Fatalf("pruned FLOPs ratio %v for %+v", r.FLOPsRatio, r)
		}
	}
	// CRISP must reach lower FLOPs than the channel baseline on average at
	// matched targets (the paper's table) — or at worst equal.
	var crispF, chanF float64
	var n int
	byKey := map[string]map[string]float64{}
	for _, r := range rows {
		if r.Method == "dense-ft" {
			continue
		}
		key := r.Dataset + "/" + string(r.Family) + "/" + itoa(r.NumClasses)
		if byKey[key] == nil {
			byKey[key] = map[string]float64{}
		}
		byKey[key][r.Method] = r.FLOPsRatio
	}
	for _, m := range byKey {
		crispF += m["crisp"]
		chanF += m["channel"]
		n++
	}
	if n == 0 {
		t.Fatal("no comparable pairs")
	}
	if crispF/float64(n) > chanF/float64(n)+0.05 {
		t.Fatalf("CRISP mean FLOPs %.3f above channel %.3f", crispF/float64(n), chanF/float64(n))
	}
}

func TestAblationsRun(t *testing.T) {
	skipHeavy(t)
	h := quickHarness()
	rowsA, _ := h.AblationIterative()
	if len(rowsA) != 2 {
		t.Fatalf("ablation A rows %d", len(rowsA))
	}
	rowsB, _ := h.AblationSaliency()
	if len(rowsB) != 2 {
		t.Fatalf("ablation B rows %d", len(rowsB))
	}
	rowsC, tb := h.AblationBalance()
	if len(rowsC) != 2 {
		t.Fatalf("ablation C rows %d", len(rowsC))
	}
	if tb.String() == "" {
		t.Fatal("empty table")
	}
	// Balanced variant must report lower or equal imbalance.
	if rowsC[0].Extra == "" || rowsC[1].Extra == "" {
		t.Fatal("missing imbalance annotations")
	}
}

func itoa(v int) string {
	return string(rune('0'+v/10%10)) + string(rune('0'+v%10))
}

func TestExtTransformer(t *testing.T) {
	skipHeavy(t)
	h := quickHarness()
	rows, tb := h.ExtTransformer()
	if len(rows) != 5 { // dense + 2 targets × 2 methods
		t.Fatalf("rows %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Fatalf("accuracy out of range: %+v", r)
		}
		if r.Method != "dense-ft" && (r.FLOPs <= 0 || r.FLOPs >= 1) {
			t.Fatalf("FLOPs ratio %v for %+v", r.FLOPs, r)
		}
	}
	if tb.String() == "" {
		t.Fatal("empty table")
	}
}

func TestMemoryTable(t *testing.T) {
	skipHeavy(t)
	h := quickHarness()
	rows, tb := h.MemoryTable()
	if len(rows) != 4 {
		t.Fatalf("rows %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.CRISPBytes >= r.DenseBytes {
			t.Fatalf("%s: compressed %d not smaller than dense %d", r.Family, r.CRISPBytes, r.DenseBytes)
		}
		if r.CRISPBytes > r.CSRBytes {
			t.Fatalf("%s: crisp %d above csr %d", r.Family, r.CRISPBytes, r.CSRBytes)
		}
		if r.Compression < 1.5 {
			t.Fatalf("%s: compression %.2f too small at κ=0.85", r.Family, r.Compression)
		}
	}
	if tb.String() == "" {
		t.Fatal("empty table")
	}
}

func TestAblationsDE(t *testing.T) {
	skipHeavy(t)
	h := quickHarness()
	rowsD, _ := h.AblationSchedule()
	if len(rowsD) != 2 {
		t.Fatalf("ablation D rows %d", len(rowsD))
	}
	for _, r := range rowsD {
		if r.Sparsity < 0.85 {
			t.Fatalf("schedule %s missed target: %v", r.Variant, r.Sparsity)
		}
	}
	rowsE, _ := h.AblationMixedNM()
	if len(rowsE) != 2 {
		t.Fatalf("ablation E rows %d", len(rowsE))
	}
	for _, r := range rowsE {
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Fatalf("accuracy out of range: %+v", r)
		}
	}
}

func TestAblationQuant(t *testing.T) {
	skipHeavy(t)
	h := quickHarness()
	rows, _ := h.AblationQuant()
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.After < r.Before-0.2 {
			t.Fatalf("%s: int8 dropped accuracy %v → %v", r.Family, r.Before, r.After)
		}
		if r.MaxErr <= 0 {
			t.Fatalf("%s: zero reconstruction error is implausible", r.Family)
		}
	}
}
