package exp

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/pruner"
	"repro/internal/sparsity"
)

// Fig1Row is one (model, N:M) accuracy point.
type Fig1Row struct {
	Family   models.Family
	NM       sparsity.NM
	Accuracy float64
	DenseAcc float64
}

// Figure1 reproduces Fig. 1: accuracy of the three model families at N:M
// ratios 1:4 / 2:4 / 3:4 on a 10-class user scenario. The paper's point:
// over-parameterized models (ResNet) tolerate aggressive N:M, compact
// models (MobileNetV2) open an accuracy gap.
func (h *Harness) Figure1() ([]Fig1Row, *Table) {
	ds := h.ImageNetLike
	k := 10
	if h.Cfg.Scale == Quick {
		k = 5
	}
	sc := h.Scenario(ds, k)
	var rows []Fig1Row
	for _, f := range []models.Family{models.ResNet, models.VGG, models.MobileNet} {
		dense := h.DenseUpperBound(f, ds, sc)
		for _, nm := range []sparsity.NM{{N: 3, M: 4}, {N: 2, M: 4}, {N: 1, M: 4}} {
			clf := h.Pretrained(f, ds)
			o := h.pruneOpts(1 - nm.Density())
			o.NM = nm
			p := pruner.NewNMOnly(o)
			p.Prune(clf, sc.Train)
			rows = append(rows, Fig1Row{
				Family:   f,
				NM:       nm,
				Accuracy: clf.Accuracy(sc.Test.X, sc.Test.Labels),
				DenseAcc: dense,
			})
		}
	}
	t := &Table{
		Title:   "Fig 1: accuracy at different N:M ratios (" + h.Cfg.Scale.String() + ")",
		Columns: []string{"model", "N:M", "accuracy", "dense-ft"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{string(r.Family), r.NM.String(), f3(r.Accuracy), f3(r.DenseAcc)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d user classes on %s", k, ds.Name))
	return rows, t
}

// Fig2Row is one layer's sparsity after global CRISP pruning.
type Fig2Row struct {
	Layer    string
	Sparsity float64
}

// Figure2 reproduces Fig. 2: the non-uniform layer-wise sparsity
// distribution global rank selection produces (some layers pruned far
// harder than the global average).
func (h *Harness) Figure2() ([]Fig2Row, *Table) {
	ds := h.ImageNetLike
	k := 5
	sc := h.Scenario(ds, k)
	clf := h.Pretrained(models.ResNet, ds)
	o := h.pruneOpts(0.9)
	o.NM = sparsity.NM{N: 2, M: 4}
	rep := pruner.NewCRISP(o).Prune(clf, sc.Train)
	var rows []Fig2Row
	for _, ls := range rep.Layers {
		rows = append(rows, Fig2Row{Layer: ls.Name, Sparsity: ls.Sparsity})
	}
	t := &Table{
		Title:   "Fig 2: layer-wise sparsity distribution (" + h.Cfg.Scale.String() + ")",
		Columns: []string{"layer", "sparsity"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Layer, f3(r.Sparsity)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("resnet-s, global target 0.90, achieved %.3f", rep.AchievedSparsity),
		"global rank selection yields non-uniform per-layer sparsity (paper Fig 2)")
	return rows, t
}

// Fig3Row is one (variant, sparsity) accuracy point.
type Fig3Row struct {
	// Method is "crisp" or "block".
	Method string
	// NM is the fine-grained pattern (zero value for block-only rows).
	NM sparsity.NM
	// Block is the block size B.
	Block    int
	Target   float64
	Achieved float64
	Accuracy float64
}

// fig3Variant describes one curve of the Fig. 3 sweep.
type fig3Variant struct {
	method string
	nm     sparsity.NM
	block  int
}

// Figure3 reproduces Fig. 3: CRISP across N:M ratios and block sizes
// against pure block pruning, over increasing sparsity. Block pruning
// collapses beyond ~80% sparsity; CRISP holds.
func (h *Harness) Figure3() ([]Fig3Row, *Table) {
	ds := h.ImageNetLike
	k := 10
	if h.Cfg.Scale == Quick {
		k = 5
	}
	sc := h.Scenario(ds, k)
	targets := []float64{0.5, 0.7, 0.8, 0.9, 0.95}
	variants := []fig3Variant{
		{"crisp", sparsity.NM{N: 2, M: 4}, 4}, // canonical
		{"crisp", sparsity.NM{N: 1, M: 4}, 4},
		{"crisp", sparsity.NM{N: 3, M: 4}, 4},
		{"crisp", sparsity.NM{N: 2, M: 4}, 8},
		{"block", sparsity.NM{}, 4},
		{"block", sparsity.NM{}, 8},
	}
	if h.Cfg.Scale == Quick {
		targets = []float64{0.7, 0.85, 0.92}
		variants = []fig3Variant{
			{"crisp", sparsity.NM{N: 2, M: 4}, 4},
			{"crisp", sparsity.NM{N: 1, M: 4}, 4},
			{"crisp", sparsity.NM{N: 2, M: 4}, 8},
			{"block", sparsity.NM{}, 4},
			{"block", sparsity.NM{}, 8},
		}
	}
	var rows []Fig3Row
	for _, target := range targets {
		for _, v := range variants {
			clf := h.Pretrained(models.ResNet, ds)
			o := h.pruneOpts(target)
			o.BlockSize = v.block
			var rep pruner.Report
			if v.method == "crisp" {
				o.NM = v.nm
				rep = pruner.NewCRISP(o).Prune(clf, sc.Train)
			} else {
				rep = pruner.NewBlockOnly(o, false).Prune(clf, sc.Train)
			}
			rows = append(rows, Fig3Row{
				Method:   v.method,
				NM:       v.nm,
				Block:    v.block,
				Target:   target,
				Achieved: rep.AchievedSparsity,
				Accuracy: clf.Accuracy(sc.Test.X, sc.Test.Labels),
			})
		}
	}
	t := &Table{
		Title:   "Fig 3: CRISP (N:M × block sizes) vs block pruning across sparsity (" + h.Cfg.Scale.String() + ")",
		Columns: []string{"method", "N:M", "B", "target", "achieved", "accuracy"},
	}
	for _, r := range rows {
		nmStr := "-"
		if r.NM.M != 0 {
			nmStr = r.NM.String()
		}
		t.Rows = append(t.Rows, []string{
			r.Method, nmStr, fmt.Sprintf("%d", r.Block),
			f3(r.Target), f3(r.Achieved), f3(r.Accuracy),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("resnet-s, %d user classes; N:M ratios below the target fall back to pure N:M sparsity", k))
	return rows, t
}

// Fig7Row is one (dataset, model, #classes, method) point.
type Fig7Row struct {
	Dataset    string
	Family     models.Family
	NumClasses int
	Method     string
	Accuracy   float64
	FLOPsRatio float64
	Sparsity   float64
}

// Figure7 reproduces Fig. 7: accuracy (and the FLOPs-ratio table rows)
// versus the number of user-preferred classes, comparing CRISP against the
// channel-pruning baseline (OCAP/CAPNN-style) and the dense fine-tuned
// upper bound, on both datasets. The sparsity target scales with the class
// count, as in the paper (fewer classes → more aggressive pruning).
func (h *Harness) Figure7() ([]Fig7Row, *Table) {
	families := []models.Family{models.ResNet, models.VGG, models.MobileNet}
	classCounts := []int{2, 5, 10, 25}
	if h.Cfg.Scale == Quick {
		families = []models.Family{models.ResNet, models.VGG}
		classCounts = []int{2, 5, 10}
	}
	var rows []Fig7Row
	for _, ds := range []*data.Dataset{h.CIFARLike, h.ImageNetLike} {
		for _, f := range families {
			for _, k := range classCounts {
				sc := h.Scenario(ds, k)
				target := kappaForClasses(k, ds.NumClasses)
				rows = append(rows, Fig7Row{
					Dataset: ds.Name, Family: f, NumClasses: k, Method: "dense-ft",
					Accuracy: h.DenseUpperBound(f, ds, sc), FLOPsRatio: 1, Sparsity: 0,
				})
				// CRISP.
				clf := h.Pretrained(f, ds)
				o := h.pruneOpts(target)
				o.NM = sparsity.NM{N: 2, M: 4}
				rep := pruner.NewCRISP(o).Prune(clf, sc.Train)
				rows = append(rows, Fig7Row{
					Dataset: ds.Name, Family: f, NumClasses: k, Method: "crisp",
					Accuracy:   clf.Accuracy(sc.Test.X, sc.Test.Labels),
					FLOPsRatio: rep.FLOPsRatio, Sparsity: rep.AchievedSparsity,
				})
				// Channel baseline at a matched target.
				clf = h.Pretrained(f, ds)
				oc := h.pruneOpts(target)
				repC := pruner.NewChannel(oc).Prune(clf, sc.Train)
				rows = append(rows, Fig7Row{
					Dataset: ds.Name, Family: f, NumClasses: k, Method: "channel",
					Accuracy:   clf.Accuracy(sc.Test.X, sc.Test.Labels),
					FLOPsRatio: repC.FLOPsRatio, Sparsity: repC.AchievedSparsity,
				})
			}
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].Dataset != rows[b].Dataset {
			return rows[a].Dataset < rows[b].Dataset
		}
		if rows[a].Family != rows[b].Family {
			return rows[a].Family < rows[b].Family
		}
		if rows[a].NumClasses != rows[b].NumClasses {
			return rows[a].NumClasses < rows[b].NumClasses
		}
		return rows[a].Method < rows[b].Method
	})
	t := &Table{
		Title:   "Fig 7: accuracy and FLOPs ratio vs number of user classes (" + h.Cfg.Scale.String() + ")",
		Columns: []string{"dataset", "model", "classes", "method", "accuracy", "flops-ratio", "sparsity"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset, string(r.Family), fmt.Sprintf("%d", r.NumClasses), r.Method,
			f3(r.Accuracy), f3(r.FLOPsRatio), f3(r.Sparsity),
		})
	}
	t.Notes = append(t.Notes, "sparsity target scales down as the class count grows (paper setup)")
	return rows, t
}

// kappaForClasses scales the pruning target with the user-class fraction:
// personalizing to few classes supports aggressive pruning.
func kappaForClasses(k, total int) float64 {
	frac := float64(k) / float64(total)
	switch {
	case frac <= 0.1:
		return 0.92
	case frac <= 0.25:
		return 0.88
	case frac <= 0.5:
		return 0.82
	default:
		return 0.75
	}
}
