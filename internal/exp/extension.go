package exp

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/pruner"
	"repro/internal/sparsity"
)

// ExtTransformerRow is one (method, target) point of the transformer
// extension experiment.
type ExtTransformerRow struct {
	Method   string
	Target   float64
	Achieved float64
	Accuracy float64
	FLOPs    float64
}

// ExtTransformer exercises the paper's stated future work: CRISP applied to
// a transformer architecture. Every projection of the small vision
// transformer (patch embedding, Q/K/V/O, MLP) is a prunable matrix, so the
// hybrid N:M + block pattern transfers unchanged. The experiment compares
// the dense fine-tuned reference against CRISP and unbalanced block pruning
// at increasing sparsity.
func (h *Harness) ExtTransformer() ([]ExtTransformerRow, *Table) {
	ds := h.ImageNetLike
	sc := h.Scenario(ds, 5)
	var rows []ExtTransformerRow

	dense := h.DenseUpperBound(models.Transformer, ds, sc)
	rows = append(rows, ExtTransformerRow{Method: "dense-ft", Accuracy: dense, FLOPs: 1})

	targets := []float64{0.7, 0.85}
	if h.Cfg.Scale == Full {
		targets = []float64{0.7, 0.8, 0.9}
	}
	for _, target := range targets {
		clf := h.Pretrained(models.Transformer, ds)
		o := h.pruneOpts(target)
		o.NM = sparsity.NM{N: 2, M: 4}
		rep := pruner.NewCRISP(o).Prune(clf, sc.Train)
		rows = append(rows, ExtTransformerRow{
			Method: "crisp", Target: target,
			Achieved: rep.AchievedSparsity,
			Accuracy: clf.Accuracy(sc.Test.X, sc.Test.Labels),
			FLOPs:    rep.FLOPsRatio,
		})

		clf = h.Pretrained(models.Transformer, ds)
		ob := h.pruneOpts(target)
		repB := pruner.NewBlockOnly(ob, false).Prune(clf, sc.Train)
		rows = append(rows, ExtTransformerRow{
			Method: "block", Target: target,
			Achieved: repB.AchievedSparsity,
			Accuracy: clf.Accuracy(sc.Test.X, sc.Test.Labels),
			FLOPs:    repB.FLOPsRatio,
		})
	}
	t := &Table{
		Title:   "Extension: CRISP on a vision transformer (" + h.Cfg.Scale.String() + ")",
		Columns: []string{"method", "target", "achieved", "accuracy", "flops-ratio"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Method, f3(r.Target), f3(r.Achieved), f3(r.Accuracy), f3(r.FLOPs),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("transformer-s on %s, 5 user classes; the paper's future-work direction", ds.Name))
	return rows, t
}
