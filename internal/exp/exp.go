// Package exp is the experiment harness: one function per figure/table of
// the CRISP paper, each returning structured rows plus a rendered text
// table. cmd/crisp-bench and the repository's benchmarks are thin wrappers
// around this package.
package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Quick is the CI-friendly configuration (small synthetic datasets,
	// few epochs) used by `go test -bench` and the default CLI mode.
	Quick Scale = iota
	// Full is the larger configuration behind EXPERIMENTS.md.
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Config parameterizes the harness.
type Config struct {
	Scale Scale
	Seed  int64
}

// Harness owns the datasets and a cache of pre-trained "universal" models,
// so each figure pays the pre-training cost at most once per family. A
// harness is safe for concurrent figure runs (exp.RunParallel): the
// pretraining cache is mutex-guarded and each snapshot trains exactly once
// even when several figures request the same family at the same time.
type Harness struct {
	Cfg Config
	// ImageNetLike and CIFARLike are the two synthetic datasets standing in
	// for ImageNet and CIFAR-100 (see DESIGN.md §2).
	ImageNetLike *data.Dataset
	CIFARLike    *data.Dataset

	mu         sync.Mutex
	pretrained map[string]*snapshot
}

// snapshot stores a trained model plus its constructor for cloning. once
// makes the training run exclusive without holding the harness lock.
type snapshot struct {
	once    sync.Once
	build   func() *nn.Classifier
	trained *nn.Classifier
}

// NewHarness constructs the harness for the given configuration.
func NewHarness(cfg Config) *Harness {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	h := &Harness{Cfg: cfg, pretrained: map[string]*snapshot{}}
	if cfg.Scale == Full {
		h.ImageNetLike = data.New(data.Config{
			Name: "synth-imagenet", NumClasses: 100, Channels: 3, H: 12, W: 12,
			Noise: 0.3, Jitter: 1, Seed: cfg.Seed,
		})
		h.CIFARLike = data.New(data.Config{
			Name: "synth-cifar", NumClasses: 60, Channels: 3, H: 10, W: 10,
			Noise: 0.3, Jitter: 1, Seed: cfg.Seed + 1,
		})
	} else {
		h.ImageNetLike = data.New(data.Config{
			Name: "synth-imagenet-q", NumClasses: 20, Channels: 3, H: 8, W: 8,
			Noise: 0.25, Jitter: 1, Seed: cfg.Seed,
		})
		h.CIFARLike = data.New(data.Config{
			Name: "synth-cifar-q", NumClasses: 16, Channels: 3, H: 8, W: 8,
			Noise: 0.25, Jitter: 1, Seed: cfg.Seed + 1,
		})
	}
	return h
}

// pretrainCfg returns epochs and samples-per-class for universal training.
func (h *Harness) pretrainCfg() (epochs, perClass int) {
	if h.Cfg.Scale == Full {
		return 8, 24
	}
	return 4, 12
}

// pruneOpts returns the default pruning options at this scale.
func (h *Harness) pruneOpts(target float64) pruner.Options {
	o := pruner.Options{
		Target:    target,
		BlockSize: 4,
		BatchSize: 16,
		LR:        0.01,
		Seed:      h.Cfg.Seed + 7,
	}
	if h.Cfg.Scale == Full {
		o.Iterations = 4
		o.FinetuneEpochs = 2
		o.FinalFinetuneEpochs = 3
	} else {
		o.Iterations = 3
		o.FinetuneEpochs = 1
		o.FinalFinetuneEpochs = 2
	}
	return o
}

// totalFinetuneEpochs is the epoch budget a pruning run consumes; the dense
// upper bound gets the same budget for a fair comparison.
func (h *Harness) totalFinetuneEpochs() int {
	o := h.pruneOpts(0.9)
	return o.Iterations*o.FinetuneEpochs + o.FinalFinetuneEpochs
}

// Pretrained returns a fresh classifier of family f trained on all classes
// of ds (the "universal model"), cloning from a per-harness cache.
func (h *Harness) Pretrained(f models.Family, ds *data.Dataset) *nn.Classifier {
	key := string(f) + "/" + ds.Name
	h.mu.Lock()
	snap := h.pretrained[key]
	if snap == nil {
		snap = &snapshot{}
		h.pretrained[key] = snap
	}
	h.mu.Unlock()
	snap.once.Do(func() {
		// The seed is derived from the key, not from cache-insertion order,
		// so concurrent figures assign each family the same model no matter
		// which figure asked first.
		seed := h.Cfg.Seed + int64(data.HashString(key)%997)*101
		snap.build = func() *nn.Classifier {
			return models.Build(f, rand.New(rand.NewSource(seed)), ds.NumClasses, widthFor(f))
		}
		clf := snap.build()
		epochs, perClass := h.pretrainCfg()
		all := make([]int, ds.NumClasses)
		for i := range all {
			all[i] = i
		}
		split := ds.MakeSplit("pretrain", all, perClass)
		opt := nn.NewSGD(0.05, 0.9, 4e-5)
		pruner.Finetune(clf, split, epochs, 16, opt, rand.New(rand.NewSource(seed+1)))
		snap.trained = clf
	})
	fresh := snap.build()
	snap.trained.CloneWeightsTo(fresh)
	return fresh
}

// widthFor mirrors the paper's over-parameterization ordering.
func widthFor(f models.Family) int {
	switch f {
	case models.MobileNet:
		return 1
	default:
		return 2
	}
}

// UserScenario bundles the splits for one personalization experiment.
type UserScenario struct {
	Classes []int
	Train   data.Split
	Test    data.Split
}

// Scenario samples k user classes from ds and materializes the splits.
func (h *Harness) Scenario(ds *data.Dataset, k int) UserScenario {
	classes := ds.UserClasses(h.Cfg.Seed+int64(k)*13, k)
	trainPer, testPer := 16, 8
	if h.Cfg.Scale == Full {
		trainPer, testPer = 32, 16
	}
	return UserScenario{
		Classes: classes,
		Train:   ds.MakeSplit("user-train", classes, trainPer),
		Test:    ds.MakeSplit("user-test", classes, testPer),
	}
}

// DenseUpperBound fine-tunes a fresh pretrained model on the user classes
// with the same epoch budget pruning gets and returns its test accuracy —
// the paper's dense reference.
func (h *Harness) DenseUpperBound(f models.Family, ds *data.Dataset, sc UserScenario) float64 {
	clf := h.Pretrained(f, ds)
	opt := nn.NewSGD(0.01, 0.9, 4e-5)
	pruner.Finetune(clf, sc.Train, h.totalFinetuneEpochs(), 16, opt, rand.New(rand.NewSource(h.Cfg.Seed+3)))
	return clf.Accuracy(sc.Test.X, sc.Test.Labels)
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders an aligned text table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f3 formats a float at 3 decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// f1 formats a float at 1 decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
