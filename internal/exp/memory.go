package exp

import (
	"fmt"

	"repro/internal/export"
	"repro/internal/models"
	"repro/internal/pruner"
	"repro/internal/sparsity"
)

// MemoryRow is one model's deployed-size accounting.
type MemoryRow struct {
	Family   models.Family
	Sparsity float64
	// Bytes at 8-bit weight precision.
	DenseBytes, CRISPBytes, CSRBytes, ELLPACKBytes int64
	Compression                                    float64
	Accuracy                                       float64
}

// MemoryTable quantifies the paper's "minimal memory consumption" claim:
// each model family is CRISP-pruned and its masked weights are encoded in
// the CRISP storage format (CSR fallback for block-exempt layers), compared
// against the dense model and the CSR/ELLPACK alternatives at 8-bit
// precision.
func (h *Harness) MemoryTable() ([]MemoryRow, *Table) {
	ds := h.ImageNetLike
	sc := h.Scenario(ds, 5)
	nm := sparsity.NM{N: 2, M: 4}
	target := 0.85
	var rows []MemoryRow
	for _, f := range []models.Family{models.ResNet, models.VGG, models.MobileNet, models.Transformer} {
		clf := h.Pretrained(f, ds)
		o := h.pruneOpts(target)
		o.NM = nm
		rep := pruner.NewCRISP(o).Prune(clf, sc.Train)
		ms, err := export.Sizes(clf, o.BlockSize, nm, 8)
		if err != nil {
			panic(fmt.Sprintf("exp: memory table for %s: %v", f, err))
		}
		rows = append(rows, MemoryRow{
			Family:       f,
			Sparsity:     rep.AchievedSparsity,
			DenseBytes:   ms.DenseBytes,
			CRISPBytes:   ms.FormatBytes["crisp"],
			CSRBytes:     ms.FormatBytes["csr"],
			ELLPACKBytes: ms.FormatBytes["ellpack"],
			Compression:  ms.CompressionRatio("crisp"),
			Accuracy:     clf.Accuracy(sc.Test.X, sc.Test.Labels),
		})
	}
	t := &Table{
		Title:   "Memory: deployed model size at κ=0.85, 8-bit weights (" + h.Cfg.Scale.String() + ")",
		Columns: []string{"model", "sparsity", "dense-B", "crisp-B", "csr-B", "ellpack-B", "compression", "accuracy"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			string(r.Family), f3(r.Sparsity),
			fmt.Sprintf("%d", r.DenseBytes), fmt.Sprintf("%d", r.CRISPBytes),
			fmt.Sprintf("%d", r.CSRBytes), fmt.Sprintf("%d", r.ELLPACKBytes),
			f1(r.Compression) + "x", f3(r.Accuracy),
		})
	}
	t.Notes = append(t.Notes, "biases/norm parameters and the classifier head are charged dense in every format")
	return rows, t
}
