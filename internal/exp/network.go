package exp

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/models"
	"repro/internal/sparsity"
)

// NetworkRow is one (network, architecture) end-to-end hardware point.
type NetworkRow struct {
	Network  string
	Arch     string
	Cycles   float64
	Speedup  float64
	EnergyUJ float64
	EGain    float64
}

// NetworkTable extends Fig. 8 from representative layers to entire
// networks: the exact full-size layer lists of ResNet-50, VGG-16 and
// MobileNetV2 are summed over all layers for each simulated architecture
// under the 2:4 + block hybrid at the depth-dependent sparsity profile.
// Depthwise layers (MobileNetV2) carry N:M only, matching the pruner's
// block exemption.
func (h *Harness) NetworkTable() ([]NetworkRow, *Table) {
	hw := accel.EdgeHW()
	e := energy.Default()
	dense := accel.NewDense(hw, e)
	archs := []accel.Arch{
		accel.NewNvidiaSTC(hw, e),
		accel.NewDSTC(hw, e),
		accel.NewCRISPSTC(hw, e),
	}
	nm := sparsity.NM{N: 2, M: 4}

	nets := []struct {
		name   string
		shapes []models.LayerShape
	}{
		{"resnet50", models.ResNet50Shapes()},
		{"vgg16", models.VGG16Shapes()},
		{"mobilenetv2", models.MobileNetV2Shapes()},
	}
	var rows []NetworkRow
	for _, net := range nets {
		var denseCycles, denseEnergy float64
		totals := map[string]*NetworkRow{}
		for _, a := range archs {
			totals[a.Name()] = &NetworkRow{Network: net.name, Arch: a.Name()}
		}
		for li, l := range net.shapes {
			kept := keptFracForDepth(li, len(net.shapes))
			d := dense.Simulate(l, accel.Dense())
			denseCycles += d.Cycles
			denseEnergy += d.EnergyUJ()
			for _, a := range archs {
				sp := accel.Sparsity{NM: nm, KeptColFrac: kept, BlockSize: 64, ActDensity: 1}
				if l.Kind == models.KindDepthwise {
					sp.KeptColFrac = 1 // block-exempt: N:M only
				}
				if a.Name() == "dstc" {
					sp.ActDensity = 0.6
				}
				p := a.Simulate(l, sp)
				totals[a.Name()].Cycles += p.Cycles
				totals[a.Name()].EnergyUJ += p.EnergyUJ()
			}
		}
		rows = append(rows, NetworkRow{
			Network: net.name, Arch: "dense",
			Cycles: denseCycles, Speedup: 1, EnergyUJ: denseEnergy, EGain: 1,
		})
		for _, a := range archs {
			r := totals[a.Name()]
			r.Speedup = denseCycles / r.Cycles
			r.EGain = denseEnergy / r.EnergyUJ
			rows = append(rows, *r)
		}
	}
	t := &Table{
		Title:   "Extension: end-to-end network latency and energy (2:4 hybrid, B=64)",
		Columns: []string{"network", "arch", "cycles", "speedup", "energy-uJ", "energy-gain"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Network, r.Arch, fmt.Sprintf("%.0f", r.Cycles),
			f1(r.Speedup) + "x", f1(r.EnergyUJ), f1(r.EGain) + "x",
		})
	}
	t.Notes = append(t.Notes, "whole-network sums over every layer of the exact full-size shape tables")
	return rows, t
}
