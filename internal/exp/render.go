package exp

import (
	"strings"
)

// CSV renders the table as RFC-4180-style comma-separated values (title and
// notes become '#' comment lines).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("# " + t.Title + "\n")
	writeCSVRow(&b, t.Columns)
	for _, r := range t.Rows {
		writeCSVRow(&b, r)
	}
	for _, n := range t.Notes {
		b.WriteString("# " + n + "\n")
	}
	return b.String()
}

// writeCSVRow quotes cells containing commas or quotes.
func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("### " + t.Title + "\n\n")
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		cells := make([]string, len(r))
		for i, c := range r {
			cells[i] = strings.ReplaceAll(c, "|", `\|`)
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		b.WriteString("\n> " + n + "\n")
	}
	return b.String()
}

// Render dispatches on a format name: "text" (default), "csv" or "md".
func (t *Table) Render(format string) string {
	switch format {
	case "csv":
		return t.CSV()
	case "md", "markdown":
		return t.Markdown()
	default:
		return t.String()
	}
}
