package exp

import "testing"

// TestFullScaleConstruction smoke-tests the full-scale configuration paths
// that need no training: harness construction, scenario sizing and the
// analytical figures.
func TestFullScaleConstruction(t *testing.T) {
	h := NewHarness(Config{Scale: Full, Seed: 2})
	if h.ImageNetLike.NumClasses != 100 || h.CIFARLike.NumClasses != 60 {
		t.Fatalf("full-scale datasets wrong: %d/%d", h.ImageNetLike.NumClasses, h.CIFARLike.NumClasses)
	}
	sc := h.Scenario(h.ImageNetLike, 10)
	if sc.Train.Len() != 10*32 || sc.Test.Len() != 10*16 {
		t.Fatalf("full-scale split sizes %d/%d", sc.Train.Len(), sc.Test.Len())
	}
	if rows, _ := h.Figure4(); len(rows) == 0 {
		t.Fatal("Figure4 empty at full scale")
	}
	if rows, _ := h.Figure8(); len(rows) == 0 {
		t.Fatal("Figure8 empty at full scale")
	}
	o := h.pruneOpts(0.9)
	if o.Iterations != 4 || o.FinetuneEpochs != 2 {
		t.Fatalf("full-scale prune opts %+v", o)
	}
}
