package exp

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
)

// sharedQuick lazily builds one quick-scale harness shared by every test in
// the package: the harness's pretrained-model cache is exactly the
// machinery for paying each family's training cost once, so tests reuse it
// instead of re-training per test. All harness state is either immutable
// (datasets) or concurrency-safe (the cache), and tests only mutate clones.
var sharedQuick = sync.OnceValue(func() *Harness {
	return NewHarness(Config{Scale: Quick, Seed: 1})
})

func quickHarness() *Harness { return sharedQuick() }

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"x", "1"}, {"yy", "2"}},
		Notes:   []string{"note text"},
	}
	s := tb.String()
	if !strings.Contains(s, "== demo ==") || !strings.Contains(s, "long-column") || !strings.Contains(s, "note: note text") {
		t.Fatalf("table rendering broken:\n%s", s)
	}
}

func TestPretrainedCachedAndCloned(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment (short mode)")
	}
	h := quickHarness()
	a := h.Pretrained(models.ResNet, h.ImageNetLike)
	b := h.Pretrained(models.ResNet, h.ImageNetLike)
	if a == b {
		t.Fatal("Pretrained must return fresh clones")
	}
	// Same weights.
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatal("clones disagree")
			}
		}
	}
	// Mutating one must not affect the cache.
	pa[0].W.Data[0] = 999
	c := h.Pretrained(models.ResNet, h.ImageNetLike)
	if c.Params()[0].W.Data[0] == 999 {
		t.Fatal("cache was mutated through a clone")
	}
}

func TestScenarioShapes(t *testing.T) {
	h := quickHarness()
	sc := h.Scenario(h.ImageNetLike, 4)
	if len(sc.Classes) != 4 {
		t.Fatalf("classes %v", sc.Classes)
	}
	if sc.Train.Len() != 4*16 || sc.Test.Len() != 4*8 {
		t.Fatalf("split sizes %d/%d", sc.Train.Len(), sc.Test.Len())
	}
}

func TestPretrainedModelBeatsChance(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment (short mode)")
	}
	h := quickHarness()
	sc := h.Scenario(h.ImageNetLike, 5)
	clf := h.Pretrained(models.ResNet, h.ImageNetLike)
	acc := clf.Accuracy(sc.Test.X, sc.Test.Labels)
	// 20-way classifier on 5-class test data; chance = 1/20.
	if acc < 0.3 {
		t.Fatalf("pretrained accuracy %v too weak to support pruning experiments", acc)
	}
}

func TestFigure4MetadataShape(t *testing.T) {
	h := quickHarness()
	rows, tb := h.Figure4()
	if len(rows) == 0 {
		t.Fatal("no Fig 4 rows")
	}
	for _, r := range rows {
		if r.CRISPBits <= 0 {
			t.Fatalf("%s/%s: non-positive CRISP bits", r.Model, r.Layer)
		}
		if r.CSRRatio < 2 || r.CSRRatio > 12 {
			t.Fatalf("%s/%s: CSR ratio %.2f outside plausible band", r.Model, r.Layer, r.CSRRatio)
		}
		if r.ELLPACKRatio < r.CSRRatio {
			t.Fatalf("%s/%s: ELLPACK ratio %.2f below CSR %.2f", r.Model, r.Layer, r.ELLPACKRatio, r.CSRRatio)
		}
	}
	if !strings.Contains(tb.String(), "ellpack/crisp") {
		t.Fatal("table missing columns")
	}
}

func TestFigure8Bands(t *testing.T) {
	h := quickHarness()
	rows, _ := h.Figure8()
	if len(rows) == 0 {
		t.Fatal("no Fig 8 rows")
	}
	// Collect per-pattern CRISP-STC b64 speedup ranges and verify the
	// paper's qualitative bands and orderings.
	type key struct{ n int }
	minS := map[int]float64{}
	maxS := map[int]float64{}
	maxEnergyGain := 0.0
	for _, r := range rows {
		if r.Arch == "nvidia-stc" && r.Speedup > 2.05 {
			t.Fatalf("NVIDIA-STC speedup %v exceeds 2x", r.Speedup)
		}
		if r.Arch != "crisp-stc-b64" {
			continue
		}
		n := r.NM.N
		if _, ok := minS[n]; !ok {
			minS[n], maxS[n] = r.Speedup, r.Speedup
		}
		if r.Speedup < minS[n] {
			minS[n] = r.Speedup
		}
		if r.Speedup > maxS[n] {
			maxS[n] = r.Speedup
		}
		if r.EnergyGain > maxEnergyGain {
			maxEnergyGain = r.EnergyGain
		}
	}
	// Paper bands: 7–14× (1:4), 5–12× (2:4), 2–8× (3:4). Allow slack.
	if maxS[1] < 7 || maxS[1] > 22 {
		t.Fatalf("1:4 peak speedup %v outside [7,22]", maxS[1])
	}
	if maxS[2] < 5 || maxS[2] > 18 {
		t.Fatalf("2:4 peak speedup %v outside [5,18]", maxS[2])
	}
	if maxS[3] < 2 || maxS[3] > 12 {
		t.Fatalf("3:4 peak speedup %v outside [2,12]", maxS[3])
	}
	// Ordering: sparser patterns are at least as fast at the peak.
	if !(maxS[1] >= maxS[2] && maxS[2] >= maxS[3]) {
		t.Fatalf("speedup ordering violated: %v", maxS)
	}
	// Energy: up to ≈30× (accept 10–60×).
	if maxEnergyGain < 10 || maxEnergyGain > 60 {
		t.Fatalf("peak energy gain %v outside [10,60]", maxEnergyGain)
	}
	_ = key{}
}

func TestFigure8Block64Best(t *testing.T) {
	h := quickHarness()
	rows, _ := h.Figure8()
	// Average speedup per block size for 2:4.
	sum := map[int]float64{}
	cnt := map[int]int{}
	for _, r := range rows {
		if r.NM.N != 2 || r.BlockSize == 0 {
			continue
		}
		sum[r.BlockSize] += r.Speedup
		cnt[r.BlockSize]++
	}
	avg := func(b int) float64 { return sum[b] / float64(cnt[b]) }
	if !(avg(64) >= avg(32) && avg(32) >= avg(16)) {
		t.Fatalf("block-size ordering violated: 16=%v 32=%v 64=%v", avg(16), avg(32), avg(64))
	}
}

func TestFigure8DSTCEarlyLateContrast(t *testing.T) {
	h := quickHarness()
	rows, _ := h.Figure8()
	var early, late float64
	for _, r := range rows {
		if r.Arch != "dstc" || r.NM.N != 2 {
			continue
		}
		switch r.Layer {
		case "conv2_1.b":
			early = r.Speedup
		case "conv5_3.c":
			late = r.Speedup
		}
	}
	if early == 0 || late == 0 {
		t.Fatal("missing DSTC rows")
	}
	if late >= early {
		t.Fatalf("DSTC late speedup %v should trail early %v", late, early)
	}
}

func TestKappaForClassesMonotone(t *testing.T) {
	prev := 1.0
	for _, k := range []int{1, 5, 20, 60, 100} {
		cur := kappaForClasses(k, 100)
		if cur > prev {
			t.Fatalf("kappa must not grow with class count: k=%d κ=%v prev=%v", k, cur, prev)
		}
		prev = cur
	}
}

func TestKeptFracForDepthMonotone(t *testing.T) {
	n := 9
	prev := 1.0
	for i := 0; i < n; i++ {
		cur := keptFracForDepth(i, n)
		if cur > prev {
			t.Fatal("kept fraction must decrease with depth")
		}
		if cur <= 0 || cur > 1 {
			t.Fatalf("kept fraction %v out of range", cur)
		}
		prev = cur
	}
}

func TestNetworkTableShape(t *testing.T) {
	h := quickHarness()
	rows, tb := h.NetworkTable()
	// 3 networks × 4 architectures.
	if len(rows) != 12 {
		t.Fatalf("rows %d, want 12", len(rows))
	}
	bySpeed := map[string]map[string]float64{}
	for _, r := range rows {
		if bySpeed[r.Network] == nil {
			bySpeed[r.Network] = map[string]float64{}
		}
		bySpeed[r.Network][r.Arch] = r.Speedup
	}
	for net, m := range bySpeed {
		if m["crisp-stc"] <= m["nvidia-stc"] {
			t.Fatalf("%s: CRISP-STC (%.2fx) must beat NVIDIA-STC (%.2fx) end to end", net, m["crisp-stc"], m["nvidia-stc"])
		}
		if m["crisp-stc"] <= 2 {
			t.Fatalf("%s: end-to-end CRISP speedup %.2fx too small", net, m["crisp-stc"])
		}
		if m["nvidia-stc"] > 2.05 {
			t.Fatalf("%s: NVIDIA-STC end-to-end speedup %.2fx exceeds 2x", net, m["nvidia-stc"])
		}
	}
	if tb.String() == "" {
		t.Fatal("empty table")
	}
}

func TestTableCSVAndMarkdown(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"x,y", `he said "hi"`}, {"plain", "2"}},
		Notes:   []string{"a note"},
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"he said ""hi"""`) {
		t.Fatalf("CSV quoting broken:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "# demo") {
		t.Fatalf("CSV missing title comment:\n%s", csv)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "|---|---|") {
		t.Fatalf("Markdown header broken:\n%s", md)
	}
	if !strings.Contains(md, "> a note") {
		t.Fatalf("Markdown note missing:\n%s", md)
	}
	if tb.Render("csv") != csv || tb.Render("md") != md || tb.Render("text") != tb.String() {
		t.Fatal("Render dispatch broken")
	}
}

func TestActivationDensitySupportsDSTCAssumption(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment (short mode)")
	}
	// The Fig 8 DSTC configuration assumes 40% activation sparsity
	// (density 0.6, the paper's setting). Cross-validate against the
	// post-ReLU densities our own trained models produce.
	h := quickHarness()
	clf := h.Pretrained(models.ResNet, h.ImageNetLike)
	stats := nn.CollectActivationStats(clf.Net)
	sc := h.Scenario(h.ImageNetLike, 5)
	clf.Logits(sc.Test.X, false)
	d := stats.Density()
	if d < 0.25 || d > 0.9 {
		t.Fatalf("trained-model activation density %.3f outside the plausible band around the paper's 0.6", d)
	}
	t.Logf("measured post-ReLU activation density: %.3f (DSTC simulation assumes 0.6)", d)
}

func TestValidateTileSimAgreement(t *testing.T) {
	h := quickHarness()
	rows, _ := h.ValidateTileSim()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Ratio < 0.5 || r.Ratio > 2.5 {
			t.Fatalf("%s/%s: tile-sim ratio %.2f outside [0.5, 2.5]", r.Arch, r.Layer, r.Ratio)
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Fatalf("%s/%s: utilization %v", r.Arch, r.Layer, r.Utilization)
		}
	}
}

func TestSweepSparsityCrossover(t *testing.T) {
	h := quickHarness()
	rows, _ := h.SweepSparsity()
	// Speedup is monotone in sparsity and the bound eventually flips to
	// memory.
	prev := 0.0
	sawMemory := false
	for _, r := range rows {
		if r.Speedup < prev-1e-9 {
			t.Fatalf("speedup decreased along the sweep: %+v", rows)
		}
		prev = r.Speedup
		if r.Bound == "memory" {
			sawMemory = true
		}
	}
	if !sawMemory {
		t.Fatal("sweep never became memory-bound — the crossover is missing")
	}
}
