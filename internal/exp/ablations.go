package exp

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/saliency"
	"repro/internal/sparsity"
)

// AblationRow is one (variant, metric) outcome.
type AblationRow struct {
	Variant  string
	Accuracy float64
	Sparsity float64
	Extra    string
}

// AblationIterative compares one-shot pruning (n=1) against the paper's
// iterative schedule at the same final target — the layer-collapse argument
// of Sec. III-C.
func (h *Harness) AblationIterative() ([]AblationRow, *Table) {
	ds := h.ImageNetLike
	sc := h.Scenario(ds, 5)
	target := 0.92
	var rows []AblationRow
	for _, iters := range []int{1, 4} {
		clf := h.Pretrained(models.ResNet, ds)
		o := h.pruneOpts(target)
		o.NM = sparsity.NM{N: 2, M: 4}
		o.Iterations = iters
		// Paper setup: δ fine-tuning epochs per iteration plus a final
		// recovery phase. One-shot inherently trains less — that is the
		// point of the comparison.
		o.FinetuneEpochs = 2
		o.FinalFinetuneEpochs = 2
		rep := pruner.NewCRISP(o).Prune(clf, sc.Train)
		rows = append(rows, AblationRow{
			Variant:  fmt.Sprintf("iterations=%d", iters),
			Accuracy: clf.Accuracy(sc.Test.X, sc.Test.Labels),
			Sparsity: rep.AchievedSparsity,
		})
	}
	t := ablationTable("Ablation A: one-shot vs iterative pruning (κ=0.92)", rows)
	return rows, t
}

// AblationSaliency compares the class-aware Taylor score (CASS) against
// class-agnostic magnitude pruning — the Sec. III-D criterion argument.
func (h *Harness) AblationSaliency() ([]AblationRow, *Table) {
	ds := h.ImageNetLike
	sc := h.Scenario(ds, 5)
	var rows []AblationRow
	for _, m := range []saliency.Method{saliency.Taylor, saliency.Magnitude} {
		clf := h.Pretrained(models.ResNet, ds)
		o := h.pruneOpts(0.88)
		o.NM = sparsity.NM{N: 2, M: 4}
		o.Saliency = m
		rep := pruner.NewCRISP(o).Prune(clf, sc.Train)
		rows = append(rows, AblationRow{
			Variant:  m.String(),
			Accuracy: clf.Accuracy(sc.Test.X, sc.Test.Labels),
			Sparsity: rep.AchievedSparsity,
		})
	}
	t := ablationTable("Ablation B: class-aware (CASS) vs magnitude saliency (κ=0.88)", rows)
	return rows, t
}

// AblationBalance compares balanced (rank-column) against classic
// unbalanced block pruning and reports the resulting load imbalance — the
// hardware argument of Sec. III-A. Imbalance is max/mean non-zero blocks
// per block row, averaged over layers; an imbalance of 1.0 wastes no lanes.
func (h *Harness) AblationBalance() ([]AblationRow, *Table) {
	ds := h.ImageNetLike
	sc := h.Scenario(ds, 5)
	var rows []AblationRow
	for _, balanced := range []bool{true, false} {
		clf := h.Pretrained(models.ResNet, ds)
		o := h.pruneOpts(0.8)
		rep := pruner.NewBlockOnly(o, balanced).Prune(clf, sc.Train)
		imb := meanImbalance(clf, o.BlockSize)
		name := "unbalanced"
		if balanced {
			name = "balanced"
		}
		rows = append(rows, AblationRow{
			Variant:  name,
			Accuracy: clf.Accuracy(sc.Test.X, sc.Test.Labels),
			Sparsity: rep.AchievedSparsity,
			Extra:    fmt.Sprintf("row imbalance %.2f", imb),
		})
	}
	t := ablationTable("Ablation C: uniform per-row balance vs unconstrained block pruning (κ=0.80)", rows)
	t.Notes = append(t.Notes, "imbalance = mean over layers of (max blocks/row ÷ mean blocks/row); 1.00 = perfect load balance")
	return rows, t
}

// AblationSchedule compares the linear κ_p ramp (the paper's constant-∆
// schedule) against the cubic Zhu–Gupta ramp at the same target.
func (h *Harness) AblationSchedule() ([]AblationRow, *Table) {
	ds := h.ImageNetLike
	sc := h.Scenario(ds, 5)
	var rows []AblationRow
	for _, s := range []pruner.Schedule{pruner.ScheduleLinear, pruner.ScheduleCubic} {
		clf := h.Pretrained(models.ResNet, ds)
		o := h.pruneOpts(0.9)
		o.NM = sparsity.NM{N: 2, M: 4}
		o.Schedule = s
		rep := pruner.NewCRISP(o).Prune(clf, sc.Train)
		name := "linear"
		if s == pruner.ScheduleCubic {
			name = "cubic"
		}
		rows = append(rows, AblationRow{
			Variant:  name,
			Accuracy: clf.Accuracy(sc.Test.X, sc.Test.Labels),
			Sparsity: rep.AchievedSparsity,
		})
	}
	t := ablationTable("Ablation D: linear vs cubic sparsity schedule (κ=0.90)", rows)
	return rows, t
}

// AblationMixedNM compares CRISP's single global ranking against a
// DominoSearch-style per-layer N:M search at a matched sparsity target —
// the "increased algorithmic complexity" alternative the paper's
// introduction argues against for edge deployment.
func (h *Harness) AblationMixedNM() ([]AblationRow, *Table) {
	ds := h.ImageNetLike
	sc := h.Scenario(ds, 5)
	target := 0.7 // between the 3:4 and 1:4 floors, where the search can act
	var rows []AblationRow
	{
		clf := h.Pretrained(models.ResNet, ds)
		o := h.pruneOpts(target)
		o.NM = sparsity.NM{N: 2, M: 4}
		rep := pruner.NewCRISP(o).Prune(clf, sc.Train)
		rows = append(rows, AblationRow{
			Variant:  "crisp (global ranking)",
			Accuracy: clf.Accuracy(sc.Test.X, sc.Test.Labels),
			Sparsity: rep.AchievedSparsity,
			Extra:    "1 pattern hyperparameter",
		})
	}
	{
		clf := h.Pretrained(models.ResNet, ds)
		o := h.pruneOpts(target)
		mixed := pruner.NewMixedNM(o)
		rep := mixed.Prune(clf, sc.Train)
		patterns := mixed.AssignedPatterns(clf)
		distinct := map[string]bool{}
		for _, nm := range patterns {
			distinct[nm.String()] = true
		}
		rows = append(rows, AblationRow{
			Variant:  "mixed per-layer N:M",
			Accuracy: clf.Accuracy(sc.Test.X, sc.Test.Labels),
			Sparsity: rep.AchievedSparsity,
			Extra:    fmt.Sprintf("%d per-layer assignments (%d distinct patterns)", len(patterns), len(distinct)),
		})
	}
	t := ablationTable("Ablation E: CRISP vs per-layer N:M search (κ=0.70)", rows)
	t.Notes = append(t.Notes, "the search needs per-layer bookkeeping the paper's global ranking avoids")
	return rows, t
}

// meanImbalance averages (max kept blocks per row ÷ mean kept blocks per
// row) over prunable, non-exempt layers.
func meanImbalance(clf *nn.Classifier, blockSize int) float64 {
	sum, layers := 0.0, 0
	for _, p := range clf.PrunableParams() {
		if p.BlockExempt || p.Mask == nil {
			continue
		}
		g := sparsity.NewBlockGrid(p.Rows, p.Cols, blockSize)
		counts := sparsity.KeptBlocksPerRow(p.MaskMatrixView(), g)
		maxC, total := 0, 0
		for _, c := range counts {
			total += c
			if c > maxC {
				maxC = c
			}
		}
		if total == 0 {
			continue
		}
		mean := float64(total) / float64(len(counts))
		sum += float64(maxC) / mean
		layers++
	}
	if layers == 0 {
		return 1
	}
	return sum / float64(layers)
}

// ablationTable renders rows uniformly.
func ablationTable(title string, rows []AblationRow) *Table {
	t := &Table{Title: title, Columns: []string{"variant", "accuracy", "sparsity", "extra"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Variant, f3(r.Accuracy), f3(r.Sparsity), r.Extra})
	}
	return t
}
