package exp

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/format"
	"repro/internal/models"
	"repro/internal/sparsity"
)

// Fig4Row is one layer's metadata accounting across formats.
type Fig4Row struct {
	Model, Layer string
	CRISPBits    int64
	CSRBits      int64
	ELLPACKBits  int64
	CSRRatio     float64
	ELLPACKRatio float64
	KeptColFrac  float64
	NM           sparsity.NM
	BlockSize    int
}

// Figure4 reproduces Fig. 4 (right): metadata storage of CSR and ELLPACK
// relative to the CRISP format, evaluated analytically on the exact
// full-size layer shapes of ResNet-50 and VGG-16 under 2:4 + block
// sparsity (B = 32, half the block columns kept).
func (h *Harness) Figure4() ([]Fig4Row, *Table) {
	nm := sparsity.NM{N: 2, M: 4}
	const b = 32
	const kept = 0.5
	var rows []Fig4Row
	add := func(model string, shapes []models.LayerShape) {
		for _, l := range shapes {
			if l.Kind == models.KindDepthwise {
				continue // block-exempt in CRISP
			}
			m, k, _ := l.GEMMDims()
			if k < b || m < b {
				continue // too small for the coarse grid at full scale
			}
			g := sparsity.NewBlockGrid(m, k, b)
			keptPerRow := int(kept * float64(g.GridCols()))
			if keptPerRow < 1 {
				keptPerRow = 1
			}
			// Non-zeros per matrix row under the hybrid pattern.
			nnzPerRow := keptPerRow * b * nm.N / nm.M
			nnz := m * nnzPerRow
			crispBits := format.CRISPMetadataBits(m, k, b, keptPerRow, nm)
			csrBits := format.CSRMetadataBits(m, k, nnz)
			ellBits := format.ELLPACKMetadataBits(m, nnzPerRow)
			rows = append(rows, Fig4Row{
				Model: model, Layer: l.Name,
				CRISPBits: crispBits, CSRBits: csrBits, ELLPACKBits: ellBits,
				CSRRatio:     float64(csrBits) / float64(crispBits),
				ELLPACKRatio: float64(ellBits) / float64(crispBits),
				KeptColFrac:  kept, NM: nm, BlockSize: b,
			})
		}
	}
	add("resnet50", models.RepresentativeResNet50Layers())
	add("vgg16", models.VGG16Shapes()[8:13]) // late conv layers + fc entries filtered above
	t := &Table{
		Title:   "Fig 4: metadata overhead vs CRISP format (analytical, full-size layers)",
		Columns: []string{"model", "layer", "crisp-bits", "csr-bits", "ellpack-bits", "csr/crisp", "ellpack/crisp"},
	}
	var csrSum, ellSum float64
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Model, r.Layer,
			fmt.Sprintf("%d", r.CRISPBits), fmt.Sprintf("%d", r.CSRBits), fmt.Sprintf("%d", r.ELLPACKBits),
			f1(r.CSRRatio), f1(r.ELLPACKRatio),
		})
		csrSum += r.CSRRatio
		ellSum += r.ELLPACKRatio
	}
	if len(rows) > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("mean overhead: CSR %.1fx, ELLPACK %.1fx (paper: ≈5x and ≈7x)",
			csrSum/float64(len(rows)), ellSum/float64(len(rows))))
	}
	return rows, t
}

// Fig8Row is one (layer, arch, pattern, block size) hardware point.
type Fig8Row struct {
	Layer     string
	Arch      string
	NM        sparsity.NM
	BlockSize int
	// LayerSparsity is the per-layer weight sparsity simulated.
	LayerSparsity float64
	Cycles        float64
	Speedup       float64 // vs dense
	EnergyUJ      float64
	EnergyGain    float64 // dense energy / this energy
}

// Figure8 reproduces Fig. 8: layer-wise speedup and energy of CRISP-STC
// (B ∈ {16,32,64}) against NVIDIA-STC, DSTC and dense on representative
// full-size ResNet-50 layers, for N:M ∈ {1:4, 2:4, 3:4}.
//
// Per-layer sparsity follows the paper's setting of 80–90% global sparsity
// with depth-dependent variation: later layers are more over-parameterized
// and prune harder (kept block-column fraction interpolates 0.55 → 0.12
// with depth).
func (h *Harness) Figure8() ([]Fig8Row, *Table) {
	hw := accel.EdgeHW()
	e := energy.Default()
	dense := accel.NewDense(hw, e)
	stc := accel.NewNvidiaSTC(hw, e)
	dstc := accel.NewDSTC(hw, e)
	crisp := accel.NewCRISPSTC(hw, e)

	layers := models.RepresentativeResNet50Layers()
	patterns := []sparsity.NM{{N: 1, M: 4}, {N: 2, M: 4}, {N: 3, M: 4}}
	blockSizes := []int{16, 32, 64}

	var rows []Fig8Row
	for _, nm := range patterns {
		for li, l := range layers {
			kept := keptFracForDepth(li, len(layers))
			d := dense.Simulate(l, accel.Dense())
			emit := func(arch string, p accel.Perf, b int) {
				rows = append(rows, Fig8Row{
					Layer: l.Name, Arch: arch, NM: nm, BlockSize: b,
					LayerSparsity: 1 - kept*nm.Density(),
					Cycles:        p.Cycles,
					Speedup:       d.Cycles / p.Cycles,
					EnergyUJ:      p.EnergyUJ(),
					EnergyGain:    d.EnergyUJ() / p.EnergyUJ(),
				})
			}
			emit("dense", d, 0)
			sp := accel.Sparsity{NM: nm, KeptColFrac: kept, BlockSize: 64, ActDensity: 1}
			emit("nvidia-stc", stc.Simulate(l, sp), 0)
			spD := sp
			spD.ActDensity = 0.6 // the paper reserves 40% activation sparsity for DSTC
			emit("dstc", dstc.Simulate(l, spD), 0)
			for _, b := range blockSizes {
				spB := sp
				spB.BlockSize = b
				emit(fmt.Sprintf("crisp-stc-b%d", b), crisp.Simulate(l, spB), b)
			}
		}
	}
	t := &Table{
		Title:   "Fig 8: ResNet-50 layer-wise speedup and energy vs dense",
		Columns: []string{"N:M", "layer", "arch", "sparsity", "cycles", "speedup", "energy-uJ", "energy-gain"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.NM.String(), r.Layer, r.Arch, f3(r.LayerSparsity),
			fmt.Sprintf("%.0f", r.Cycles), f1(r.Speedup) + "x",
			f1(r.EnergyUJ), f1(r.EnergyGain) + "x",
		})
	}
	t.Notes = append(t.Notes,
		"kept block-column fraction interpolates 0.55 (early) to 0.20 (late) — 80–90% global sparsity",
		"DSTC additionally exploits 40% activation sparsity, as in the paper")
	return rows, t
}

// keptFracForDepth interpolates the per-layer kept block-column fraction by
// relative depth (later layers prune harder, per the paper's Fig. 2). The
// range 0.55 → 0.20 corresponds to the 80–90% global sparsity of the
// paper's Fig. 8 setting.
func keptFracForDepth(i, n int) float64 {
	if n <= 1 {
		return 0.3
	}
	t := float64(i) / float64(n-1)
	return 0.55 - 0.35*t
}
