package exp

import (
	"fmt"
	"strings"

	"repro/internal/serve"
)

// Figure is one runnable experiment artifact: a paper figure, table or
// ablation, keyed by the name crisp-bench exposes.
type Figure struct {
	// Name is the CLI name ("fig1", "ablation-A", ...).
	Name string
	// Group is the coarse selector crisp-bench's -fig flag matches
	// ("1", "ablations", "ext", ...).
	Group string
	// Run regenerates the artifact on a harness.
	Run func(h *Harness) *Table
}

// Figures returns the full ordered experiment suite. Every entry is
// independent of the others — shared state (the pretrained-model cache)
// lives in the Harness, which is concurrency-safe — so the suite can run
// sequentially or fan out over a worker pool.
func Figures() []Figure {
	return []Figure{
		{"fig1", "1", func(h *Harness) *Table { _, t := h.Figure1(); return t }},
		{"fig2", "2", func(h *Harness) *Table { _, t := h.Figure2(); return t }},
		{"fig3", "3", func(h *Harness) *Table { _, t := h.Figure3(); return t }},
		{"fig4", "4", func(h *Harness) *Table { _, t := h.Figure4(); return t }},
		{"fig7", "7", func(h *Harness) *Table { _, t := h.Figure7(); return t }},
		{"fig8", "8", func(h *Harness) *Table { _, t := h.Figure8(); return t }},
		{"ablation-A", "ablations", func(h *Harness) *Table { _, t := h.AblationIterative(); return t }},
		{"ablation-B", "ablations", func(h *Harness) *Table { _, t := h.AblationSaliency(); return t }},
		{"ablation-C", "ablations", func(h *Harness) *Table { _, t := h.AblationBalance(); return t }},
		{"ablation-D", "ablations", func(h *Harness) *Table { _, t := h.AblationSchedule(); return t }},
		{"ablation-E", "ablations", func(h *Harness) *Table { _, t := h.AblationMixedNM(); return t }},
		{"ext-transformer", "ext", func(h *Harness) *Table { _, t := h.ExtTransformer(); return t }},
		{"ext-network", "ext", func(h *Harness) *Table { _, t := h.NetworkTable(); return t }},
		{"memory", "mem", func(h *Harness) *Table { _, t := h.MemoryTable(); return t }},
		{"tile-sim", "validate", func(h *Harness) *Table { _, t := h.ValidateTileSim(); return t }},
		{"sweep", "validate", func(h *Harness) *Table { _, t := h.SweepSparsity(); return t }},
		{"quant", "validate", func(h *Harness) *Table { _, t := h.AblationQuant(); return t }},
	}
}

// Select filters the suite by a -fig value: "all", a group ("1",
// "ablations", ...) or an exact figure name ("ablation-C").
func Select(figs []Figure, sel string) ([]Figure, error) {
	if sel == "all" || sel == "" {
		return figs, nil
	}
	var out []Figure
	for _, f := range figs {
		if f.Group == sel || f.Name == sel {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		// Derive the valid selectors from the registry so the message can
		// never drift from what is actually runnable.
		var groups, names []string
		seen := map[string]bool{}
		for _, f := range figs {
			if !seen[f.Group] {
				seen[f.Group] = true
				groups = append(groups, f.Group)
			}
			names = append(names, f.Name)
		}
		return nil, fmt.Errorf("exp: unknown figure selector %q (want all, a group [%s] or a name [%s])",
			sel, strings.Join(groups, ","), strings.Join(names, ","))
	}
	return out, nil
}

// RunParallel fans figs out across the worker pool — the same bounded
// scheduler the serving layer uses — and returns their tables in input
// order. onDone, if non-nil, fires as each figure completes (from the
// worker goroutine that ran it), so callers can stream results instead of
// waiting for the slowest figure. With pool=nil it degrades to a
// sequential run.
func RunParallel(pool *serve.Pool, h *Harness, figs []Figure, onDone func(i int, t *Table)) []*Table {
	out := make([]*Table, len(figs))
	run := func(i int) {
		out[i] = figs[i].Run(h)
		if onDone != nil {
			onDone(i, out[i])
		}
	}
	if pool == nil {
		for i := range figs {
			run(i)
		}
		return out
	}
	pool.Map(len(figs), run)
	return out
}
