// Package saliency computes the class-aware saliency score (CASS) of the
// CRISP paper: the first-order Taylor importance T_w = |∇L(W) ⊙ W| with the
// gradient averaged over samples drawn from the user-preferred classes
// (paper Eq. 1). Class-agnostic alternatives are provided for the ablation
// experiments.
package saliency

import (
	"math"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Method selects the importance criterion.
type Method int

const (
	// Taylor is the paper's CASS: |mean gradient ⊙ weight|.
	Taylor Method = iota
	// Magnitude is the class-agnostic |weight| baseline.
	Magnitude
	// GradOnly is |mean gradient| alone (diagnostic).
	GradOnly
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Taylor:
		return "taylor-cass"
	case Magnitude:
		return "magnitude"
	case GradOnly:
		return "grad-only"
	default:
		return "unknown"
	}
}

// Scores maps each prunable parameter to its per-element importance tensor
// (same shape as the weights, all entries ≥ 0).
type Scores map[*nn.Param]*tensor.Tensor

// Compute returns importance scores for every prunable parameter of clf.
// For gradient-based methods it accumulates gradients over the entire split
// (in batches of batchSize) without stepping the optimizer; the parameters'
// gradient buffers are left cleared. The forward passes run in training mode
// — consistent with the paper, where CASS estimation happens amid
// class-aware fine-tuning.
func Compute(clf *nn.Classifier, split data.Split, batchSize int, method Method) Scores {
	params := clf.PrunableParams()
	out := make(Scores, len(params))

	if method == Magnitude {
		for _, p := range params {
			s := tensor.New(p.W.Shape...)
			for i, v := range p.W.Data {
				s.Data[i] = math.Abs(v)
			}
			out[p] = s
		}
		return out
	}

	nn.ZeroGrad(clf.Params())
	n := split.Len()
	vol := split.X.Shape[1] * split.X.Shape[2] * split.X.Shape[3]
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		bs := end - start
		x := tensor.New(bs, split.X.Shape[1], split.X.Shape[2], split.X.Shape[3])
		copy(x.Data, split.X.Data[start*vol:end*vol])
		clf.TrainBatch(x, split.Labels[start:end])
	}
	// TrainBatch averages the loss within a batch; average across batches so
	// the scale matches Eq. 1's 1/H_uc normalization (up to ragged batches).
	batches := float64((n + batchSize - 1) / batchSize)
	if batches == 0 {
		batches = 1
	}
	for _, p := range params {
		s := tensor.New(p.W.Shape...)
		for i := range p.W.Data {
			g := p.Grad.Data[i] / batches
			switch method {
			case GradOnly:
				s.Data[i] = math.Abs(g)
			default: // Taylor
				s.Data[i] = math.Abs(g * p.W.Data[i])
			}
		}
		out[p] = s
	}
	nn.ZeroGrad(clf.Params())
	return out
}

// MatrixView returns the score tensor of p reshaped to its pruning view.
func (s Scores) MatrixView(p *nn.Param) *tensor.Tensor {
	return s[p].Reshape(p.Rows, p.Cols)
}
