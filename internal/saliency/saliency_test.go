package saliency

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func fixture(t *testing.T) (*nn.Classifier, data.Split) {
	t.Helper()
	cfg := data.Config{Name: "sal", NumClasses: 6, Channels: 3, H: 8, W: 8, Noise: 0.25, Jitter: 1, Seed: 5}
	ds := data.New(cfg)
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(1)), cfg.NumClasses, 1)
	split := ds.MakeSplit("train", []int{1, 3}, 8)
	return clf, split
}

func TestMethodStrings(t *testing.T) {
	if Taylor.String() != "taylor-cass" || Magnitude.String() != "magnitude" || GradOnly.String() != "grad-only" {
		t.Fatal("method names changed")
	}
}

func TestTaylorMatchesManualComputation(t *testing.T) {
	// For a single batch, Taylor scores must equal |grad ⊙ W| computed by
	// hand from one TrainBatch call.
	clf, split := fixture(t)
	scores := Compute(clf, split, split.Len(), Taylor) // one batch

	clf2, _ := fixture(t)
	nn.ZeroGrad(clf2.Params())
	x := tensor.New(split.Len(), split.X.Shape[1], split.X.Shape[2], split.X.Shape[3])
	copy(x.Data, split.X.Data)
	clf2.TrainBatch(x, split.Labels)

	p1 := clf.PrunableParams()
	p2 := clf2.PrunableParams()
	for i := range p1 {
		s := scores[p1[i]]
		for j := range s.Data {
			want := math.Abs(p2[i].Grad.Data[j] * p2[i].W.Data[j])
			if math.Abs(s.Data[j]-want) > 1e-9*(1+want) {
				t.Fatalf("param %s[%d]: score %v, want %v", p1[i].Name, j, s.Data[j], want)
			}
		}
	}
}

func TestMagnitudeIsAbsWeights(t *testing.T) {
	clf, split := fixture(t)
	scores := Compute(clf, split, 8, Magnitude)
	for _, p := range clf.PrunableParams() {
		s := scores[p]
		for i := range s.Data {
			if s.Data[i] != math.Abs(p.W.Data[i]) {
				t.Fatalf("%s[%d]: %v != |%v|", p.Name, i, s.Data[i], p.W.Data[i])
			}
		}
	}
}

func TestScoresCoverAllPrunableParams(t *testing.T) {
	clf, split := fixture(t)
	for _, m := range []Method{Taylor, Magnitude, GradOnly} {
		scores := Compute(clf, split, 8, m)
		if len(scores) != len(clf.PrunableParams()) {
			t.Fatalf("%s: %d scores for %d params", m, len(scores), len(clf.PrunableParams()))
		}
		for p, s := range scores {
			if s.Len() != p.W.Len() {
				t.Fatalf("%s: score volume mismatch for %s", m, p.Name)
			}
		}
	}
}

func TestClassAwareScoresDependOnClasses(t *testing.T) {
	// Gradients from different user classes must rank weights differently —
	// the premise of class-aware pruning.
	cfg := data.Config{Name: "sal2", NumClasses: 6, Channels: 3, H: 8, W: 8, Noise: 0.2, Jitter: 1, Seed: 6}
	ds := data.New(cfg)
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(2)), cfg.NumClasses, 1)
	a := Compute(clf, ds.MakeSplit("train", []int{0, 1}, 8), 8, Taylor)
	b := Compute(clf, ds.MakeSplit("train", []int{4, 5}, 8), 8, Taylor)
	p := clf.PrunableParams()[0]
	maxRel := 0.0
	for i := range a[p].Data {
		d := math.Abs(a[p].Data[i] - b[p].Data[i])
		if d > maxRel {
			maxRel = d
		}
	}
	if maxRel == 0 {
		t.Fatal("saliency identical across disjoint class sets")
	}
}

func TestMatrixViewShape(t *testing.T) {
	clf, split := fixture(t)
	scores := Compute(clf, split, 8, Magnitude)
	p := clf.PrunableParams()[0]
	mv := scores.MatrixView(p)
	if mv.Shape[0] != p.Rows || mv.Shape[1] != p.Cols {
		t.Fatalf("matrix view %v, want %dx%d", mv.Shape, p.Rows, p.Cols)
	}
}

func TestComputeRaggedBatches(t *testing.T) {
	// Split of 16 with batch 5 → batches 5,5,5,1; must not panic and must
	// leave gradients clean.
	clf, split := fixture(t)
	scores := Compute(clf, split, 5, Taylor)
	if len(scores) == 0 {
		t.Fatal("no scores")
	}
	for _, p := range clf.Params() {
		if p.Grad.AbsSum() != 0 {
			t.Fatalf("dirty grad on %s", p.Name)
		}
	}
}
