package format

import (
	"fmt"

	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// BlockedELL is the Blocked-ELLPACK layout: the matrix is tiled into B×B
// blocks with a *uniform* number of kept blocks per block row; kept blocks
// are stored densely with one block-column index each.
type BlockedELL struct {
	Rows, Cols, B int
	// KeptPerRow is the uniform kept-block count per block row.
	KeptPerRow int
	// BlockCols lists, for each block row, the kept block columns ascending
	// (gridRows × KeptPerRow).
	BlockCols []int32
	// Val stores each kept block densely in listing order (B×B each; edge
	// blocks are zero-padded to full size).
	Val []float64
}

// EncodeBlockedELL encodes m, requiring the uniform row-balance invariant.
func EncodeBlockedELL(m *tensor.Tensor, b int) (*BlockedELL, error) {
	rows, cols := checkMatrix(m)
	g := sparsity.NewBlockGrid(rows, cols, b)
	counts := sparsity.KeptBlocksPerRow(m, g)
	kept := 0
	if len(counts) > 0 {
		kept = counts[0]
	}
	for i, c := range counts {
		if c != kept {
			return nil, fmt.Errorf("format: blocked-ell requires row balance; block row %d keeps %d, row 0 keeps %d", i, c, kept)
		}
	}
	e := &BlockedELL{Rows: rows, Cols: cols, B: b, KeptPerRow: kept}
	for br := 0; br < g.GridRows(); br++ {
		for bc := 0; bc < g.GridCols(); bc++ {
			if !sparsity.BlockKept(m, g, br, bc) {
				continue
			}
			e.BlockCols = append(e.BlockCols, int32(bc))
			r0, r1, c0, c1 := g.Bounds(br, bc)
			for r := r0; r < r0+b; r++ {
				for cc := c0; cc < c0+b; cc++ {
					if r < r1 && cc < c1 {
						e.Val = append(e.Val, m.Data[r*cols+cc])
					} else {
						e.Val = append(e.Val, 0) // edge padding
					}
				}
			}
		}
	}
	return e, nil
}

// Name implements Encoded.
func (e *BlockedELL) Name() string { return "blocked-ell" }

// grid reconstructs the block grid.
func (e *BlockedELL) grid() sparsity.BlockGrid {
	return sparsity.NewBlockGrid(e.Rows, e.Cols, e.B)
}

// MetadataBits implements Encoded.
func (e *BlockedELL) MetadataBits() int64 {
	return BlockedELLMetadataBits(e.grid().GridRows(), e.grid().GridCols(), e.KeptPerRow)
}

// DataBits implements Encoded: kept blocks are stored densely.
func (e *BlockedELL) DataBits(valueBits int) int64 {
	return int64(len(e.Val)) * int64(valueBits)
}

// Decode implements Encoded.
func (e *BlockedELL) Decode() *tensor.Tensor {
	out := tensor.New(e.Rows, e.Cols)
	g := e.grid()
	bi := 0
	for br := 0; br < g.GridRows(); br++ {
		for k := 0; k < e.KeptPerRow; k++ {
			bc := int(e.BlockCols[br*e.KeptPerRow+k])
			r0, r1, c0, c1 := g.Bounds(br, bc)
			blk := e.Val[bi*e.B*e.B : (bi+1)*e.B*e.B]
			for r := r0; r < r1; r++ {
				for cc := c0; cc < c1; cc++ {
					out.Data[r*e.Cols+cc] = blk[(r-r0)*e.B+(cc-c0)]
				}
			}
			bi++
		}
	}
	return out
}

// MatMul implements Encoded.
func (e *BlockedELL) MatMul(b *tensor.Tensor) *tensor.Tensor {
	_, n := checkSpMM(b, e.Cols)
	out := tensor.New(e.Rows, n)
	g := e.grid()
	bi := 0
	for br := 0; br < g.GridRows(); br++ {
		for k := 0; k < e.KeptPerRow; k++ {
			bc := int(e.BlockCols[br*e.KeptPerRow+k])
			r0, r1, c0, c1 := g.Bounds(br, bc)
			blk := e.Val[bi*e.B*e.B : (bi+1)*e.B*e.B]
			for r := r0; r < r1; r++ {
				dst := out.Data[r*n : (r+1)*n]
				for cc := c0; cc < c1; cc++ {
					v := blk[(r-r0)*e.B+(cc-c0)]
					if v == 0 {
						continue
					}
					src := b.Data[cc*n : (cc+1)*n]
					for j, bv := range src {
						dst[j] += v * bv
					}
				}
			}
			bi++
		}
	}
	return out
}

// BlockedELLMetadataBits is the analytical model: one ⌈log2 gridCols⌉-bit
// index per kept block.
func BlockedELLMetadataBits(gridRows, gridCols, keptPerRow int) int64 {
	return int64(gridRows) * int64(keptPerRow) * int64(bitsFor(gridCols))
}
