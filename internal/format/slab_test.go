package format

import (
	"math/rand"
	"testing"

	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// slabPlan compiles a hybrid-sparse matrix to a plan plus the dense slab
// that backs it (the "universal weights" the kept values came from).
func slabPlan(t *testing.T, rng *rand.Rand, rows, cols, b int, nm sparsity.NM, pruned int) (*Plan, *ValueSlab, *tensor.Tensor) {
	t.Helper()
	w := hybridMatrix(rng, rows, cols, b, nm, pruned)
	e, err := EncodeCRISP(w, b, nm)
	if err != nil {
		t.Fatal(err)
	}
	return e.Compile(), NewValueSlab(w), w
}

// TestBindSlabBitIdentical: a slab-bound plan must multiply bit-identically
// to its owned twin, across serial and row-parallel batch widths.
func TestBindSlabBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, s := range planShapes {
		bound, slab, _ := slabPlan(t, rng, s.rows, s.cols, s.b, s.nm, s.pruned)
		owned := &Plan{Rows: bound.Rows, Cols: bound.Cols, RowPtr: bound.RowPtr, Col: bound.Col, Val: append([]float64(nil), bound.Val...)}
		if !bound.BindSlab(slab) {
			t.Fatalf("%dx%d: BindSlab refused matching universal values", s.rows, s.cols)
		}
		if !bound.Shared() || bound.Val != nil {
			t.Fatalf("%dx%d: bound plan still owns values", s.rows, s.cols)
		}
		if bound.NNZ() != owned.NNZ() {
			t.Fatalf("%dx%d: NNZ %d after binding, want %d", s.rows, s.cols, bound.NNZ(), owned.NNZ())
		}
		for _, n := range planBatches {
			x := tensor.Randn(rng, 1, s.cols, n)
			if !tensor.Equal(bound.MatMul(x), owned.MatMul(x), 0) {
				t.Fatalf("%dx%d batch %d: slab-bound result differs from owned", s.rows, s.cols, n)
			}
		}
	}
}

// TestBindSlabRejectsDivergedValues: any kept value differing from the slab
// must refuse the bind and leave the plan untouched.
func TestBindSlabRejectsDivergedValues(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	p, slab, _ := slabPlan(t, rng, 16, 32, 8, sparsity.NM{N: 2, M: 4}, 1)
	if p.NNZ() == 0 {
		t.Fatal("empty plan")
	}
	p.Val[p.NNZ()/2] += 1e-9 // a fine-tuned weight
	if p.BindSlab(slab) {
		t.Fatal("BindSlab accepted a diverged value")
	}
	if p.Shared() || p.Val == nil {
		t.Fatal("failed bind mutated the plan")
	}
	// Dimension mismatches refuse too.
	if p.BindSlab(&ValueSlab{Rows: 1, Cols: 1, Data: []float64{0}}) {
		t.Fatal("BindSlab accepted mismatched dimensions")
	}
}

// TestQuantizeSlabIdentical: quantizing a slab-bound plan must yield the
// exact codes, scales, layout and correction terms of the owned plan —
// the int8 identity the warm tier's deterministic re-quantization rests on.
func TestQuantizeSlabIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	bound, slab, _ := slabPlan(t, rng, 32, 64, 8, sparsity.NM{N: 2, M: 4}, 2)
	owned := &Plan{Rows: bound.Rows, Cols: bound.Cols, RowPtr: bound.RowPtr, Col: bound.Col, Val: append([]float64(nil), bound.Val...)}
	if !bound.BindSlab(slab) {
		t.Fatal("BindSlab refused")
	}
	qb, err := bound.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	qo, err := owned.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	if len(qb.Code) != len(qo.Code) {
		t.Fatalf("code count %d vs %d", len(qb.Code), len(qo.Code))
	}
	for i := range qb.Code {
		if qb.Code[i] != qo.Code[i] || qb.Col[i] != qo.Col[i] {
			t.Fatalf("entry %d: code/col diverged", i)
		}
	}
	for r := 0; r < qb.Rows; r++ {
		if qb.RowScale[r] != qo.RowScale[r] || qb.rowSum[r] != qo.rowSum[r] ||
			qb.RowPtr[r+1] != qo.RowPtr[r+1] || qb.NegPtr[r] != qo.NegPtr[r] {
			t.Fatalf("row %d: quant metadata diverged", r)
		}
	}
}

// TestSizeBytesManualSums checks the accounting helpers against by-hand
// element sums, owned and slab-bound.
func TestSizeBytesManualSums(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	p, slab, _ := slabPlan(t, rng, 16, 32, 8, sparsity.NM{N: 2, M: 4}, 1)
	want := int64(len(p.RowPtr))*4 + int64(len(p.Col))*4 + int64(len(p.Val))*8
	if got := p.SizeBytes(); got != want {
		t.Fatalf("owned Plan.SizeBytes %d, want %d", got, want)
	}
	q, err := p.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	wantQ := int64(len(q.RowPtr))*4 + int64(len(q.NegPtr))*4 + int64(len(q.Col))*4 +
		int64(len(q.Code)) + int64(len(q.RowScale))*8 + int64(len(q.rowSum))*4
	if got := q.SizeBytes(); got != wantQ {
		t.Fatalf("QuantPlan.SizeBytes %d, want %d", got, wantQ)
	}
	owned := p.SizeBytes()
	if !p.BindSlab(slab) {
		t.Fatal("BindSlab refused")
	}
	wantBound := int64(len(p.RowPtr))*4 + int64(len(p.Col))*4
	if got := p.SizeBytes(); got != wantBound {
		t.Fatalf("slab-bound Plan.SizeBytes %d, want %d", got, wantBound)
	}
	if p.SizeBytes() >= owned {
		t.Fatalf("binding did not shrink owned bytes: %d vs %d", p.SizeBytes(), owned)
	}
}

// TestFingerprint: equal content hashes equal (including across slab
// binding); any structural or value change hashes differently.
func TestFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	p, slab, _ := slabPlan(t, rng, 16, 32, 8, sparsity.NM{N: 2, M: 4}, 1)
	twin := &Plan{Rows: p.Rows, Cols: p.Cols, RowPtr: p.RowPtr, Col: p.Col, Val: append([]float64(nil), p.Val...)}
	fp := p.Fingerprint()
	if twin.Fingerprint() != fp {
		t.Fatal("equal plans fingerprint differently")
	}
	if !p.BindSlab(slab) {
		t.Fatal("BindSlab refused")
	}
	if p.Fingerprint() != fp {
		t.Fatal("fingerprint changed across BindSlab")
	}
	mutated := &Plan{Rows: twin.Rows, Cols: twin.Cols, RowPtr: twin.RowPtr, Col: twin.Col, Val: append([]float64(nil), twin.Val...)}
	mutated.Val[0] += 1e-12
	if mutated.Fingerprint() == fp {
		t.Fatal("value change kept the fingerprint")
	}
	if !plansEqual(p, twin) {
		t.Fatal("plansEqual rejects slab-bound twin")
	}
	if plansEqual(p, mutated) {
		t.Fatal("plansEqual accepts mutated values")
	}
}

// TestRegistry: interning deduplicates equal plans onto one canonical
// instance with a shared cached int8 image; releasing the last reference
// drops the entry.
func TestRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	reg := NewRegistry()
	p1, _, _ := slabPlan(t, rng, 16, 32, 8, sparsity.NM{N: 2, M: 4}, 1)
	p2 := &Plan{Rows: p1.Rows, Cols: p1.Cols, RowPtr: p1.RowPtr, Col: p1.Col, Val: append([]float64(nil), p1.Val...)}

	if got := reg.Intern(p1); got != p1 {
		t.Fatal("first intern did not canonicalize the new plan")
	}
	if got := reg.Intern(p2); got != p1 {
		t.Fatal("equal plan did not dedup onto the canonical instance")
	}
	if plans, refs, bytes := reg.Stats(); plans != 1 || refs != 2 || bytes < p1.SizeBytes() {
		t.Fatalf("Stats = (%d, %d, %d), want (1, 2, >=%d)", plans, refs, bytes, p1.SizeBytes())
	}

	q1, err := reg.QuantFor(p1)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := reg.QuantFor(p1)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("QuantFor did not cache the int8 image")
	}

	// A plan that was never interned quantizes privately and releases as a
	// no-op.
	other, _, _ := slabPlan(t, rng, 8, 16, 4, sparsity.NM{N: 2, M: 4}, 1)
	if q, err := reg.QuantFor(other); err != nil || q == nil {
		t.Fatalf("QuantFor(untracked) = (%v, %v)", q, err)
	}
	reg.Release(other)

	reg.Release(p1)
	if reg.Len() != 1 {
		t.Fatal("entry dropped while references remain")
	}
	reg.Release(p1)
	if reg.Len() != 0 {
		t.Fatal("last release did not drop the entry")
	}
	reg.Release(p1) // over-release: safe no-op
	if reg.Len() != 0 {
		t.Fatal("over-release resurrected state")
	}
}
