package format

import "repro/internal/tensor"

// spmmParallelThreshold is the number of multiply-accumulate operations
// below which SpMM runs single-threaded, mirroring the dense GEMM's
// threshold: handing work to the pool costs more than it saves on small
// problems. Single-sample inference on the scaled models stays under it;
// batched inference (serve.Predict, Engine.LogitsBatch) crosses it and
// fans out. Plan.matmul tests this bound before building the fan-out
// closure, so sub-threshold SpMMs are allocation-free.
const spmmParallelThreshold = 1 << 16

// parallelRows fans an SpMM's row range out over the persistent kernel
// worker pool shared with the dense GEMM (tensor.ParallelRows): no
// goroutines are spawned per call, and each output row keeps a single
// writer, so results stay bit-identical to the sequential loop.
func parallelRows(rows, work int, fn func(r0, r1 int)) {
	tensor.ParallelRows(rows, work, fn)
}

// parallelTiles fans a blocked SpMM's tile grid out over the same pool,
// tile-index range by tile-index range. Tiles partition the output
// (disjoint row×column rectangles), so each output element keeps a single
// writer and results stay bit-identical to the sequential tile loop.
func parallelTiles(tiles, work int, fn func(t0, t1 int)) {
	tensor.ParallelRows(tiles, work, fn)
}
