package format

import (
	"runtime"
	"sync"
)

// spmmParallelThreshold is the number of multiply-accumulate operations
// below which SpMM runs single-threaded, mirroring the dense GEMM's
// threshold: goroutine fan-out costs more than it saves on small problems.
// Single-sample inference on the scaled models stays under it; batched
// inference (serve.Predict, Engine.LogitsBatch) crosses it and fans out.
const spmmParallelThreshold = 1 << 16

// parallelRows splits [0, rows) into contiguous chunks across GOMAXPROCS
// workers when the total work is large enough to amortize goroutine
// startup. Each output row is written by exactly one worker and accumulated
// in the same order as the sequential loop, so results are bit-identical.
func parallelRows(rows, work int, fn func(r0, r1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if work < spmmParallelThreshold || workers == 1 || rows < 2 {
		fn(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for r0 := 0; r0 < rows; r0 += chunk {
		r1 := r0 + chunk
		if r1 > rows {
			r1 = rows
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			fn(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}
