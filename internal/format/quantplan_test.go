package format

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// quantTol bounds the int8 SpMM's per-element error against the float plan
// for one output element: each operand carries at most half a quantization
// step (rowScale/2 and colScale/2), so a row of k stored entries accrues at
// most k·(|w|·colScale/2 + |b|·rowScale/2 + rowScale·colScale/4). The
// helper evaluates that bound for a concrete plan/activation pair.
func quantTol(p *Plan, q *QuantPlan, b *tensor.Tensor, n int) []float64 {
	colMax := make([]float64, n)
	for r := 0; r < p.Cols; r++ {
		for j := 0; j < n; j++ {
			if a := math.Abs(b.Data[r*n+j]); a > colMax[j] {
				colMax[j] = a
			}
		}
	}
	tol := make([]float64, p.Rows*n)
	for r := 0; r < p.Rows; r++ {
		rs := q.RowScale[r]
		for i := p.RowPtr[r]; i < p.RowPtr[r+1]; i++ {
			w := math.Abs(p.Val[i])
			for j := 0; j < n; j++ {
				cs := colMax[j] / 127
				if colMax[j] == 0 {
					cs = 1
				}
				tol[r*n+j] += w*cs/2 + colMax[j]*rs/2 + rs*cs/4
			}
		}
	}
	return tol
}

// TestQuantPlanCloseToFloatPlan is the int8 analog of the bit-identity
// suite: the quantized kernel cannot match the float plan exactly, but it
// must stay inside the analytical quantization-error bound on every output
// element, across the same matrix/batch sweep.
func TestQuantPlanCloseToFloatPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, s := range planShapes {
		w := hybridMatrix(rng, s.rows, s.cols, s.b, s.nm, s.pruned)
		e, err := EncodeCRISP(w, s.b, s.nm)
		if err != nil {
			t.Fatalf("%dx%d: %v", s.rows, s.cols, err)
		}
		p := e.Compile()
		q, err := p.Quantize()
		if err != nil {
			t.Fatalf("%dx%d: %v", s.rows, s.cols, err)
		}
		if q.NNZ() > p.NNZ() {
			t.Fatalf("%dx%d: quantized plan stores %d entries, float plan only %d", s.rows, s.cols, q.NNZ(), p.NNZ())
		}
		for _, n := range planBatches {
			x := tensor.Randn(rng, 1, s.cols, n)
			want := p.MatMul(x)
			got := q.MatMul(x)
			tol := quantTol(p, q, x, n)
			for i := range want.Data {
				if e := math.Abs(got.Data[i] - want.Data[i]); e > tol[i]+1e-12 {
					t.Fatalf("%dx%d batch %d: element %d error %v exceeds bound %v",
						s.rows, s.cols, n, i, e, tol[i])
				}
			}
		}
	}
}

// TestQuantPlanReconstruction: the quantized plan stores each row's codes
// sign-grouped (positives, then negatives; zero codes dropped), so it is
// compared to the float plan element-wise through its decoded matrix: every
// stored weight must reconstruct to within half its row scale, and the
// sign-span invariants must hold.
func TestQuantPlanReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	w := hybridMatrix(rng, 32, 64, 8, sparsity.NM{N: 2, M: 4}, 2)
	p := EncodeCSR(w).Compile()
	q, err := p.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	// Decode the quantized plan to a dense matrix.
	deq := tensor.New(32, 64)
	for r := 0; r < q.Rows; r++ {
		if q.RowScale[r] <= 0 {
			t.Fatalf("row %d scale %v not strictly positive", r, q.RowScale[r])
		}
		for i := q.RowPtr[r]; i < q.RowPtr[r+1]; i++ {
			if q.Code[i] == 0 {
				t.Fatalf("row %d stores a zero code at %d (must be dropped)", r, i)
			}
			if (i < q.NegPtr[r]) != (q.Code[i] > 0) {
				t.Fatalf("row %d entry %d: code %d on the wrong side of NegPtr", r, i, q.Code[i])
			}
			deq.Data[r*64+int(q.Col[i])] = float64(q.Code[i]) * q.RowScale[r]
		}
	}
	// Every float-plan entry must be reconstructed within half a row scale
	// (entries that quantize to 0 reconstruct as 0).
	for r := 0; r < p.Rows; r++ {
		for i := p.RowPtr[r]; i < p.RowPtr[r+1]; i++ {
			got := deq.Data[r*64+int(p.Col[i])]
			if e := math.Abs(got - p.Val[i]); e > q.RowScale[r]/2+1e-12 {
				t.Fatalf("row %d col %d reconstructs with error %v > scale/2 %v", r, p.Col[i], e, q.RowScale[r]/2)
			}
		}
	}
}

// TestCompileQuantized: the one-call path must match compile-then-quantize.
func TestCompileQuantized(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	w := hybridMatrix(rng, 16, 32, 8, sparsity.NM{N: 2, M: 4}, 1)
	e, err := EncodeCRISP(w, 8, sparsity.NM{N: 2, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	q, err := CompileQuantized(e)
	if err != nil {
		t.Fatal(err)
	}
	p := e.Compile()
	q2, err := p.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Code) != len(q2.Code) {
		t.Fatalf("code lengths differ: %d vs %d", len(q.Code), len(q2.Code))
	}
	for i := range q.Code {
		if q.Code[i] != q2.Code[i] {
			t.Fatalf("code %d differs: %d vs %d", i, q.Code[i], q2.Code[i])
		}
	}
	x := tensor.Randn(rng, 1, 32, 4)
	if !tensor.Equal(q.MatMul(x), q2.MatMul(x), 0) {
		t.Fatal("CompileQuantized result differs from Compile().Quantize()")
	}
}

// TestQuantizeDeterministic: the same plan always quantizes to the same
// codes and scales — the serving layer's snapshot-restore path depends on
// re-quantization being reproducible.
func TestQuantizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	w := hybridMatrix(rng, 32, 64, 8, sparsity.NM{N: 2, M: 4}, 2)
	p := EncodeCSR(w).Compile()
	a, err := p.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("code %d differs across quantizations", i)
		}
	}
	for r := range a.RowScale {
		if a.RowScale[r] != b.RowScale[r] {
			t.Fatalf("row %d scale differs across quantizations", r)
		}
	}
}

// TestQuantizeRejectsNonFiniteWeights: a NaN or Inf weight must fail the
// compile instead of encoding garbage codes.
func TestQuantizeRejectsNonFiniteWeights(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		w := tensor.New(4, 8)
		w.Data[3] = 1.5
		w.Data[9] = bad
		if _, err := EncodeCSR(w).Compile().Quantize(); err == nil {
			t.Fatalf("weight %v must fail quantization", bad)
		}
	}
}

// TestQuantMatMulIntoDirtyScratch: MatMulInto must own its destination and
// every scratch buffer — garbage-filled recycled memory (the arena
// contract) yields the same result as freshly allocated scratch.
func TestQuantMatMulIntoDirtyScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	w := hybridMatrix(rng, 32, 64, 8, sparsity.NM{N: 2, M: 4}, 2)
	q, err := CompileQuantized(EncodeCSR(w))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 1, 64, 16)
	want := q.MatMul(x)
	dirty := QuantScratch{
		Packed:   make([]uint64, 64*8),
		ColScale: make([]float64, 16),
		ColInv:   make([]float64, 16),
		AccP:     make([]uint64, 32*8),
		AccN:     make([]uint64, 32*8),
	}
	for i := range dirty.Packed {
		dirty.Packed[i] = math.MaxUint64
	}
	for i := range dirty.ColScale {
		dirty.ColScale[i] = 1e30
		dirty.ColInv[i] = -1e30
	}
	for i := range dirty.AccP {
		dirty.AccP[i] = math.MaxUint64
		dirty.AccN[i] = math.MaxUint64 - 1
	}
	out := tensor.Full(1e30, 32, 16)
	for pass := 0; pass < 2; pass++ {
		if got := q.MatMulInto(x, out, dirty); !tensor.Equal(got, want, 0) {
			t.Fatalf("pass %d: dirty-scratch MatMulInto differs from MatMul", pass)
		}
	}
}

// TestQuantMatMulZeroAndNonFiniteActivations: an all-zero activation column
// must produce exact zeros, and NaN/Inf activations must degrade only their
// own sample instead of poisoning the integer accumulators.
func TestQuantMatMulZeroAndNonFiniteActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	w := hybridMatrix(rng, 16, 32, 8, sparsity.NM{N: 2, M: 4}, 1)
	p := EncodeCSR(w).Compile()
	q, err := p.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 1, 32, 4)
	for r := 0; r < 32; r++ {
		x.Data[r*4+1] = 0           // column 1: all zero
		x.Data[r*4+2] = math.NaN()  // column 2: poisoned
		x.Data[r*4+3] = math.Inf(1) // column 3: poisoned
	}
	got := q.MatMulInto(x, tensor.New(16, 4), QuantScratch{})
	ref := p.MatMul(x)
	tol := quantTol(p, q, x, 4)
	for r := 0; r < 16; r++ {
		if got.Data[r*4+1] != 0 {
			t.Fatalf("row %d: zero column produced %v", r, got.Data[r*4+1])
		}
		// Column 0 is healthy and must still be within the bound.
		if e := math.Abs(got.Data[r*4] - ref.Data[r*4]); e > tol[r*4]+1e-12 {
			t.Fatalf("row %d: healthy column error %v exceeds bound %v", r, e, tol[r*4])
		}
		// Poisoned columns must be finite (codes fail closed to 0/clamp).
		for _, j := range []int{2, 3} {
			if v := got.Data[r*4+j]; math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("row %d col %d: non-finite output %v from non-finite input", r, j, v)
			}
		}
	}
}

// TestQuantMatMulParallelMatchesSerial forces the row-parallel path (work
// above spmmParallelThreshold) and checks it against a serial row walk:
// per-row accumulator segments mean fan-out cannot change results.
func TestQuantMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	w := hybridMatrix(rng, 128, 256, 8, sparsity.NM{N: 2, M: 4}, 2)
	q, err := CompileQuantized(EncodeCSR(w))
	if err != nil {
		t.Fatal(err)
	}
	n := 64
	x := tensor.Randn(rng, 1, 256, n)
	if len(q.Code)*n < spmmParallelThreshold {
		t.Fatalf("shape too small to exercise the parallel path (%d work)", len(q.Code)*n)
	}
	got := q.MatMul(x)

	// Serial reference: same kernel, forced single row range.
	s := QuantScratch{}.grown(q.Rows, q.Cols, n)
	halfW := (n + 1) / 2
	quantizePacked(x.Data, q.Cols, n, halfW, s.Packed, s.ColScale, s.ColInv)
	want := tensor.New(q.Rows, n)
	q.rowRange(s.Packed, s.ColScale, s.AccP, s.AccN, want, n, halfW, 0, q.Rows)
	if !tensor.Equal(got, want, 0) {
		t.Fatal("parallel quantized SpMM differs from serial row walk")
	}
}
