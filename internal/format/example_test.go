package format_test

import (
	"fmt"

	"repro/internal/format"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// ExampleEncodeCRISP encodes a tiny hybrid-sparse matrix and shows the
// metadata advantage over CSR: 2-bit intra-group offsets plus a single
// block index, versus full column indices per non-zero.
func ExampleEncodeCRISP() {
	// A 4×8 matrix: the right 4×4 block is pruned; the left block holds a
	// 2:4 pattern in every row.
	m := tensor.FromSlice([]float64{
		1, 0, 2, 0, 0, 0, 0, 0,
		0, 3, 0, 4, 0, 0, 0, 0,
		5, 6, 0, 0, 0, 0, 0, 0,
		0, 0, 7, 8, 0, 0, 0, 0,
	}, 4, 8)
	enc, err := format.EncodeCRISP(m, 4, sparsity.NM{N: 2, M: 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	csr := format.EncodeCSR(m)
	fmt.Printf("crisp metadata: %d bits\n", enc.MetadataBits())
	fmt.Printf("csr   metadata: %d bits\n", csr.MetadataBits())
	fmt.Println("round trip ok:", tensor.Equal(enc.Decode(), m, 0))
	// Output:
	// crisp metadata: 17 bits
	// csr   metadata: 184 bits
	// round trip ok: true
}
