package format

import "repro/internal/tensor"

// ValueSlab is an immutable dense row-major weight matrix shared across
// plans: the universal model's weights for one layer, referenced (never
// cloned) by every tenant plan whose kept values match it. A slab-bound
// plan drops its owned Val payload and gathers values from the slab in the
// kernels instead, so per-tenant storage shrinks to the index data (RowPtr
// and Col) while results stay bit-identical — binding verifies every kept
// value equals the slab entry bit-for-bit before any Val memory is
// released.
//
// The Data slice typically aliases live model storage (e.g. an nn.Param's
// weight tensor); the owner must not mutate it while plans reference it.
type ValueSlab struct {
	Rows, Cols int
	Data       []float64
}

// NewValueSlab wraps a rank-2 tensor as a slab, aliasing its storage.
func NewValueSlab(t *tensor.Tensor) *ValueSlab {
	if len(t.Shape) != 2 {
		return nil
	}
	return &ValueSlab{Rows: t.Shape[0], Cols: t.Shape[1], Data: t.Data}
}

// BindSlab attempts to re-home the plan's values onto s: when the plan has
// matching dimensions and every stored value equals the slab entry at its
// (row, column) bit-for-bit, the owned Val payload is dropped and kernels
// gather from the slab instead. Returns whether the plan is slab-backed
// afterwards. Binding fails (and leaves the plan untouched) when any kept
// value diverged from the universal weights — e.g. after fine-tuning — so
// callers can bind opportunistically and fall back to owned values for
// free. Not safe concurrently with kernel use of the same plan; bind at
// compile time.
func (p *Plan) BindSlab(s *ValueSlab) bool {
	if p.slab != nil {
		return true
	}
	if s == nil || s.Rows != p.Rows || s.Cols != p.Cols || len(s.Data) < s.Rows*s.Cols {
		return false
	}
	for r := 0; r < p.Rows; r++ {
		row := s.Data[r*s.Cols : (r+1)*s.Cols]
		for i := p.RowPtr[r]; i < p.RowPtr[r+1]; i++ {
			if p.Val[i] != row[p.Col[i]] {
				return false
			}
		}
	}
	p.slab = s
	p.Val = nil
	return true
}

// Shared reports whether the plan's values live in a shared slab (BindSlab
// succeeded) rather than an owned Val payload.
func (p *Plan) Shared() bool { return p.slab != nil }

// value returns stored entry i of row r, whichever side owns the payload.
// Entry i must lie inside row r's RowPtr span.
func (p *Plan) value(r int, i int32) float64 {
	if p.slab == nil {
		return p.Val[i]
	}
	return p.slab.Data[r*p.slab.Cols+int(p.Col[i])]
}

// rowRangeSlab is rowRange for slab-bound plans: identical walk and
// accumulation order, with values gathered from the shared slab row instead
// of the owned Val span. BindSlab proved every gathered value equals the
// value the owned kernel would have loaded, so results are bit-identical.
func (p *Plan) rowRangeSlab(b, out *tensor.Tensor, n, row0, row1 int) {
	bd := b.Data
	w := p.slab.Data
	cols := p.slab.Cols
	for r := row0; r < row1; r++ {
		wrow := w[r*cols : (r+1)*cols]
		dst := out.Data[r*n : (r+1)*n]
		clear(dst)
		i := int(p.RowPtr[r])
		end := int(p.RowPtr[r+1])
		for ; i+3 < end; i += 4 {
			c0, c1, c2, c3 := int(p.Col[i]), int(p.Col[i+1]), int(p.Col[i+2]), int(p.Col[i+3])
			v0, v1, v2, v3 := wrow[c0], wrow[c1], wrow[c2], wrow[c3]
			s0 := bd[c0*n : c0*n+n]
			s1 := bd[c1*n : c1*n+n]
			s2 := bd[c2*n : c2*n+n]
			s3 := bd[c3*n : c3*n+n]
			for j, b0 := range s0 {
				a := dst[j] + v0*b0
				a += v1 * s1[j]
				a += v2 * s2[j]
				a += v3 * s3[j]
				dst[j] = a
			}
		}
		for ; i < end; i++ {
			c := int(p.Col[i])
			v := wrow[c]
			src := bd[c*n : (c+1)*n]
			for j, bv := range src {
				dst[j] += v * bv
			}
		}
	}
}

// SizeBytes reports the heap bytes the plan itself owns: its slice payloads
// (RowPtr, Col, and — unless slab-bound — Val). Shared slab memory is
// excluded; it belongs to the universal model and is counted once by its
// owner, not per tenant. The fixed struct header is excluded as negligible.
func (p *Plan) SizeBytes() int64 {
	return int64(len(p.RowPtr))*4 + int64(len(p.Col))*4 + int64(len(p.Val))*8
}

// SizeBytes reports the heap bytes of the quantized plan's slice payloads
// (RowPtr, NegPtr, Col, Code, RowScale and the row-sum correction terms).
func (q *QuantPlan) SizeBytes() int64 {
	return int64(len(q.RowPtr))*4 + int64(len(q.NegPtr))*4 + int64(len(q.Col))*4 +
		int64(len(q.Code)) + int64(len(q.RowScale))*8 + int64(len(q.rowSum))*4
}
