package format

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// planShapes are the matrix/batch geometries the bit-identity suite sweeps:
// small and large grids, partial trailing groups exercised via block sizes,
// and batch widths from single-sample to serving-batch scale.
var planShapes = []struct {
	rows, cols, b int
	nm            sparsity.NM
	pruned        int
}{
	{8, 16, 4, sparsity.NM{N: 2, M: 4}, 1},
	{12, 24, 4, sparsity.NM{N: 1, M: 4}, 2},
	{32, 64, 8, sparsity.NM{N: 2, M: 4}, 3},
	{64, 128, 16, sparsity.NM{N: 3, M: 4}, 4},
	{16, 32, 8, sparsity.NM{N: 2, M: 8}, 1},
}

var planBatches = []int{1, 3, 16, 64}

// TestPlanBitIdenticalCRISP is the tentpole invariant at the kernel level:
// EncodeCRISP → Compile → MatMul must produce exactly (bit for bit) what
// the slot-walking CRISPFormat.MatMul produces, across matrix families and
// batch sizes.
func TestPlanBitIdenticalCRISP(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, s := range planShapes {
		w := hybridMatrix(rng, s.rows, s.cols, s.b, s.nm, s.pruned)
		e, err := EncodeCRISP(w, s.b, s.nm)
		if err != nil {
			t.Fatalf("%dx%d: %v", s.rows, s.cols, err)
		}
		p := e.Compile()
		if got, want := p.NNZ(), w.CountNonZero(); got != want {
			t.Fatalf("%dx%d: plan stores %d entries, matrix has %d non-zeros", s.rows, s.cols, got, want)
		}
		for _, n := range planBatches {
			x := tensor.Randn(rng, 1, s.cols, n)
			want := e.MatMul(x)
			got := p.MatMul(x)
			if !tensor.Equal(got, want, 0) {
				t.Fatalf("%dx%d batch %d: plan result differs from slot-walking kernel", s.rows, s.cols, n)
			}
		}
	}
}

// TestPlanDropsPaddingSlots: groups with fewer than N survivors store
// explicit (offset 0, value 0) padding slots in the CRISP layout; the
// compiled plan must drop them entirely while staying bit-identical.
func TestPlanDropsPaddingSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	w := hybridMatrix(rng, 16, 32, 8, sparsity.NM{N: 2, M: 4}, 1)
	// Zero one survivor in the leading group of every row that has at
	// least two non-zeros in it, so blocks stay populated (the block-kept
	// set and N:M pattern both survive a value becoming zero).
	for r := 0; r < 16; r++ {
		seen := 0
		for c := 0; c < 32; c++ {
			if w.Data[r*32+c] != 0 {
				seen++
				if seen == 2 {
					w.Data[r*32+c] = 0
					break
				}
			}
		}
	}
	e, err := EncodeCRISP(w, 8, sparsity.NM{N: 2, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := e.Compile()
	if p.NNZ() >= len(e.Val) {
		t.Fatalf("plan stores %d entries, encoding stores %d slots: padding not dropped", p.NNZ(), len(e.Val))
	}
	if got, want := p.NNZ(), w.CountNonZero(); got != want {
		t.Fatalf("plan stores %d entries, matrix has %d non-zeros", got, want)
	}
	x := tensor.Randn(rng, 1, 32, 16)
	if !tensor.Equal(p.MatMul(x), e.MatMul(x), 0) {
		t.Fatal("plan with dropped padding slots differs from slot-walking kernel")
	}
}

// TestPlanBitIdenticalCSR: the CSR plan must reproduce CSR.MatMul exactly.
func TestPlanBitIdenticalCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, s := range planShapes {
		w := hybridMatrix(rng, s.rows, s.cols, s.b, s.nm, s.pruned)
		c := EncodeCSR(w)
		p := c.Compile()
		if p.NNZ() != c.NNZ() {
			t.Fatalf("plan NNZ %d vs CSR %d", p.NNZ(), c.NNZ())
		}
		for _, n := range planBatches {
			x := tensor.Randn(rng, 1, s.cols, n)
			if !tensor.Equal(p.MatMul(x), c.MatMul(x), 0) {
				t.Fatalf("%dx%d batch %d: CSR plan differs", s.rows, s.cols, n)
			}
		}
	}
}

// TestCompilePlanFallback: encodings without a direct compiler go through
// Decode → CSR and must still multiply correctly.
func TestCompilePlanFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	w := hybridMatrix(rng, 8, 16, 4, sparsity.NM{N: 2, M: 4}, 1)
	ell := EncodeELLPACK(w)
	p := CompilePlan(ell)
	x := tensor.Randn(rng, 1, 16, 8)
	if !tensor.Equal(p.MatMul(x), ell.MatMul(x), 0) {
		t.Fatal("fallback plan differs from ELLPACK kernel")
	}
	// Direct compilers are picked up through the same entry point.
	if !tensor.Equal(CompilePlan(EncodeCSR(w)).MatMul(x), EncodeCSR(w).MatMul(x), 0) {
		t.Fatal("CompilePlan(CSR) differs")
	}
}

// TestMatMulIntoOverwritesDirtyBuffer: MatMulInto must fully own its
// destination — a reused, garbage-filled buffer yields the same result as a
// fresh one (the arena contract).
func TestMatMulIntoOverwritesDirtyBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	w := hybridMatrix(rng, 32, 64, 8, sparsity.NM{N: 2, M: 4}, 2)
	e, err := EncodeCRISP(w, 8, sparsity.NM{N: 2, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := e.Compile()
	x := tensor.Randn(rng, 1, 64, 16)
	want := p.MatMul(x)
	dirty := tensor.Full(1e30, 32, 16)
	if got := p.MatMulInto(x, dirty); !tensor.Equal(got, want, 0) {
		t.Fatal("MatMulInto into a dirty buffer differs from MatMul")
	}
	// And again, into the same buffer.
	if got := p.MatMulInto(x, dirty); !tensor.Equal(got, want, 0) {
		t.Fatal("second MatMulInto into the same buffer differs")
	}
}

// TestParallelRowsPool drives the persistent worker pool directly: every
// row must be visited exactly once per call, including under many
// concurrent SpMM-sized calls sharing the pool.
func TestParallelRowsPool(t *testing.T) {
	const rows = 257
	run := func() {
		visits := make([]int32, rows)
		// work above the threshold forces the pooled path.
		parallelRows(rows, spmmParallelThreshold*2, func(r0, r1 int) {
			for r := r0; r < r1; r++ {
				visits[r]++
			}
		})
		for r, v := range visits {
			if v != 1 {
				t.Errorf("row %d visited %d times", r, v)
			}
		}
	}
	run() // cold: starts the pool
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	wg.Wait()

	// Sub-threshold work must stay on the caller.
	called := false
	parallelRows(4, 1, func(r0, r1 int) {
		if r0 != 0 || r1 != 4 {
			t.Errorf("small problem split into [%d,%d)", r0, r1)
		}
		called = true
	})
	if !called {
		t.Fatal("small problem not executed")
	}
}
