package format

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// maxQuantRowNNZ bounds a row's stored entries so the packed 32-bit
// accumulator lanes cannot overflow: each span product is at most
// |code|·ub ≤ 127·255 = 32385, so ⌊(2³²−1)/32385⌋ = 132622 entries always
// fit. Every layer in this repo is orders of magnitude below the bound.
const maxQuantRowNNZ = (1<<32 - 1) / (127 * 255)

// QuantPlan is the int8 image of a compiled execution plan: each stored
// weight replaced by a signed 8-bit code and one symmetric dequantization
// scale per output row (code · scale ≈ weight, scale = max|row|/127). It is
// the software analogue of running the CRISP format on a sparse tensor
// core in int8 mode (CRISP-STC), where both operands are 8-bit and products
// accumulate in int32.
//
// The SpMM kernel quantizes the activation matrix on the fly (one symmetric
// scale per activation column — per sample/position — so one badly scaled
// sample cannot crush another's precision), multiplies 8-bit operands into
// 32-bit integer accumulators, and dequantizes once on store:
//
//	out[r][j] = Σ code[i]·bq[col[i]][j] · RowScale[r] · colScale[j]
//
// To beat the float kernel's multiplier throughput on scalar hardware, the
// integer MAC runs as SWAR (SIMD within a register) over unsigned operands:
//
//   - activation codes are biased to ub = b+128 ∈ [1, 255] and packed two
//     32-bit lanes per 64-bit word, so one 64-bit multiply computes two
//     lane products with no carry between lanes (each lane stays < 2³² for
//     any row within maxQuantRowNNZ entries);
//   - weight codes are sign-split at quantization time: each row stores its
//     positive codes first, then its negatives (zero codes are dropped —
//     they contribute nothing), so both spans multiply by |code| ≥ 1 and
//     accumulate into separate non-negative lane sets, with no sign
//     handling in the inner loop;
//   - the store undoes the activation bias algebraically. Expanding
//     Σ w·(b+128) over both spans gives Σ w·b = ACC⁺ − ACC⁻ − 128·W, with
//     W = Σ codes fixed per row at quantization time — so the correction
//     costs nothing per entry, and the kernel pays about half a multiply
//     and one add per multiply-accumulate.
//
// Integer addition is associative and exact: results are identical under
// any accumulation order (including the sign reordering and 4-way
// unrolling), and the only rounding anywhere is quantization itself plus
// the one dequantizing store.
//
// A QuantPlan is immutable after Quantize and safe for concurrent MatMul
// use; per-call state lives in the caller's QuantScratch.
type QuantPlan struct {
	Rows, Cols int
	// RowPtr[r] .. RowPtr[r+1] is row r's span in Col/Code (len Rows+1);
	// NegPtr[r] splits it into the positive-code prefix [RowPtr[r],
	// NegPtr[r]) and the negative-code suffix [NegPtr[r], RowPtr[r+1]).
	RowPtr []int32
	NegPtr []int32
	// Col holds absolute column indices, Code the matching non-zero int8
	// weight codes, sign-grouped per row as described above.
	Col  []int32
	Code []int8
	// RowScale dequantizes row r: weight ≈ Code·RowScale[r] (len Rows).
	RowScale []float64
	// rowSum[r] is Σ Code over row r — the W term of the bias correction,
	// fixed at quantization time.
	rowSum []int32

	// tiling configures the blocked kernel path (blocked.go); Quantize
	// copies it from the source plan, SetTiling overrides it.
	tiling Tiling
}

// NNZ returns the number of stored entries. It is at most the float plan's
// NNZ: weights that quantize to code 0 are dropped (they cannot contribute
// to any product).
func (q *QuantPlan) NNZ() int { return len(q.Code) }

// Quantize compiles the plan's weights to int8 at symmetric per-row
// scales, sign-grouping each row's codes for the SWAR kernel. Quantization
// is deterministic: the same plan always yields the same codes, scales and
// layout. Non-finite weights fail closed: deploying a NaN/Inf model at
// int8 would silently encode garbage codes, so it is an error instead.
func (p *Plan) Quantize() (*QuantPlan, error) {
	q := &QuantPlan{
		Rows:     p.Rows,
		Cols:     p.Cols,
		RowPtr:   make([]int32, len(p.RowPtr)),
		NegPtr:   make([]int32, p.Rows),
		RowScale: make([]float64, p.Rows),
		rowSum:   make([]int32, p.Rows),
		Col:      make([]int32, 0, p.NNZ()),
		Code:     make([]int8, 0, p.NNZ()),
		tiling:   p.tiling,
	}
	for r := 0; r < p.Rows; r++ {
		if nnz := int(p.RowPtr[r+1] - p.RowPtr[r]); nnz > maxQuantRowNNZ {
			return nil, fmt.Errorf("format: quantize: row %d stores %d entries, max %d (packed accumulator bound)", r, nnz, maxQuantRowNNZ)
		}
		maxAbs := 0.0
		// Values go through the slab-aware accessor: a slab-bound plan
		// quantizes to exactly the codes its owned twin would (BindSlab
		// proved bit-equality), so sharing never perturbs the int8 image.
		for i := p.RowPtr[r]; i < p.RowPtr[r+1]; i++ {
			v := p.value(r, i)
			a := math.Abs(v)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("format: quantize: non-finite weight %v in row %d", v, r)
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
		s := 1.0
		if maxAbs > 0 {
			s = maxAbs / 127
		}
		q.RowScale[r] = s
		inv := 1 / s
		code := func(i int32) int8 {
			c := math.Round(p.value(r, i) * inv)
			if c > 127 {
				c = 127
			} else if c < -127 {
				c = -127
			}
			return int8(c)
		}
		sum := int32(0)
		// Positive codes first, then negatives; zero codes are dropped.
		for i := p.RowPtr[r]; i < p.RowPtr[r+1]; i++ {
			if c := code(i); c > 0 {
				q.Col = append(q.Col, p.Col[i])
				q.Code = append(q.Code, c)
				sum += int32(c)
			}
		}
		q.NegPtr[r] = int32(len(q.Code))
		for i := p.RowPtr[r]; i < p.RowPtr[r+1]; i++ {
			if c := code(i); c < 0 {
				q.Col = append(q.Col, p.Col[i])
				q.Code = append(q.Code, c)
				sum += int32(c)
			}
		}
		q.rowSum[r] = sum
		q.RowPtr[r+1] = int32(len(q.Code))
	}
	return q, nil
}

// CompileQuantized compiles any encoding straight to its int8 plan:
// CompilePlan for the layout, then Quantize for the codes.
func CompileQuantized(e Encoded) (*QuantPlan, error) {
	return CompilePlan(e).Quantize()
}

// QuantScratch holds one SpMM call's activation-quantization and
// accumulation buffers. Contents need not be initialized — every element is
// overwritten before use — so callers on a hot path hand in recycled arena
// memory and the call allocates nothing; the zero value makes MatMulInto
// allocate internally (tests, one-offs). Buffers may be longer than
// required.
type QuantScratch struct {
	// Packed receives the biased int8 activation codes, two 32-bit lanes
	// per word (Cols·⌈n/2⌉ entries).
	Packed []uint64
	// ColScale and ColInv receive each activation column's dequantization
	// scale and its reciprocal (n entries each).
	ColScale, ColInv []float64
	// AccP and AccN receive the packed positive- and negative-span
	// accumulators (Rows·⌈n/2⌉ entries each); each output row owns its
	// segments, so row-parallel workers never share accumulator memory.
	AccP, AccN []uint64
}

// Scratch returns a fully sized scratch for MatMulInto calls against
// batch-width-n activations — the pre-allocation hook for callers without
// an arena (benchmarks, long-lived single-plan loops).
func (q *QuantPlan) Scratch(n int) QuantScratch {
	return QuantScratch{}.grown(q.Rows, q.Cols, n)
}

// grown returns the scratch with every buffer at least the required size,
// allocating only the ones the caller left empty or short.
func (s QuantScratch) grown(rows, cols, n int) QuantScratch {
	halfW := (n + 1) / 2
	if len(s.Packed) < cols*halfW {
		s.Packed = make([]uint64, cols*halfW)
	}
	if len(s.ColScale) < n {
		s.ColScale = make([]float64, n)
	}
	if len(s.ColInv) < n {
		s.ColInv = make([]float64, n)
	}
	if len(s.AccP) < rows*halfW {
		s.AccP = make([]uint64, rows*halfW)
	}
	if len(s.AccN) < rows*halfW {
		s.AccN = make([]uint64, rows*halfW)
	}
	return s
}

// MatMul computes QuantPlan · B into a new tensor, allocating its own
// scratch — the convenience form of MatMulInto.
func (q *QuantPlan) MatMul(b *tensor.Tensor) *tensor.Tensor {
	_, n := checkSpMM(b, q.Cols)
	return q.MatMulInto(b, tensor.New(q.Rows, n), QuantScratch{})
}

// MatMulInto computes QuantPlan · B into out ([Rows, n], previous contents
// overwritten): B's columns are quantized to int8 at per-column symmetric
// scales, products accumulate in packed 32-bit integer lanes, and each
// output element is dequantized exactly once on store.
//
// Non-finite activation values fail closed instead of poisoning the
// integer accumulators with undefined conversions: a NaN encodes to code 0
// and ±Inf saturates to code ±127 (its column's scale excludes non-finite
// values), so the damage stays inside that sample.
func (q *QuantPlan) MatMulInto(b, out *tensor.Tensor, s QuantScratch) *tensor.Tensor {
	_, n := checkSpMM(b, q.Cols)
	if len(out.Shape) != 2 || out.Shape[0] != q.Rows || out.Shape[1] != n {
		panic(fmt.Sprintf("format: quant MatMulInto output %v, want [%d %d]", out.Shape, q.Rows, n))
	}
	s = s.grown(q.Rows, q.Cols, n)
	halfW := (n + 1) / 2
	quantizePacked(b.Data, q.Cols, n, halfW, s.Packed, s.ColScale, s.ColInv)
	return q.matmulPacked(s.Packed, s.ColScale, s.AccP, s.AccN, out, n, halfW)
}

// MatMulPackedInto is the pre-quantized entry point: the caller already
// encoded the activation matrix into packed biased lanes (two 32-bit
// lanes per word, quantizePacked's layout: Cols·⌈n/2⌉ words) with one
// dequantization scale per column, and the kernel goes straight to the
// integer MAC. This is how executors with structure-aware quantization
// (e.g. the conv path, which encodes each input element once — before
// im2col duplicates it KH·KW times) reuse the SpMM core; scratch supplies
// only the accumulators. out must be [Rows, n], its previous contents are
// overwritten.
func (q *QuantPlan) MatMulPackedInto(packed []uint64, colScale []float64, out *tensor.Tensor, s QuantScratch) *tensor.Tensor {
	if len(out.Shape) != 2 || out.Shape[0] != q.Rows {
		panic(fmt.Sprintf("format: quant MatMulPackedInto output %v, want [%d n]", out.Shape, q.Rows))
	}
	n := out.Shape[1]
	halfW := (n + 1) / 2
	if len(packed) < q.Cols*halfW || len(colScale) < n {
		panic(fmt.Sprintf("format: quant MatMulPackedInto: packed %d (want >= %d), scales %d (want >= %d)",
			len(packed), q.Cols*halfW, len(colScale), n))
	}
	if len(s.AccP) < q.Rows*halfW {
		s.AccP = make([]uint64, q.Rows*halfW)
	}
	if len(s.AccN) < q.Rows*halfW {
		s.AccN = make([]uint64, q.Rows*halfW)
	}
	return q.matmulPacked(packed, colScale, s.AccP, s.AccN, out, n, halfW)
}

// matmulPacked runs the integer MAC over pre-packed activations, fanning
// rows out across the kernel pool at batch scale. With an explicit tiling
// installed, batch widths of panelMin and up ride the blocked outer loops
// (matmulPackedBlocked), which keep the packed accumulators in registers
// instead of the AccP/AccN scratch slabs; integer accumulation is exact,
// so both paths are identical. Auto dispatch stays scalar: the packed
// accumulator slice of a row is only ⌈n/2⌉ words (one cache line at
// serving batch sizes), so the scratch slabs are already L1-resident and
// the panel gathers measured slower than the streaming SWAR walk on the
// reference machine.
func (q *QuantPlan) matmulPacked(packed []uint64, colScale []float64, accP, accN []uint64, out *tensor.Tensor, n, halfW int) *tensor.Tensor {
	if n >= panelMin && !q.tiling.Scalar && q.tiling.explicit() {
		q.matmulPackedBlocked(packed, colScale, out, n, halfW)
		return out
	}
	if len(q.Code)*n < spmmParallelThreshold || q.Rows < 2 {
		q.rowRange(packed, colScale, accP, accN, out, n, halfW, 0, q.Rows)
		return out
	}
	parallelRows(q.Rows, len(q.Code)*n, func(row0, row1 int) {
		q.rowRange(packed, colScale, accP, accN, out, n, halfW, row0, row1)
	})
	return out
}

// quantizePacked encodes the dense activation matrix bd ([rows, n]
// row-major) at one symmetric scale per column — colScale[j] =
// max|bd[:,j]|/127 (1 for an all-zero column, so zeros encode to zero) —
// writing biased codes (b+128 ∈ [1,255]) packed two 32-bit lanes per word.
// An odd trailing column is padded with the bias value (code 0); the store
// never reads the pad lane. Non-finite entries are excluded from the
// scale; NaN encodes to code 0, ±Inf saturates to code ±127.
func quantizePacked(bd []float64, rows, n, halfW int, packed []uint64, colScale, colInv []float64) {
	max := colScale[:n]
	clear(max)
	for r := 0; r < rows; r++ {
		for j, v := range bd[r*n : (r+1)*n] {
			// math.Abs(NaN) > x is false, so NaN never becomes a scale;
			// +Inf is rejected explicitly below.
			if a := math.Abs(v); a > max[j] {
				max[j] = a
			}
		}
	}
	for j, m := range max {
		if m == 0 || math.IsInf(m, 0) {
			colScale[j] = 1
		} else {
			colScale[j] = m / 127
		}
		colInv[j] = 1 / colScale[j]
	}
	// The encode pass is per-activation-row independent; batch-scale calls
	// fan it out over the shared kernel pool so the quantization pre-pass
	// does not serialize an otherwise row-parallel SpMM.
	encode := func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			src := bd[r*n : (r+1)*n]
			dst := packed[r*halfW : (r+1)*halfW]
			for jp := 0; jp < halfW; jp++ {
				j0 := 2 * jp
				w := encodeBiased(src[j0], colInv[j0])
				if j0+1 < n {
					w |= encodeBiased(src[j0+1], colInv[j0+1]) << 32
				} else {
					w |= 128 << 32 // pad lane: biased zero
				}
				dst[jp] = w
			}
		}
	}
	if rows*n < spmmParallelThreshold || rows < 2 {
		encode(0, rows)
		return
	}
	parallelRows(rows, rows*n, encode)
}

// EncodeBiased rounds v/scale (inv = 1/scale) to the symmetric int8 window
// and biases it to unsigned [1, 255] — the lane encoding MatMulPackedInto
// expects. The fast path turns round-to-nearest (half up) into a single
// truncating conversion by adding 128.5 before the int conversion; callers
// with in-range scales (inv = 127/max) always take it. The range test
// fails for NaN (both comparisons false), which falls through to the
// clamping/fail-closed tail.
func EncodeBiased(v, inv float64) uint64 {
	t := v*inv + 128.5
	if t >= 1 && t < 256 {
		return uint64(int32(t))
	}
	switch {
	case t >= 256:
		return 255
	case t < 1: // below window (finite) or -Inf
		return 1
	default: // NaN
		return 128
	}
}

// encodeBiased is the internal alias (kept for the packed encoder's hot
// loop).
func encodeBiased(v, inv float64) uint64 { return EncodeBiased(v, inv) }

// spanMAC accumulates one sign span's entries into acc: for each stored
// entry, |code| times the gathered packed activation word. The walk is
// 4-way unrolled like the float plan kernel's purely to cut accumulator
// loads/stores; integer addition is exact, so unrolling cannot change the
// result. neg selects the negative span (codes negated to their magnitude).
func (q *QuantPlan) spanMAC(acc []uint64, packed []uint64, halfW, i, end int, neg bool) {
	sign := int32(1)
	if neg {
		sign = -1
	}
	for ; i+3 < end; i += 4 {
		w0 := uint64(sign * int32(q.Code[i]))
		w1 := uint64(sign * int32(q.Code[i+1]))
		w2 := uint64(sign * int32(q.Code[i+2]))
		w3 := uint64(sign * int32(q.Code[i+3]))
		p0 := packed[int(q.Col[i])*halfW : int(q.Col[i])*halfW+halfW]
		p1 := packed[int(q.Col[i+1])*halfW : int(q.Col[i+1])*halfW+halfW]
		p2 := packed[int(q.Col[i+2])*halfW : int(q.Col[i+2])*halfW+halfW]
		p3 := packed[int(q.Col[i+3])*halfW : int(q.Col[i+3])*halfW+halfW]
		for j, q0 := range p0 {
			a := acc[j] + w0*q0
			a += w1 * p1[j]
			a += w2 * p2[j]
			a += w3 * p3[j]
			acc[j] = a
		}
	}
	for ; i < end; i++ {
		w := uint64(sign * int32(q.Code[i]))
		src := packed[int(q.Col[i])*halfW : (int(q.Col[i])+1)*halfW]
		for j, qv := range src {
			acc[j] += w * qv
		}
	}
}

// rowRange computes output rows [row0, row1): the positive and negative
// sign spans accumulate separately (spanMAC), then one bias-correcting,
// dequantizing store per element recombines them.
func (q *QuantPlan) rowRange(packed []uint64, colScale []float64, accPBuf, accNBuf []uint64, out *tensor.Tensor, n, halfW, row0, row1 int) {
	for r := row0; r < row1; r++ {
		ap := accPBuf[r*halfW : (r+1)*halfW]
		an := accNBuf[r*halfW : (r+1)*halfW]
		clear(ap)
		clear(an)
		q.spanMAC(ap, packed, halfW, int(q.RowPtr[r]), int(q.NegPtr[r]), false)
		q.spanMAC(an, packed, halfW, int(q.NegPtr[r]), int(q.RowPtr[r+1]), true)
		rs := q.RowScale[r]
		wsum := 128 * int64(q.rowSum[r])
		dst := out.Data[r*n : (r+1)*n]
		for j := range dst {
			shift := 32 * uint(j&1)
			lane := int64((ap[j>>1]>>shift)&0xffffffff) - int64((an[j>>1]>>shift)&0xffffffff)
			dst[j] = float64(lane-wsum) * rs * colScale[j]
		}
	}
}
