package format

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Encoded is the common interface of all sparse encodings.
type Encoded interface {
	// Name identifies the format ("csr", "ellpack", ...).
	Name() string
	// MetadataBits is the structural overhead in bits (indices, pointers).
	MetadataBits() int64
	// DataBits is the value payload in bits for the given value precision.
	DataBits(valueBits int) int64
	// Decode reconstructs the dense rows×cols matrix.
	Decode() *tensor.Tensor
	// MatMul computes Sparse · B for a dense cols×n matrix B.
	MatMul(b *tensor.Tensor) *tensor.Tensor
}

// bitsFor returns ⌈log2 n⌉ with a floor of 1 bit.
func bitsFor(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// checkMatrix asserts m is rank-2 and returns (rows, cols).
func checkMatrix(m *tensor.Tensor) (int, int) {
	if len(m.Shape) != 2 {
		panic(fmt.Sprintf("format: rank-2 matrix required, got %v", m.Shape))
	}
	return m.Shape[0], m.Shape[1]
}

// checkSpMM asserts b is rank-2 with the expected inner dimension.
func checkSpMM(b *tensor.Tensor, cols int) (int, int) {
	if len(b.Shape) != 2 || b.Shape[0] != cols {
		panic(fmt.Sprintf("format: SpMM operand %v does not match inner dim %d", b.Shape, cols))
	}
	return b.Shape[0], b.Shape[1]
}
