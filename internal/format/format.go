// Package format implements the sparse-weight storage formats compared in
// the CRISP paper's Fig. 4: CSR, ELLPACK, Blocked-ELLPACK and the CRISP
// hybrid format (Blocked-ELLPACK block-column indices plus packed
// ⌈log2 M⌉-bit intra-group offsets for the N:M non-zeros).
//
// Each format has a real encoder (encode → decode round-trips the masked
// matrix, SpMM matches dense GEMM) and an analytical metadata-bit model used
// to evaluate full-size ImageNet layers without materializing them. The bit
// conventions follow common practice and are validated against the paper's
// reported ≈5×/≈7× CSR/ELLPACK overheads:
//
//   - CSR: one ⌈log2 cols⌉-bit column index per non-zero + 32-bit row
//     pointers.
//   - ELLPACK (ITPACK): rows padded to the maximum row population, 16-bit
//     column indices (the format's fixed-width index array).
//   - Blocked-ELLPACK: one ⌈log2 gridCols⌉-bit block-column index per kept
//     block.
//   - CRISP: Blocked-ELLPACK block indices + ⌈log2 M⌉ bits per kept N:M slot.
//
// # Execution plans
//
// The storage formats model what the hardware stores; executing them
// directly pays block-grid arithmetic, offset decoding and padding-slot
// branches on every SpMM. For software serving each encoding therefore
// compiles — once, via Compile/CompilePlan — into a Plan: a flat
// row-pointer / column-index / value layout with zero slots dropped, whose
// kernel is a straight gather-multiply-accumulate that accumulates in
// exactly the storage kernel's order (bit-identical results). Large SpMMs
// fan out over a persistent package-level worker pool (see parallelRows);
// the steady-state hot path spawns no goroutines and MatMulInto variants
// let callers supply recycled output buffers.
package format

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Encoded is the common interface of all sparse encodings.
type Encoded interface {
	// Name identifies the format ("csr", "ellpack", ...).
	Name() string
	// MetadataBits is the structural overhead in bits (indices, pointers).
	MetadataBits() int64
	// DataBits is the value payload in bits for the given value precision.
	DataBits(valueBits int) int64
	// Decode reconstructs the dense rows×cols matrix.
	Decode() *tensor.Tensor
	// MatMul computes Sparse · B for a dense cols×n matrix B.
	MatMul(b *tensor.Tensor) *tensor.Tensor
}

// bitsFor returns ⌈log2 n⌉ with a floor of 1 bit.
func bitsFor(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// checkMatrix asserts m is rank-2 and returns (rows, cols).
func checkMatrix(m *tensor.Tensor) (int, int) {
	if len(m.Shape) != 2 {
		panic(fmt.Sprintf("format: rank-2 matrix required, got %v", m.Shape))
	}
	return m.Shape[0], m.Shape[1]
}

// checkSpMM asserts b is rank-2 with the expected inner dimension.
func checkSpMM(b *tensor.Tensor, cols int) (int, int) {
	if len(b.Shape) != 2 || b.Shape[0] != cols {
		panic(fmt.Sprintf("format: SpMM operand %v does not match inner dim %d", b.Shape, cols))
	}
	return b.Shape[0], b.Shape[1]
}
