package format

import (
	"math/rand"
	"testing"

	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// FuzzEncodeCRISPDecode drives the CRISP encoder with fuzzer-chosen
// geometry, sparsity pattern and values. The raw inputs parameterize a
// generator that always produces a matrix satisfying the hybrid invariants
// (N:M inside rows, row-balanced kept blocks), so every run must:
//
//   - encode without error,
//   - Decode back to exactly the source matrix (round trip),
//   - compile to a Plan holding exactly the matrix's non-zeros,
//   - and SpMM bit-identically through both the slot-walking kernel and
//     the compiled plan.
func FuzzEncodeCRISPDecode(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(1), uint8(0), uint8(1), uint8(0))
	f.Add(int64(7), uint8(1), uint8(1), uint8(0), uint8(2), uint8(3), uint8(3))
	f.Add(int64(42), uint8(4), uint8(2), uint8(2), uint8(1), uint8(7), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, gr, gc, bSel, nmSel, pruned, zeros uint8) {
		blocks := []int{4, 8, 16}
		b := blocks[int(bSel)%len(blocks)]
		nms := []sparsity.NM{{N: 1, M: 4}, {N: 2, M: 4}, {N: 3, M: 4}, {N: 2, M: 8}}
		nm := nms[int(nmSel)%len(nms)]
		if b%nm.M != 0 {
			nm = sparsity.NM{N: 2, M: 4}
		}
		gridRows := int(gr)%4 + 1
		gridCols := int(gc)%4 + 1
		rows, cols := gridRows*b, gridCols*b

		rng := rand.New(rand.NewSource(seed))
		w := hybridMatrix(rng, rows, cols, b, nm, int(pruned)%gridCols)
		// Sprinkle extra zeros over kept entries (padding slots in the
		// encoding), but never empty a whole block: drop at most one
		// survivor per matrix row, and only when the row keeps several.
		if zeros%2 == 1 {
			for r := 0; r < rows; r++ {
				nz := 0
				for c := 0; c < cols; c++ {
					if w.Data[r*cols+c] != 0 {
						nz++
					}
				}
				if nz < 2 {
					continue
				}
				victim := rng.Intn(nz)
				for c, seen := 0, 0; c < cols; c++ {
					if w.Data[r*cols+c] != 0 {
						if seen == victim {
							w.Data[r*cols+c] = 0
							break
						}
						seen++
					}
				}
			}
		}
		// Re-check balance: removing values may have emptied a block and
		// broken row balance, in which case EncodeCRISP must reject — that
		// is correct behaviour, not a failure.
		e, err := EncodeCRISP(w, b, nm)
		if err != nil {
			g := sparsity.NewBlockGrid(rows, cols, b)
			counts := sparsity.KeptBlocksPerRow(w, g)
			for _, c := range counts[1:] {
				if c != counts[0] {
					t.Skip("generator produced imbalanced rows; rejection is correct")
				}
			}
			t.Fatalf("balanced hybrid matrix rejected: %v", err)
		}
		if !tensor.Equal(e.Decode(), w, 0) {
			t.Fatal("Decode does not round-trip the encoded matrix")
		}
		p := e.Compile()
		if got, want := p.NNZ(), w.CountNonZero(); got != want {
			t.Fatalf("plan stores %d entries, matrix has %d non-zeros", got, want)
		}
		x := tensor.Randn(rng, 1, cols, 5)
		want := e.MatMul(x)
		if !tensor.Equal(p.MatMul(x), want, 0) {
			t.Fatal("compiled plan differs from slot-walking kernel")
		}
		dense := tensor.MatMul(w, x)
		if !tensor.Equal(want, dense, 1e-9) {
			t.Fatal("sparse SpMM differs from dense GEMM")
		}
	})
}
