package format

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// FuzzBlockedMatMul differentially fuzzes every enrolled kernel variant
// (KernelVariants) against the scalar reference: fuzzer-chosen geometry,
// sparsity and batch width build a plan corpus — arbitrary CSR structure
// and, when the matrix conforms, the CRISP compile with its uniform-span
// fast path — and every variant must reproduce the scalar result bit for
// bit. The int8 SWAR kernel rides the same inputs: integer accumulation is
// exact, so blocked dispatch must match scalar dispatch exactly there too.
// Seed corpus: testdata/fuzz/FuzzBlockedMatMul.
func FuzzBlockedMatMul(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(16), int64(0))
	f.Add(int64(7), int64(0), int64(0), int64(1), int64(1))
	f.Add(int64(42), int64(3), int64(1), int64(17), int64(2))
	f.Fuzz(func(t *testing.T, seed, rowSel, colSel, nSel, mode int64) {
		rng := rand.New(rand.NewSource(seed))
		rowsGrid := []int{1, 3, 8, 64, 65}
		colsGrid := []int{8, 16, 33, 128}
		rows := rowsGrid[int(uint64(rowSel))%len(rowsGrid)]
		cols := colsGrid[int(uint64(colSel))%len(colsGrid)]
		n := int(uint64(nSel))%19 + 1

		var w *tensor.Tensor
		if mode%2 == 0 && rows%4 == 0 && cols%4 == 0 {
			w = hybridMatrix(rng, rows, cols, 4, sparsity.NM{N: 2, M: 4}, int(uint64(mode>>1))%(cols/4))
		} else {
			w = tensor.Randn(rng, 2, rows, cols)
			for i := range w.Data {
				if rng.Float64() < 0.6 {
					w.Data[i] = 0
				}
			}
		}
		plans := []*Plan{EncodeCSR(w).Compile()}
		if e, err := EncodeCRISP(w, 4, sparsity.NM{N: 2, M: 4}); err == nil {
			plans = append(plans, e.Compile())
		}
		x := tensor.Randn(rng, 1, cols, n)
		for _, p := range plans {
			ref := *p
			ref.SetTiling(Tiling{Scalar: true})
			want := ref.MatMul(x)
			for _, kv := range KernelVariants() {
				v := *p
				v.SetTiling(kv.Tiling)
				got := v.MatMul(x)
				for i := range got.Data {
					if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
						t.Fatalf("%s: output[%d] = %v, scalar reference %v", kv.Name, i, got.Data[i], want.Data[i])
					}
				}
			}
			if q, err := p.Quantize(); err == nil {
				qwant := q.MatMul(x)
				for _, kv := range KernelVariants() {
					qv := *q
					qv.SetTiling(kv.Tiling)
					qgot := qv.MatMul(x)
					for i := range qgot.Data {
						if math.Float64bits(qgot.Data[i]) != math.Float64bits(qwant.Data[i]) {
							t.Fatalf("int8/%s: output[%d] = %v, scalar SWAR %v", kv.Name, i, qgot.Data[i], qwant.Data[i])
						}
					}
				}
			}
		}
	})
}

// FuzzEncodeCRISPDecode drives the CRISP encoder with fuzzer-chosen
// geometry, sparsity pattern and values. The raw inputs parameterize a
// generator that always produces a matrix satisfying the hybrid invariants
// (N:M inside rows, row-balanced kept blocks), so every run must:
//
//   - encode without error,
//   - Decode back to exactly the source matrix (round trip),
//   - compile to a Plan holding exactly the matrix's non-zeros,
//   - and SpMM bit-identically through both the slot-walking kernel and
//     the compiled plan.
func FuzzEncodeCRISPDecode(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(1), uint8(0), uint8(1), uint8(0))
	f.Add(int64(7), uint8(1), uint8(1), uint8(0), uint8(2), uint8(3), uint8(3))
	f.Add(int64(42), uint8(4), uint8(2), uint8(2), uint8(1), uint8(7), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, gr, gc, bSel, nmSel, pruned, zeros uint8) {
		blocks := []int{4, 8, 16}
		b := blocks[int(bSel)%len(blocks)]
		nms := []sparsity.NM{{N: 1, M: 4}, {N: 2, M: 4}, {N: 3, M: 4}, {N: 2, M: 8}}
		nm := nms[int(nmSel)%len(nms)]
		if b%nm.M != 0 {
			nm = sparsity.NM{N: 2, M: 4}
		}
		gridRows := int(gr)%4 + 1
		gridCols := int(gc)%4 + 1
		rows, cols := gridRows*b, gridCols*b

		rng := rand.New(rand.NewSource(seed))
		w := hybridMatrix(rng, rows, cols, b, nm, int(pruned)%gridCols)
		// Sprinkle extra zeros over kept entries (padding slots in the
		// encoding), but never empty a whole block: drop at most one
		// survivor per matrix row, and only when the row keeps several.
		if zeros%2 == 1 {
			for r := 0; r < rows; r++ {
				nz := 0
				for c := 0; c < cols; c++ {
					if w.Data[r*cols+c] != 0 {
						nz++
					}
				}
				if nz < 2 {
					continue
				}
				victim := rng.Intn(nz)
				for c, seen := 0, 0; c < cols; c++ {
					if w.Data[r*cols+c] != 0 {
						if seen == victim {
							w.Data[r*cols+c] = 0
							break
						}
						seen++
					}
				}
			}
		}
		// Re-check balance: removing values may have emptied a block and
		// broken row balance, in which case EncodeCRISP must reject — that
		// is correct behaviour, not a failure.
		e, err := EncodeCRISP(w, b, nm)
		if err != nil {
			g := sparsity.NewBlockGrid(rows, cols, b)
			counts := sparsity.KeptBlocksPerRow(w, g)
			for _, c := range counts[1:] {
				if c != counts[0] {
					t.Skip("generator produced imbalanced rows; rejection is correct")
				}
			}
			t.Fatalf("balanced hybrid matrix rejected: %v", err)
		}
		if !tensor.Equal(e.Decode(), w, 0) {
			t.Fatal("Decode does not round-trip the encoded matrix")
		}
		p := e.Compile()
		if got, want := p.NNZ(), w.CountNonZero(); got != want {
			t.Fatalf("plan stores %d entries, matrix has %d non-zeros", got, want)
		}
		x := tensor.Randn(rng, 1, cols, 5)
		want := e.MatMul(x)
		if !tensor.Equal(p.MatMul(x), want, 0) {
			t.Fatal("compiled plan differs from slot-walking kernel")
		}
		dense := tensor.MatMul(w, x)
		if !tensor.Equal(want, dense, 1e-9) {
			t.Fatal("sparse SpMM differs from dense GEMM")
		}
	})
}
