package format

// Column-panel microkernels: the register-blocked inner loops of the
// blocked SpMM path (blocked.go). Each walks one output row's complete
// Col/Val span for a panel of 4 or 8 activation columns, keeping the panel
// accumulators in registers and storing each output element exactly once.
// Spans are walked four entries at a time so the per-entry work (index
// load, value load, address arithmetic, slice bounds) amortizes over
// 4×panel multiply-accumulates; a scalar remainder loop finishes ragged
// span tails.
//
// Bit-exactness contract: for every output element the additions happen in
// span order — acc_j += val[i]·b[col[i]][j] for i ascending — which is the
// scalar kernel's per-element order exactly (rowRange clears dst, then
// accumulates entries i in ascending order). Register blocking and entry
// unrolling change only where the partial sum lives between additions,
// never the sequence of floating-point operations, so every panel kernel
// is bit-identical to the scalar reference. The conformance suite
// (conformance_test.go) enforces this for every registered variant.

// spanPanel8 computes output columns [j0, j0+8) of one row: eight register
// accumulators walk the span [i0, i1) once, then store. n is the output
// row stride (the SpMM batch width).
func spanPanel8(dst, bd []float64, col []int32, val []float64, i0, i1, j0, n int) {
	var a0, a1, a2, a3, a4, a5, a6, a7 float64
	i := i0
	for ; i+3 < i1; i += 4 {
		v0, v1, v2, v3 := val[i], val[i+1], val[i+2], val[i+3]
		s0 := bd[int(col[i])*n+j0:]
		s1 := bd[int(col[i+1])*n+j0:]
		s2 := bd[int(col[i+2])*n+j0:]
		s3 := bd[int(col[i+3])*n+j0:]
		s0, s1, s2, s3 = s0[:8:8], s1[:8:8], s2[:8:8], s3[:8:8]
		a0 += v0 * s0[0]
		a0 += v1 * s1[0]
		a0 += v2 * s2[0]
		a0 += v3 * s3[0]
		a1 += v0 * s0[1]
		a1 += v1 * s1[1]
		a1 += v2 * s2[1]
		a1 += v3 * s3[1]
		a2 += v0 * s0[2]
		a2 += v1 * s1[2]
		a2 += v2 * s2[2]
		a2 += v3 * s3[2]
		a3 += v0 * s0[3]
		a3 += v1 * s1[3]
		a3 += v2 * s2[3]
		a3 += v3 * s3[3]
		a4 += v0 * s0[4]
		a4 += v1 * s1[4]
		a4 += v2 * s2[4]
		a4 += v3 * s3[4]
		a5 += v0 * s0[5]
		a5 += v1 * s1[5]
		a5 += v2 * s2[5]
		a5 += v3 * s3[5]
		a6 += v0 * s0[6]
		a6 += v1 * s1[6]
		a6 += v2 * s2[6]
		a6 += v3 * s3[6]
		a7 += v0 * s0[7]
		a7 += v1 * s1[7]
		a7 += v2 * s2[7]
		a7 += v3 * s3[7]
	}
	for ; i < i1; i++ {
		v := val[i]
		s := bd[int(col[i])*n+j0:]
		s = s[:8:8]
		a0 += v * s[0]
		a1 += v * s[1]
		a2 += v * s[2]
		a3 += v * s[3]
		a4 += v * s[4]
		a5 += v * s[5]
		a6 += v * s[6]
		a7 += v * s[7]
	}
	d := dst[j0:]
	d = d[:8:8]
	d[0], d[1], d[2], d[3] = a0, a1, a2, a3
	d[4], d[5], d[6], d[7] = a4, a5, a6, a7
}

// spanPanel4 is spanPanel8 at panel width four — the ragged-tail microkernel
// for batch widths that are not multiples of eight (and the whole kernel
// for widths in [4, 8)).
func spanPanel4(dst, bd []float64, col []int32, val []float64, i0, i1, j0, n int) {
	var a0, a1, a2, a3 float64
	i := i0
	for ; i+3 < i1; i += 4 {
		v0, v1, v2, v3 := val[i], val[i+1], val[i+2], val[i+3]
		s0 := bd[int(col[i])*n+j0:]
		s1 := bd[int(col[i+1])*n+j0:]
		s2 := bd[int(col[i+2])*n+j0:]
		s3 := bd[int(col[i+3])*n+j0:]
		s0, s1, s2, s3 = s0[:4:4], s1[:4:4], s2[:4:4], s3[:4:4]
		a0 += v0 * s0[0]
		a0 += v1 * s1[0]
		a0 += v2 * s2[0]
		a0 += v3 * s3[0]
		a1 += v0 * s0[1]
		a1 += v1 * s1[1]
		a1 += v2 * s2[1]
		a1 += v3 * s3[1]
		a2 += v0 * s0[2]
		a2 += v1 * s1[2]
		a2 += v2 * s2[2]
		a2 += v3 * s3[2]
		a3 += v0 * s0[3]
		a3 += v1 * s1[3]
		a3 += v2 * s2[3]
		a3 += v3 * s3[3]
	}
	for ; i < i1; i++ {
		v := val[i]
		s := bd[int(col[i])*n+j0:]
		s = s[:4:4]
		a0 += v * s[0]
		a1 += v * s[1]
		a2 += v * s[2]
		a3 += v * s[3]
	}
	d := dst[j0:]
	d = d[:4:4]
	d[0], d[1], d[2], d[3] = a0, a1, a2, a3
}

// spanPanelTail finishes the ragged column tail [j0, j1) with j1-j0 < 4,
// one register accumulator per column.
func spanPanelTail(dst, bd []float64, col []int32, val []float64, i0, i1, j0, j1, n int) {
	for j := j0; j < j1; j++ {
		var a float64
		for i := i0; i < i1; i++ {
			a += val[i] * bd[int(col[i])*n+j]
		}
		dst[j] = a
	}
}

// spanPanel8Slab is spanPanel8 for slab-bound plans: values gather from the
// shared universal-weight row instead of an owned Val span. BindSlab proved
// every gathered value equals the owned value bit-for-bit, so the result is
// unchanged.
func spanPanel8Slab(dst, bd []float64, col []int32, wrow []float64, i0, i1, j0, n int) {
	var a0, a1, a2, a3, a4, a5, a6, a7 float64
	i := i0
	for ; i+3 < i1; i += 4 {
		c0, c1, c2, c3 := int(col[i]), int(col[i+1]), int(col[i+2]), int(col[i+3])
		v0, v1, v2, v3 := wrow[c0], wrow[c1], wrow[c2], wrow[c3]
		s0 := bd[c0*n+j0:]
		s1 := bd[c1*n+j0:]
		s2 := bd[c2*n+j0:]
		s3 := bd[c3*n+j0:]
		s0, s1, s2, s3 = s0[:8:8], s1[:8:8], s2[:8:8], s3[:8:8]
		a0 += v0 * s0[0]
		a0 += v1 * s1[0]
		a0 += v2 * s2[0]
		a0 += v3 * s3[0]
		a1 += v0 * s0[1]
		a1 += v1 * s1[1]
		a1 += v2 * s2[1]
		a1 += v3 * s3[1]
		a2 += v0 * s0[2]
		a2 += v1 * s1[2]
		a2 += v2 * s2[2]
		a2 += v3 * s3[2]
		a3 += v0 * s0[3]
		a3 += v1 * s1[3]
		a3 += v2 * s2[3]
		a3 += v3 * s3[3]
		a4 += v0 * s0[4]
		a4 += v1 * s1[4]
		a4 += v2 * s2[4]
		a4 += v3 * s3[4]
		a5 += v0 * s0[5]
		a5 += v1 * s1[5]
		a5 += v2 * s2[5]
		a5 += v3 * s3[5]
		a6 += v0 * s0[6]
		a6 += v1 * s1[6]
		a6 += v2 * s2[6]
		a6 += v3 * s3[6]
		a7 += v0 * s0[7]
		a7 += v1 * s1[7]
		a7 += v2 * s2[7]
		a7 += v3 * s3[7]
	}
	for ; i < i1; i++ {
		c := int(col[i])
		v := wrow[c]
		s := bd[c*n+j0:]
		s = s[:8:8]
		a0 += v * s[0]
		a1 += v * s[1]
		a2 += v * s[2]
		a3 += v * s[3]
		a4 += v * s[4]
		a5 += v * s[5]
		a6 += v * s[6]
		a7 += v * s[7]
	}
	d := dst[j0:]
	d = d[:8:8]
	d[0], d[1], d[2], d[3] = a0, a1, a2, a3
	d[4], d[5], d[6], d[7] = a4, a5, a6, a7
}

// spanPanel4Slab is spanPanel4 with slab-gathered values.
func spanPanel4Slab(dst, bd []float64, col []int32, wrow []float64, i0, i1, j0, n int) {
	var a0, a1, a2, a3 float64
	for i := i0; i < i1; i++ {
		c := int(col[i])
		v := wrow[c]
		s := bd[c*n+j0:]
		s = s[:4:4]
		a0 += v * s[0]
		a1 += v * s[1]
		a2 += v * s[2]
		a3 += v * s[3]
	}
	d := dst[j0:]
	d = d[:4:4]
	d[0], d[1], d[2], d[3] = a0, a1, a2, a3
}

// spanPanelTailSlab is spanPanelTail with slab-gathered values.
func spanPanelTailSlab(dst, bd []float64, col []int32, wrow []float64, i0, i1, j0, j1, n int) {
	for j := j0; j < j1; j++ {
		var a float64
		for i := i0; i < i1; i++ {
			c := int(col[i])
			a += wrow[c] * bd[c*n+j]
		}
		dst[j] = a
	}
}

// quadMAC is the int8 SWAR panel microkernel: four packed accumulator words
// (eight activation columns) held in registers while one sign span's
// entries stream past, unrolled two entries per pass. Integer addition is
// exact, so register blocking cannot change the result; the walk order
// matches spanMAC's anyway. Returns the updated accumulators.
func quadMAC(packed []uint64, code []int8, col []int32, halfW, i0, i1, w0 int, neg bool, a0, a1, a2, a3 uint64) (uint64, uint64, uint64, uint64) {
	sign := int32(1)
	if neg {
		sign = -1
	}
	i := i0
	for ; i+1 < i1; i += 2 {
		w0v := uint64(sign * int32(code[i]))
		w1v := uint64(sign * int32(code[i+1]))
		s0 := packed[int(col[i])*halfW+w0:]
		s1 := packed[int(col[i+1])*halfW+w0:]
		s0, s1 = s0[:4:4], s1[:4:4]
		a0 += w0v * s0[0]
		a0 += w1v * s1[0]
		a1 += w0v * s0[1]
		a1 += w1v * s1[1]
		a2 += w0v * s0[2]
		a2 += w1v * s1[2]
		a3 += w0v * s0[3]
		a3 += w1v * s1[3]
	}
	for ; i < i1; i++ {
		wv := uint64(sign * int32(code[i]))
		s := packed[int(col[i])*halfW+w0:]
		s = s[:4:4]
		a0 += wv * s[0]
		a1 += wv * s[1]
		a2 += wv * s[2]
		a3 += wv * s[3]
	}
	return a0, a1, a2, a3
}

// monoMAC is quadMAC at panel width one — the tail kernel for the last
// packed words of a row when the width is not a multiple of four.
func monoMAC(packed []uint64, code []int8, col []int32, halfW, i0, i1, w0 int, neg bool, a0 uint64) uint64 {
	sign := int32(1)
	if neg {
		sign = -1
	}
	for i := i0; i < i1; i++ {
		a0 += uint64(sign*int32(code[i])) * packed[int(col[i])*halfW+w0]
	}
	return a0
}
