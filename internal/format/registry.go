package format

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
)

// Fingerprint returns an FNV-64a hash of the plan's complete identity:
// dimensions, row spans, column indices, and the exact bit pattern of every
// stored value. Two plans with equal fingerprints are (hash collisions
// aside) interchangeable — same shape, same non-zero layout, same values —
// so they compile to identical kernels and identical int8 codes. The
// fingerprint is invariant under BindSlab: binding never changes a value,
// only where it is stored.
func (p *Plan) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put32 := func(v int32) {
		binary.LittleEndian.PutUint32(buf[:4], uint32(v))
		h.Write(buf[:4])
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put32(int32(p.Rows))
	put32(int32(p.Cols))
	for _, v := range p.RowPtr {
		put32(v)
	}
	for r := 0; r < p.Rows; r++ {
		for i := p.RowPtr[r]; i < p.RowPtr[r+1]; i++ {
			put32(p.Col[i])
			put64(math.Float64bits(p.value(r, i)))
		}
	}
	return h.Sum64()
}

// plansEqual reports full structural and value equality, reading values
// through the slab-aware accessor so an owned plan compares equal to its
// slab-bound twin.
func plansEqual(a, b *Plan) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || len(a.Col) != len(b.Col) || len(a.RowPtr) != len(b.RowPtr) {
		return false
	}
	for i, v := range a.RowPtr {
		if b.RowPtr[i] != v {
			return false
		}
	}
	for r := 0; r < a.Rows; r++ {
		for i := a.RowPtr[r]; i < a.RowPtr[r+1]; i++ {
			if a.Col[i] != b.Col[i] || a.value(r, i) != b.value(r, i) {
				return false
			}
		}
	}
	return true
}

// Registry deduplicates compiled plans across engines: tenants whose class
// sets prune a layer identically compile byte-identical plans, and the
// registry makes them share one instance (and one cached int8 image)
// instead of each holding a private copy. Entries are reference-counted;
// an engine returns its references with Release when it is evicted, and an
// entry whose count reaches zero is dropped so the memory can be reclaimed.
// All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[uint64]*regEntry
}

type regEntry struct {
	plan     *Plan
	quant    *QuantPlan
	quantErr error
	refs     int
}

// NewRegistry returns an empty plan registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[uint64]*regEntry)}
}

// Intern registers p and returns the canonical instance for its content:
// p itself when it is the first of its kind, or the already-registered
// equal plan otherwise (p is then discarded by the caller and the shared
// instance's reference count grows). A fingerprint collision with a
// non-equal plan returns p untracked — the caller keeps a private copy and
// Release on it is a no-op, so collisions cost memory, never correctness.
func (reg *Registry) Intern(p *Plan) *Plan {
	fp := p.Fingerprint()
	reg.mu.Lock()
	defer reg.mu.Unlock()
	e := reg.entries[fp]
	if e == nil {
		reg.entries[fp] = &regEntry{plan: p, refs: 1}
		return p
	}
	if !plansEqual(e.plan, p) {
		return p
	}
	e.refs++
	return e.plan
}

// QuantFor returns the int8 image of a canonical plan, computing it once
// and caching it on the registry entry so every engine sharing the plan
// also shares its codes. Quantization is deterministic, so the cached image
// is exactly what each engine would have computed privately. An untracked
// plan (never interned, or a collision loser) quantizes privately.
func (reg *Registry) QuantFor(p *Plan) (*QuantPlan, error) {
	fp := p.Fingerprint()
	reg.mu.Lock()
	e := reg.entries[fp]
	if e == nil || e.plan != p {
		reg.mu.Unlock()
		return p.Quantize()
	}
	if e.quant == nil && e.quantErr == nil {
		e.quant, e.quantErr = p.Quantize()
	}
	q, err := e.quant, e.quantErr
	reg.mu.Unlock()
	return q, err
}

// Release returns one reference to the canonical plan p, dropping the
// entry (plan and cached int8 image) when the last reference goes. Passing
// a plan that is not the registered canonical instance — a collision loser,
// or a plan from another registry — is a safe no-op.
func (reg *Registry) Release(p *Plan) {
	fp := p.Fingerprint()
	reg.mu.Lock()
	defer reg.mu.Unlock()
	e := reg.entries[fp]
	if e == nil || e.plan != p {
		return
	}
	if e.refs--; e.refs <= 0 {
		delete(reg.entries, fp)
	}
}

// Stats reports the registry's resident state: distinct canonical plans,
// total outstanding references across them, and the owned bytes of the
// registered plans plus their cached int8 images (slab-backed value memory
// excluded, as everywhere).
func (reg *Registry) Stats() (plans, refs int, bytes int64) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, e := range reg.entries {
		plans++
		refs += e.refs
		bytes += e.plan.SizeBytes()
		if e.quant != nil {
			bytes += e.quant.SizeBytes()
		}
	}
	return plans, refs, bytes
}

// Len returns the number of distinct canonical plans currently registered.
func (reg *Registry) Len() int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return len(reg.entries)
}
