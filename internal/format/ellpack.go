package format

import "repro/internal/tensor"

// ellpackIndexBits is ITPACK/ELLPACK's fixed-width column-index storage.
const ellpackIndexBits = 16

// ELLPACK pads every row to the maximum row population and stores a dense
// rows×width index/value pair of arrays (the ITPACKV layout). Padding slots
// repeat a valid column index with a zero value.
type ELLPACK struct {
	Rows, Cols, Width int
	ColIdx            []int32   // rows × Width
	Val               []float64 // rows × Width
}

// EncodeELLPACK encodes the non-zeros of the dense matrix m.
func EncodeELLPACK(m *tensor.Tensor) *ELLPACK {
	rows, cols := checkMatrix(m)
	width := 0
	for r := 0; r < rows; r++ {
		n := 0
		for cc := 0; cc < cols; cc++ {
			if m.Data[r*cols+cc] != 0 {
				n++
			}
		}
		if n > width {
			width = n
		}
	}
	e := &ELLPACK{Rows: rows, Cols: cols, Width: width,
		ColIdx: make([]int32, rows*width), Val: make([]float64, rows*width)}
	for r := 0; r < rows; r++ {
		k := 0
		for cc := 0; cc < cols; cc++ {
			if v := m.Data[r*cols+cc]; v != 0 {
				e.ColIdx[r*width+k] = int32(cc)
				e.Val[r*width+k] = v
				k++
			}
		}
		for ; k < width; k++ {
			e.ColIdx[r*width+k] = 0 // padding: zero value at column 0
		}
	}
	return e
}

// Name implements Encoded.
func (e *ELLPACK) Name() string { return "ellpack" }

// MetadataBits implements Encoded: fixed 16-bit indices for every padded
// slot — the padding overhead the paper's Fig. 4 calls out.
func (e *ELLPACK) MetadataBits() int64 {
	return ELLPACKMetadataBits(e.Rows, e.Width)
}

// DataBits implements Encoded: padded slots carry values too.
func (e *ELLPACK) DataBits(valueBits int) int64 {
	return int64(e.Rows) * int64(e.Width) * int64(valueBits)
}

// Decode implements Encoded.
func (e *ELLPACK) Decode() *tensor.Tensor {
	out := tensor.New(e.Rows, e.Cols)
	for r := 0; r < e.Rows; r++ {
		for k := 0; k < e.Width; k++ {
			out.Data[r*e.Cols+int(e.ColIdx[r*e.Width+k])] += e.Val[r*e.Width+k]
		}
	}
	return out
}

// MatMul implements Encoded.
func (e *ELLPACK) MatMul(b *tensor.Tensor) *tensor.Tensor {
	_, n := checkSpMM(b, e.Cols)
	out := tensor.New(e.Rows, n)
	for r := 0; r < e.Rows; r++ {
		dst := out.Data[r*n : (r+1)*n]
		for k := 0; k < e.Width; k++ {
			v := e.Val[r*e.Width+k]
			if v == 0 {
				continue
			}
			src := b.Data[int(e.ColIdx[r*e.Width+k])*n : (int(e.ColIdx[r*e.Width+k])+1)*n]
			for j, bv := range src {
				dst[j] += v * bv
			}
		}
	}
	return out
}

// ELLPACKMetadataBits is the analytical model: every padded slot stores a
// 16-bit index.
func ELLPACKMetadataBits(rows, width int) int64 {
	return int64(rows) * int64(width) * ellpackIndexBits
}
