package format

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// hybridMatrix builds a random matrix satisfying both CRISP invariants:
// N:M within rows and a uniform number of kept blocks per block row.
func hybridMatrix(rng *rand.Rand, rows, cols, b int, nm sparsity.NM, prunedRanks int) *tensor.Tensor {
	scores := tensor.New(rows, cols)
	for i := range scores.Data {
		scores.Data[i] = math.Abs(rng.NormFloat64()) + 0.01
	}
	mask := tensor.New(rows, cols)
	sparsity.ApplyNM(mask, scores, nm)
	g := sparsity.NewBlockGrid(rows, cols, b)
	bs := sparsity.BlockScores(tensor.Mul(scores, mask), g)
	rcs := sparsity.RankColumns(bs)
	for i := 0; i < prunedRanks && i < len(rcs); i++ {
		sparsity.PruneRankColumn(mask, g, rcs[i])
	}
	w := tensor.Randn(rng, 1, rows, cols)
	w.MulInPlace(mask)
	// Ensure no accidental zeros among kept entries (mask determines structure).
	for i := range w.Data {
		if mask.Data[i] != 0 && w.Data[i] == 0 {
			w.Data[i] = 0.5
		}
	}
	return w
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := hybridMatrix(rng, 8, 16, 4, sparsity.NM{N: 2, M: 4}, 1)
	c := EncodeCSR(m)
	if !tensor.Equal(c.Decode(), m, 0) {
		t.Fatal("CSR decode mismatch")
	}
}

func TestELLPACKRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := hybridMatrix(rng, 8, 16, 4, sparsity.NM{N: 2, M: 4}, 1)
	e := EncodeELLPACK(m)
	if !tensor.Equal(e.Decode(), m, 0) {
		t.Fatal("ELLPACK decode mismatch")
	}
}

func TestELLPACKPadsRaggedRows(t *testing.T) {
	m := tensor.New(2, 4)
	m.Set(1, 0, 0)
	m.Set(2, 0, 1)
	m.Set(3, 0, 2)
	m.Set(4, 1, 3) // row 1 has a single non-zero
	e := EncodeELLPACK(m)
	if e.Width != 3 {
		t.Fatalf("width %d, want 3", e.Width)
	}
	if !tensor.Equal(e.Decode(), m, 0) {
		t.Fatal("ragged decode mismatch")
	}
	// Metadata charges all padded slots.
	if e.MetadataBits() != int64(2*3*16) {
		t.Fatalf("metadata bits %d", e.MetadataBits())
	}
}

func TestBlockedELLRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := hybridMatrix(rng, 8, 16, 4, sparsity.NM{N: 4, M: 4}, 2) // blocks only
	e, err := EncodeBlockedELL(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(e.Decode(), m, 0) {
		t.Fatal("BlockedELL decode mismatch")
	}
}

func TestBlockedELLRejectsImbalance(t *testing.T) {
	m := tensor.New(8, 8)
	m.Set(1, 0, 0) // block row 0 keeps 1 block, block row 1 keeps 0
	if _, err := EncodeBlockedELL(m, 4); err == nil {
		t.Fatal("imbalanced matrix accepted")
	}
}

func TestCRISPRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, nm := range []sparsity.NM{{N: 1, M: 4}, {N: 2, M: 4}, {N: 3, M: 4}} {
		m := hybridMatrix(rng, 12, 24, 4, nm, 2)
		e, err := EncodeCRISP(m, 4, nm)
		if err != nil {
			t.Fatalf("%s: %v", nm, err)
		}
		if !tensor.Equal(e.Decode(), m, 0) {
			t.Fatalf("%s: CRISP decode mismatch", nm)
		}
	}
}

func TestCRISPRejectsViolations(t *testing.T) {
	dense := tensor.Full(1, 8, 8)
	if _, err := EncodeCRISP(dense, 4, sparsity.NM{N: 2, M: 4}); err == nil {
		t.Fatal("dense matrix accepted as 2:4")
	}
	if _, err := EncodeCRISP(tensor.New(8, 8), 6, sparsity.NM{N: 2, M: 4}); err == nil {
		t.Fatal("B not multiple of M accepted")
	}
}

func TestSpMMMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nm := sparsity.NM{N: 2, M: 4}
	m := hybridMatrix(rng, 8, 16, 4, nm, 1)
	x := tensor.Randn(rng, 1, 16, 5)
	want := tensor.MatMul(m, x)

	encs := []Encoded{EncodeCSR(m), EncodeELLPACK(m)}
	if be, err := EncodeBlockedELL(m, 4); err == nil {
		encs = append(encs, be)
	} else {
		t.Fatal(err)
	}
	if ce, err := EncodeCRISP(m, 4, nm); err == nil {
		encs = append(encs, ce)
	} else {
		t.Fatal(err)
	}
	for _, e := range encs {
		got := e.MatMul(x)
		if !tensor.Equal(got, want, 1e-9) {
			t.Fatalf("%s SpMM mismatch", e.Name())
		}
	}
}

func TestMetadataOrdering(t *testing.T) {
	// On a realistically sized hybrid matrix the paper's ordering must hold:
	// CRISP < CSR < ELLPACK metadata.
	rng := rand.New(rand.NewSource(6))
	nm := sparsity.NM{N: 2, M: 4}
	m := hybridMatrix(rng, 64, 256, 16, nm, 8) // half the block columns pruned
	csr := EncodeCSR(m)
	ell := EncodeELLPACK(m)
	cr, err := EncodeCRISP(m, 16, nm)
	if err != nil {
		t.Fatal(err)
	}
	if !(cr.MetadataBits() < csr.MetadataBits()) {
		t.Fatalf("CRISP %d not < CSR %d", cr.MetadataBits(), csr.MetadataBits())
	}
	if !(csr.MetadataBits() < ell.MetadataBits()) {
		t.Fatalf("CSR %d not < ELLPACK %d", csr.MetadataBits(), ell.MetadataBits())
	}
	// Overhead ratios in the paper's ballpark (≈5× and ≈7×): accept 3–10×.
	csrRatio := float64(csr.MetadataBits()) / float64(cr.MetadataBits())
	ellRatio := float64(ell.MetadataBits()) / float64(cr.MetadataBits())
	if csrRatio < 2.5 || csrRatio > 12 {
		t.Fatalf("CSR/CRISP ratio %.2f outside plausible band", csrRatio)
	}
	if ellRatio < csrRatio {
		t.Fatalf("ELLPACK ratio %.2f below CSR ratio %.2f", ellRatio, csrRatio)
	}
}

func TestAnalyticalModelsMatchEncoders(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nm := sparsity.NM{N: 2, M: 4}
	rows, cols, b := 16, 32, 4
	m := hybridMatrix(rng, rows, cols, b, nm, 3)
	csr := EncodeCSR(m)
	if got, want := csr.MetadataBits(), CSRMetadataBits(rows, cols, csr.NNZ()); got != want {
		t.Fatalf("CSR analytical %d vs encoder %d", want, got)
	}
	ell := EncodeELLPACK(m)
	if got, want := ell.MetadataBits(), ELLPACKMetadataBits(rows, ell.Width); got != want {
		t.Fatalf("ELLPACK analytical %d vs encoder %d", want, got)
	}
	cr, err := EncodeCRISP(m, b, nm)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cr.MetadataBits(), CRISPMetadataBits(rows, cols, b, cr.KeptPerRow, nm); got != want {
		t.Fatalf("CRISP analytical %d vs encoder %d", want, got)
	}
}

// Property: decode ∘ encode is the identity for every format on random
// hybrid matrices.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, ranksRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nm := sparsity.NM{N: int(nRaw)%3 + 1, M: 4}
		ranks := int(ranksRaw) % 3
		m := hybridMatrix(rng, 8, 16, 4, nm, ranks)
		if !tensor.Equal(EncodeCSR(m).Decode(), m, 0) {
			return false
		}
		if !tensor.Equal(EncodeELLPACK(m).Decode(), m, 0) {
			return false
		}
		be, err := EncodeBlockedELL(m, 4)
		if err != nil || !tensor.Equal(be.Decode(), m, 0) {
			return false
		}
		ce, err := EncodeCRISP(m, 4, nm)
		if err != nil || !tensor.Equal(ce.Decode(), m, 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Fatalf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBSRRoundTripAndSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Unbalanced matrix: BSR must handle it (BlockedELL would refuse).
	m := tensor.New(8, 16)
	m.Set(1.5, 0, 0)
	m.Set(-2, 1, 3)
	m.Set(3, 5, 9)
	m.Set(0.5, 7, 15)
	e := EncodeBSR(m, 4)
	if !tensor.Equal(e.Decode(), m, 0) {
		t.Fatal("BSR decode mismatch")
	}
	x := tensor.Randn(rng, 1, 16, 5)
	if !tensor.Equal(e.MatMul(x), tensor.MatMul(m, x), 1e-9) {
		t.Fatal("BSR SpMM mismatch")
	}
}

func TestBSRVsBlockedELLMetadata(t *testing.T) {
	// On a balanced matrix both encode the same blocks, but BSR pays the
	// row-pointer array — the cost CRISP's uniform structure removes.
	rng := rand.New(rand.NewSource(9))
	m := hybridMatrix(rng, 16, 32, 4, sparsity.NM{N: 4, M: 4}, 3)
	be, err := EncodeBlockedELL(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	bsr := EncodeBSR(m, 4)
	if bsr.MetadataBits() <= be.MetadataBits() {
		t.Fatalf("BSR metadata %d should exceed BlockedELL %d", bsr.MetadataBits(), be.MetadataBits())
	}
	if !tensor.Equal(bsr.Decode(), be.Decode(), 0) {
		t.Fatal("formats disagree on content")
	}
}

func TestBSRAnalyticalMatchesEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := hybridMatrix(rng, 16, 32, 4, sparsity.NM{N: 2, M: 4}, 2)
	e := EncodeBSR(m, 4)
	g := sparsity.NewBlockGrid(16, 32, 4)
	want := BSRMetadataBits(g.GridRows(), g.GridCols(), len(e.BlockCol))
	if e.MetadataBits() != want {
		t.Fatalf("analytical %d vs encoder %d", want, e.MetadataBits())
	}
}
