package format

import (
	"fmt"

	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// CRISPFormat is the paper's hybrid encoding: Blocked-ELLPACK block-column
// indices for the coarse structure plus, inside every kept block, exactly N
// value slots per group of M columns, each tagged with a ⌈log2 M⌉-bit
// intra-group offset. Groups with fewer than N survivors pad with
// (offset 0, value 0) slots — the rigid layout the activation-select
// multiplexers in CRISP-STC consume directly.
type CRISPFormat struct {
	Rows, Cols, B int
	NM            sparsity.NM
	KeptPerRow    int
	// BlockCols lists kept block columns per block row (gridRows × KeptPerRow).
	BlockCols []int32
	// Offsets holds one intra-group offset per stored slot.
	Offsets []uint8
	// Val holds the slot values in the same order.
	Val []float64

	// starts caches the per-block-row slot prefix for MatMul's parallel
	// fan-out; EncodeCRISP fills it, and MatMul rebuilds it when absent
	// (e.g. a hand-constructed literal).
	starts []int
}

// EncodeCRISP encodes m, which must satisfy both hybrid invariants: uniform
// kept blocks per block row, and the N:M pattern within rows. M must divide
// B so N:M groups never straddle blocks.
func EncodeCRISP(m *tensor.Tensor, b int, nm sparsity.NM) (*CRISPFormat, error) {
	if err := nm.Validate(); err != nil {
		return nil, err
	}
	if b%nm.M != 0 {
		return nil, fmt.Errorf("format: block size %d is not a multiple of M=%d", b, nm.M)
	}
	rows, cols := checkMatrix(m)
	if err := sparsity.VerifyNM(m, nm); err != nil {
		return nil, fmt.Errorf("format: matrix violates %s: %w", nm, err)
	}
	g := sparsity.NewBlockGrid(rows, cols, b)
	counts := sparsity.KeptBlocksPerRow(m, g)
	kept := 0
	if len(counts) > 0 {
		kept = counts[0]
	}
	for i, c := range counts {
		if c != kept {
			return nil, fmt.Errorf("format: crisp requires row balance; block row %d keeps %d, row 0 keeps %d", i, c, kept)
		}
	}
	e := &CRISPFormat{Rows: rows, Cols: cols, B: b, NM: nm, KeptPerRow: kept}
	for br := 0; br < g.GridRows(); br++ {
		for bc := 0; bc < g.GridCols(); bc++ {
			if !sparsity.BlockKept(m, g, br, bc) {
				continue
			}
			e.BlockCols = append(e.BlockCols, int32(bc))
			r0, r1, c0, c1 := g.Bounds(br, bc)
			for r := r0; r < r1; r++ {
				for g0 := c0; g0 < c1; g0 += nm.M {
					g1 := g0 + nm.M
					if g1 > c1 {
						g1 = c1
					}
					stored := 0
					for cc := g0; cc < g1 && stored < nm.N; cc++ {
						if v := m.Data[r*cols+cc]; v != 0 {
							e.Offsets = append(e.Offsets, uint8(cc-g0))
							e.Val = append(e.Val, v)
							stored++
						}
					}
					for ; stored < nm.N; stored++ {
						e.Offsets = append(e.Offsets, 0)
						e.Val = append(e.Val, 0)
					}
				}
			}
		}
	}
	e.starts = e.slotStarts(g)
	return e, nil
}

// Name implements Encoded.
func (e *CRISPFormat) Name() string { return "crisp" }

// grid reconstructs the block grid.
func (e *CRISPFormat) grid() sparsity.BlockGrid {
	return sparsity.NewBlockGrid(e.Rows, e.Cols, e.B)
}

// MetadataBits implements Encoded: block indices + per-slot offsets.
func (e *CRISPFormat) MetadataBits() int64 {
	g := e.grid()
	blockBits := BlockedELLMetadataBits(g.GridRows(), g.GridCols(), e.KeptPerRow)
	return blockBits + int64(len(e.Offsets))*int64(bitsFor(e.NM.M))
}

// DataBits implements Encoded: every slot (including padding) carries a
// value, as in the hardware layout.
func (e *CRISPFormat) DataBits(valueBits int) int64 {
	return int64(len(e.Val)) * int64(valueBits)
}

// Decode implements Encoded.
func (e *CRISPFormat) Decode() *tensor.Tensor {
	out := tensor.New(e.Rows, e.Cols)
	g := e.grid()
	si := 0
	for br := 0; br < g.GridRows(); br++ {
		for k := 0; k < e.KeptPerRow; k++ {
			bc := int(e.BlockCols[br*e.KeptPerRow+k])
			r0, r1, c0, c1 := g.Bounds(br, bc)
			for r := r0; r < r1; r++ {
				for g0 := c0; g0 < c1; g0 += e.NM.M {
					for s := 0; s < e.NM.N; s++ {
						// Padding slots add zero; real slots write their value.
						out.Data[r*e.Cols+g0+int(e.Offsets[si])] += e.Val[si]
						si++
					}
				}
			}
		}
	}
	return out
}

// slotStarts returns the index into Val/Offsets where each block row's
// slots begin (length gridRows+1), so MatMul can give each worker an
// independent starting slot. Slot counts follow from the grid geometry
// alone; the result is cached on the encoding.
func (e *CRISPFormat) slotStarts(g sparsity.BlockGrid) []int {
	starts := make([]int, g.GridRows()+1)
	for br := 0; br < g.GridRows(); br++ {
		slots := 0
		for k := 0; k < e.KeptPerRow; k++ {
			bc := int(e.BlockCols[br*e.KeptPerRow+k])
			r0, r1, c0, c1 := g.Bounds(br, bc)
			groups := ((c1 - c0) + e.NM.M - 1) / e.NM.M
			slots += (r1 - r0) * groups * e.NM.N
		}
		starts[br+1] = starts[br] + slots
	}
	return starts
}

// MatMul implements Encoded: the software analogue of the accelerator's
// offset-driven activation selection. Block rows are independent, so large
// problems (batched inference) fan out across GOMAXPROCS workers with
// bit-identical results.
func (e *CRISPFormat) MatMul(b *tensor.Tensor) *tensor.Tensor {
	_, n := checkSpMM(b, e.Cols)
	out := tensor.New(e.Rows, n)
	g := e.grid()
	starts := e.starts
	if starts == nil {
		starts = e.slotStarts(g)
	}
	parallelRows(g.GridRows(), len(e.Val)*n, func(br0, br1 int) {
		for br := br0; br < br1; br++ {
			si := starts[br]
			for k := 0; k < e.KeptPerRow; k++ {
				bc := int(e.BlockCols[br*e.KeptPerRow+k])
				r0, r1, c0, c1 := g.Bounds(br, bc)
				for r := r0; r < r1; r++ {
					dst := out.Data[r*n : (r+1)*n]
					for g0 := c0; g0 < c1; g0 += e.NM.M {
						for s := 0; s < e.NM.N; s++ {
							v := e.Val[si]
							col := g0 + int(e.Offsets[si])
							si++
							if v == 0 {
								continue
							}
							src := b.Data[col*n : (col+1)*n]
							for j, bv := range src {
								dst[j] += v * bv
							}
						}
					}
				}
			}
		}
	})
	return out
}

// CRISPMetadataBits is the analytical model for a rows×cols matrix with
// uniform keptPerRow blocks of size b and an N:M pattern inside kept blocks.
func CRISPMetadataBits(rows, cols, b, keptPerRow int, nm sparsity.NM) int64 {
	g := sparsity.NewBlockGrid(rows, cols, b)
	blockBits := BlockedELLMetadataBits(g.GridRows(), g.GridCols(), keptPerRow)
	// Slots: per kept block, B rows × (B/M) groups × N slots.
	slots := int64(g.GridRows()) * int64(keptPerRow) * int64(b) * int64(b/nm.M) * int64(nm.N)
	return blockBits + slots*int64(bitsFor(nm.M))
}
