package format

import (
	"fmt"
	"sync/atomic"

	"repro/internal/tensor"
)

// Implicit-im2col convolution: the conv-layer member of the blocked kernel
// family. The classic lowering materializes im2col(x) — a [InC·KH·KW,
// N·OH·OW] matrix that duplicates every input pixel KH·KW times — and then
// runs the generic SpMM over it. On conv-sized batches that write
// amplification dominates the whole forward pass: the im2col matrix is
// KH·KW× the input and far outgrows the cache, so the kernel's activation
// walks stream from DRAM. A ConvPlan fuses the two: each stored weight
// entry reads its (channel, kernel-position) tap straight from the input
// image, so the activation working set is the image itself — KH·KW×
// smaller, cache-resident — and the im2col matrix is never built.
//
// The fusion is only profitable because everything data-dependent is
// hoisted out of the hot loop at compile time. Decoding a plan column
// index into (channel, kh, kw) costs two integer divides — done per entry
// per sample it costs more than the multiply-accumulates it feeds (the
// first cut of this kernel measured ~2× slower than the lowering for
// exactly that reason). CompileConv therefore decodes every entry once
// into a tap table, and the per-geometry border clipping (which output
// rows/columns keep a given kernel position inside the image) collapses
// into a KH·KW-entry table computed once per input size and cached on the
// plan. What remains per (entry, sample) is a handful of adds and one
// multiply to form the slice bases, then pure contiguous AXPYs.
//
// Accumulation-order contract: for every output element the products are
// added in ascending span order — exactly the order MatMulInto's scalar
// kernel uses over an im2col matrix, so results match the lowered path
// element for element (|difference| = 0). The one representational
// exception: taps that fall in the zero padding are skipped here but
// contribute an explicit ±0.0 product in the lowered path, so an output
// whose every contribution is a signed zero can differ in the sign of its
// zero. Magnitudes, and therefore every downstream computation, are
// unaffected.

// ConvPlan is a Plan specialized for implicit-im2col convolution with a
// fixed kernel shape. It is immutable after CompileConv apart from the
// per-input-geometry clip cache, which is republished atomically and is
// safe for concurrent MatMulInto use.
type ConvPlan struct {
	p                   *Plan
	kh, kw, stride, pad int
	inC                 int
	taps                []convTap
	state               atomic.Pointer[convState]
}

// convTap is one stored weight entry's decoded position: the input channel
// and the flattened kernel position kh·KW+kw (the index into the
// per-geometry clip table).
type convTap struct {
	c  int32
	kk int32
}

// convClip is the border clipping for one kernel position (kh, kw) at one
// input geometry: the output rows [oy0, oy1) and columns [ox0, ox1) whose
// tap lands inside the image, and the tap's input offset at (oy0, ox0)
// within its channel. Taps outside the range read zero padding and
// contribute nothing.
type convClip struct {
	oy0, oy1 int32
	ox0, ox1 int32
	src0     int32
}

// convState is the per-input-geometry derived state, cached on the plan so
// steady-state forwards recompute nothing and allocate nothing.
type convState struct {
	inH, inW int
	oh, ow   int
	clips    []convClip
}

// CompileConv specializes the plan for convolution with the given kernel
// shape, decoding every entry's (channel, kernel-position) tap once. The
// plan's Cols must equal InC·KH·KW for some whole channel count.
func (p *Plan) CompileConv(kh, kw, stride, pad int) *ConvPlan {
	if kh <= 0 || kw <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("format: CompileConv bad kernel %dx%d stride %d pad %d", kh, kw, stride, pad))
	}
	khw := kh * kw
	if p.Cols%khw != 0 {
		panic(fmt.Sprintf("format: CompileConv plan cols %d not divisible by KH*KW = %d", p.Cols, khw))
	}
	cp := &ConvPlan{
		p: p, kh: kh, kw: kw, stride: stride, pad: pad,
		inC:  p.Cols / khw,
		taps: make([]convTap, len(p.Col)),
	}
	for i, cc := range p.Col {
		c := cc / int32(khw)
		cp.taps[i] = convTap{c: c, kk: cc - c*int32(khw)}
	}
	return cp
}

// Geom reports whether g matches the compiled kernel shape.
func (cp *ConvPlan) matches(g tensor.ConvGeom) bool {
	return g.KH == cp.kh && g.KW == cp.kw && g.Stride == cp.stride && g.Pad == cp.pad && g.InC == cp.inC
}

// clipRange returns the output range [o0, o1) along one axis whose tap
// index o·Stride + k − Pad lands inside [0, in).
func clipRange(k, pad, stride, in, outDim int) (int, int) {
	o0 := 0
	if pad > k {
		o0 = (pad - k + stride - 1) / stride
	}
	o1 := (in + pad - k + stride - 1) / stride
	if o1 > outDim {
		o1 = outDim
	}
	if o1 < o0 {
		o1 = o0
	}
	return o0, o1
}

// stateFor returns the clip table for the input geometry, computing and
// caching it on first sight of a new input size. The compute is
// deterministic, so a racing duplicate store publishes identical content.
func (cp *ConvPlan) stateFor(g tensor.ConvGeom) *convState {
	if st := cp.state.Load(); st != nil && st.inH == g.InH && st.inW == g.InW {
		return st
	}
	st := &convState{
		inH: g.InH, inW: g.InW,
		oh: g.OutH(), ow: g.OutW(),
		clips: make([]convClip, cp.kh*cp.kw),
	}
	for kh := 0; kh < cp.kh; kh++ {
		for kw := 0; kw < cp.kw; kw++ {
			oy0, oy1 := clipRange(kh, cp.pad, cp.stride, g.InH, st.oh)
			ox0, ox1 := clipRange(kw, cp.pad, cp.stride, g.InW, st.ow)
			iy0 := oy0*cp.stride + kh - cp.pad
			ix0 := ox0*cp.stride + kw - cp.pad
			st.clips[kh*cp.kw+kw] = convClip{
				oy0: int32(oy0), oy1: int32(oy1),
				ox0: int32(ox0), ox1: int32(ox1),
				src0: int32(iy0*g.InW + ix0),
			}
		}
	}
	cp.state.Store(st)
	return st
}

// MatMulInto computes the convolution of every sample in x ([batch, InC,
// InH, InW]) with the plan's weight rows into out ([Rows, batch·OH·OW],
// im2col output layout). Previous contents of out are overwritten.
func (cp *ConvPlan) MatMulInto(x *tensor.Tensor, g tensor.ConvGeom, out *tensor.Tensor) *tensor.Tensor {
	if !cp.matches(g) {
		panic(fmt.Sprintf("format: ConvPlan compiled for %dx%d stride %d pad %d inC %d, got %+v",
			cp.kh, cp.kw, cp.stride, cp.pad, cp.inC, g))
	}
	if len(x.Shape) != 4 || x.Shape[1] != g.InC || x.Shape[2] != g.InH || x.Shape[3] != g.InW {
		panic(fmt.Sprintf("format: ConvPlan input %v does not match geometry %+v", x.Shape, g))
	}
	st := cp.stateFor(g)
	batch := x.Shape[0]
	n := batch * st.oh * st.ow
	p := cp.p
	if len(out.Shape) != 2 || out.Shape[0] != p.Rows || out.Shape[1] != n {
		panic(fmt.Sprintf("format: ConvPlan output %v, want [%d %d]", out.Shape, p.Rows, n))
	}
	if p.NNZ()*n < spmmParallelThreshold || p.Rows < 2 {
		cp.convRows(x.Data, st, batch, out.Data, n, 0, p.Rows)
		return out
	}
	parallelRows(p.Rows, p.NNZ()*n, func(row0, row1 int) {
		cp.convRows(x.Data, st, batch, out.Data, n, row0, row1)
	})
	return out
}

// ConvMatMulInto is the compile-on-the-fly convenience form: it builds a
// throwaway ConvPlan for g's kernel shape and runs it. Steady-state
// callers (the inference engine) hold a compiled ConvPlan instead.
func (p *Plan) ConvMatMulInto(x *tensor.Tensor, g tensor.ConvGeom, out *tensor.Tensor) *tensor.Tensor {
	return p.CompileConv(g.KH, g.KW, g.Stride, g.Pad).MatMulInto(x, g, out)
}

// MatMulBatchLastInto is the batch-last form of the fused convolution: xT
// is the transposed input [InC·InH·InW, batch] (sample index innermost)
// and out is filled as [Rows·OH·OW, batch]. Batch-last is the layout the
// inference engine runs, because it turns every tap's contribution into a
// contiguous w·batch-element AXPY: in sample-major layout a tap touches w
// consecutive pixels of one sample (w ≤ OW, single digits on late-stage
// feature maps), so slice and loop overhead swamp the multiply-adds;
// batch-last fuses the clipped pixel run and the batch dimension into one
// run, amortizing that overhead across an order of magnitude more work.
// The per-element accumulation order is identical to MatMulInto's —
// ascending span order, entries in the outermost loop — so transposing the
// result back to sample-major reproduces it bit for bit.
func (cp *ConvPlan) MatMulBatchLastInto(xT *tensor.Tensor, g tensor.ConvGeom, batch int, out *tensor.Tensor) *tensor.Tensor {
	if !cp.matches(g) {
		panic(fmt.Sprintf("format: ConvPlan compiled for %dx%d stride %d pad %d inC %d, got %+v",
			cp.kh, cp.kw, cp.stride, cp.pad, cp.inC, g))
	}
	if len(xT.Shape) != 2 || xT.Shape[0] != g.InC*g.InH*g.InW || xT.Shape[1] != batch {
		panic(fmt.Sprintf("format: ConvPlan batch-last input %v, want [%d %d]", xT.Shape, g.InC*g.InH*g.InW, batch))
	}
	st := cp.stateFor(g)
	p := cp.p
	ohow := st.oh * st.ow
	if len(out.Shape) != 2 || out.Shape[0] != p.Rows*ohow || out.Shape[1] != batch {
		panic(fmt.Sprintf("format: ConvPlan batch-last output %v, want [%d %d]", out.Shape, p.Rows*ohow, batch))
	}
	if p.NNZ()*batch*ohow < spmmParallelThreshold || p.Rows < 2 {
		cp.convRowsBatchLast(xT.Data, st, batch, out.Data, 0, p.Rows)
		return out
	}
	parallelRows(p.Rows, p.NNZ()*batch*ohow, func(row0, row1 int) {
		cp.convRowsBatchLast(xT.Data, st, batch, out.Data, row0, row1)
	})
	return out
}

// convRowsBatchLast computes output rows [row0, row1) in batch-last
// layout. Entries stay outermost (the accumulation-order contract); the
// inner AXPY covers a whole clipped pixel run across every sample at once.
func (cp *ConvPlan) convRowsBatchLast(xd []float64, st *convState, batch int, out []float64, row0, row1 int) {
	p := cp.p
	chanSize := st.inH * st.inW
	ohow := st.oh * st.ow
	ow := st.ow
	rowStep := cp.stride * st.inW * batch
	s := cp.stride
	for r := row0; r < row1; r++ {
		dst := out[r*ohow*batch : (r+1)*ohow*batch]
		clear(dst)
		i0, i1 := int(p.RowPtr[r]), int(p.RowPtr[r+1])
		for i := i0; i < i1; i++ {
			t := cp.taps[i]
			cl := &st.clips[t.kk]
			w := int(cl.ox1 - cl.ox0)
			rows := int(cl.oy1 - cl.oy0)
			if w <= 0 || rows <= 0 {
				continue
			}
			v := p.value(r, int32(i))
			so := (int(t.c)*chanSize + int(cl.src0)) * batch
			do := (int(cl.oy0)*ow + int(cl.ox0)) * batch
			if s == 1 {
				// Stride-1 taps read w·batch consecutive values: one long
				// AXPY per clipped output row. Equal-length reslices let
				// the compiler drop the per-element bounds checks.
				wb := w * batch
				for k := 0; k < rows; k++ {
					xr := xd[so : so+wb]
					d := dst[do : do+wb]
					for j, xv := range xr {
						d[j] += v * xv
					}
					so += rowStep
					do += ow * batch
				}
			} else {
				// Strided taps are contiguous per pixel (batch elements);
				// step s pixels between output columns.
				sb := s * batch
				for k := 0; k < rows; k++ {
					soX := so
					for ox := 0; ox < w; ox++ {
						xr := xd[soX : soX+batch]
						d := dst[do+ox*batch:]
						d = d[:batch]
						for j, xv := range xr {
							d[j] += v * xv
						}
						soX += sb
					}
					so += rowStep
					do += ow * batch
				}
			}
		}
	}
}

// convRows computes output rows [row0, row1) of the fused convolution.
// Each output row is owned by one worker: it is zeroed once, then every
// span entry scatters its clipped, shifted input window into it, sample by
// sample. Entries walk in span order in the outermost loop, so each output
// element accumulates its products in ascending span order — the scalar
// SpMM's order over an im2col matrix — regardless of the sample/row
// nesting inside (distinct (b, oy, ox) never alias). The whole n-wide dst
// row (batch·OH·OW floats) is small enough to stay cache-resident across
// the span walk, while Col/Val/taps stream through exactly once per row.
func (cp *ConvPlan) convRows(xd []float64, st *convState, batch int, out []float64, n, row0, row1 int) {
	p := cp.p
	chanSize := st.inH * st.inW
	imgSize := cp.inC * chanSize
	ohow := st.oh * st.ow
	ow := st.ow
	rowStep := cp.stride * st.inW
	s := cp.stride
	for r := row0; r < row1; r++ {
		dst := out[r*n : (r+1)*n]
		clear(dst)
		i0, i1 := int(p.RowPtr[r]), int(p.RowPtr[r+1])
		for i := i0; i < i1; i++ {
			t := cp.taps[i]
			cl := &st.clips[t.kk]
			w := int(cl.ox1 - cl.ox0)
			rows := int(cl.oy1 - cl.oy0)
			if w <= 0 || rows <= 0 {
				continue
			}
			v := p.value(r, int32(i))
			srcBase := int(t.c)*chanSize + int(cl.src0)
			dstBase := int(cl.oy0)*ow + int(cl.ox0)
			if s == 1 {
				for b := 0; b < batch; b++ {
					bd := dst[b*ohow:]
					img := xd[b*imgSize:]
					so, do := srcBase, dstBase
					for k := 0; k < rows; k++ {
						// Equal-length reslices let the compiler drop the
						// per-element bounds checks from the AXPY.
						xr := img[so : so+w]
						d := bd[do : do+w]
						for j, xv := range xr {
							d[j] += v * xv
						}
						so += rowStep
						do += ow
					}
				}
			} else {
				for b := 0; b < batch; b++ {
					bd := dst[b*ohow:]
					img := xd[b*imgSize:]
					so, do := srcBase, dstBase
					for k := 0; k < rows; k++ {
						d := bd[do : do+w]
						for j := range d {
							d[j] += v * img[so+j*s]
						}
						so += rowStep
						do += ow
					}
				}
			}
		}
	}
}
