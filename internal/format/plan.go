package format

import (
	"fmt"

	"repro/internal/tensor"
)

// Plan is a compiled sparse-execution plan: the flat, kernel-ready form of
// an encoding. Where the storage formats keep the structure the hardware
// metadata model needs (block-column indices, per-slot intra-group offsets,
// padding slots), the plan keeps only what the SpMM inner loop needs:
//
//   - padding/zero slots are dropped entirely (no v == 0 branch),
//   - per-slot offsets are resolved to absolute int32 column indices
//     (no block-grid arithmetic in the inner loop),
//   - per-output-row slot ranges are precomputed (RowPtr), so each row is a
//     straight gather-multiply-accumulate over a contiguous Col/Val span.
//
// Compiling preserves the source kernel's per-row accumulation order
// exactly: for every output element the same non-zero products are added in
// the same order as the slot-walking (CRISP) or row-walking (CSR) kernel,
// so plan results are bit-identical to the storage-format kernels. The
// plan is immutable after compilation and safe for concurrent MatMul use.
type Plan struct {
	Rows, Cols int
	// RowPtr[r] .. RowPtr[r+1] is row r's span in Col/Val (len Rows+1).
	RowPtr []int32
	// Col holds absolute column indices, Val the matching non-zero values.
	Col []int32
	Val []float64

	// slab, when non-nil, replaces Val as the value source: the plan's kept
	// values live in a shared universal-weight slab and kernels gather them
	// by (row, Col) instead of by entry index. Set only by BindSlab, which
	// verifies bit-equality first (see slab.go).
	slab *ValueSlab

	// tiling configures the blocked kernel path (blocked.go); the zero
	// value selects the package defaults. Installed via SetTiling at
	// compile time — the plan's kernel-visible state stays immutable once
	// it sees concurrent use.
	tiling Tiling

	// uniform, when positive, records that every row span holds exactly
	// this many entries — proved by CRISPFormat.Compile from the N:M +
	// block metadata when no padding slot survives — enabling the
	// fixed-trip-count fast path (blockedTileUniform).
	uniform int
}

// NNZ returns the number of stored (all non-zero) entries. Col is populated
// in both owned and slab-bound plans, so it is the authoritative count.
func (p *Plan) NNZ() int { return len(p.Col) }

// UniformSpan returns the proved per-row entry count when every row span
// holds the same number of entries (the CRISP fixed-trip-count fast path),
// and 0 for ragged plans. Tiling pickers use it to cost the cheaper span
// walk.
func (p *Plan) UniformSpan() int { return p.uniform }

// Planner is implemented by encodings that compile directly into a Plan.
type Planner interface {
	Compile() *Plan
}

// CompilePlan compiles any encoding into an execution plan. CRISPFormat and
// CSR compile directly (preserving their kernels' accumulation order);
// other formats fall back through Decode → CSR, which yields the canonical
// column-major per-row order.
func CompilePlan(e Encoded) *Plan {
	if p, ok := e.(Planner); ok {
		return p.Compile()
	}
	return EncodeCSR(e.Decode()).Compile()
}

// Compile implements Planner: CSR is already row-pointer + column-index +
// value, so the plan is a direct image of the encoding.
func (c *CSR) Compile() *Plan {
	p := &Plan{
		Rows:   c.Rows,
		Cols:   c.Cols,
		RowPtr: make([]int32, len(c.RowPtr)),
		Col:    make([]int32, len(c.ColIdx)),
		Val:    make([]float64, len(c.Val)),
	}
	copy(p.RowPtr, c.RowPtr)
	copy(p.Col, c.ColIdx)
	copy(p.Val, c.Val)
	return p
}

// Compile implements Planner: the slot walk of CRISPFormat.MatMul is
// replayed once at compile time, emitting one (column, value) pair per
// non-zero slot into the owning output row. Padding slots (value 0)
// disappear; intra-group offsets are resolved against their block bounds to
// absolute column indices. Within each output row the emitted order is
// exactly the slot-walk order (kept blocks in stored order, groups
// left-to-right, slots in stored order), so MatMul over the plan
// accumulates bit-identically to the slot-walking kernel.
func (e *CRISPFormat) Compile() *Plan {
	g := e.grid()
	p := &Plan{Rows: e.Rows, Cols: e.Cols, RowPtr: make([]int32, e.Rows+1)}

	// Pass 1: count non-zero slots per output row.
	walk := func(visit func(r int, col int32, v float64)) {
		si := 0
		for br := 0; br < g.GridRows(); br++ {
			for k := 0; k < e.KeptPerRow; k++ {
				bc := int(e.BlockCols[br*e.KeptPerRow+k])
				r0, r1, c0, c1 := g.Bounds(br, bc)
				for r := r0; r < r1; r++ {
					for g0 := c0; g0 < c1; g0 += e.NM.M {
						for s := 0; s < e.NM.N; s++ {
							if v := e.Val[si]; v != 0 {
								visit(r, int32(g0+int(e.Offsets[si])), v)
							}
							si++
						}
					}
				}
			}
		}
	}
	walk(func(r int, _ int32, _ float64) { p.RowPtr[r+1]++ })
	for r := 0; r < e.Rows; r++ {
		p.RowPtr[r+1] += p.RowPtr[r]
	}

	// Pass 2: fill, using a moving cursor per row.
	p.Col = make([]int32, p.RowPtr[e.Rows])
	p.Val = make([]float64, p.RowPtr[e.Rows])
	next := make([]int32, e.Rows)
	copy(next, p.RowPtr[:e.Rows])
	walk(func(r int, col int32, v float64) {
		p.Col[next[r]] = col
		p.Val[next[r]] = v
		next[r]++
	})

	// The N:M + block-column layout stores the same slot count for every
	// row of a kept block; when no padding slot survives the compile (no
	// dropped zeros), every row span is therefore the same width. Proving
	// that here lets the blocked kernels run the fixed-trip-count,
	// RowPtr-free fast path (blockedTileUniform). One O(Rows) scan over
	// the already-built RowPtr is the cheapest sound check — it also
	// catches layouts the grid arithmetic alone couldn't prove.
	if e.Rows > 0 {
		u := int(p.RowPtr[1])
		for r := 1; r < e.Rows; r++ {
			if int(p.RowPtr[r+1])-int(p.RowPtr[r]) != u {
				u = 0
				break
			}
		}
		if u > 0 {
			p.uniform = u
		}
	}
	return p
}

// MatMul computes Plan · B for a dense Cols×n matrix B into a new tensor.
func (p *Plan) MatMul(b *tensor.Tensor) *tensor.Tensor {
	_, n := checkSpMM(b, p.Cols)
	out := tensor.New(p.Rows, n)
	p.matmul(b, out, n)
	return out
}

// MatMulInto computes Plan · B into out, which must be a rank-2 Rows×n
// tensor; its previous contents are overwritten (callers may hand the plan
// an uninitialized arena buffer). Returns out.
func (p *Plan) MatMulInto(b, out *tensor.Tensor) *tensor.Tensor {
	_, n := checkSpMM(b, p.Cols)
	if len(out.Shape) != 2 || out.Shape[0] != p.Rows || out.Shape[1] != n {
		panic(fmt.Sprintf("format: MatMulInto output %v, want [%d %d]", out.Shape, p.Rows, n))
	}
	p.matmul(b, out, n)
	return out
}

// matmul is the plan kernel. Batch widths of panelMin and up take the
// register-blocked, cache-tiled path (blocked.go) when the activation
// matrix is cache-resident (blockedAuto) or the caller installed an
// explicit tiling; streaming-sized activations — and plans opting out via
// Tiling.Scalar — run the scalar reference kernel, whose contiguous
// full-width row walks win above the cache budget (see blockedActBudget).
// Both produce bit-identical output (see microkernel.go). The
// single-sample path calls rowRange directly — routing it through a
// closure would heap-allocate the closure on every SpMM call, because the
// worker pool's task channel makes it escape — and only batch-scale
// problems pay for the fan-out wrapper.
func (p *Plan) matmul(b, out *tensor.Tensor, n int) {
	if n >= panelMin && !p.tiling.Scalar && (p.tiling.explicit() || blockedAuto(p.Cols, n)) {
		p.matmulBlocked(b, out, n)
		return
	}
	// Branches (not a method value) keep the serial path allocation-free:
	// a bound method value would escape through the pool's task channel.
	if p.NNZ()*n < spmmParallelThreshold || p.Rows < 2 {
		if p.slab != nil {
			p.rowRangeSlab(b, out, n, 0, p.Rows)
		} else {
			p.rowRange(b, out, n, 0, p.Rows)
		}
		return
	}
	if p.slab != nil {
		parallelRows(p.Rows, p.NNZ()*n, func(row0, row1 int) {
			p.rowRangeSlab(b, out, n, row0, row1)
		})
		return
	}
	parallelRows(p.Rows, p.NNZ()*n, func(row0, row1 int) {
		p.rowRange(b, out, n, row0, row1)
	})
}

// rowRange computes output rows [row0, row1). Each row is zeroed and
// accumulated by exactly one worker, walking its Col/Val span in storage
// order — the same per-element addition sequence as the source encoding's
// kernel. Rows are unrolled four entries at a time purely to cut dst
// loads/stores; the per-element additions stay in the same order
// ((((d+v0*s0)+v1*s1)+...)), so results remain bit-identical to the
// one-entry-at-a-time loop.
func (p *Plan) rowRange(b, out *tensor.Tensor, n, row0, row1 int) {
	bd := b.Data
	for r := row0; r < row1; r++ {
		dst := out.Data[r*n : (r+1)*n]
		clear(dst)
		i := int(p.RowPtr[r])
		end := int(p.RowPtr[r+1])
		for ; i+3 < end; i += 4 {
			v0, v1, v2, v3 := p.Val[i], p.Val[i+1], p.Val[i+2], p.Val[i+3]
			s0 := bd[int(p.Col[i])*n : int(p.Col[i])*n+n]
			s1 := bd[int(p.Col[i+1])*n : int(p.Col[i+1])*n+n]
			s2 := bd[int(p.Col[i+2])*n : int(p.Col[i+2])*n+n]
			s3 := bd[int(p.Col[i+3])*n : int(p.Col[i+3])*n+n]
			for j, b0 := range s0 {
				a := dst[j] + v0*b0
				a += v1 * s1[j]
				a += v2 * s2[j]
				a += v3 * s3[j]
				dst[j] = a
			}
		}
		for ; i < end; i++ {
			v := p.Val[i]
			src := bd[int(p.Col[i])*n : (int(p.Col[i])+1)*n]
			for j, bv := range src {
				dst[j] += v * bv
			}
		}
	}
}
