package format

import "repro/internal/tensor"

// CSR is the compressed-sparse-row encoding: row pointers plus one column
// index per non-zero.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Val        []float64
}

// EncodeCSR encodes the non-zeros of the dense matrix m.
func EncodeCSR(m *tensor.Tensor) *CSR {
	rows, cols := checkMatrix(m)
	c := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for r := 0; r < rows; r++ {
		for cc := 0; cc < cols; cc++ {
			if v := m.Data[r*cols+cc]; v != 0 {
				c.ColIdx = append(c.ColIdx, int32(cc))
				c.Val = append(c.Val, v)
			}
		}
		c.RowPtr[r+1] = int32(len(c.ColIdx))
	}
	return c
}

// Name implements Encoded.
func (c *CSR) Name() string { return "csr" }

// NNZ returns the stored non-zero count.
func (c *CSR) NNZ() int { return len(c.Val) }

// MetadataBits implements Encoded: per-nnz column indices at ⌈log2 cols⌉
// bits plus 32-bit row pointers.
func (c *CSR) MetadataBits() int64 {
	return CSRMetadataBits(c.Rows, c.Cols, len(c.Val))
}

// DataBits implements Encoded.
func (c *CSR) DataBits(valueBits int) int64 { return int64(len(c.Val)) * int64(valueBits) }

// Decode implements Encoded.
func (c *CSR) Decode() *tensor.Tensor {
	out := tensor.New(c.Rows, c.Cols)
	for r := 0; r < c.Rows; r++ {
		for i := c.RowPtr[r]; i < c.RowPtr[r+1]; i++ {
			out.Data[r*c.Cols+int(c.ColIdx[i])] = c.Val[i]
		}
	}
	return out
}

// MatMul implements Encoded. Rows are independent, so large problems
// (batched inference) fan out across GOMAXPROCS workers with bit-identical
// results.
func (c *CSR) MatMul(b *tensor.Tensor) *tensor.Tensor {
	_, n := checkSpMM(b, c.Cols)
	out := tensor.New(c.Rows, n)
	parallelRows(c.Rows, len(c.Val)*n, func(row0, row1 int) {
		for r := row0; r < row1; r++ {
			dst := out.Data[r*n : (r+1)*n]
			for i := c.RowPtr[r]; i < c.RowPtr[r+1]; i++ {
				v := c.Val[i]
				src := b.Data[int(c.ColIdx[i])*n : (int(c.ColIdx[i])+1)*n]
				for j, bv := range src {
					dst[j] += v * bv
				}
			}
		}
	})
	return out
}

// CSRMetadataBits is the analytical model for a rows×cols matrix with nnz
// non-zeros.
func CSRMetadataBits(rows, cols, nnz int) int64 {
	return int64(nnz)*int64(bitsFor(cols)) + int64(rows+1)*32
}
