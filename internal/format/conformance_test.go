package format

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// Kernel conformance/differential harness. Every kernel variant enrolled in
// KernelVariants — and the internal microkernel fallbacks the public
// dispatch cannot force — runs against the scalar reference kernel over a
// shape grid chosen to hit every structural edge: ragged row/column tiles,
// batch widths straddling the 8/4/1-column panels, empty rows, all-padding
// CRISP spans, uniform-span CRISP plans (the fixed-trip-count fast path)
// and slab-bound plans. Float results must be bit-identical; int8 results
// accumulate in exact integer arithmetic, so they must be bit-identical
// under any tiling too.

// bitIdentical reports whether two rank-2 tensors hold exactly the same
// bit patterns (stricter than ==: distinguishes -0 from +0, NaN payloads).
func bitIdentical(t *testing.T, got, want *tensor.Tensor) bool {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("size mismatch: %v vs %v", got.Shape, want.Shape)
	}
	for i := range got.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Errorf("bit mismatch at %d: got %x want %x", i,
				math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
			return false
		}
	}
	return true
}

// withTiling returns a shallow copy of the plan with the given tiling, so
// one compiled plan can run under every variant without mutating shared
// state mid-test.
func withTiling(p *Plan, t Tiling) *Plan {
	cp := *p
	cp.SetTiling(t)
	return &cp
}

// conformancePlans builds the plan corpus for one matrix: the CSR compile,
// and — when the matrix satisfies the hybrid invariants — the CRISP
// compile (which may prove uniform spans) plus its slab-bound twin.
func conformancePlans(t *testing.T, w *tensor.Tensor, blk int, nm sparsity.NM) map[string]*Plan {
	t.Helper()
	plans := map[string]*Plan{"csr": EncodeCSR(w).Compile()}
	if blk > 0 {
		e, err := EncodeCRISP(w, blk, nm)
		if err == nil {
			plans["crisp"] = e.Compile()
			slabbed := e.Compile()
			if slabbed.BindSlab(NewValueSlab(w)) {
				plans["crisp-slab"] = slabbed
			} else {
				t.Fatalf("BindSlab refused the plan's own source matrix")
			}
		}
	}
	return plans
}

// TestKernelConformance is the main differential sweep: every registry
// variant × every plan source × a shape/batch grid, all proven
// bit-identical to the scalar reference.
func TestKernelConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type shape struct {
		rows, cols int
		blk        int // 0 = CSR-only (arbitrary structure)
		emptyRows  bool
	}
	shapes := []shape{
		{rows: 1, cols: 8},
		{rows: 3, cols: 33, emptyRows: true},
		{rows: 64, cols: 128, blk: 4},
		{rows: 65, cols: 33, emptyRows: true},
		{rows: 8, cols: 16, blk: 4},
		{rows: 16, cols: 32, blk: 8},
	}
	batches := []int{1, 3, 4, 5, 8, 16, 17}
	for _, s := range shapes {
		var w *tensor.Tensor
		if s.blk > 0 {
			w = hybridMatrix(rng, s.rows, s.cols, s.blk, sparsity.NM{N: 2, M: 4}, 1)
		} else {
			w = tensor.Randn(rng, 3, s.rows, s.cols)
			for i := range w.Data {
				if rng.Float64() < 0.6 {
					w.Data[i] = 0
				}
			}
		}
		if s.emptyRows {
			for c := 0; c < s.cols; c++ {
				w.Data[(s.rows/2)*s.cols+c] = 0
			}
		}
		for src, p := range conformancePlans(t, w, s.blk, sparsity.NM{N: 2, M: 4}) {
			for _, n := range batches {
				x := tensor.Randn(rng, 1, s.cols, n)
				want := withTiling(p, Tiling{Scalar: true}).MatMul(x)
				for _, kv := range KernelVariants() {
					got := withTiling(p, kv.Tiling).MatMul(x)
					if !bitIdentical(t, got, want) {
						t.Fatalf("%s/%s: %dx%d n=%d differs from scalar reference",
							src, kv.Name, s.rows, s.cols, n)
					}
				}
				// The four-wide panel fallback and the uniform fast path at
				// forced panel width are internal (the dispatch only takes
				// them on narrow tail columns), so enroll them directly.
				got := tensor.New(p.Rows, n)
				for r := 0; r < p.Rows; r += 2 {
					p.blockedTile(x, got, n, r, min(r+2, p.Rows), 0, n, 4)
				}
				if !bitIdentical(t, got, want) {
					t.Fatalf("%s/blocked-4: %dx%d n=%d differs from scalar reference",
						src, s.rows, s.cols, n)
				}
			}
		}
	}
}

// TestUniformSpanFastPath pins the CRISP-metadata specialization: an
// encoding with no surviving padding slots must compile to a uniform plan
// (blockedTileUniform eligible), one with a dropped zero must not — and
// both must stay bit-identical to scalar under every variant.
func TestUniformSpanFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := hybridMatrix(rng, 16, 32, 4, sparsity.NM{N: 2, M: 4}, 1)
	e, err := EncodeCRISP(w, 4, sparsity.NM{N: 2, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := e.Compile()
	if p.uniform == 0 {
		t.Fatal("fully dense-slot CRISP encoding should compile to uniform spans")
	}
	x := tensor.Randn(rng, 1, 32, 9)
	want := withTiling(p, Tiling{Scalar: true}).MatMul(x)
	for _, kv := range KernelVariants() {
		if !bitIdentical(t, withTiling(p, kv.Tiling).MatMul(x), want) {
			t.Fatalf("%s: uniform plan differs from scalar reference", kv.Name)
		}
	}

	// Zero one stored value: the padding slot disappears from the plan, the
	// spans go ragged, and Compile must not claim uniformity.
	e.Val[0] = 0
	rp := e.Compile()
	if rp.uniform != 0 {
		t.Fatal("ragged spans misdetected as uniform")
	}
	want = withTiling(rp, Tiling{Scalar: true}).MatMul(x)
	for _, kv := range KernelVariants() {
		if !bitIdentical(t, withTiling(rp, kv.Tiling).MatMul(x), want) {
			t.Fatalf("%s: ragged plan differs from scalar reference", kv.Name)
		}
	}
}

// TestAllPaddingSpans drives the degenerate encoding whose every slot is a
// padding zero: the plan holds no entries at all, and every kernel variant
// must still produce an exact zero matrix of the right shape.
func TestAllPaddingSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := hybridMatrix(rng, 8, 16, 4, sparsity.NM{N: 2, M: 4}, 1)
	e, err := EncodeCRISP(w, 4, sparsity.NM{N: 2, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range e.Val {
		e.Val[i] = 0
	}
	p := e.Compile()
	if p.NNZ() != 0 {
		t.Fatalf("all-padding encoding compiled to %d entries", p.NNZ())
	}
	x := tensor.Randn(rng, 1, 16, 7)
	want := withTiling(p, Tiling{Scalar: true}).MatMul(x)
	for _, v := range want.Data {
		if v != 0 {
			t.Fatal("scalar reference nonzero on empty plan")
		}
	}
	for _, kv := range KernelVariants() {
		if !bitIdentical(t, withTiling(p, kv.Tiling).MatMul(x), want) {
			t.Fatalf("%s: empty plan differs from scalar reference", kv.Name)
		}
	}
}

// TestQuantKernelConformance proves the int8 SWAR kernel identical under
// scalar and blocked dispatch: integer accumulation is exact, so any
// tiling must reproduce the scalar result bit for bit.
func TestQuantKernelConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, s := range []struct{ rows, cols int }{{8, 16}, {16, 32}, {64, 128}} {
		w := hybridMatrix(rng, s.rows, s.cols, 4, sparsity.NM{N: 2, M: 4}, 1)
		q, err := EncodeCSR(w).Compile().Quantize()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 3, 4, 8, 16, 17} {
			x := tensor.Randn(rng, 1, s.cols, n)
			want := q.MatMul(x)
			for _, kv := range KernelVariants() {
				qq := *q
				qq.SetTiling(kv.Tiling)
				if !bitIdentical(t, qq.MatMul(x), want) {
					t.Fatalf("int8/%s: %dx%d n=%d differs from scalar SWAR",
						kv.Name, s.rows, s.cols, n)
				}
			}
		}
	}
}

// TestConvPlanDifferential proves the fused implicit-im2col kernels — both
// the sample-major reference layout and the batch-last engine layout —
// against the explicit lowering (Im2ColInto + scalar plan MatMulInto).
// Equality is |difference| = 0 via tensor.Equal: bit patterns may differ
// only in the sign of all-padding-tap zeros (see convplan.go).
func TestConvPlanDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	type geom struct {
		inC, kh, kw, stride, pad, inH, inW int
	}
	geoms := []geom{
		{inC: 3, kh: 3, kw: 3, stride: 1, pad: 1, inH: 8, inW: 8},
		{inC: 4, kh: 3, kw: 3, stride: 2, pad: 1, inH: 8, inW: 8},
		{inC: 2, kh: 1, kw: 1, stride: 1, pad: 0, inH: 5, inW: 7},
		{inC: 2, kh: 1, kw: 1, stride: 2, pad: 0, inH: 8, inW: 8},
		{inC: 1, kh: 5, kw: 3, stride: 1, pad: 2, inH: 7, inW: 5},
		{inC: 3, kh: 3, kw: 3, stride: 1, pad: 1, inH: 4, inW: 4},
	}
	for _, gm := range geoms {
		for _, batch := range []int{1, 3, 16} {
			rows := 6
			cols := gm.inC * gm.kh * gm.kw
			w := tensor.Randn(rng, 2, rows, cols)
			for i := range w.Data {
				if rng.Float64() < 0.5 {
					w.Data[i] = 0
				}
			}
			p := EncodeCSR(w).Compile()
			g := tensor.ConvGeom{InC: gm.inC, KH: gm.kh, KW: gm.kw,
				Stride: gm.stride, Pad: gm.pad, InH: gm.inH, InW: gm.inW}
			oh, ow := g.OutH(), g.OutW()
			x := tensor.Randn(rng, 1, batch, gm.inC, gm.inH, gm.inW)
			n := batch * oh * ow

			lowered := tensor.New(cols, n)
			tensor.Im2ColInto(x, g, lowered)
			want := withTiling(p, Tiling{Scalar: true}).MatMul(lowered)

			got := p.ConvMatMulInto(x, g, tensor.New(rows, n))
			if !tensor.Equal(got, want, 0) {
				t.Fatalf("fused conv %+v batch=%d differs from lowering", gm, batch)
			}

			cp := p.CompileConv(gm.kh, gm.kw, gm.stride, gm.pad)
			chw := gm.inC * gm.inH * gm.inW
			xT := tensor.TransposeInto(x.Reshape(batch, chw), tensor.New(chw, batch))
			outT := cp.MatMulBatchLastInto(xT, g, batch, tensor.New(rows*oh*ow, batch))
			// Batch-last output [r·p, b] transposes to [b, r·p]; the
			// lowering's layout is [r, b·p] — compare element-wise.
			back := tensor.TransposeInto(outT, tensor.New(batch, rows*oh*ow))
			for r := 0; r < rows; r++ {
				for b := 0; b < batch; b++ {
					for pix := 0; pix < oh*ow; pix++ {
						gotV := back.Data[b*rows*oh*ow+r*oh*ow+pix]
						wantV := want.Data[r*n+b*oh*ow+pix]
						if gotV != wantV {
							t.Fatalf("batch-last conv %+v batch=%d mismatch at r=%d b=%d pix=%d: got %v want %v",
								gm, batch, r, b, pix, gotV, wantV)
						}
					}
				}
			}
		}
	}
}
