package format

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// benchPlanShape builds a random CSR plan at the given shape/density and a
// matching activation, with the tiling forced as requested.
func benchPlanShape(rows, cols, n int, density float64, t Tiling) (*Plan, *tensor.Tensor, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(7))
	m := tensor.New(rows, cols)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = rng.NormFloat64()
		}
	}
	p := EncodeCSR(m).Compile()
	p.SetTiling(t)
	b := tensor.Randn(rng, 1, cols, n)
	return p, b, tensor.New(rows, n)
}

func BenchmarkKernelShapes(b *testing.B) {
	shapes := []struct {
		rows, cols, n int
		density       float64
	}{
		{512, 4096, 16, 0.10},
		{64, 576, 1024, 0.15},
		{128, 1152, 256, 0.15},
	}
	for _, sh := range shapes {
		for _, mode := range []string{"scalar", "blocked"} {
			t := Tiling{Scalar: mode == "scalar"}
			p, act, out := benchPlanShape(sh.rows, sh.cols, sh.n, sh.density, t)
			name := fmt.Sprintf("%dx%dx%d/%s", sh.rows, sh.cols, sh.n, mode)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p.MatMulInto(act, out)
				}
			})
		}
	}
}
