package format

import (
	"repro/internal/tensor"
)

// Tiling describes how the blocked SpMM kernels partition an output matrix
// into cache-sized tiles: RowTile output rows by ColTile activation columns
// per tile. Within a tile, column-panel microkernels (microkernel.go)
// process eight (falling back to four, then one) columns per row-span pass
// with the panel accumulators in registers.
//
// The zero value selects the package defaults below; accel.PickTiling
// chooses tile sizes from the tile simulator at plan-compile time and the
// inference engine installs them via SetTiling. Scalar forces the scalar
// reference kernel regardless of batch width (conformance, debugging).
type Tiling struct {
	RowTile, ColTile int
	Scalar           bool
}

// Default tile sizes, derived from the one cache-block constant shared with
// tensor.TransposeInto (tensor.CacheBlockF64, itself pinned to
// accel.CPUHW().CacheBlockF64() — see the accel tests): two cache blocks of
// output rows, and an activation panel of four cache blocks of columns, so
// one tile's output (RowTile × ColTile float64s = 64 KiB) plus the
// activation slice it gathers stay L2-resident while the row spans stream.
const (
	defaultRowTile = 2 * tensor.CacheBlockF64
	defaultColTile = 4 * tensor.CacheBlockF64
)

// panelMin is the batch width below which the blocked path does not apply:
// with fewer than four activation columns there is no panel to register-
// block, and the scalar kernel's single pass over the span is optimal.
const panelMin = 4

// blockedActBudget is the activation-matrix byte size up to which the
// panel kernels' column gathers stay cache-resident (≈ one L2) and the
// blocked path wins by cutting dst and accumulator traffic. Above it the
// gathers pay L2-miss/TLB latency on every span entry while the scalar
// kernel's full-width row walks ride the hardware prefetcher at stream
// bandwidth — measured 2× FASTER than panel gathers at conv-sized
// activations (Cols×n ≥ 4 MiB) on the reference machine. Auto dispatch
// (zero-value Tiling) therefore takes the blocked path only under this
// budget; accel.SimulateTiling models the same cliff as a cache-thrash
// penalty, so PickTiling reaches the same verdict from the cost model
// side. 1 MiB = 32 × CacheBlockF64² float64 blocks (tensor.CacheBlockF64).
const blockedActBudget = 1 << 20

// blockedPanelWidth is the widest column panel the microkernels compute in
// one pass (spanPanel8's eight register accumulators). Batches up to this
// width walk each row span exactly once with the destination held in
// registers — the regime where the blocked path beats the scalar kernel.
// Wider batches re-walk every span once per extra panel, and the repeated
// Col/Val streams measured slower than the scalar kernel's single pass
// from n≈12 on the reference machine (accel.SimulateTiling reproduces the
// crossover), so auto dispatch stops at one pass.
const blockedPanelWidth = 8

// blockedAuto reports whether auto dispatch (no explicit tiling) should
// take the blocked path for a Cols×n float64 activation: the batch must
// fit a single panel pass and the activation must be cache-resident.
func blockedAuto(cols, n int) bool {
	return n <= blockedPanelWidth && cols*n*8 <= blockedActBudget
}

// KernelVariant is one enrolled SpMM kernel configuration: a name and the
// Tiling that selects it through the public dispatch. The conformance
// harness (conformance_test.go) proves every variant bit-identical to the
// scalar reference over the full shape grid; the fuzz targets replay the
// same registry against fuzzer-built encodings.
type KernelVariant struct {
	Name   string
	Tiling Tiling
}

// KernelVariants enumerates the kernel configurations under the
// bit-exactness contract. A new dispatch mode is only considered shipped
// once it is listed here — enrollment is what subjects it to the
// conformance and fuzz harnesses. The tilings are chosen to force every
// structural case: the defaults, deliberately ragged tiles that misalign
// with the 8/4-column panels, single-row tiles, and one-column tiles that
// run entirely in the tail microkernel.
func KernelVariants() []KernelVariant {
	return []KernelVariant{
		{Name: "scalar", Tiling: Tiling{Scalar: true}},
		{Name: "auto", Tiling: Tiling{}},
		{Name: "blocked-default", Tiling: Tiling{RowTile: defaultRowTile, ColTile: defaultColTile}},
		{Name: "tiled-ragged", Tiling: Tiling{RowTile: 3, ColTile: 5}},
		{Name: "tiled-rows", Tiling: Tiling{RowTile: 1, ColTile: 1 << 20}},
		{Name: "tiled-cols", Tiling: Tiling{RowTile: 1 << 20, ColTile: 1}},
	}
}

// explicit reports whether the tiling was set explicitly (PickTiling or a
// caller choosing tile sizes) rather than left to auto dispatch.
func (t Tiling) explicit() bool { return t.RowTile > 0 || t.ColTile > 0 }

// SetTiling installs the tile sizes the blocked kernels use for this plan.
// Call at compile time, before the plan sees concurrent kernel use; results
// are bit-identical under every tiling (tiles partition the output, and
// each output element is still one in-order walk of its row span).
func (p *Plan) SetTiling(t Tiling) { p.tiling = t }

// Tiling returns the installed tiling (zero value = package defaults).
func (p *Plan) Tiling() Tiling { return p.tiling }

// SetTiling installs the tile sizes for the quantized blocked kernels.
// Quantize copies the source plan's tiling, so explicit calls are only
// needed to diverge from it.
func (q *QuantPlan) SetTiling(t Tiling) { q.tiling = t }

// Tiling returns the quantized plan's installed tiling.
func (q *QuantPlan) Tiling() Tiling { return q.tiling }

// clamped resolves the zero value to the defaults and clamps the tile sizes
// to the actual output extent rows×n.
func (t Tiling) clamped(rows, n int) Tiling {
	if t.RowTile <= 0 {
		t.RowTile = defaultRowTile
	}
	if t.ColTile <= 0 {
		t.ColTile = defaultColTile
	}
	if t.RowTile > rows {
		t.RowTile = rows
	}
	if t.ColTile > n {
		t.ColTile = n
	}
	return t
}

// matmulBlocked is the cache-tiled, register-blocked float kernel driver:
// the rows×n output is partitioned into RowTile×ColTile tiles, and tiles
// feed the persistent worker pool tile-by-tile (instead of the scalar
// path's row chunks). Every tile owns its output region exclusively, and
// each output element is produced by one in-order walk of its row span, so
// results are bit-identical to the scalar kernel for any tiling.
func (p *Plan) matmulBlocked(b, out *tensor.Tensor, n int) {
	t := p.tiling.clamped(p.Rows, n)
	cTiles := (n + t.ColTile - 1) / t.ColTile
	rTiles := (p.Rows + t.RowTile - 1) / t.RowTile
	tiles := rTiles * cTiles
	// The serial path repeats runTiles' loop inline rather than sharing a
	// closure with the parallel branch: a shared closure would escape
	// through the pool's task channel and cost sub-threshold calls a heap
	// allocation (see matmul).
	if p.NNZ()*n < spmmParallelThreshold || tiles < 2 {
		p.runTiles(b, out, n, t, cTiles, 0, tiles)
		return
	}
	parallelTiles(tiles, p.NNZ()*n, func(t0, t1 int) {
		p.runTiles(b, out, n, t, cTiles, t0, t1)
	})
}

// runTiles executes tiles [t0, t1) of the row-major tile grid.
func (p *Plan) runTiles(b, out *tensor.Tensor, n int, t Tiling, cTiles, t0, t1 int) {
	for ti := t0; ti < t1; ti++ {
		r0 := (ti / cTiles) * t.RowTile
		c0 := (ti % cTiles) * t.ColTile
		r1 := min(r0+t.RowTile, p.Rows)
		c1 := min(c0+t.ColTile, n)
		p.blockedTile(b, out, n, r0, r1, c0, c1, 8)
	}
}

// blockedTile computes output rows [row0, row1) × columns [c0, c1) with
// column-panel microkernels, selecting the CRISP uniform-span fast path
// when Compile proved one. maxPanel caps the panel width (production 8;
// the conformance suite forces 4 to exercise the fallback microkernel).
func (p *Plan) blockedTile(b, out *tensor.Tensor, n, row0, row1, c0, c1, maxPanel int) {
	switch {
	case p.slab != nil:
		p.blockedTileSlab(b, out, n, row0, row1, c0, c1, maxPanel)
	case p.uniform > 0:
		p.blockedTileUniform(b, out, n, row0, row1, c0, c1, maxPanel)
	default:
		bd := b.Data
		for r := row0; r < row1; r++ {
			i0, i1 := int(p.RowPtr[r]), int(p.RowPtr[r+1])
			dst := out.Data[r*n : (r+1)*n]
			j := c0
			if maxPanel >= 8 {
				for ; j+8 <= c1; j += 8 {
					spanPanel8(dst, bd, p.Col, p.Val, i0, i1, j, n)
				}
			}
			for ; j+4 <= c1; j += 4 {
				spanPanel4(dst, bd, p.Col, p.Val, i0, i1, j, n)
			}
			if j < c1 {
				spanPanelTail(dst, bd, p.Col, p.Val, i0, i1, j, c1, n)
			}
		}
	}
}

// blockedTileUniform is the CRISP-structure-specialized fast path: when the
// encoding's metadata proved uniform span widths (N:M + block layout with
// no padding slots → every row stores exactly `uniform` entries), row spans
// are addressed arithmetically — no RowPtr loads — and every panel pass
// runs the same fixed trip count.
func (p *Plan) blockedTileUniform(b, out *tensor.Tensor, n, row0, row1, c0, c1, maxPanel int) {
	bd := b.Data
	u := p.uniform
	i0 := row0 * u
	for r := row0; r < row1; r++ {
		i1 := i0 + u
		dst := out.Data[r*n : (r+1)*n]
		j := c0
		if maxPanel >= 8 {
			for ; j+8 <= c1; j += 8 {
				spanPanel8(dst, bd, p.Col, p.Val, i0, i1, j, n)
			}
		}
		for ; j+4 <= c1; j += 4 {
			spanPanel4(dst, bd, p.Col, p.Val, i0, i1, j, n)
		}
		if j < c1 {
			spanPanelTail(dst, bd, p.Col, p.Val, i0, i1, j, c1, n)
		}
		i0 = i1
	}
}

// blockedTileSlab is blockedTile for slab-bound plans: values gather from
// the shared universal-weight slab row by column index.
func (p *Plan) blockedTileSlab(b, out *tensor.Tensor, n, row0, row1, c0, c1, maxPanel int) {
	bd := b.Data
	w := p.slab.Data
	cols := p.slab.Cols
	for r := row0; r < row1; r++ {
		i0, i1 := int(p.RowPtr[r]), int(p.RowPtr[r+1])
		wrow := w[r*cols : (r+1)*cols]
		dst := out.Data[r*n : (r+1)*n]
		j := c0
		if maxPanel >= 8 {
			for ; j+8 <= c1; j += 8 {
				spanPanel8Slab(dst, bd, p.Col, wrow, i0, i1, j, n)
			}
		}
		for ; j+4 <= c1; j += 4 {
			spanPanel4Slab(dst, bd, p.Col, wrow, i0, i1, j, n)
		}
		if j < c1 {
			spanPanelTailSlab(dst, bd, p.Col, wrow, i0, i1, j, c1, n)
		}
	}
}

// matmulPackedBlocked is the quantized twin of matmulBlocked: the int8 SWAR
// kernel riding the blocked outer loops. Tiles partition output rows ×
// packed accumulator words (two columns per word); within a tile, quadMAC
// keeps four packed words — eight output columns — of both sign spans in
// registers, so the scratch accumulator slabs (AccP/AccN) are never
// touched. Integer accumulation is exact, so the result is identical to
// the scalar SWAR kernel under any tiling.
func (q *QuantPlan) matmulPackedBlocked(packed []uint64, colScale []float64, out *tensor.Tensor, n, halfW int) {
	t := q.tiling.clamped(q.Rows, n)
	wTile := (t.ColTile + 1) / 2 // tile width in packed words
	cTiles := (halfW + wTile - 1) / wTile
	rTiles := (q.Rows + t.RowTile - 1) / t.RowTile
	tiles := rTiles * cTiles
	if len(q.Code)*n < spmmParallelThreshold || tiles < 2 {
		q.runTilesPacked(packed, colScale, out, n, halfW, t.RowTile, wTile, cTiles, 0, tiles)
		return
	}
	parallelTiles(tiles, len(q.Code)*n, func(t0, t1 int) {
		q.runTilesPacked(packed, colScale, out, n, halfW, t.RowTile, wTile, cTiles, t0, t1)
	})
}

// runTilesPacked executes tiles [t0, t1) of the quantized tile grid.
func (q *QuantPlan) runTilesPacked(packed []uint64, colScale []float64, out *tensor.Tensor, n, halfW, rowTile, wTile, cTiles, t0, t1 int) {
	for ti := t0; ti < t1; ti++ {
		r0 := (ti / cTiles) * rowTile
		w0 := (ti % cTiles) * wTile
		r1 := min(r0+rowTile, q.Rows)
		w1 := min(w0+wTile, halfW)
		q.blockedTilePacked(packed, colScale, out, n, halfW, r0, r1, w0, w1)
	}
}

// blockedTilePacked computes output rows [row0, row1) × packed words
// [w0, w1): both sign spans accumulate into register panels, then one
// bias-correcting, dequantizing store per element recombines the lanes —
// the same store arithmetic as the scalar rowRange.
func (q *QuantPlan) blockedTilePacked(packed []uint64, colScale []float64, out *tensor.Tensor, n, halfW, row0, row1, w0, w1 int) {
	for r := row0; r < row1; r++ {
		pEnd := int(q.NegPtr[r])
		i0, i1 := int(q.RowPtr[r]), int(q.RowPtr[r+1])
		rs := q.RowScale[r]
		wsum := 128 * int64(q.rowSum[r])
		dst := out.Data[r*n : (r+1)*n]
		w := w0
		for ; w+4 <= w1; w += 4 {
			p0, p1, p2, p3 := quadMAC(packed, q.Code, q.Col, halfW, i0, pEnd, w, false, 0, 0, 0, 0)
			n0, n1, n2, n3 := quadMAC(packed, q.Code, q.Col, halfW, pEnd, i1, w, true, 0, 0, 0, 0)
			storePackedPair(dst, colScale, 2*w, n, p0, n0, wsum, rs)
			storePackedPair(dst, colScale, 2*w+2, n, p1, n1, wsum, rs)
			storePackedPair(dst, colScale, 2*w+4, n, p2, n2, wsum, rs)
			storePackedPair(dst, colScale, 2*w+6, n, p3, n3, wsum, rs)
		}
		for ; w < w1; w++ {
			ap := monoMAC(packed, q.Code, q.Col, halfW, i0, pEnd, w, false, 0)
			an := monoMAC(packed, q.Code, q.Col, halfW, pEnd, i1, w, true, 0)
			storePackedPair(dst, colScale, 2*w, n, ap, an, wsum, rs)
		}
	}
}

// storePackedPair dequantizes and stores the two columns of one packed
// accumulator word pair (positive span ap, negative span an), skipping the
// pad lane of an odd trailing column. The lane extraction and store math
// are exactly the scalar kernel's.
func storePackedPair(dst, colScale []float64, j, n int, ap, an uint64, wsum int64, rs float64) {
	lane := int64(ap&0xffffffff) - int64(an&0xffffffff)
	dst[j] = float64(lane-wsum) * rs * colScale[j]
	if j+1 < n {
		lane = int64(ap>>32) - int64(an>>32)
		dst[j+1] = float64(lane-wsum) * rs * colScale[j+1]
	}
}
