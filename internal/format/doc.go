// Package format implements the sparse-weight storage formats compared in
// the CRISP paper's Fig. 4: CSR, ELLPACK, Blocked-ELLPACK and the CRISP
// hybrid format (Blocked-ELLPACK block-column indices plus packed
// ⌈log2 M⌉-bit intra-group offsets for the N:M non-zeros).
//
// Each format has a real encoder (encode → decode round-trips the masked
// matrix, SpMM matches dense GEMM) and an analytical metadata-bit model used
// to evaluate full-size ImageNet layers without materializing them. The bit
// conventions follow common practice and are validated against the paper's
// reported ≈5×/≈7× CSR/ELLPACK overheads:
//
//   - CSR: one ⌈log2 cols⌉-bit column index per non-zero + 32-bit row
//     pointers.
//   - ELLPACK (ITPACK): rows padded to the maximum row population, 16-bit
//     column indices (the format's fixed-width index array).
//   - Blocked-ELLPACK: one ⌈log2 gridCols⌉-bit block-column index per kept
//     block.
//   - CRISP: Blocked-ELLPACK block indices + ⌈log2 M⌉ bits per kept N:M slot.
//
// # Execution plans
//
// The storage formats model what the hardware stores; executing them
// directly pays block-grid arithmetic, offset decoding and padding-slot
// branches on every SpMM. For software serving each encoding therefore
// compiles — once, via Compile/CompilePlan — into a Plan: a flat
// row-pointer / column-index / value layout with zero slots dropped, whose
// kernel is a straight gather-multiply-accumulate that accumulates in
// exactly the storage kernel's order (bit-identical results). Large SpMMs
// fan out over a persistent package-level worker pool (see parallelRows);
// the steady-state hot path spawns no goroutines and MatMulInto variants
// let callers supply recycled output buffers.
//
// # The blocked kernel family
//
// A compiled Plan dispatches among several kernel implementations of the
// same SpMM (blocked.go, microkernel.go):
//
//   - the scalar reference kernel: one pass per row span, full-batch-width
//     AXPY per entry (rowRange) — the semantics-defining implementation;
//   - register-blocked panel kernels: eight- and four-column panels whose
//     partial sums live in register accumulators across the whole span
//     (spanPanel8/spanPanel4, with slab-gather variants);
//   - a cache-tiled outer loop that feeds RowTile×ColTile output tiles to
//     the worker pool (matmulBlocked/runTiles);
//   - a CRISP-structure-specialized fast path for plans whose row spans
//     were proved uniform at compile time (blockedTileUniform, fixed trip
//     counts, no row-pointer loads); and
//   - the int8 SWAR kernel, whose packed integer accumulators ride the
//     same blocked outer loops under an explicit tiling.
//
// Which kernel runs is chosen per call: an explicit Tiling (SetTiling)
// pins the blocked path or the scalar path; the zero-value Tiling lets
// blockedAuto decide from the batch width and activation size (a single
// panel pass over a cache-resident activation is the blocked family's
// winning regime — see blockedPanelWidth and blockedActBudget). The
// simulator-backed picker in internal/accel (PickTiling) makes the same
// call from a cost model at plan-compile time.
//
// # Bit-exactness contract
//
// Every kernel variant must produce output bit-identical to the scalar
// reference: for each output element, floating-point products are added in
// ascending span (storage) order. Blocking, tiling, panel width, slab
// binding, parallel fan-out and quantized dispatch may change where
// partial sums live and which order output *elements* are produced in,
// but never the order of additions *within* an element. KernelVariants
// enrolls every dispatchable configuration in a registry; the conformance
// harness (conformance_test.go) proves each one bit-identical to the
// scalar reference across a geometry/batch grid, and FuzzBlockedMatMul
// replays the same differential check under fuzzer-chosen shapes,
// sparsity and values. New kernels join the family by adding a
// KernelVariant entry — enrollment in the harness is automatic.
package format
