package format

import (
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// BSR is Block Compressed Sparse Row: kept B×B blocks stored densely with
// one block-column index each and a per-block-row pointer array. Unlike
// Blocked-ELLPACK it tolerates arbitrary per-row block counts — the format
// a CRISP-style accelerator would need if the mask were *not* row-balanced,
// paying a row-pointer array and losing the fixed per-row schedule.
type BSR struct {
	Rows, Cols, B int
	RowPtr        []int32 // gridRows+1 entries
	BlockCol      []int32 // one per kept block
	Val           []float64
}

// EncodeBSR encodes the non-zero blocks of m (no balance requirement).
func EncodeBSR(m *tensor.Tensor, b int) *BSR {
	rows, cols := checkMatrix(m)
	g := sparsity.NewBlockGrid(rows, cols, b)
	e := &BSR{Rows: rows, Cols: cols, B: b, RowPtr: make([]int32, g.GridRows()+1)}
	for br := 0; br < g.GridRows(); br++ {
		for bc := 0; bc < g.GridCols(); bc++ {
			if !sparsity.BlockKept(m, g, br, bc) {
				continue
			}
			e.BlockCol = append(e.BlockCol, int32(bc))
			r0, r1, c0, c1 := g.Bounds(br, bc)
			for r := r0; r < r0+b; r++ {
				for cc := c0; cc < c0+b; cc++ {
					if r < r1 && cc < c1 {
						e.Val = append(e.Val, m.Data[r*cols+cc])
					} else {
						e.Val = append(e.Val, 0)
					}
				}
			}
		}
		e.RowPtr[br+1] = int32(len(e.BlockCol))
	}
	return e
}

// Name implements Encoded.
func (e *BSR) Name() string { return "bsr" }

// grid reconstructs the block grid.
func (e *BSR) grid() sparsity.BlockGrid {
	return sparsity.NewBlockGrid(e.Rows, e.Cols, e.B)
}

// MetadataBits implements Encoded: block-column indices plus 32-bit row
// pointers (the overhead row balance removes).
func (e *BSR) MetadataBits() int64 {
	g := e.grid()
	return int64(len(e.BlockCol))*int64(bitsFor(g.GridCols())) + int64(len(e.RowPtr))*32
}

// DataBits implements Encoded.
func (e *BSR) DataBits(valueBits int) int64 { return int64(len(e.Val)) * int64(valueBits) }

// Decode implements Encoded.
func (e *BSR) Decode() *tensor.Tensor {
	out := tensor.New(e.Rows, e.Cols)
	g := e.grid()
	for br := 0; br < g.GridRows(); br++ {
		for bi := e.RowPtr[br]; bi < e.RowPtr[br+1]; bi++ {
			bc := int(e.BlockCol[bi])
			r0, r1, c0, c1 := g.Bounds(br, bc)
			blk := e.Val[int(bi)*e.B*e.B : (int(bi)+1)*e.B*e.B]
			for r := r0; r < r1; r++ {
				for cc := c0; cc < c1; cc++ {
					out.Data[r*e.Cols+cc] = blk[(r-r0)*e.B+(cc-c0)]
				}
			}
		}
	}
	return out
}

// MatMul implements Encoded.
func (e *BSR) MatMul(b *tensor.Tensor) *tensor.Tensor {
	_, n := checkSpMM(b, e.Cols)
	out := tensor.New(e.Rows, n)
	g := e.grid()
	for br := 0; br < g.GridRows(); br++ {
		for bi := e.RowPtr[br]; bi < e.RowPtr[br+1]; bi++ {
			bc := int(e.BlockCol[bi])
			r0, r1, c0, c1 := g.Bounds(br, bc)
			blk := e.Val[int(bi)*e.B*e.B : (int(bi)+1)*e.B*e.B]
			for r := r0; r < r1; r++ {
				dst := out.Data[r*n : (r+1)*n]
				for cc := c0; cc < c1; cc++ {
					v := blk[(r-r0)*e.B+(cc-c0)]
					if v == 0 {
						continue
					}
					src := b.Data[cc*n : (cc+1)*n]
					for j, bv := range src {
						dst[j] += v * bv
					}
				}
			}
		}
	}
	return out
}

// BSRMetadataBits is the analytical model.
func BSRMetadataBits(gridRows, gridCols, keptBlocks int) int64 {
	return int64(keptBlocks)*int64(bitsFor(gridCols)) + int64(gridRows+1)*32
}
