package models

import (
	"math/rand"

	"repro/internal/nn"
)

// Family identifies a trainable model family mirroring one of the paper's
// three networks.
type Family string

// The three families the paper evaluates, plus the transformer extension
// (the paper's stated future work).
const (
	ResNet      Family = "resnet-s"
	VGG         Family = "vgg-s"
	MobileNet   Family = "mobilenet-s"
	Transformer Family = "transformer-s"
)

// Build constructs a trainable classifier of the given family.
// width scales every channel count; the defaults (width=2 for ResNet-S,
// width=2 for VGG-S, width=1 for MobileNet-S) mirror the paper's
// compressibility ordering: ResNet over-parameterized, MobileNet compact.
func Build(f Family, rng *rand.Rand, numClasses, width int) *nn.Classifier {
	switch f {
	case ResNet:
		return NewResNetS(rng, numClasses, width)
	case VGG:
		return NewVGGS(rng, numClasses, width)
	case MobileNet:
		return NewMobileNetS(rng, numClasses, width)
	case Transformer:
		return NewTransformerS(rng, numClasses, width)
	default:
		panic("models: unknown family " + string(f))
	}
}

// basicBlock builds a ResNet basic residual block:
// conv3×3-BN-ReLU-conv3×3-BN (+ projection shortcut when shape changes),
// followed by a ReLU appended by the caller.
func basicBlock(name string, rng *rand.Rand, inC, outC, stride int) nn.Layer {
	main := nn.NewSequential(
		nn.NewConv2D(name+".conv1", rng, inC, outC, 3, 3, stride, 1, false),
		nn.NewBatchNorm2D(name+".bn1", outC),
		nn.NewReLU(),
		nn.NewConv2D(name+".conv2", rng, outC, outC, 3, 3, 1, 1, false),
		nn.NewBatchNorm2D(name+".bn2", outC),
	)
	var shortcut nn.Layer
	if inC != outC || stride != 1 {
		shortcut = nn.NewSequential(
			nn.NewConv2D(name+".proj", rng, inC, outC, 1, 1, stride, 0, false),
			nn.NewBatchNorm2D(name+".bnproj", outC),
		)
	}
	return nn.NewResidual(main, shortcut)
}

// NewResNetS builds the scaled-down residual network (the reproduction's
// stand-in for ResNet-50): stem + two residual stages + linear head.
// Base width is 16·width channels.
func NewResNetS(rng *rand.Rand, numClasses, width int) *nn.Classifier {
	w := 16 * width
	net := nn.NewSequential(
		nn.NewConv2D("stem.conv", rng, 3, w, 3, 3, 1, 1, false),
		nn.NewBatchNorm2D("stem.bn", w),
		nn.NewReLU(),
		basicBlock("stage1.block0", rng, w, w, 1),
		nn.NewReLU(),
		basicBlock("stage1.block1", rng, w, w, 1),
		nn.NewReLU(),
		basicBlock("stage2.block0", rng, w, 2*w, 2),
		nn.NewReLU(),
		basicBlock("stage2.block1", rng, 2*w, 2*w, 1),
		nn.NewReLU(),
		&nn.GlobalAvgPool{},
		nn.NewLinear("fc", rng, 2*w, numClasses, false),
	)
	return nn.NewClassifier(string(ResNet), net, numClasses)
}

// NewVGGS builds the scaled-down plain conv stack (stand-in for VGG-16):
// two conv-conv-pool stages plus a hidden fully connected layer. The hidden
// FC is prunable like VGG's giant fc6/fc7; the classifier head is exempt.
// Inputs must be at least 8×8 (two 2× poolings).
func NewVGGS(rng *rand.Rand, numClasses, width int) *nn.Classifier {
	w := 16 * width
	// The hidden FC input size depends on the input resolution; use lazy
	// construction via a fixed 4× spatial reduction and global pooling to
	// stay resolution-independent like the other families.
	net := nn.NewSequential(
		nn.NewConv2D("conv1_1", rng, 3, w, 3, 3, 1, 1, true),
		nn.NewReLU(),
		nn.NewConv2D("conv1_2", rng, w, w, 3, 3, 1, 1, true),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D("conv2_1", rng, w, 2*w, 3, 3, 1, 1, true),
		nn.NewReLU(),
		nn.NewConv2D("conv2_2", rng, 2*w, 2*w, 3, 3, 1, 1, true),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		&nn.GlobalAvgPool{},
		nn.NewLinear("fc6", rng, 2*w, 4*w, true),
		nn.NewReLU(),
		nn.NewLinear("fc8", rng, 4*w, numClasses, false),
	)
	return nn.NewClassifier(string(VGG), net, numClasses)
}

// invertedResidual builds a MobileNetV2-style bottleneck:
// 1×1 expand (ratio t) → depthwise 3×3 → 1×1 project, with a residual
// connection when the shape is preserved.
func invertedResidual(name string, rng *rand.Rand, inC, outC, t, stride int) nn.Layer {
	exp := inC * t
	layers := []nn.Layer{}
	if t != 1 {
		layers = append(layers,
			nn.NewConv2D(name+".expand", rng, inC, exp, 1, 1, 1, 0, false),
			nn.NewBatchNorm2D(name+".bn1", exp),
			nn.NewReLU6(),
		)
	}
	layers = append(layers,
		nn.NewDepthwiseConv2D(name+".dw", rng, exp, 3, 3, stride, 1, false),
		nn.NewBatchNorm2D(name+".bn2", exp),
		nn.NewReLU6(),
		nn.NewConv2D(name+".project", rng, exp, outC, 1, 1, 1, 0, false),
		nn.NewBatchNorm2D(name+".bn3", outC),
	)
	main := nn.NewSequential(layers...)
	if inC == outC && stride == 1 {
		return nn.NewResidual(main, nil)
	}
	return main
}

// transformerBlock builds a pre-norm transformer encoder block:
// x + MHA(LN(x)) followed by x + MLP(LN(x)).
func transformerBlock(name string, rng *rand.Rand, d, heads, mlpRatio int) []nn.Layer {
	attn := nn.NewSequential(
		nn.NewLayerNorm(name+".ln1", d),
		nn.NewMultiHeadAttention(name+".attn", rng, d, heads),
	)
	mlp := nn.NewSequential(
		nn.NewLayerNorm(name+".ln2", d),
		nn.NewTokenLinear(name+".fc1", rng, d, mlpRatio*d, true),
		nn.NewReLU(),
		nn.NewTokenLinear(name+".fc2", rng, mlpRatio*d, d, true),
	)
	return []nn.Layer{nn.NewResidual(attn, nil), nn.NewResidual(mlp, nil)}
}

// NewTransformerS builds a small vision transformer: 4×4 patch embedding,
// two pre-norm encoder blocks, token mean-pooling and a linear head. It is
// the substrate for the paper's future-work extension: every projection
// (patch embed, Q/K/V/O, MLP) is a prunable matrix, so CRISP's hybrid
// pattern applies unchanged. Inputs must have spatial dims divisible by 4.
func NewTransformerS(rng *rand.Rand, numClasses, width int) *nn.Classifier {
	d := 16 * width
	layers := []nn.Layer{nn.NewPatchEmbed("patch", rng, 3, 4, d)}
	layers = append(layers, transformerBlock("block0", rng, d, 2, 2)...)
	layers = append(layers, transformerBlock("block1", rng, d, 2, 2)...)
	layers = append(layers,
		nn.NewLayerNorm("ln_final", d),
		&nn.MeanPoolTokens{},
		nn.NewLinear("fc", rng, d, numClasses, false),
	)
	return nn.NewClassifier(string(Transformer), nn.NewSequential(layers...), numClasses)
}

// NewMobileNetS builds the scaled-down inverted-residual network (stand-in
// for MobileNetV2). Base width is 8·width: deliberately compact, so it is
// the hardest of the three to prune — reproducing the paper's Fig. 1 gap.
func NewMobileNetS(rng *rand.Rand, numClasses, width int) *nn.Classifier {
	w := 8 * width
	net := nn.NewSequential(
		nn.NewConv2D("stem.conv", rng, 3, w, 3, 3, 1, 1, false),
		nn.NewBatchNorm2D("stem.bn", w),
		nn.NewReLU6(),
		invertedResidual("block1", rng, w, w, 1, 1),
		invertedResidual("block2", rng, w, 2*w, 3, 2),
		invertedResidual("block3", rng, 2*w, 2*w, 3, 1),
		invertedResidual("block4", rng, 2*w, 3*w, 3, 1),
		&nn.GlobalAvgPool{},
		nn.NewLinear("fc", rng, 3*w, numClasses, false),
	)
	return nn.NewClassifier(string(MobileNet), net, numClasses)
}
