package models

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestResNet50ShapesStructure(t *testing.T) {
	shapes := ResNet50Shapes()
	// 1 stem + (3+4+6+3)*3 bottleneck convs + 4 projections + 1 fc = 54.
	if len(shapes) != 54 {
		t.Fatalf("ResNet-50 layer count = %d, want 54", len(shapes))
	}
	if shapes[0].Name != "conv1" || shapes[0].OutH() != 112 {
		t.Fatalf("stem wrong: %+v outH=%d", shapes[0], shapes[0].OutH())
	}
	last := shapes[len(shapes)-1]
	if last.Kind != KindLinear || last.InC != 2048 || last.OutC != 1000 {
		t.Fatalf("classifier wrong: %+v", last)
	}
	// Published parameter count for ResNet-50 is ≈25.5M including biases/BN;
	// conv+fc weights alone are ≈25.0M.
	p := TotalParams(shapes)
	if p < 24_000_000 || p > 26_500_000 {
		t.Fatalf("ResNet-50 params = %d, want ≈25M", p)
	}
	// Published MACs ≈ 4.1 GMACs (with fc).
	m := TotalMACs(shapes)
	if m < 3_500_000_000 || m > 4_500_000_000 {
		t.Fatalf("ResNet-50 MACs = %d, want ≈4.1G", m)
	}
}

func TestVGG16ShapesStructure(t *testing.T) {
	shapes := VGG16Shapes()
	if len(shapes) != 16 {
		t.Fatalf("VGG-16 layer count = %d, want 16", len(shapes))
	}
	// Published: ≈138M params, ≈15.5 GMACs.
	p := TotalParams(shapes)
	if p < 130_000_000 || p > 142_000_000 {
		t.Fatalf("VGG-16 params = %d, want ≈138M", p)
	}
	m := TotalMACs(shapes)
	if m < 14_500_000_000 || m > 16_500_000_000 {
		t.Fatalf("VGG-16 MACs = %d, want ≈15.5G", m)
	}
}

func TestMobileNetV2ShapesStructure(t *testing.T) {
	shapes := MobileNetV2Shapes()
	// Published: ≈3.4M params (weights ≈3.3M), ≈300M MACs.
	p := TotalParams(shapes)
	if p < 3_000_000 || p > 3_800_000 {
		t.Fatalf("MobileNetV2 params = %d, want ≈3.4M", p)
	}
	m := TotalMACs(shapes)
	if m < 280_000_000 || m > 330_000_000 {
		t.Fatalf("MobileNetV2 MACs = %d, want ≈300M", m)
	}
	// Spatial chain must end at 7×7 before the classifier.
	lastConv := shapes[len(shapes)-2]
	if lastConv.Name != "conv_last" || lastConv.OutH() != 7 {
		t.Fatalf("last conv wrong: %+v outH=%d", lastConv, lastConv.OutH())
	}
}

func TestGEMMDims(t *testing.T) {
	l := LayerShape{Name: "x", Kind: KindConv, InC: 64, OutC: 128, KH: 3, KW: 3, Stride: 1, Pad: 1, InH: 28, InW: 28}
	m, k, n := l.GEMMDims()
	if m != 128 || k != 576 || n != 784 {
		t.Fatalf("GEMM dims = %d,%d,%d", m, k, n)
	}
	dw := LayerShape{Name: "d", Kind: KindDepthwise, InC: 64, OutC: 64, KH: 3, KW: 3, Stride: 1, Pad: 1, InH: 28, InW: 28}
	m, k, n = dw.GEMMDims()
	if m != 64 || k != 9 || n != 784 {
		t.Fatalf("depthwise GEMM dims = %d,%d,%d", m, k, n)
	}
}

func TestRepresentativeLayersSpanStages(t *testing.T) {
	layers := RepresentativeResNet50Layers()
	if len(layers) != 9 {
		t.Fatalf("representative set size %d, want 9", len(layers))
	}
	// Must include early and late stages.
	names := map[string]bool{}
	for _, l := range layers {
		names[l.Name] = true
	}
	for _, want := range []string{"conv1", "conv2_1.b", "conv5_3.c"} {
		if !names[want] {
			t.Fatalf("representative set missing %s", want)
		}
	}
}

func TestTrainableModelsForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []Family{ResNet, VGG, MobileNet} {
		clf := Build(f, rand.New(rand.NewSource(2)), 10, 1)
		x := tensor.Randn(rng, 1, 2, 3, 16, 16)
		y := clf.Logits(x, false)
		if y.Shape[0] != 2 || y.Shape[1] != 10 {
			t.Fatalf("%s logits shape %v", f, y.Shape)
		}
	}
}

func TestTrainableModelsBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, f := range []Family{ResNet, VGG, MobileNet} {
		clf := Build(f, rand.New(rand.NewSource(4)), 5, 1)
		x := tensor.Randn(rng, 1, 2, 3, 12, 12)
		loss := clf.TrainBatch(x, []int{1, 3})
		if loss <= 0 {
			t.Fatalf("%s loss = %v", f, loss)
		}
		// Every prunable parameter must have received gradient.
		for _, p := range clf.PrunableParams() {
			if p.Grad.AbsSum() == 0 {
				t.Fatalf("%s param %s has zero gradient", f, p.Name)
			}
		}
	}
}

func TestCompressibilityOrdering(t *testing.T) {
	// ResNet-S must have the most prunable parameters and MobileNet-S the
	// fewest — the over-parameterization ordering behind the paper's Fig. 1.
	count := func(f Family) int {
		clf := Build(f, rand.New(rand.NewSource(5)), 10, 2)
		total := 0
		for _, p := range clf.PrunableParams() {
			total += p.W.Len()
		}
		return total
	}
	r, v, m := count(ResNet), count(VGG), count(MobileNet)
	if !(r > m && v > m) {
		t.Fatalf("expected ResNet-S (%d) and VGG-S (%d) > MobileNet-S (%d)", r, v, m)
	}
}

func TestDepthwiseParamsBlockExempt(t *testing.T) {
	clf := Build(MobileNet, rand.New(rand.NewSource(6)), 10, 1)
	foundDW := false
	for _, p := range clf.PrunableParams() {
		if p.Cols == 9 { // depthwise 3×3 pruning view
			foundDW = true
			if !p.BlockExempt {
				t.Fatalf("depthwise param %s not block-exempt", p.Name)
			}
		}
	}
	if !foundDW {
		t.Fatal("MobileNet-S has no depthwise parameters")
	}
}

func TestHeadNotPrunable(t *testing.T) {
	for _, f := range []Family{ResNet, VGG, MobileNet} {
		clf := Build(f, rand.New(rand.NewSource(7)), 10, 1)
		for _, p := range clf.PrunableParams() {
			if p.Name == "fc.weight" || p.Name == "fc8.weight" {
				t.Fatalf("%s: classifier head %s is prunable", f, p.Name)
			}
		}
	}
}

func TestTransformerForwardBackward(t *testing.T) {
	clf := Build(Transformer, rand.New(rand.NewSource(8)), 6, 1)
	rng := rand.New(rand.NewSource(9))
	x := tensor.Randn(rng, 1, 2, 3, 8, 8)
	y := clf.Logits(x, false)
	if y.Shape[0] != 2 || y.Shape[1] != 6 {
		t.Fatalf("transformer logits %v", y.Shape)
	}
	loss := clf.TrainBatch(x, []int{1, 4})
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
	for _, p := range clf.PrunableParams() {
		if p.Grad.AbsSum() == 0 {
			t.Fatalf("transformer param %s has zero gradient", p.Name)
		}
	}
}

func TestTransformerPrunableProjections(t *testing.T) {
	clf := Build(Transformer, rand.New(rand.NewSource(10)), 6, 1)
	names := map[string]bool{}
	for _, p := range clf.PrunableParams() {
		names[p.Name] = true
	}
	// Patch embedding, all four attention projections and both MLP layers
	// of each block must be prunable.
	for _, want := range []string{
		"patch.weight",
		"block0.attn.wq", "block0.attn.wk", "block0.attn.wv", "block0.attn.wo",
		"block0.fc1.weight", "block0.fc2.weight",
		"block1.attn.wq",
	} {
		if !names[want] {
			t.Fatalf("expected prunable %s; have %v", want, names)
		}
	}
	if names["fc.weight"] {
		t.Fatal("classifier head must not be prunable")
	}
}
