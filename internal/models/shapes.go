// Package models provides (a) exact layer-shape tables of the three networks
// the CRISP paper evaluates — ResNet-50, VGG-16 and MobileNetV2 at ImageNet
// resolution — used by the FLOPs, metadata and accelerator experiments, and
// (b) scaled-down trainable versions of the same architecture families used
// by the accuracy experiments on the synthetic datasets (see DESIGN.md).
package models

import "fmt"

// LayerKind distinguishes the layer types the hardware model cares about.
type LayerKind int

const (
	// KindConv is a standard convolution.
	KindConv LayerKind = iota
	// KindDepthwise is a depthwise (per-channel) convolution.
	KindDepthwise
	// KindLinear is a fully connected layer.
	KindLinear
)

// String implements fmt.Stringer.
func (k LayerKind) String() string {
	switch k {
	case KindConv:
		return "conv"
	case KindDepthwise:
		return "dwconv"
	case KindLinear:
		return "linear"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// LayerShape describes one layer's geometry; enough to derive GEMM
// dimensions, parameter counts and MACs. Linear layers use InC/OutC with
// KH=KW=InH=InW=Stride=1.
type LayerShape struct {
	Name      string
	Kind      LayerKind
	InC, OutC int
	KH, KW    int
	Stride    int
	Pad       int
	InH, InW  int
}

// OutH returns the output height.
func (l LayerShape) OutH() int { return (l.InH+2*l.Pad-l.KH)/l.Stride + 1 }

// OutW returns the output width.
func (l LayerShape) OutW() int { return (l.InW+2*l.Pad-l.KW)/l.Stride + 1 }

// Params returns the weight count (biases excluded; they are negligible and
// unpruned).
func (l LayerShape) Params() int64 {
	switch l.Kind {
	case KindDepthwise:
		return int64(l.OutC) * int64(l.KH) * int64(l.KW)
	default:
		return int64(l.OutC) * int64(l.InC) * int64(l.KH) * int64(l.KW)
	}
}

// MACs returns the dense multiply-accumulate count for one inference.
func (l LayerShape) MACs() int64 {
	return l.Params() * int64(l.OutH()) * int64(l.OutW())
}

// GEMMDims returns the implicit-GEMM dimensions (M = output rows,
// K = reduction, N = output positions) used by the accelerator model.
// Depthwise layers map to per-channel GEMV-like work: M = OutC, K = KH*KW,
// N = OutH*OutW.
func (l LayerShape) GEMMDims() (m, k, n int) {
	switch l.Kind {
	case KindDepthwise:
		return l.OutC, l.KH * l.KW, l.OutH() * l.OutW()
	case KindLinear:
		return l.OutC, l.InC, 1
	default:
		return l.OutC, l.InC * l.KH * l.KW, l.OutH() * l.OutW()
	}
}

// conv is a shorthand constructor used by the spec builders.
func conv(name string, inC, outC, k, stride, pad, inH int) LayerShape {
	return LayerShape{Name: name, Kind: KindConv, InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, InH: inH, InW: inH}
}

// ResNet50Shapes returns every convolution of ResNet-50 at 224×224 plus the
// final classifier, in execution order.
func ResNet50Shapes() []LayerShape {
	var out []LayerShape
	out = append(out, conv("conv1", 3, 64, 7, 2, 3, 224))

	// Bottleneck stages: (mid channels, out channels, blocks, input spatial
	// size after the stem's 3×3/2 max pool).
	type stage struct {
		mid, outC, blocks, inH, stride int
	}
	stages := []stage{
		{64, 256, 3, 56, 1},
		{128, 512, 4, 56, 2},
		{256, 1024, 6, 28, 2},
		{512, 2048, 3, 14, 2},
	}
	inC := 64
	for si, st := range stages {
		h := st.inH
		for b := 0; b < st.blocks; b++ {
			stride := 1
			if b == 0 {
				stride = st.stride
			}
			prefix := fmt.Sprintf("conv%d_%d", si+2, b+1)
			out = append(out, conv(prefix+".a", inC, st.mid, 1, 1, 0, h))
			out = append(out, conv(prefix+".b", st.mid, st.mid, 3, stride, 1, h))
			hb := (h+2-3)/stride + 1
			out = append(out, conv(prefix+".c", st.mid, st.outC, 1, 1, 0, hb))
			if b == 0 {
				out = append(out, conv(prefix+".proj", inC, st.outC, 1, stride, 0, h))
			}
			inC = st.outC
			h = hb
		}
	}
	out = append(out, LayerShape{Name: "fc", Kind: KindLinear, InC: 2048, OutC: 1000, KH: 1, KW: 1, Stride: 1, InH: 1, InW: 1})
	return out
}

// VGG16Shapes returns the 13 convolutions and 3 fully connected layers of
// VGG-16 at 224×224.
func VGG16Shapes() []LayerShape {
	cfg := []struct {
		c, n, inH int
	}{
		{64, 2, 224}, {128, 2, 112}, {256, 3, 56}, {512, 3, 28}, {512, 3, 14},
	}
	inC := 3
	var out []LayerShape
	li := 1
	for _, blk := range cfg {
		for i := 0; i < blk.n; i++ {
			out = append(out, conv(fmt.Sprintf("conv%d_%d", li, i+1), inC, blk.c, 3, 1, 1, blk.inH))
			inC = blk.c
		}
		li++
	}
	out = append(out,
		LayerShape{Name: "fc6", Kind: KindLinear, InC: 512 * 7 * 7, OutC: 4096, KH: 1, KW: 1, Stride: 1, InH: 1, InW: 1},
		LayerShape{Name: "fc7", Kind: KindLinear, InC: 4096, OutC: 4096, KH: 1, KW: 1, Stride: 1, InH: 1, InW: 1},
		LayerShape{Name: "fc8", Kind: KindLinear, InC: 4096, OutC: 1000, KH: 1, KW: 1, Stride: 1, InH: 1, InW: 1},
	)
	return out
}

// MobileNetV2Shapes returns MobileNetV2's layers at 224×224: the stem, all
// inverted-residual bottlenecks (expand / depthwise / project), the final
// 1×1 conv and the classifier.
func MobileNetV2Shapes() []LayerShape {
	var out []LayerShape
	out = append(out, conv("stem", 3, 32, 3, 2, 1, 224))
	// (expansion t, out channels c, repeats n, first stride s)
	cfg := []struct{ t, c, n, s int }{
		{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
		{6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
	}
	inC, h := 32, 112
	bi := 1
	for _, blk := range cfg {
		for i := 0; i < blk.n; i++ {
			stride := 1
			if i == 0 {
				stride = blk.s
			}
			prefix := fmt.Sprintf("block%d", bi)
			exp := inC * blk.t
			if blk.t != 1 {
				out = append(out, conv(prefix+".expand", inC, exp, 1, 1, 0, h))
			}
			out = append(out, LayerShape{Name: prefix + ".dw", Kind: KindDepthwise, InC: exp, OutC: exp, KH: 3, KW: 3, Stride: stride, Pad: 1, InH: h, InW: h})
			ho := (h+2-3)/stride + 1
			out = append(out, conv(prefix+".project", exp, blk.c, 1, 1, 0, ho))
			inC, h = blk.c, ho
			bi++
		}
	}
	out = append(out, conv("conv_last", 320, 1280, 1, 1, 0, 7))
	out = append(out, LayerShape{Name: "fc", Kind: KindLinear, InC: 1280, OutC: 1000, KH: 1, KW: 1, Stride: 1, InH: 1, InW: 1})
	return out
}

// TotalParams sums Params over the shapes.
func TotalParams(shapes []LayerShape) int64 {
	var t int64
	for _, l := range shapes {
		t += l.Params()
	}
	return t
}

// TotalMACs sums MACs over the shapes.
func TotalMACs(shapes []LayerShape) int64 {
	var t int64
	for _, l := range shapes {
		t += l.MACs()
	}
	return t
}

// RepresentativeResNet50Layers returns the subset of ResNet-50 layers used
// in the paper's Fig. 8 style layer-wise hardware comparison: a spread of
// early (large spatial, few channels) through late (small spatial, many
// channels) convolutions.
func RepresentativeResNet50Layers() []LayerShape {
	want := map[string]bool{
		"conv1": true, "conv2_1.b": true, "conv2_3.c": true,
		"conv3_2.b": true, "conv3_4.c": true, "conv4_2.b": true,
		"conv4_6.c": true, "conv5_1.b": true, "conv5_3.c": true,
	}
	var out []LayerShape
	for _, l := range ResNet50Shapes() {
		if want[l.Name] {
			out = append(out, l)
		}
	}
	return out
}
