package nn

// Walk visits l and every nested layer in execution order, calling fn on
// each. Containers (Sequential, Residual) are visited before their children.
func Walk(l Layer, fn func(Layer)) {
	fn(l)
	switch v := l.(type) {
	case *Sequential:
		for _, c := range v.Layers {
			Walk(c, fn)
		}
	case *Residual:
		Walk(v.Main, fn)
		if v.Shortcut != nil {
			Walk(v.Shortcut, fn)
		}
	}
}
