package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a standard 2-D convolution lowered onto GEMM via im2col.
// Weights have shape [OutC, InC, KH, KW]; the pruning view is the
// [OutC, InC*KH*KW] matrix whose columns form the reduction dimension —
// the same reshape the CRISP paper applies before N:M and block pruning.
type Conv2D struct {
	Geom   tensor.ConvGeom
	OutC   int
	Weight *Param
	Bias   *Param // nil when the layer is followed by batch norm

	// OutStats, when non-nil, accumulates per-output-channel mean absolute
	// activation — the feature-map statistic OCAP-style channel pruning
	// scores channels with.
	OutStats *ChannelStats

	// caches for backward
	cols    *tensor.Tensor
	weff    *tensor.Tensor
	batch   int
	lastOut [2]int // OH, OW
}

// ChannelStats accumulates per-channel |activation| sums.
type ChannelStats struct {
	Sum   []float64
	Count int64
}

// NewChannelStats sizes the collector for c channels.
func NewChannelStats(c int) *ChannelStats { return &ChannelStats{Sum: make([]float64, c)} }

// Mean returns the per-channel mean absolute activation.
func (s *ChannelStats) Mean() []float64 {
	out := make([]float64, len(s.Sum))
	if s.Count == 0 {
		return out
	}
	for i, v := range s.Sum {
		out[i] = v / float64(s.Count)
	}
	return out
}

// NewConv2D constructs a convolution with He-initialized weights.
// withBias disables the bias when a batch-norm layer follows.
func NewConv2D(name string, rng *rand.Rand, inC, outC, kh, kw, stride, pad int, withBias bool) *Conv2D {
	fanIn := inC * kh * kw
	std := math.Sqrt(2.0 / float64(fanIn))
	w := tensor.Randn(rng, std, outC, inC, kh, kw)
	c := &Conv2D{
		Geom:   tensor.ConvGeom{InC: inC, KH: kh, KW: kw, Stride: stride, Pad: pad},
		OutC:   outC,
		Weight: newParam(name+".weight", w, outC, fanIn, true),
	}
	if withBias {
		c.Bias = newParam(name+".bias", tensor.New(outC), outC, 1, false)
		c.Bias.NoDecay = true
	}
	return c
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: Conv2D expects [N,C,H,W], got %v", x.Shape))
	}
	g := c.Geom
	g.InH, g.InW = x.Shape[2], x.Shape[3]
	if x.Shape[1] != g.InC {
		panic(fmt.Sprintf("nn: Conv2D input channels %d != %d", x.Shape[1], g.InC))
	}
	n := x.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	cols := tensor.Im2Col(x, g)                      // [K, N*OH*OW]
	weff := c.Weight.Effective().Reshape(c.OutC, -1) // [S, K]
	outMat := tensor.MatMul(weff, cols)              // [S, N*OH*OW]

	// Re-layout [S][N*P] → [N][S][P].
	p := oh * ow
	y := tensor.New(n, c.OutC, oh, ow)
	for s := 0; s < c.OutC; s++ {
		bias := 0.0
		if c.Bias != nil {
			bias = c.Bias.W.Data[s]
		}
		src := outMat.Data[s*n*p : (s+1)*n*p]
		for b := 0; b < n; b++ {
			dst := y.Data[(b*c.OutC+s)*p : (b*c.OutC+s+1)*p]
			for i, v := range src[b*p : (b+1)*p] {
				dst[i] = v + bias
			}
		}
	}
	if c.OutStats != nil {
		for s := 0; s < c.OutC; s++ {
			for b := 0; b < n; b++ {
				seg := y.Data[(b*c.OutC+s)*p : (b*c.OutC+s+1)*p]
				for _, v := range seg {
					c.OutStats.Sum[s] += math.Abs(v)
				}
			}
		}
		c.OutStats.Count += int64(n * p)
	}
	// Geometry is recorded unconditionally so FLOPs accounting can probe the
	// network in eval mode; the backprop caches are train-only.
	c.batch = n
	c.lastOut = [2]int{oh, ow}
	c.Geom = g
	if train {
		c.cols = cols
		c.weff = weff
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n := c.batch
	oh, ow := c.lastOut[0], c.lastOut[1]
	p := oh * ow
	if len(dy.Shape) != 4 || dy.Shape[0] != n || dy.Shape[1] != c.OutC || dy.Shape[2] != oh || dy.Shape[3] != ow {
		panic(fmt.Sprintf("nn: Conv2D backward shape %v does not match cached forward (%d,%d,%d,%d)", dy.Shape, n, c.OutC, oh, ow))
	}
	// Re-layout dy [N][S][P] → [S][N*P].
	dyMat := tensor.New(c.OutC, n*p)
	for s := 0; s < c.OutC; s++ {
		dst := dyMat.Data[s*n*p : (s+1)*n*p]
		for b := 0; b < n; b++ {
			copy(dst[b*p:(b+1)*p], dy.Data[(b*c.OutC+s)*p:(b*c.OutC+s+1)*p])
		}
	}
	// dW = dyMat · colsᵀ  (dense gradient: straight-through estimator).
	k := c.Geom.InC * c.Geom.KH * c.Geom.KW
	dw := make([]float64, c.OutC*k)
	tensor.Gemm(false, true, c.OutC, k, n*p, 1, dyMat.Data, c.cols.Data, 0, dw)
	c.Weight.Grad.AddInPlace(tensor.FromSlice(dw, c.Weight.Grad.Shape...))
	// Bias gradient: row sums of dyMat.
	if c.Bias != nil {
		for s := 0; s < c.OutC; s++ {
			sum := 0.0
			for _, v := range dyMat.Data[s*n*p : (s+1)*n*p] {
				sum += v
			}
			c.Bias.Grad.Data[s] += sum
		}
	}
	// dx via dcols = Weffᵀ · dyMat, then col2im.
	dcols := tensor.New(k, n*p)
	tensor.Gemm(true, false, k, n*p, c.OutC, 1, c.weff.Data, dyMat.Data, 0, dcols.Data)
	return tensor.Col2Im(dcols, n, c.Geom)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

// DepthwiseConv2D convolves each input channel with its own single kernel
// (channel multiplier 1), the core of MobileNet's separable blocks. Weights
// have shape [C, KH, KW]; the pruning view is [C, KH*KW]. The kernels are
// tiny, so the layer is block-exempt: it participates in N:M pruning only.
type DepthwiseConv2D struct {
	Geom   tensor.ConvGeom // InC == OutC
	Weight *Param
	Bias   *Param

	x     *tensor.Tensor
	batch int
}

// NewDepthwiseConv2D constructs a depthwise convolution.
func NewDepthwiseConv2D(name string, rng *rand.Rand, c, kh, kw, stride, pad int, withBias bool) *DepthwiseConv2D {
	std := math.Sqrt(2.0 / float64(kh*kw))
	w := tensor.Randn(rng, std, c, kh, kw)
	d := &DepthwiseConv2D{
		Geom:   tensor.ConvGeom{InC: c, KH: kh, KW: kw, Stride: stride, Pad: pad},
		Weight: newParam(name+".weight", w, c, kh*kw, true),
	}
	d.Weight.BlockExempt = true
	if withBias {
		d.Bias = newParam(name+".bias", tensor.New(c), c, 1, false)
		d.Bias.NoDecay = true
	}
	return d
}

// Forward implements Layer.
func (d *DepthwiseConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != d.Geom.InC {
		panic(fmt.Sprintf("nn: DepthwiseConv2D expects [N,%d,H,W], got %v", d.Geom.InC, x.Shape))
	}
	g := d.Geom
	g.InH, g.InW = x.Shape[2], x.Shape[3]
	n, cch := x.Shape[0], g.InC
	oh, ow := g.OutH(), g.OutW()
	weff := d.Weight.Effective()
	y := tensor.New(n, cch, oh, ow)
	for b := 0; b < n; b++ {
		for ch := 0; ch < cch; ch++ {
			src := x.Data[(b*cch+ch)*g.InH*g.InW : (b*cch+ch+1)*g.InH*g.InW]
			ker := weff.Data[ch*g.KH*g.KW : (ch+1)*g.KH*g.KW]
			dst := y.Data[(b*cch+ch)*oh*ow : (b*cch+ch+1)*oh*ow]
			bias := 0.0
			if d.Bias != nil {
				bias = d.Bias.W.Data[ch]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := bias
					for kh := 0; kh < g.KH; kh++ {
						iy := oy*g.Stride + kh - g.Pad
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							ix := ox*g.Stride + kw - g.Pad
							if ix < 0 || ix >= g.InW {
								continue
							}
							s += ker[kh*g.KW+kw] * src[iy*g.InW+ix]
						}
					}
					dst[oy*ow+ox] = s
				}
			}
		}
	}
	d.batch = n
	d.Geom = g
	if train {
		d.x = x
	}
	return y
}

// Backward implements Layer.
func (d *DepthwiseConv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	g := d.Geom
	n, cch := d.batch, g.InC
	oh, ow := g.OutH(), g.OutW()
	dx := tensor.New(n, cch, g.InH, g.InW)
	weff := d.Weight.Effective()
	for b := 0; b < n; b++ {
		for ch := 0; ch < cch; ch++ {
			src := d.x.Data[(b*cch+ch)*g.InH*g.InW : (b*cch+ch+1)*g.InH*g.InW]
			dxc := dx.Data[(b*cch+ch)*g.InH*g.InW : (b*cch+ch+1)*g.InH*g.InW]
			ker := weff.Data[ch*g.KH*g.KW : (ch+1)*g.KH*g.KW]
			dker := d.Weight.Grad.Data[ch*g.KH*g.KW : (ch+1)*g.KH*g.KW]
			dyc := dy.Data[(b*cch+ch)*oh*ow : (b*cch+ch+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gv := dyc[oy*ow+ox]
					if gv == 0 {
						continue
					}
					if d.Bias != nil {
						d.Bias.Grad.Data[ch] += gv
					}
					for kh := 0; kh < g.KH; kh++ {
						iy := oy*g.Stride + kh - g.Pad
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							ix := ox*g.Stride + kw - g.Pad
							if ix < 0 || ix >= g.InW {
								continue
							}
							dker[kh*g.KW+kw] += gv * src[iy*g.InW+ix]
							dxc[iy*g.InW+ix] += gv * ker[kh*g.KW+kw]
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (d *DepthwiseConv2D) Params() []*Param {
	if d.Bias != nil {
		return []*Param{d.Weight, d.Bias}
	}
	return []*Param{d.Weight}
}
