package nn

import "repro/internal/tensor"

// Layer is a differentiable module. Forward consumes an activation tensor
// and produces the next one; Backward consumes dL/dy and returns dL/dx while
// accumulating parameter gradients. A layer caches whatever it needs between
// Forward and Backward, so a Forward/Backward pair must not interleave with
// another Forward on the same layer.
type Layer interface {
	// Forward runs the layer. train selects training behaviour (batch-norm
	// batch statistics, cached activations for backprop).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward backpropagates dy and returns dx.
	Backward(dy *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers; Forward applies them in order, Backward in
// reverse.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Residual computes y = Main(x) + Shortcut(x). A nil Shortcut is the
// identity. The post-addition activation, when any, is a separate layer.
type Residual struct {
	Main     Layer
	Shortcut Layer // nil = identity
}

// NewResidual builds a residual block; shortcut may be nil for identity.
func NewResidual(main, shortcut Layer) *Residual {
	return &Residual{Main: main, Shortcut: shortcut}
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	m := r.Main.Forward(x, train)
	var s *tensor.Tensor
	if r.Shortcut != nil {
		s = r.Shortcut.Forward(x, train)
	} else {
		s = x
	}
	return tensor.Add(m, s)
}

// Backward implements Layer.
func (r *Residual) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dm := r.Main.Backward(dy)
	var ds *tensor.Tensor
	if r.Shortcut != nil {
		ds = r.Shortcut.Backward(dy)
	} else {
		ds = dy
	}
	return tensor.Add(dm, ds)
}

// Params implements Layer.
func (r *Residual) Params() []*Param {
	ps := r.Main.Params()
	if r.Shortcut != nil {
		ps = append(ps, r.Shortcut.Params()...)
	}
	return ps
}

// Flatten reshapes [N, ...] activations to [N, D] for the classifier head.
type Flatten struct {
	inShape []int
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	return x.Reshape(x.Shape[0], -1)
}

// Backward implements Layer.
func (f *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }
