package nn

import (
	"math"

	"repro/internal/tensor"
)

// ActStats accumulates activation-sparsity statistics across rectifiers —
// used to validate the activation densities the DSTC simulator assumes.
type ActStats struct {
	NonZeros, Total int64
}

// Density returns the observed non-zero activation fraction.
func (s *ActStats) Density() float64 {
	if s.Total == 0 {
		return 1
	}
	return float64(s.NonZeros) / float64(s.Total)
}

// ReLU applies max(0, x) elementwise. With Cap > 0 it becomes a clipped
// ReLU (ReLU6 in MobileNetV2 uses Cap = 6).
type ReLU struct {
	// Cap, when positive, clips activations at this value (ReLU6 => 6).
	Cap float64
	// Stats, when non-nil, accumulates output sparsity counts.
	Stats *ActStats

	pass []bool // cached pass-through flags for backward
}

// NewReLU returns an unbounded rectifier.
func NewReLU() *ReLU { return &ReLU{} }

// NewReLU6 returns the clipped rectifier used by MobileNetV2.
func NewReLU6() *ReLU { return &ReLU{Cap: 6} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	if train {
		if cap(r.pass) < len(x.Data) {
			r.pass = make([]bool, len(x.Data))
		}
		r.pass = r.pass[:len(x.Data)]
	}
	for i, v := range x.Data {
		out := v
		if v < 0 {
			out = 0
		} else if r.Cap > 0 && v > r.Cap {
			out = r.Cap
		}
		y.Data[i] = out
		if train {
			r.pass[i] = out == v
		}
	}
	if r.Stats != nil {
		r.Stats.Total += int64(len(y.Data))
		for _, v := range y.Data {
			if v != 0 {
				r.Stats.NonZeros++
			}
		}
	}
	return y
}

// CollectActivationStats attaches one shared ActStats to every rectifier
// under l and returns it; subsequent forward passes accumulate into it.
func CollectActivationStats(l Layer) *ActStats {
	stats := &ActStats{}
	Walk(l, func(c Layer) {
		if r, ok := c.(*ReLU); ok {
			r.Stats = stats
		}
	})
	return stats
}

// GELU is the Gaussian-error linear unit (tanh approximation), the standard
// activation in transformer MLPs.
type GELU struct {
	x *tensor.Tensor
}

// geluCoef is the tanh-approximation constant √(2/π).
const geluCoef = 0.7978845608028654

// geluForward computes the tanh-approximated GELU of v.
func geluForward(v float64) float64 {
	return 0.5 * v * (1 + math.Tanh(geluCoef*(v+0.044715*v*v*v)))
}

// geluGrad is d/dv of geluForward.
func geluGrad(v float64) float64 {
	inner := geluCoef * (v + 0.044715*v*v*v)
	t := math.Tanh(inner)
	dInner := geluCoef * (1 + 3*0.044715*v*v)
	return 0.5*(1+t) + 0.5*v*(1-t*t)*dInner
}

// Forward implements Layer.
func (g *GELU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	for i, v := range x.Data {
		y.Data[i] = geluForward(v)
	}
	if train {
		g.x = x
	}
	return y
}

// Backward implements Layer.
func (g *GELU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dy.Shape...)
	for i, v := range dy.Data {
		dx.Data[i] = v * geluGrad(g.x.Data[i])
	}
	return dx
}

// Params implements Layer.
func (g *GELU) Params() []*Param { return nil }

// Backward implements Layer.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dy.Shape...)
	for i, v := range dy.Data {
		if r.pass[i] {
			dx.Data[i] = v
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }
