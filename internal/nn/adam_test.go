package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestAdamStepDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	lin := NewLinear("l", rng, 2, 2, true)
	w0 := lin.Weight.W.Clone()
	lin.Weight.Grad.Fill(1)
	opt := NewAdam(0.1, 0)
	opt.Step([]*Param{lin.Weight})
	// First Adam step with g=1 moves every weight by ≈ -lr.
	for i := range w0.Data {
		delta := lin.Weight.W.Data[i] - w0.Data[i]
		if math.Abs(delta+0.1) > 1e-6 {
			t.Fatalf("Adam first step delta %v, want ≈-0.1", delta)
		}
	}
	if lin.Weight.Grad.AbsSum() != 0 {
		t.Fatal("Step must zero gradients")
	}
}

func TestAdamAdaptsToGradientScale(t *testing.T) {
	// Two params with gradients of very different magnitude move by nearly
	// the same amount (the defining Adam property).
	rng := rand.New(rand.NewSource(81))
	a := NewLinear("a", rng, 1, 1, true)
	b := NewLinear("b", rng, 1, 1, true)
	opt := NewAdam(0.01, 0)
	a0 := a.Weight.W.Data[0]
	b0 := b.Weight.W.Data[0]
	for i := 0; i < 5; i++ {
		a.Weight.Grad.Data[0] = 1000
		b.Weight.Grad.Data[0] = 0.001
		opt.Step([]*Param{a.Weight, b.Weight})
	}
	da := math.Abs(a.Weight.W.Data[0] - a0)
	db := math.Abs(b.Weight.W.Data[0] - b0)
	if da == 0 || db == 0 {
		t.Fatal("no movement")
	}
	if da/db > 2 || db/da > 2 {
		t.Fatalf("Adam not scale-adaptive: da=%v db=%v", da, db)
	}
}

func TestAdamNoDecayRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	lin := NewLinear("l", rng, 2, 2, true)
	b0 := append([]float64(nil), lin.Bias.W.Data...)
	opt := NewAdam(0.1, 10) // huge decay
	opt.Step(lin.Params())  // zero grads: only decay could act
	for i := range b0 {
		if lin.Bias.W.Data[i] != b0[i] {
			t.Fatal("bias decayed despite NoDecay")
		}
	}
}

func TestAdamTrainsToyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	lin := NewLinear("l", rng, 2, 2, true)
	opt := NewAdam(0.05, 0)
	x := tensor.FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	labels := []int{0, 1}
	var first, last float64
	for i := 0; i < 80; i++ {
		logits := lin.Forward(x, true)
		loss, dl := SoftmaxCrossEntropy(logits, labels)
		lin.Backward(dl)
		opt.Step(lin.Params())
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last > first*0.2 {
		t.Fatalf("Adam failed to fit: first %v last %v", first, last)
	}
}

func TestCosineSchedule(t *testing.T) {
	s := CosineSchedule{Base: 0.1, Floor: 0.001, Steps: 100}
	if s.LRAt(0) != 0.1 {
		t.Fatalf("start %v", s.LRAt(0))
	}
	if got := s.LRAt(100); got != 0.001 {
		t.Fatalf("end %v", got)
	}
	if got := s.LRAt(1000); got != 0.001 {
		t.Fatalf("past end %v", got)
	}
	mid := s.LRAt(50)
	want := 0.001 + (0.1-0.001)*0.5
	if math.Abs(mid-want) > 1e-12 {
		t.Fatalf("mid %v, want %v", mid, want)
	}
	// Monotone non-increasing.
	prev := math.Inf(1)
	for i := 0; i <= 100; i += 10 {
		cur := s.LRAt(i)
		if cur > prev {
			t.Fatal("cosine schedule not monotone")
		}
		prev = cur
	}
}

func TestStepSchedule(t *testing.T) {
	s := StepSchedule{Base: 1, Gamma: 0.1, Every: 10}
	if s.LRAt(0) != 1 || s.LRAt(9) != 1 {
		t.Fatal("first decade wrong")
	}
	if math.Abs(s.LRAt(10)-0.1) > 1e-12 || math.Abs(s.LRAt(25)-0.01) > 1e-12 {
		t.Fatalf("decay wrong: %v %v", s.LRAt(10), s.LRAt(25))
	}
	zero := StepSchedule{Base: 0.5}
	if zero.LRAt(100) != 0.5 {
		t.Fatal("Every=0 must hold Base")
	}
}

func TestActivationStats(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	net := NewSequential(
		NewConv2D("c", rng, 1, 4, 3, 3, 1, 1, true),
		NewReLU(),
		NewConv2D("c2", rng, 4, 4, 3, 3, 1, 1, true),
		NewReLU(),
	)
	stats := CollectActivationStats(net)
	x := tensor.Randn(rng, 1, 2, 1, 6, 6)
	net.Forward(x, false)
	if stats.Total == 0 {
		t.Fatal("no activations counted")
	}
	d := stats.Density()
	// Random-init conv outputs are ~half positive.
	if d < 0.2 || d > 0.8 {
		t.Fatalf("activation density %v implausible", d)
	}
	// Accumulates across calls.
	before := stats.Total
	net.Forward(x, false)
	if stats.Total != 2*before {
		t.Fatalf("stats did not accumulate: %d vs %d", stats.Total, before)
	}
}

func TestActivationStatsEmptyDensity(t *testing.T) {
	s := &ActStats{}
	if s.Density() != 1 {
		t.Fatal("empty stats must report density 1")
	}
}

func TestFinetuneAcceptsAdam(t *testing.T) {
	// Interface-level check: the pruning fine-tuner works with Adam too.
	var opt Optimizer = NewAdam(0.01, 0)
	rng := rand.New(rand.NewSource(85))
	lin := NewLinear("l", rng, 2, 2, true)
	lin.Weight.Grad.Fill(0.5)
	opt.Step([]*Param{lin.Weight})
}

func TestGELUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	x := tensor.Randn(rng, 1, 2, 8)
	labels := []int{2, 6}
	gradCheckLayer(t, &GELU{}, x, labels, 1e-4)
}

func TestGELUKnownValues(t *testing.T) {
	g := &GELU{}
	x := tensor.FromSlice([]float64{0, 3, -3}, 1, 3)
	y := g.Forward(x, false)
	if y.Data[0] != 0 {
		t.Fatalf("GELU(0) = %v", y.Data[0])
	}
	// Far from the origin GELU approaches identity / zero.
	if math.Abs(y.Data[1]-3) > 0.01 {
		t.Fatalf("GELU(3) = %v, want ≈3", y.Data[1])
	}
	if math.Abs(y.Data[2]) > 0.01 {
		t.Fatalf("GELU(-3) = %v, want ≈0", y.Data[2])
	}
}
