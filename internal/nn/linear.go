package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Linear is a fully connected layer y = x·Wᵀ + b with weight shape
// [Out, In]; the pruning view is the weight matrix itself (reduction
// dimension along columns).
type Linear struct {
	In, Out int
	Weight  *Param
	Bias    *Param

	x *tensor.Tensor
}

// NewLinear constructs a fully connected layer with He initialization.
func NewLinear(name string, rng *rand.Rand, in, out int, prunable bool) *Linear {
	std := math.Sqrt(2.0 / float64(in))
	l := &Linear{
		In:     in,
		Out:    out,
		Weight: newParam(name+".weight", tensor.Randn(rng, std, out, in), out, in, prunable),
		Bias:   newParam(name+".bias", tensor.New(out), out, 1, false),
	}
	l.Bias.NoDecay = true
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: Linear expects [N,%d], got %v", l.In, x.Shape))
	}
	n := x.Shape[0]
	weff := l.Weight.Effective()
	y := tensor.New(n, l.Out)
	// y = x · Wᵀ
	tensor.Gemm(false, true, n, l.Out, l.In, 1, x.Data, weff.Data, 0, y.Data)
	for b := 0; b < n; b++ {
		row := y.Data[b*l.Out : (b+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.W.Data[j]
		}
	}
	if train {
		l.x = x
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n := dy.Shape[0]
	// dW = dyᵀ · x (dense: straight-through estimator).
	dw := make([]float64, l.Out*l.In)
	tensor.Gemm(true, false, l.Out, l.In, n, 1, dy.Data, l.x.Data, 0, dw)
	l.Weight.Grad.AddInPlace(tensor.FromSlice(dw, l.Out, l.In))
	for b := 0; b < n; b++ {
		for j := 0; j < l.Out; j++ {
			l.Bias.Grad.Data[j] += dy.Data[b*l.Out+j]
		}
	}
	// dx = dy · Weff
	weff := l.Weight.Effective()
	dx := tensor.New(n, l.In)
	tensor.Gemm(false, false, n, l.In, l.Out, 1, dy.Data, weff.Data, 0, dx.Data)
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }
