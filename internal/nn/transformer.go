package nn

// Transformer building blocks — the paper's stated future work ("we plan to
// extend these results to transformer-based architectures"). All projection
// weights are ordinary prunable matrices (rows = output features, cols =
// reduction), so CRISP's hybrid N:M + block pruning applies unchanged.

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// TokenLinear applies a fully connected layer over the last dimension of a
// [N, T, D] token tensor.
type TokenLinear struct {
	In, Out int
	Weight  *Param
	Bias    *Param

	// LastTokens records T from the most recent forward pass (used by
	// FLOPs accounting).
	LastTokens int

	x *tensor.Tensor // cached [N*T, In]
}

// NewTokenLinear constructs the layer with He initialization.
func NewTokenLinear(name string, rng *rand.Rand, in, out int, prunable bool) *TokenLinear {
	std := math.Sqrt(2.0 / float64(in))
	l := &TokenLinear{
		In:     in,
		Out:    out,
		Weight: newParam(name+".weight", tensor.Randn(rng, std, out, in), out, in, prunable),
		Bias:   newParam(name+".bias", tensor.New(out), out, 1, false),
	}
	l.Bias.NoDecay = true
	return l
}

// Forward implements Layer.
func (l *TokenLinear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[2] != l.In {
		panic(fmt.Sprintf("nn: TokenLinear expects [N,T,%d], got %v", l.In, x.Shape))
	}
	n, t := x.Shape[0], x.Shape[1]
	l.LastTokens = t
	flat := x.Reshape(n*t, l.In)
	weff := l.Weight.Effective()
	y := tensor.New(n*t, l.Out)
	tensor.Gemm(false, true, n*t, l.Out, l.In, 1, flat.Data, weff.Data, 0, y.Data)
	for r := 0; r < n*t; r++ {
		row := y.Data[r*l.Out : (r+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.W.Data[j]
		}
	}
	if train {
		l.x = flat
	}
	return y.Reshape(n, t, l.Out)
}

// Backward implements Layer.
func (l *TokenLinear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, t := dy.Shape[0], dy.Shape[1]
	flatDy := dy.Reshape(n*t, l.Out)
	dw := make([]float64, l.Out*l.In)
	tensor.Gemm(true, false, l.Out, l.In, n*t, 1, flatDy.Data, l.x.Data, 0, dw)
	l.Weight.Grad.AddInPlace(tensor.FromSlice(dw, l.Out, l.In))
	for r := 0; r < n*t; r++ {
		for j := 0; j < l.Out; j++ {
			l.Bias.Grad.Data[j] += flatDy.Data[r*l.Out+j]
		}
	}
	weff := l.Weight.Effective()
	dx := tensor.New(n*t, l.In)
	tensor.Gemm(false, false, n*t, l.In, l.Out, 1, flatDy.Data, weff.Data, 0, dx.Data)
	return dx.Reshape(n, t, l.In)
}

// Params implements Layer.
func (l *TokenLinear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// LayerNorm normalizes the last dimension of [N, T, D] tokens with
// learnable gain and shift.
type LayerNorm struct {
	D   int
	Eps float64

	Gamma, Beta *Param

	xhat   *tensor.Tensor
	invStd []float64
}

// NewLayerNorm constructs the layer with gamma=1, beta=0.
func NewLayerNorm(name string, d int) *LayerNorm {
	ln := &LayerNorm{
		D:     d,
		Eps:   1e-5,
		Gamma: newParam(name+".gamma", tensor.Full(1, d), d, 1, false),
		Beta:  newParam(name+".beta", tensor.New(d), d, 1, false),
	}
	ln.Gamma.NoDecay = true
	ln.Beta.NoDecay = true
	return ln
}

// Forward implements Layer.
func (ln *LayerNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[2] != ln.D {
		panic(fmt.Sprintf("nn: LayerNorm expects [N,T,%d], got %v", ln.D, x.Shape))
	}
	rows := x.Shape[0] * x.Shape[1]
	y := tensor.New(x.Shape...)
	if train {
		ln.xhat = tensor.New(x.Shape...)
		if cap(ln.invStd) < rows {
			ln.invStd = make([]float64, rows)
		}
		ln.invStd = ln.invStd[:rows]
	}
	d := float64(ln.D)
	for r := 0; r < rows; r++ {
		seg := x.Data[r*ln.D : (r+1)*ln.D]
		mean := 0.0
		for _, v := range seg {
			mean += v
		}
		mean /= d
		variance := 0.0
		for _, v := range seg {
			variance += (v - mean) * (v - mean)
		}
		variance /= d
		inv := 1.0 / math.Sqrt(variance+ln.Eps)
		out := y.Data[r*ln.D : (r+1)*ln.D]
		for i, v := range seg {
			xh := (v - mean) * inv
			out[i] = ln.Gamma.W.Data[i]*xh + ln.Beta.W.Data[i]
			if train {
				ln.xhat.Data[r*ln.D+i] = xh
			}
		}
		if train {
			ln.invStd[r] = inv
		}
	}
	return y
}

// Backward implements Layer.
func (ln *LayerNorm) Backward(dy *tensor.Tensor) *tensor.Tensor {
	rows := dy.Shape[0] * dy.Shape[1]
	dx := tensor.New(dy.Shape...)
	d := float64(ln.D)
	for r := 0; r < rows; r++ {
		sumDy, sumDyXhat := 0.0, 0.0
		for i := 0; i < ln.D; i++ {
			g := dy.Data[r*ln.D+i] * ln.Gamma.W.Data[i]
			xh := ln.xhat.Data[r*ln.D+i]
			sumDy += g
			sumDyXhat += g * xh
			ln.Gamma.Grad.Data[i] += dy.Data[r*ln.D+i] * xh
			ln.Beta.Grad.Data[i] += dy.Data[r*ln.D+i]
		}
		inv := ln.invStd[r]
		for i := 0; i < ln.D; i++ {
			g := dy.Data[r*ln.D+i] * ln.Gamma.W.Data[i]
			xh := ln.xhat.Data[r*ln.D+i]
			dx.Data[r*ln.D+i] = inv / d * (d*g - sumDy - xh*sumDyXhat)
		}
	}
	return dx
}

// Params implements Layer.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// MultiHeadAttention is standard scaled-dot-product self-attention over
// [N, T, D] tokens with H heads. The four projections are prunable D×D
// matrices.
type MultiHeadAttention struct {
	D, Heads       int
	Wq, Wk, Wv, Wo *Param

	// LastTokens records T from the most recent forward pass.
	LastTokens int

	// caches
	x       *tensor.Tensor // [N,T,D]
	q, k, v *tensor.Tensor // [N,T,D]
	attn    []float64      // per (batch, head): T×T softmax rows
	z       *tensor.Tensor // pre-output-projection [N,T,D]
}

// NewMultiHeadAttention constructs the layer; heads must divide d.
func NewMultiHeadAttention(name string, rng *rand.Rand, d, heads int) *MultiHeadAttention {
	if heads <= 0 || d%heads != 0 {
		panic(fmt.Sprintf("nn: %d heads must divide model dim %d", heads, d))
	}
	std := math.Sqrt(1.0 / float64(d))
	mk := func(suffix string) *Param {
		return newParam(name+"."+suffix, tensor.Randn(rng, std, d, d), d, d, true)
	}
	return &MultiHeadAttention{D: d, Heads: heads, Wq: mk("wq"), Wk: mk("wk"), Wv: mk("wv"), Wo: mk("wo")}
}

// project computes x·Wᵀ over tokens.
func (m *MultiHeadAttention) project(x *tensor.Tensor, p *Param) *tensor.Tensor {
	n, t := x.Shape[0], x.Shape[1]
	weff := p.Effective()
	out := tensor.New(n*t, m.D)
	tensor.Gemm(false, true, n*t, m.D, m.D, 1, x.Reshape(n*t, m.D).Data, weff.Data, 0, out.Data)
	return out.Reshape(n, t, m.D)
}

// Forward implements Layer.
func (m *MultiHeadAttention) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[2] != m.D {
		panic(fmt.Sprintf("nn: MultiHeadAttention expects [N,T,%d], got %v", m.D, x.Shape))
	}
	n, t := x.Shape[0], x.Shape[1]
	m.LastTokens = t
	dh := m.D / m.Heads
	scale := 1.0 / math.Sqrt(float64(dh))

	q := m.project(x, m.Wq)
	k := m.project(x, m.Wk)
	v := m.project(x, m.Wv)
	z := tensor.New(n, t, m.D)
	attn := make([]float64, n*m.Heads*t*t)

	for b := 0; b < n; b++ {
		for h := 0; h < m.Heads; h++ {
			off := h * dh
			aBase := (b*m.Heads + h) * t * t
			// S[i][j] = q_i · k_j * scale; softmax rows → A; Z = A·V.
			for i := 0; i < t; i++ {
				qi := q.Data[(b*t+i)*m.D+off : (b*t+i)*m.D+off+dh]
				row := attn[aBase+i*t : aBase+(i+1)*t]
				maxv := math.Inf(-1)
				for j := 0; j < t; j++ {
					kj := k.Data[(b*t+j)*m.D+off : (b*t+j)*m.D+off+dh]
					s := 0.0
					for l, qv := range qi {
						s += qv * kj[l]
					}
					row[j] = s * scale
					if row[j] > maxv {
						maxv = row[j]
					}
				}
				sum := 0.0
				for j := range row {
					row[j] = math.Exp(row[j] - maxv)
					sum += row[j]
				}
				zi := z.Data[(b*t+i)*m.D+off : (b*t+i)*m.D+off+dh]
				for j := range row {
					row[j] /= sum
					vj := v.Data[(b*t+j)*m.D+off : (b*t+j)*m.D+off+dh]
					for l := range zi {
						zi[l] += row[j] * vj[l]
					}
				}
			}
		}
	}
	out := m.project(z, m.Wo)
	if train {
		m.x, m.q, m.k, m.v, m.z, m.attn = x, q, k, v, z, attn
	}
	return out
}

// Backward implements Layer.
func (m *MultiHeadAttention) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, t := dy.Shape[0], dy.Shape[1]
	dh := m.D / m.Heads
	scale := 1.0 / math.Sqrt(float64(dh))

	// Through the output projection: dz = dy·Wo; dWo = dyᵀ·z.
	dz := tensor.New(n*t, m.D)
	woEff := m.Wo.Effective()
	tensor.Gemm(false, false, n*t, m.D, m.D, 1, dy.Reshape(n*t, m.D).Data, woEff.Data, 0, dz.Data)
	dwo := make([]float64, m.D*m.D)
	tensor.Gemm(true, false, m.D, m.D, n*t, 1, dy.Reshape(n*t, m.D).Data, m.z.Reshape(n*t, m.D).Data, 0, dwo)
	m.Wo.Grad.AddInPlace(tensor.FromSlice(dwo, m.D, m.D))

	dq := tensor.New(n, t, m.D)
	dk := tensor.New(n, t, m.D)
	dv := tensor.New(n, t, m.D)
	for b := 0; b < n; b++ {
		for h := 0; h < m.Heads; h++ {
			off := h * dh
			aBase := (b*m.Heads + h) * t * t
			for i := 0; i < t; i++ {
				dzi := dz.Data[(b*t+i)*m.D+off : (b*t+i)*m.D+off+dh]
				row := m.attn[aBase+i*t : aBase+(i+1)*t]
				// dA[j] = dz_i · v_j ; dV_j += A[j]·dz_i.
				da := make([]float64, t)
				dot := 0.0
				for j := 0; j < t; j++ {
					vj := m.v.Data[(b*t+j)*m.D+off : (b*t+j)*m.D+off+dh]
					dvj := dv.Data[(b*t+j)*m.D+off : (b*t+j)*m.D+off+dh]
					s := 0.0
					for l := range dzi {
						s += dzi[l] * vj[l]
						dvj[l] += row[j] * dzi[l]
					}
					da[j] = s
					dot += s * row[j]
				}
				// Softmax backward: dS[j] = A[j]·(dA[j] − Σ A·dA), then the
				// 1/√dh scale.
				qi := m.q.Data[(b*t+i)*m.D+off : (b*t+i)*m.D+off+dh]
				dqi := dq.Data[(b*t+i)*m.D+off : (b*t+i)*m.D+off+dh]
				for j := 0; j < t; j++ {
					ds := row[j] * (da[j] - dot) * scale
					kj := m.k.Data[(b*t+j)*m.D+off : (b*t+j)*m.D+off+dh]
					dkj := dk.Data[(b*t+j)*m.D+off : (b*t+j)*m.D+off+dh]
					for l := range dqi {
						dqi[l] += ds * kj[l]
						dkj[l] += ds * qi[l]
					}
				}
			}
		}
	}

	// Through the Q/K/V projections.
	dx := tensor.New(n*t, m.D)
	backProj := func(d *tensor.Tensor, p *Param) {
		dwp := make([]float64, m.D*m.D)
		tensor.Gemm(true, false, m.D, m.D, n*t, 1, d.Reshape(n*t, m.D).Data, m.x.Reshape(n*t, m.D).Data, 0, dwp)
		p.Grad.AddInPlace(tensor.FromSlice(dwp, m.D, m.D))
		weff := p.Effective()
		tensor.Gemm(false, false, n*t, m.D, m.D, 1, d.Reshape(n*t, m.D).Data, weff.Data, 1, dx.Data)
	}
	backProj(dq, m.Wq)
	backProj(dk, m.Wk)
	backProj(dv, m.Wv)
	return dx.Reshape(n, t, m.D)
}

// Params implements Layer.
func (m *MultiHeadAttention) Params() []*Param {
	return []*Param{m.Wq, m.Wk, m.Wv, m.Wo}
}

// PatchEmbed splits [N, C, H, W] images into P×P patches and projects each
// to a D-dimensional token, producing [N, (H/P)·(W/P), D]. H and W must be
// multiples of P.
type PatchEmbed struct {
	C, P, D int
	Weight  *Param
	Bias    *Param

	// LastTokens records T from the most recent forward pass.
	LastTokens int

	patches *tensor.Tensor // [N*T, C*P*P]
	inShape []int
}

// NewPatchEmbed constructs the embedding.
func NewPatchEmbed(name string, rng *rand.Rand, c, p, d int) *PatchEmbed {
	in := c * p * p
	std := math.Sqrt(2.0 / float64(in))
	pe := &PatchEmbed{
		C: c, P: p, D: d,
		Weight: newParam(name+".weight", tensor.Randn(rng, std, d, in), d, in, true),
		Bias:   newParam(name+".bias", tensor.New(d), d, 1, false),
	}
	pe.Bias.NoDecay = true
	return pe
}

// tokens returns the patch count for an H×W image.
func (pe *PatchEmbed) tokens(h, w int) int { return (h / pe.P) * (w / pe.P) }

// ExtractPatches gathers patch vectors: row (b, ty, tx) is the flattened
// [C,P,P] patch. Exposed for the sparse inference engine.
func (pe *PatchEmbed) ExtractPatches(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	return pe.ExtractPatchesInto(x, tensor.New(n*(h/pe.P)*(w/pe.P), c*pe.P*pe.P))
}

// ExtractPatchesInto is ExtractPatches writing into out, which must have
// shape [N*T, C*P*P]. Every element of out is written, so it may be an
// uninitialized scratch buffer. Returns out.
func (pe *PatchEmbed) ExtractPatchesInto(x, out *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	ty, tx := h/pe.P, w/pe.P
	in := c * pe.P * pe.P
	if len(out.Shape) != 2 || out.Shape[0] != n*ty*tx || out.Shape[1] != in {
		panic(fmt.Sprintf("nn: ExtractPatchesInto out %v, want [%d %d]", out.Shape, n*ty*tx, in))
	}
	for b := 0; b < n; b++ {
		for py := 0; py < ty; py++ {
			for px := 0; px < tx; px++ {
				row := out.Data[((b*ty+py)*tx+px)*in : ((b*ty+py)*tx+px+1)*in]
				idx := 0
				for ch := 0; ch < c; ch++ {
					for yy := 0; yy < pe.P; yy++ {
						src := x.Data[((b*c+ch)*h+py*pe.P+yy)*w+px*pe.P : ((b*c+ch)*h+py*pe.P+yy)*w+px*pe.P+pe.P]
						copy(row[idx:idx+pe.P], src)
						idx += pe.P
					}
				}
			}
		}
	}
	return out
}

// Forward implements Layer.
func (pe *PatchEmbed) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != pe.C {
		panic(fmt.Sprintf("nn: PatchEmbed expects [N,%d,H,W], got %v", pe.C, x.Shape))
	}
	if x.Shape[2]%pe.P != 0 || x.Shape[3]%pe.P != 0 {
		panic(fmt.Sprintf("nn: PatchEmbed size %d does not divide input %v", pe.P, x.Shape))
	}
	n := x.Shape[0]
	t := pe.tokens(x.Shape[2], x.Shape[3])
	pe.LastTokens = t
	in := pe.C * pe.P * pe.P
	patches := pe.ExtractPatches(x)
	weff := pe.Weight.Effective()
	y := tensor.New(n*t, pe.D)
	tensor.Gemm(false, true, n*t, pe.D, in, 1, patches.Data, weff.Data, 0, y.Data)
	for r := 0; r < n*t; r++ {
		for j := 0; j < pe.D; j++ {
			y.Data[r*pe.D+j] += pe.Bias.W.Data[j]
		}
	}
	if train {
		pe.patches = patches
		pe.inShape = append(pe.inShape[:0], x.Shape...)
	}
	return y.Reshape(n, t, pe.D)
}

// Backward implements Layer.
func (pe *PatchEmbed) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, t := dy.Shape[0], dy.Shape[1]
	in := pe.C * pe.P * pe.P
	flat := dy.Reshape(n*t, pe.D)
	dw := make([]float64, pe.D*in)
	tensor.Gemm(true, false, pe.D, in, n*t, 1, flat.Data, pe.patches.Data, 0, dw)
	pe.Weight.Grad.AddInPlace(tensor.FromSlice(dw, pe.D, in))
	for r := 0; r < n*t; r++ {
		for j := 0; j < pe.D; j++ {
			pe.Bias.Grad.Data[j] += flat.Data[r*pe.D+j]
		}
	}
	weff := pe.Weight.Effective()
	dpatches := tensor.New(n*t, in)
	tensor.Gemm(false, false, n*t, in, pe.D, 1, flat.Data, weff.Data, 0, dpatches.Data)
	// Scatter patch gradients back to image layout.
	c, h, w := pe.inShape[1], pe.inShape[2], pe.inShape[3]
	ty, tx := h/pe.P, w/pe.P
	dx := tensor.New(pe.inShape...)
	for b := 0; b < n; b++ {
		for py := 0; py < ty; py++ {
			for px := 0; px < tx; px++ {
				row := dpatches.Data[((b*ty+py)*tx+px)*in : ((b*ty+py)*tx+px+1)*in]
				idx := 0
				for ch := 0; ch < c; ch++ {
					for yy := 0; yy < pe.P; yy++ {
						dst := dx.Data[((b*c+ch)*h+py*pe.P+yy)*w+px*pe.P : ((b*c+ch)*h+py*pe.P+yy)*w+px*pe.P+pe.P]
						copy(dst, row[idx:idx+pe.P])
						idx += pe.P
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (pe *PatchEmbed) Params() []*Param { return []*Param{pe.Weight, pe.Bias} }

// MeanPoolTokens averages [N, T, D] tokens to [N, D] for the classifier.
type MeanPoolTokens struct {
	t int
}

// Forward implements Layer.
func (mp *MeanPoolTokens) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("nn: MeanPoolTokens expects [N,T,D], got %v", x.Shape))
	}
	n, t, d := x.Shape[0], x.Shape[1], x.Shape[2]
	mp.t = t
	y := tensor.New(n, d)
	inv := 1.0 / float64(t)
	for b := 0; b < n; b++ {
		for tt := 0; tt < t; tt++ {
			for j := 0; j < d; j++ {
				y.Data[b*d+j] += x.Data[(b*t+tt)*d+j] * inv
			}
		}
	}
	return y
}

// Backward implements Layer.
func (mp *MeanPoolTokens) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, d := dy.Shape[0], dy.Shape[1]
	dx := tensor.New(n, mp.t, d)
	inv := 1.0 / float64(mp.t)
	for b := 0; b < n; b++ {
		for tt := 0; tt < mp.t; tt++ {
			for j := 0; j < d; j++ {
				dx.Data[(b*mp.t+tt)*d+j] = dy.Data[b*d+j] * inv
			}
		}
	}
	return dx
}

// Params implements Layer.
func (mp *MeanPoolTokens) Params() []*Param { return nil }
