package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// lossOf runs a forward pass through layer and the softmax-CE loss,
// used as the scalar objective for finite-difference checks.
func lossOf(layer Layer, x *tensor.Tensor, labels []int) float64 {
	y := layer.Forward(x, true)
	if len(y.Shape) == 4 {
		y = y.Reshape(y.Shape[0], -1)
	}
	loss, _ := SoftmaxCrossEntropy(y, labels)
	return loss
}

// gradCheckLayer compares analytic parameter and input gradients of layer
// against central finite differences.
func gradCheckLayer(t *testing.T, layer Layer, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	// Analytic gradients.
	ZeroGrad(layer.Params())
	y := layer.Forward(x, true)
	flat := y
	if len(y.Shape) == 4 {
		flat = y.Reshape(y.Shape[0], -1)
	}
	_, dflat := SoftmaxCrossEntropy(flat, labels)
	dy := dflat
	if len(y.Shape) == 4 {
		dy = dflat.Reshape(y.Shape...)
	}
	dx := layer.Backward(dy)

	const h = 1e-5
	// Parameter gradients.
	for _, p := range layer.Params() {
		step := (p.W.Len() + 9) / 10 // probe ≤10 entries per tensor
		if step == 0 {
			step = 1
		}
		for i := 0; i < p.W.Len(); i += step {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			lp := lossOf(layer, x, labels)
			p.W.Data[i] = orig - h
			lm := lossOf(layer, x, labels)
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-p.Grad.Data[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
	// Input gradients.
	step := (x.Len() + 9) / 10
	if step == 0 {
		step = 1
	}
	for i := 0; i < x.Len(); i += step {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := lossOf(layer, x, labels)
		x.Data[i] = orig - h
		lm := lossOf(layer, x, labels)
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-dx.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("input grad[%d]: analytic %v vs numeric %v", i, dx.Data[i], num)
		}
	}
}

func TestConv2DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	conv := NewConv2D("c", rng, 2, 3, 3, 3, 1, 1, true)
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	labels := []int{5, 17}
	gradCheckLayer(t, conv, x, labels, 1e-4)
}

func TestConv2DStridedGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	conv := NewConv2D("c", rng, 2, 4, 3, 3, 2, 1, false)
	x := tensor.Randn(rng, 1, 2, 2, 5, 5)
	labels := []int{3, 20}
	gradCheckLayer(t, conv, x, labels, 1e-4)
}

func TestConv2DMaskedGradCheck(t *testing.T) {
	// The STE contract: masked forward, dense gradient. Numeric gradient of
	// the *effective* function w.r.t. a masked weight is zero only through
	// the mask; our dense gradient intentionally differs there. So we check
	// gradients only at unmasked positions.
	rng := rand.New(rand.NewSource(12))
	conv := NewConv2D("c", rng, 2, 3, 3, 3, 1, 1, false)
	mask := conv.Weight.EnsureMask()
	for i := range mask.Data {
		if i%2 == 0 {
			mask.Data[i] = 0
		}
	}
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	labels := []int{0, 10}

	ZeroGrad(conv.Params())
	y := conv.Forward(x, true)
	flat := y.Reshape(2, -1)
	_, dflat := SoftmaxCrossEntropy(flat, labels)
	conv.Backward(dflat.Reshape(y.Shape...))

	const h = 1e-5
	for i := 0; i < conv.Weight.W.Len(); i += 7 {
		if mask.Data[i] == 0 {
			continue // STE: dense grad deliberately nonzero where numeric is 0
		}
		orig := conv.Weight.W.Data[i]
		conv.Weight.W.Data[i] = orig + h
		lp := lossOf(conv, x, labels)
		conv.Weight.W.Data[i] = orig - h
		lm := lossOf(conv, x, labels)
		conv.Weight.W.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-conv.Weight.Grad.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("masked conv grad[%d]: analytic %v vs numeric %v", i, conv.Weight.Grad.Data[i], num)
		}
	}
}

func TestDepthwiseConv2DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dw := NewDepthwiseConv2D("d", rng, 3, 3, 3, 1, 1, true)
	x := tensor.Randn(rng, 1, 2, 3, 4, 4)
	labels := []int{1, 30}
	gradCheckLayer(t, dw, x, labels, 1e-4)
}

func TestDepthwiseConv2DStridedGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	dw := NewDepthwiseConv2D("d", rng, 2, 3, 3, 2, 1, false)
	x := tensor.Randn(rng, 1, 2, 2, 5, 5)
	labels := []int{0, 8}
	gradCheckLayer(t, dw, x, labels, 1e-4)
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	lin := NewLinear("l", rng, 6, 4, true)
	x := tensor.Randn(rng, 1, 3, 6)
	labels := []int{0, 3, 2}
	gradCheckLayer(t, lin, x, labels, 1e-5)
}

func TestBatchNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	bn := NewBatchNorm2D("bn", 2)
	// Perturb gamma/beta away from the identity so gradients are generic.
	bn.Gamma.W.Data[0] = 1.3
	bn.Gamma.W.Data[1] = 0.7
	bn.Beta.W.Data[0] = 0.2
	x := tensor.Randn(rng, 1, 3, 2, 3, 3)
	labels := []int{4, 9, 0}
	gradCheckLayer(t, bn, x, labels, 1e-3)
}

func TestReLUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := tensor.Randn(rng, 1, 2, 8)
	// Push values away from the kink at 0 so finite differences are clean.
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.1 {
			x.Data[i] += 0.3
		}
	}
	labels := []int{2, 6}
	gradCheckLayer(t, NewReLU(), x, labels, 1e-5)
}

func TestReLU6GradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	x := tensor.Uniform(rng, -2, 8, 2, 8)
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.1 || math.Abs(x.Data[i]-6) < 0.1 {
			x.Data[i] += 0.3
		}
	}
	labels := []int{1, 5}
	gradCheckLayer(t, NewReLU6(), x, labels, 1e-5)
}

func TestMaxPoolGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	labels := []int{3, 7}
	gradCheckLayer(t, NewMaxPool2D(2, 2), x, labels, 1e-5)
}

func TestGlobalAvgPoolGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := tensor.Randn(rng, 1, 2, 3, 4, 4)
	labels := []int{0, 2}
	gradCheckLayer(t, &GlobalAvgPool{}, x, labels, 1e-5)
}

func TestResidualGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	main := NewSequential(
		NewConv2D("m1", rng, 2, 2, 3, 3, 1, 1, true),
		NewReLU(),
		NewConv2D("m2", rng, 2, 2, 3, 3, 1, 1, true),
	)
	res := NewResidual(main, nil)
	x := tensor.Randn(rng, 1, 2, 2, 3, 3)
	labels := []int{5, 11}
	gradCheckLayer(t, res, x, labels, 1e-4)
}

func TestResidualProjectionGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	main := NewSequential(
		NewConv2D("m1", rng, 2, 4, 3, 3, 2, 1, true),
	)
	short := NewSequential(
		NewConv2D("s1", rng, 2, 4, 1, 1, 2, 0, true),
	)
	res := NewResidual(main, short)
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	labels := []int{7, 13}
	gradCheckLayer(t, res, x, labels, 1e-4)
}

func TestSequentialEndToEndGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := NewSequential(
		NewConv2D("c1", rng, 1, 3, 3, 3, 1, 1, false),
		NewBatchNorm2D("bn1", 3),
		NewReLU(),
		NewMaxPool2D(2, 2),
		&Flatten{},
		NewLinear("fc", rng, 3*2*2, 5, true),
	)
	x := tensor.Randn(rng, 1, 2, 1, 4, 4)
	labels := []int{0, 4}
	gradCheckLayer(t, net, x, labels, 1e-3)
}
