package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss over a batch of
// logits [N, C] with integer labels, returning the loss and dL/dlogits.
// The softmax is computed in a numerically stable way (max-shifted).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if len(logits.Shape) != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy expects [N,C] logits, got %v", logits.Shape))
	}
	n, c := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	grad := tensor.New(n, c)
	loss := 0.0
	invN := 1.0 / float64(n)
	for b := 0; b < n; b++ {
		row := logits.Data[b*c : (b+1)*c]
		if labels[b] < 0 || labels[b] >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", labels[b], c))
		}
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		logSum := math.Log(sum) + maxv
		loss += (logSum - row[labels[b]]) * invN
		g := grad.Data[b*c : (b+1)*c]
		for j, v := range row {
			g[j] = math.Exp(v-logSum) * invN
		}
		g[labels[b]] -= invN
	}
	return loss, grad
}

// Softmax returns row-wise softmax probabilities for logits [N, C].
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, c := logits.Shape[0], logits.Shape[1]
	out := tensor.New(n, c)
	for b := 0; b < n; b++ {
		row := logits.Data[b*c : (b+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		o := out.Data[b*c : (b+1)*c]
		for j, v := range row {
			o[j] = math.Exp(v - maxv)
			sum += o[j]
		}
		for j := range o {
			o[j] /= sum
		}
	}
	return out
}
