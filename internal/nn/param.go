// Package nn is a small, self-contained neural-network substrate: conv /
// depthwise-conv / linear / batch-norm / pooling layers with exact
// backpropagation, a softmax cross-entropy loss, and SGD with momentum.
//
// Every learnable parameter carries an optional binary pruning mask. The
// forward pass always uses the effective weight W ⊙ Mask, while the backward
// pass accumulates *dense* gradients (the straight-through estimator from the
// CRISP paper): pruned weights keep receiving gradient signal and may revive
// when the mask is recomputed at the next pruning iteration.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is one learnable tensor with its gradient and optional pruning mask.
type Param struct {
	// Name identifies the parameter for reporting ("conv1.weight", ...).
	Name string
	// W holds the dense weights. Pruning never zeroes W itself; it only
	// writes the mask, so the straight-through estimator can revive weights.
	W *tensor.Tensor
	// Grad accumulates dL/dW (dense, unmasked).
	Grad *tensor.Tensor
	// Mask, when non-nil, is a {0,1} tensor with W's volume. The layer
	// forward pass multiplies it in.
	Mask *tensor.Tensor

	// Rows and Cols describe the 2-D pruning view of W: the reshaped matrix
	// has Rows output rows and Cols reduction columns (Rows*Cols == W.Len()).
	Rows, Cols int

	// Prunable marks weights eligible for CRISP pruning (conv and linear
	// weights; biases and norm parameters are not).
	Prunable bool
	// BlockExempt marks prunable weights that receive only N:M pruning and
	// no coarse block pruning (e.g. tiny depthwise kernels).
	BlockExempt bool
	// NoDecay excludes the parameter from weight decay (biases, norm params).
	NoDecay bool
}

// newParam allocates a parameter with a zeroed gradient and no mask.
func newParam(name string, w *tensor.Tensor, rows, cols int, prunable bool) *Param {
	if rows*cols != w.Len() {
		panic(fmt.Sprintf("nn: param %s matrix view %dx%d does not cover %d elements", name, rows, cols, w.Len()))
	}
	return &Param{
		Name:     name,
		W:        w,
		Grad:     tensor.New(w.Shape...),
		Rows:     rows,
		Cols:     cols,
		Prunable: prunable,
	}
}

// Effective returns W ⊙ Mask as a fresh tensor (or a copy of W when no mask
// is set). Callers may mutate the result freely.
func (p *Param) Effective() *tensor.Tensor {
	e := p.W.Clone()
	if p.Mask != nil {
		e.MulInPlace(p.Mask)
	}
	return e
}

// EnsureMask returns the parameter's mask, allocating an all-ones mask on
// first use.
func (p *Param) EnsureMask() *tensor.Tensor {
	if p.Mask == nil {
		p.Mask = tensor.Full(1, p.W.Shape...)
	}
	return p.Mask
}

// ClearMask removes the mask, restoring dense behaviour.
func (p *Param) ClearMask() { p.Mask = nil }

// Density returns the kept fraction under the current mask (1.0 when dense).
func (p *Param) Density() float64 {
	if p.Mask == nil {
		return 1
	}
	return float64(p.Mask.CountNonZero()) / float64(p.Mask.Len())
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// MatrixView returns W reshaped to the (Rows, Cols) pruning view. The view
// shares storage with W.
func (p *Param) MatrixView() *tensor.Tensor { return p.W.Reshape(p.Rows, p.Cols) }

// MaskMatrixView returns the mask reshaped to (Rows, Cols), allocating the
// mask if needed. The view shares storage with the mask.
func (p *Param) MaskMatrixView() *tensor.Tensor { return p.EnsureMask().Reshape(p.Rows, p.Cols) }
