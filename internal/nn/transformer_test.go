package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// tokenLoss adapts the rank-3 token output to the scalar loss used by the
// shared gradient checker: tokens are mean-pooled then fed to softmax-CE.
func tokenGradCheck(t *testing.T, layer Layer, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	pool := &MeanPoolTokens{}
	wrapped := NewSequential(layer, pool)
	gradCheckLayer(t, wrapped, x, labels, tol)
}

func TestTokenLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	l := NewTokenLinear("tl", rng, 6, 5, true)
	x := tensor.Randn(rng, 1, 2, 3, 6)
	tokenGradCheck(t, l, x, []int{1, 4}, 1e-5)
}

func TestTokenLinearMaskedSTE(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	l := NewTokenLinear("tl", rng, 4, 4, true)
	mask := l.Weight.EnsureMask()
	for i := range mask.Data {
		mask.Data[i] = 0
	}
	x := tensor.Randn(rng, 1, 2, 3, 4)
	y := l.Forward(x, true)
	// Fully masked: output equals the bias everywhere.
	for r := 0; r < 6; r++ {
		for j := 0; j < 4; j++ {
			if y.Data[r*4+j] != l.Bias.W.Data[j] {
				t.Fatal("masked TokenLinear leaked weights")
			}
		}
	}
	_, dlogits := SoftmaxCrossEntropy((&MeanPoolTokens{}).Forward(y, true), []int{0, 1})
	l.Backward((&MeanPoolTokens{t: 3}).Backward(dlogits))
	if l.Weight.Grad.AbsSum() == 0 {
		t.Fatal("STE violated for TokenLinear")
	}
}

func TestLayerNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ln := NewLayerNorm("ln", 5)
	ln.Gamma.W.Data[0] = 1.4
	ln.Beta.W.Data[2] = -0.3
	x := tensor.Randn(rng, 1, 2, 3, 5)
	tokenGradCheck(t, ln, x, []int{0, 3}, 1e-3)
}

func TestLayerNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	ln := NewLayerNorm("ln", 8)
	x := tensor.Randn(rng, 3, 2, 4, 8)
	for i := range x.Data {
		x.Data[i] = x.Data[i]*2 + 5
	}
	y := ln.Forward(x, false)
	for r := 0; r < 8; r++ {
		seg := y.Data[r*8 : (r+1)*8]
		mean, sq := 0.0, 0.0
		for _, v := range seg {
			mean += v
			sq += v * v
		}
		mean /= 8
		variance := sq/8 - mean*mean
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("row %d mean %v var %v", r, mean, variance)
		}
	}
}

func TestMultiHeadAttentionGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	m := NewMultiHeadAttention("attn", rng, 4, 2)
	x := tensor.Randn(rng, 1, 2, 3, 4)
	tokenGradCheck(t, m, x, []int{1, 2}, 1e-3)
}

func TestMultiHeadAttentionRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	m := NewMultiHeadAttention("attn", rng, 6, 3)
	x := tensor.Randn(rng, 1, 2, 4, 6)
	m.Forward(x, true)
	tt := 4
	for r := 0; r < 2*3; r++ { // batches × heads
		for i := 0; i < tt; i++ {
			sum := 0.0
			for j := 0; j < tt; j++ {
				sum += m.attn[r*tt*tt+i*tt+j]
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("attention row sums to %v", sum)
			}
		}
	}
}

func TestMultiHeadAttentionHeadsMustDivide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when heads do not divide d")
		}
	}()
	NewMultiHeadAttention("bad", rand.New(rand.NewSource(1)), 5, 2)
}

func TestPatchEmbedGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	pe := NewPatchEmbed("patch", rng, 2, 2, 5)
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	tokenGradCheck(t, pe, x, []int{0, 4}, 1e-4)
}

func TestPatchEmbedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	pe := NewPatchEmbed("patch", rng, 3, 4, 7)
	x := tensor.Randn(rng, 1, 2, 3, 8, 8)
	y := pe.Forward(x, false)
	if y.Shape[0] != 2 || y.Shape[1] != 4 || y.Shape[2] != 7 {
		t.Fatalf("patch tokens %v, want [2,4,7]", y.Shape)
	}
}

func TestPatchEmbedExtractValues(t *testing.T) {
	// 1 channel, 4×4 image, 2×2 patches → 4 tokens of 4 values each.
	pe := NewPatchEmbed("patch", rand.New(rand.NewSource(39)), 1, 2, 3)
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	patches := pe.ExtractPatches(x)
	want := [][]float64{
		{1, 2, 5, 6}, {3, 4, 7, 8}, {9, 10, 13, 14}, {11, 12, 15, 16},
	}
	for i, w := range want {
		for j, v := range w {
			if patches.At(i, j) != v {
				t.Fatalf("patch %d[%d] = %v, want %v", i, j, patches.At(i, j), v)
			}
		}
	}
}

func TestMeanPoolTokensRoundTrip(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4, // token 0
		5, 6, 7, 8, // token 1
	}, 1, 2, 4)
	mp := &MeanPoolTokens{}
	y := mp.Forward(x, true)
	want := []float64{3, 4, 5, 6}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
	dx := mp.Backward(tensor.FromSlice([]float64{2, 2, 2, 2}, 1, 4))
	for _, v := range dx.Data {
		if v != 1 {
			t.Fatalf("pool backward %v, want 1", v)
		}
	}
}

func TestTransformerEndToEndGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	d := 4
	net := NewSequential(
		NewPatchEmbed("patch", rng, 1, 2, d),
		NewResidual(NewSequential(
			NewLayerNorm("ln1", d),
			NewMultiHeadAttention("attn", rng, d, 2),
		), nil),
		NewResidual(NewSequential(
			NewLayerNorm("ln2", d),
			NewTokenLinear("fc1", rng, d, 2*d, true),
			NewReLU(),
			NewTokenLinear("fc2", rng, 2*d, d, true),
		), nil),
		&MeanPoolTokens{},
		NewLinear("head", rng, d, 3, false),
	)
	x := tensor.Randn(rng, 1, 2, 1, 4, 4)
	gradCheckLayer(t, net, x, []int{0, 2}, 2e-3)
}
