package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer is the interface shared by SGD and Adam; Step applies one
// update from the accumulated gradients and clears them.
type Optimizer interface {
	Step(params []*Param)
}

// compile-time checks.
var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Adam)(nil)
)

// Adam is the Adam optimizer with decoupled weight decay (AdamW-style),
// provided as an alternative fine-tuner for the pruning loop.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

// NewAdam constructs the optimizer with standard betas (0.9, 0.999).
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		WeightDecay: weightDecay,
		m:           map[*Param]*tensor.Tensor{},
		v:           map[*Param]*tensor.Tensor{},
	}
}

// Step implements Optimizer. Like SGD.Step it updates masked weights too —
// the straight-through estimator keeps pruned weights training.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m := a.m[p]
		if m == nil {
			m = tensor.New(p.W.Shape...)
			a.m[p] = m
		}
		v := a.v[p]
		if v == nil {
			v = tensor.New(p.W.Shape...)
			a.v[p] = v
		}
		wd := a.WeightDecay
		if p.NoDecay {
			wd = 0
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mHat := m.Data[i] / bc1
			vHat := v.Data[i] / bc2
			p.W.Data[i] -= a.LR * (mHat/(math.Sqrt(vHat)+a.Eps) + wd*p.W.Data[i])
		}
		p.ZeroGrad()
	}
}

// LRSchedule maps a 0-based step index to a learning rate.
type LRSchedule interface {
	LRAt(step int) float64
}

// CosineSchedule anneals from Base to Floor over Steps with a half-cosine.
type CosineSchedule struct {
	Base, Floor float64
	Steps       int
}

// LRAt implements LRSchedule.
func (c CosineSchedule) LRAt(step int) float64 {
	if step >= c.Steps {
		return c.Floor
	}
	t := float64(step) / float64(c.Steps)
	return c.Floor + (c.Base-c.Floor)*0.5*(1+math.Cos(math.Pi*t))
}

// StepSchedule multiplies Base by Gamma every Every steps.
type StepSchedule struct {
	Base  float64
	Gamma float64
	Every int
}

// LRAt implements LRSchedule.
func (s StepSchedule) LRAt(step int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(step/s.Every))
}
