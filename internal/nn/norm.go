package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm2D normalizes each channel over (N, H, W) with learnable scale
// gamma and shift beta, tracking running statistics for evaluation.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate (paper setup uses 0.9 decay)

	Gamma, Beta *Param
	RunMean     *tensor.Tensor
	RunVar      *tensor.Tensor

	// caches for backward
	xhat    *tensor.Tensor
	invStd  []float64
	inShape []int
}

// NewBatchNorm2D builds a batch-norm layer with gamma=1, beta=0.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C:        c,
		Eps:      1e-5,
		Momentum: 0.1,
		Gamma:    newParam(name+".gamma", tensor.Full(1, c), c, 1, false),
		Beta:     newParam(name+".beta", tensor.New(c), c, 1, false),
		RunMean:  tensor.New(c),
		RunVar:   tensor.Full(1, c),
	}
	bn.Gamma.NoDecay = true
	bn.Beta.NoDecay = true
	return bn
}

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D expects [N,%d,H,W], got %v", bn.C, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	cnt := float64(n * h * w)
	y := tensor.New(x.Shape...)

	if train {
		bn.inShape = append(bn.inShape[:0], x.Shape...)
		bn.xhat = tensor.New(x.Shape...)
		if cap(bn.invStd) < c {
			bn.invStd = make([]float64, c)
		}
		bn.invStd = bn.invStd[:c]
		for ch := 0; ch < c; ch++ {
			mean, sq := 0.0, 0.0
			for b := 0; b < n; b++ {
				for _, v := range x.Data[(b*c+ch)*h*w : (b*c+ch+1)*h*w] {
					mean += v
					sq += v * v
				}
			}
			mean /= cnt
			variance := sq/cnt - mean*mean
			if variance < 0 {
				variance = 0
			}
			inv := 1.0 / math.Sqrt(variance+bn.Eps)
			bn.invStd[ch] = inv
			g, be := bn.Gamma.W.Data[ch], bn.Beta.W.Data[ch]
			for b := 0; b < n; b++ {
				off := (b*c + ch) * h * w
				for i := 0; i < h*w; i++ {
					xh := (x.Data[off+i] - mean) * inv
					bn.xhat.Data[off+i] = xh
					y.Data[off+i] = g*xh + be
				}
			}
			bn.RunMean.Data[ch] = (1-bn.Momentum)*bn.RunMean.Data[ch] + bn.Momentum*mean
			bn.RunVar.Data[ch] = (1-bn.Momentum)*bn.RunVar.Data[ch] + bn.Momentum*variance
		}
		return y
	}

	for ch := 0; ch < c; ch++ {
		inv := 1.0 / math.Sqrt(bn.RunVar.Data[ch]+bn.Eps)
		mean := bn.RunMean.Data[ch]
		g, be := bn.Gamma.W.Data[ch], bn.Beta.W.Data[ch]
		for b := 0; b < n; b++ {
			off := (b*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				y.Data[off+i] = g*(x.Data[off+i]-mean)*inv + be
			}
		}
	}
	return y
}

// Backward implements Layer.
func (bn *BatchNorm2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := bn.inShape[0], bn.inShape[1], bn.inShape[2], bn.inShape[3]
	cnt := float64(n * h * w)
	dx := tensor.New(bn.inShape...)
	for ch := 0; ch < c; ch++ {
		sumDy, sumDyXhat := 0.0, 0.0
		for b := 0; b < n; b++ {
			off := (b*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				sumDy += dy.Data[off+i]
				sumDyXhat += dy.Data[off+i] * bn.xhat.Data[off+i]
			}
		}
		bn.Beta.Grad.Data[ch] += sumDy
		bn.Gamma.Grad.Data[ch] += sumDyXhat
		g := bn.Gamma.W.Data[ch]
		inv := bn.invStd[ch]
		for b := 0; b < n; b++ {
			off := (b*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				xh := bn.xhat.Data[off+i]
				dx.Data[off+i] = g * inv / cnt * (cnt*dy.Data[off+i] - sumDy - xh*sumDyXhat)
			}
		}
	}
	return dx
}

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }
