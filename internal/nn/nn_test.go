package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestParamMatrixView(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D("c", rng, 3, 8, 3, 3, 1, 1, false)
	p := conv.Weight
	if p.Rows != 8 || p.Cols != 27 {
		t.Fatalf("pruning view %dx%d, want 8x27", p.Rows, p.Cols)
	}
	mv := p.MatrixView()
	mv.Set(42, 5, 13)
	if p.W.Data[5*27+13] != 42 {
		t.Fatal("MatrixView must share storage")
	}
}

func TestParamDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lin := NewLinear("l", rng, 4, 4, true)
	if lin.Weight.Density() != 1 {
		t.Fatalf("dense density = %v", lin.Weight.Density())
	}
	m := lin.Weight.EnsureMask()
	for i := 0; i < 8; i++ {
		m.Data[i] = 0
	}
	if lin.Weight.Density() != 0.5 {
		t.Fatalf("density = %v, want 0.5", lin.Weight.Density())
	}
	lin.Weight.ClearMask()
	if lin.Weight.Density() != 1 {
		t.Fatal("ClearMask must restore density 1")
	}
}

func TestMaskedForwardZeroesContribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lin := NewLinear("l", rng, 3, 2, true)
	x := tensor.FromSlice([]float64{1, 2, 3}, 1, 3)
	dense := lin.Forward(x, false)
	// Mask out the entire first output row: logit 0 must become bias only.
	m := lin.Weight.EnsureMask()
	m.Data[0], m.Data[1], m.Data[2] = 0, 0, 0
	masked := lin.Forward(x, false)
	if masked.Data[0] != lin.Bias.W.Data[0] {
		t.Fatalf("masked row output = %v, want bias %v", masked.Data[0], lin.Bias.W.Data[0])
	}
	if masked.Data[1] != dense.Data[1] {
		t.Fatal("unmasked row must be unchanged")
	}
}

func TestSTEGradientIsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lin := NewLinear("l", rng, 4, 3, true)
	m := lin.Weight.EnsureMask()
	for i := range m.Data {
		m.Data[i] = 0 // fully masked
	}
	x := tensor.Randn(rng, 1, 2, 4)
	loss := 0.0
	logits := lin.Forward(x, true)
	loss, dlogits := SoftmaxCrossEntropy(logits, []int{0, 1})
	lin.Backward(dlogits)
	_ = loss
	// Even though every weight is masked, dense gradients must flow.
	if lin.Weight.Grad.AbsSum() == 0 {
		t.Fatal("STE violated: gradient is zero under a full mask")
	}
}

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over C classes → loss = ln(C).
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{1, 2})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// Gradient rows sum to zero.
	for b := 0; b < 2; b++ {
		s := 0.0
		for j := 0; j < 4; j++ {
			s += grad.At(b, j)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("grad row %d sums to %v", b, s)
		}
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	logits := tensor.FromSlice([]float64{1e4, -1e4, 0}, 1, 3)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss: %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(g) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Softmax(tensor.Randn(rng, 3, 4, 6))
	for b := 0; b < 4; b++ {
		s := 0.0
		for j := 0; j < 6; j++ {
			s += p.At(b, j)
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", b, s)
		}
	}
}

func TestSGDStepDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lin := NewLinear("l", rng, 2, 2, true)
	lin.Weight.Grad.Fill(1)
	w0 := lin.Weight.W.Clone()
	opt := NewSGD(0.1, 0, 0)
	opt.Step([]*Param{lin.Weight})
	for i := range w0.Data {
		if math.Abs(lin.Weight.W.Data[i]-(w0.Data[i]-0.1)) > 1e-12 {
			t.Fatalf("SGD step wrong at %d", i)
		}
	}
	if lin.Weight.Grad.AbsSum() != 0 {
		t.Fatal("Step must zero gradients")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lin := NewLinear("l", rng, 1, 1, true)
	opt := NewSGD(1, 0.5, 0)
	w0 := lin.Weight.W.Data[0]
	lin.Weight.Grad.Fill(1)
	opt.Step([]*Param{lin.Weight})
	lin.Weight.Grad.Fill(1)
	opt.Step([]*Param{lin.Weight})
	// v1 = -1; v2 = 0.5*(-1) - 1 = -1.5; w = w0 - 1 - 1.5.
	if math.Abs(lin.Weight.W.Data[0]-(w0-2.5)) > 1e-12 {
		t.Fatalf("momentum update = %v, want %v", lin.Weight.W.Data[0], w0-2.5)
	}
}

func TestSGDNoDecayRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	lin := NewLinear("l", rng, 2, 2, true)
	b0 := append([]float64(nil), lin.Bias.W.Data...)
	opt := NewSGD(0.1, 0, 1.0) // huge weight decay
	opt.Step(lin.Params())     // zero grads: only decay acts
	for i := range b0 {
		if lin.Bias.W.Data[i] != b0[i] {
			t.Fatal("bias must not be decayed (NoDecay)")
		}
	}
}

func TestBatchNormTrainStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bn := NewBatchNorm2D("bn", 3)
	x := tensor.Randn(rng, 2, 4, 3, 5, 5)
	for i := range x.Data {
		x.Data[i] = x.Data[i]*3 + 1 // nonzero mean, nonunit var
	}
	y := bn.Forward(x, true)
	// Per-channel output mean ≈ beta (0), var ≈ gamma² (1).
	n, c, h, w := 4, 3, 5, 5
	for ch := 0; ch < c; ch++ {
		mean, sq := 0.0, 0.0
		for b := 0; b < n; b++ {
			for _, v := range y.Data[(b*c+ch)*h*w : (b*c+ch+1)*h*w] {
				mean += v
				sq += v * v
			}
		}
		cnt := float64(n * h * w)
		mean /= cnt
		variance := sq/cnt - mean*mean
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("channel %d mean %v, want 0", ch, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d var %v, want 1", ch, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	bn := NewBatchNorm2D("bn", 2)
	// Train several batches to converge running stats.
	for i := 0; i < 50; i++ {
		x := tensor.Randn(rng, 2, 8, 2, 4, 4)
		for j := range x.Data {
			x.Data[j] = x.Data[j]*2 + 3
		}
		bn.Forward(x, true)
	}
	// Eval on a single constant input: output should be ≈ (3-3)/2 = 0 for x=3.
	x := tensor.Full(3, 1, 2, 4, 4)
	y := bn.Forward(x, false)
	for _, v := range y.Data {
		if math.Abs(v) > 0.2 {
			t.Fatalf("eval-mode output %v, want ≈0", v)
		}
	}
}

func TestMaxPoolForwardValues(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2, 5, 3,
		4, 0, 1, 2,
		7, 1, 0, 0,
		2, 3, 1, 9,
	}, 1, 1, 4, 4)
	y := NewMaxPool2D(2, 2).Forward(x, false)
	want := []float64{4, 5, 7, 9}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("maxpool[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

func TestGlobalAvgPoolValues(t *testing.T) {
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := (&GlobalAvgPool{}).Forward(x, false)
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 25 {
		t.Fatalf("gap = %v", y.Data)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := &Flatten{}
	x := tensor.Randn(rng, 1, 2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Shape[0] != 2 || y.Shape[1] != 60 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	dx := f.Backward(y)
	if len(dx.Shape) != 4 || dx.Shape[3] != 5 {
		t.Fatalf("unflatten shape %v", dx.Shape)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// A tiny conv net must be able to fit a 2-class toy problem.
	rng := rand.New(rand.NewSource(12))
	net := NewSequential(
		NewConv2D("c1", rng, 1, 4, 3, 3, 1, 1, true),
		NewReLU(),
		&GlobalAvgPool{},
		NewLinear("fc", rng, 4, 2, true),
	)
	clf := NewClassifier("toy", net, 2)
	// Class 0: bright center; class 1: dark center.
	mkBatch := func() (*tensor.Tensor, []int) {
		x := tensor.New(8, 1, 6, 6)
		labels := make([]int, 8)
		for b := 0; b < 8; b++ {
			labels[b] = b % 2
			sign := 1.0
			if labels[b] == 1 {
				sign = -1
			}
			for i := 0; i < 36; i++ {
				x.Data[b*36+i] = rng.NormFloat64() * 0.1
			}
			x.Data[b*36+14] += sign * 2
			x.Data[b*36+15] += sign * 2
		}
		return x, labels
	}
	opt := NewSGD(0.05, 0.9, 0)
	x0, l0 := mkBatch()
	first := clf.TrainBatch(x0, l0)
	ZeroGrad(clf.Params())
	var last float64
	for i := 0; i < 60; i++ {
		x, labels := mkBatch()
		last = clf.TrainBatch(x, labels)
		opt.Step(clf.Params())
	}
	if last > first*0.5 {
		t.Fatalf("training did not reduce loss: first %v last %v", first, last)
	}
	x, labels := mkBatch()
	if acc := clf.Accuracy(x, labels); acc < 0.9 {
		t.Fatalf("toy accuracy %v, want ≥0.9", acc)
	}
}

func TestClassifierGlobalSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewSequential(
		NewConv2D("c1", rng, 1, 2, 3, 3, 1, 1, false), // 18 weights
		NewLinear("fc", rng, 2, 2, true),              // 4 weights
	)
	clf := NewClassifier("s", net, 2)
	if s := clf.GlobalSparsity(); s != 0 {
		t.Fatalf("dense sparsity = %v", s)
	}
	// Mask half the conv weights: 9 zeros of 22 prunable.
	m := clf.PrunableParams()[0].EnsureMask()
	for i := 0; i < 9; i++ {
		m.Data[i] = 0
	}
	want := 9.0 / 22.0
	if s := clf.GlobalSparsity(); math.Abs(s-want) > 1e-12 {
		t.Fatalf("sparsity = %v, want %v", s, want)
	}
	clf.ClearMasks()
	if s := clf.GlobalSparsity(); s != 0 {
		t.Fatal("ClearMasks must restore dense")
	}
}

func TestCloneWeightsTo(t *testing.T) {
	build := func(seed int64) *Classifier {
		rng := rand.New(rand.NewSource(seed))
		net := NewSequential(
			NewConv2D("c1", rng, 1, 2, 3, 3, 1, 1, false),
			NewBatchNorm2D("bn", 2),
			NewReLU(),
			&GlobalAvgPool{},
			NewLinear("fc", rng, 2, 3, true),
		)
		return NewClassifier("m", net, 3)
	}
	a := build(1)
	b := build(2)
	// Give a some state.
	rng := rand.New(rand.NewSource(3))
	x := tensor.Randn(rng, 1, 4, 1, 5, 5)
	a.TrainBatch(x, []int{0, 1, 2, 0})
	a.PrunableParams()[0].EnsureMask().Data[0] = 0
	a.CloneWeightsTo(b)

	xa := a.Logits(x, false)
	xb := b.Logits(x, false)
	if !tensor.Equal(xa, xb, 1e-12) {
		t.Fatal("cloned model disagrees with source")
	}
}
