package nn

import "repro/internal/tensor"

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay, matching the paper's fine-tuning setup (momentum 0.9,
// weight decay 4e-5).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	vel map[*Param]*tensor.Tensor
}

// NewSGD constructs the optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, vel: map[*Param]*tensor.Tensor{}}
}

// Step applies one update to every parameter and clears the gradients.
// Masked (pruned) weights are updated too — the straight-through estimator
// keeps their dense values training so they can revive under a future mask.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		v := o.vel[p]
		if v == nil {
			v = tensor.New(p.W.Shape...)
			o.vel[p] = v
		}
		wd := o.WeightDecay
		if p.NoDecay {
			wd = 0
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i] + wd*p.W.Data[i]
			v.Data[i] = o.Momentum*v.Data[i] - o.LR*g
			p.W.Data[i] += v.Data[i]
		}
		p.ZeroGrad()
	}
}

// ZeroGrad clears the gradients of all parameters without stepping.
func ZeroGrad(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}
