package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// MaxPool2D downsamples with a k×k max window and equal stride.
type MaxPool2D struct {
	K, Stride int

	argmax  []int // flat input index of each output element's max
	inShape []int
}

// NewMaxPool2D builds a max-pooling layer (stride defaults to k when 0).
func NewMaxPool2D(k, stride int) *MaxPool2D {
	if stride == 0 {
		stride = k
	}
	return &MaxPool2D{K: k, Stride: stride}
}

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D expects [N,C,H,W], got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-m.K)/m.Stride + 1
	ow := (w-m.K)/m.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: MaxPool2D window %d exceeds input %dx%d", m.K, h, w))
	}
	y := tensor.New(n, c, oh, ow)
	if train {
		if cap(m.argmax) < y.Len() {
			m.argmax = make([]int, y.Len())
		}
		m.argmax = m.argmax[:y.Len()]
		m.inShape = append(m.inShape[:0], x.Shape...)
	}
	oi := 0
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			base := (b*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := plane[oy*m.Stride*w+ox*m.Stride]
					bestIdx := oy*m.Stride*w + ox*m.Stride
					for ky := 0; ky < m.K; ky++ {
						for kx := 0; kx < m.K; kx++ {
							idx := (oy*m.Stride+ky)*w + ox*m.Stride + kx
							if plane[idx] > best {
								best, bestIdx = plane[idx], idx
							}
						}
					}
					y.Data[oi] = best
					if train {
						m.argmax[oi] = base + bestIdx
					}
					oi++
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(m.inShape...)
	for i, v := range dy.Data {
		dx.Data[m.argmax[i]] += v
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool averages over the spatial dimensions, mapping [N,C,H,W]
// to [N,C].
type GlobalAvgPool struct {
	inShape []int
}

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool expects [N,C,H,W], got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if train {
		g.inShape = append(g.inShape[:0], x.Shape...)
	}
	y := tensor.New(n, c)
	inv := 1.0 / float64(h*w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			s := 0.0
			for _, v := range x.Data[(b*c+ch)*h*w : (b*c+ch+1)*h*w] {
				s += v
			}
			y.Data[b*c+ch] = s * inv
		}
	}
	return y
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	dx := tensor.New(g.inShape...)
	inv := 1.0 / float64(h*w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			gv := dy.Data[b*c+ch] * inv
			plane := dx.Data[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			for i := range plane {
				plane[i] = gv
			}
		}
	}
	return dx
}

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }
