package nn

import (
	"repro/internal/tensor"
)

// Classifier wraps a network with a class count and the small amount of
// training/evaluation plumbing the pruning experiments need.
type Classifier struct {
	Name       string
	Net        Layer
	NumClasses int
}

// NewClassifier wraps net.
func NewClassifier(name string, net Layer, numClasses int) *Classifier {
	return &Classifier{Name: name, Net: net, NumClasses: numClasses}
}

// Logits runs the forward pass.
func (c *Classifier) Logits(x *tensor.Tensor, train bool) *tensor.Tensor {
	return c.Net.Forward(x, train)
}

// TrainBatch runs forward + backward on one batch and returns the loss.
// Gradients are accumulated into the parameters; callers step the optimizer.
func (c *Classifier) TrainBatch(x *tensor.Tensor, labels []int) float64 {
	logits := c.Net.Forward(x, true)
	loss, dlogits := SoftmaxCrossEntropy(logits, labels)
	c.Net.Backward(dlogits)
	return loss
}

// Params returns all parameters of the underlying network.
func (c *Classifier) Params() []*Param { return c.Net.Params() }

// PrunableParams returns the parameters eligible for CRISP pruning.
func (c *Classifier) PrunableParams() []*Param {
	var out []*Param
	for _, p := range c.Params() {
		if p.Prunable {
			out = append(out, p)
		}
	}
	return out
}

// LogitsBatch stacks B sample tensors into one batch and runs a single
// forward pass, so each layer serves the whole batch with one GEMM instead
// of B GEMMs. The result has shape [B, ...] in input order.
func (c *Classifier) LogitsBatch(xs []*tensor.Tensor) *tensor.Tensor {
	return c.Logits(tensor.Concat(xs), false)
}

// Predict returns the argmax class of every sample in the batch.
func (c *Classifier) Predict(x *tensor.Tensor) []int {
	return ArgmaxRows(c.Logits(x, false), c.NumClasses)
}

// ArgmaxRows returns the per-row argmax of a [N, width] logit tensor
// (tensors of higher rank are treated as flattened rows of the given width).
func ArgmaxRows(logits *tensor.Tensor, width int) []int {
	n := logits.Len() / width
	out := make([]int, n)
	for b := 0; b < n; b++ {
		row := logits.Data[b*width : (b+1)*width]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		out[b] = bi
	}
	return out
}

// Accuracy returns top-1 accuracy with argmax over all classes.
func (c *Classifier) Accuracy(x *tensor.Tensor, labels []int) float64 {
	pred := c.Predict(x)
	correct := 0
	for b, p := range pred {
		if p == labels[b] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// GlobalSparsity returns the fraction of zeros over all prunable weights
// under the current masks.
func (c *Classifier) GlobalSparsity() float64 {
	total, kept := 0, 0
	for _, p := range c.PrunableParams() {
		total += p.W.Len()
		if p.Mask == nil {
			kept += p.W.Len()
		} else {
			kept += p.Mask.CountNonZero()
		}
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(kept)/float64(total)
}

// ClearMasks removes all pruning masks (restores the dense model).
func (c *Classifier) ClearMasks() {
	for _, p := range c.Params() {
		p.ClearMask()
	}
}

// CloneWeightsTo copies weights, masks and batch-norm running statistics
// from c into dst, which must have an architecturally identical network.
// It is used to snapshot a pre-trained model before destructive pruning.
func (c *Classifier) CloneWeightsTo(dst *Classifier) {
	src := c.Params()
	dp := dst.Params()
	if len(src) != len(dp) {
		panic("nn: CloneWeightsTo across different architectures")
	}
	for i, p := range src {
		copy(dp[i].W.Data, p.W.Data)
		if p.Mask != nil {
			dp[i].EnsureMask()
			copy(dp[i].Mask.Data, p.Mask.Data)
		} else {
			dp[i].ClearMask()
		}
	}
	copyBN(c.Net, dst.Net)
}

// copyBN recursively copies batch-norm running stats between mirrored trees.
func copyBN(src, dst Layer) {
	switch s := src.(type) {
	case *Sequential:
		d := dst.(*Sequential)
		for i := range s.Layers {
			copyBN(s.Layers[i], d.Layers[i])
		}
	case *Residual:
		d := dst.(*Residual)
		copyBN(s.Main, d.Main)
		if s.Shortcut != nil {
			copyBN(s.Shortcut, d.Shortcut)
		}
	case *BatchNorm2D:
		d := dst.(*BatchNorm2D)
		copy(d.RunMean.Data, s.RunMean.Data)
		copy(d.RunVar.Data, s.RunVar.Data)
	}
}
