package pruner

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/saliency"
	"repro/internal/sparsity"
)

// CRISP is the paper's hybrid structured pruning framework (Algorithm 1):
// iterative class-aware fine-tuning, N:M pruning with a straight-through
// estimator, and uniform per-row block pruning driven by globally ranked
// rank-column scores. The mask mathematics lives in internal/core; this
// type supplies the training loop around it.
type CRISP struct {
	Opts Options
}

// NewCRISP constructs the pruner.
func NewCRISP(opts Options) *CRISP { return &CRISP{Opts: opts.WithDefaults()} }

// coreConfig maps Options onto the mask-construction config.
func coreConfig(o Options) core.Config {
	return core.Config{NM: o.NM, BlockSize: o.BlockSize, MinKeepBlockCols: o.MinKeepBlockCols}
}

// coreLayers adapts prunable parameters and their scores to core.Layer
// views (masks are shared storage, so core writes them in place).
func coreLayers(params []*nn.Param, scores saliency.Scores) []*core.Layer {
	out := make([]*core.Layer, 0, len(params))
	for _, prm := range params {
		out = append(out, &core.Layer{
			ID:          prm.Name,
			Mask:        prm.MaskMatrixView(),
			Scores:      scores.MatrixView(prm),
			BlockExempt: prm.BlockExempt,
		})
	}
	return out
}

// Prune runs Algorithm 1 on clf using train as the user-class sample set,
// mutating the classifier's masks and weights in place.
func (c *CRISP) Prune(clf *nn.Classifier, train data.Split) Report {
	o := c.Opts
	rng := rand.New(rand.NewSource(o.Seed))
	opt := nn.NewSGD(o.LR, o.Momentum, o.WeightDecay)
	rep := Report{Method: "crisp-" + o.NM.String(), Target: o.Target}

	params := clf.PrunableParams()
	floor := 1 - o.NM.Density()
	for p := 1; p <= o.Iterations; p++ {
		// Step 2 (paper Fig. 5): class-aware fine-tuning. The first round
		// fine-tunes the dense model; later rounds recover from pruning.
		loss := Finetune(clf, train, o.FinetuneEpochs, o.BatchSize, opt, rng)

		// Step 4 of Alg. 1: estimate the class-aware saliency score.
		scores := saliency.Compute(clf, train, o.BatchSize, o.Saliency)

		// Lines 2–10: hybrid mask construction at the round's target κ_p.
		// ApplyNM rewrites the whole mask each round, so previously pruned
		// weights may revive (the STE kept them training).
		kappa := o.kappaAt(p, o.Iterations, floor)
		core.ApplyHybrid(coreLayers(params, scores), coreConfig(o), kappa)

		rep.Iterations = append(rep.Iterations, IterStat{
			Iteration: p,
			Kappa:     kappa,
			Sparsity:  clf.GlobalSparsity(),
			Loss:      loss,
		})
	}
	// Line 11 after the last round: recovery fine-tuning.
	Finetune(clf, train, o.FinalFinetuneEpochs, o.BatchSize, opt, rng)

	rep.AchievedSparsity = clf.GlobalSparsity()
	rep.FLOPsRatio = FLOPsRatio(clf)
	rep.Layers = LayerStats(clf, o.BlockSize)
	return rep
}

// LayerStats summarizes every prunable layer's mask state.
func LayerStats(clf *nn.Classifier, blockSize int) []LayerStat {
	var out []LayerStat
	for _, prm := range clf.PrunableParams() {
		st := LayerStat{
			Name:          prm.Name,
			Rows:          prm.Rows,
			Cols:          prm.Cols,
			Sparsity:      1 - prm.Density(),
			KeptBlockCols: -1,
		}
		if !prm.BlockExempt && prm.Mask != nil {
			g := sparsity.NewBlockGrid(prm.Rows, prm.Cols, blockSize)
			counts := sparsity.KeptBlocksPerRow(prm.MaskMatrixView(), g)
			st.GridCols = g.GridCols()
			if len(counts) > 0 {
				st.KeptBlockCols = counts[0]
			}
		}
		out = append(out, st)
	}
	return out
}
