package pruner

import (
	"repro/internal/nn"
)

// FLOPsRatio returns effective MACs / dense MACs of clf under its current
// masks, the "normalized FLOPs ratio" of the paper's Fig. 7 table. The
// network must have run at least one forward pass so convolution geometry is
// recorded; compute scales with each layer's weight density (structured
// sparsity skips whole blocks/groups, so density is the compute fraction).
func FLOPsRatio(clf *nn.Classifier) float64 {
	var dense, effective float64
	nn.Walk(clf.Net, func(l nn.Layer) {
		switch v := l.(type) {
		case *nn.Conv2D:
			g := v.Geom
			macs := float64(v.OutC) * float64(g.InC*g.KH*g.KW) * float64(g.OutH()*g.OutW())
			dense += macs
			effective += macs * v.Weight.Density()
		case *nn.DepthwiseConv2D:
			g := v.Geom
			macs := float64(g.InC) * float64(g.KH*g.KW) * float64(g.OutH()*g.OutW())
			dense += macs
			effective += macs * v.Weight.Density()
		case *nn.Linear:
			macs := float64(v.In) * float64(v.Out)
			dense += macs
			effective += macs * v.Weight.Density()
		case *nn.TokenLinear:
			macs := float64(v.In) * float64(v.Out) * float64(v.LastTokens)
			dense += macs
			effective += macs * v.Weight.Density()
		case *nn.PatchEmbed:
			macs := float64(v.C*v.P*v.P) * float64(v.D) * float64(v.LastTokens)
			dense += macs
			effective += macs * v.Weight.Density()
		case *nn.MultiHeadAttention:
			t := float64(v.LastTokens)
			d := float64(v.D)
			proj := d * d * t
			for _, p := range []*nn.Param{v.Wq, v.Wk, v.Wv, v.Wo} {
				dense += proj
				effective += proj * p.Density()
			}
			// The attention matrix itself (QKᵀ and A·V) is dense compute,
			// unaffected by weight pruning.
			attn := 2 * t * t * d
			dense += attn
			effective += attn
		}
	})
	if dense == 0 {
		return 1
	}
	return effective / dense
}
