package pruner

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// Failure-injection and degenerate-input coverage: the pruning framework
// must stay well-defined on empty data, extreme targets and adversarial
// configurations.

func TestOptionsValidate(t *testing.T) {
	good := Options{Target: 0.9, NM: sparsity.NM{N: 2, M: 4}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{Target: -0.1},
		{Target: 1.0},
		{Target: 0.5, NM: sparsity.NM{N: 9, M: 4}},
		{Target: 0.5, BlockSize: -4},
		{Target: 0.5, Momentum: 1.0},
		{Target: 0.5, LR: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("bad options %d accepted: %+v", i, o)
		}
	}
}

func TestWithDefaultsPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid options")
		}
	}()
	NewCRISP(Options{Target: 2})
}

func TestPruneWithEmptyTrainSplit(t *testing.T) {
	// No user samples at all: saliency degrades to zero scores; the pruner
	// must still produce valid masks at the target sparsity.
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(61)), 4, 1)
	empty := data.Split{X: tensor.New(0, 3, 8, 8), Labels: nil}
	nm := sparsity.NM{N: 2, M: 4}
	p := NewCRISP(Options{Target: 0.8, NM: nm, BlockSize: 4, Iterations: 2, FinetuneEpochs: 1, BatchSize: 8, LR: 0.01})
	rep := p.Prune(clf, empty)
	if rep.AchievedSparsity < 0.75 {
		t.Fatalf("sparsity %v with empty split", rep.AchievedSparsity)
	}
	for _, prm := range clf.PrunableParams() {
		if err := sparsity.VerifyNM(prm.MaskMatrixView(), nm); err != nil {
			t.Fatalf("%s: %v", prm.Name, err)
		}
	}
}

func TestPruneSingleSample(t *testing.T) {
	cfg := data.Config{Name: "f1", NumClasses: 4, Channels: 3, H: 8, W: 8, Noise: 0.2, Jitter: 1, Seed: 62}
	ds := data.New(cfg)
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(63)), 4, 1)
	one := ds.MakeSplit("train", []int{2}, 1)
	p := NewCRISP(Options{Target: 0.8, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4, Iterations: 2, FinetuneEpochs: 1, BatchSize: 8, LR: 0.01})
	rep := p.Prune(clf, one)
	if rep.AchievedSparsity < 0.75 {
		t.Fatalf("sparsity %v with a single sample", rep.AchievedSparsity)
	}
}

func TestPruneZeroTarget(t *testing.T) {
	// Target 0: only the N:M floor applies.
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(64)), 4, 1)
	cfg := data.Config{Name: "f2", NumClasses: 4, Channels: 3, H: 8, W: 8, Noise: 0.2, Jitter: 1, Seed: 65}
	ds := data.New(cfg)
	train := ds.MakeSplit("train", []int{0, 1}, 4)
	p := NewCRISP(Options{Target: 0, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4, Iterations: 1, FinetuneEpochs: 1, BatchSize: 8, LR: 0.01})
	rep := p.Prune(clf, train)
	if rep.AchievedSparsity < 0.45 || rep.AchievedSparsity > 0.55 {
		t.Fatalf("sparsity %v, want ≈0.5 (N:M floor)", rep.AchievedSparsity)
	}
}

func TestPruneExtremeTarget(t *testing.T) {
	// κ=0.99 with the layer-collapse floor in place: every block row must
	// retain at least one block; the target is approached but bounded.
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(66)), 4, 1)
	cfg := data.Config{Name: "f3", NumClasses: 4, Channels: 3, H: 8, W: 8, Noise: 0.2, Jitter: 1, Seed: 67}
	ds := data.New(cfg)
	train := ds.MakeSplit("train", []int{0, 1}, 4)
	p := NewCRISP(Options{Target: 0.99, NM: sparsity.NM{N: 1, M: 4}, BlockSize: 4, Iterations: 2, FinetuneEpochs: 1, BatchSize: 8, LR: 0.01})
	rep := p.Prune(clf, train)
	for _, prm := range clf.PrunableParams() {
		if prm.BlockExempt {
			continue
		}
		g := sparsity.NewBlockGrid(prm.Rows, prm.Cols, 4)
		for _, c := range sparsity.KeptBlocksPerRow(prm.MaskMatrixView(), g) {
			if c < 1 {
				t.Fatalf("%s: layer collapse at extreme target", prm.Name)
			}
		}
	}
	if rep.AchievedSparsity < 0.9 {
		t.Fatalf("sparsity %v, want ≥0.9 at κ=0.99", rep.AchievedSparsity)
	}
}

func TestFinetuneEmptySplit(t *testing.T) {
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(68)), 4, 1)
	empty := data.Split{X: tensor.New(0, 3, 8, 8), Labels: nil}
	opt := nn.NewSGD(0.01, 0.9, 0)
	loss := Finetune(clf, empty, 3, 8, opt, rand.New(rand.NewSource(69)))
	if loss != 0 {
		t.Fatalf("loss %v on empty split", loss)
	}
}

func TestChannelPrunerKeepsFloor(t *testing.T) {
	// Even at an absurd target, at least MinKeepRows channels survive.
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(70)), 4, 1)
	cfg := data.Config{Name: "f4", NumClasses: 4, Channels: 3, H: 8, W: 8, Noise: 0.2, Jitter: 1, Seed: 71}
	ds := data.New(cfg)
	train := ds.MakeSplit("train", []int{0}, 4)
	p := NewChannel(Options{Target: 0.99, Iterations: 1, FinetuneEpochs: 1, BatchSize: 8, LR: 0.01})
	p.Prune(clf, train)
	for _, prm := range clf.PrunableParams() {
		mv := prm.MaskMatrixView()
		alive := 0
		for r := 0; r < prm.Rows; r++ {
			for c := 0; c < prm.Cols; c++ {
				if mv.At(r, c) != 0 {
					alive++
					break
				}
			}
		}
		if alive < p.MinKeepRows {
			t.Fatalf("%s: %d rows alive, floor %d", prm.Name, alive, p.MinKeepRows)
		}
	}
}

func TestUnstructuredZeroScoresStillValid(t *testing.T) {
	// A freshly initialized model with zero gradients (magnitude-free
	// Taylor scores) must not crash the unstructured pruner.
	clf := models.Build(models.VGG, rand.New(rand.NewSource(72)), 4, 1)
	empty := data.Split{X: tensor.New(0, 3, 8, 8), Labels: nil}
	p := NewUnstructured(Options{Target: 0.5, Iterations: 1, FinetuneEpochs: 1, BatchSize: 8, LR: 0.01})
	rep := p.Prune(clf, empty)
	if rep.AchievedSparsity < 0.4 {
		t.Fatalf("sparsity %v", rep.AchievedSparsity)
	}
}
