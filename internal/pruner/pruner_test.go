package pruner

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/saliency"
	"repro/internal/sparsity"
)

// pretrainedCache holds one deterministic pre-trained model per family;
// tests receive fresh clones, so the ~1.5s pretraining runs once per family
// instead of once per test.
var pretrainedCache = struct {
	sync.Mutex
	m map[models.Family]*nn.Classifier
}{m: map[models.Family]*nn.Classifier{}}

// testSetup builds a small pre-trained classifier and its user-class split.
// The prune→fine-tune tests that need it are the package's full-scale paths
// and skip in -short mode (CI's race run); the plain tier-1 run and the
// nightly path keep them.
func testSetup(t *testing.T, f models.Family) (*nn.Classifier, data.Split, data.Split) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-scale prune+fine-tune path (short mode)")
	}
	cfg := data.Config{Name: "pt", NumClasses: 8, Channels: 3, H: 8, W: 8, Noise: 0.25, Jitter: 1, Seed: 3}
	ds := data.New(cfg)
	build := func() *nn.Classifier {
		return models.Build(f, rand.New(rand.NewSource(11)), cfg.NumClasses, 1)
	}

	pretrainedCache.Lock()
	trained := pretrainedCache.m[f]
	if trained == nil {
		all := make([]int, cfg.NumClasses)
		for i := range all {
			all[i] = i
		}
		trained = build()
		pre := ds.MakeSplit("pretrain", all, 12)
		opt := nn.NewSGD(0.05, 0.9, 4e-5)
		Finetune(trained, pre, 4, 16, opt, rand.New(rand.NewSource(12)))
		pretrainedCache.m[f] = trained
	}
	pretrainedCache.Unlock()
	clf := build()
	trained.CloneWeightsTo(clf)

	user := []int{1, 4, 6}
	train := ds.MakeSplit("train", user, 16)
	test := ds.MakeSplit("test", user, 8)
	return clf, train, test
}

func TestCRISPReachesTargetSparsity(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	p := NewCRISP(Options{
		Target: 0.85, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
		Iterations: 3, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
	})
	rep := p.Prune(clf, train)
	if rep.AchievedSparsity < 0.80 {
		t.Fatalf("achieved sparsity %v, want ≥0.80 toward 0.85", rep.AchievedSparsity)
	}
	if rep.AchievedSparsity > 0.92 {
		t.Fatalf("overshoot: %v", rep.AchievedSparsity)
	}
}

func TestCRISPMaskInvariants(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	nm := sparsity.NM{N: 2, M: 4}
	p := NewCRISP(Options{
		Target: 0.8, NM: nm, BlockSize: 4,
		Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
	})
	p.Prune(clf, train)
	for _, prm := range clf.PrunableParams() {
		mv := prm.MaskMatrixView()
		if err := sparsity.VerifyNM(mv, nm); err != nil {
			t.Fatalf("%s: %v", prm.Name, err)
		}
		if prm.BlockExempt {
			continue
		}
		g := sparsity.NewBlockGrid(prm.Rows, prm.Cols, 4)
		if err := sparsity.VerifyRowBalance(mv, g); err != nil {
			t.Fatalf("%s: %v", prm.Name, err)
		}
		// Layer-collapse guard: at least one block column per row survives.
		counts := sparsity.KeptBlocksPerRow(mv, g)
		for _, c := range counts {
			if c < 1 {
				t.Fatalf("%s: a block row lost every block", prm.Name)
			}
		}
	}
}

func TestCRISPSparsityMonotoneOverIterations(t *testing.T) {
	clf, train, _ := testSetup(t, models.VGG)
	p := NewCRISP(Options{
		Target: 0.85, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
		Iterations: 3, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
	})
	rep := p.Prune(clf, train)
	if len(rep.Iterations) != 3 {
		t.Fatalf("iterations recorded %d", len(rep.Iterations))
	}
	for i := 1; i < len(rep.Iterations); i++ {
		if rep.Iterations[i].Sparsity+1e-9 < rep.Iterations[i-1].Sparsity {
			t.Fatalf("sparsity decreased: %+v", rep.Iterations)
		}
	}
	for i := 1; i < len(rep.Iterations); i++ {
		if rep.Iterations[i].Kappa < rep.Iterations[i-1].Kappa {
			t.Fatalf("kappa schedule not monotone: %+v", rep.Iterations)
		}
	}
}

func TestCRISPFLOPsRatioConsistent(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	p := NewCRISP(Options{
		Target: 0.8, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
		Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
	})
	rep := p.Prune(clf, train)
	if rep.FLOPsRatio <= 0 || rep.FLOPsRatio >= 1 {
		t.Fatalf("FLOPs ratio %v out of (0,1)", rep.FLOPsRatio)
	}
	// FLOPs ratio must be within the plausible band implied by sparsity: not
	// lower than the overall kept fraction would ever allow (head excluded).
	if rep.FLOPsRatio < (1-rep.AchievedSparsity)*0.3 {
		t.Fatalf("FLOPs ratio %v implausibly low for sparsity %v", rep.FLOPsRatio, rep.AchievedSparsity)
	}
}

func TestCRISPPreservesMoreAccuracyThanUnbalancedBlocks(t *testing.T) {
	// The paper's Fig. 3 contrast at high sparsity on a shared substrate.
	buildAndPrune := func(pr func(o Options) Pruner) float64 {
		clf, train, test := testSetup(t, models.ResNet)
		o := Options{
			Target: 0.9, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
			Iterations: 3, FinetuneEpochs: 2, BatchSize: 16, LR: 0.01, Seed: 5,
		}
		pr(o).Prune(clf, train)
		return clf.Accuracy(test.X, test.Labels)
	}
	crispAcc := buildAndPrune(func(o Options) Pruner { return NewCRISP(o) })
	blockAcc := buildAndPrune(func(o Options) Pruner { return NewBlockOnly(o, false) })
	if crispAcc < blockAcc-0.05 {
		t.Fatalf("CRISP %.3f should not trail block-only %.3f at κ=0.9", crispAcc, blockAcc)
	}
}

func TestNMOnlySparsityExact(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	p := NewNMOnly(Options{NM: sparsity.NM{N: 1, M: 4}, Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01})
	rep := p.Prune(clf, train)
	// All prunable dims here are multiples of 4 → exact 75% sparsity.
	if math.Abs(rep.AchievedSparsity-0.75) > 0.02 {
		t.Fatalf("1:4 sparsity %v, want ≈0.75", rep.AchievedSparsity)
	}
}

func TestBlockOnlyUnbalancedReachesTarget(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	p := NewBlockOnly(Options{Target: 0.7, BlockSize: 4, Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01}, false)
	rep := p.Prune(clf, train)
	if math.Abs(rep.AchievedSparsity-0.7) > 0.05 {
		t.Fatalf("block-only sparsity %v, want ≈0.7", rep.AchievedSparsity)
	}
}

func TestBlockOnlyBalancedKeepsRowBalance(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	p := NewBlockOnly(Options{Target: 0.6, BlockSize: 4, Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01}, true)
	p.Prune(clf, train)
	for _, prm := range clf.PrunableParams() {
		if prm.BlockExempt {
			continue
		}
		g := sparsity.NewBlockGrid(prm.Rows, prm.Cols, 4)
		if err := sparsity.VerifyRowBalance(prm.MaskMatrixView(), g); err != nil {
			t.Fatalf("%s: %v", prm.Name, err)
		}
	}
}

func TestChannelPruningRemovesWholeRows(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	p := NewChannel(Options{Target: 0.5, Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01})
	rep := p.Prune(clf, train)
	if math.Abs(rep.AchievedSparsity-0.5) > 0.08 {
		t.Fatalf("channel sparsity %v, want ≈0.5", rep.AchievedSparsity)
	}
	for _, prm := range clf.PrunableParams() {
		mv := prm.MaskMatrixView()
		alive := 0
		for r := 0; r < prm.Rows; r++ {
			nz := 0
			for c := 0; c < prm.Cols; c++ {
				if mv.At(r, c) != 0 {
					nz++
				}
			}
			if nz != 0 && nz != prm.Cols {
				t.Fatalf("%s row %d partially pruned (%d/%d)", prm.Name, r, nz, prm.Cols)
			}
			if nz > 0 {
				alive++
			}
		}
		if alive == 0 {
			t.Fatalf("%s: all channels pruned", prm.Name)
		}
	}
}

func TestUnstructuredReachesTarget(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	p := NewUnstructured(Options{Target: 0.9, Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01})
	rep := p.Prune(clf, train)
	if math.Abs(rep.AchievedSparsity-0.9) > 0.03 {
		t.Fatalf("unstructured sparsity %v, want ≈0.9", rep.AchievedSparsity)
	}
}

func TestScheduleShapes(t *testing.T) {
	o := Options{Target: 0.9}.WithDefaults()
	// Linear: evenly spaced.
	lin1 := o.kappaAt(1, 3, 0.5)
	lin2 := o.kappaAt(2, 3, 0.5)
	lin3 := o.kappaAt(3, 3, 0.5)
	if math.Abs(lin3-0.9) > 1e-12 {
		t.Fatalf("final kappa %v != target", lin3)
	}
	if math.Abs((lin2-lin1)-(lin3-lin2)) > 1e-12 {
		t.Fatalf("linear schedule not even: %v %v %v", lin1, lin2, lin3)
	}
	// Cubic: front-loaded.
	o.Schedule = ScheduleCubic
	cub1 := o.kappaAt(1, 3, 0.5)
	if cub1 <= lin1 {
		t.Fatalf("cubic first step %v should exceed linear %v", cub1, lin1)
	}
	if math.Abs(o.kappaAt(3, 3, 0.5)-0.9) > 1e-12 {
		t.Fatal("cubic must end at target")
	}
}

func TestFLOPsRatioDenseIsOne(t *testing.T) {
	clf, train, _ := testSetup(t, models.MobileNet)
	_ = train
	if r := FLOPsRatio(clf); math.Abs(r-1) > 1e-12 {
		t.Fatalf("dense FLOPs ratio %v", r)
	}
}

func TestLayerStatsShape(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	p := NewCRISP(Options{Target: 0.8, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4, Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01})
	rep := p.Prune(clf, train)
	if len(rep.Layers) != len(clf.PrunableParams()) {
		t.Fatalf("layer stats %d, prunable %d", len(rep.Layers), len(clf.PrunableParams()))
	}
	// Layer-wise sparsity must be non-uniform (the paper's Fig. 2 point):
	// global rank selection prunes some layers much harder than others.
	minS, maxS := 1.0, 0.0
	for _, ls := range rep.Layers {
		if ls.Sparsity < minS {
			minS = ls.Sparsity
		}
		if ls.Sparsity > maxS {
			maxS = ls.Sparsity
		}
	}
	if maxS-minS < 0.01 {
		t.Fatalf("layer sparsity suspiciously uniform: min %v max %v", minS, maxS)
	}
}

func TestClassAwareSaliencyDiffersFromMagnitude(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	cass := saliency.Compute(clf, train, 16, saliency.Taylor)
	mag := saliency.Compute(clf, train, 16, saliency.Magnitude)
	prm := clf.PrunableParams()[0]
	// The two criteria must rank at least some weights differently.
	diff := false
	c, m := cass[prm], mag[prm]
	for i := 1; i < c.Len(); i++ {
		if (c.Data[i] > c.Data[0]) != (m.Data[i] > m.Data[0]) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("CASS and magnitude produce identical rankings")
	}
}

func TestSaliencyLeavesGradsClean(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	saliency.Compute(clf, train, 16, saliency.Taylor)
	for _, p := range clf.Params() {
		if p.Grad.AbsSum() != 0 {
			t.Fatalf("param %s left dirty gradient", p.Name)
		}
	}
}

func TestSaliencyNonNegative(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	for _, m := range []saliency.Method{saliency.Taylor, saliency.Magnitude, saliency.GradOnly} {
		s := saliency.Compute(clf, train, 16, m)
		for prm, sv := range s {
			for _, v := range sv.Data {
				if v < 0 || math.IsNaN(v) {
					t.Fatalf("%s %s: invalid score %v", m, prm.Name, v)
				}
			}
		}
	}
}

func TestMixedNMReachesTargetWithVariedPatterns(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	p := NewMixedNM(Options{Target: 0.68, Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01})
	rep := p.Prune(clf, train)
	if rep.Method != "mixed-nm" {
		t.Fatalf("method %s", rep.Method)
	}
	if math.Abs(rep.AchievedSparsity-0.68) > 0.08 {
		t.Fatalf("sparsity %v, want ≈0.68", rep.AchievedSparsity)
	}
	// Every layer must satisfy its assigned pattern, and at a target between
	// the 1:4 and 3:4 floors the assignment should not be uniform.
	patterns := p.AssignedPatterns(clf)
	seen := map[string]bool{}
	for _, prm := range clf.PrunableParams() {
		nm := patterns[prm.Name]
		if err := sparsity.VerifyNM(prm.MaskMatrixView(), nm); err != nil {
			t.Fatalf("%s: %v", prm.Name, err)
		}
		seen[nm.String()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("mixed search assigned a single pattern everywhere: %v", seen)
	}
	if len(SortedLayerNames(patterns)) != len(clf.PrunableParams()) {
		t.Fatal("pattern map incomplete")
	}
}

func TestMixedNMExtremesCollapseToUniform(t *testing.T) {
	// At the 1:4 floor the search must assign 1:4 everywhere.
	clf, train, _ := testSetup(t, models.ResNet)
	p := NewMixedNM(Options{Target: 0.75, Iterations: 1, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01})
	p.Prune(clf, train)
	for name, nm := range p.AssignedPatterns(clf) {
		if nm.N != 1 {
			t.Fatalf("%s assigned %s at the 1:4 floor", name, nm)
		}
	}
}

func TestChannelActivationModeRemovesWholeRows(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	p := NewChannel(Options{Target: 0.5, Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01})
	p.UseActivations = true
	rep := p.Prune(clf, train)
	if rep.Method != "channel-act" {
		t.Fatalf("method %s", rep.Method)
	}
	if math.Abs(rep.AchievedSparsity-0.5) > 0.08 {
		t.Fatalf("channel-act sparsity %v, want ≈0.5", rep.AchievedSparsity)
	}
	for _, prm := range clf.PrunableParams() {
		mv := prm.MaskMatrixView()
		for r := 0; r < prm.Rows; r++ {
			nz := 0
			for c := 0; c < prm.Cols; c++ {
				if mv.At(r, c) != 0 {
					nz++
				}
			}
			if nz != 0 && nz != prm.Cols {
				t.Fatalf("%s row %d partially pruned", prm.Name, r)
			}
		}
	}
	// Collectors must be detached after pruning.
	nn.Walk(clf.Net, func(l nn.Layer) {
		if c, ok := l.(*nn.Conv2D); ok && c.OutStats != nil {
			t.Fatalf("collector left attached on %s", c.Weight.Name)
		}
	})
}

func TestChannelActivationScoresDifferFromSaliency(t *testing.T) {
	clf, train, _ := testSetup(t, models.ResNet)
	b := NewChannel(Options{Target: 0.5, Iterations: 1, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01})
	salRows := b.rowScores(clf, train)
	b.UseActivations = true
	actRows := b.rowScores(clf, train)
	prm := clf.PrunableParams()[0]
	same := true
	for i := range salRows[prm] {
		if math.Abs(salRows[prm][i]-actRows[prm][i]) > 1e-12 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("activation scores identical to saliency scores")
	}
}
