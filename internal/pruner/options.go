// Package pruner implements the CRISP class-aware pruning framework
// (Algorithm 1 of the paper) and the baselines it is compared against:
// pure block pruning (balanced and classic unbalanced), N:M-only pruning,
// OCAP/CAPNN-style channel pruning, and unstructured magnitude pruning.
package pruner

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/saliency"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// Pruner is the interface every pruning method implements: mutate the
// classifier's masks (and weights, via fine-tuning) toward the configured
// sparsity target using samples of the user-preferred classes.
type Pruner interface {
	Prune(clf *nn.Classifier, train data.Split) Report
}

// Schedule selects how the per-iteration sparsity target κ_p ramps from the
// N:M floor to the final target κ.
type Schedule int

const (
	// ScheduleLinear ramps κ_p linearly over the iterations (the paper's
	// "(1−N/M) + ∆" with a constant per-iteration increment).
	ScheduleLinear Schedule = iota
	// ScheduleCubic ramps quickly at first and flattens near the target
	// (the Zhu–Gupta schedule), provided as an extension.
	ScheduleCubic
)

// Options configures a pruning run.
type Options struct {
	// Target is the final global sparsity κ over prunable weights.
	Target float64
	// NM is the fine-grained pattern (e.g. 2:4). Ignored by baselines that
	// do not use N:M sparsity.
	NM sparsity.NM
	// BlockSize is the coarse block edge B (paper: 16–64; scaled models use
	// smaller blocks). Ignored by baselines without block pruning.
	BlockSize int
	// Iterations is the number of prune→fine-tune rounds n.
	Iterations int
	// FinetuneEpochs is δ, the fine-tuning epochs per iteration.
	FinetuneEpochs int
	// FinalFinetuneEpochs runs after the last pruning round.
	FinalFinetuneEpochs int
	// BatchSize for fine-tuning and saliency estimation.
	BatchSize int
	// LR, Momentum, WeightDecay configure SGD (paper: 0.1 / 0.9 / 4e-5; the
	// scaled models default to a smaller LR).
	LR, Momentum, WeightDecay float64
	// Schedule selects the κ_p ramp.
	Schedule Schedule
	// Saliency selects the importance criterion (default: the paper's CASS).
	Saliency saliency.Method
	// MinKeepBlockCols floors the kept rank columns per layer, guarding
	// against layer collapse.
	MinKeepBlockCols int
	// Seed drives batch shuffling.
	Seed int64
}

// Validate rejects configurations the pruners cannot honor. The zero value
// of a field means "use the default" and is accepted.
func (o Options) Validate() error {
	if o.Target < 0 || o.Target >= 1 {
		return fmt.Errorf("pruner: target sparsity %v outside [0,1)", o.Target)
	}
	if o.NM.M != 0 {
		if err := o.NM.Validate(); err != nil {
			return err
		}
	}
	if o.BlockSize < 0 || o.Iterations < 0 || o.FinetuneEpochs < 0 || o.BatchSize < 0 {
		return fmt.Errorf("pruner: negative option in %+v", o)
	}
	if o.LR < 0 || o.Momentum < 0 || o.Momentum >= 1 || o.WeightDecay < 0 {
		return fmt.Errorf("pruner: invalid optimizer settings lr=%v momentum=%v wd=%v", o.LR, o.Momentum, o.WeightDecay)
	}
	return nil
}

// WithDefaults fills unset fields with the reproduction's defaults and
// panics on clearly invalid configurations (programmer error). It is the
// single source of truth for option defaulting: the pruners apply it on
// construction and deployment paths (crisp.Deploy, the serving layer) apply
// it before sizing formats, so the two cannot drift.
func (o Options) WithDefaults() Options {
	if err := o.Validate(); err != nil {
		panic(err)
	}
	if o.NM.M == 0 {
		o.NM = sparsity.NM{N: 2, M: 4}
	}
	if o.BlockSize == 0 {
		o.BlockSize = 4
	}
	if o.Iterations == 0 {
		o.Iterations = 4
	}
	if o.FinetuneEpochs == 0 {
		o.FinetuneEpochs = 2
	}
	if o.FinalFinetuneEpochs == 0 {
		o.FinalFinetuneEpochs = o.FinetuneEpochs
	}
	if o.BatchSize == 0 {
		o.BatchSize = 32
	}
	if o.LR == 0 {
		o.LR = 0.02
	}
	if o.Momentum == 0 {
		o.Momentum = 0.9
	}
	if o.WeightDecay == 0 {
		o.WeightDecay = 4e-5
	}
	if o.MinKeepBlockCols == 0 {
		o.MinKeepBlockCols = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// kappaAt returns the iteration-p sparsity target, ramping from floor (the
// sparsity the fine-grained pattern alone provides) to Target over n rounds.
func (o Options) kappaAt(p, n int, floor float64) float64 {
	if o.Target <= floor {
		return o.Target
	}
	t := float64(p) / float64(n)
	var f float64
	switch o.Schedule {
	case ScheduleCubic:
		f = 1 - (1-t)*(1-t)*(1-t)
	default:
		f = t
	}
	return floor + (o.Target-floor)*f
}

// LayerStat records one layer's post-pruning state.
type LayerStat struct {
	Name       string
	Rows, Cols int
	// Sparsity is the zero fraction of the layer's mask.
	Sparsity float64
	// KeptBlockCols is the per-row kept block count (−1 for block-exempt
	// layers).
	KeptBlockCols int
	GridCols      int
}

// IterStat records the state after one prune→fine-tune round.
type IterStat struct {
	Iteration int
	Kappa     float64
	// Sparsity is the measured global sparsity after pruning.
	Sparsity float64
	// Loss is the mean loss of the last fine-tuning epoch.
	Loss float64
}

// Report summarizes a pruning run.
type Report struct {
	Method           string
	Target           float64
	AchievedSparsity float64
	FLOPsRatio       float64
	Layers           []LayerStat
	Iterations       []IterStat
}

// String renders a short human-readable summary.
func (r Report) String() string {
	return fmt.Sprintf("%s: target κ=%.2f achieved %.4f, FLOPs ratio %.3f (%d layers, %d iterations)",
		r.Method, r.Target, r.AchievedSparsity, r.FLOPsRatio, len(r.Layers), len(r.Iterations))
}

// Finetune trains clf on split for the given epochs, returning the mean loss
// of the final epoch. Gradients flow densely through masks (STE).
func Finetune(clf *nn.Classifier, split data.Split, epochs, batchSize int, opt nn.Optimizer, rng *rand.Rand) float64 {
	last := 0.0
	for e := 0; e < epochs; e++ {
		sum, batches := 0.0, 0
		data.Batches(rng, split, batchSize, func(x *tensor.Tensor, labels []int) {
			sum += clf.TrainBatch(x, labels)
			opt.Step(clf.Params())
			batches++
		})
		if batches > 0 {
			last = sum / float64(batches)
		}
	}
	return last
}
