package pruner

import (
	"math/rand"
	"sort"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/saliency"
	"repro/internal/sparsity"
)

// MixedNM searches a per-layer N:M assignment (DominoSearch-style — the
// paper's reference [9] for the "costly alternative" to CRISP): every layer
// starts at the densest candidate pattern and a greedy loop steps the layer
// with the smallest saliency-loss-per-pruned-weight to its next-sparser
// pattern until the global target is met. It demonstrates the
// hyperparameter and bookkeeping burden CRISP's single global ranking
// avoids, at similar quality.
type MixedNM struct {
	Opts Options
	// Candidates are the allowed patterns, densest first (default
	// 3:4 → 2:4 → 1:4).
	Candidates []sparsity.NM
}

// NewMixedNM constructs the baseline.
func NewMixedNM(opts Options) *MixedNM {
	return &MixedNM{
		Opts:       opts.WithDefaults(),
		Candidates: []sparsity.NM{{N: 3, M: 4}, {N: 2, M: 4}, {N: 1, M: 4}},
	}
}

// layerState tracks one layer's position in the candidate ladder.
type layerState struct {
	param *nn.Param
	// level indexes Candidates; kept[i] is the retained saliency at level i.
	level int
	kept  []float64
	size  int
}

// Prune runs the iterative search + fine-tune loop.
func (b *MixedNM) Prune(clf *nn.Classifier, train data.Split) Report {
	o := b.Opts
	rng := rand.New(rand.NewSource(o.Seed))
	opt := nn.NewSGD(o.LR, o.Momentum, o.WeightDecay)
	rep := Report{Method: "mixed-nm", Target: o.Target}
	params := clf.PrunableParams()

	for p := 1; p <= o.Iterations; p++ {
		loss := Finetune(clf, train, o.FinetuneEpochs, o.BatchSize, opt, rng)
		scores := saliency.Compute(clf, train, o.BatchSize, o.Saliency)
		kappa := o.kappaAt(p, o.Iterations, 1-b.Candidates[0].Density())
		b.assign(params, scores, kappa)
		rep.Iterations = append(rep.Iterations, IterStat{Iteration: p, Kappa: kappa, Sparsity: clf.GlobalSparsity(), Loss: loss})
	}
	Finetune(clf, train, o.FinalFinetuneEpochs, o.BatchSize, opt, rng)
	rep.AchievedSparsity = clf.GlobalSparsity()
	rep.FLOPsRatio = FLOPsRatio(clf)
	rep.Layers = LayerStats(clf, o.BlockSize)
	return rep
}

// assign chooses per-layer patterns greedily and writes the masks.
func (b *MixedNM) assign(params []*nn.Param, scores saliency.Scores, kappa float64) {
	states := make([]*layerState, 0, len(params))
	total, nonzero := 0, 0
	for _, prm := range params {
		st := &layerState{param: prm, size: prm.W.Len(), kept: make([]float64, len(b.Candidates))}
		sv := scores.MatrixView(prm)
		mask := prm.MaskMatrixView()
		for i, nm := range b.Candidates {
			sparsity.ApplyNM(mask, sv, nm)
			kept := 0.0
			for j, v := range sv.Data {
				if mask.Data[j] != 0 {
					kept += v
				}
			}
			st.kept[i] = kept
		}
		states = append(states, st)
		total += st.size
		nonzero += int(b.Candidates[0].Density() * float64(st.size))
	}
	targetNonzero := int((1 - kappa) * float64(total))

	// Greedy ladder descent: repeatedly take the cheapest next step. A
	// sorted queue of current marginal costs is rebuilt lazily; with three
	// candidate levels the loop is tiny.
	for nonzero > targetNonzero {
		best := -1
		bestCost := 0.0
		for i, st := range states {
			if st.level+1 >= len(b.Candidates) {
				continue
			}
			dW := (b.Candidates[st.level].Density() - b.Candidates[st.level+1].Density()) * float64(st.size)
			dLoss := st.kept[st.level] - st.kept[st.level+1]
			cost := dLoss / dW
			if best == -1 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		if best == -1 {
			break // every layer is at the sparsest pattern
		}
		st := states[best]
		st.level++
		nonzero -= int((b.Candidates[st.level-1].Density() - b.Candidates[st.level].Density()) * float64(st.size))
	}

	// Write the chosen masks.
	for _, st := range states {
		sparsity.ApplyNM(st.param.MaskMatrixView(), scores.MatrixView(st.param), b.Candidates[st.level])
	}
}

// AssignedPatterns reports, after Prune, the N:M level of each layer by
// measuring its mask density against the candidate ladder.
func (b *MixedNM) AssignedPatterns(clf *nn.Classifier) map[string]sparsity.NM {
	out := map[string]sparsity.NM{}
	for _, prm := range clf.PrunableParams() {
		d := prm.Density()
		bestNM := b.Candidates[0]
		bestGap := 2.0
		for _, nm := range b.Candidates {
			gap := d - nm.Density()
			if gap < 0 {
				gap = -gap
			}
			if gap < bestGap {
				bestGap, bestNM = gap, nm
			}
		}
		out[prm.Name] = bestNM
	}
	return out
}

// SortedLayerNames returns the map's keys in sorted order, for
// deterministic reporting of assigned patterns.
func SortedLayerNames(m map[string]sparsity.NM) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
