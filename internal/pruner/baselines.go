package pruner

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/saliency"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// NMOnly prunes with the fine-grained N:M pattern alone (no block pruning),
// the configuration behind the paper's Fig. 1 N:M sweep. The achievable
// sparsity is fixed at 1 − N/M.
type NMOnly struct {
	Opts Options
}

// NewNMOnly constructs the baseline.
func NewNMOnly(opts Options) *NMOnly { return &NMOnly{Opts: opts.WithDefaults()} }

// Prune applies N:M masks iteratively with fine-tuning between rounds.
func (b *NMOnly) Prune(clf *nn.Classifier, train data.Split) Report {
	o := b.Opts
	rng := rand.New(rand.NewSource(o.Seed))
	opt := nn.NewSGD(o.LR, o.Momentum, o.WeightDecay)
	rep := Report{Method: "nm-only-" + o.NM.String(), Target: 1 - o.NM.Density()}
	params := clf.PrunableParams()
	for p := 1; p <= o.Iterations; p++ {
		loss := Finetune(clf, train, o.FinetuneEpochs, o.BatchSize, opt, rng)
		scores := saliency.Compute(clf, train, o.BatchSize, o.Saliency)
		for _, prm := range params {
			sparsity.ApplyNM(prm.MaskMatrixView(), scores.MatrixView(prm), o.NM)
		}
		rep.Iterations = append(rep.Iterations, IterStat{Iteration: p, Kappa: rep.Target, Sparsity: clf.GlobalSparsity(), Loss: loss})
	}
	Finetune(clf, train, o.FinalFinetuneEpochs, o.BatchSize, opt, rng)
	rep.AchievedSparsity = clf.GlobalSparsity()
	rep.FLOPsRatio = FLOPsRatio(clf)
	rep.Layers = LayerStats(clf, o.BlockSize)
	return rep
}

// BlockOnly is the coarse-grained block-sparsity baseline of the paper's
// Fig. 3. With Balanced=false (the classic scheme) the globally
// lowest-scoring B×B blocks are pruned wherever they fall — rows lose
// arbitrary numbers of blocks and whole filters can die, which is exactly
// why the baseline collapses at high sparsity. Balanced=true uses CRISP's
// rank-column mechanism without N:M (the Ablation C comparator).
type BlockOnly struct {
	Opts     Options
	Balanced bool
}

// NewBlockOnly constructs the baseline.
func NewBlockOnly(opts Options, balanced bool) *BlockOnly {
	return &BlockOnly{Opts: opts.WithDefaults(), Balanced: balanced}
}

// Prune iteratively removes blocks until the target sparsity.
func (b *BlockOnly) Prune(clf *nn.Classifier, train data.Split) Report {
	o := b.Opts
	rng := rand.New(rand.NewSource(o.Seed))
	opt := nn.NewSGD(o.LR, o.Momentum, o.WeightDecay)
	name := "block-unbalanced"
	if b.Balanced {
		name = "block-balanced"
	}
	rep := Report{Method: name, Target: o.Target}
	params := clf.PrunableParams()
	for p := 1; p <= o.Iterations; p++ {
		loss := Finetune(clf, train, o.FinetuneEpochs, o.BatchSize, opt, rng)
		scores := saliency.Compute(clf, train, o.BatchSize, o.Saliency)
		// Reset masks: block pruning is recomputed from scratch each round.
		for _, prm := range params {
			prm.EnsureMask().Fill(1)
		}
		kappa := o.kappaAt(p, o.Iterations, 0)
		if b.Balanced {
			b.pruneBalanced(params, scores, kappa)
		} else {
			b.pruneUnbalanced(params, scores, kappa)
		}
		rep.Iterations = append(rep.Iterations, IterStat{Iteration: p, Kappa: kappa, Sparsity: clf.GlobalSparsity(), Loss: loss})
	}
	Finetune(clf, train, o.FinalFinetuneEpochs, o.BatchSize, opt, rng)
	rep.AchievedSparsity = clf.GlobalSparsity()
	rep.FLOPsRatio = FLOPsRatio(clf)
	rep.Layers = LayerStats(clf, o.BlockSize)
	return rep
}

// pruneBalanced reuses CRISP's rank-column machinery without N:M (a 1:1
// pattern keeps every element, so only block pruning acts).
func (b *BlockOnly) pruneBalanced(params []*nn.Param, scores saliency.Scores, kappa float64) {
	cfg := coreConfig(b.Opts)
	cfg.NM = sparsity.NM{N: 1, M: 1}
	core.ApplyHybrid(coreLayers(params, scores), cfg, kappa)
}

// pruneUnbalanced prunes individual blocks globally by ascending score.
func (b *BlockOnly) pruneUnbalanced(params []*nn.Param, scores saliency.Scores, kappa float64) {
	o := b.Opts
	type blockRef struct {
		param  *nn.Param
		grid   sparsity.BlockGrid
		br, bc int
		score  float64
		cost   int
	}
	total, nonzero := 0, 0
	var blocks []blockRef
	for _, prm := range params {
		total += prm.W.Len()
		nonzero += prm.EnsureMask().CountNonZero()
		if prm.BlockExempt {
			continue
		}
		g := sparsity.NewBlockGrid(prm.Rows, prm.Cols, o.BlockSize)
		bs := sparsity.BlockScores(scores.MatrixView(prm), g)
		for br := 0; br < g.GridRows(); br++ {
			for bc := 0; bc < g.GridCols(); bc++ {
				r0, r1, c0, c1 := g.Bounds(br, bc)
				blocks = append(blocks, blockRef{
					param: prm, grid: g, br: br, bc: bc,
					score: bs.At(br, bc),
					cost:  (r1 - r0) * (c1 - c0),
				})
			}
		}
	}
	sort.SliceStable(blocks, func(a, b int) bool { return blocks[a].score < blocks[b].score })
	targetNonzero := int((1 - kappa) * float64(total))
	for _, blk := range blocks {
		if nonzero <= targetNonzero {
			break
		}
		mask := blk.param.MaskMatrixView()
		cols := mask.Shape[1]
		r0, r1, c0, c1 := blk.grid.Bounds(blk.br, blk.bc)
		for r := r0; r < r1; r++ {
			for cc := c0; cc < c1; cc++ {
				mask.Data[r*cols+cc] = 0
			}
		}
		nonzero -= blk.cost
	}
}

// Channel is the OCAP/CAPNN-style class-aware structured baseline: entire
// output channels (rows of the pruning view) are removed by ascending
// score. At least MinKeepRows rows survive per layer. Scores come from
// aggregated weight saliency by default, or — with UseActivations — from
// per-channel feature-map magnitudes over the user samples, OCAP's actual
// statistic.
type Channel struct {
	Opts Options
	// MinKeepRows floors the surviving channels per layer (default 1).
	MinKeepRows int
	// UseActivations switches the channel score to mean |activation|.
	UseActivations bool
}

// NewChannel constructs the baseline.
func NewChannel(opts Options) *Channel {
	return &Channel{Opts: opts.WithDefaults(), MinKeepRows: 1}
}

// Prune iteratively removes channels until the target sparsity.
func (b *Channel) Prune(clf *nn.Classifier, train data.Split) Report {
	o := b.Opts
	rng := rand.New(rand.NewSource(o.Seed))
	opt := nn.NewSGD(o.LR, o.Momentum, o.WeightDecay)
	name := "channel"
	if b.UseActivations {
		name = "channel-act"
	}
	rep := Report{Method: name, Target: o.Target}
	params := clf.PrunableParams()
	for p := 1; p <= o.Iterations; p++ {
		loss := Finetune(clf, train, o.FinetuneEpochs, o.BatchSize, opt, rng)
		rowScores := b.rowScores(clf, train)
		for _, prm := range params {
			prm.EnsureMask().Fill(1)
		}
		kappa := o.kappaAt(p, o.Iterations, 0)
		b.pruneChannels(params, rowScores, kappa)
		rep.Iterations = append(rep.Iterations, IterStat{Iteration: p, Kappa: kappa, Sparsity: clf.GlobalSparsity(), Loss: loss})
	}
	Finetune(clf, train, o.FinalFinetuneEpochs, o.BatchSize, opt, rng)
	rep.AchievedSparsity = clf.GlobalSparsity()
	rep.FLOPsRatio = FLOPsRatio(clf)
	rep.Layers = LayerStats(clf, o.BlockSize)
	return rep
}

// rowScores returns one score per output row of every prunable parameter.
func (b *Channel) rowScores(clf *nn.Classifier, train data.Split) map[*nn.Param][]float64 {
	out := map[*nn.Param][]float64{}
	// Weight-saliency rows (always computed: the activation mode falls back
	// to them for non-convolution parameters).
	scores := saliency.Compute(clf, train, b.Opts.BatchSize, b.Opts.Saliency)
	for _, prm := range clf.PrunableParams() {
		sv := scores.MatrixView(prm)
		rows := make([]float64, prm.Rows)
		for r := 0; r < prm.Rows; r++ {
			s := 0.0
			for c := 0; c < prm.Cols; c++ {
				s += sv.At(r, c)
			}
			rows[r] = s
		}
		out[prm] = rows
	}
	if !b.UseActivations {
		return out
	}
	// OCAP mode: mean |feature map| per conv output channel over the user
	// samples, collected with eval-mode forwards.
	collectors := map[*nn.Param]*nn.ChannelStats{}
	nn.Walk(clf.Net, func(l nn.Layer) {
		if c, ok := l.(*nn.Conv2D); ok {
			st := nn.NewChannelStats(c.OutC)
			c.OutStats = st
			collectors[c.Weight] = st
		}
	})
	vol := train.X.Shape[1] * train.X.Shape[2] * train.X.Shape[3]
	bs := b.Opts.BatchSize
	for start := 0; start < train.Len(); start += bs {
		end := start + bs
		if end > train.Len() {
			end = train.Len()
		}
		x := tensor.New(end-start, train.X.Shape[1], train.X.Shape[2], train.X.Shape[3])
		copy(x.Data, train.X.Data[start*vol:end*vol])
		clf.Logits(x, false)
	}
	nn.Walk(clf.Net, func(l nn.Layer) {
		if c, ok := l.(*nn.Conv2D); ok {
			c.OutStats = nil
		}
	})
	for prm, st := range collectors {
		if _, ok := out[prm]; ok {
			out[prm] = st.Mean()
		}
	}
	return out
}

func (b *Channel) pruneChannels(params []*nn.Param, rowScores map[*nn.Param][]float64, kappa float64) {
	type rowRef struct {
		param *nn.Param
		row   int
		score float64
	}
	total, nonzero := 0, 0
	var rows []rowRef
	keepLeft := map[*nn.Param]int{}
	for _, prm := range params {
		total += prm.W.Len()
		nonzero += prm.EnsureMask().CountNonZero()
		keepLeft[prm] = prm.Rows
		for r := 0; r < prm.Rows; r++ {
			rows = append(rows, rowRef{param: prm, row: r, score: rowScores[prm][r]})
		}
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].score < rows[b].score })
	targetNonzero := int((1 - kappa) * float64(total))
	for _, rr := range rows {
		if nonzero <= targetNonzero {
			break
		}
		if keepLeft[rr.param] <= b.MinKeepRows {
			continue
		}
		mask := rr.param.MaskMatrixView()
		cols := mask.Shape[1]
		removed := 0
		for c := 0; c < cols; c++ {
			if mask.Data[rr.row*cols+c] != 0 {
				mask.Data[rr.row*cols+c] = 0
				removed++
			}
		}
		nonzero -= removed
		keepLeft[rr.param]--
	}
}

// Unstructured is the global magnitude-pruning baseline: the lowest-|w|
// weights are masked irrespective of structure. It bounds what any
// structured scheme can achieve in accuracy but offers no hardware benefit
// (the paper's motivation for structure).
type Unstructured struct {
	Opts Options
}

// NewUnstructured constructs the baseline.
func NewUnstructured(opts Options) *Unstructured { return &Unstructured{Opts: opts.WithDefaults()} }

// Prune iteratively masks the globally smallest saliency entries.
func (b *Unstructured) Prune(clf *nn.Classifier, train data.Split) Report {
	o := b.Opts
	rng := rand.New(rand.NewSource(o.Seed))
	opt := nn.NewSGD(o.LR, o.Momentum, o.WeightDecay)
	rep := Report{Method: "unstructured", Target: o.Target}
	params := clf.PrunableParams()
	for p := 1; p <= o.Iterations; p++ {
		loss := Finetune(clf, train, o.FinetuneEpochs, o.BatchSize, opt, rng)
		scores := saliency.Compute(clf, train, o.BatchSize, o.Saliency)
		kappa := o.kappaAt(p, o.Iterations, 0)
		threshold := globalThreshold(params, scores, kappa)
		for _, prm := range params {
			mask := prm.EnsureMask()
			sv := scores[prm]
			for i := range mask.Data {
				if sv.Data[i] <= threshold {
					mask.Data[i] = 0
				} else {
					mask.Data[i] = 1
				}
			}
		}
		rep.Iterations = append(rep.Iterations, IterStat{Iteration: p, Kappa: kappa, Sparsity: clf.GlobalSparsity(), Loss: loss})
	}
	Finetune(clf, train, o.FinalFinetuneEpochs, o.BatchSize, opt, rng)
	rep.AchievedSparsity = clf.GlobalSparsity()
	rep.FLOPsRatio = FLOPsRatio(clf)
	rep.Layers = LayerStats(clf, o.BlockSize)
	return rep
}

// globalThreshold returns the score value below which the kappa fraction of
// all prunable weights falls.
func globalThreshold(params []*nn.Param, scores saliency.Scores, kappa float64) float64 {
	var all []float64
	for _, prm := range params {
		all = append(all, scores[prm].Data...)
	}
	if len(all) == 0 {
		return math.Inf(-1)
	}
	sort.Float64s(all)
	idx := int(kappa * float64(len(all)))
	if idx <= 0 {
		return math.Inf(-1)
	}
	if idx >= len(all) {
		idx = len(all) - 1
	}
	return all[idx-1]
}
