package quant

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// FuzzQuantizeRoundTrip drives Quantize across arbitrary weight tensors,
// magnitudes and schemes and asserts the contract the int8 serving path
// depends on:
//
//   - finite inputs quantize with strictly positive scales and
//     per-element reconstruction error ≤ scale/2 (+ rounding headroom),
//   - codes stay inside the symmetric window [-127, 127],
//   - quantization is deterministic (same input → same codes/scales, the
//     snapshot-restore re-quantization invariant),
//   - NaN/Inf inputs fail closed with an error instead of garbage codes.
func FuzzQuantizeRoundTrip(f *testing.F) {
	f.Add(int64(1), 1.0, false, uint8(0), uint16(0))
	f.Add(int64(2), 1e-6, true, uint8(1), uint16(3))
	f.Add(int64(3), 1e6, false, uint8(2), uint16(17))
	f.Add(int64(4), 0.0, true, uint8(3), uint16(65535))
	f.Fuzz(func(t *testing.T, seed int64, scale float64, perTensor bool, poison uint8, poisonAt uint16) {
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) > 1e12 {
			t.Skip("scale itself out of the finite test envelope")
		}
		rows, cols := 1+int(uint(seed)%7), 1+int(uint(seed>>8)%15)
		m := tensor.New(rows, cols)
		rng := newSplitMix(uint64(seed))
		for i := range m.Data {
			m.Data[i] = scale * (rng.next() - 0.5)
		}
		scheme := PerChannel
		if perTensor {
			scheme = PerTensor
		}

		// poison != 0 injects one non-finite value: Quantize must reject the
		// whole tensor, never emit codes for it.
		if poison%4 != 0 {
			bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}[poison%4-1]
			m.Data[int(poisonAt)%len(m.Data)] = bad
			if q, err := Quantize(m, scheme); err == nil {
				t.Fatalf("non-finite input %v produced codes %v instead of failing closed", bad, q.Codes)
			}
			return
		}

		q, err := Quantize(m, scheme)
		if err != nil {
			t.Fatalf("finite input rejected: %v", err)
		}
		for r, s := range q.Scales {
			if !(s > 0) || math.IsInf(s, 0) || math.IsNaN(s) {
				t.Fatalf("row %d scale %v not strictly positive and finite", r, s)
			}
		}
		for i, c := range q.Codes {
			if c < -127 || c > 127 {
				t.Fatalf("code %d = %d outside the symmetric int8 window", i, c)
			}
		}
		dq := q.Dequantize()
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				e := math.Abs(dq.At(r, c) - m.At(r, c))
				if bound := q.Scales[r]/2 + 1e-9*q.Scales[r]; e > bound {
					t.Fatalf("%s [%d,%d]: reconstruction error %v exceeds half-scale %v",
						scheme, r, c, e, q.Scales[r]/2)
				}
			}
		}

		// Determinism: the serving layer re-quantizes restored snapshots and
		// requires identical codes.
		q2, err := Quantize(m, scheme)
		if err != nil {
			t.Fatalf("second quantization rejected: %v", err)
		}
		for i := range q.Codes {
			if q.Codes[i] != q2.Codes[i] {
				t.Fatalf("code %d differs across quantizations of the same tensor", i)
			}
		}
		for r := range q.Scales {
			if q.Scales[r] != q2.Scales[r] {
				t.Fatalf("scale %d differs across quantizations of the same tensor", r)
			}
		}
	})
}

// splitMix is a tiny deterministic generator for fuzz inputs (keeps the
// corpus seed-stable without importing math/rand's global state).
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (g *splitMix) next() float64 {
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
