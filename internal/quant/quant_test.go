package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/tensor"
)

func TestQuantizeRoundTripBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.Randn(rng, 2, 8, 16)
	for _, scheme := range []Scheme{PerTensor, PerChannel} {
		q, err := Quantize(m, scheme)
		if err != nil {
			t.Fatal(err)
		}
		// Error bounded by scale/2 per element.
		dq := q.Dequantize()
		for r := 0; r < 8; r++ {
			for c := 0; c < 16; c++ {
				e := math.Abs(dq.At(r, c) - m.At(r, c))
				if e > q.Scales[r]/2+1e-12 {
					t.Fatalf("%s: error %v exceeds half-scale %v", scheme, e, q.Scales[r]/2)
				}
			}
		}
	}
}

func TestPerChannelBeatsPerTensorOnSkewedRows(t *testing.T) {
	// One row with tiny values, one with huge: a shared scale crushes the
	// tiny row; per-channel preserves it.
	m := tensor.New(2, 4)
	for c := 0; c < 4; c++ {
		m.Set(0.01*float64(c+1), 0, c)
		m.Set(10*float64(c+1), 1, c)
	}
	rowErr := func(q *QTensor) float64 {
		dq := q.Dequantize()
		worst := 0.0
		for c := 0; c < 4; c++ {
			if e := math.Abs(dq.At(0, c) - m.At(0, c)); e > worst {
				worst = e
			}
		}
		return worst
	}
	mustQuantize := func(scheme Scheme) *QTensor {
		q, err := Quantize(m, scheme)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	pt := rowErr(mustQuantize(PerTensor))
	pc := rowErr(mustQuantize(PerChannel))
	if pc >= pt {
		t.Fatalf("per-channel small-row error %v not better than per-tensor %v", pc, pt)
	}
}

func TestZerosEncodeToZero(t *testing.T) {
	m := tensor.New(4, 4) // all zeros (e.g. fully masked row)
	q, err := Quantize(m, PerChannel)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range q.Codes {
		if c != 0 {
			t.Fatal("zero input must encode to zero")
		}
	}
	dq := q.Dequantize()
	if dq.AbsSum() != 0 {
		t.Fatal("zeros must reconstruct exactly")
	}
}

func TestMaskedZerosStayZeroAfterModelQuantization(t *testing.T) {
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(2)), 4, 1)
	p := clf.PrunableParams()[1]
	mask := p.EnsureMask()
	for i := 0; i < mask.Len(); i += 2 {
		mask.Data[i] = 0
	}
	if _, err := QuantizeModel(clf, PerChannel); err != nil {
		t.Fatal(err)
	}
	mv := p.MatrixView()
	for i := 0; i < mask.Len(); i += 2 {
		if mv.Data[i] != 0 {
			t.Fatalf("masked weight %d became %v after quantization", i, mv.Data[i])
		}
	}
}

func TestQuantizedModelAccuracyClose(t *testing.T) {
	// 8-bit per-channel weights must not change predictions materially on a
	// trained model.
	cfg := data.Config{Name: "q", NumClasses: 6, Channels: 3, H: 8, W: 8, Noise: 0.25, Jitter: 1, Seed: 3}
	ds := data.New(cfg)
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(4)), 6, 1)
	// Light training so logits are meaningful.
	split := ds.MakeSplit("train", []int{0, 1, 2, 3, 4, 5}, 8)
	for e := 0; e < 2; e++ {
		x := tensor.New(split.Len(), 3, 8, 8)
		copy(x.Data, split.X.Data)
		clf.TrainBatch(x, split.Labels)
	}
	test := ds.MakeSplit("test", []int{0, 1, 2, 3, 4, 5}, 6)
	before := clf.Accuracy(test.X, test.Labels)
	errs, err := QuantizeModel(clf, PerChannel)
	if err != nil {
		t.Fatal(err)
	}
	after := clf.Accuracy(test.X, test.Labels)
	if math.Abs(before-after) > 0.15 {
		t.Fatalf("8-bit quantization moved accuracy %v → %v", before, after)
	}
	if len(errs) != len(clf.PrunableParams()) {
		t.Fatalf("error map size %d", len(errs))
	}
}

// Property: quantization error never exceeds half the row scale, for any
// input distribution.
func TestQuantErrorBoundProperty(t *testing.T) {
	f := func(seed int64, scale uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := tensor.Randn(rng, float64(scale%50)+0.1, 4, 8)
		q, err := Quantize(m, PerChannel)
		if err != nil {
			return false
		}
		dq := q.Dequantize()
		for r := 0; r < 4; r++ {
			for c := 0; c < 8; c++ {
				if math.Abs(dq.At(r, c)-m.At(r, c)) > q.Scales[r]/2+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
