// Package quant provides symmetric linear quantization to signed 8-bit
// integers. CRISP-STC (like NVIDIA's sparse tensor cores in int8 mode)
// computes on 8-bit operands, and the storage-format byte accounting
// assumes 8-bit values; this package quantizes pruned models and measures
// the accuracy cost of deployment precision.
package quant

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Scheme selects the scale granularity.
type Scheme int

const (
	// PerTensor uses one scale per weight tensor.
	PerTensor Scheme = iota
	// PerChannel uses one scale per output row of the pruning view —
	// standard practice for conv weights and noticeably more accurate.
	PerChannel
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	if s == PerChannel {
		return "per-channel"
	}
	return "per-tensor"
}

// QTensor is a quantized tensor: int8 codes with row scales.
type QTensor struct {
	Rows, Cols int
	// Codes holds rows×cols int8 values.
	Codes []int8
	// Scales holds one dequantization scale per row (PerTensor repeats the
	// same scale).
	Scales []float64
}

// Quantize encodes a rank-2 tensor at 8 bits with the given scheme.
// Non-finite inputs fail closed: a NaN or Inf weight would otherwise poison
// its row's scale (or survive as an undefined float→int8 conversion), so
// the whole tensor is rejected instead of producing garbage codes.
func Quantize(m *tensor.Tensor, scheme Scheme) (*QTensor, error) {
	if len(m.Shape) != 2 {
		panic(fmt.Sprintf("quant: rank-2 tensor required, got %v", m.Shape))
	}
	for i, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("quant: non-finite weight %v at element %d", v, i)
		}
	}
	rows, cols := m.Shape[0], m.Shape[1]
	q := &QTensor{Rows: rows, Cols: cols, Codes: make([]int8, rows*cols), Scales: make([]float64, rows)}
	switch scheme {
	case PerChannel:
		for r := 0; r < rows; r++ {
			q.Scales[r] = rowScale(m.Data[r*cols : (r+1)*cols])
		}
	default:
		s := rowScale(m.Data)
		for r := range q.Scales {
			q.Scales[r] = s
		}
	}
	for r := 0; r < rows; r++ {
		s := q.Scales[r]
		for c := 0; c < cols; c++ {
			q.Codes[r*cols+c] = encode(m.Data[r*cols+c], s)
		}
	}
	return q, nil
}

// rowScale returns max|v|/127 (1 when the row is all zero, so zero encodes
// to zero).
func rowScale(vals []float64) float64 {
	maxAbs := 0.0
	for _, v := range vals {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	return maxAbs / 127
}

// encode clamps and rounds v/s to int8.
func encode(v, s float64) int8 {
	q := math.Round(v / s)
	if q > 127 {
		q = 127
	}
	if q < -127 {
		q = -127
	}
	return int8(q)
}

// Dequantize reconstructs the float tensor.
func (q *QTensor) Dequantize() *tensor.Tensor {
	out := tensor.New(q.Rows, q.Cols)
	for r := 0; r < q.Rows; r++ {
		s := q.Scales[r]
		for c := 0; c < q.Cols; c++ {
			out.Data[r*q.Cols+c] = float64(q.Codes[r*q.Cols+c]) * s
		}
	}
	return out
}

// MaxError returns the largest absolute reconstruction error against m.
func (q *QTensor) MaxError(m *tensor.Tensor) float64 {
	dq := q.Dequantize()
	worst := 0.0
	for i := range m.Data {
		if e := math.Abs(dq.Data[i] - m.Data[i]); e > worst {
			worst = e
		}
	}
	return worst
}

// QuantizeModel replaces every prunable weight of clf with its fake-quantized
// (quantize → dequantize) value under the current mask, simulating 8-bit
// deployment while keeping the float execution engine. Masked positions
// stay zero. It returns the per-layer worst reconstruction error. A layer
// with non-finite weights fails the whole call (fail closed) with the model
// untouched beyond the layers already processed — such a model is broken
// either way and must not be deployed quantized.
func QuantizeModel(clf *nn.Classifier, scheme Scheme) (map[string]float64, error) {
	errs := map[string]float64{}
	for _, p := range clf.PrunableParams() {
		masked := tensor.Mul(p.MatrixView(), p.MaskMatrixView())
		q, err := Quantize(masked, scheme)
		if err != nil {
			return nil, fmt.Errorf("quant: layer %s: %w", p.Name, err)
		}
		errs[p.Name] = q.MaxError(masked)
		dq := q.Dequantize()
		copy(p.MatrixView().Data, dq.Data)
	}
	return errs, nil
}
