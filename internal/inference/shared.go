package inference

import (
	"sync"

	"repro/internal/format"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// SharedWeights is the compile-time view of the universal model every
// tenant prunes: one immutable value slab per parameter (aliasing the base
// classifier's weight storage — referenced, never cloned) plus a lazy cache
// of universal effective tensors for the layers that execute masked-dense
// (attention projections, depthwise kernels). Engines compiled with
// CompileOptions.Shared bind their plans to these slabs whenever the
// tenant's kept values still equal the universal weights, and borrow the
// cached effective tensors whenever the tenant's weights and mask match the
// universal parameter — so per-tenant memory shrinks to index data plus
// only the layers that actually diverged.
//
// The base classifier must not be trained or re-pruned while engines built
// against its SharedWeights are alive. One SharedWeights is safe for
// concurrent use by many compilations.
type SharedWeights struct {
	params map[string]*nn.Param
	slabs  map[string]*format.ValueSlab

	mu  sync.Mutex
	eff map[string]*tensor.Tensor
}

// NewSharedWeights snapshots the universal classifier's parameter set. The
// slabs alias base's weight tensors directly; no weight memory is copied.
func NewSharedWeights(base *nn.Classifier) *SharedWeights {
	s := &SharedWeights{
		params: make(map[string]*nn.Param),
		slabs:  make(map[string]*format.ValueSlab),
		eff:    make(map[string]*tensor.Tensor),
	}
	for _, p := range base.Params() {
		s.params[p.Name] = p
		s.slabs[p.Name] = format.NewValueSlab(p.MatrixView())
	}
	return s
}

// Slab returns the universal value slab for the named parameter, or nil.
func (s *SharedWeights) Slab(name string) *format.ValueSlab {
	if s == nil {
		return nil
	}
	return s.slabs[name]
}

// universalEffective returns the shared effective (W ⊙ Mask) tensor for p
// when the tenant parameter still matches the universal one bit-for-bit —
// same weights, same mask — and nil when it diverged (the caller then
// materializes privately). The shared tensor is computed once per parameter
// and must be treated as immutable by every borrower.
func (s *SharedWeights) universalEffective(p *nn.Param) *tensor.Tensor {
	if s == nil {
		return nil
	}
	b := s.params[p.Name]
	if b == nil || !tensorEqualBits(p.W, b.W) || !maskEqual(p.Mask, b.Mask) {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.eff[p.Name]
	if t == nil {
		t = b.Effective()
		s.eff[p.Name] = t
	}
	return t
}

// tensorEqualBits reports elementwise equality of two tensors' storage.
func tensorEqualBits(a, b *tensor.Tensor) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || len(a.Data) != len(b.Data) {
		return false
	}
	for i, v := range a.Data {
		if b.Data[i] != v {
			return false
		}
	}
	return true
}

// maskEqual reports whether two masks keep the same positions, treating a
// nil mask as all-ones.
func maskEqual(a, b *tensor.Tensor) bool {
	switch {
	case a == nil && b == nil:
		return true
	case a == nil:
		return allOnes(b)
	case b == nil:
		return allOnes(a)
	default:
		return tensorEqualBits(a, b)
	}
}

func allOnes(m *tensor.Tensor) bool {
	for _, v := range m.Data {
		if v != 1 {
			return false
		}
	}
	return true
}
