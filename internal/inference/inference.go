// Package inference executes a pruned classifier using compressed sparse
// weights: convolution and fully connected layers run their GEMMs through
// the CRISP storage format's SpMM kernel (falling back to CSR where the
// hybrid structure does not apply), instead of multiplying masked dense
// matrices. It is the software analogue of deploying the pruned model on
// CRISP-STC, and doubles as an end-to-end validation that the compressed
// representation computes exactly what the masked dense model computes.
//
// The engine is inference-only: layers run in evaluation mode and no
// gradients exist. Multi-head attention keeps masked-dense projections
// (its four GEMMs interleave with the attention pattern); every other
// weight-bearing layer executes from its compressed encoding.
package inference

import (
	"fmt"

	"repro/internal/format"
	"repro/internal/nn"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// Engine is a compiled sparse-execution plan for one classifier. An engine
// is immutable after New and safe for concurrent Logits/LogitsBatch calls:
// the forward pass runs in evaluation mode, which touches no layer state.
type Engine struct {
	clf  *nn.Classifier
	root nn.Layer
	// CompressedLayers counts the layers running from sparse encodings; it
	// is fixed at compile time.
	CompressedLayers int
}

// New compiles clf's current masks into a sparse execution plan. The
// classifier must already be pruned; non-exempt layers are encoded in the
// CRISP format at the given block size and N:M pattern, exempt ones in CSR.
func New(clf *nn.Classifier, blockSize int, nm sparsity.NM) (*Engine, error) {
	e := &Engine{clf: clf}
	root, err := e.compile(clf.Net, blockSize, nm)
	if err != nil {
		return nil, err
	}
	e.root = root
	return e, nil
}

// Logits runs the sparse forward pass.
func (e *Engine) Logits(x *tensor.Tensor) *tensor.Tensor {
	return e.root.Forward(x, false)
}

// LogitsBatch stacks B sample tensors into one [B, ...] batch and runs a
// single sparse forward pass, so every compressed layer serves the whole
// batch with one SpMM instead of B SpMMs. Outputs are bit-identical to
// calling Logits per sample: each output element is the same dot product
// accumulated in the same order regardless of batch size.
func (e *Engine) LogitsBatch(xs []*tensor.Tensor) *tensor.Tensor {
	return e.Logits(tensor.Concat(xs))
}

// Predict returns the argmax class of every sample in the batch.
func (e *Engine) Predict(x *tensor.Tensor) []int {
	return nn.ArgmaxRows(e.Logits(x), e.clf.NumClasses)
}

// compile mirrors the layer tree, swapping weight-bearing layers for
// sparse executors.
func (e *Engine) compile(l nn.Layer, b int, nm sparsity.NM) (nn.Layer, error) {
	switch v := l.(type) {
	case *nn.Sequential:
		out := &nn.Sequential{}
		for _, c := range v.Layers {
			cc, err := e.compile(c, b, nm)
			if err != nil {
				return nil, err
			}
			out.Layers = append(out.Layers, cc)
		}
		return out, nil
	case *nn.Residual:
		main, err := e.compile(v.Main, b, nm)
		if err != nil {
			return nil, err
		}
		var short nn.Layer
		if v.Shortcut != nil {
			short, err = e.compile(v.Shortcut, b, nm)
			if err != nil {
				return nil, err
			}
		}
		return nn.NewResidual(main, short), nil
	case *nn.Conv2D:
		enc, err := encodeParam(v.Weight, b, nm)
		if err != nil {
			return nil, err
		}
		e.CompressedLayers++
		return &sparseConv{conv: v, enc: enc}, nil
	case *nn.Linear:
		enc, err := encodeParam(v.Weight, b, nm)
		if err != nil {
			return nil, err
		}
		e.CompressedLayers++
		return &sparseLinear{lin: v, enc: enc}, nil
	case *nn.TokenLinear:
		enc, err := encodeParam(v.Weight, b, nm)
		if err != nil {
			return nil, err
		}
		e.CompressedLayers++
		return &sparseTokenLinear{lin: v, enc: enc}, nil
	case *nn.PatchEmbed:
		enc, err := encodeParam(v.Weight, b, nm)
		if err != nil {
			return nil, err
		}
		e.CompressedLayers++
		return &sparsePatchEmbed{pe: v, enc: enc}, nil
	default:
		// Stateless or statistics-only layers execute as-is (eval mode).
		return l, nil
	}
}

// encodeParam compresses one parameter's masked weights. Dense and exempt
// parameters use CSR; hybrid-masked ones use the CRISP format.
func encodeParam(p *nn.Param, b int, nm sparsity.NM) (format.Encoded, error) {
	masked := tensor.Mul(p.MatrixView(), p.MaskMatrixView())
	if p.BlockExempt || p.Mask == nil || !p.Prunable {
		return format.EncodeCSR(masked), nil
	}
	enc, err := format.EncodeCRISP(masked, b, nm)
	if err != nil {
		// Dense or non-conforming masks (e.g. a baseline pruner) still
		// execute, just without the hybrid layout.
		return format.EncodeCSR(masked), nil
	}
	return enc, nil
}

// inferenceOnly panics for backward passes.
func inferenceOnly() *tensor.Tensor {
	panic("inference: engine layers do not support backward")
}

// sparseConv runs Conv2D from a compressed weight matrix.
type sparseConv struct {
	conv *nn.Conv2D
	enc  format.Encoded
}

// Forward implements nn.Layer.
func (s *sparseConv) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	g := s.conv.Geom
	g.InH, g.InW = x.Shape[2], x.Shape[3]
	n := x.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	cols := tensor.Im2Col(x, g)
	outMat := s.enc.MatMul(cols) // [S, N*OH*OW]
	p := oh * ow
	y := tensor.New(n, s.conv.OutC, oh, ow)
	for oc := 0; oc < s.conv.OutC; oc++ {
		bias := 0.0
		if s.conv.Bias != nil {
			bias = s.conv.Bias.W.Data[oc]
		}
		src := outMat.Data[oc*n*p : (oc+1)*n*p]
		for b := 0; b < n; b++ {
			dst := y.Data[(b*s.conv.OutC+oc)*p : (b*s.conv.OutC+oc+1)*p]
			for i, v := range src[b*p : (b+1)*p] {
				dst[i] = v + bias
			}
		}
	}
	return y
}

// Backward implements nn.Layer.
func (s *sparseConv) Backward(*tensor.Tensor) *tensor.Tensor { return inferenceOnly() }

// Params implements nn.Layer.
func (s *sparseConv) Params() []*nn.Param { return nil }

// sparseLinear runs Linear from a compressed weight matrix: y = (W·xᵀ)ᵀ+b.
type sparseLinear struct {
	lin *nn.Linear
	enc format.Encoded
}

// Forward implements nn.Layer.
func (s *sparseLinear) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n := x.Shape[0]
	// SpMM computes W·B for B = xᵀ [In, N].
	xt := transpose(x)
	out := s.enc.MatMul(xt) // [Out, N]
	y := tensor.New(n, s.lin.Out)
	for j := 0; j < s.lin.Out; j++ {
		for b := 0; b < n; b++ {
			y.Data[b*s.lin.Out+j] = out.Data[j*n+b] + s.lin.Bias.W.Data[j]
		}
	}
	return y
}

// Backward implements nn.Layer.
func (s *sparseLinear) Backward(*tensor.Tensor) *tensor.Tensor { return inferenceOnly() }

// Params implements nn.Layer.
func (s *sparseLinear) Params() []*nn.Param { return nil }

// sparseTokenLinear runs TokenLinear from a compressed weight matrix.
type sparseTokenLinear struct {
	lin *nn.TokenLinear
	enc format.Encoded
}

// Forward implements nn.Layer.
func (s *sparseTokenLinear) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, t := x.Shape[0], x.Shape[1]
	flat := x.Reshape(n*t, s.lin.In)
	xt := transpose(flat)
	out := s.enc.MatMul(xt) // [Out, N*T]
	y := tensor.New(n*t, s.lin.Out)
	for j := 0; j < s.lin.Out; j++ {
		for r := 0; r < n*t; r++ {
			y.Data[r*s.lin.Out+j] = out.Data[j*n*t+r] + s.lin.Bias.W.Data[j]
		}
	}
	return y.Reshape(n, t, s.lin.Out)
}

// Backward implements nn.Layer.
func (s *sparseTokenLinear) Backward(*tensor.Tensor) *tensor.Tensor { return inferenceOnly() }

// Params implements nn.Layer.
func (s *sparseTokenLinear) Params() []*nn.Param { return nil }

// sparsePatchEmbed runs PatchEmbed from a compressed weight matrix.
type sparsePatchEmbed struct {
	pe  *nn.PatchEmbed
	enc format.Encoded
}

// Forward implements nn.Layer.
func (s *sparsePatchEmbed) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	// Reuse the dense patch extraction, then the sparse projection.
	patches := s.pe.ExtractPatches(x) // [N*T, C*P*P]
	nt := patches.Shape[0]
	xt := transpose(patches)
	out := s.enc.MatMul(xt) // [D, N*T]
	y := tensor.New(nt, s.pe.D)
	for j := 0; j < s.pe.D; j++ {
		for r := 0; r < nt; r++ {
			y.Data[r*s.pe.D+j] = out.Data[j*nt+r] + s.pe.Bias.W.Data[j]
		}
	}
	n := x.Shape[0]
	return y.Reshape(n, nt/n, s.pe.D)
}

// Backward implements nn.Layer.
func (s *sparsePatchEmbed) Backward(*tensor.Tensor) *tensor.Tensor { return inferenceOnly() }

// Params implements nn.Layer.
func (s *sparsePatchEmbed) Params() []*nn.Param { return nil }

// transpose returns mᵀ for a rank-2 tensor.
func transpose(m *tensor.Tensor) *tensor.Tensor {
	if len(m.Shape) != 2 {
		panic(fmt.Sprintf("inference: transpose requires rank-2, got %v", m.Shape))
	}
	r, c := m.Shape[0], m.Shape[1]
	out := tensor.New(c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.Data[j*r+i] = m.Data[i*c+j]
		}
	}
	return out
}
