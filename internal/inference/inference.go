// Package inference executes a pruned classifier using compressed sparse
// weights: convolution and fully connected layers run their GEMMs through
// execution plans compiled from the CRISP storage format (falling back to
// CSR where the hybrid structure does not apply), instead of multiplying
// masked dense matrices. It is the software analogue of deploying the
// pruned model on CRISP-STC, and doubles as an end-to-end validation that
// the compressed representation computes exactly what the masked dense
// model computes.
//
// The hot path is built for serving:
//
//   - Weight encodings are compiled once, at New time, into flat
//     format.Plan gather-multiply-accumulate kernels (padding slots
//     dropped, offsets resolved to absolute columns, per-row spans
//     precomputed) that run bit-identically to the slot-walking kernels.
//   - Every forward pass draws its scratch — im2col matrices, transposes,
//     SpMM outputs, bias fan-outs, batch concats, attention state — from an
//     engine-owned arena recycled through a sync.Pool, so steady-state
//     Predict/PredictBatch calls are (near) zero-allocation. See arena.go
//     for the lifecycle.
//   - Multi-head attention keeps masked-dense projections (its four GEMMs
//     interleave with the attention pattern), but the masked weights are
//     materialized once at compile time instead of per call.
//
// The engine also has a deployment-precision mode
// (NewWithOptions(CompileOptions{Precision: Int8})): every plan-backed
// layer materializes an int8 quantized plan at compile time — int8 weight
// codes at symmetric per-row scales — and the forward pass quantizes
// activations per column on the fly, accumulates int8×int8 products in
// 32-bit integer lanes (format.QuantPlan's SWAR kernel), and dequantizes
// once on store, mirroring sparse tensor cores in int8 mode. The quantized
// path rides the same arena (packed code and accumulator slabs pooled like
// the float slabs), so it is equally allocation-free; its outputs are
// approximate, with the accuracy cost
// bounded by the golden agreement suite in quant_test.go (top-1 agreement
// ≥95% vs the Float32 engine, per-family logit error bounds).
//
// The engine is inference-only and immutable after New: it snapshots the
// classifier's masked weights, layers run in evaluation mode, and no
// gradients exist. Concurrent Logits/Predict calls are safe — each pass
// owns its arena and the compiled state is read-only.
package inference

import (
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/accel"
	"repro/internal/format"
	"repro/internal/nn"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// Precision selects the arithmetic the compiled sparse layers run at. It is
// named for the deployment dtype on the accelerator (CRISP-STC serves
// float or int8 operands), not for this reproduction's host arithmetic —
// the Float32 path computes in float64 like everything else here.
type Precision int

const (
	// Float32 is the full-precision reference path: compiled float plans,
	// bit-identical to the masked dense model.
	Float32 Precision = iota
	// Int8 runs every plan-backed layer (sparse conv/linear/token/patch)
	// from int8 quantized plans: int8 weight codes at per-row scales,
	// activations quantized per column on the fly, int32 accumulation,
	// dequantize-on-store. Outputs are approximate; the golden agreement
	// suite bounds the top-1 disagreement against the Float32 engine.
	Int8
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	if p == Int8 {
		return "int8"
	}
	return "float32"
}

// CompileOptions tunes how NewWithOptions compiles a classifier into an
// engine. The zero value is the full-precision default.
type CompileOptions struct {
	// Precision selects float or int8 execution for the plan-backed layers.
	Precision Precision
	// Shared, when set, lets the engine reference the universal model's
	// weights instead of owning copies: compiled plans bind to the shared
	// value slabs when the tenant's kept values still equal the universal
	// weights, and masked-dense layers (attention, depthwise) borrow the
	// shared effective tensors when their weights and mask match the
	// universal parameter. Results are bit-identical either way; only
	// ownership (and MemoryFootprint) changes.
	Shared *SharedWeights
	// Registry, when set, deduplicates compiled plans across engines:
	// structurally identical plans (same class set → same pruned shape and
	// values) share one canonical instance and one cached int8 image. The
	// engine holds references it returns via Release when evicted.
	Registry *format.Registry
	// BatchHint is the activation batch width the engine specializes its
	// kernel tilings for: at compile time each plan asks the simulator-
	// backed picker (accel.PickTiling) which kernel family wins its shape
	// at this width, and pins the verdict when it names a blocked tiling.
	// Zero selects the nominal serving batch (defaultBatchHint). The hint
	// only steers performance — every kernel variant is bit-identical.
	BatchHint int
}

// defaultBatchHint is the nominal serving batch width engines specialize
// for when CompileOptions.BatchHint is zero (the benchmark and serve-tier
// batch scale).
const defaultBatchHint = 16

// Engine is a compiled sparse-execution plan for one classifier. An engine
// is immutable after New and safe for concurrent Logits/LogitsBatch calls.
type Engine struct {
	clf       *nn.Classifier
	root      execLayer
	precision Precision
	shared    *SharedWeights
	registry  *format.Registry
	// plans lists every compiled float plan in compile order — the
	// structural Fingerprint surface.
	plans []*format.Plan
	// quantPlans lists every compiled quantized plan (Int8 engines only),
	// in compile order — the QuantSignature surface.
	quantPlans []*format.QuantPlan
	// interned lists the canonical plans this engine holds registry
	// references to; Release returns them.
	interned []*format.Plan
	// batchHint is the batch width tilings were picked for (CompileOptions).
	batchHint int
	// footprint accumulates the engine-owned bytes at compile time (see
	// MemoryFootprint).
	footprint int64
	released  bool
	// CompressedLayers counts the layers running from sparse encodings; it
	// is fixed at compile time.
	CompressedLayers int
	// arenas recycles per-call scratch arenas across forward passes.
	arenas sync.Pool
}

// New compiles clf's current masks into a sparse execution plan. The
// classifier must already be pruned; non-exempt layers are encoded in the
// CRISP format at the given block size and N:M pattern, exempt ones in CSR,
// and both are flattened into format.Plan kernels.
func New(clf *nn.Classifier, blockSize int, nm sparsity.NM) (*Engine, error) {
	return NewWithOptions(clf, blockSize, nm, CompileOptions{})
}

// NewWithOptions is New with explicit compile options: with
// CompileOptions{Precision: Int8} every plan-backed layer additionally
// materializes its int8 quantized plan at compile time, and the forward
// pass runs the quantized kernels (per-column activation quantization,
// 32-bit integer accumulation, dequantize-on-store) with the packed
// quantization scratch drawn from the same engine-owned arena as the float
// buffers.
func NewWithOptions(clf *nn.Classifier, blockSize int, nm sparsity.NM, opts CompileOptions) (*Engine, error) {
	e := &Engine{clf: clf, precision: opts.Precision, shared: opts.Shared, registry: opts.Registry, batchHint: opts.BatchHint}
	if e.batchHint <= 0 {
		e.batchHint = defaultBatchHint
	}
	root, err := e.compile(clf.Net, blockSize, nm)
	if err != nil {
		return nil, err
	}
	e.root = root
	return e, nil
}

// Precision reports the compiled execution precision.
func (e *Engine) Precision() Precision { return e.precision }

// QuantSignature returns a checksum over every quantized plan's layout,
// codes and scales, in compile order — 0 for Float32 engines. Two engines
// compiled from the same weights and masks at Int8 always agree: plan
// compilation and quantization are deterministic, which is what lets the
// serving layer re-quantize a restored snapshot and verify it reproduced
// the pre-restart codes exactly.
func (e *Engine) QuantSignature() uint64 {
	if len(e.quantPlans) == 0 {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, q := range e.quantPlans {
		put(uint64(q.Rows))
		put(uint64(q.Cols))
		for _, p := range q.RowPtr {
			put(uint64(uint32(p)))
		}
		for i, c := range q.Col {
			put(uint64(uint32(c))<<8 | uint64(uint8(q.Code[i])))
		}
		for _, s := range q.RowScale {
			put(math.Float64bits(s))
		}
	}
	return h.Sum64()
}

// getArena checks an arena out of the pool for one forward pass.
func (e *Engine) getArena() *arena {
	if a, ok := e.arenas.Get().(*arena); ok {
		return a
	}
	return &arena{}
}

// putArena resets and recycles a pass's arena.
func (e *Engine) putArena(a *arena) {
	a.reset()
	e.arenas.Put(a)
}

// Logits runs the sparse forward pass. The result is detached from the
// pass's arena (one small copy), so callers may hold it indefinitely.
func (e *Engine) Logits(x *tensor.Tensor) *tensor.Tensor {
	a := e.getArena()
	out := e.root.forward(x, a).Clone()
	e.putArena(a)
	return out
}

// LogitsBatch stacks B sample tensors into one [B, ...] batch and runs a
// single sparse forward pass, so every compressed layer serves the whole
// batch with one SpMM instead of B SpMMs. Outputs are bit-identical to
// calling Logits per sample: each output element is the same dot product
// accumulated in the same order regardless of batch size.
func (e *Engine) LogitsBatch(xs []*tensor.Tensor) *tensor.Tensor {
	a := e.getArena()
	out := e.root.forward(concatArena(xs, a), a).Clone()
	e.putArena(a)
	return out
}

// Predict returns the argmax class of every sample in the batch.
func (e *Engine) Predict(x *tensor.Tensor) []int {
	a := e.getArena()
	preds := nn.ArgmaxRows(e.root.forward(x, a), e.clf.NumClasses)
	e.putArena(a)
	return preds
}

// PredictBatch concatenates the sample tensors inside the pass's arena,
// runs one forward pass, and returns the per-row argmax — the serving
// batcher's entry point: a whole coalesced batch costs the same steady-state
// allocations as a single sample (the returned class slice).
func (e *Engine) PredictBatch(xs []*tensor.Tensor) []int {
	a := e.getArena()
	x := xs[0]
	if len(xs) > 1 {
		x = concatArena(xs, a)
	}
	preds := nn.ArgmaxRows(e.root.forward(x, a), e.clf.NumClasses)
	e.putArena(a)
	return preds
}

// concatArena is tensor.Concat with the destination drawn from the arena.
// The destination header is composed in place (first tensor's shape with
// the lead dimension summed), so a batch concat costs zero allocations.
func concatArena(xs []*tensor.Tensor, a *arena) *tensor.Tensor {
	if len(xs) == 1 {
		// Still copied (callers may mutate their sample after the call),
		// matching tensor.Concat's semantics.
		dst := a.tensor(xs[0].Shape...)
		copy(dst.Data, xs[0].Data)
		return dst
	}
	if a == nil {
		return tensor.Concat(xs)
	}
	lead, vol := 0, 0
	for _, x := range xs {
		lead += x.Shape[0]
		vol += len(x.Data)
	}
	dst := a.header(xs[0].Shape)
	dst.Shape[0] = lead
	dst.Data = a.alloc(vol)
	return tensor.ConcatInto(xs, dst)
}

// execLayer is one node of the compiled forward pass. forward must draw all
// scratch from the arena (nil = plain heap) and may return arena-backed
// tensors; callers that outlive the pass must copy.
type execLayer interface {
	forward(x *tensor.Tensor, a *arena) *tensor.Tensor
}

// compile mirrors the layer tree, swapping weight-bearing layers for
// plan-backed executors and eval-mode layers for arena-backed ones.
// Unrecognized layers execute through their own Forward in eval mode.
func (e *Engine) compile(l nn.Layer, b int, nm sparsity.NM) (execLayer, error) {
	switch v := l.(type) {
	case *nn.Sequential:
		out := &execSeq{}
		for _, c := range v.Layers {
			cc, err := e.compile(c, b, nm)
			if err != nil {
				return nil, err
			}
			out.layers = append(out.layers, cc)
		}
		return out, nil
	case *nn.Residual:
		main, err := e.compile(v.Main, b, nm)
		if err != nil {
			return nil, err
		}
		var short execLayer
		if v.Shortcut != nil {
			short, err = e.compile(v.Shortcut, b, nm)
			if err != nil {
				return nil, err
			}
		}
		return &execResidual{main: main, shortcut: short}, nil
	case *nn.Conv2D:
		mm, err := e.newSpMM(v.Weight, b, nm)
		if err != nil {
			return nil, err
		}
		sc := &sparseConv{conv: v, mm: mm}
		if mm.qplan == nil {
			// Float engines run conv through the fused implicit-im2col
			// kernel; decoding the tap table here keeps the forward path
			// allocation-free (see format.CompileConv).
			sc.cp = mm.plan.CompileConv(v.Geom.KH, v.Geom.KW, v.Geom.Stride, v.Geom.Pad)
		}
		return sc, nil
	case *nn.Linear:
		mm, err := e.newSpMM(v.Weight, b, nm)
		if err != nil {
			return nil, err
		}
		return &sparseLinear{lin: v, mm: mm}, nil
	case *nn.TokenLinear:
		mm, err := e.newSpMM(v.Weight, b, nm)
		if err != nil {
			return nil, err
		}
		return &sparseTokenLinear{lin: v, mm: mm}, nil
	case *nn.PatchEmbed:
		mm, err := e.newSpMM(v.Weight, b, nm)
		if err != nil {
			return nil, err
		}
		return &sparsePatchEmbed{pe: v, mm: mm}, nil
	case *nn.MultiHeadAttention:
		return &execAttention{
			d: v.D, heads: v.Heads,
			wq: e.effective(v.Wq), wk: e.effective(v.Wk),
			wv: e.effective(v.Wv), wo: e.effective(v.Wo),
		}, nil
	case *nn.DepthwiseConv2D:
		return &execDepthwise{conv: v, weff: e.effective(v.Weight)}, nil
	case *nn.BatchNorm2D:
		return &execBatchNorm{bn: v}, nil
	case *nn.ReLU:
		return &execReLU{relu: v}, nil
	case *nn.LayerNorm:
		return &execLayerNorm{ln: v}, nil
	case *nn.MaxPool2D:
		return &execMaxPool{k: v.K, stride: v.Stride}, nil
	case *nn.GlobalAvgPool:
		return &execGlobalAvgPool{}, nil
	case *nn.MeanPoolTokens:
		return &execMeanPool{}, nil
	case *nn.Flatten:
		return &execFlatten{}, nil
	default:
		// Stateless or statistics-only layers execute as-is (eval mode).
		return &execDense{l: l}, nil
	}
}

// spmm is the executors' shared SpMM dispatch: the compiled float plan and,
// in Int8 engines, its quantized twin. Executors are precision-agnostic —
// they compose shapes and biases and call into; which kernel runs was
// decided once, at compile time.
type spmm struct {
	plan  *format.Plan
	qplan *format.QuantPlan // nil in Float32 engines
}

// into computes W·B into out ([plan.Rows, n]). The quantized path draws its
// activation-code (int8), column-scale (float) and accumulator (int32)
// scratch from the pass's arena, so it stays allocation-free in steady
// state just like the float path.
func (s *spmm) into(b, out *tensor.Tensor, a *arena) *tensor.Tensor {
	if s.qplan == nil {
		return s.plan.MatMulInto(b, out)
	}
	n := out.Shape[1]
	halfW := (n + 1) / 2
	return s.qplan.MatMulInto(b, out, format.QuantScratch{
		Packed:   a.allocU64(s.qplan.Cols * halfW),
		ColScale: a.alloc(n),
		ColInv:   a.alloc(n),
		AccP:     a.allocU64(s.qplan.Rows * halfW),
		AccN:     a.allocU64(s.qplan.Rows * halfW),
	})
}

// newSpMM compiles one weight-bearing layer's SpMM dispatch at the engine's
// precision and counts it as a compressed layer. With shared universal
// weights, the plan first tries to re-home its values onto the layer's
// slab (free when fine-tuning diverged them — BindSlab refuses and the
// plan keeps its owned copy); with a registry, the whole plan then dedups
// onto the canonical instance for its content. Neither step changes a bit
// of any result — only who owns the memory, which MemoryFootprint tracks.
func (e *Engine) newSpMM(p *nn.Param, b int, nm sparsity.NM) (spmm, error) {
	plan, err := encodeParam(p, b, nm)
	if err != nil {
		return spmm{}, err
	}
	if e.shared != nil {
		plan.BindSlab(e.shared.Slab(p.Name))
	}
	// Compile-time tiling: the simulator-backed picker costs the candidate
	// kernel families for this plan's shape at the engine's batch hint. A
	// blocked verdict is pinned; a Scalar verdict leaves the zero-value
	// tiling so per-call dispatch (blockedAuto) keeps adapting to batch
	// widths the hint did not anticipate. Runs before registry interning —
	// the pick is a pure function of plan shape, so structurally identical
	// plans carry identical tilings and dedup is unaffected.
	pick := accel.PickTiling(accel.CPUHW(), accel.PlanShape{
		Rows:    plan.Rows,
		Cols:    plan.Cols,
		NNZ:     plan.NNZ(),
		Batch:   e.batchHint,
		Uniform: plan.UniformSpan() > 0,
	})
	if !pick.Scalar {
		plan.SetTiling(pick)
	}
	owned := true
	if e.registry != nil {
		canon := e.registry.Intern(plan)
		e.interned = append(e.interned, canon)
		if canon != plan {
			owned = false
			plan = canon
		}
	}
	if owned {
		e.footprint += plan.SizeBytes()
	}
	s := spmm{plan: plan}
	e.plans = append(e.plans, plan)
	if e.precision == Int8 {
		var q *format.QuantPlan
		if e.registry != nil {
			q, err = e.registry.QuantFor(plan)
		} else {
			q, err = plan.Quantize()
		}
		if err != nil {
			return spmm{}, err
		}
		if owned {
			e.footprint += q.SizeBytes()
		}
		s.qplan = q
		e.quantPlans = append(e.quantPlans, q)
	}
	e.CompressedLayers++
	return s, nil
}

// effective materializes a masked-dense layer's weights, borrowing the
// shared universal tensor when the parameter still matches the universal
// model; a private materialization counts toward the engine footprint.
func (e *Engine) effective(p *nn.Param) *tensor.Tensor {
	if t := e.shared.universalEffective(p); t != nil {
		return t
	}
	t := p.Effective()
	e.footprint += int64(len(t.Data)) * 8
	return t
}

// encodeParam compresses one parameter's masked weights and compiles the
// execution plan. Dense and exempt parameters use CSR; hybrid-masked ones
// use the CRISP format. Either way the plan's per-row accumulation order is
// the storage kernel's, so results are bit-identical to slot walking.
func encodeParam(p *nn.Param, b int, nm sparsity.NM) (*format.Plan, error) {
	masked := tensor.Mul(p.MatrixView(), p.MaskMatrixView())
	if p.BlockExempt || p.Mask == nil || !p.Prunable {
		return format.EncodeCSR(masked).Compile(), nil
	}
	enc, err := format.EncodeCRISP(masked, b, nm)
	if err != nil {
		// Dense or non-conforming masks (e.g. a baseline pruner) still
		// execute, just without the hybrid layout.
		return format.EncodeCSR(masked).Compile(), nil
	}
	return enc.Compile(), nil
}

// execSeq chains executors.
type execSeq struct {
	layers []execLayer
}

func (s *execSeq) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.forward(x, a)
	}
	return x
}

// execResidual computes main(x) + shortcut(x) (nil shortcut = identity)
// into an arena buffer. The arena never reuses memory within a pass, so x
// stays intact across the main branch.
type execResidual struct {
	main, shortcut execLayer
}

func (r *execResidual) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	m := r.main.forward(x, a)
	s := x
	if r.shortcut != nil {
		s = r.shortcut.forward(x, a)
	}
	out := a.tensor(m.Shape...)
	for i, v := range m.Data {
		out.Data[i] = v + s.Data[i]
	}
	return out
}

// execDense runs an uncompiled layer through its own eval-mode Forward.
type execDense struct {
	l nn.Layer
}

func (d *execDense) forward(x *tensor.Tensor, _ *arena) *tensor.Tensor {
	return d.l.Forward(x, false)
}

// convBatchLastMin gates the batch-last implicit-im2col conv path: its two
// transposes and per-tap AXPY runs amortize over the batch width, and at
// n < 4 the runs are too short to beat the materialized-im2col lowering
// (at n=1 they are pure overhead — per-sample inference measures ~50%
// slower batch-last). Small batches fall through to the default case.
const convBatchLastMin = 4

// sparseConv runs Conv2D from a compiled weight plan.
type sparseConv struct {
	conv *nn.Conv2D
	mm   spmm
	cp   *format.ConvPlan // fused implicit-im2col kernel; nil in Int8 engines
}

func (s *sparseConv) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	g := s.conv.Geom
	g.InH, g.InW = x.Shape[2], x.Shape[3]
	n := x.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	var outMat *tensor.Tensor // [S, N*OH*OW]
	switch {
	case s.mm.qplan != nil && quantConvSupported(ow):
		// Int8: quantize-before-im2col (see quantconv.go) — one encode per
		// input element instead of one per im2col duplicate.
		outMat = quantConvForward(s.mm.qplan, x, g, n, oh, ow, a)
	case s.cp != nil && n >= convBatchLastMin:
		// Float: the implicit-im2col fast path gathers taps straight from
		// the input image, so the KH·KW×-amplified im2col matrix is never
		// materialized (see format/convplan.go for the accumulation-order
		// contract that keeps it bit-compatible with the lowering). The
		// kernel runs batch-last — transpose in, convolve with whole-batch
		// AXPY runs, transpose out — which lands the result directly in
		// the [batch, OutC·OH·OW] layout the next layer wants, so the
		// sample-major reassembly below is skipped entirely.
		chw := g.InC * g.InH * g.InW
		xT := tensor.TransposeInto(a.view(x.Data, n, chw), a.tensor(chw, n))
		outT := s.cp.MatMulBatchLastInto(xT, g, n, a.tensor(s.mm.plan.Rows*oh*ow, n))
		y := a.tensor(n, s.conv.OutC, oh, ow)
		tensor.TransposeInto(outT, a.view(y.Data, n, s.conv.OutC*oh*ow))
		if s.conv.Bias != nil {
			p := oh * ow
			for b := 0; b < n; b++ {
				for oc := 0; oc < s.conv.OutC; oc++ {
					bias := s.conv.Bias.W.Data[oc]
					dst := y.Data[(b*s.conv.OutC+oc)*p : (b*s.conv.OutC+oc+1)*p]
					for i := range dst {
						dst[i] += bias
					}
				}
			}
		}
		return y
	default:
		cols := tensor.Im2ColInto(x, g, a.tensor(g.InC*g.KH*g.KW, n*oh*ow))
		outMat = s.mm.into(cols, a.tensor(s.mm.plan.Rows, n*oh*ow), a)
	}
	p := oh * ow
	y := a.tensor(n, s.conv.OutC, oh, ow)
	for oc := 0; oc < s.conv.OutC; oc++ {
		bias := 0.0
		if s.conv.Bias != nil {
			bias = s.conv.Bias.W.Data[oc]
		}
		src := outMat.Data[oc*n*p : (oc+1)*n*p]
		for b := 0; b < n; b++ {
			dst := y.Data[(b*s.conv.OutC+oc)*p : (b*s.conv.OutC+oc+1)*p]
			for i, v := range src[b*p : (b+1)*p] {
				dst[i] = v + bias
			}
		}
	}
	return y
}

// sparseLinear runs Linear from a compiled weight plan: y = (W·xᵀ)ᵀ + b.
type sparseLinear struct {
	lin *nn.Linear
	mm  spmm
}

func (s *sparseLinear) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	n := x.Shape[0]
	// SpMM computes W·B for B = xᵀ [In, N].
	xt := tensor.TransposeInto(x, a.tensor(s.lin.In, n))
	out := s.mm.into(xt, a.tensor(s.lin.Out, n), a) // [Out, N]
	y := a.tensor(n, s.lin.Out)
	for j := 0; j < s.lin.Out; j++ {
		for b := 0; b < n; b++ {
			y.Data[b*s.lin.Out+j] = out.Data[j*n+b] + s.lin.Bias.W.Data[j]
		}
	}
	return y
}

// sparseTokenLinear runs TokenLinear from a compiled weight plan.
type sparseTokenLinear struct {
	lin *nn.TokenLinear
	mm  spmm
}

func (s *sparseTokenLinear) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	n, t := x.Shape[0], x.Shape[1]
	flat := a.view(x.Data, n*t, s.lin.In)
	xt := tensor.TransposeInto(flat, a.tensor(s.lin.In, n*t))
	out := s.mm.into(xt, a.tensor(s.lin.Out, n*t), a) // [Out, N*T]
	y := a.tensor(n*t, s.lin.Out)
	for j := 0; j < s.lin.Out; j++ {
		for r := 0; r < n*t; r++ {
			y.Data[r*s.lin.Out+j] = out.Data[j*n*t+r] + s.lin.Bias.W.Data[j]
		}
	}
	return a.view(y.Data, n, t, s.lin.Out)
}

// sparsePatchEmbed runs PatchEmbed from a compiled weight plan.
type sparsePatchEmbed struct {
	pe *nn.PatchEmbed
	mm spmm
}

func (s *sparsePatchEmbed) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	// Reuse the dense patch extraction, then the sparse projection.
	n := x.Shape[0]
	t := (x.Shape[2] / s.pe.P) * (x.Shape[3] / s.pe.P)
	in := s.pe.C * s.pe.P * s.pe.P
	patches := s.pe.ExtractPatchesInto(x, a.tensor(n*t, in)) // [N*T, C*P*P]
	xt := tensor.TransposeInto(patches, a.tensor(in, n*t))
	out := s.mm.into(xt, a.tensor(s.pe.D, n*t), a) // [D, N*T]
	y := a.tensor(n*t, s.pe.D)
	for j := 0; j < s.pe.D; j++ {
		for r := 0; r < n*t; r++ {
			y.Data[r*s.pe.D+j] = out.Data[j*n*t+r] + s.pe.Bias.W.Data[j]
		}
	}
	return a.view(y.Data, n, t, s.pe.D)
}

// execAttention runs multi-head self-attention with the masked projection
// weights materialized once at compile time; all intermediate state (Q, K,
// V, attention rows, head outputs) lives in the pass's arena. The math is
// the eval-mode nn.MultiHeadAttention forward, step for step.
type execAttention struct {
	d, heads       int
	wq, wk, wv, wo *tensor.Tensor // effective [D, D] weights
}

func (m *execAttention) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	n, t := x.Shape[0], x.Shape[1]
	dh := m.d / m.heads
	scale := 1.0 / math.Sqrt(float64(dh))

	// project computes tokens · Wᵀ into a flat [N*T, D] arena tensor
	// (Gemm's beta=0 path clears the uninitialized destination).
	project := func(src []float64, w *tensor.Tensor) *tensor.Tensor {
		out := a.tensor(n*t, m.d)
		tensor.Gemm(false, true, n*t, m.d, m.d, 1, src, w.Data, 0, out.Data)
		return out
	}
	q := project(x.Data, m.wq)
	k := project(x.Data, m.wk)
	v := project(x.Data, m.wv)
	z := a.tensorZero(n*t, m.d) // accumulated head by head
	attn := a.alloc(n * m.heads * t * t)

	for b := 0; b < n; b++ {
		for h := 0; h < m.heads; h++ {
			off := h * dh
			aBase := (b*m.heads + h) * t * t
			// S[i][j] = q_i · k_j * scale; softmax rows → A; Z = A·V.
			for i := 0; i < t; i++ {
				qi := q.Data[(b*t+i)*m.d+off : (b*t+i)*m.d+off+dh]
				row := attn[aBase+i*t : aBase+(i+1)*t]
				maxv := math.Inf(-1)
				for j := 0; j < t; j++ {
					kj := k.Data[(b*t+j)*m.d+off : (b*t+j)*m.d+off+dh]
					s := 0.0
					for l, qv := range qi {
						s += qv * kj[l]
					}
					row[j] = s * scale
					if row[j] > maxv {
						maxv = row[j]
					}
				}
				sum := 0.0
				for j := range row {
					row[j] = math.Exp(row[j] - maxv)
					sum += row[j]
				}
				zi := z.Data[(b*t+i)*m.d+off : (b*t+i)*m.d+off+dh]
				for j := range row {
					row[j] /= sum
					vj := v.Data[(b*t+j)*m.d+off : (b*t+j)*m.d+off+dh]
					for l := range zi {
						zi[l] += row[j] * vj[l]
					}
				}
			}
		}
	}
	out := project(z.Data, m.wo)
	return a.view(out.Data, n, t, m.d)
}

// execDepthwise runs DepthwiseConv2D with the masked kernels materialized
// at compile time and the output drawn from the arena.
type execDepthwise struct {
	conv *nn.DepthwiseConv2D
	weff *tensor.Tensor
}

func (d *execDepthwise) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	g := d.conv.Geom
	g.InH, g.InW = x.Shape[2], x.Shape[3]
	n, cch := x.Shape[0], g.InC
	oh, ow := g.OutH(), g.OutW()
	y := a.tensor(n, cch, oh, ow)
	for b := 0; b < n; b++ {
		for ch := 0; ch < cch; ch++ {
			src := x.Data[(b*cch+ch)*g.InH*g.InW : (b*cch+ch+1)*g.InH*g.InW]
			ker := d.weff.Data[ch*g.KH*g.KW : (ch+1)*g.KH*g.KW]
			dst := y.Data[(b*cch+ch)*oh*ow : (b*cch+ch+1)*oh*ow]
			bias := 0.0
			if d.conv.Bias != nil {
				bias = d.conv.Bias.W.Data[ch]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := bias
					for kh := 0; kh < g.KH; kh++ {
						iy := oy*g.Stride + kh - g.Pad
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							ix := ox*g.Stride + kw - g.Pad
							if ix < 0 || ix >= g.InW {
								continue
							}
							s += ker[kh*g.KW+kw] * src[iy*g.InW+ix]
						}
					}
					dst[oy*ow+ox] = s
				}
			}
		}
	}
	return y
}

// execBatchNorm is the eval branch of nn.BatchNorm2D (running statistics)
// with the output drawn from the arena.
type execBatchNorm struct {
	bn *nn.BatchNorm2D
}

func (e *execBatchNorm) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	bn := e.bn
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := a.tensor(x.Shape...)
	for ch := 0; ch < c; ch++ {
		inv := 1.0 / math.Sqrt(bn.RunVar.Data[ch]+bn.Eps)
		mean := bn.RunMean.Data[ch]
		g, be := bn.Gamma.W.Data[ch], bn.Beta.W.Data[ch]
		for b := 0; b < n; b++ {
			off := (b*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				y.Data[off+i] = g*(x.Data[off+i]-mean)*inv + be
			}
		}
	}
	return y
}

// execReLU is the eval-mode rectifier (optionally clipped) with the output
// drawn from the arena. Activation statistics, when attached, still
// accumulate — matching nn.ReLU.Forward.
type execReLU struct {
	relu *nn.ReLU
}

func (e *execReLU) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	y := a.tensor(x.Shape...)
	if c := e.relu.Cap; c > 0 {
		for i, v := range x.Data {
			out := v
			if v < 0 {
				out = 0
			} else if v > c {
				out = c
			}
			y.Data[i] = out
		}
	} else {
		// Activation signs are near-random, so the naive `if v < 0` branch
		// mispredicts roughly every other element. Testing the sign on the
		// integer bit pattern instead compiles to a conditional move —
		// negative inputs (sign bit ⇒ negative int64) clamp to +0 with no
		// branch in the loop. The only value the rewrite treats differently
		// is -0, which rectifies to +0 instead of passing through; the two
		// compare equal everywhere downstream.
		yd := y.Data
		for i, v := range x.Data {
			b := math.Float64bits(v)
			if int64(b) < 0 {
				b = 0
			}
			yd[i] = math.Float64frombits(b)
		}
	}
	if e.relu.Stats != nil {
		e.relu.Stats.Total += int64(len(y.Data))
		nz := int64(0)
		for _, v := range y.Data {
			// v != 0 ⇔ magnitude bits != 0 (shifting out the sign keeps
			// ±0 counted as zero); (m | -m) >> 63 extracts that as a
			// branch-free 0/1.
			m := math.Float64bits(v) << 1
			nz += int64((m | -m) >> 63)
		}
		e.relu.Stats.NonZeros += nz
	}
	return y
}

// execLayerNorm is eval-mode nn.LayerNorm with the output drawn from the
// arena.
type execLayerNorm struct {
	ln *nn.LayerNorm
}

func (e *execLayerNorm) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	ln := e.ln
	rows := x.Shape[0] * x.Shape[1]
	y := a.tensor(x.Shape...)
	d := float64(ln.D)
	for r := 0; r < rows; r++ {
		seg := x.Data[r*ln.D : (r+1)*ln.D]
		mean := 0.0
		for _, v := range seg {
			mean += v
		}
		mean /= d
		variance := 0.0
		for _, v := range seg {
			variance += (v - mean) * (v - mean)
		}
		variance /= d
		inv := 1.0 / math.Sqrt(variance+ln.Eps)
		out := y.Data[r*ln.D : (r+1)*ln.D]
		for i, v := range seg {
			out[i] = ln.Gamma.W.Data[i]*((v-mean)*inv) + ln.Beta.W.Data[i]
		}
	}
	return y
}

// execMaxPool is eval-mode nn.MaxPool2D with the output drawn from the
// arena.
type execMaxPool struct {
	k, stride int
}

func (e *execMaxPool) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-e.k)/e.stride + 1
	ow := (w-e.k)/e.stride + 1
	y := a.tensor(n, c, oh, ow)
	oi := 0
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := plane[oy*e.stride*w+ox*e.stride]
					for ky := 0; ky < e.k; ky++ {
						for kx := 0; kx < e.k; kx++ {
							if v := plane[(oy*e.stride+ky)*w+ox*e.stride+kx]; v > best {
								best = v
							}
						}
					}
					y.Data[oi] = best
					oi++
				}
			}
		}
	}
	return y
}

// execGlobalAvgPool is nn.GlobalAvgPool with the output drawn from the
// arena.
type execGlobalAvgPool struct{}

func (execGlobalAvgPool) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := a.tensor(n, c)
	inv := 1.0 / float64(h*w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			s := 0.0
			for _, v := range x.Data[(b*c+ch)*h*w : (b*c+ch+1)*h*w] {
				s += v
			}
			y.Data[b*c+ch] = s * inv
		}
	}
	return y
}

// execMeanPool is nn.MeanPoolTokens with the output drawn from the arena
// (zeroed: the token loop accumulates).
type execMeanPool struct{}

func (execMeanPool) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	n, t, d := x.Shape[0], x.Shape[1], x.Shape[2]
	y := a.tensorZero(n, d)
	inv := 1.0 / float64(t)
	for b := 0; b < n; b++ {
		for tt := 0; tt < t; tt++ {
			for j := 0; j < d; j++ {
				y.Data[b*d+j] += x.Data[(b*t+tt)*d+j] * inv
			}
		}
	}
	return y
}

// execFlatten reshapes [N, ...] to [N, D] as a zero-copy arena view.
type execFlatten struct{}

func (execFlatten) forward(x *tensor.Tensor, a *arena) *tensor.Tensor {
	return a.view(x.Data, x.Shape[0], len(x.Data)/x.Shape[0])
}
