package inference

import "repro/internal/tensor"

// arenaSlabFloats is the minimum slab size (elements). One slab comfortably
// holds several small-layer activations; big layers get a dedicated slab of
// exactly their size on first use.
const arenaSlabFloats = 1 << 16

// slabRun is one element type's bump allocator inside the arena: recycled
// slabs walked front to back, growing (never shrinking) as a pass demands.
type slabRun[T uint64 | float64] struct {
	slabs [][]T
	slab  int // slab currently being bump-allocated
	off   int // offset into slabs[slab]
}

func (s *slabRun[T]) reset() { s.slab, s.off = 0, 0 }

// alloc returns an n-element buffer with arbitrary contents.
func (s *slabRun[T]) alloc(n int) []T {
	for s.slab < len(s.slabs) {
		if sl := s.slabs[s.slab]; s.off+n <= len(sl) {
			out := sl[s.off : s.off+n : s.off+n]
			s.off += n
			return out
		}
		s.slab++
		s.off = 0
	}
	sz := arenaSlabFloats
	if n > sz {
		sz = n
	}
	s.slabs = append(s.slabs, make([]T, sz))
	s.off = n
	return s.slabs[s.slab][:n:n]
}

// arena is the engine-owned scratch allocator behind one forward pass. It
// bump-allocates buffers out of recycled slabs and hands out recycled
// tensor headers, so the steady-state predict path performs (near) zero
// heap allocations: every im2col matrix, transpose, SpMM output, bias
// fan-out and batch concat lives in arena memory. Int8 engines additionally
// draw their packed activation-code and integer-accumulator words from a
// second slab run pooled exactly like the float slabs.
//
// Within one pass no allocation is ever reused — residual shortcuts can
// hold any earlier activation alive — so there is no aliasing to reason
// about; the whole arena resets at once when the pass completes and goes
// back to the engine's sync.Pool. Capacity is learned on the first pass per
// batch size (slabs grow, never shrink) and is stable afterwards; the pool
// discards arenas under memory pressure.
//
// A nil *arena is valid and falls back to plain heap allocation, which
// keeps the executors usable without an engine pass (tests, one-offs).
//
// Buffers come back with stale contents. Executors either overwrite every
// element (the Into kernels' documented contract) or ask for tensorZero
// when they accumulate with +=.
type arena struct {
	f64 slabRun[float64]
	u64 slabRun[uint64]

	hdrs []*tensor.Tensor // recycled tensor headers
	used int              // headers handed out this pass
}

// reset recycles the arena for the next pass; memory is retained.
func (a *arena) reset() {
	a.f64.reset()
	a.u64.reset()
	a.used = 0
}

// alloc returns an n-float buffer with arbitrary contents.
func (a *arena) alloc(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	return a.f64.alloc(n)
}

// allocU64 returns an n-word buffer with arbitrary contents (the quantized
// SpMM's packed activation codes and 32-bit-lane accumulators).
func (a *arena) allocU64(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	return a.u64.alloc(n)
}

// header returns a recycled tensor header with the given shape (data unset).
func (a *arena) header(shape []int) *tensor.Tensor {
	var t *tensor.Tensor
	if a.used < len(a.hdrs) {
		t = a.hdrs[a.used]
	} else {
		t = &tensor.Tensor{}
		a.hdrs = append(a.hdrs, t)
	}
	a.used++
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// tensor returns an arena tensor with arbitrary contents; callers must
// overwrite every element (all Into kernels do).
//
// The nil-arena fallbacks below copy shape themselves instead of passing it
// to tensor.New/FromSlice: those constructors' panic diagnostics make shape
// a leaking parameter, which would force every call site's variadic slice
// onto the heap — exactly the per-layer allocation this arena exists to
// remove.
func (a *arena) tensor(shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if a == nil {
		return &tensor.Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
	}
	t := a.header(shape)
	t.Data = a.alloc(n)
	return t
}

// tensorZero returns a zero-filled arena tensor, for executors that
// accumulate with +=.
func (a *arena) tensorZero(shape ...int) *tensor.Tensor {
	t := a.tensor(shape...)
	if a != nil {
		clear(t.Data)
	}
	return t
}

// view wraps existing data in a recycled header (a zero-copy reshape).
func (a *arena) view(data []float64, shape ...int) *tensor.Tensor {
	if a == nil {
		return &tensor.Tensor{Shape: append([]int(nil), shape...), Data: data}
	}
	t := a.header(shape)
	t.Data = data
	return t
}
