package inference

import (
	"math"

	"repro/internal/format"
	"repro/internal/tensor"
)

// The int8 conv path quantizes *before* im2col. Lowering a convolution to
// SpMM duplicates every input element KH·KW times into the column matrix;
// quantizing that matrix per column (the generic MatMulInto path) would
// therefore pay the encode cost KH·KW times per element — on conv-heavy
// models the encoding pass ends up costing more than the integer MAC it
// feeds. Instead the executor:
//
//  1. computes one symmetric scale per sample (max|x| over the sample's
//     volume — every im2col column of a sample holds only that sample's
//     values, so a per-sample scale is exact per column),
//  2. encodes each input element exactly once into a biased lane code,
//  3. gathers the codes straight into the packed two-lane layout the SWAR
//     kernel consumes (the float column matrix is never materialized;
//     padding taps write the biased zero),
//
// and then enters the shared integer MAC via MatMulPackedInto. The packed
// gather needs an even output width so lane pairs never straddle rows of
// the output image; odd-width geometries (none of the models here) fall
// back to the generic per-column path.

// quantConvSupported reports whether the packed gather handles the
// geometry.
func quantConvSupported(ow int) bool { return ow%2 == 0 && ow > 0 }

// quantConvForward runs the quantized convolution and returns the [S,
// N*OH*OW] output matrix (pre-bias), entirely from arena memory.
func quantConvForward(qp *format.QuantPlan, x *tensor.Tensor, g tensor.ConvGeom, n, oh, ow int, a *arena) *tensor.Tensor {
	vol := g.InC * g.InH * g.InW
	positions := oh * ow
	cols := n * positions
	halfW := cols / 2 // cols even: ow is even

	// Per-sample scales; one encode per input element.
	codes := a.allocU64(n * vol)
	colScale := a.alloc(cols)
	for b := 0; b < n; b++ {
		seg := x.Data[b*vol : (b+1)*vol]
		maxAbs := 0.0
		for _, v := range seg {
			if av := math.Abs(v); av > maxAbs {
				maxAbs = av
			}
		}
		scale := 1.0
		if maxAbs > 0 && !math.IsInf(maxAbs, 0) {
			scale = maxAbs / 127
		}
		inv := 1 / scale
		cseg := codes[b*vol : (b+1)*vol]
		for i, v := range seg {
			cseg[i] = format.EncodeBiased(v, inv)
		}
		cs := colScale[b*positions : (b+1)*positions]
		for j := range cs {
			cs[j] = scale
		}
	}

	packed := a.allocU64(g.InC * g.KH * g.KW * halfW)
	packIm2Col(codes, g, n, oh, ow, packed, halfW)
	out := a.tensor(qp.Rows, cols)
	return qp.MatMulPackedInto(packed, colScale, out, format.QuantScratch{
		AccP: a.allocU64(qp.Rows * halfW),
		AccN: a.allocU64(qp.Rows * halfW),
	})
}

// padPair is a packed word of two biased-zero lanes (padding taps).
const padPair = 128 | 128<<32

// packIm2Col is tensor.Im2ColInto's gather with int8 lane codes: row r
// encodes the tap (c, kh, kw), column j the output position (b, oy, ox),
// and each packed word holds columns (2k, 2k+1) — always two positions of
// the same output row, because ow is even. Out-of-image taps store the
// biased zero, mirroring the float kernel's explicit padding zeros.
func packIm2Col(codes []uint64, g tensor.ConvGeom, n, oh, ow int, packed []uint64, halfW int) {
	plane := g.InH * g.InW
	for c := 0; c < g.InC; c++ {
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				r := (c*g.KH+kh)*g.KW + kw
				d := packed[r*halfW : (r+1)*halfW]
				// ox ∈ [ox0, ox1) are the taps with an in-bounds input
				// column (same derivation as tensor.Im2ColInto).
				ox0 := 0
				if g.Pad > kw {
					ox0 = (g.Pad - kw + g.Stride - 1) / g.Stride
				}
				ox1 := (g.InW + g.Pad - kw + g.Stride - 1) / g.Stride
				if ox1 > ow {
					ox1 = ow
				}
				if ox1 < 0 {
					ox1 = 0
				}
				if ox0 > ox1 {
					ox0 = ox1
				}
				for b := 0; b < n; b++ {
					src := codes[(b*g.InC+c)*plane : (b*g.InC+c+1)*plane]
					for oy := 0; oy < oh; oy++ {
						dRow := d[((b*oh)+oy)*ow/2 : ((b*oh)+oy+1)*ow/2]
						iy := oy*g.Stride + kh - g.Pad
						if iy < 0 || iy >= g.InH {
							for jp := range dRow {
								dRow[jp] = padPair
							}
							continue
						}
						base := iy*g.InW + kw - g.Pad
						for ox := 0; ox < ow; ox += 2 {
							lo := uint64(128)
							if ox >= ox0 && ox < ox1 {
								lo = src[base+ox*g.Stride]
							}
							hi := uint64(128)
							if ox+1 >= ox0 && ox+1 < ox1 {
								hi = src[base+(ox+1)*g.Stride]
							}
							dRow[ox/2] = lo | hi<<32
						}
					}
				}
			}
		}
	}
}
