package inference

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/format"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// sharedEnv builds a universal classifier, a tenant-cloning helper, and a
// test batch — the serving layer's compile setting in miniature.
func sharedEnv(t *testing.T, f models.Family) (base *nn.Classifier, clone func() *nn.Classifier, x *tensor.Tensor, prune func(*nn.Classifier, []int)) {
	t.Helper()
	cfg := data.Config{Name: "shared", NumClasses: 8, Channels: 3, H: 8, W: 8, Noise: 0.25, Jitter: 1, Seed: 9}
	ds := data.New(cfg)
	base = models.Build(f, rand.New(rand.NewSource(31)), cfg.NumClasses, 1)
	pruner.Finetune(base, ds.MakeSplit("pre", []int{0, 1, 2, 3, 4, 5, 6, 7}, 6), 1, 16, nn.NewSGD(0.05, 0.9, 4e-5), rand.New(rand.NewSource(32)))
	clone = func() *nn.Classifier {
		c := models.Build(f, rand.New(rand.NewSource(31)), cfg.NumClasses, 1)
		base.CloneWeightsTo(c)
		return c
	}
	prune = func(c *nn.Classifier, classes []int) {
		p := pruner.NewCRISP(pruner.Options{
			Target: 0.7, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
			Iterations: 1, FinetuneEpochs: 1, BatchSize: 8, LR: 0.01,
		})
		p.Prune(c, ds.MakeSplit("user", classes, 6))
	}
	x = ds.MakeSplit("test", []int{1, 5}, 4).X
	return base, clone, x, prune
}

func compileOpts(base *nn.Classifier, reg *format.Registry, prec Precision) CompileOptions {
	return CompileOptions{Precision: prec, Shared: NewSharedWeights(base), Registry: reg}
}

// TestSharedCompileBitIdentical: compiling against shared universal slabs
// and a dedup registry must not change a single output bit, at either
// precision, for a fine-tuned (diverged) tenant.
func TestSharedCompileBitIdentical(t *testing.T) {
	for _, f := range []models.Family{models.ResNet, models.MobileNet, models.Transformer} {
		base, clone, x, prune := sharedEnv(t, f)
		tenant := clone()
		prune(tenant, []int{1, 5})
		for _, prec := range []Precision{Float32, Int8} {
			ref, err := NewWithOptions(tenant, 4, sparsity.NM{N: 2, M: 4}, CompileOptions{Precision: prec})
			if err != nil {
				t.Fatalf("%s/%s: %v", f, prec, err)
			}
			shared, err := NewWithOptions(tenant, 4, sparsity.NM{N: 2, M: 4}, compileOpts(base, format.NewRegistry(), prec))
			if err != nil {
				t.Fatalf("%s/%s: %v", f, prec, err)
			}
			if !tensor.Equal(ref.Logits(x), shared.Logits(x), 0) {
				t.Fatalf("%s/%s: shared compile changed outputs", f, prec)
			}
			if prec == Int8 && ref.QuantSignature() != shared.QuantSignature() {
				t.Fatalf("%s: shared compile changed the quant signature", f)
			}
			if ref.Fingerprint() != shared.Fingerprint() {
				t.Fatalf("%s/%s: shared compile changed the structural fingerprint", f, prec)
			}
		}
	}
}

// TestSlabBindingShrinksFootprint: a tenant whose weights still equal the
// universal model (mask-only divergence or a pure clone) must bind its
// plans to the shared slabs and report a much smaller footprint than an
// owning engine — while staying bit-identical.
func TestSlabBindingShrinksFootprint(t *testing.T) {
	base, clone, x, _ := sharedEnv(t, models.ResNet)
	tenant := clone()
	owned, err := New(tenant, 4, sparsity.NM{N: 2, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewWithOptions(tenant, 4, sparsity.NM{N: 2, M: 4}, compileOpts(base, nil, Float32))
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(owned.Logits(x), shared.Logits(x), 0) {
		t.Fatal("slab-bound engine changed outputs")
	}
	if shared.MemoryFootprint() >= owned.MemoryFootprint()/2 {
		t.Fatalf("slab binding saved too little: shared %d vs owned %d bytes", shared.MemoryFootprint(), owned.MemoryFootprint())
	}
	for _, p := range shared.plans {
		if !p.Shared() {
			t.Fatal("undiverged tenant compiled an owned plan")
		}
	}
}

// TestRegistryDedupAcrossEngines: two tenants pruned identically compile
// identical plans and must share one instance through the registry;
// releasing both drops every reference.
func TestRegistryDedupAcrossEngines(t *testing.T) {
	base, clone, x, prune := sharedEnv(t, models.ResNet)
	reg := format.NewRegistry()
	a, b := clone(), clone()
	prune(a, []int{1, 5})
	prune(b, []int{1, 5}) // deterministic: same classes → same plans
	ea, err := NewWithOptions(a, 4, sparsity.NM{N: 2, M: 4}, CompileOptions{Shared: NewSharedWeights(base), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	eb, err := NewWithOptions(b, 4, sparsity.NM{N: 2, M: 4}, CompileOptions{Shared: NewSharedWeights(base), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(ea.Logits(x), eb.Logits(x), 0) {
		t.Fatal("identically pruned tenants disagree")
	}
	plans, refs, _ := reg.Stats()
	if plans != len(ea.plans) {
		t.Fatalf("registry holds %d canonical plans, engines compiled %d layers", plans, len(ea.plans))
	}
	if refs != 2*plans {
		t.Fatalf("refs %d, want %d (every plan shared by both engines)", refs, 2*plans)
	}
	// The second engine owns nothing: every plan deduped onto the first.
	if eb.MemoryFootprint() != 0 {
		t.Fatalf("deduped engine still owns %d bytes", eb.MemoryFootprint())
	}
	ea.Release()
	ea.Release() // idempotent
	if _, refs, _ := reg.Stats(); refs != plans {
		t.Fatalf("after one release refs = %d, want %d", refs, plans)
	}
	eb.Release()
	if reg.Len() != 0 {
		t.Fatalf("registry holds %d entries after all releases", reg.Len())
	}
	// Released engines still serve: plans remain valid objects.
	if !tensor.Equal(ea.Logits(x), eb.Logits(x), 0) {
		t.Fatal("released engines disagree")
	}
}

// TestMemoryFootprintManualSum checks the accounting helpers against
// by-hand sums of the compiled state (the satellite's unsafe.Sizeof-style
// cross-check).
func TestMemoryFootprintManualSum(t *testing.T) {
	_, clone, _, prune := sharedEnv(t, models.ResNet)
	tenant := clone()
	prune(tenant, []int{2, 6})
	for _, prec := range []Precision{Float32, Int8} {
		eng, err := NewWithOptions(tenant, 4, sparsity.NM{N: 2, M: 4}, CompileOptions{Precision: prec})
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for _, p := range eng.plans {
			want += p.SizeBytes()
		}
		for _, q := range eng.quantPlans {
			want += q.SizeBytes()
		}
		// ResNet has no attention/depthwise layers, so no materialized
		// effectives contribute.
		if got := eng.MemoryFootprint(); got != want {
			t.Fatalf("%s: MemoryFootprint %d, want manual sum %d", prec, got, want)
		}
	}

	// MobileNet materializes depthwise effective weights on top of plans.
	_, cloneM, _, pruneM := sharedEnv(t, models.MobileNet)
	tm := cloneM()
	pruneM(tm, []int{2, 6})
	eng, err := New(tm, 4, sparsity.NM{N: 2, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	var plansOnly int64
	for _, p := range eng.plans {
		plansOnly += p.SizeBytes()
	}
	var eff int64
	nn.Walk(tm.Net, func(l nn.Layer) {
		if dw, ok := l.(*nn.DepthwiseConv2D); ok {
			eff += int64(dw.Weight.W.Len()) * 8
		}
	})
	if eff == 0 {
		t.Fatal("MobileNet fixture has no depthwise layers")
	}
	if got := eng.MemoryFootprint(); got != plansOnly+eff {
		t.Fatalf("MemoryFootprint %d, want plans %d + effectives %d", got, plansOnly, eff)
	}
}

// TestModelBytesManualSum checks ModelBytes against a direct walk.
func TestModelBytesManualSum(t *testing.T) {
	_, clone, _, prune := sharedEnv(t, models.ResNet)
	tenant := clone()
	prune(tenant, []int{1, 5})
	var want int64
	for _, p := range tenant.Params() {
		want += int64(p.W.Len()) * 8
		if p.Grad != nil {
			want += int64(p.Grad.Len()) * 8
		}
		if p.Mask != nil {
			want += int64(p.Mask.Len()) * 8
		}
	}
	nn.Walk(tenant.Net, func(l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm2D); ok {
			want += int64(len(bn.RunMean.Data)+len(bn.RunVar.Data)) * 8
		}
	})
	if got := ModelBytes(tenant); got != want || got == 0 {
		t.Fatalf("ModelBytes %d, want %d (non-zero)", got, want)
	}
}
