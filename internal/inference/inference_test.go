package inference

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// prunedModel returns a CRISP-pruned classifier and a test batch.
func prunedModel(t *testing.T, f models.Family) (*nn.Classifier, *tensor.Tensor, sparsity.NM, int) {
	t.Helper()
	cfg := data.Config{Name: "inf", NumClasses: 8, Channels: 3, H: 8, W: 8, Noise: 0.25, Jitter: 1, Seed: 7}
	ds := data.New(cfg)
	clf := models.Build(f, rand.New(rand.NewSource(21)), cfg.NumClasses, 1)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	opt := nn.NewSGD(0.05, 0.9, 4e-5)
	pruner.Finetune(clf, ds.MakeSplit("pre", all, 8), 2, 16, opt, rand.New(rand.NewSource(22)))

	nm := sparsity.NM{N: 2, M: 4}
	p := pruner.NewCRISP(pruner.Options{
		Target: 0.8, NM: nm, BlockSize: 4, Iterations: 2,
		FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
	})
	p.Prune(clf, ds.MakeSplit("user", []int{1, 5}, 12))

	test := ds.MakeSplit("test", []int{1, 5}, 4)
	return clf, test.X, nm, 4
}

func TestEngineMatchesMaskedDense(t *testing.T) {
	for _, f := range []models.Family{models.ResNet, models.VGG, models.MobileNet, models.Transformer} {
		clf, x, nm, b := prunedModel(t, f)
		eng, err := New(clf, b, nm)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		dense := clf.Logits(x, false)
		sparse := eng.Logits(x)
		if !tensor.Equal(dense, sparse, 1e-9) {
			t.Fatalf("%s: sparse engine disagrees with masked dense model", f)
		}
		if eng.CompressedLayers == 0 {
			t.Fatalf("%s: no layers ran compressed", f)
		}
	}
}

// TestLogitsBatchBitIdentical asserts the batched sparse path computes
// exactly what the per-sample path computes across the paper's three
// families: stacking must change scheduling, never numerics.
func TestLogitsBatchBitIdentical(t *testing.T) {
	for _, f := range []models.Family{models.ResNet, models.VGG, models.MobileNet} {
		clf, x, nm, b := prunedModel(t, f)
		eng, err := New(clf, b, nm)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
		xs := make([]*tensor.Tensor, n)
		for i := 0; i < n; i++ {
			xs[i] = tensor.FromSlice(x.Data[i*c*h*w:(i+1)*c*h*w], 1, c, h, w)
		}
		batch := eng.LogitsBatch(xs)
		if batch.Shape[0] != n {
			t.Fatalf("%s: batch shape %v", f, batch.Shape)
		}
		width := batch.Len() / n
		for i := 0; i < n; i++ {
			per := eng.Logits(xs[i])
			for j := 0; j < width; j++ {
				if got, want := batch.Data[i*width+j], per.Data[j]; got != want {
					t.Fatalf("%s: sample %d logit %d differs: batch %v vs per-sample %v", f, i, j, got, want)
				}
			}
		}
		// The dense reference batch path must agree bit-for-bit too.
		denseBatch := clf.LogitsBatch(xs)
		for i := 0; i < n; i++ {
			per := clf.Logits(xs[i], false)
			for j := 0; j < width; j++ {
				if denseBatch.Data[i*width+j] != per.Data[j] {
					t.Fatalf("%s: dense batch path diverges at sample %d", f, i)
				}
			}
		}
	}
}

// TestPredictMatchesAccuracyArgmax checks Engine.Predict returns the same
// argmax the classifier's accuracy computation uses.
func TestPredictMatchesAccuracyArgmax(t *testing.T) {
	clf, x, nm, b := prunedModel(t, models.ResNet)
	eng, err := New(clf, b, nm)
	if err != nil {
		t.Fatal(err)
	}
	preds := eng.Predict(x)
	if len(preds) != x.Shape[0] {
		t.Fatalf("predictions %d for %d samples", len(preds), x.Shape[0])
	}
	dense := clf.Predict(x)
	for i := range preds {
		if preds[i] != dense[i] {
			t.Fatalf("sample %d: sparse argmax %d vs dense %d", i, preds[i], dense[i])
		}
	}
}

func TestEngineOnDenseModelStillCorrect(t *testing.T) {
	// An unpruned model must also execute (CSR fallback everywhere).
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(30)), 5, 1)
	rng := rand.New(rand.NewSource(31))
	x := tensor.Randn(rng, 1, 2, 3, 8, 8)
	eng, err := New(clf, 4, sparsity.NM{N: 2, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(clf.Logits(x, false), eng.Logits(x), 1e-9) {
		t.Fatal("dense fallback disagrees")
	}
}

func TestEngineRepeatedCalls(t *testing.T) {
	clf, x, nm, b := prunedModel(t, models.ResNet)
	eng, err := New(clf, b, nm)
	if err != nil {
		t.Fatal(err)
	}
	a := eng.Logits(x)
	bb := eng.Logits(x)
	if !tensor.Equal(a, bb, 0) {
		t.Fatal("engine is not deterministic across calls")
	}
}

// TestPredictBatchMatchesPredict: the batcher entry point must return
// exactly the per-sample argmaxes, for a lone sample and for a coalesced
// batch.
func TestPredictBatchMatchesPredict(t *testing.T) {
	clf, x, nm, b := prunedModel(t, models.ResNet)
	eng, err := New(clf, b, nm)
	if err != nil {
		t.Fatal(err)
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	xs := make([]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		xs[i] = tensor.FromSlice(x.Data[i*c*h*w:(i+1)*c*h*w], 1, c, h, w)
	}
	want := eng.Predict(x)
	got := eng.PredictBatch(xs)
	if len(got) != n {
		t.Fatalf("batch predictions %d for %d samples", len(got), n)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: PredictBatch %d vs Predict %d", i, got[i], want[i])
		}
	}
	for i := range xs {
		solo := eng.PredictBatch(xs[i : i+1])
		if len(solo) != 1 || solo[0] != want[i] {
			t.Fatalf("sample %d: single-element PredictBatch %v vs %d", i, solo, want[i])
		}
	}
}

// TestEngineArenaReuseDeterministic hammers one engine with interleaved
// batch sizes: recycled arena buffers (which come back dirty) must never
// leak into results — every pass must be bit-identical to a fresh engine's.
func TestEngineArenaReuseDeterministic(t *testing.T) {
	for _, f := range []models.Family{models.ResNet, models.Transformer, models.MobileNet} {
		clf, x, nm, b := prunedModel(t, f)
		eng, err := New(clf, b, nm)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
		one := tensor.FromSlice(x.Data[:c*h*w], 1, c, h, w)
		wantBatch := eng.Logits(x)
		wantOne := eng.Logits(one)
		// Interleave shapes so every layer sees shrinking and growing
		// buffers drawn from the same recycled arena.
		for i := 0; i < 3; i++ {
			if got := eng.Logits(one); !tensor.Equal(got, wantOne, 0) {
				t.Fatalf("%s: single-sample pass %d diverged after arena reuse", f, i)
			}
			if got := eng.Logits(x); !tensor.Equal(got, wantBatch, 0) {
				t.Fatalf("%s: %d-sample pass %d diverged after arena reuse", f, n, i)
			}
		}
	}
}

// TestEngineConcurrentBitIdentical runs many concurrent passes (each with
// its own pooled arena) and checks every result against the serial one —
// the -race guard for the engine's shared compiled state.
func TestEngineConcurrentBitIdentical(t *testing.T) {
	clf, x, nm, b := prunedModel(t, models.ResNet)
	eng, err := New(clf, b, nm)
	if err != nil {
		t.Fatal(err)
	}
	want := eng.Logits(x)
	var wg sync.WaitGroup
	const goroutines = 8
	errs := make([]error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if got := eng.Logits(x); !tensor.Equal(got, want, 0) {
					errs[gi] = fmt.Errorf("goroutine %d pass %d diverged", gi, i)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
