package inference

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// prunedModel returns a CRISP-pruned classifier and a test batch.
func prunedModel(t *testing.T, f models.Family) (*nn.Classifier, *tensor.Tensor, sparsity.NM, int) {
	t.Helper()
	cfg := data.Config{Name: "inf", NumClasses: 8, Channels: 3, H: 8, W: 8, Noise: 0.25, Jitter: 1, Seed: 7}
	ds := data.New(cfg)
	clf := models.Build(f, rand.New(rand.NewSource(21)), cfg.NumClasses, 1)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	opt := nn.NewSGD(0.05, 0.9, 4e-5)
	pruner.Finetune(clf, ds.MakeSplit("pre", all, 8), 2, 16, opt, rand.New(rand.NewSource(22)))

	nm := sparsity.NM{N: 2, M: 4}
	p := pruner.NewCRISP(pruner.Options{
		Target: 0.8, NM: nm, BlockSize: 4, Iterations: 2,
		FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
	})
	p.Prune(clf, ds.MakeSplit("user", []int{1, 5}, 12))

	test := ds.MakeSplit("test", []int{1, 5}, 4)
	return clf, test.X, nm, 4
}

func TestEngineMatchesMaskedDense(t *testing.T) {
	for _, f := range []models.Family{models.ResNet, models.VGG, models.MobileNet, models.Transformer} {
		clf, x, nm, b := prunedModel(t, f)
		eng, err := New(clf, b, nm)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		dense := clf.Logits(x, false)
		sparse := eng.Logits(x)
		if !tensor.Equal(dense, sparse, 1e-9) {
			t.Fatalf("%s: sparse engine disagrees with masked dense model", f)
		}
		if eng.CompressedLayers == 0 {
			t.Fatalf("%s: no layers ran compressed", f)
		}
	}
}

func TestEngineOnDenseModelStillCorrect(t *testing.T) {
	// An unpruned model must also execute (CSR fallback everywhere).
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(30)), 5, 1)
	rng := rand.New(rand.NewSource(31))
	x := tensor.Randn(rng, 1, 2, 3, 8, 8)
	eng, err := New(clf, 4, sparsity.NM{N: 2, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(clf.Logits(x, false), eng.Logits(x), 1e-9) {
		t.Fatal("dense fallback disagrees")
	}
}

func TestEngineRepeatedCalls(t *testing.T) {
	clf, x, nm, b := prunedModel(t, models.ResNet)
	eng, err := New(clf, b, nm)
	if err != nil {
		t.Fatal(err)
	}
	a := eng.Logits(x)
	bb := eng.Logits(x)
	if !tensor.Equal(a, bb, 0) {
		t.Fatal("engine is not deterministic across calls")
	}
}

func TestEngineBackwardPanics(t *testing.T) {
	clf, x, nm, b := prunedModel(t, models.ResNet)
	eng, err := New(clf, b, nm)
	if err != nil {
		t.Fatal(err)
	}
	_ = x
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backward through inference layers")
		}
	}()
	(&sparseLinear{lin: nn.NewLinear("x", rand.New(rand.NewSource(1)), 2, 2, false)}).Backward(nil)
	_ = eng
}

func TestTranspose(t *testing.T) {
	m := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	mt := transpose(m)
	if mt.Shape[0] != 3 || mt.Shape[1] != 2 {
		t.Fatalf("shape %v", mt.Shape)
	}
	if mt.At(0, 1) != 4 || mt.At(2, 0) != 3 {
		t.Fatalf("values wrong: %v", mt.Data)
	}
}
