package inference

import (
	"hash/fnv"

	"repro/internal/nn"
)

// MemoryFootprint reports the engine-owned resident bytes of the compiled
// state: owned plan payloads, owned (or first-owner) int8 images, and
// privately materialized effective weights. Memory the engine merely
// references is excluded — shared universal slabs belong to the base model,
// and plans deduplicated through a format.Registry are counted by the
// engine that first interned them, so summing footprints across engines
// never double-counts. Transient arena scratch is excluded: it is pooled
// per pass, not held per engine. Fixed at compile time.
func (e *Engine) MemoryFootprint() int64 { return e.footprint }

// Fingerprint is the engine's structural fingerprint: an FNV-64a hash over
// every compiled plan's fingerprint in compile order. Two engines compiled
// from the same weights and masks always agree (compilation is
// deterministic), so the serving layer uses it to verify that a rebuilt
// engine reproduced the original compiled shape and values exactly.
func (e *Engine) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range e.plans {
		fp := p.Fingerprint()
		for i := 0; i < 8; i++ {
			buf[i] = byte(fp >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Release returns the engine's interned plans to its registry so their
// reference counts drop (and fully unreferenced entries free). Idempotent;
// a no-op for engines compiled without a registry. In-flight forward
// passes may still complete — releasing only drops dedup bookkeeping, the
// compiled plans themselves stay valid until the engine is garbage
// collected. Not safe to call concurrently with itself; the serving layer
// serializes it per engine.
func (e *Engine) Release() {
	if e.released || e.registry == nil {
		return
	}
	e.released = true
	for _, p := range e.interned {
		e.registry.Release(p)
	}
	e.interned = nil
}

// ModelBytes reports the resident bytes of a classifier's learnable state:
// dense weights, gradients, masks, and normalization running statistics —
// the cost of holding a full per-tenant model clone, and the denominator
// the tiered cache's density win is measured against.
func ModelBytes(clf *nn.Classifier) int64 {
	var n int64
	for _, p := range clf.Params() {
		n += int64(p.W.Len()) * 8
		if p.Grad != nil {
			n += int64(p.Grad.Len()) * 8
		}
		if p.Mask != nil {
			n += int64(p.Mask.Len()) * 8
		}
	}
	nn.Walk(clf.Net, func(l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm2D); ok {
			n += int64(len(bn.RunMean.Data)+len(bn.RunVar.Data)) * 8
		}
	})
	return n
}
