package inference

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/format"
	"repro/internal/tensor"
)

// TestQuantConvForwardMatchesReference pins the quantize-before-im2col
// path against a naive integer reference: per-sample scales, one biased
// code per input element, explicit im2col duplication and a scalar
// Σ code_w·code_b accumulation. The packed gather, the SWAR kernel and the
// bias correction must reproduce it exactly — integer arithmetic leaves no
// rounding slack, and the final store multiplies the same three factors.
func TestQuantConvForwardMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	cases := []struct {
		name string
		g    tensor.ConvGeom
		outC int
	}{
		{"3x3 pad1 stride1", tensor.ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}, 8},
		{"3x3 pad0 stride1", tensor.ConvGeom{InC: 2, InH: 6, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 0}, 5},
		{"2x2 pad0 stride2", tensor.ConvGeom{InC: 4, InH: 8, InW: 8, KH: 2, KW: 2, Stride: 2, Pad: 0}, 6},
		{"5x5 pad2 stride1", tensor.ConvGeom{InC: 1, InH: 10, InW: 10, KH: 5, KW: 5, Stride: 1, Pad: 2}, 4},
	}
	for _, tc := range cases {
		g := tc.g
		oh, ow := g.OutH(), g.OutW()
		if !quantConvSupported(ow) {
			t.Fatalf("%s: fixture must have even output width, got %d", tc.name, ow)
		}
		n := 3
		w := tensor.Randn(rng, 0.5, tc.outC, g.InC*g.KH*g.KW)
		// Sparsify irregularly so sign spans and zero-code drops are hit.
		for i := range w.Data {
			if i%3 == 0 {
				w.Data[i] = 0
			}
		}
		qp, err := format.CompileQuantized(format.EncodeCSR(w))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		x := tensor.Randn(rng, 1.5, n, g.InC, g.InH, g.InW)

		got := quantConvForward(qp, x, g, n, oh, ow, &arena{})

		// Reference: same quantization decisions, naive evaluation.
		vol := g.InC * g.InH * g.InW
		scales := make([]float64, n)
		codes := make([]int64, n*vol)
		for b := 0; b < n; b++ {
			maxAbs := 0.0
			for _, v := range x.Data[b*vol : (b+1)*vol] {
				if av := math.Abs(v); av > maxAbs {
					maxAbs = av
				}
			}
			scales[b] = 1
			if maxAbs > 0 {
				scales[b] = maxAbs / 127
			}
			for i, v := range x.Data[b*vol : (b+1)*vol] {
				codes[b*vol+i] = int64(format.EncodeBiased(v, 1/scales[b])) - 128
			}
		}
		cols := tensor.Im2Col(x, g) // float reference for the gather indices
		for r := 0; r < qp.Rows; r++ {
			for b := 0; b < n; b++ {
				for p := 0; p < oh*ow; p++ {
					j := b*oh*ow + p
					acc := int64(0)
					for i := qp.RowPtr[r]; i < qp.RowPtr[r+1]; i++ {
						// The im2col row of this tap holds the float value;
						// recover the code through the sample's scale.
						fv := cols.Data[int(qp.Col[i])*n*oh*ow+j]
						code := int64(format.EncodeBiased(fv, 1/scales[b])) - 128
						acc += int64(qp.Code[i]) * code
					}
					want := float64(acc) * qp.RowScale[r] * scales[b]
					if gv := got.Data[r*n*oh*ow+j]; gv != want {
						t.Fatalf("%s: out[%d][%d] = %v, reference %v", tc.name, r, j, gv, want)
					}
				}
			}
		}
	}
}

// TestPackIm2ColPadding: every packed lane that corresponds to an
// out-of-image tap must hold the biased zero, and in-image lanes must hold
// the sample's code — checked against the float im2col matrix, whose
// padding semantics are the reference.
func TestPackIm2ColPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	oh, ow := g.OutH(), g.OutW()
	n := 2
	x := tensor.Randn(rng, 1, n, g.InC, g.InH, g.InW)
	vol := g.InC * g.InH * g.InW

	codes := make([]uint64, n*vol)
	invs := make([]float64, n)
	for b := 0; b < n; b++ {
		maxAbs := 0.0
		for _, v := range x.Data[b*vol : (b+1)*vol] {
			if av := math.Abs(v); av > maxAbs {
				maxAbs = av
			}
		}
		invs[b] = 127 / maxAbs
		for i, v := range x.Data[b*vol : (b+1)*vol] {
			codes[b*vol+i] = format.EncodeBiased(v, invs[b])
		}
	}
	colsN := n * oh * ow
	halfW := colsN / 2
	packed := make([]uint64, g.InC*g.KH*g.KW*halfW)
	packIm2Col(codes, g, n, oh, ow, packed, halfW)

	ref := tensor.Im2Col(x, g)
	for r := 0; r < g.InC*g.KH*g.KW; r++ {
		for j := 0; j < colsN; j++ {
			lane := (packed[r*halfW+j/2] >> (32 * uint(j&1))) & 0xffffffff
			fv := ref.Data[r*colsN+j]
			b := j / (oh * ow)
			if fv == 0 {
				// Padding tap (or a true zero): either way the code is the
				// biased zero.
				if lane != 128 {
					t.Fatalf("tap row %d col %d: zero/padding lane holds %d, want 128", r, j, lane)
				}
				continue
			}
			if want := format.EncodeBiased(fv, invs[b]); lane != want {
				t.Fatalf("tap row %d col %d: lane %d, want %d", r, j, lane, want)
			}
		}
	}
}
