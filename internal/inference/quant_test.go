package inference

import (
	"math"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/tensor"
)

// agreementFamilies is the golden accuracy-agreement table: for each model
// family, the minimum tolerated top-1 agreement between the Int8 and
// Float32 engines and the per-family logits max-abs-error bound. The bounds
// are the int8 analog of the float path's bit-identity suites — quantized
// execution cannot be exact, so the suite pins how inexact it is allowed to
// get. Bounds were calibrated against the synthetic datasets (observed
// worst: resnet 0.032, vgg 0.006, transformer 0.040) with ~4× headroom —
// everything here is deterministic, so a failure means the quantized
// kernels regressed, not noise.
var agreementFamilies = []struct {
	family    models.Family
	minAgree  float64 // top-1 agreement vs the Float32 engine
	maxLogitE float64 // worst absolute logit deviation
}{
	{models.ResNet, 0.95, 0.15},
	{models.VGG, 0.95, 0.03},
	{models.Transformer, 0.95, 0.15},
}

// agreementBatch draws a large held-out batch of the pruned classes from
// the same synthetic dataset prunedModel trains on: 64 samples make the
// 95% agreement floor statistically meaningful (at 8 samples a single
// near-tie flip would read as 12.5% disagreement).
func agreementBatch() *tensor.Tensor {
	cfg := data.Config{Name: "inf", NumClasses: 8, Channels: 3, H: 8, W: 8, Noise: 0.25, Jitter: 1, Seed: 7}
	return data.New(cfg).MakeSplit("agree", []int{1, 5}, 32).X
}

// TestInt8EngineAgreementGolden runs both engines over a held-out batch per
// family and asserts the quantized engine agrees with the float engine on
// ≥95% of top-1 predictions, with every logit inside the family's bound.
func TestInt8EngineAgreementGolden(t *testing.T) {
	x := agreementBatch()
	for _, tc := range agreementFamilies {
		clf, _, nm, b := prunedModel(t, tc.family)
		ref, err := New(clf, b, nm)
		if err != nil {
			t.Fatalf("%s: %v", tc.family, err)
		}
		q8, err := NewWithOptions(clf, b, nm, CompileOptions{Precision: Int8})
		if err != nil {
			t.Fatalf("%s: %v", tc.family, err)
		}
		if q8.Precision() != Int8 || ref.Precision() != Float32 {
			t.Fatalf("%s: precisions %v/%v", tc.family, q8.Precision(), ref.Precision())
		}
		if q8.CompressedLayers != ref.CompressedLayers {
			t.Fatalf("%s: int8 engine compressed %d layers, float %d",
				tc.family, q8.CompressedLayers, ref.CompressedLayers)
		}

		want := ref.Logits(x)
		got := q8.Logits(x)
		worst := 0.0
		for i := range want.Data {
			if e := math.Abs(got.Data[i] - want.Data[i]); e > worst {
				worst = e
			}
		}
		if worst > tc.maxLogitE {
			t.Fatalf("%s: logits max-abs-error %v exceeds family bound %v", tc.family, worst, tc.maxLogitE)
		}

		refPred := ref.Predict(x)
		q8Pred := q8.Predict(x)
		agree := 0
		for i := range refPred {
			if refPred[i] == q8Pred[i] {
				agree++
			}
		}
		frac := float64(agree) / float64(len(refPred))
		t.Logf("%s: top-1 agreement %d/%d (%.1f%%), worst logit error %v",
			tc.family, agree, len(refPred), 100*frac, worst)
		if frac < tc.minAgree {
			t.Fatalf("%s: top-1 agreement %.3f below the %.2f floor", tc.family, frac, tc.minAgree)
		}
	}
}

// TestInt8EngineDeterministic: the quantized engine is as deterministic as
// the float one — identical outputs across repeated calls and across a
// recompile of the same classifier (the snapshot-restore invariant), and
// QuantSignature pins the quantized state: equal across recompiles, zero
// for float engines.
func TestInt8EngineDeterministic(t *testing.T) {
	clf, x, nm, b := prunedModel(t, models.ResNet)
	e1, err := NewWithOptions(clf, b, nm, CompileOptions{Precision: Int8})
	if err != nil {
		t.Fatal(err)
	}
	if got := e1.Logits(x); !tensor.Equal(got, e1.Logits(x), 0) {
		t.Fatal("int8 engine is not deterministic across calls")
	}
	e2, err := NewWithOptions(clf, b, nm, CompileOptions{Precision: Int8})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(e1.Logits(x), e2.Logits(x), 0) {
		t.Fatal("recompiled int8 engine diverged")
	}
	s1, s2 := e1.QuantSignature(), e2.QuantSignature()
	if s1 == 0 || s1 != s2 {
		t.Fatalf("quant signatures %x vs %x (must be equal and non-zero)", s1, s2)
	}
	ref, err := New(clf, b, nm)
	if err != nil {
		t.Fatal(err)
	}
	if ref.QuantSignature() != 0 {
		t.Fatalf("float engine has quant signature %x, want 0", ref.QuantSignature())
	}
}

// TestInt8LogitsBatchMatchesPerSample: batching changes only scheduling on
// the int8 path too — the per-column activation scales are computed per
// sample column, so a sample's codes (and therefore its logits) are
// identical whether it runs alone or inside a batch.
func TestInt8LogitsBatchMatchesPerSample(t *testing.T) {
	for _, f := range []models.Family{models.ResNet, models.Transformer} {
		clf, x, nm, b := prunedModel(t, f)
		eng, err := NewWithOptions(clf, b, nm, CompileOptions{Precision: Int8})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
		xs := make([]*tensor.Tensor, n)
		for i := 0; i < n; i++ {
			xs[i] = tensor.FromSlice(x.Data[i*c*h*w:(i+1)*c*h*w], 1, c, h, w)
		}
		batch := eng.LogitsBatch(xs)
		width := batch.Len() / n
		for i := 0; i < n; i++ {
			per := eng.Logits(xs[i])
			for j := 0; j < width; j++ {
				if got, want := batch.Data[i*width+j], per.Data[j]; got != want {
					t.Fatalf("%s: sample %d logit %d: batch %v vs per-sample %v", f, i, j, got, want)
				}
			}
		}
		preds := eng.PredictBatch(xs)
		solo := eng.Predict(x)
		for i := range preds {
			if preds[i] != solo[i] {
				t.Fatalf("%s: sample %d PredictBatch %d vs Predict %d", f, i, preds[i], solo[i])
			}
		}
	}
}

// TestInt8ArenaReuseDeterministic interleaves batch sizes on one int8
// engine: recycled int8/int32 slabs come back dirty and must never leak
// into results.
func TestInt8ArenaReuseDeterministic(t *testing.T) {
	for _, f := range []models.Family{models.ResNet, models.Transformer} {
		clf, x, nm, b := prunedModel(t, f)
		eng, err := NewWithOptions(clf, b, nm, CompileOptions{Precision: Int8})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
		one := tensor.FromSlice(x.Data[:c*h*w], 1, c, h, w)
		wantBatch := eng.Logits(x)
		wantOne := eng.Logits(one)
		for i := 0; i < 3; i++ {
			if got := eng.Logits(one); !tensor.Equal(got, wantOne, 0) {
				t.Fatalf("%s: single-sample pass %d diverged after arena reuse", f, i)
			}
			if got := eng.Logits(x); !tensor.Equal(got, wantBatch, 0) {
				t.Fatalf("%s: %d-sample pass %d diverged after arena reuse", f, n, i)
			}
		}
	}
}

// TestInt8EngineConcurrentDeterministic is the -race guard for the int8
// path's shared compiled state (quantized plans, pooled arenas with three
// slab types): concurrent passes must all equal the serial result.
func TestInt8EngineConcurrentDeterministic(t *testing.T) {
	clf, x, nm, b := prunedModel(t, models.ResNet)
	eng, err := NewWithOptions(clf, b, nm, CompileOptions{Precision: Int8})
	if err != nil {
		t.Fatal(err)
	}
	want := eng.Logits(x)
	var wg sync.WaitGroup
	const goroutines = 8
	errs := make([]bool, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if got := eng.Logits(x); !tensor.Equal(got, want, 0) {
					errs[gi] = true
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	for gi, bad := range errs {
		if bad {
			t.Fatalf("goroutine %d diverged from the serial int8 result", gi)
		}
	}
}
