package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultOrdering(t *testing.T) {
	m := Default()
	// The memory-hierarchy ordering every conclusion depends on.
	if !(m.DRAMPerByte > m.SMEMPerByte && m.SMEMPerByte > m.RFPerByte) {
		t.Fatalf("hierarchy ordering broken: %+v", m)
	}
	if m.MACOp <= 0 || m.MuxOp <= 0 || m.GatherOp <= 0 {
		t.Fatalf("non-positive op energies: %+v", m)
	}
	// A mux select must be far cheaper than a gather (CRISP's structural
	// advantage over DSTC's machinery).
	if m.MuxOp >= m.GatherOp {
		t.Fatalf("mux (%v) should cost less than gather (%v)", m.MuxOp, m.GatherOp)
	}
}

func TestIntegrateKnownValues(t *testing.T) {
	m := Model{DRAMPerByte: 100, SMEMPerByte: 10, RFPerByte: 1, MACOp: 2, MuxOp: 0.5}
	b := m.Integrate(1e6, 2e6, 3e6, 4e6, 5e6, 0.5)
	if math.Abs(b.DRAM-100) > 1e-9 { // 1e6 B × 100 pJ = 1e8 pJ = 100 µJ
		t.Fatalf("DRAM %v", b.DRAM)
	}
	if math.Abs(b.SMEM-20) > 1e-9 {
		t.Fatalf("SMEM %v", b.SMEM)
	}
	if math.Abs(b.RF-3) > 1e-9 {
		t.Fatalf("RF %v", b.RF)
	}
	if math.Abs(b.Compute-8) > 1e-9 {
		t.Fatalf("Compute %v", b.Compute)
	}
	if math.Abs(b.Overhead-2.5) > 1e-9 {
		t.Fatalf("Overhead %v", b.Overhead)
	}
	if math.Abs(b.TotalUJ()-133.5) > 1e-9 {
		t.Fatalf("Total %v", b.TotalUJ())
	}
}

// Property: Integrate is monotone in every activity count.
func TestIntegrateMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw)
		d := float64(bRaw)
		base := m.Integrate(a, a, a, a, a, m.MuxOp).TotalUJ()
		more := m.Integrate(a+d, a, a, a, a, m.MuxOp).TotalUJ()
		return more >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
