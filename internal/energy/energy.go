// Package energy provides the CACTI-P-inspired per-access energy model the
// accelerator simulator integrates (the paper evaluates energy with the
// CACTI plugin of Sparseloop). Constants are first-order 22–32 nm figures;
// absolute values matter less than their ratios (DRAM ≫ SMEM ≫ RF ≫ MAC),
// which drive every qualitative conclusion in Fig. 8.
package energy

// Model holds per-access energies in picojoules.
type Model struct {
	// DRAMPerByte is off-chip access energy (LPDDR4-class).
	DRAMPerByte float64
	// SMEMPerByte is the shared-memory (large SRAM) access energy.
	SMEMPerByte float64
	// RFPerByte is the register-file access energy.
	RFPerByte float64
	// MACOp is one 8-bit multiply-accumulate.
	MACOp float64
	// MuxOp is one N:M activation-select multiplexer operation (CRISP-STC).
	MuxOp float64
	// GatherOp is one gather/scatter element operation (DSTC's dual-side
	// intersection machinery).
	GatherOp float64
}

// Default returns the reproduction's reference constants (pJ).
func Default() Model {
	return Model{
		DRAMPerByte: 160,
		SMEMPerByte: 2.5,
		RFPerByte:   0.08,
		MACOp:       0.4,
		MuxOp:       0.02,
		GatherOp:    1.2,
	}
}

// Breakdown itemizes the energy of one simulated layer in microjoules.
type Breakdown struct {
	DRAM, SMEM, RF, Compute, Overhead float64
}

// TotalUJ sums the components.
func (b Breakdown) TotalUJ() float64 { return b.DRAM + b.SMEM + b.RF + b.Compute + b.Overhead }

// picoToMicro converts pJ to µJ.
const picoToMicro = 1e-6

// Integrate builds a Breakdown from raw activity counts: bytes moved per
// level, MAC count, and architecture-specific overhead ops with their
// per-op energy.
func (m Model) Integrate(dramBytes, smemBytes, rfBytes, macs, overheadOps, overheadPerOp float64) Breakdown {
	return Breakdown{
		DRAM:     dramBytes * m.DRAMPerByte * picoToMicro,
		SMEM:     smemBytes * m.SMEMPerByte * picoToMicro,
		RF:       rfBytes * m.RFPerByte * picoToMicro,
		Compute:  macs * m.MACOp * picoToMicro,
		Overhead: overheadOps * overheadPerOp * picoToMicro,
	}
}
