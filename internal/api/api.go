// Package api is the HTTP surface of one CRISP serving process (a
// standalone server or a cluster shard). It is split out of cmd/crisp-serve
// so the same handlers serve three callers: the binary, its httptest-based
// tests, and internal/cluster's in-process e2e shards.
//
// Endpoints:
//
//	POST /personalize {"classes":[3,17,42]}
//	POST /predict     {"classes":[3,17,42], "samples":16}
//	POST /predict     {"classes":[3,17,42], "inputs":[[...C*H*W floats...], ...]}
//	POST /snapshot    (flush every cached engine to the snapshot dir)
//	GET  /stats
//	GET  /metrics     (Prometheus text exposition of the /stats counters)
//	GET  /healthz     (shard liveness + load for the cluster router's prober)
//	POST /drain       (stop accepting new tenants, flush, return the handoff manifest)
//	POST /handoff     {"key":"1,3","fingerprint":...} (adopt a tenant from the shared store)
//
// The shard endpoints are always mounted — a standalone server is just a
// cluster of one — and /drain and /handoff require a snapshot store, since
// that store is the handoff channel between shards.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"

	"repro/internal/data"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// Config carries the process identity into the HTTP surface.
type Config struct {
	// ShardID names this process in /healthz and drain manifests; empty
	// means a standalone (unsharded) server.
	ShardID string
}

// Health is the /healthz body: liveness plus the load signals the cluster
// router folds into its per-shard metrics. Stats is the full counter
// snapshot — the router reads CachedEngines and QueueDepth from it, so the
// shard's existing telemetry feeds the ring without a second endpoint.
type Health struct {
	Status   string      `json:"status"` // "ok" or "draining"
	Shard    string      `json:"shard,omitempty"`
	Draining bool        `json:"draining"`
	Stats    serve.Stats `json:"stats"`
}

// DrainResponse is the /drain body: the manifest of tenants the drained
// shard flushed to the shared snapshot store, ready to be adopted.
type DrainResponse struct {
	Shard   string                `json:"shard,omitempty"`
	Tenants []serve.HandoffTenant `json:"tenants"`
}

// HandoffRequest is the /handoff body: adopt one tenant from the shared
// snapshot store, verifying it against the sending shard's fingerprints
// (zero values skip verification — an unverified adopt after a crash).
type HandoffRequest struct {
	Key            string `json:"key"`
	Fingerprint    uint64 `json:"fingerprint"`
	QuantSignature uint64 `json:"quant_signature"`
}

// NewMux wires the HTTP API around a server.
func NewMux(s *serve.Server, ds *data.Dataset, cfg Config) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /personalize", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Classes []int `json:"classes"`
			// QoS optionally (re)classes the tenant: "gold", "standard" or
			// "batch". Omitted: a new tenant starts Standard, an existing
			// tenant keeps its class.
			QoS *string `json:"qos"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		// Canonicalize separates caller errors (bad class set → 400) from
		// server-side personalization failures (→ 500).
		canon, _, err := s.Canonicalize(req.Classes)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		var p *serve.Personalization
		var cached bool
		if req.QoS != nil {
			qos, err := serve.ParseQoSClass(*req.QoS)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			p, cached, err = s.PersonalizeQoS(canon, qos)
		} else {
			p, cached, err = s.Personalize(canon)
		}
		if err != nil {
			httpError(w, personalizeStatus(w, err), err)
			return
		}
		writeJSON(w, map[string]any{
			"key":               p.Key,
			"classes":           p.Classes,
			"cached":            cached,
			"qos":               p.QoS().String(),
			"accuracy":          p.Accuracy,
			"sparsity":          p.Report.AchievedSparsity,
			"flops_ratio":       p.Report.FLOPsRatio,
			"compressed_layers": p.Engine().CompressedLayers,
			"precision":         p.Engine().Precision().String(),
			"agreement":         p.Agreement,
			"fingerprint":       p.Engine().Fingerprint(),
		})
	})
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Classes []int       `json:"classes"`
			Samples int         `json:"samples"`
			Inputs  [][]float64 `json:"inputs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		canon, key, err := s.Canonicalize(req.Classes)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if len(req.Inputs) > 0 {
			x, err := inputsToBatch(req.Inputs, ds)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			preds, err := s.Predict(canon, x)
			if err != nil {
				httpError(w, predictStatus(w, err), err)
				return
			}
			writeJSON(w, map[string]any{"key": key, "predictions": preds, "samples": len(preds)})
			return
		}
		preds, labels, acc, err := s.PredictSamples(canon, req.Samples)
		if err != nil {
			httpError(w, predictStatus(w, err), err)
			return
		}
		writeJSON(w, map[string]any{
			"key": key, "predictions": preds, "labels": labels,
			"accuracy": acc, "samples": len(preds),
		})
	})
	mux.HandleFunc("POST /snapshot", func(w http.ResponseWriter, r *http.Request) {
		// Explicit flush: write every cached engine that is not yet on disk.
		// Routine persistence does not need this (completions snapshot
		// write-behind); it is the admin hook before a planned restart.
		written, err := s.Flush()
		if errors.Is(err, serve.ErrNoSnapshotDir) {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		st := s.Stats()
		writeJSON(w, map[string]any{
			"written":         written,
			"snapshot_writes": st.SnapshotWrites,
			"snapshot_errors": st.SnapshotErrors,
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{Status: "ok", Shard: cfg.ShardID, Draining: s.Draining(), Stats: s.Stats()}
		if h.Draining {
			h.Status = "draining"
		}
		writeJSON(w, h)
	})
	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		tenants, err := s.Drain()
		if errors.Is(err, serve.ErrNoSnapshotDir) {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, DrainResponse{Shard: cfg.ShardID, Tenants: tenants})
	})
	mux.HandleFunc("POST /handoff", func(w http.ResponseWriter, r *http.Request) {
		var req HandoffRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if req.Key == "" {
			httpError(w, http.StatusBadRequest, errors.New("handoff request missing key"))
			return
		}
		if err := s.RestoreTenant(req.Key, req.Fingerprint, req.QuantSignature); err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, serve.ErrNoSnapshotDir) {
				code = http.StatusBadRequest
			}
			httpError(w, code, err)
			return
		}
		writeJSON(w, map[string]any{"key": req.Key, "restored": true})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WriteMetrics(w, s.Stats())
	})
	return mux
}

// predictStatus maps a predict-path error to its HTTP status: admission
// rejections are the caller's signal to back off (429), a draining shard
// tells the caller to retry once the router has re-placed the tenant (503
// + Retry-After), everything else is a server-side failure.
func predictStatus(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrOverQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrDraining):
		w.Header().Set("Retry-After", "1")
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// personalizeStatus is predictStatus for the personalize path (no
// admission control there, but draining rejects the same way).
func personalizeStatus(w http.ResponseWriter, err error) int {
	if errors.Is(err, serve.ErrDraining) {
		w.Header().Set("Retry-After", "1")
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// inputsToBatch validates caller-provided images against the dataset shape
// and stacks them into one [B,C,H,W] batch.
func inputsToBatch(inputs [][]float64, ds *data.Dataset) (*tensor.Tensor, error) {
	c, h, w := ds.Channels, ds.H, ds.W
	vol := c * h * w
	xs := make([]*tensor.Tensor, len(inputs))
	for i, in := range inputs {
		if len(in) != vol {
			return nil, fmt.Errorf("input %d has %d values, want C*H*W=%d", i, len(in), vol)
		}
		xs[i] = tensor.FromSlice(in, 1, c, h, w)
	}
	return tensor.Concat(xs), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("api: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
