package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/inference"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/serve"
	"repro/internal/sparsity"
)

// newTestMux builds a small service (tiny model, one pruning iteration)
// behind the real HTTP handlers.
func newTestMux(t *testing.T) (*http.ServeMux, *serve.Server, *data.Dataset) {
	return newTestMuxSnapshot(t, "")
}

// newTestMuxSnapshot is newTestMux with a snapshot directory; the fixture
// is fully seeded, so two muxes on the same directory model a restart of
// the same deployment.
func newTestMuxSnapshot(t *testing.T, snapshotDir string) (*http.ServeMux, *serve.Server, *data.Dataset) {
	t.Helper()
	return newTestMuxOpts(t, func(o *serve.Options) { o.SnapshotDir = snapshotDir })
}

// newTestMuxOpts lets a test override the serving options (batching knobs,
// snapshot dir) before the server is built.
func newTestMuxOpts(t *testing.T, mutate func(*serve.Options)) (*http.ServeMux, *serve.Server, *data.Dataset) {
	t.Helper()
	ds := data.New(data.Config{
		Name: "serve-http-test", NumClasses: 6, Channels: 3, H: 8, W: 8,
		Noise: 0.25, Jitter: 1, Seed: 9,
	})
	build := func() *nn.Classifier {
		return models.Build(models.ResNet, rand.New(rand.NewSource(61)), ds.NumClasses, 1)
	}
	base := build()
	opt := nn.NewSGD(0.05, 0.9, 4e-5)
	pruner.Finetune(base, ds.MakeSplit("pretrain", []int{0, 1, 2, 3, 4, 5}, 8), 2, 16, opt, rand.New(rand.NewSource(62)))
	opts := serve.Options{
		Prune: pruner.Options{
			Target: 0.7, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
			Iterations: 1, FinetuneEpochs: 1, BatchSize: 8, LR: 0.01,
		},
		TrainPerClass: 6,
		TestPerClass:  4,
	}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := serve.NewServer(build, base, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return NewMux(s, ds, Config{ShardID: "test-shard"}), s, ds
}

func postJSON(t *testing.T, srv *httptest.Server, path string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestEndpoints(t *testing.T) {
	mux, _, ds := newTestMux(t)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var pr struct {
		Key              string  `json:"key"`
		Cached           bool    `json:"cached"`
		Sparsity         float64 `json:"sparsity"`
		CompressedLayers int     `json:"compressed_layers"`
		Fingerprint      uint64  `json:"fingerprint"`
	}
	if code := postJSON(t, srv, "/personalize", map[string]any{"classes": []int{3, 1, 3}}, &pr); code != http.StatusOK {
		t.Fatalf("/personalize status %d", code)
	}
	if pr.Key != "1,3" || pr.Cached || pr.Sparsity <= 0 || pr.CompressedLayers == 0 {
		t.Fatalf("personalize response %+v", pr)
	}
	if pr.Fingerprint == 0 {
		t.Fatal("personalize response missing the engine fingerprint")
	}
	if code := postJSON(t, srv, "/personalize", map[string]any{"classes": []int{1, 3}}, &pr); code != http.StatusOK || !pr.Cached {
		t.Fatalf("second personalize not served from cache (%d, %+v)", code, pr)
	}

	var pd struct {
		Predictions []int `json:"predictions"`
		Labels      []int `json:"labels"`
		Samples     int   `json:"samples"`
	}
	if code := postJSON(t, srv, "/predict", map[string]any{"classes": []int{1, 3}, "samples": 8}, &pd); code != http.StatusOK {
		t.Fatalf("/predict status %d", code)
	}
	if pd.Samples != 8 || len(pd.Predictions) != 8 || len(pd.Labels) != 8 {
		t.Fatalf("predict response %+v", pd)
	}

	// Caller-provided inputs.
	vol := ds.Channels * ds.H * ds.W
	inputs := [][]float64{make([]float64, vol), make([]float64, vol)}
	var pi struct {
		Predictions []int `json:"predictions"`
	}
	if code := postJSON(t, srv, "/predict", map[string]any{"classes": []int{1, 3}, "inputs": inputs}, &pi); code != http.StatusOK {
		t.Fatalf("/predict with inputs status %d", code)
	}
	if len(pi.Predictions) != 2 {
		t.Fatalf("predictions %v", pi.Predictions)
	}

	// Malformed requests.
	if code := postJSON(t, srv, "/personalize", map[string]any{"classes": []int{}}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty class set: status %d", code)
	}
	if code := postJSON(t, srv, "/predict", map[string]any{"classes": []int{99}}, nil); code != http.StatusBadRequest {
		t.Fatalf("out-of-range class: status %d", code)
	}
	if code := postJSON(t, srv, "/predict", map[string]any{"classes": []int{1}, "inputs": [][]float64{{1, 2}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("short input row: status %d", code)
	}

	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Personalizations != 1 || st.CacheHits == 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestErrorPaths drives every handler's failure branches through raw HTTP
// bodies and asserts both the status code and the {"error": "..."} shape.
// TestPersonalizeQoSField: the optional "qos" field classes the tenant,
// the response echoes the resolved class, omitting the field keeps the
// current class, and a later request re-classes the cached tenant in place.
func TestPersonalizeQoSField(t *testing.T) {
	mux, _, _ := newTestMux(t)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var pr struct {
		Qos    string `json:"qos"`
		Cached bool   `json:"cached"`
	}
	if code := postJSON(t, srv, "/personalize", map[string]any{"classes": []int{1, 3}, "qos": "gold"}, &pr); code != http.StatusOK {
		t.Fatalf("/personalize status %d", code)
	}
	if pr.Qos != "gold" || pr.Cached {
		t.Fatalf("personalize response %+v, want fresh gold tenant", pr)
	}
	if code := postJSON(t, srv, "/personalize", map[string]any{"classes": []int{1, 3}}, &pr); code != http.StatusOK {
		t.Fatalf("repeat /personalize status %d", code)
	}
	if !pr.Cached || pr.Qos != "gold" {
		t.Fatalf("omitted qos must keep the class: %+v", pr)
	}
	if code := postJSON(t, srv, "/personalize", map[string]any{"classes": []int{1, 3}, "qos": "batch"}, &pr); code != http.StatusOK {
		t.Fatalf("re-class /personalize status %d", code)
	}
	if !pr.Cached || pr.Qos != "batch" {
		t.Fatalf("qos field must re-class the cached tenant: %+v", pr)
	}
}

func TestErrorPaths(t *testing.T) {
	mux, _, _ := newTestMux(t)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cases := []struct {
		name, path, body string
		wantCode         int
	}{
		{"personalize malformed json", "/personalize", `{"classes":`, http.StatusBadRequest},
		{"personalize empty body", "/personalize", ``, http.StatusBadRequest},
		{"personalize empty class set", "/personalize", `{"classes":[]}`, http.StatusBadRequest},
		{"personalize unknown class", "/personalize", `{"classes":[99]}`, http.StatusBadRequest},
		{"personalize negative class", "/personalize", `{"classes":[-1]}`, http.StatusBadRequest},
		{"personalize unknown qos", "/personalize", `{"classes":[1,3],"qos":"platinum"}`, http.StatusBadRequest},
		{"predict malformed json", "/predict", `{"classes":[1],`, http.StatusBadRequest},
		{"predict empty class set", "/predict", `{"classes":[],"samples":4}`, http.StatusBadRequest},
		{"predict unknown class", "/predict", `{"classes":[42],"samples":4}`, http.StatusBadRequest},
		{"predict short input row", "/predict", `{"classes":[1],"inputs":[[1,2,3]]}`, http.StatusBadRequest},
		{"snapshot without store", "/snapshot", ``, http.StatusBadRequest},
		{"drain without store", "/drain", ``, http.StatusBadRequest},
		{"handoff malformed json", "/handoff", `{"key":`, http.StatusBadRequest},
		{"handoff missing key", "/handoff", `{}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := srv.Client().Post(srv.URL+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("error content type %q", ct)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("error body not JSON: %v", err)
			}
			if e.Error == "" {
				t.Fatal("error body missing the error message")
			}
		})
	}
}

// TestSnapshotEndpointAndWarmRestart covers the admin flush path over HTTP
// and the restart story end to end: personalize, flush via POST /snapshot,
// then a second server on the same directory restores from disk without any
// pruning jobs.
func TestSnapshotEndpointAndWarmRestart(t *testing.T) {
	dir := t.TempDir()
	mux1, s1, _ := newTestMuxSnapshot(t, dir)
	srv1 := httptest.NewServer(mux1)
	defer srv1.Close()

	var pr struct {
		Key string `json:"key"`
	}
	if code := postJSON(t, srv1, "/personalize", map[string]any{"classes": []int{1, 3}}, &pr); code != http.StatusOK {
		t.Fatalf("/personalize status %d", code)
	}
	var fl struct {
		Written        int    `json:"written"`
		SnapshotWrites uint64 `json:"snapshot_writes"`
		SnapshotErrors uint64 `json:"snapshot_errors"`
	}
	if code := postJSON(t, srv1, "/snapshot", map[string]any{}, &fl); code != http.StatusOK {
		t.Fatalf("/snapshot status %d", code)
	}
	if fl.SnapshotWrites != 1 || fl.SnapshotErrors != 0 {
		t.Fatalf("flush response %+v (stats %+v)", fl, s1.Stats())
	}

	// "Restart": a second server over the same directory.
	mux2, s2, _ := newTestMuxSnapshot(t, dir)
	if n, err := s2.Restore(); err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	srv2 := httptest.NewServer(mux2)
	defer srv2.Close()

	if code := postJSON(t, srv2, "/personalize", map[string]any{"classes": []int{3, 1}}, &pr); code != http.StatusOK {
		t.Fatalf("post-restart /personalize status %d", code)
	}
	if pr.Key != "1,3" {
		t.Fatalf("post-restart key %q", pr.Key)
	}
	resp, err := srv2.Client().Get(srv2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.RestoreHits != 1 || st.Personalizations != 0 {
		t.Fatalf("warm restart stats %+v (want 1 restore hit, 0 pruning jobs)", st)
	}
	if st.CacheHits != 1 {
		t.Fatalf("restored engine not served from cache: %+v", st)
	}
}

// TestMetricsEndpoint: /metrics renders every counter family in the
// Prometheus text format, with the batch-size histogram cumulative and
// consistent with the /stats counters.
func TestMetricsEndpoint(t *testing.T) {
	mux, s, _ := newTestMux(t)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if code := postJSON(t, srv, "/predict", map[string]any{"classes": []int{1, 3}, "samples": 4}, nil); code != http.StatusOK {
		t.Fatalf("/predict status %d", code)
	}
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	st := s.Stats()
	for _, want := range []string{
		fmt.Sprintf("crisp_serve_requests_total %d\n", st.Requests),
		fmt.Sprintf("crisp_serve_predict_batches_total %d\n", st.PredictBatches),
		fmt.Sprintf("crisp_serve_samples_predicted_total %d\n", st.SamplesPredicted),
		"crisp_serve_rejected_total 0\n",
		"crisp_serve_queue_depth 0\n",
		"crisp_serve_draining 0\n",
		"crisp_serve_handoff_restores_total 0\n",
		"crisp_serve_handoff_errors_total 0\n",
		fmt.Sprintf("crisp_serve_batch_size_bucket{le=\"+Inf\"} %d\n", st.PredictBatches),
		fmt.Sprintf("crisp_serve_batch_size_count %d\n", st.PredictBatches),
		fmt.Sprintf("crisp_serve_batch_size_sum %d\n", st.SamplesPredicted),
		"# TYPE crisp_serve_batch_size histogram\n",
		"crisp_serve_qos_enabled 1\n",
		"crisp_serve_flush_deadline_total 0\n",
		"crisp_serve_shed_total{class=\"gold\"} 0\n",
		"crisp_serve_shed_total{class=\"standard\"} 0\n",
		"crisp_serve_shed_total{class=\"batch\"} 0\n",
		"# TYPE crisp_serve_queue_wait_seconds histogram\n",
		fmt.Sprintf("crisp_serve_queue_wait_seconds_count{class=\"standard\"} %d\n", st.QueueWait["standard"].Count),
		"crisp_serve_queue_wait_seconds_bucket{class=\"gold\",le=\"+Inf\"} 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestPredictOverload429: a full predict queue surfaces as HTTP 429 (the
// admission-control contract), not a 500.
func TestPredictOverload429(t *testing.T) {
	mux, s, ds := newTestMuxOpts(t, func(o *serve.Options) {
		o.MaxBatch = 100
		o.Linger = 30 * time.Second // only DrainBatches flushes
		o.MaxQueue = 1
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Build the engine first so the predicts below only queue.
	if code := postJSON(t, srv, "/personalize", map[string]any{"classes": []int{0, 2}}, nil); code != http.StatusOK {
		t.Fatalf("/personalize status %d", code)
	}
	input := make([]float64, ds.Channels*ds.H*ds.W)
	body := map[string]any{"classes": []int{0, 2}, "inputs": [][]float64{input}}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if code := postJSON(t, srv, "/predict", body, nil); code != http.StatusOK {
			t.Errorf("queued predict status %d", code)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first predict never queued")
		}
		time.Sleep(200 * time.Microsecond)
	}

	if code := postJSON(t, srv, "/predict", body, nil); code != http.StatusTooManyRequests {
		t.Fatalf("overflow predict status %d, want 429", code)
	}
	s.DrainBatches()
	wg.Wait()
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected %d, want 1", st.Rejected)
	}
}

// TestConcurrentHTTPClients sustains 8 concurrent /personalize + /predict
// clients over overlapping class sets and requires cache hits on the
// repeats — the serving-layer acceptance scenario (run under -race).
func TestConcurrentHTTPClients(t *testing.T) {
	mux, s, _ := newTestMux(t)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	sets := [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 1, 2}}
	const clients = 8
	const rounds = 4
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				classes := sets[(c+r)%len(sets)]
				if r%2 == 0 {
					var pr struct {
						Key string `json:"key"`
					}
					if code := postJSON(t, srv, "/personalize", map[string]any{"classes": classes}, &pr); code != http.StatusOK {
						t.Errorf("client %d: /personalize status %d", c, code)
						return
					}
					continue
				}
				var pd struct {
					Predictions []int `json:"predictions"`
				}
				if code := postJSON(t, srv, "/predict", map[string]any{"classes": classes, "samples": 6}, &pd); code != http.StatusOK {
					t.Errorf("client %d: /predict status %d", c, code)
					return
				}
				if len(pd.Predictions) != 6 {
					t.Errorf("client %d: %d predictions", c, len(pd.Predictions))
					return
				}
			}
		}(c)
	}
	wg.Wait()

	st := s.Stats()
	if st.Requests != clients*rounds {
		t.Fatalf("requests %d, want %d", st.Requests, clients*rounds)
	}
	if st.Personalizations != uint64(len(sets)) {
		t.Fatalf("personalizations %d, want one per distinct set (%d): %+v", st.Personalizations, len(sets), st)
	}
	if st.CacheHits == 0 {
		t.Fatalf("no cache hits across repeated class sets: %+v", st)
	}
	if fmt.Sprint(st.CacheHits+st.CacheMisses+st.DedupJoins) != fmt.Sprint(st.Requests) {
		t.Fatalf("request accounting inconsistent: %+v", st)
	}
}

// TestInt8ServingHTTP is the -precision int8 acceptance path over HTTP: the
// quantized server personalizes and predicts end to end, reports the
// precision and measured agreement per tenant on /personalize, and exposes
// the fleet-wide agreement telemetry on /stats and /metrics.
func TestInt8ServingHTTP(t *testing.T) {
	mux, _, _ := newTestMuxOpts(t, func(o *serve.Options) { o.Precision = inference.Int8 })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var pr struct {
		Key       string  `json:"key"`
		Precision string  `json:"precision"`
		Agreement float64 `json:"agreement"`
	}
	if code := postJSON(t, srv, "/personalize", map[string]any{"classes": []int{1, 3}}, &pr); code != http.StatusOK {
		t.Fatalf("/personalize status %d", code)
	}
	if pr.Precision != "int8" {
		t.Fatalf("personalize precision %q, want int8", pr.Precision)
	}
	if pr.Agreement <= 0 || pr.Agreement > 1 {
		t.Fatalf("personalize agreement %v outside (0, 1]", pr.Agreement)
	}

	var pd struct {
		Predictions []int `json:"predictions"`
	}
	if code := postJSON(t, srv, "/predict", map[string]any{"classes": []int{1, 3}, "samples": 8}, &pd); code != http.StatusOK {
		t.Fatalf("/predict status %d", code)
	}
	if len(pd.Predictions) != 8 {
		t.Fatalf("%d predictions, want 8", len(pd.Predictions))
	}

	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Precision != "int8" || st.AgreementSamples == 0 {
		t.Fatalf("int8 stats over HTTP: %+v", st)
	}

	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"crisp_serve_precision{mode=\"int8\"} 1\n",
		fmt.Sprintf("crisp_serve_agreement_samples_total %d\n", st.AgreementSamples),
		fmt.Sprintf("crisp_serve_agreement_matches_total %d\n", st.AgreementMatches),
		"crisp_serve_top1_agreement ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestTieredMetricsExposed(t *testing.T) {
	// A one-engine hot tier under a huge budget: the second personalization
	// demotes the first to a warm record, and /metrics must show the tier
	// families moving.
	mux, _, _ := newTestMuxOpts(t, func(o *serve.Options) {
		o.CacheSize = 1
		o.MemoryBudgetBytes = 1 << 40
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, classes := range [][]int{{1, 3}, {0, 2}, {1, 3}} {
		if code := postJSON(t, srv, "/personalize", map[string]any{"classes": classes}, nil); code != http.StatusOK {
			t.Fatalf("/personalize %v status %d", classes, code)
		}
	}
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		fmt.Sprintf("crisp_serve_memory_budget_bytes %d\n", int64(1<<40)),
		"crisp_serve_demotions_total 2\n",
		"crisp_serve_warm_hits_total 1\n",
		"crisp_serve_promotions_total 1\n",
		"crisp_serve_promote_errors_total 0\n",
		"crisp_serve_warm_entries 1\n",
		"crisp_serve_cached_engines 1\n",
		"crisp_serve_shared_plans ",
		"crisp_serve_hot_bytes ",
		"crisp_serve_warm_bytes ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	// The gauges must be live values, not zero placeholders.
	var st serve.Stats
	if code := func() int {
		r, err := srv.Client().Get(srv.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return r.StatusCode
	}(); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if st.HotBytes <= 0 || st.WarmBytes <= 0 || st.SharedPlanRefs <= 0 {
		t.Fatalf("tier gauges not live: %+v", st)
	}
}

// TestHealthz covers the prober contract: a healthy shard reports "ok" with
// its id and live stats, and flips to "draining" after BeginDrain.
func TestHealthz(t *testing.T) {
	mux, s, _ := newTestMux(t)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func() Health {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/healthz status %d", resp.StatusCode)
		}
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	h := get()
	if h.Status != "ok" || h.Draining || h.Shard != "test-shard" {
		t.Fatalf("healthz %+v", h)
	}
	if h.Stats.Workers == 0 {
		t.Fatalf("healthz stats not live: %+v", h.Stats)
	}
	s.BeginDrain()
	if h := get(); h.Status != "draining" || !h.Draining {
		t.Fatalf("post-drain healthz %+v", h)
	}
}

// TestDrainAndHandoffHTTP walks the full shard-to-shard handoff over HTTP:
// personalize on shard A, drain A (manifest + 503s for new tenants), adopt
// the tenant on shard B via /handoff, and verify B serves it from the
// shared store by restore, not a re-prune, with the fingerprint intact.
func TestDrainAndHandoffHTTP(t *testing.T) {
	dir := t.TempDir()
	muxA, sA, _ := newTestMuxSnapshot(t, dir)
	srvA := httptest.NewServer(muxA)
	defer srvA.Close()

	var pr struct {
		Key         string `json:"key"`
		Fingerprint uint64 `json:"fingerprint"`
	}
	if code := postJSON(t, srvA, "/personalize", map[string]any{"classes": []int{1, 3}}, &pr); code != http.StatusOK {
		t.Fatalf("/personalize status %d", code)
	}

	var dr DrainResponse
	if code := postJSON(t, srvA, "/drain", map[string]any{}, &dr); code != http.StatusOK {
		t.Fatalf("/drain status %d", code)
	}
	if dr.Shard != "test-shard" || len(dr.Tenants) != 1 || dr.Tenants[0].Key != "1,3" {
		t.Fatalf("drain manifest %+v", dr)
	}
	if dr.Tenants[0].Fingerprint != pr.Fingerprint {
		t.Fatalf("manifest fingerprint %016x, personalize reported %016x", dr.Tenants[0].Fingerprint, pr.Fingerprint)
	}

	// Draining shard: resident tenants still served, new tenants 503.
	if code := postJSON(t, srvA, "/predict", map[string]any{"classes": []int{1, 3}, "samples": 2}, nil); code != http.StatusOK {
		t.Fatalf("resident predict on draining shard: status %d", code)
	}
	resp, err := srvA.Client().Post(srvA.URL+"/personalize", "application/json", strings.NewReader(`{"classes":[0,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new tenant on draining shard: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Shard B (fresh server, same snapshot dir) adopts via /handoff.
	muxB, sB, _ := newTestMuxSnapshot(t, dir)
	srvB := httptest.NewServer(muxB)
	defer srvB.Close()
	ten := dr.Tenants[0]
	var hr struct {
		Restored bool `json:"restored"`
	}
	if code := postJSON(t, srvB, "/handoff", map[string]any{
		"key": ten.Key, "fingerprint": ten.Fingerprint, "quant_signature": ten.QuantSignature,
	}, &hr); code != http.StatusOK || !hr.Restored {
		t.Fatalf("/handoff status %d restored=%v (stats %+v)", code, hr.Restored, sB.Stats())
	}
	if code := postJSON(t, srvB, "/predict", map[string]any{"classes": []int{1, 3}, "samples": 4}, nil); code != http.StatusOK {
		t.Fatalf("post-handoff predict status %d", code)
	}
	stB := sB.Stats()
	if stB.HandoffRestores != 1 || stB.Personalizations != 0 {
		t.Fatalf("handoff stats %+v (want 1 handoff restore, 0 pruning jobs)", stB)
	}

	// A wrong fingerprint must be refused, not silently adopted.
	if code := postJSON(t, srvB, "/handoff", map[string]any{"key": "0,2", "fingerprint": 12345}, nil); code == http.StatusOK {
		t.Fatal("handoff of an unknown tenant with a bogus fingerprint succeeded")
	}
	_ = sA
}
