package api

import (
	"fmt"
	"io"

	"repro/internal/serve"
)

// WriteMetrics renders the serve.Stats counters in the Prometheus text
// exposition format, including the batch-size distribution as a proper
// cumulative histogram. It backs the shard's GET /metrics; the cluster
// router scrapes the same numbers via /healthz for its per-shard gauges.
func WriteMetrics(w io.Writer, st serve.Stats) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP crisp_serve_%s %s\n# TYPE crisp_serve_%s counter\ncrisp_serve_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP crisp_serve_%s %s\n# TYPE crisp_serve_%s gauge\ncrisp_serve_%s %d\n", name, help, name, name, v)
	}
	counter("requests_total", "Personalize calls, including cache hits.", st.Requests)
	counter("cache_hits_total", "Requests served from the engine cache.", st.CacheHits)
	counter("cache_misses_total", "Requests that started a pruning job.", st.CacheMisses)
	counter("dedup_joins_total", "Requests that joined an in-flight identical job.", st.DedupJoins)
	counter("evictions_total", "Engines dropped by the LRU policy.", st.Evictions)
	counter("personalizations_total", "Completed pruning jobs.", st.Personalizations)
	counter("predict_batches_total", "Engine invocations on the predict path.", st.PredictBatches)
	counter("samples_predicted_total", "Samples served by those invocations.", st.SamplesPredicted)
	counter("rejected_total", "Predicts dropped by admission control (429).", st.Rejected)
	counter("flush_size_total", "Batches flushed by reaching max-batch.", st.FlushSize)
	counter("flush_linger_total", "Batches flushed by the linger timer.", st.FlushLinger)
	counter("flush_forced_total", "Partial batches forced out by a drain.", st.FlushForced)
	counter("flush_deadline_total", "Batches flushed early by a rider's QoS latency budget.", st.FlushDeadline)
	counter("predict_ns_total", "Wall nanoseconds inside predict engine calls.", st.PredictNS)
	counter("snapshot_writes_total", "Personalization records written to disk.", st.SnapshotWrites)
	counter("snapshot_errors_total", "Failed snapshot writes.", st.SnapshotErrors)
	counter("restore_hits_total", "Engines rebuilt from disk instead of re-pruned.", st.RestoreHits)
	counter("restore_errors_total", "Snapshot records that failed to load.", st.RestoreErrors)
	counter("snapshots_quarantined_total", "Corrupt snapshot records moved aside and de-indexed.", st.SnapshotsQuarantined)
	counter("handoff_restores_total", "Tenants adopted from another shard via verified handoff.", st.HandoffRestores)
	counter("handoff_errors_total", "Handoff adoptions that failed (missing record or fingerprint mismatch).", st.HandoffErrors)
	counter("agreement_samples_total", "Held-out samples measured for int8-vs-float top-1 agreement.", st.AgreementSamples)
	counter("agreement_matches_total", "Measured samples whose int8 and float top-1 agreed.", st.AgreementMatches)
	counter("warm_hits_total", "Cache misses resolved by a warm delta record.", st.WarmHits)
	counter("promotions_total", "Warm records promoted back to hot engines.", st.Promotions)
	counter("demotions_total", "Hot engines demoted to warm delta records.", st.Demotions)
	counter("warm_evictions_total", "Warm records dropped to the cold tier for budget.", st.WarmEvictions)
	counter("promote_errors_total", "Warm records that failed promote-time verification.", st.PromoteErrors)
	gauge("cached_engines", "Engines currently in the hot tier.", st.CachedEngines)
	gauge("in_flight", "Personalization jobs currently running.", st.InFlight)
	gauge("queue_depth", "Samples waiting in predict queues.", st.QueueDepth)
	gauge("workers", "Worker pool bound.", st.Workers)
	draining := 0
	if st.Draining {
		draining = 1
	}
	gauge("draining", "1 while this shard is draining (serving residents, accepting no new tenants).", draining)
	gauge64 := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP crisp_serve_%s %s\n# TYPE crisp_serve_%s gauge\ncrisp_serve_%s %d\n", name, help, name, name, v)
	}
	gauge64("memory_budget_bytes", "Configured resident tenant-state budget (0: single-level LRU).", st.MemoryBudgetBytes)
	gauge64("hot_bytes", "Resident bytes of hot compiled engines.", st.HotBytes)
	gauge64("warm_bytes", "Resident bytes of warm delta records.", st.WarmBytes)
	gauge("warm_entries", "Tenants currently held as warm delta records.", st.WarmEntries)
	gauge("cold_records", "Personalization records indexed in the snapshot store.", st.ColdRecords)
	gauge("shared_plans", "Canonical compiled plans in the cross-tenant dedup registry.", st.SharedPlans)
	gauge("shared_plan_refs", "Engine references onto canonical shared plans.", st.SharedPlanRefs)
	gauge64("shared_plan_bytes", "Bytes held once for all engines sharing each canonical plan.", st.SharedPlanBytes)

	// Precision as an info-style gauge (the mode is a label) and the
	// measured agreement ratio as a float gauge.
	fmt.Fprintf(w, "# HELP crisp_serve_precision Engine precision mode (1 for the active mode).\n# TYPE crisp_serve_precision gauge\ncrisp_serve_precision{mode=%q} 1\n", st.Precision)
	fmt.Fprintf(w, "# HELP crisp_serve_top1_agreement Measured int8-vs-float top-1 agreement ratio (1 when unmeasured).\n# TYPE crisp_serve_top1_agreement gauge\ncrisp_serve_top1_agreement %g\n", st.Top1Agreement)

	// QoS load shaping: whether the layer is on, per-class sheds, and the
	// per-class queue-wait distributions (scheduling delay between a predict
	// entering its batch queue and the flush that took it).
	qosEnabled := 0
	if st.QoSEnabled {
		qosEnabled = 1
	}
	gauge("qos_enabled", "1 while QoS load shaping (quotas, deadline flushes) is active.", qosEnabled)
	fmt.Fprintf(w, "# HELP crisp_serve_shed_total Predicts shed for exceeding the tenant's class quota under load (429).\n# TYPE crisp_serve_shed_total counter\n")
	for c := serve.QoSClass(0); c < serve.NumQoSClasses; c++ {
		fmt.Fprintf(w, "crisp_serve_shed_total{class=%q} %d\n", c.String(), st.ShedByClass[c.String()])
	}
	fmt.Fprintf(w, "# HELP crisp_serve_queue_wait_seconds Batch-queue wait per rider, by QoS class.\n# TYPE crisp_serve_queue_wait_seconds histogram\n")
	for c := serve.QoSClass(0); c < serve.NumQoSClasses; c++ {
		qw := st.QueueWait[c.String()]
		cum := uint64(0)
		for i, ms := range serve.QueueWaitBoundsMS {
			cum += qw.Hist[i]
			fmt.Fprintf(w, "crisp_serve_queue_wait_seconds_bucket{class=%q,le=\"%g\"} %d\n", c.String(), ms/1000, cum)
		}
		cum += qw.Hist[len(serve.QueueWaitBoundsMS)]
		fmt.Fprintf(w, "crisp_serve_queue_wait_seconds_bucket{class=%q,le=\"+Inf\"} %d\n", c.String(), cum)
		fmt.Fprintf(w, "crisp_serve_queue_wait_seconds_sum{class=%q} %g\n", c.String(), float64(qw.SumNS)/1e9)
		fmt.Fprintf(w, "crisp_serve_queue_wait_seconds_count{class=%q} %d\n", c.String(), qw.Count)
	}

	// Batch sizes as a cumulative histogram; Stats buckets are per-range.
	fmt.Fprintf(w, "# HELP crisp_serve_batch_size Samples per predict engine invocation.\n# TYPE crisp_serve_batch_size histogram\n")
	bounds := []string{"1", "2", "4", "8", "16", "32", "64", "+Inf"}
	cum := uint64(0)
	for i, le := range bounds {
		cum += st.BatchSizeHist[i]
		fmt.Fprintf(w, "crisp_serve_batch_size_bucket{le=%q} %d\n", le, cum)
	}
	fmt.Fprintf(w, "crisp_serve_batch_size_sum %d\n", st.SamplesPredicted)
	fmt.Fprintf(w, "crisp_serve_batch_size_count %d\n", st.PredictBatches)
}
