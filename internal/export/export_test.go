package export

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/sparsity"
)

// prunedModel returns a CRISP-pruned classifier.
func prunedModel(t *testing.T, f models.Family, target float64) *nn.Classifier {
	t.Helper()
	cfg := data.Config{Name: "exp", NumClasses: 8, Channels: 3, H: 8, W: 8, Noise: 0.25, Jitter: 1, Seed: 9}
	ds := data.New(cfg)
	clf := models.Build(f, rand.New(rand.NewSource(41)), cfg.NumClasses, 1)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	opt := nn.NewSGD(0.05, 0.9, 4e-5)
	pruner.Finetune(clf, ds.MakeSplit("pre", all, 8), 2, 16, opt, rand.New(rand.NewSource(42)))
	p := pruner.NewCRISP(pruner.Options{
		Target: target, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
		Iterations: 2, FinetuneEpochs: 1, BatchSize: 16, LR: 0.01,
	})
	p.Prune(clf, ds.MakeSplit("user", []int{2, 6}, 12))
	return clf
}

func TestSizesCompressionOrdering(t *testing.T) {
	clf := prunedModel(t, models.ResNet, 0.85)
	ms, err := Sizes(clf, 4, sparsity.NM{N: 2, M: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ms.DenseBytes <= 0 {
		t.Fatal("no dense bytes")
	}
	crisp := ms.FormatBytes["crisp"]
	csr := ms.FormatBytes["csr"]
	ell := ms.FormatBytes["ellpack"]
	if !(crisp < csr && csr <= ell) {
		t.Fatalf("ordering violated: crisp %d csr %d ellpack %d", crisp, csr, ell)
	}
	if crisp >= ms.DenseBytes {
		t.Fatalf("compressed (%d) not smaller than dense (%d)", crisp, ms.DenseBytes)
	}
	// At 85% sparsity and 8-bit values the CRISP model should compress
	// several-fold (metadata costs keep it below the 1/0.15 ideal).
	ratio := ms.CompressionRatio("crisp")
	if ratio < 2 || ratio > 8 {
		t.Fatalf("compression ratio %.2f outside [2,8]", ratio)
	}
}

func TestSizesMoreSparsityCompressesMore(t *testing.T) {
	lo := prunedModel(t, models.ResNet, 0.6)
	hi := prunedModel(t, models.ResNet, 0.9)
	msLo, err := Sizes(lo, 4, sparsity.NM{N: 2, M: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	msHi, err := Sizes(hi, 4, sparsity.NM{N: 2, M: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if msHi.FormatBytes["crisp"] >= msLo.FormatBytes["crisp"] {
		t.Fatalf("90%% sparse (%d B) not smaller than 60%% sparse (%d B)",
			msHi.FormatBytes["crisp"], msLo.FormatBytes["crisp"])
	}
}

func TestSizesDepthwiseFallback(t *testing.T) {
	clf := prunedModel(t, models.MobileNet, 0.8)
	ms, err := Sizes(clf, 4, sparsity.NM{N: 2, M: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	foundFallback := false
	for _, ls := range ms.Layers {
		if ls.Fallback {
			foundFallback = true
			if ls.FormatBytes["crisp"] != ls.FormatBytes["csr"] {
				t.Fatalf("fallback layer %s crisp bytes != csr bytes", ls.Name)
			}
		}
	}
	if !foundFallback {
		t.Fatal("MobileNet depthwise layers should fall back")
	}
}

func TestSizesLayerAccounting(t *testing.T) {
	clf := prunedModel(t, models.VGG, 0.8)
	ms, err := Sizes(clf, 4, sparsity.NM{N: 2, M: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Layers) != len(clf.PrunableParams()) {
		t.Fatalf("%d layer rows for %d prunable params", len(ms.Layers), len(clf.PrunableParams()))
	}
	// Totals must equal the sum of parts plus the dense non-prunables.
	var sumCrisp, sumDense int64
	for _, ls := range ms.Layers {
		sumCrisp += ls.FormatBytes["crisp"]
		sumDense += ls.DenseBytes
	}
	nonPrunable := ms.DenseBytes - sumDense
	if nonPrunable < 0 {
		t.Fatalf("negative non-prunable bytes")
	}
	if ms.FormatBytes["crisp"] != sumCrisp+nonPrunable {
		t.Fatalf("total %d != parts %d + dense %d", ms.FormatBytes["crisp"], sumCrisp, nonPrunable)
	}
}
