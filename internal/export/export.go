// Package export measures the deployed size of a pruned model: every
// prunable weight matrix is encoded in the candidate storage formats (CRISP
// hybrid, CSR, ELLPACK) and the totals are compared against the dense
// model — the paper's "minimal memory consumption" claim, quantified.
//
// Non-prunable parameters (biases, norm parameters, the classifier head)
// are charged at dense size in every format. Block-exempt layers
// (depthwise kernels) cannot use the CRISP block structure and fall back to
// CSR within the "crisp" total.
package export

import (
	"fmt"

	"repro/internal/format"
	"repro/internal/nn"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// LayerSize is the per-layer accounting.
type LayerSize struct {
	Name       string
	Rows, Cols int
	// DenseBytes is rows×cols×valueBits/8.
	DenseBytes int64
	// FormatBytes maps format name → metadata+data bytes.
	FormatBytes map[string]int64
	// Fallback marks layers whose "crisp" entry used CSR (block-exempt).
	Fallback bool
}

// ModelSize aggregates the model.
type ModelSize struct {
	Layers []LayerSize
	// DenseBytes covers every parameter at dense precision.
	DenseBytes int64
	// FormatBytes maps format name → total deployed bytes (compressed
	// prunable weights + dense non-prunable parameters).
	FormatBytes map[string]int64
}

// CompressionRatio returns dense/total for the named format.
func (m ModelSize) CompressionRatio(name string) float64 {
	b := m.FormatBytes[name]
	if b == 0 {
		return 0
	}
	return float64(m.DenseBytes) / float64(b)
}

// Sizes encodes clf's current masked weights at the given block size, N:M
// pattern and value precision. The masks of non-exempt prunable layers must
// satisfy the hybrid invariants (as produced by the CRISP pruner).
func Sizes(clf *nn.Classifier, blockSize int, nm sparsity.NM, valueBits int) (ModelSize, error) {
	out := ModelSize{FormatBytes: map[string]int64{"crisp": 0, "csr": 0, "ellpack": 0}}

	// Dense-cost parameters: everything that is not prunable.
	var nonPrunableBytes int64
	for _, p := range clf.Params() {
		if !p.Prunable {
			nonPrunableBytes += int64(p.W.Len()) * int64(valueBits) / 8
		}
	}
	out.DenseBytes += nonPrunableBytes
	for k := range out.FormatBytes {
		out.FormatBytes[k] += nonPrunableBytes
	}

	for _, p := range clf.PrunableParams() {
		masked := tensor.Mul(p.MatrixView(), p.MaskMatrixView())
		ls := LayerSize{
			Name: p.Name, Rows: p.Rows, Cols: p.Cols,
			DenseBytes:  int64(p.W.Len()) * int64(valueBits) / 8,
			FormatBytes: map[string]int64{},
		}
		csr := format.EncodeCSR(masked)
		ls.FormatBytes["csr"] = (csr.MetadataBits() + csr.DataBits(valueBits)) / 8
		ell := format.EncodeELLPACK(masked)
		ls.FormatBytes["ellpack"] = (ell.MetadataBits() + ell.DataBits(valueBits)) / 8
		if p.BlockExempt {
			ls.FormatBytes["crisp"] = ls.FormatBytes["csr"]
			ls.Fallback = true
		} else {
			cr, err := format.EncodeCRISP(masked, blockSize, nm)
			if err != nil {
				return ModelSize{}, fmt.Errorf("export: layer %s: %w", p.Name, err)
			}
			ls.FormatBytes["crisp"] = (cr.MetadataBits() + cr.DataBits(valueBits)) / 8
		}
		out.DenseBytes += ls.DenseBytes
		for k, v := range ls.FormatBytes {
			out.FormatBytes[k] += v
		}
		out.Layers = append(out.Layers, ls)
	}
	return out, nil
}
