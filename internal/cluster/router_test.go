package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/serve"
)

// stubShard fakes a crisp-serve shard: just enough of the HTTP surface for
// the router's placement, probing, failover, and drain orchestration to be
// tested without pruning a single model.
type stubShard struct {
	id string
	ts *httptest.Server

	draining atomic.Bool
	predicts atomic.Int64

	mu          sync.Mutex
	manifest    []serve.HandoffTenant
	handoffs    []api.HandoffRequest
	handoffGate chan struct{} // non-nil: /handoff blocks until closed
}

func newStubShard(t *testing.T, id string) *stubShard {
	t.Helper()
	sh := &stubShard{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := api.Health{Status: "ok", Shard: id, Draining: sh.draining.Load()}
		if h.Draining {
			h.Status = "draining"
		}
		h.Stats.CachedEngines = 1
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		sh.predicts.Add(1)
		json.NewEncoder(w).Encode(map[string]any{"shard": id})
	})
	mux.HandleFunc("POST /personalize", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"shard": id})
	})
	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		sh.draining.Store(true)
		sh.mu.Lock()
		m := sh.manifest
		sh.mu.Unlock()
		json.NewEncoder(w).Encode(api.DrainResponse{Shard: id, Tenants: m})
	})
	mux.HandleFunc("POST /handoff", func(w http.ResponseWriter, r *http.Request) {
		var req api.HandoffRequest
		json.NewDecoder(r.Body).Decode(&req)
		sh.mu.Lock()
		gate := sh.handoffGate
		sh.mu.Unlock()
		if gate != nil {
			<-gate
		}
		sh.mu.Lock()
		sh.handoffs = append(sh.handoffs, req)
		sh.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"key": req.Key, "restored": true})
	})
	sh.ts = httptest.NewServer(mux)
	t.Cleanup(sh.ts.Close)
	return sh
}

func (sh *stubShard) addr() string { return sh.ts.Listener.Addr().String() }

// newStubCluster wires n stub shards behind a fast-probing router and
// returns the router, its HTTP front end, and the stubs by id.
func newStubCluster(t *testing.T, n int) (*Router, *httptest.Server, map[string]*stubShard) {
	t.Helper()
	rt := NewRouter(Options{
		ProbeInterval:  20 * time.Millisecond,
		FailThreshold:  2,
		PredictRetries: 3,
		RetryBackoff:   10 * time.Millisecond,
	})
	stubs := make(map[string]*stubShard, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i+1)
		sh := newStubShard(t, id)
		stubs[id] = sh
		rt.AddShard(id, sh.addr())
	}
	rt.Start()
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Mux())
	t.Cleanup(front.Close)
	return rt, front, stubs
}

func postBody(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	b, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(b, &out)
	return resp, out
}

func TestCanonKey(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, ""},
		{[]int{3}, "3"},
		{[]int{3, 1, 3, 1}, "1,3"},
		{[]int{5, 0, 2}, "0,2,5"},
		{[]int{7, 7, 7}, "7"},
	}
	for _, tc := range cases {
		if got := canonKey(tc.in); got != tc.want {
			t.Fatalf("canonKey(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRouterProxiesToOwner(t *testing.T) {
	rt, front, stubs := newStubCluster(t, 3)
	for _, classes := range [][]int{{1, 3}, {0, 2}, {2, 4, 5}, {1}} {
		key := canonKey(classes)
		owner, ok := rt.LookupShard(key)
		if !ok {
			t.Fatalf("no owner for %q", key)
		}
		body, _ := json.Marshal(map[string]any{"classes": classes, "samples": 2})
		resp, out := postBody(t, front.URL+"/predict", string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %q: status %d", key, resp.StatusCode)
		}
		if out["shard"] != owner {
			t.Fatalf("predict %q served by %v, ring says %q", key, out["shard"], owner)
		}
		// Duplicate/unsorted class sets are the same tenant: same owner.
		rev := append([]int(nil), classes...)
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		body, _ = json.Marshal(map[string]any{"classes": append(rev, classes[0])})
		if _, out := postBody(t, front.URL+"/predict", string(body)); out["shard"] != owner {
			t.Fatalf("non-canonical class order moved tenant %q to %v", key, out["shard"])
		}
	}
	if stubs["s1"].predicts.Load()+stubs["s2"].predicts.Load()+stubs["s3"].predicts.Load() == 0 {
		t.Fatal("no stub saw a predict")
	}
}

// TestRouterPredictFailover: killing the owner mid-traffic reroutes the
// predict to a survivor on the same request — connection errors mark the
// shard down immediately, the retry re-looks-up the ring.
func TestRouterPredictFailover(t *testing.T) {
	rt, front, stubs := newStubCluster(t, 3)
	key := canonKey([]int{1, 3})
	owner, _ := rt.LookupShard(key)
	stubs[owner].ts.CloseClientConnections()
	stubs[owner].ts.Close()

	resp, out := postBody(t, front.URL+"/predict", `{"classes":[1,3],"samples":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover predict: status %d", resp.StatusCode)
	}
	if out["shard"] == owner {
		t.Fatalf("predict still served by dead shard %q", owner)
	}
	if rt.ring.Has(owner) {
		t.Fatal("dead shard still on the ring")
	}
	if newOwner, _ := rt.LookupShard(key); newOwner != out["shard"] {
		t.Fatalf("served by %v but ring says %q", out["shard"], newOwner)
	}

	// The router's own metrics record the event.
	resp2, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	for _, want := range []string{
		"crisp_router_retries_total 1",
		"crisp_router_shard_drops_total 1",
		fmt.Sprintf("crisp_router_shard_state{shard=%q} 2", owner),
		"crisp_router_ring_shards 2",
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("metrics missing %q:\n%s", want, b)
		}
	}
}

// TestRouterPersonalizeNotRetried: personalizations are not idempotent, so
// the router gives them one attempt (502 on failure) — but the failed
// attempt still marks the shard down, so the client's own retry lands on a
// survivor.
func TestRouterPersonalizeNotRetried(t *testing.T) {
	rt, front, stubs := newStubCluster(t, 3)
	key := canonKey([]int{2, 4})
	owner, _ := rt.LookupShard(key)
	stubs[owner].ts.CloseClientConnections()
	stubs[owner].ts.Close()

	resp, _ := postBody(t, front.URL+"/personalize", `{"classes":[2,4]}`)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("personalize to dead shard: status %d, want 502", resp.StatusCode)
	}
	resp, out := postBody(t, front.URL+"/personalize", `{"classes":[2,4]}`)
	if resp.StatusCode != http.StatusOK || out["shard"] == owner {
		t.Fatalf("client retry: status %d shard %v", resp.StatusCode, out["shard"])
	}
}

// TestRouterDrainMovesTenantsAnd503 drives the drain orchestration against
// stubs, holding the handoff open long enough to observe the mid-handoff
// window: predicts for a moving tenant get 503 + Retry-After, and once the
// handoff lands the tenant serves from its new owner.
func TestRouterDrainMovesTenantsAnd503(t *testing.T) {
	rt, front, stubs := newStubCluster(t, 3)
	key := canonKey([]int{1, 3})
	owner, _ := rt.LookupShard(key)
	victim := stubs[owner]
	victim.mu.Lock()
	victim.manifest = []serve.HandoffTenant{{Key: key, Classes: []int{1, 3}, Fingerprint: 0xabcd}}
	victim.mu.Unlock()
	gate := make(chan struct{})
	for _, sh := range stubs {
		sh.mu.Lock()
		sh.handoffGate = gate
		sh.mu.Unlock()
	}

	drained := make(chan error, 1)
	go func() {
		moved, errs, err := rt.DrainShard(owner)
		if err == nil && (moved != 1 || len(errs) != 0) {
			err = fmt.Errorf("moved=%d errs=%v", moved, errs)
		}
		drained <- err
	}()

	// While the tenant is mid-handoff the router must say "come back",
	// not route the request anywhere.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := postBody(t, front.URL+"/predict", `{"classes":[1,3]}`)
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never observed the mid-handoff 503")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	newOwner, _ := rt.LookupShard(key)
	if newOwner == owner {
		t.Fatal("drained shard still owns the tenant")
	}
	target := stubs[newOwner]
	target.mu.Lock()
	handoffs := append([]api.HandoffRequest(nil), target.handoffs...)
	target.mu.Unlock()
	if len(handoffs) != 1 || handoffs[0].Key != key || handoffs[0].Fingerprint != 0xabcd {
		t.Fatalf("handoff requests %+v", handoffs)
	}
	resp, out := postBody(t, front.URL+"/predict", `{"classes":[1,3]}`)
	if resp.StatusCode != http.StatusOK || out["shard"] != newOwner {
		t.Fatalf("post-drain predict: status %d shard %v", resp.StatusCode, out["shard"])
	}
	// The drained shard's own /healthz keeps saying draining, so the
	// prober must not re-add it.
	time.Sleep(100 * time.Millisecond)
	if rt.ring.Has(owner) {
		t.Fatal("prober re-added a drained shard")
	}
	if st := rt.shards[owner].State(); st != ShardDrained {
		t.Fatalf("drained shard state %v", st)
	}
}

// TestProberDropAndRevive: the probe loop takes an unreachable shard off
// the ring after FailThreshold misses and restores it when a fresh process
// answers on the same address.
func TestProberDropAndRevive(t *testing.T) {
	rt, _, stubs := newStubCluster(t, 3)
	victim := stubs["s2"]
	addr := victim.addr()
	victim.ts.CloseClientConnections()
	victim.ts.Close()

	waitFor(t, 5*time.Second, "prober never dropped the dead shard", func() bool {
		return !rt.ring.Has("s2")
	})

	// A fresh (non-draining) process on the same address rejoins.
	ln := relisten(t, addr)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.Health{Status: "ok", Shard: "s2"})
	})
	ts2 := &httptest.Server{Listener: ln, Config: &http.Server{Handler: mux}}
	ts2.Start()
	t.Cleanup(ts2.Close)

	waitFor(t, 5*time.Second, "prober never revived the recovered shard", func() bool {
		return rt.ring.Has("s2") && rt.shards["s2"].State() == ShardUp
	})
}

func TestRouterBadRequests(t *testing.T) {
	_, front, _ := newStubCluster(t, 1)
	for _, tc := range []struct {
		path, body string
	}{
		{"/predict", `{"classes":[]}`},
		{"/predict", `not json`},
		{"/personalize", `{"classes":[]}`},
		{"/drain", `{}`},
		{"/drain", `{"shard":"nope"}`},
	} {
		resp, _ := postBody(t, front.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s %q: status %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
}

// TestRouterEmptyRing: with every shard gone the router answers 503 with
// Retry-After instead of hanging or crashing.
func TestRouterEmptyRing(t *testing.T) {
	_, front, stubs := newStubCluster(t, 1)
	stubs["s1"].ts.CloseClientConnections()
	stubs["s1"].ts.Close()
	// First predict marks the shard down (then retries into the empty
	// ring); from then on the 503 is immediate.
	resp, _ := postBody(t, front.URL+"/predict", `{"classes":[1,3]}`)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("empty-ring predict: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

func waitFor(t *testing.T, d time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// relisten rebinds addr, retrying briefly — the old listener's port can
// take a moment to free.
func relisten(t *testing.T, addr string) net.Listener {
	t.Helper()
	var err error
	for i := 0; i < 100; i++ {
		var ln net.Listener
		if ln, err = net.Listen("tcp", addr); err == nil {
			return ln
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("rebinding %s: %v", addr, err)
	return nil
}
