package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/api"
)

// DrainShard orchestrates one shard's graceful exit:
//
//  1. Take the shard off the ring and mark it Draining, so no new tenant
//     is placed on it while it empties.
//  2. POST its /drain: the shard stops accepting unknown tenants, flushes
//     every resident to the shared snapshot store, and returns the handoff
//     manifest (key + fingerprint per tenant).
//  3. For each manifest tenant: mark the key moving (predicts see 503 +
//     Retry-After for the instant the tenant has no committed owner), ask
//     the ring for the new owner, POST its /handoff so it restores the
//     tenant from the shared store and verifies the fingerprint, then
//     unmark.
//  4. Mark the shard Drained. Its process keeps serving residents until
//     shut down, and its /healthz keeps reporting draining=true so the
//     prober never re-adds it.
//
// A failed handoff is not a lost tenant: the drain already made the record
// durable, so the new owner restores it lazily on first touch. The failure
// is still reported (and counted) — the router must know verification was
// skipped.
func (rt *Router) DrainShard(id string) (moved int, errs []string, err error) {
	rt.mu.RLock()
	sh, ok := rt.shards[id]
	rt.mu.RUnlock()
	if !ok {
		return 0, nil, fmt.Errorf("cluster: unknown shard %q", id)
	}

	sh.mu.Lock()
	sh.state = ShardDraining
	sh.mu.Unlock()
	rt.ring.Remove(id)

	dr, err := rt.requestDrain(sh)
	if err != nil {
		// The shard is unreachable or refused; it stays off the ring and
		// lazy failover covers its tenants. Surface the failure.
		return 0, nil, fmt.Errorf("cluster: draining shard %s: %w", id, err)
	}

	for _, tn := range dr.Tenants {
		rt.setMoving(tn.Key, true)
		target, ok := rt.shardFor(tn.Key)
		if !ok || target.ID == id {
			rt.setMoving(tn.Key, false)
			rt.handoffErrors.Add(1)
			errs = append(errs, fmt.Sprintf("%s: no surviving owner", tn.Key))
			continue
		}
		if err := rt.requestHandoff(target, tn.Key, tn.Fingerprint, tn.QuantSignature); err != nil {
			rt.setMoving(tn.Key, false)
			rt.handoffErrors.Add(1)
			errs = append(errs, fmt.Sprintf("%s -> %s: %v", tn.Key, target.ID, err))
			continue
		}
		rt.setMoving(tn.Key, false)
		rt.handoffsMoved.Add(1)
		moved++
	}

	sh.mu.Lock()
	sh.state = ShardDrained
	sh.mu.Unlock()
	return moved, errs, nil
}

func (rt *Router) requestDrain(sh *Shard) (api.DrainResponse, error) {
	var dr api.DrainResponse
	resp, err := rt.client.Post("http://"+sh.Addr+"/drain", "application/json", nil)
	if err != nil {
		return dr, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return dr, fmt.Errorf("drain status %d: %s", resp.StatusCode, readError(resp.Body))
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return dr, fmt.Errorf("decoding drain manifest: %w", err)
	}
	return dr, nil
}

func (rt *Router) requestHandoff(target *Shard, key string, fp, qsig uint64) error {
	body, err := json.Marshal(api.HandoffRequest{Key: key, Fingerprint: fp, QuantSignature: qsig})
	if err != nil {
		return err
	}
	resp, err := rt.client.Post("http://"+target.Addr+"/handoff", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("handoff status %d: %s", resp.StatusCode, readError(resp.Body))
	}
	return nil
}

// readError pulls the {"error": ...} body a shard attaches to failures,
// for diagnostics; body read errors just truncate the message.
func readError(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(b))
}
