package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVirtualNodes is the per-shard vnode count when the caller does not
// choose one. 64 points per shard keeps the max/min load ratio across a
// handful of shards within a few percent while the ring stays small enough
// to rebuild on every membership change.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over shard ids. Each shard contributes
// vnodes points (FNV-64a of "id#k"); a tenant key maps to the shard owning
// the first point clockwise from the key's hash. Adding or removing one
// shard moves only the keys in that shard's arcs — the property the cluster
// leans on so a shard failure re-places ~1/N of tenants instead of
// reshuffling everyone.
//
// Membership changes rebuild the sorted point slice (O(total vnodes) — tiny
// for realistic shard counts) under a write lock; lookups take a read lock
// and binary-search, so the predict proxy path never contends with itself.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	nodes  map[string]struct{}
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given vnodes per shard (<= 0 means
// DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// hashKey is FNV-64a plus a murmur-style finalizer. Raw FNV mixes each
// byte with a single multiply, so strings differing only near the end
// ("s3#0".."s3#63") keep correlated high bits and a shard's vnodes clump
// together on the ring; the finalizer's shift-xor-multiply rounds spread
// them, which is what makes 64 vnodes enough for a few-percent balance.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a shard's vnodes. Idempotent.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for k := 0; k < r.vnodes; k++ {
		r.points = append(r.points, ringPoint{hashKey(node + "#" + strconv.Itoa(k)), node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a shard's vnodes. Idempotent.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Lookup returns the shard owning key, or ok=false on an empty ring.
func (r *Ring) Lookup(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].node, true
}

// Has reports whether the shard is currently on the ring.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.nodes[node]
	return ok
}

// Nodes returns the shards on the ring, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
