// Package cluster scales CRISP serving horizontally: a consistent-hash
// router in front of N shard processes, each an ordinary crisp-serve
// sharing one snapshot store.
//
// # Why sharding is cheap here
//
// CRISP's property — every tenant is a pruned-down view of the same
// universal model — makes tenant state small and portable: a tenant is
// fully described by its snapshot record (class set + model delta), and
// restoring that record on any shard reproduces the engine bit for bit
// (identical structural fingerprint, identical logits; on int8 servers the
// quant signature pins the codes too). So the cluster never copies live
// state between shards. Placement is just a hash ring, and every transfer
// is "write the record to the shared store, restore it over there" — the
// same code path a single server uses across restarts.
//
// # Pieces
//
//   - Ring: consistent hash (FNV-64a, virtual nodes) from canonical tenant
//     key ("1,3,17") to shard id. Membership changes move only the lost
//     shard's arcs.
//   - Membership: each shard is Up, Draining, Down, or Drained. A prober
//     polls every shard's /healthz; FailThreshold consecutive failures
//     take it off the ring, a later success puts it back (unless it
//     reports draining — a drained husk must not rejoin). The proxy path
//     short-circuits the threshold on connection errors.
//   - Router: proxies /personalize and /predict to the owner. Predicts are
//     idempotent and retry with exponential backoff after re-looking up the
//     owner; personalizations get one attempt and the client owns the
//     retry. While a tenant is mid-handoff the router answers 503 with
//     Retry-After.
//
// # Failure and exit paths
//
// Crash (kill -9, machine loss): the proxy's next connection error — or
// the prober's threshold — removes the shard; the ring re-places its
// tenants onto survivors, and each survivor restores a tenant from the
// shared snapshot store on first touch (serve's miss path refreshes the
// store index before ever considering a re-prune). Nothing is lost as long
// as the snapshots were flushed; the write-behind keeps that window to the
// last completed personalization.
//
// Graceful exit (POST /drain to the router): the shard is taken off the
// ring, drains its batches, flushes every resident tenant, and returns a
// manifest; the router hands each tenant to its new owner via POST
// /handoff, which restores from the shared store and verifies the
// fingerprint the old owner reported. Tenants are briefly "moving" (503 +
// Retry-After) but never lost and never re-pruned.
//
// # Failure modes
//
// What the router does for each failure shape it can observe, and what the
// failure costs. "Conclusive" failures prove the process is gone;
// "inconclusive" ones (a wedged worker, a flaky link) only count toward the
// circuit breaker, because evicting a shard on one blip would churn the
// ring for nothing.
//
//	failure observed          classification  router response                        cost to tenants
//	------------------------  --------------  -------------------------------------  ------------------------------
//	connection refused /      conclusive      markDown immediately; ring re-places;  one failed attempt, then
//	dial error                                retry lands on a survivor              restore-on-touch (no re-prune)
//	request deadline          inconclusive    count toward BreakerThreshold; retry   latency of the deadline; trips
//	exceeded (wedged shard)                   same owner until the breaker trips     breaker after N consecutive
//	connection reset          inconclusive    same as deadline — the request may     one retry round trip
//	mid-exchange                              have been processed; only predicts
//	                                          (idempotent) are retried
//	black-hole partition      inconclusive    per-request deadlines bound every      bounded by the QoS-derived
//	(no RST, just silence)    (until probes   attempt; breaker + failed probes       deadline, then failover
//	                          fail)           converge on Down within FailThreshold
//	probe failures            conclusive      off the ring at FailThreshold; lazy    none if snapshots flushed
//	(FailThreshold in a row)  after N         restore on survivors
//	corrupt snapshot record   disk fault      shard-side: checksum fails closed,     exactly one re-prune for that
//	(bit rot, torn write)                     record quarantined + de-indexed        tenant; peers' records kept
//	shard-side 503            draining        immediate re-probe, then retry —       one extra round trip
//	(draining owner)                          the ring sheds the drainer first
//	429 (over quota /         not a failure   relayed to the client unchanged —      client-owned backoff
//	shed load)                                retrying elsewhere would dodge the
//	                                          tenant's own quota bucket
//
// Per-request deadlines derive from the tenant's QoS class (learned from
// proxied /personalize bodies): deadline = latency budget × BudgetScale,
// clamped to [PredictFloor, PredictTimeout]. A gold tenant fails over in
// hundreds of milliseconds while a batch tenant tolerates a slow shard —
// the same budget arithmetic the shard's batcher runs, reused as the
// cluster's impatience.
//
// cmd/crisp-router is the binary; internal/cluster/e2e_test.go drives a
// router plus three real in-process shards through kill, lazy failover,
// rejoin, and drain under concurrent load (with seeded network faults when
// CRISP_E2E_FAULTS is set). cmd/crisp-chaos replays Zipf traffic through a
// live cluster under a seeded storm — partition, record corruption, crash,
// restart — and fails CI unless recovery is exact: zero lost tenants, one
// quarantine, one re-prune, bit-identical logits.
package cluster
