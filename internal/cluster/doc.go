// Package cluster scales CRISP serving horizontally: a consistent-hash
// router in front of N shard processes, each an ordinary crisp-serve
// sharing one snapshot store.
//
// # Why sharding is cheap here
//
// CRISP's property — every tenant is a pruned-down view of the same
// universal model — makes tenant state small and portable: a tenant is
// fully described by its snapshot record (class set + model delta), and
// restoring that record on any shard reproduces the engine bit for bit
// (identical structural fingerprint, identical logits; on int8 servers the
// quant signature pins the codes too). So the cluster never copies live
// state between shards. Placement is just a hash ring, and every transfer
// is "write the record to the shared store, restore it over there" — the
// same code path a single server uses across restarts.
//
// # Pieces
//
//   - Ring: consistent hash (FNV-64a, virtual nodes) from canonical tenant
//     key ("1,3,17") to shard id. Membership changes move only the lost
//     shard's arcs.
//   - Membership: each shard is Up, Draining, Down, or Drained. A prober
//     polls every shard's /healthz; FailThreshold consecutive failures
//     take it off the ring, a later success puts it back (unless it
//     reports draining — a drained husk must not rejoin). The proxy path
//     short-circuits the threshold on connection errors.
//   - Router: proxies /personalize and /predict to the owner. Predicts are
//     idempotent and retry with exponential backoff after re-looking up the
//     owner; personalizations get one attempt and the client owns the
//     retry. While a tenant is mid-handoff the router answers 503 with
//     Retry-After.
//
// # Failure and exit paths
//
// Crash (kill -9, machine loss): the proxy's next connection error — or
// the prober's threshold — removes the shard; the ring re-places its
// tenants onto survivors, and each survivor restores a tenant from the
// shared snapshot store on first touch (serve's miss path refreshes the
// store index before ever considering a re-prune). Nothing is lost as long
// as the snapshots were flushed; the write-behind keeps that window to the
// last completed personalization.
//
// Graceful exit (POST /drain to the router): the shard is taken off the
// ring, drains its batches, flushes every resident tenant, and returns a
// manifest; the router hands each tenant to its new owner via POST
// /handoff, which restores from the shared store and verifies the
// fingerprint the old owner reported. Tenants are briefly "moving" (503 +
// Retry-After) but never lost and never re-pruned.
//
// cmd/crisp-router is the binary; internal/cluster/e2e_test.go drives a
// router plus three real in-process shards through kill, lazy failover,
// rejoin, and drain under concurrent load.
package cluster
