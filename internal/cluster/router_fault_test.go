package cluster

// Fault-injection tests for the proxy path's hardening: the circuit breaker
// on inconclusive failures, QoS-budget-derived per-request deadlines, and
// the cancellable retry backoff. Network faults come from fault.RoundTripper
// so the failures are the real error shapes (ECONNRESET, context deadline),
// not hand-rolled sentinels.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/fault"
)

// TestBreakerTripsOnResets: connection resets are inconclusive — no single
// one may evict a shard, but BreakerThreshold consecutive ones must. The
// fault layer resets every /predict while /personalize flows untouched,
// which also pins the Paths filter end to end.
func TestBreakerTripsOnResets(t *testing.T) {
	frt := fault.NewRoundTripper(nil, fault.NewInjector(3), fault.NetFaults{
		ResetProb: 1, Paths: []string{"/predict"},
	})
	rt := NewRouter(Options{
		PredictRetries:   2,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 3,
		Client:           &http.Client{Transport: frt},
	})
	sh := newStubShard(t, "s1")
	rt.AddShard("s1", sh.addr())
	// No Start(): a probe success would legitimately reset the breaker and
	// revive the shard mid-assertion.
	front := httptest.NewServer(rt.Mux())
	t.Cleanup(front.Close)

	// 3 attempts, 3 resets: the third trips the breaker.
	resp, _ := postBody(t, front.URL+"/predict", `{"classes":[1,3]}`)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("predict through resets: status %d, want 502", resp.StatusCode)
	}
	if got := rt.breakerTrips.Load(); got != 1 {
		t.Fatalf("breaker trips = %d, want 1", got)
	}
	if st := rt.shards["s1"].State(); st != ShardDown {
		t.Fatalf("tripped shard state %v, want down", st)
	}
	if rt.ring.Has("s1") {
		t.Fatal("tripped shard still on the ring")
	}
	if frt.Resets.Load() != 3 {
		t.Fatalf("resets fired = %d, want 3", frt.Resets.Load())
	}

	// A probe success heals: breaker cleared, shard revived.
	rt.probeOnce(rt.shards["s1"])
	if st := rt.shards["s1"].State(); st != ShardUp || !rt.ring.Has("s1") {
		t.Fatalf("probe did not revive tripped shard (state %v)", st)
	}

	// The storm only covers /predict: personalize flows normally.
	resp, out := postBody(t, front.URL+"/personalize", `{"classes":[1,3]}`)
	if resp.StatusCode != http.StatusOK || out["shard"] != "s1" {
		t.Fatalf("personalize during predict storm: status %d out %v", resp.StatusCode, out)
	}

	metrics := httptest.NewRecorder()
	rt.writeMetrics(metrics.Body)
	if !strings.Contains(metrics.Body.String(), "crisp_router_breaker_trips_total 1") {
		t.Fatalf("metrics missing breaker trips:\n%s", metrics.Body.String())
	}
}

// slowShard answers /healthz normally and hangs /predict until the request
// context dies — a wedged worker, the case a blanket client timeout used to
// cover only after five minutes.
func newSlowShard(t *testing.T, id string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.Health{Status: "ok", Shard: id})
	})
	mux.HandleFunc("POST /personalize", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"shard": id})
	})
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's disconnect watcher arms and the
		// handler (and the test's server shutdown) unblocks the moment the
		// router abandons the request.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(30 * time.Second):
		}
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestPredictDeadlineFromQoSBudget: after a gold personalize teaches the
// router the tenant's class, a predict against a wedged shard must fail at
// the budget-derived deadline (~PredictFloor here), not the 5s ceiling —
// and the timeout must be counted and feed the breaker.
func TestPredictDeadlineFromQoSBudget(t *testing.T) {
	rt := NewRouter(Options{
		PredictRetries:   -1, // single attempt
		PredictTimeout:   5 * time.Second,
		PredictFloor:     50 * time.Millisecond,
		BudgetScale:      1, // gold: 10ms × 1 → clamped up to the 50ms floor
		BreakerThreshold: 1,
	})
	ts := newSlowShard(t, "s1")
	rt.AddShard("s1", strings.TrimPrefix(ts.URL, "http://"))
	front := httptest.NewServer(rt.Mux())
	t.Cleanup(front.Close)

	resp, _ := postBody(t, front.URL+"/personalize", `{"classes":[1,3],"qos":"gold"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("personalize: status %d", resp.StatusCode)
	}

	start := time.Now()
	resp, _ = postBody(t, front.URL+"/predict", `{"classes":[1,3]}`)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("predict against wedged shard: status %d, want 502", resp.StatusCode)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline took %v; QoS budget (~50ms) was not applied", elapsed)
	}
	if rt.proxyTimeouts.Load() == 0 {
		t.Fatal("deadline hit but proxy_timeouts_total did not move")
	}
	if rt.breakerTrips.Load() == 0 || rt.shards["s1"].State() != ShardDown {
		t.Fatal("timeout did not feed the breaker")
	}
}

// TestSleepBackoffCancellable: a retry backoff must end early when the
// client's request context dies or the router shuts down — under a
// partition storm, goroutines sleeping toward dead clients are a leak.
func TestSleepBackoffCancellable(t *testing.T) {
	rt := NewRouter(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if rt.sleepBackoff(ctx, time.Minute) {
		t.Fatal("backoff survived a dead request context")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled backoff still slept")
	}

	rt2 := NewRouter(Options{})
	rt2.Close()
	start = time.Now()
	if rt2.sleepBackoff(context.Background(), time.Minute) {
		t.Fatal("backoff survived router shutdown")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("shutdown backoff still slept")
	}
}
