package cluster

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/data"
	"repro/internal/fault"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/serve"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// e2eRouterOptions is the router config both scenarios share. Setting
// CRISP_E2E_FAULTS (the CI e2e job does) additionally runs the whole suite
// over a flaky network: a seeded light fault schedule injecting latency and
// connection resets into /predict proxies. The assertions do not change —
// predicts are idempotent and absorbing exactly this is the router's job.
func e2eRouterOptions() Options {
	opts := Options{
		ProbeInterval:  50 * time.Millisecond,
		FailThreshold:  2,
		PredictRetries: 3,
		RetryBackoff:   20 * time.Millisecond,
	}
	if os.Getenv("CRISP_E2E_FAULTS") != "" {
		frt := fault.NewRoundTripper(nil, fault.NewInjector(443), fault.NetFaults{
			LatencyProb: 0.05, Latency: 30 * time.Millisecond,
			ResetProb: 0.03,
			Paths:     []string{"/predict"},
		})
		opts.Client = &http.Client{Transport: frt}
	}
	return opts
}

// e2eEnv is the shared cluster fixture: one tiny dataset and one lightly
// pre-trained universal model; every shard (including restarted ones)
// builds its serve.Server from these, exactly as a real fleet would deploy
// the same universal checkpoint everywhere.
type e2eEnv struct {
	ds    *data.Dataset
	build func() *nn.Classifier
	base  *nn.Classifier
}

var e2eShared = sync.OnceValue(func() *e2eEnv {
	cfg := data.Config{Name: "cluster-e2e", NumClasses: 6, Channels: 3, H: 8, W: 8, Noise: 0.25, Jitter: 1, Seed: 17}
	ds := data.New(cfg)
	build := func() *nn.Classifier {
		return models.Build(models.ResNet, rand.New(rand.NewSource(91)), cfg.NumClasses, 1)
	}
	base := build()
	opt := nn.NewSGD(0.05, 0.9, 4e-5)
	pruner.Finetune(base, ds.MakeSplit("pretrain", []int{0, 1, 2, 3, 4, 5}, 8), 2, 16, opt, rand.New(rand.NewSource(92)))
	return &e2eEnv{ds: ds, build: build, base: base}
})

// realShard is one in-process crisp-serve: a real serve.Server behind the
// real api mux on a real TCP listener.
type realShard struct {
	id     string
	srv    *serve.Server
	ts     *httptest.Server
	addr   string
	killed atomic.Bool
}

// newRealShard starts a shard sharing snapshot directory dir. A non-empty
// addr rebinds that address — restarting a dead shard's process.
func newRealShard(t *testing.T, id, dir, addr string) *realShard {
	t.Helper()
	env := e2eShared()
	srv, err := serve.NewServer(env.build, env.base, env.ds, serve.Options{
		Workers:     2,
		SnapshotDir: dir,
		Prune: pruner.Options{
			Target: 0.7, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
			Iterations: 1, FinetuneEpochs: 1, BatchSize: 8, LR: 0.01,
		},
		TrainPerClass: 6,
		TestPerClass:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	sh := &realShard{id: id, srv: srv}
	mux := api.NewMux(srv, env.ds, api.Config{ShardID: id})
	if addr == "" {
		sh.ts = httptest.NewServer(mux)
	} else {
		sh.ts = &httptest.Server{Listener: relisten(t, addr), Config: &http.Server{Handler: mux}}
		sh.ts.Start()
	}
	sh.addr = sh.ts.Listener.Addr().String()
	t.Cleanup(sh.kill)
	return sh
}

// kill drops the shard's HTTP presence without touching its serve.Server —
// the process is "gone" as far as the cluster can tell.
func (sh *realShard) kill() {
	if sh.killed.CompareAndSwap(false, true) {
		sh.ts.CloseClientConnections()
		sh.ts.Close()
	}
}

// probeX is the deterministic input batch used for bit-identical logit
// comparisons of one tenant across shards.
func probeX(classes []int) *tensor.Tensor {
	env := e2eShared()
	return env.ds.MakeSplit("cluster-probe-"+canonKey(classes), classes, 2).X
}

// logitsOn asserts the tenant is resident on the shard and returns its
// logits over the probe batch.
func logitsOn(t *testing.T, sh *realShard, classes []int) ([]float64, uint64) {
	t.Helper()
	p, cached, err := sh.srv.Personalize(classes)
	if err != nil {
		t.Fatalf("shard %s does not serve %v: %v", sh.id, classes, err)
	}
	if !cached {
		t.Fatalf("shard %s re-personalized %v instead of serving its resident engine", sh.id, classes)
	}
	return append([]float64(nil), p.Engine().Logits(probeX(classes)).Data...), p.Engine().Fingerprint()
}

type personalizeReply struct {
	Key         string `json:"key"`
	Cached      bool   `json:"cached"`
	Fingerprint uint64 `json:"fingerprint"`
}

func personalizeVia(t *testing.T, frontURL string, classes []int) personalizeReply {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"classes": classes})
	resp, err := http.Post(frontURL+"/personalize", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("personalize %v: status %d", classes, resp.StatusCode)
	}
	var pr personalizeReply
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Fingerprint == 0 {
		t.Fatalf("personalize %v returned no fingerprint", classes)
	}
	return pr
}

func predictVia(frontURL string, classes []int) (int, error) {
	body, _ := json.Marshal(map[string]any{"classes": classes, "samples": 2})
	resp, err := http.Post(frontURL+"/predict", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_ = json.NewDecoder(resp.Body).Decode(&struct{}{})
	return resp.StatusCode, nil
}

func sumPersonalizations(shards map[string]*realShard, skip string) uint64 {
	var n uint64
	for id, sh := range shards {
		if id == skip {
			continue
		}
		n += sh.srv.Stats().Personalizations
	}
	return n
}

// TestClusterKillRejoinE2E is the tentpole scenario: a router over three
// real shards sharing one snapshot store; one shard is killed under
// concurrent predict load, its tenants recover on survivors by restore
// (zero lost, zero re-pruned, bit-identical logits), and a fresh process
// rejoining on the same address is re-admitted by the prober and serves
// its old tenants from the store.
func TestClusterKillRejoinE2E(t *testing.T) {
	dir := t.TempDir()
	shards := map[string]*realShard{}
	rt := NewRouter(e2eRouterOptions())
	for _, id := range []string{"s1", "s2", "s3"} {
		sh := newRealShard(t, id, dir, "")
		shards[id] = sh
		rt.AddShard(id, sh.addr)
	}
	rt.Start()
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Mux())
	t.Cleanup(front.Close)

	tenants := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}}
	fps := map[string]uint64{}
	owners := map[string]string{}
	for _, classes := range tenants {
		key := canonKey(classes)
		pr := personalizeVia(t, front.URL, classes)
		if pr.Key != key {
			t.Fatalf("router and shard disagree on key: %q vs %q", pr.Key, key)
		}
		fps[key] = pr.Fingerprint
		owner, ok := rt.LookupShard(key)
		if !ok {
			t.Fatalf("no owner for %q", key)
		}
		owners[key] = owner
	}
	distinct := map[string]bool{}
	for _, o := range owners {
		distinct[o] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("placement degenerate, all tenants on one shard: %v", owners)
	}

	// Baseline logits from the owning engines, and durability before the
	// kill: flush every shard so each tenant's record is in the shared
	// store (routine write-behind does this too; the flush just removes
	// timing from the test).
	baseline := map[string][]float64{}
	for _, classes := range tenants {
		key := canonKey(classes)
		logits, fp := logitsOn(t, shards[owners[key]], classes)
		if fp != fps[key] {
			t.Fatalf("HTTP fingerprint %016x != engine fingerprint %016x for %q", fps[key], fp, key)
		}
		baseline[key] = logits
	}
	for _, sh := range shards {
		if _, err := sh.srv.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Pick the victim owning the most tenants, so the failover actually
	// moves state.
	victimID, victimTenants := "", 0
	for id := range shards {
		n := 0
		for _, o := range owners {
			if o == id {
				n++
			}
		}
		if n > victimTenants {
			victimID, victimTenants = id, n
		}
	}
	preKillPersonalizations := sumPersonalizations(shards, victimID)

	// Concurrent load across every tenant, running through kill, recovery,
	// and rejoin. Transient non-200s are expected while the ring converges;
	// lost tenants are not — the post-kill barrier below insists on 200s.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var loadOK atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if code, err := predictVia(front.URL, tenants[(i+n)%len(tenants)]); err == nil && code == http.StatusOK {
					loadOK.Add(1)
				}
			}
		}(i)
	}
	defer func() { close(stop); wg.Wait() }()

	shards[victimID].kill()

	// Zero lost tenants: every tenant answers 200 through the router once
	// the ring sheds the corpse and survivors restore from the store.
	deadline := time.Now().Add(2 * time.Minute)
	for _, classes := range tenants {
		for {
			code, err := predictVia(front.URL, classes)
			if err == nil && code == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("tenant %v lost after killing %s (last code %d err %v)", classes, victimID, code, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if rt.ring.Has(victimID) {
		t.Fatal("dead shard still on the ring")
	}

	// Bit-identical recovery, not re-pruning: each tenant's new owner
	// serves an engine with the original fingerprint and logits, and no
	// survivor ran a pruning job.
	restores := uint64(0)
	for _, classes := range tenants {
		key := canonKey(classes)
		newOwner, ok := rt.LookupShard(key)
		if !ok || newOwner == victimID {
			t.Fatalf("tenant %q owned by %q after kill", key, newOwner)
		}
		logits, fp := logitsOn(t, shards[newOwner], classes)
		if fp != fps[key] {
			t.Fatalf("tenant %q fingerprint drifted after failover: %016x vs %016x", key, fp, fps[key])
		}
		for i := range logits {
			if logits[i] != baseline[key][i] {
				t.Fatalf("tenant %q logit %d drifted after failover: %v vs %v", key, i, logits[i], baseline[key][i])
			}
		}
	}
	if got := sumPersonalizations(shards, victimID); got != preKillPersonalizations {
		t.Fatalf("failover re-pruned: survivor personalizations %d -> %d", preKillPersonalizations, got)
	}
	for id, sh := range shards {
		if id != victimID {
			restores += sh.srv.Stats().RestoreHits
		}
	}
	if restores < uint64(victimTenants) {
		t.Fatalf("expected >= %d restores on survivors, saw %d", victimTenants, restores)
	}

	// Rejoin: a fresh process on the dead shard's address. The prober
	// readmits it, ring placement snaps back to the original (consistent
	// hashing), and it serves its old tenants from the store — zero
	// pruning jobs on the rebooted shard.
	reborn := newRealShard(t, victimID, dir, shards[victimID].addr)
	shards[victimID] = reborn
	waitFor(t, 30*time.Second, "prober never readmitted the rejoined shard", func() bool {
		return rt.ring.Has(victimID)
	})
	for _, classes := range tenants {
		key := canonKey(classes)
		if owner, _ := rt.LookupShard(key); owner != owners[key] {
			t.Fatalf("rejoin did not restore placement of %q: %q vs %q", key, owner, owners[key])
		}
		for {
			code, err := predictVia(front.URL, classes)
			if err == nil && code == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("tenant %v unserved after rejoin (code %d err %v)", classes, code, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	for _, classes := range tenants {
		key := canonKey(classes)
		if owners[key] != victimID {
			continue
		}
		logits, fp := logitsOn(t, reborn, classes)
		if fp != fps[key] {
			t.Fatalf("rejoined tenant %q fingerprint drifted: %016x vs %016x", key, fp, fps[key])
		}
		for i := range logits {
			if logits[i] != baseline[key][i] {
				t.Fatalf("rejoined tenant %q logit %d drifted", key, i)
			}
		}
	}
	if st := reborn.srv.Stats(); st.Personalizations != 0 {
		t.Fatalf("rejoined shard re-pruned %d tenants instead of restoring", st.Personalizations)
	}
	if loadOK.Load() == 0 {
		t.Fatal("concurrent load never succeeded")
	}
}

// TestClusterDrainHandoffE2E: a graceful exit through the router's drain
// orchestration — manifest handoffs, verified restores on the new owners,
// no re-pruning, and the drained shard refuses new tenants while the ring
// sends them to survivors.
func TestClusterDrainHandoffE2E(t *testing.T) {
	dir := t.TempDir()
	shards := map[string]*realShard{}
	rt := NewRouter(e2eRouterOptions())
	for _, id := range []string{"s1", "s2", "s3"} {
		sh := newRealShard(t, id, dir, "")
		shards[id] = sh
		rt.AddShard(id, sh.addr)
	}
	rt.Start()
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Mux())
	t.Cleanup(front.Close)

	tenants := [][]int{{0, 1}, {2, 3}, {4, 5}, {1, 4}}
	fps := map[string]uint64{}
	owners := map[string]string{}
	baseline := map[string][]float64{}
	for _, classes := range tenants {
		key := canonKey(classes)
		fps[key] = personalizeVia(t, front.URL, classes).Fingerprint
		owners[key], _ = rt.LookupShard(key)
		logits, _ := logitsOn(t, shards[owners[key]], classes)
		baseline[key] = logits
	}

	victimID := ""
	for _, o := range owners {
		victimID = o
		break
	}
	victimTenants := 0
	for _, o := range owners {
		if o == victimID {
			victimTenants++
		}
	}
	prePersonalizations := sumPersonalizations(shards, "")

	body, _ := json.Marshal(map[string]string{"shard": victimID})
	resp, err := http.Post(front.URL+"/drain", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var dr struct {
		Moved  int      `json:"moved"`
		Errors []string `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || dr.Moved < victimTenants || len(dr.Errors) != 0 {
		t.Fatalf("drain: status %d moved %d (want >= %d) errors %v", resp.StatusCode, dr.Moved, victimTenants, dr.Errors)
	}
	if !shards[victimID].srv.Draining() {
		t.Fatal("drained shard's server is not draining")
	}
	if rt.ring.Has(victimID) {
		t.Fatal("drained shard still on the ring")
	}

	// Every tenant keeps serving, with verified bit-identical engines on
	// the new owners — handoff restores, not pruning runs.
	for _, classes := range tenants {
		key := canonKey(classes)
		if code, err := predictVia(front.URL, classes); err != nil || code != http.StatusOK {
			t.Fatalf("tenant %q after drain: code %d err %v", key, code, err)
		}
		newOwner, _ := rt.LookupShard(key)
		if newOwner == victimID {
			t.Fatalf("tenant %q still placed on drained shard", key)
		}
		logits, fp := logitsOn(t, shards[newOwner], classes)
		if fp != fps[key] {
			t.Fatalf("tenant %q fingerprint drifted across drain: %016x vs %016x", key, fp, fps[key])
		}
		for i := range logits {
			if logits[i] != baseline[key][i] {
				t.Fatalf("tenant %q logit %d drifted across drain", key, i)
			}
		}
	}
	if got := sumPersonalizations(shards, ""); got != prePersonalizations {
		t.Fatalf("drain re-pruned: personalizations %d -> %d", prePersonalizations, got)
	}
	handoffs := uint64(0)
	for id, sh := range shards {
		if id != victimID {
			handoffs += sh.srv.Stats().HandoffRestores
		}
	}
	if handoffs < uint64(victimTenants) {
		t.Fatalf("expected >= %d handoff restores, saw %d", victimTenants, handoffs)
	}

	// New tenants keep arriving and land on survivors.
	pr := personalizeVia(t, front.URL, []int{0, 3, 5})
	if owner, _ := rt.LookupShard(pr.Key); owner == victimID {
		t.Fatal("new tenant placed on drained shard")
	}

	// The router reports the drained state.
	resp, err = http.Get(front.URL + "/ring")
	if err != nil {
		t.Fatal(err)
	}
	var ring struct {
		Shards []ShardHealth `json:"shards"`
		Ring   []string      `json:"ring"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ring.Ring) != 2 {
		t.Fatalf("ring %v, want 2 survivors", ring.Ring)
	}
	for _, sh := range ring.Shards {
		if sh.ID == victimID && (sh.State != "drained" || sh.OnRing) {
			t.Fatalf("drained shard reported as %+v", sh)
		}
	}
}
