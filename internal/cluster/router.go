package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/serve"
)

// Options tunes the router. Zero values get sane defaults (see NewRouter).
type Options struct {
	// VNodes is the virtual-node count per shard on the hash ring.
	VNodes int
	// ProbeInterval is the health-check period (default 1s).
	ProbeInterval time.Duration
	// FailThreshold is how many consecutive probe failures take a shard
	// off the ring (default 3). The proxy path short-circuits this on
	// connection errors — a refused connection is conclusive.
	FailThreshold int
	// PredictRetries is how many times a failed predict is retried against
	// the (re-looked-up) owner before giving up (default 2). Predicts are
	// idempotent so retrying is safe; personalizations are not retried —
	// the client sees 502 and owns the retry.
	PredictRetries int
	// RetryBackoff is the initial backoff between predict retries,
	// doubling per attempt and capped at 1s (default 50ms). The wait is
	// context-cancellable: a client hang-up or router shutdown ends it.
	RetryBackoff time.Duration
	// PredictTimeout caps a proxied predict's per-request deadline (default
	// 10s); it is also the deadline when the tenant's QoS class is unknown.
	PredictTimeout time.Duration
	// PersonalizeTimeout bounds a proxied personalization, which is a full
	// pruning run on the shard (default 5m).
	PersonalizeTimeout time.Duration
	// BudgetScale turns a tenant's QoS latency budget into its predict
	// deadline: deadline = budget × BudgetScale, clamped to
	// [PredictFloor, PredictTimeout] (default 50). The budget is a p99
	// batch-flush target, not a proxy round trip; the scale leaves room for
	// queueing and the network while still letting gold tenants fail fast.
	BudgetScale int
	// PredictFloor is the minimum per-request predict deadline (default 1s):
	// even a 10ms-budget gold tenant should not be timed out by one GC pause.
	PredictFloor time.Duration
	// BreakerThreshold is how many consecutive inconclusive proxy failures
	// (timeouts, resets — not refused connections, which are conclusive on
	// their own) trip a shard's circuit breaker and mark it down (default 4).
	BreakerThreshold int
	// Client serves proxied requests. Deadlines are per-request (see
	// PredictTimeout/PersonalizeTimeout), so the default client carries no
	// blanket timeout — a blanket one would cap every request at the
	// slowest path's ceiling.
	Client *http.Client
	// ProbeClient serves /healthz probes. The default times out in 3s so a
	// wedged shard cannot stall the probe loop.
	ProbeClient *http.Client
}

// Router fronts a set of CRISP shards: it places tenants with a consistent
// hash ring, proxies /personalize and /predict to the owner, health-checks
// members, fails predicts over when a shard dies, and orchestrates drains
// so a shard leaves without losing a tenant.
type Router struct {
	opts        Options
	ring        *Ring
	client      *http.Client
	probeClient *http.Client

	mu     sync.RWMutex
	shards map[string]*Shard

	// qosByKey remembers each tenant's QoS class, learned from the "qos"
	// field of proxied /personalize bodies, to derive predict deadlines.
	// Bounded by the tenant population (same order as the ring's placements).
	qosMu    sync.RWMutex
	qosByKey map[string]serve.QoSClass

	movingMu sync.Mutex
	moving   map[string]struct{} // tenant keys mid-handoff → 503 Retry-After

	stopc   chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup

	proxiedPersonalize atomic.Uint64
	proxiedPredict     atomic.Uint64
	retries            atomic.Uint64
	unavailable        atomic.Uint64 // 503s issued (moving tenants, empty ring)
	proxyErrors        atomic.Uint64 // 502s after exhausting owners
	handoffsMoved      atomic.Uint64
	handoffErrors      atomic.Uint64
	probeDrops         atomic.Uint64 // shards taken off the ring
	probeRevives       atomic.Uint64 // shards re-added after recovery
	proxyTimeouts      atomic.Uint64 // proxied requests that hit their deadline
	breakerTrips       atomic.Uint64 // shards marked down by the circuit breaker
}

// NewRouter builds a router with no members; call AddShard then Start.
func NewRouter(opts Options) *Router {
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = time.Second
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 3
	}
	if opts.PredictRetries < 0 {
		opts.PredictRetries = 0
	} else if opts.PredictRetries == 0 {
		opts.PredictRetries = 2
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 50 * time.Millisecond
	}
	if opts.PredictTimeout <= 0 {
		opts.PredictTimeout = 10 * time.Second
	}
	if opts.PersonalizeTimeout <= 0 {
		opts.PersonalizeTimeout = 5 * time.Minute
	}
	if opts.BudgetScale <= 0 {
		opts.BudgetScale = 50
	}
	if opts.PredictFloor <= 0 {
		opts.PredictFloor = time.Second
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 4
	}
	rt := &Router{
		opts:        opts,
		ring:        NewRing(opts.VNodes),
		client:      opts.Client,
		probeClient: opts.ProbeClient,
		shards:      make(map[string]*Shard),
		qosByKey:    make(map[string]serve.QoSClass),
		moving:      make(map[string]struct{}),
		stopc:       make(chan struct{}),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	if rt.probeClient == nil {
		rt.probeClient = &http.Client{Timeout: 3 * time.Second}
	}
	return rt
}

// AddShard registers a member and puts it on the ring optimistically; the
// first probe (or first failed proxy) corrects a dead one. Re-adding an
// existing id updates its address and revives it.
func (rt *Router) AddShard(id, addr string) {
	rt.mu.Lock()
	sh, ok := rt.shards[id]
	if !ok {
		sh = &Shard{ID: id, Addr: addr}
		rt.shards[id] = sh
	}
	rt.mu.Unlock()
	sh.mu.Lock()
	sh.Addr = addr
	sh.state = ShardUp
	sh.fails = 0
	sh.breakerFails = 0
	sh.mu.Unlock()
	rt.ring.Add(id)
}

// Start launches the health prober. Close stops it.
func (rt *Router) Start() {
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		t := time.NewTicker(rt.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-rt.stopc:
				return
			case <-t.C:
				for _, sh := range rt.members() {
					rt.probeOnce(sh)
				}
			}
		}
	}()
}

// Close stops the prober; in-flight proxied requests finish on their own.
func (rt *Router) Close() {
	rt.stopped.Do(func() { close(rt.stopc) })
	rt.wg.Wait()
}

func (rt *Router) members() []*Shard {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]*Shard, 0, len(rt.shards))
	for _, sh := range rt.shards {
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// shardFor resolves a tenant key to its current owner.
func (rt *Router) shardFor(key string) (*Shard, bool) {
	id, ok := rt.ring.Lookup(key)
	if !ok {
		return nil, false
	}
	rt.mu.RLock()
	sh, ok := rt.shards[id]
	rt.mu.RUnlock()
	return sh, ok
}

// LookupShard exposes placement (tests, ops tooling): the owning shard id
// for a canonical tenant key.
func (rt *Router) LookupShard(key string) (string, bool) {
	return rt.ring.Lookup(key)
}

func (rt *Router) isMoving(key string) bool {
	rt.movingMu.Lock()
	defer rt.movingMu.Unlock()
	_, ok := rt.moving[key]
	return ok
}

func (rt *Router) setMoving(key string, moving bool) {
	rt.movingMu.Lock()
	if moving {
		rt.moving[key] = struct{}{}
	} else {
		delete(rt.moving, key)
	}
	rt.movingMu.Unlock()
}

// canonKey mirrors serve.Canonicalize's key construction (sorted, deduped,
// comma-joined) without validating class ids against a dataset — range
// errors are the owning shard's 400 to give.
func canonKey(classes []int) string {
	if len(classes) == 0 {
		return ""
	}
	sorted := append([]int(nil), classes...)
	sort.Ints(sorted)
	var b bytes.Buffer
	prev := 0
	for i, c := range sorted {
		if i > 0 {
			if c == prev {
				continue
			}
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
		prev = c
	}
	return b.String()
}

// Mux wires the router's HTTP surface:
//
//	POST /personalize, POST /predict — proxied to the owning shard
//	POST /drain {"shard":"id"}       — orchestrate that shard's exit
//	GET  /ring                       — membership, states, placements
//	GET  /metrics                    — router + per-shard Prometheus text
//	GET  /healthz                    — router liveness
func (rt *Router) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /personalize", func(w http.ResponseWriter, r *http.Request) {
		rt.proxiedPersonalize.Add(1)
		rt.proxy(w, r, "/personalize", false)
	})
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		rt.proxiedPredict.Add(1)
		rt.proxy(w, r, "/predict", true)
	})
	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Shard string `json:"shard"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Shard == "" {
			httpError(w, http.StatusBadRequest, errors.New("drain request needs {\"shard\":\"id\"}"))
			return
		}
		moved, errs, err := rt.DrainShard(req.Shard)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{"shard": req.Shard, "moved": moved, "errors": errs})
	})
	mux.HandleFunc("GET /ring", func(w http.ResponseWriter, r *http.Request) {
		members := rt.members()
		hs := make([]ShardHealth, 0, len(members))
		for _, sh := range members {
			hs = append(hs, sh.health(rt.ring.Has(sh.ID)))
		}
		writeJSON(w, map[string]any{"shards": hs, "ring": rt.ring.Nodes()})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		rt.writeMetrics(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"status": "ok", "shards": len(rt.members()), "on_ring": len(rt.ring.Nodes()),
		})
	})
	return mux
}

const maxProxyBody = 32 << 20

// proxy forwards one request to the tenant's owner. Idempotent requests
// (predicts) retry with exponential backoff after a failure: a connection
// error marks the owner down, so the re-lookup lands on a survivor, which
// restores the tenant from the shared snapshot store instead of re-pruning.
// A shard-side 503 (draining) triggers an immediate re-probe so the ring
// sheds the drainer before the retry. Non-idempotent personalizations get
// one attempt; the client owns that retry. 4xx responses — including the
// QoS layer's 429s (ErrOverloaded/ErrOverQuota) — relay to the client
// without failover: the tenant's quota bucket lives on its owner shard,
// so retrying elsewhere would dodge the very limiter that fired.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, path string, idempotent bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	var req struct {
		Classes []int  `json:"classes"`
		QoS     string `json:"qos"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	key := canonKey(req.Classes)
	if key == "" {
		httpError(w, http.StatusBadRequest, errors.New("empty class set"))
		return
	}
	if path == "/personalize" && req.QoS != "" {
		// Remember the class so later predicts get a budget-derived deadline.
		// Invalid values are the shard's 400 to give; don't learn them.
		if class, err := serve.ParseQoSClass(req.QoS); err == nil {
			rt.qosMu.Lock()
			rt.qosByKey[key] = class
			rt.qosMu.Unlock()
		}
	}
	if rt.isMoving(key) {
		rt.unavailable.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("tenant {%s} is mid-handoff", key))
		return
	}

	attempts := 1
	if idempotent {
		attempts += rt.opts.PredictRetries
	}
	timeout := rt.deadlineFor(path, key)
	backoff := rt.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			rt.retries.Add(1)
			if !rt.sleepBackoff(r.Context(), backoff) {
				// The client hung up or the router is shutting down; there
				// is no one left to retry for.
				rt.proxyErrors.Add(1)
				httpError(w, http.StatusBadGateway, fmt.Errorf("retry abandoned for {%s}: %w", key, lastErr))
				return
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		sh, ok := rt.shardFor(key)
		if !ok {
			rt.unavailable.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, errors.New("no shards on the ring"))
			return
		}
		resp, err := rt.postShard(r.Context(), sh.Addr, path, body, timeout)
		if err != nil {
			rt.shardFailed(sh, err)
			lastErr = err
			continue
		}
		sh.breakerReset()
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The shard is draining and does not hold this tenant: probe it
			// now so the ring stops pointing at it, then retry elsewhere.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rt.probeOnce(sh)
			lastErr = fmt.Errorf("shard %s is draining", sh.ID)
			if !idempotent {
				rt.unavailable.Add(1)
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusServiceUnavailable, lastErr)
				return
			}
			continue
		}
		if idempotent && resp.StatusCode >= 500 {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("shard %s returned %d", sh.ID, resp.StatusCode)
			continue
		}
		relay(w, resp)
		return
	}
	rt.proxyErrors.Add(1)
	httpError(w, http.StatusBadGateway, fmt.Errorf("no shard could serve {%s}: %w", key, lastErr))
}

// deadlineFor derives the per-request deadline: personalizations get the
// flat pruning-run bound; predicts get the tenant's QoS latency budget
// scaled by BudgetScale and clamped to [PredictFloor, PredictTimeout], so a
// gold tenant's failover fires in about a second while a batch tenant is
// given the time its class already promised it.
func (rt *Router) deadlineFor(path, key string) time.Duration {
	if path != "/predict" {
		return rt.opts.PersonalizeTimeout
	}
	rt.qosMu.RLock()
	class, ok := rt.qosByKey[key]
	rt.qosMu.RUnlock()
	if !ok {
		return rt.opts.PredictTimeout
	}
	d := serve.DefaultQoSPolicy(class).LatencyBudget * time.Duration(rt.opts.BudgetScale)
	if d < rt.opts.PredictFloor {
		d = rt.opts.PredictFloor
	}
	if d > rt.opts.PredictTimeout {
		d = rt.opts.PredictTimeout
	}
	return d
}

// postShard issues one deadline-bounded POST. The deadline's cancel is tied
// to the response body: it fires when the caller closes the body (relay or
// the retry loop's drain), never before the body is read.
func (rt *Router) postShard(ctx context.Context, addr, path string, body []byte, timeout time.Duration) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelBody releases a request's deadline context when its response body
// is closed.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// sleepBackoff waits out one retry backoff, abandoning the wait (false) if
// the client's request context ends or the router shuts down — a goroutine
// sleeping toward a dead client is a slow leak under a partition storm.
func (rt *Router) sleepBackoff(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-rt.stopc:
		return false
	}
}

// shardFailed classifies a proxy transport error. Conclusive failures — the
// connection was refused, meaning no process listens there — mark the shard
// down immediately. Inconclusive ones (deadline hit, connection reset,
// truncated response: the shard may be fine and the path broken, or slow
// rather than dead) feed the shard's circuit breaker; BreakerThreshold
// consecutive inconclusive failures trip it, taking the shard off the ring
// until a probe succeeds. One flaky request never evicts a shard, and a
// black-holed one cannot keep absorbing traffic for FailThreshold probe
// rounds either.
func (rt *Router) shardFailed(sh *Shard, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		rt.proxyTimeouts.Add(1)
	}
	var opErr *net.OpError
	if errors.Is(err, syscall.ECONNREFUSED) || (errors.As(err, &opErr) && opErr.Op == "dial") {
		rt.markDown(sh, err)
		return
	}
	sh.mu.Lock()
	sh.breakerFails++
	trip := sh.breakerFails >= rt.opts.BreakerThreshold
	sh.mu.Unlock()
	if trip {
		rt.breakerTrips.Add(1)
		rt.markDown(sh, fmt.Errorf("circuit breaker tripped: %w", err))
	}
}

// relay copies the shard's response through to the client.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
