package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/api"
	"repro/internal/serve"
)

// ShardState is a shard's place in the membership lifecycle.
//
//	Up       — on the ring, taking placements and traffic.
//	Draining — off the ring, serving residents while its tenants move.
//	Down     — off the ring after failed probes; tenants recover lazily
//	           from the shared snapshot store on whichever shard the ring
//	           re-places them.
//	Drained  — off the ring with all tenants handed off; the process keeps
//	           answering /healthz with draining=true so the prober never
//	           re-adds it. A restarted (fresh) process reports
//	           draining=false and rejoins as Up.
type ShardState int32

const (
	ShardUp ShardState = iota
	ShardDraining
	ShardDown
	ShardDrained
)

func (st ShardState) String() string {
	switch st {
	case ShardUp:
		return "up"
	case ShardDraining:
		return "draining"
	case ShardDown:
		return "down"
	case ShardDrained:
		return "drained"
	}
	return fmt.Sprintf("state(%d)", int32(st))
}

// Shard is one serving process in the membership table. The router owns
// the table; state moves under the shard's lock so the prober and the
// proxy path (which marks shards down on connection errors) never race.
type Shard struct {
	ID   string
	Addr string // host:port, no scheme

	mu           sync.Mutex
	state        ShardState
	fails        int         // consecutive probe failures
	breakerFails int         // consecutive inconclusive proxy failures (circuit breaker)
	stats        serve.Stats // last successful /healthz snapshot
	lastErr      string
}

// breakerReset clears the circuit breaker after a successful proxied
// response: the breaker counts consecutive failures only.
func (sh *Shard) breakerReset() {
	sh.mu.Lock()
	sh.breakerFails = 0
	sh.mu.Unlock()
}

func (sh *Shard) State() ShardState {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.state
}

// ShardHealth is the router's externally visible view of one shard
// (GET /ring and the e2e assertions).
type ShardHealth struct {
	ID            string `json:"id"`
	Addr          string `json:"addr"`
	State         string `json:"state"`
	OnRing        bool   `json:"on_ring"`
	Fails         int    `json:"fails"`
	LastError     string `json:"last_error,omitempty"`
	CachedEngines int    `json:"cached_engines"`
	QueueDepth    int    `json:"queue_depth"`
	Requests      uint64 `json:"requests"`
}

func (sh *Shard) health(onRing bool) ShardHealth {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return ShardHealth{
		ID: sh.ID, Addr: sh.Addr, State: sh.state.String(), OnRing: onRing,
		Fails: sh.fails, LastError: sh.lastErr,
		CachedEngines: sh.stats.CachedEngines, QueueDepth: sh.stats.QueueDepth,
		Requests: sh.stats.Requests,
	}
}

// probeOnce polls one shard's /healthz and applies the state machine: a
// success clears the failure streak, refreshes the load snapshot, and
// revives a Down shard (unless it reports draining — a drained husk must
// not rejoin); failures accumulate until FailThreshold takes the shard off
// the ring.
func (rt *Router) probeOnce(sh *Shard) {
	h, err := rt.fetchHealth(sh.Addr)
	sh.mu.Lock()
	if err != nil {
		sh.fails++
		sh.lastErr = err.Error()
		drop := sh.fails >= rt.opts.FailThreshold && (sh.state == ShardUp || sh.state == ShardDraining)
		if drop {
			sh.state = ShardDown
		}
		sh.mu.Unlock()
		if drop {
			rt.ring.Remove(sh.ID)
			rt.probeDrops.Add(1)
		}
		return
	}
	sh.fails = 0
	sh.breakerFails = 0
	sh.lastErr = ""
	sh.stats = h.Stats
	revive := false
	switch {
	case h.Draining:
		// The shard refuses new tenants; make sure the ring agrees. A
		// shard that drained while we thought it was Up (admin hit its
		// /drain directly) is discovered here.
		if sh.state == ShardUp {
			sh.state = ShardDraining
		}
	case sh.state == ShardDown || sh.state == ShardDrained:
		// A fresh process answering on the old address: rejoin.
		sh.state = ShardUp
		revive = true
	}
	draining := h.Draining
	sh.mu.Unlock()
	switch {
	case draining:
		rt.ring.Remove(sh.ID)
	case revive:
		rt.ring.Add(sh.ID)
		rt.probeRevives.Add(1)
	}
}

func (rt *Router) fetchHealth(addr string) (api.Health, error) {
	var h api.Health
	resp, err := rt.probeClient.Get("http://" + addr + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("decoding healthz: %w", err)
	}
	return h, nil
}

// markDown is the proxy path's fast failure detector: a connection error
// (the process is gone, not merely slow) takes the shard off the ring
// immediately instead of waiting FailThreshold probe rounds, so the very
// next lookup re-places its tenants onto survivors.
func (rt *Router) markDown(sh *Shard, err error) {
	sh.mu.Lock()
	already := sh.state == ShardDown
	if !already {
		sh.state = ShardDown
		sh.fails = rt.opts.FailThreshold
		sh.lastErr = err.Error()
	}
	sh.mu.Unlock()
	if !already {
		rt.ring.Remove(sh.ID)
		rt.probeDrops.Add(1)
	}
}
