package cluster

import (
	"fmt"
	"testing"
)

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Lookup("1,3"); ok {
		t.Fatal("empty ring must report no owner")
	}
	r.Add("s1")
	r.Add("s1") // idempotent
	if n := r.Nodes(); len(n) != 1 || n[0] != "s1" {
		t.Fatalf("nodes %v", n)
	}
	if owner, ok := r.Lookup("1,3"); !ok || owner != "s1" {
		t.Fatalf("single-shard ring must own everything, got %q ok=%v", owner, ok)
	}
	if !r.Has("s1") || r.Has("s2") {
		t.Fatal("Has out of sync with membership")
	}
	r.Remove("s1")
	r.Remove("s1") // idempotent
	if _, ok := r.Lookup("1,3"); ok {
		t.Fatal("ring must be empty after removing its only shard")
	}
}

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%d,%d,%d", i%7, 7+i%11, 20+i)
	}
	return keys
}

func TestRingLookupDeterministic(t *testing.T) {
	a, b := NewRing(64), NewRing(64)
	// Insertion order must not matter.
	for _, n := range []string{"s1", "s2", "s3"} {
		a.Add(n)
	}
	for _, n := range []string{"s3", "s1", "s2"} {
		b.Add(n)
	}
	for _, k := range ringKeys(500) {
		oa, _ := a.Lookup(k)
		ob, _ := b.Lookup(k)
		if oa != ob {
			t.Fatalf("placement of %q depends on insertion order: %q vs %q", k, oa, ob)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(64)
	shards := []string{"s1", "s2", "s3", "s4"}
	for _, s := range shards {
		r.Add(s)
	}
	counts := make(map[string]int)
	keys := ringKeys(4000)
	for _, k := range keys {
		owner, ok := r.Lookup(k)
		if !ok {
			t.Fatal("lookup failed on populated ring")
		}
		counts[owner]++
	}
	want := len(keys) / len(shards)
	for _, s := range shards {
		if counts[s] < want/3 || counts[s] > want*3 {
			t.Fatalf("shard %s owns %d of %d keys (expected near %d): %v", s, counts[s], len(keys), want, counts)
		}
	}
}

// TestRingMinimalDisruption is the property the cluster leans on: removing
// one shard moves only that shard's keys, and re-adding it restores the
// original placement exactly.
func TestRingMinimalDisruption(t *testing.T) {
	r := NewRing(64)
	for _, s := range []string{"s1", "s2", "s3"} {
		r.Add(s)
	}
	keys := ringKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}
	r.Remove("s2")
	moved := 0
	for _, k := range keys {
		after, ok := r.Lookup(k)
		if !ok {
			t.Fatal("lookup failed after removal")
		}
		if after == "s2" {
			t.Fatal("removed shard still owns keys")
		}
		if before[k] != "s2" && after != before[k] {
			t.Fatalf("key %q moved from surviving shard %q to %q", k, before[k], after)
		}
		if before[k] == "s2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: s2 owned nothing")
	}
	r.Add("s2")
	for _, k := range keys {
		if after, _ := r.Lookup(k); after != before[k] {
			t.Fatalf("re-adding s2 did not restore placement of %q (%q vs %q)", k, after, before[k])
		}
	}
}
