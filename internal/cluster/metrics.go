package cluster

import (
	"fmt"
	"io"
)

// writeMetrics renders the router's counters plus a per-shard view of the
// membership table in the Prometheus text exposition format. The per-shard
// load gauges come from the latest successful /healthz probe, so one
// scrape of the router shows ring placement and shard load together.
func (rt *Router) writeMetrics(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP crisp_router_%s %s\n# TYPE crisp_router_%s counter\ncrisp_router_%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP crisp_router_proxied_total Requests proxied to shards.\n# TYPE crisp_router_proxied_total counter\n")
	fmt.Fprintf(w, "crisp_router_proxied_total{path=\"personalize\"} %d\n", rt.proxiedPersonalize.Load())
	fmt.Fprintf(w, "crisp_router_proxied_total{path=\"predict\"} %d\n", rt.proxiedPredict.Load())
	counter("retries_total", "Predict attempts repeated after a shard failure.", rt.retries.Load())
	counter("unavailable_total", "Requests answered 503 (mid-handoff tenant, empty ring, draining owner).", rt.unavailable.Load())
	counter("proxy_errors_total", "Requests answered 502 after exhausting owners.", rt.proxyErrors.Load())
	counter("handoffs_total", "Tenants moved by verified drain handoffs.", rt.handoffsMoved.Load())
	counter("handoff_errors_total", "Drain handoffs that fell back to lazy restore.", rt.handoffErrors.Load())
	counter("shard_drops_total", "Times a shard was taken off the ring (probes or connection errors).", rt.probeDrops.Load())
	counter("shard_revives_total", "Times a recovered shard was re-added to the ring.", rt.probeRevives.Load())
	counter("proxy_timeouts_total", "Proxied requests that hit their per-request deadline.", rt.proxyTimeouts.Load())
	counter("breaker_trips_total", "Shards marked down by the consecutive-failure circuit breaker.", rt.breakerTrips.Load())

	members := rt.members()
	onRing := rt.ring.Nodes()
	fmt.Fprintf(w, "# HELP crisp_router_shards Registered shards.\n# TYPE crisp_router_shards gauge\ncrisp_router_shards %d\n", len(members))
	fmt.Fprintf(w, "# HELP crisp_router_ring_shards Shards currently on the hash ring.\n# TYPE crisp_router_ring_shards gauge\ncrisp_router_ring_shards %d\n", len(onRing))
	rt.movingMu.Lock()
	movingN := len(rt.moving)
	rt.movingMu.Unlock()
	fmt.Fprintf(w, "# HELP crisp_router_moving_tenants Tenants currently mid-handoff.\n# TYPE crisp_router_moving_tenants gauge\ncrisp_router_moving_tenants %d\n", movingN)

	fmt.Fprintf(w, "# HELP crisp_router_shard_up 1 while the shard is Up and on the ring.\n# TYPE crisp_router_shard_up gauge\n")
	for _, sh := range members {
		up := 0
		if sh.State() == ShardUp {
			up = 1
		}
		fmt.Fprintf(w, "crisp_router_shard_up{shard=%q} %d\n", sh.ID, up)
	}
	fmt.Fprintf(w, "# HELP crisp_router_shard_state Shard lifecycle state (0 up, 1 draining, 2 down, 3 drained).\n# TYPE crisp_router_shard_state gauge\n")
	for _, sh := range members {
		fmt.Fprintf(w, "crisp_router_shard_state{shard=%q} %d\n", sh.ID, int32(sh.State()))
	}
	fmt.Fprintf(w, "# HELP crisp_router_shard_cached_engines Hot engines on the shard at last probe.\n# TYPE crisp_router_shard_cached_engines gauge\n")
	for _, sh := range members {
		h := sh.health(false)
		fmt.Fprintf(w, "crisp_router_shard_cached_engines{shard=%q} %d\n", sh.ID, h.CachedEngines)
	}
	fmt.Fprintf(w, "# HELP crisp_router_shard_queue_depth Predict queue depth on the shard at last probe.\n# TYPE crisp_router_shard_queue_depth gauge\n")
	for _, sh := range members {
		h := sh.health(false)
		fmt.Fprintf(w, "crisp_router_shard_queue_depth{shard=%q} %d\n", sh.ID, h.QueueDepth)
	}
}
