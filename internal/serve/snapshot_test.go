package serve

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/checkpoint"
)

// snapshotOpts is quickOpts plus a fresh snapshot directory.
func snapshotOpts(t *testing.T) (Options, string) {
	t.Helper()
	dir := t.TempDir()
	opts := quickOpts()
	opts.SnapshotDir = dir
	return opts, dir
}

// TestWarmRestartBitIdentical is the end-to-end restart scenario: N
// personalized class sets, an explicit flush, then a brand-new Server on
// the same directory must serve every set from disk — zero pruning jobs,
// logits bit-identical to the pre-restart engines.
func TestWarmRestartBitIdentical(t *testing.T) {
	opts, _ := snapshotOpts(t)
	env := sharedEnv()
	sets := [][]int{{1, 3}, {0, 2, 4}, {5}}

	s1 := newTestServer(t, opts)
	type probe struct {
		key    string
		logits []float64
	}
	var want []probe
	for _, set := range sets {
		p, _, err := s1.Personalize(set)
		if err != nil {
			t.Fatal(err)
		}
		x := env.ds.MakeSplit("warm-probe/"+p.Key, set, 2).X
		want = append(want, probe{key: p.Key, logits: append([]float64(nil), p.Engine().Logits(x).Data...)})
	}
	if _, err := s1.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.SnapshotWrites != uint64(len(sets)) || st.SnapshotErrors != 0 {
		t.Fatalf("snapshot accounting after flush: %+v", st)
	}

	s2 := newTestServer(t, opts)
	n, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(sets) {
		t.Fatalf("restored %d of %d snapshots", n, len(sets))
	}
	st := s2.Stats()
	if st.RestoreHits != uint64(len(sets)) || st.RestoreErrors != 0 {
		t.Fatalf("restore accounting: %+v", st)
	}
	if st.Personalizations != 0 {
		t.Fatalf("warm restart ran %d pruning jobs, want 0", st.Personalizations)
	}

	for i, set := range sets {
		p, cached, err := s2.Personalize(set)
		if err != nil {
			t.Fatal(err)
		}
		if !cached {
			t.Fatalf("set %v not served from the restored cache", set)
		}
		x := env.ds.MakeSplit("warm-probe/"+p.Key, set, 2).X
		got := p.Engine().Logits(x).Data
		if len(got) != len(want[i].logits) {
			t.Fatalf("set %v: %d logits, want %d", set, len(got), len(want[i].logits))
		}
		for j := range got {
			if got[j] != want[i].logits[j] {
				t.Fatalf("set %v logit %d diverged after restart: %v vs %v", set, j, got[j], want[i].logits[j])
			}
		}
	}
	if st := s2.Stats(); st.Personalizations != 0 {
		t.Fatalf("restored sets re-pruned: %+v", st)
	}
}

// TestEvictionKeepsDiskCopy pins the LRU/store interaction: evicting an
// engine leaves its snapshot on disk, and the next request for it restores
// instead of re-pruning.
func TestEvictionKeepsDiskCopy(t *testing.T) {
	opts, dir := snapshotOpts(t)
	opts.CacheSize = 1
	s := newTestServer(t, opts)

	if _, _, err := s.Personalize([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Personalize([]int{2, 3}); err != nil { // evicts {0,1}
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("expected one eviction: %+v", st)
	}
	idx, err := checkpoint.ReadIndex(filepath.Join(dir, checkpoint.IndexFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := idx["0,1"]; !ok {
		t.Fatalf("eviction dropped the disk copy; index %v", idx)
	}

	p, cached, err := s.Personalize([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("evicted set cannot be a cache hit")
	}
	if p.Key != "0,1" {
		t.Fatalf("restored key %q", p.Key)
	}
	st := s.Stats()
	if st.RestoreHits != 1 {
		t.Fatalf("evicted set did not restore from disk: %+v", st)
	}
	if st.Personalizations != 2 {
		t.Fatalf("re-requesting an evicted set re-pruned (personalizations %d, want 2): %+v", st.Personalizations, st)
	}
}

// TestRestoreSkipsCorruptRecords injects a truncated record and an
// unindexed garbage file: Restore must load the good records, quarantine the
// bad one (rename it aside and de-index it), and the server must re-prune
// the corrupt set on demand — exactly once, since after quarantine the key
// is a clean cache miss, not a repeated failed load.
func TestRestoreSkipsCorruptRecords(t *testing.T) {
	opts, dir := snapshotOpts(t)
	s1 := newTestServer(t, opts)
	for _, set := range [][]int{{1, 2}, {3, 4}} {
		if _, _, err := s1.Personalize(set); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s1.Flush(); err != nil {
		t.Fatal(err)
	}

	idx, err := checkpoint.ReadIndex(filepath.Join(dir, checkpoint.IndexFile))
	if err != nil {
		t.Fatal(err)
	}
	name, ok := idx["3,4"]
	if !ok {
		t.Fatalf("no record for 3,4 in %v", idx)
	}
	path := filepath.Join(dir, name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// An orphan file outside the index must simply be ignored.
	if err := os.WriteFile(filepath.Join(dir, "pdeadbeef.ckpt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, opts)
	n, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d records, want 1", n)
	}
	st := s2.Stats()
	if st.RestoreHits != 1 || st.RestoreErrors != 1 || st.SnapshotsQuarantined != 1 {
		t.Fatalf("restore accounting: %+v", st)
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Fatalf("corrupt record not moved aside: %v", err)
	}
	if idx, err := checkpoint.ReadIndex(filepath.Join(dir, checkpoint.IndexFile)); err != nil || idx["3,4"] != "" {
		t.Fatalf("corrupt record still indexed (%v): %v", err, idx)
	}

	// The corrupt set still serves: the quarantined key is now a clean
	// cache miss → fresh prune, whose write-behind snapshot re-fills the
	// slot. No second load failure is charged.
	p, _, err := s2.Personalize([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Key != "3,4" || p.Engine() == nil {
		t.Fatalf("corrupt set did not re-personalize: %+v", p)
	}
	st = s2.Stats()
	if st.Personalizations != 1 || st.RestoreErrors != 1 {
		t.Fatalf("re-prune accounting: %+v", st)
	}
	if _, err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	s3 := newTestServer(t, opts)
	if n, err := s3.Restore(); err != nil || n != 2 {
		t.Fatalf("healed store restored %d (%v), want 2", n, err)
	}
}

// TestRestoreStopsAtCacheCapacity: restoring more engines than the cache
// can hold would build them only to evict them; Restore must stop at
// capacity and leave the rest to the lazy miss path.
func TestRestoreStopsAtCacheCapacity(t *testing.T) {
	opts, _ := snapshotOpts(t)
	s1 := newTestServer(t, opts)
	for _, set := range [][]int{{0}, {1}, {2}} {
		if _, _, err := s1.Personalize(set); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s1.Flush(); err != nil {
		t.Fatal(err)
	}

	opts.CacheSize = 2
	s2 := newTestServer(t, opts)
	n, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if n != 2 || st.RestoreHits != 2 || st.CachedEngines != 2 || st.Evictions != 0 {
		t.Fatalf("restore past capacity: n=%d stats %+v", n, st)
	}
	// The uncached key still serves, lazily, from disk.
	if _, _, err := s2.Personalize([]int{2}); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.RestoreHits != 3 || st.Personalizations != 0 {
		t.Fatalf("lazy restore after capped Restore: %+v", st)
	}
}

// TestCorruptIndexFailsLoudly: an unreadable index must fail NewServer
// rather than silently orphan every record (the next write would rewrite
// the index without them).
func TestCorruptIndexFailsLoudly(t *testing.T) {
	opts, dir := snapshotOpts(t)
	if err := os.WriteFile(filepath.Join(dir, checkpoint.IndexFile), []byte("not an index\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	env := sharedEnv()
	if _, err := NewServer(env.build, env.base, env.ds, opts); err == nil {
		t.Fatal("corrupt snapshot index must fail NewServer")
	}
}

// TestTornIndexTailHeals: a crash mid-append can leave the index with a
// partial final line and nothing else. Opening the store must truncate the
// tail (not fail, not let the next append concatenate onto it), and the
// next snapshot must index under its real key.
func TestTornIndexTailHeals(t *testing.T) {
	opts, dir := snapshotOpts(t)
	if err := os.WriteFile(filepath.Join(dir, checkpoint.IndexFile), []byte("CRSPIDX1\n0,"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, opts)
	if _, _, err := s.Personalize([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	idx, err := checkpoint.ReadIndex(filepath.Join(dir, checkpoint.IndexFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx["0,1"] == "" {
		t.Fatalf("torn tail garbled the index: %v", idx)
	}
}

// TestSnapshotDisabled pins the memory-only behavior.
func TestSnapshotDisabled(t *testing.T) {
	s := newTestServer(t, quickOpts())
	if _, err := s.Flush(); err != ErrNoSnapshotDir {
		t.Fatalf("Flush without a store: %v", err)
	}
	if _, err := s.Restore(); err != ErrNoSnapshotDir {
		t.Fatalf("Restore without a store: %v", err)
	}
}

// TestSnapshotStorm is the -race hammer for the durable path: concurrent
// Personalize/Predict/Restore with a tiny cache (constant evictions) on one
// snapshot directory. Afterwards every indexed record must re-read cleanly
// — no torn files, no key mismatches.
func TestSnapshotStorm(t *testing.T) {
	opts, dir := snapshotOpts(t)
	opts.CacheSize = 2
	s := newTestServer(t, opts)
	env := sharedEnv()

	sets := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}}
	const clients = 8
	const rounds = 4
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				classes := sets[(c+r)%len(sets)]
				switch (c + r) % 4 {
				case 0:
					if _, _, err := s.Personalize(classes); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, _, _, err := s.PredictSamples(classes, 4); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := s.Restore(); err != nil {
						t.Error(err)
						return
					}
				default:
					// Flush during live traffic: waits out in-flight
					// write-behinds while new ones are being registered.
					if _, err := s.Flush(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("storm produced no evictions; cache pressure missing: %+v", st)
	}
	idx, err := checkpoint.ReadIndex(filepath.Join(dir, checkpoint.IndexFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) == 0 {
		t.Fatal("storm left no snapshots behind")
	}
	for key, name := range idx {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("record %s: %v", name, err)
		}
		rec, err := checkpoint.LoadPersonalization(f, env.build())
		f.Close()
		if err != nil {
			t.Fatalf("torn or corrupt record %s for %q: %v", name, key, err)
		}
		if rec.Key != key {
			t.Fatalf("record %s holds key %q, indexed as %q", name, rec.Key, key)
		}
	}
}

// TestQuarantineKeepsPeerRecords: shards sharing a snapshot directory each
// journal their own appends, so a quarantining store's in-memory index may
// be stale. The de-index rewrite must merge the on-disk index first — a
// rewrite from the stale view would silently drop peers' records, turning
// each one's next failover restore into a needless re-prune. (Found by
// cmd/crisp-chaos.)
func TestQuarantineKeepsPeerRecords(t *testing.T) {
	opts, dir := snapshotOpts(t)

	// Both stores open before any record exists, so neither sees the
	// other's appends except through refresh.
	s1 := newTestServer(t, opts)
	s2 := newTestServer(t, opts)
	if _, _, err := s1.Personalize([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.Personalize([]int{3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Flush(); err != nil {
		t.Fatal(err)
	}

	// Corrupt s2's own record on disk and force a cold load of it: the
	// quarantine runs on s2, whose in-memory index has never seen "1,2".
	idx, err := checkpoint.ReadIndex(filepath.Join(dir, checkpoint.IndexFile))
	if err != nil {
		t.Fatal(err)
	}
	name, ok := idx["3,4"]
	if !ok {
		t.Fatalf("record for %q not indexed: %v", "3,4", idx)
	}
	raw, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.store.load("3,4", s2.build()); err == nil {
		t.Fatal("load of corrupted record succeeded")
	}

	// The rewrite must have removed only the quarantined key.
	idx, err = checkpoint.ReadIndex(filepath.Join(dir, checkpoint.IndexFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := idx["3,4"]; ok {
		t.Fatal("quarantined key still on the shared index")
	}
	if _, ok := idx["1,2"]; !ok {
		t.Fatal("quarantine dropped a peer's record from the shared index")
	}

	// And a fresh store must still restore the peer's record.
	s3 := newTestServer(t, opts)
	n, err := s3.Restore()
	if err != nil || n != 1 {
		t.Fatalf("restore after peer quarantine: n=%d err=%v", n, err)
	}
	if st := s3.Stats(); st.RestoreHits != 1 || st.Personalizations != 0 {
		t.Fatalf("peer record re-pruned instead of restored: %+v", st)
	}
}
