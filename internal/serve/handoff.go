package serve

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/inference"
)

// ErrDraining reports a personalization rejected because the server is
// draining: a draining shard serves the tenants it already holds but accepts
// no new ones, so the cluster router can move its state elsewhere without
// chasing a moving target. cmd/crisp-serve maps it to HTTP 503 with a
// Retry-After header; callers should retry against the router, which will
// have re-placed the tenant by then.
var ErrDraining = errors.New("serve: draining: not accepting new tenants")

// ErrTenantNotFound reports a handoff restore for a key that no tier —
// warm record or shared snapshot store — knows about.
var ErrTenantNotFound = errors.New("serve: tenant not found in any tier")

// HandoffTenant identifies one tenant a draining shard hands off: the cache
// key, its class set, and the identity fingerprints the receiving shard must
// reproduce when it restores the tenant from the shared snapshot store.
// QuantSignature is zero on float32 servers (there are no codes to pin).
type HandoffTenant struct {
	Key            string `json:"key"`
	Classes        []int  `json:"classes"`
	Fingerprint    uint64 `json:"fingerprint"`
	QuantSignature uint64 `json:"quant_signature"`
}

// BeginDrain flips the server into draining mode: Personalize calls for
// tenants this server does not already hold (hot or warm) fail with
// ErrDraining, while resident tenants keep serving until they are handed
// off. Idempotent; there is no way back — a drained shard restarts fresh.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.mu.Lock()
	s.stats.Draining = true
	s.mu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain executes the shard-side half of a handoff: stop accepting new
// tenants, force queued predict batches out, flush every resident tenant to
// the shared snapshot store, and return the manifest of tenants (hot
// engines and warm delta records) another shard can now restore. Warm
// records are already durable — demotion writes the snapshot before the
// engine is released — so after the Flush every manifest entry has a disk
// copy. The manifest carries each tenant's structural fingerprint (and
// quant signature on int8 servers) so the receiving shard can verify its
// restored engine is bit-identical to the one that served here.
//
// Drain requires a snapshot store: without one there is nothing to hand
// off through, and it returns ErrNoSnapshotDir with the server still
// accepting traffic.
func (s *Server) Drain() ([]HandoffTenant, error) {
	if s.store == nil {
		return nil, ErrNoSnapshotDir
	}
	s.BeginDrain()
	s.DrainBatches()
	if _, err := s.Flush(); err != nil {
		return nil, fmt.Errorf("serve: drain flush: %w", err)
	}

	s.mu.Lock()
	tenants := make([]HandoffTenant, 0, len(s.entries)+len(s.warm))
	for _, el := range s.entries {
		p := el.Value.(*Personalization)
		t := HandoffTenant{Key: p.Key, Classes: p.Classes, Fingerprint: p.engine.Fingerprint()}
		if s.opts.Precision == inference.Int8 {
			t.QuantSignature = p.engine.QuantSignature()
		}
		tenants = append(tenants, t)
	}
	for _, el := range s.warm {
		we := el.Value.(*warmEntry)
		tenants = append(tenants, HandoffTenant{
			Key: we.key, Classes: we.classes, Fingerprint: we.fp, QuantSignature: we.qsig,
		})
	}
	s.mu.Unlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Key < tenants[j].Key })
	return tenants, nil
}

// RestoreTenant is the receiving side of a handoff: adopt the tenant for
// key from the cheapest tier that has it — a local warm record, else the
// shared snapshot store (re-reading the store index first, since the record
// was most likely written by another shard after this store opened) — and
// verify the rebuilt engine against the fingerprints the sending shard
// captured. wantFP/wantQSig of zero skip their check (an unverified adopt,
// e.g. recovering a shard that died without draining). Unlike the
// Personalize miss path it never falls back to a fresh pruning run: a
// handoff for state that cannot be found is an error the router must see,
// not a silent multi-second re-prune.
func (s *Server) RestoreTenant(key string, wantFP, wantQSig uint64) error {
	if s.store == nil {
		return ErrNoSnapshotDir
	}
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		// Already resident (e.g. lazily restored by a predict racing the
		// handoff): verify it is the same engine and adopt in place.
		p := el.Value.(*Personalization)
		fp := p.engine.Fingerprint()
		s.mu.Unlock()
		if wantFP != 0 && fp != wantFP {
			return fmt.Errorf("serve: handoff {%s}: resident fingerprint %016x, want %016x", key, fp, wantFP)
		}
		return nil
	}
	s.mu.Unlock()

	p, err := s.adoptTenant(key, wantFP, wantQSig)
	if err != nil {
		s.mu.Lock()
		s.stats.HandoffErrors++
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	inserted := s.insertLocked(key, p)
	if inserted {
		s.stats.HandoffRestores++
	}
	s.mu.Unlock()
	if !inserted {
		p.release()
	}
	s.rebalance()
	return nil
}

// adoptTenant rebuilds the tenant from warm or cold state and verifies it.
func (s *Server) adoptTenant(key string, wantFP, wantQSig uint64) (*Personalization, error) {
	var p *Personalization
	if we := s.takeWarm(key); we != nil {
		promoted, err := s.promoteWarm(we)
		if err == nil {
			p = promoted
			s.mu.Lock()
			s.stats.Promotions++
			s.mu.Unlock()
		} else {
			s.mu.Lock()
			s.stats.PromoteErrors++
			s.mu.Unlock()
		}
	}
	if p == nil {
		if !s.store.has(key) {
			// The record was written by another shard into the shared store
			// after this server indexed it; pick up their appends.
			if err := s.store.refresh(); err != nil {
				return nil, fmt.Errorf("serve: handoff {%s}: refreshing store: %w", key, err)
			}
		}
		if !s.store.has(key) {
			return nil, fmt.Errorf("serve: handoff {%s}: %w", key, ErrTenantNotFound)
		}
		restored, err := s.restoreOne(key)
		if err != nil {
			return nil, err
		}
		p = restored
	}
	if wantFP != 0 {
		if fp := p.engine.Fingerprint(); fp != wantFP {
			p.release()
			return nil, fmt.Errorf("serve: handoff {%s}: fingerprint %016x, want %016x", key, fp, wantFP)
		}
	}
	if wantQSig != 0 && s.opts.Precision == inference.Int8 {
		if sig := p.engine.QuantSignature(); sig != wantQSig {
			p.release()
			return nil, fmt.Errorf("serve: handoff {%s}: quant signature %016x, want %016x", key, sig, wantQSig)
		}
	}
	return p, nil
}
