package serve

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/sparsity"
)

// testEnv is the shared fixture: one tiny dataset and one lightly
// pre-trained universal model; each test builds its own Server around
// clones, so servers never interfere.
type testEnv struct {
	ds    *data.Dataset
	build func() *nn.Classifier
	base  *nn.Classifier
}

var sharedEnv = sync.OnceValue(func() *testEnv {
	cfg := data.Config{Name: "serve-test", NumClasses: 6, Channels: 3, H: 8, W: 8, Noise: 0.25, Jitter: 1, Seed: 5}
	ds := data.New(cfg)
	build := func() *nn.Classifier {
		return models.Build(models.ResNet, rand.New(rand.NewSource(41)), cfg.NumClasses, 1)
	}
	base := build()
	all := []int{0, 1, 2, 3, 4, 5}
	opt := nn.NewSGD(0.05, 0.9, 4e-5)
	pruner.Finetune(base, ds.MakeSplit("pretrain", all, 8), 2, 16, opt, rand.New(rand.NewSource(42)))
	return &testEnv{ds: ds, build: build, base: base}
})

// quickOpts keeps personalization cheap: one pruning iteration, one epoch.
func quickOpts() Options {
	return Options{
		Prune: pruner.Options{
			Target: 0.7, NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4,
			Iterations: 1, FinetuneEpochs: 1, BatchSize: 8, LR: 0.01,
		},
		TrainPerClass: 6,
		TestPerClass:  4,
	}
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	env := sharedEnv()
	s, err := NewServer(env.build, env.base, env.ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestNewServerRejectsInvalidPruneOptions(t *testing.T) {
	env := sharedEnv()
	opts := quickOpts()
	opts.Prune.Target = 1.5
	if _, err := NewServer(env.build, env.base, env.ds, opts); err == nil {
		t.Fatal("invalid prune target must surface as an error, not a panic")
	}
}

func TestCanonicalize(t *testing.T) {
	s := newTestServer(t, quickOpts())
	canon, key, err := s.Canonicalize([]int{4, 1, 4, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if key != "1,2,4" {
		t.Fatalf("key %q, want 1,2,4", key)
	}
	if len(canon) != 3 || canon[0] != 1 || canon[1] != 2 || canon[2] != 4 {
		t.Fatalf("canon %v", canon)
	}
	if _, _, err := s.Canonicalize(nil); err == nil {
		t.Fatal("empty class set must fail")
	}
	if _, _, err := s.Canonicalize([]int{0, 6}); err == nil {
		t.Fatal("out-of-range class must fail")
	}
	if _, _, err := s.Canonicalize([]int{-1}); err == nil {
		t.Fatal("negative class must fail")
	}
}

func TestPersonalizeCachesEngines(t *testing.T) {
	s := newTestServer(t, quickOpts())
	p1, cached, err := s.Personalize([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first request cannot be a cache hit")
	}
	if p1.Engine() == nil || p1.Engine().CompressedLayers == 0 {
		t.Fatal("personalization did not compile a sparse engine")
	}
	if p1.Report.AchievedSparsity <= 0 {
		t.Fatalf("no sparsity achieved: %+v", p1.Report)
	}
	// Same set in a different order and with duplicates must hit the cache
	// and return the same engine.
	p2, cached, err := s.Personalize([]int{3, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !cached || p2 != p1 {
		t.Fatal("reordered class set must hit the cached engine")
	}
	st := s.Stats()
	if st.Requests != 2 || st.CacheHits != 1 || st.CacheMisses != 1 || st.Personalizations != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	opts := quickOpts()
	opts.CacheSize = 2
	s := newTestServer(t, opts)
	mustPersonalize := func(classes []int) *Personalization {
		p, _, err := s.Personalize(classes)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := mustPersonalize([]int{0, 1})
	mustPersonalize([]int{1, 2})
	// Touch A so {1,2} is the LRU victim when {2,3} arrives.
	if p, cached, _ := s.Personalize([]int{0, 1}); !cached || p != a {
		t.Fatal("expected cache hit on {0,1}")
	}
	mustPersonalize([]int{2, 3})
	st := s.Stats()
	if st.Evictions != 1 || st.CachedEngines != 2 {
		t.Fatalf("stats %+v", st)
	}
	// {0,1} survived; {1,2} was evicted and personalizes again.
	if _, cached, _ := s.Personalize([]int{0, 1}); !cached {
		t.Fatal("{0,1} should have survived eviction")
	}
	if _, cached, _ := s.Personalize([]int{1, 2}); cached {
		t.Fatal("{1,2} should have been evicted")
	}
}

func TestSingleflightDedup(t *testing.T) {
	s := newTestServer(t, quickOpts())
	const clients = 6
	var wg sync.WaitGroup
	ps := make([]*Personalization, clients)
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			p, _, err := s.Personalize([]int{2, 4})
			if err != nil {
				t.Error(err)
				return
			}
			ps[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if ps[i] != ps[0] {
			t.Fatal("concurrent identical requests must share one personalization")
		}
	}
	st := s.Stats()
	if st.Personalizations != 1 {
		t.Fatalf("identical in-flight requests pruned %d times, want 1 (stats %+v)", st.Personalizations, st)
	}
	if st.CacheHits+st.DedupJoins != clients-1 {
		t.Fatalf("requests neither joined nor hit: %+v", st)
	}
}

// TestConcurrentOverlappingClassSets is the -race hammer: many clients
// personalizing and predicting overlapping class sets at once.
func TestConcurrentOverlappingClassSets(t *testing.T) {
	s := newTestServer(t, quickOpts())
	sets := [][]int{{0, 1}, {1, 2}, {0, 1, 2}, {2, 0}}
	const clients = 8
	const rounds = 5
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				classes := sets[(c+r)%len(sets)]
				if r%2 == 0 {
					if _, _, err := s.Personalize(classes); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				preds, labels, _, err := s.PredictSamples(classes, 8)
				if err != nil {
					t.Error(err)
					return
				}
				if len(preds) != 8 || len(labels) != 8 {
					t.Errorf("batch sizes %d/%d, want 8/8", len(preds), len(labels))
					return
				}
				for _, p := range preds {
					if p < 0 || p >= 6 {
						t.Errorf("prediction %d outside class range", p)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	st := s.Stats()
	if st.Requests != clients*rounds {
		t.Fatalf("requests %d, want %d", st.Requests, clients*rounds)
	}
	if st.CacheHits+st.CacheMisses+st.DedupJoins != st.Requests {
		t.Fatalf("request accounting inconsistent: %+v", st)
	}
	if st.Personalizations != uint64(len(sets)) {
		t.Fatalf("personalizations %d, want %d (one per distinct set)", st.Personalizations, len(sets))
	}
	if st.CacheHits == 0 {
		t.Fatalf("repeated class sets produced no cache hits: %+v", st)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight gauge stuck at %d", st.InFlight)
	}
}

// TestPredictSamplesCoversEveryClass guards the round-robin selection: a
// batch smaller than classes×per must still include samples of every class
// in the set.
func TestPredictSamplesCoversEveryClass(t *testing.T) {
	s := newTestServer(t, quickOpts())
	_, labels, _, err := s.PredictSamples([]int{0, 2, 4, 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 5 {
		t.Fatalf("labels %v, want 5", labels)
	}
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	for _, c := range []int{0, 2, 4, 5} {
		if !seen[c] {
			t.Fatalf("class %d missing from sampled batch (labels %v)", c, labels)
		}
	}
}

// TestRebuildAfterEvictionIsDeterministic checks an evicted engine rebuilds
// to the same predictions (splits and pruning are seeded by the class key).
func TestRebuildAfterEvictionIsDeterministic(t *testing.T) {
	opts := quickOpts()
	opts.CacheSize = 1
	s := newTestServer(t, opts)
	first, _, _, err := s.PredictSamples([]int{1, 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Personalize([]int{2, 5}); err != nil { // evicts {1,4}
		t.Fatal(err)
	}
	again, _, _, err := s.PredictSamples([]int{1, 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("rebuilt engine diverged at sample %d: %d vs %d", i, first[i], again[i])
		}
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("eviction did not happen; test is vacuous")
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	wg.Add(12)
	for i := 0; i < 12; i++ {
		go func() {
			defer wg.Done()
			p.Do(func() {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				for j := 0; j < 1000; j++ {
					_ = j * j
				}
				cur.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("pool ran %d jobs at once, bound is 3", got)
	}
}

func TestPoolMapOrder(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	out := make([]int, 20)
	p.Map(len(out), func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d]=%d", i, v)
		}
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Do(func() {})
	p.Close()
	p.Close()
}

// TestPoolCloseConcurrentWithSubmit races Close against a storm of Do
// calls: no job may be dropped and nothing may panic — submissions that
// lose the race run inline.
func TestPoolCloseConcurrentWithSubmit(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int32
	var wg sync.WaitGroup
	const jobs = 64
	wg.Add(jobs)
	for i := 0; i < jobs; i++ {
		go func() {
			defer wg.Done()
			p.Do(func() { ran.Add(1) })
		}()
	}
	p.Close()
	wg.Wait()
	if got := ran.Load(); got != jobs {
		t.Fatalf("%d of %d jobs ran across the Close race", got, jobs)
	}
	// Post-close work still completes (inline).
	p.Do(func() { ran.Add(1) })
	p.Map(4, func(int) { ran.Add(1) })
	if got := ran.Load(); got != jobs+5 {
		t.Fatalf("post-close work dropped: %d", got)
	}
}
