package serve

import (
	"errors"
	"testing"
)

// TestDrainRequiresSnapshotStore: the snapshot store is the handoff
// channel; without one Drain and RestoreTenant must refuse and leave the
// server serving.
func TestDrainRequiresSnapshotStore(t *testing.T) {
	s := newTestServer(t, quickOpts())
	if _, err := s.Drain(); !errors.Is(err, ErrNoSnapshotDir) {
		t.Fatalf("Drain without store: %v, want ErrNoSnapshotDir", err)
	}
	if s.Draining() {
		t.Fatal("a refused drain must leave the server accepting traffic")
	}
	if err := s.RestoreTenant("1,3", 0, 0); !errors.Is(err, ErrNoSnapshotDir) {
		t.Fatalf("RestoreTenant without store: %v, want ErrNoSnapshotDir", err)
	}
	if _, _, err := s.Personalize([]int{1, 3}); err != nil {
		t.Fatalf("server must still personalize after refused drain: %v", err)
	}
}

// TestDrainHandoffRoundTrip is the in-process version of a cluster
// rebalance: shard A drains, shard B (sharing the snapshot directory, with
// a store index opened BEFORE A wrote anything — forcing the refresh path)
// adopts every manifest tenant, and the adopted engines produce
// bit-identical logits without a single pruning run on B.
func TestDrainHandoffRoundTrip(t *testing.T) {
	opts := quickOpts()
	opts.SnapshotDir = t.TempDir()
	a := newTestServer(t, opts)
	b := newTestServer(t, opts) // opens (empty) store index before A writes

	pa1, _, err := a.Personalize([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	pa2, _, err := a.Personalize([]int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	x := tierX(a, []int{1, 3})
	wantLogits := append([]float64(nil), pa1.Engine().Logits(x).Data...)

	tenants, err := a.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 || tenants[0].Key != "0,2,4" || tenants[1].Key != "1,3" {
		t.Fatalf("manifest %+v, want sorted keys [0,2,4 1,3]", tenants)
	}
	if tenants[0].Fingerprint != pa2.Engine().Fingerprint() || tenants[1].Fingerprint != pa1.Engine().Fingerprint() {
		t.Fatalf("manifest fingerprints do not match the served engines: %+v", tenants)
	}
	if !a.Draining() || !a.Stats().Draining {
		t.Fatal("drain did not mark the server draining")
	}

	// A keeps serving its residents but refuses new tenants.
	if _, cached, err := a.Personalize([]int{3, 1}); err != nil || !cached {
		t.Fatalf("resident tenant on draining shard: cached=%v err=%v", cached, err)
	}
	if _, _, err := a.Personalize([]int{5}); !errors.Is(err, ErrDraining) {
		t.Fatalf("new tenant on draining shard: %v, want ErrDraining", err)
	}

	// Drain is idempotent: the manifest is stable while residents remain.
	again, err := a.Drain()
	if err != nil || len(again) != len(tenants) {
		t.Fatalf("second drain: %d tenants, err=%v", len(again), err)
	}

	for _, tn := range tenants {
		if err := b.RestoreTenant(tn.Key, tn.Fingerprint, tn.QuantSignature); err != nil {
			t.Fatalf("handoff %q: %v", tn.Key, err)
		}
	}
	st := b.Stats()
	if st.HandoffRestores != 2 || st.Personalizations != 0 || st.HandoffErrors != 0 {
		t.Fatalf("adoption must be restore-only: %+v", st)
	}
	pb, cached, err := b.Personalize([]int{1, 3})
	if err != nil || !cached {
		t.Fatalf("adopted tenant not resident on B: cached=%v err=%v", cached, err)
	}
	if fp := pb.Engine().Fingerprint(); fp != pa1.Engine().Fingerprint() {
		t.Fatalf("fingerprint drifted across handoff: %016x vs %016x", fp, pa1.Engine().Fingerprint())
	}
	got := pb.Engine().Logits(x).Data
	for i := range wantLogits {
		if got[i] != wantLogits[i] {
			t.Fatalf("logit %d drifted across handoff: %v vs %v", i, got[i], wantLogits[i])
		}
	}

	// Re-handing-off a resident tenant is a verified no-op; a fingerprint
	// mismatch on a resident is the router's signal that state diverged.
	if err := b.RestoreTenant("1,3", pa1.Engine().Fingerprint(), 0); err != nil {
		t.Fatalf("resident re-handoff: %v", err)
	}
	if err := b.RestoreTenant("1,3", 12345, 0); err == nil {
		t.Fatal("resident fingerprint mismatch must fail the handoff")
	}
}

// TestRestoreTenantWarmPath: a tenant demoted to this server's own warm
// tier is adopted by promotion, not by a disk read.
func TestRestoreTenantWarmPath(t *testing.T) {
	opts := quickOpts()
	opts.CacheSize = 1
	opts.MemoryBudgetBytes = 1 << 40
	opts.SnapshotDir = t.TempDir()
	s := newTestServer(t, opts)

	p1, _, err := s.Personalize([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	fp := p1.Engine().Fingerprint()
	// A second tenant squeezes the first out of the one-engine hot tier.
	if _, _, err := s.Personalize([]int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WarmEntries != 1 {
		t.Fatalf("fixture did not demote: %+v", st)
	}
	if err := s.RestoreTenant("1,3", fp, 0); err != nil {
		t.Fatalf("warm adoption: %v", err)
	}
	st := s.Stats()
	if st.HandoffRestores != 1 || st.Promotions != 1 || st.WarmHits != 1 || st.Personalizations != 2 {
		t.Fatalf("warm adoption bookkeeping: %+v", st)
	}
}

// TestRestoreTenantErrors: a handoff never falls back to pruning — missing
// state and identity mismatches are loud errors, while wantFP=0 allows an
// unverified adopt (recovering a shard that died without draining).
func TestRestoreTenantErrors(t *testing.T) {
	opts := quickOpts()
	opts.SnapshotDir = t.TempDir()
	a := newTestServer(t, opts)
	if _, _, err := a.Personalize([]int{2, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Flush(); err != nil {
		t.Fatal(err)
	}

	b := newTestServer(t, opts)
	if err := b.RestoreTenant("0,1", 0, 0); !errors.Is(err, ErrTenantNotFound) {
		t.Fatalf("missing tenant: %v, want ErrTenantNotFound", err)
	}
	if err := b.RestoreTenant("2,5", 12345, 0); err == nil {
		t.Fatal("fingerprint mismatch must fail the handoff")
	}
	if st := b.Stats(); st.HandoffErrors != 2 || st.Personalizations != 0 {
		t.Fatalf("handoff error bookkeeping: %+v", st)
	}
	if err := b.RestoreTenant("2,5", 0, 0); err != nil {
		t.Fatalf("unverified adopt: %v", err)
	}
	if st := b.Stats(); st.HandoffRestores != 1 || st.Personalizations != 0 {
		t.Fatalf("unverified adopt bookkeeping: %+v", st)
	}
}

// TestLazyFailoverAdoptsPeerSnapshot: when a shard inherits a dead peer's
// tenant through ordinary traffic (no handoff call), the personalize miss
// path refreshes the shared store index and restores instead of re-pruning.
func TestLazyFailoverAdoptsPeerSnapshot(t *testing.T) {
	opts := quickOpts()
	opts.SnapshotDir = t.TempDir()
	a := newTestServer(t, opts)
	b := newTestServer(t, opts) // index opened while the store is empty

	pa, _, err := a.Personalize([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Flush(); err != nil {
		t.Fatal(err)
	}

	pb, cached, err := b.Personalize([]int{1, 3})
	if err != nil || cached {
		t.Fatalf("failover personalize: cached=%v err=%v", cached, err)
	}
	st := b.Stats()
	if st.RestoreHits != 1 || st.Personalizations != 0 {
		t.Fatalf("failover must restore, not re-prune: %+v", st)
	}
	if pb.Engine().Fingerprint() != pa.Engine().Fingerprint() {
		t.Fatal("failover restore is not bit-identical to the dead shard's engine")
	}
}
