package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// ---- Arrival-relative linger (the PR's batcher regression fix). ----

// TestFlushWaitRelativeToArrival unit-tests the leader's wait computation:
// the linger window closes at oldestArrival+linger regardless of when the
// leader's goroutine gets scheduled, and a deadline tighter than the linger
// window wins (minus the engine-latency guard).
func TestFlushWaitRelativeToArrival(t *testing.T) {
	b, _ := stubBatcher(100, 10*time.Millisecond, 100)
	now := time.Now()
	tests := []struct {
		name     string
		arrival  time.Time
		deadline time.Time
		ewmaNS   int64
		wantMax  time.Duration // wait must be <= this
		wantMin  time.Duration // wait must be > this
		wantCut  bool
	}{
		{"fresh rider waits the full linger", now, time.Time{}, 0, 10 * time.Millisecond, 9 * time.Millisecond, false},
		{"stale rider flushes immediately", now.Add(-time.Second), time.Time{}, 0, 0, -2 * time.Second, false},
		{"half-spent linger window", now.Add(-5 * time.Millisecond), time.Time{}, 0, 5 * time.Millisecond, 4 * time.Millisecond, false},
		{"deadline tighter than linger wins", now, now.Add(3 * time.Millisecond), 0, 3 * time.Millisecond, 2 * time.Millisecond, true},
		{"deadline looser than linger loses", now, now.Add(time.Minute), 0, 10 * time.Millisecond, 9 * time.Millisecond, false},
		{"engine guard shortens the deadline", now, now.Add(8 * time.Millisecond), (4 * time.Millisecond).Nanoseconds(), 4 * time.Millisecond, 3 * time.Millisecond, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			b.ewmaNS.Store(tc.ewmaNS)
			wait, cut := b.flushWait(tc.arrival, tc.deadline, now)
			if wait > tc.wantMax || wait <= tc.wantMin {
				t.Fatalf("wait %v, want in (%v, %v]", wait, tc.wantMin, tc.wantMax)
			}
			if cut != tc.wantCut {
				t.Fatalf("deadlineCut %v, want %v", cut, tc.wantCut)
			}
		})
	}
}

// TestBatcherLingerRelativeToArrival is the end-to-end regression for the
// pathological case: a leader whose goroutine was descheduled between
// enqueueing and leading must NOT tax the queue with a fresh full linger —
// the window is anchored at the oldest rider's arrival. Simulated by
// planting a rider whose arrival is long past and driving lead() directly.
func TestBatcherLingerRelativeToArrival(t *testing.T) {
	const linger = 250 * time.Millisecond
	b, c := stubBatcher(100, linger, 100)
	req := &predictReq{
		x: sample(3), rows: 1, done: make(chan struct{}, 1),
		arrival: time.Now().Add(-time.Second), // waited far past the linger already
		class:   QoSStandard,
	}
	b.mu.Lock()
	b.pending = append(b.pending, req)
	b.queued = req.rows
	b.counters.queued.Add(int64(req.rows))
	b.mu.Unlock()

	start := time.Now()
	b.lead()
	<-req.done
	if req.err != nil {
		t.Fatal(req.err)
	}
	// Before the fix lead() lingered a full window from when it ran; the
	// fixed leader sees the window already closed and flushes immediately.
	if waited := time.Since(start); waited > linger/2 {
		t.Fatalf("stale rider waited another %v; linger must be relative to arrival, not leader wake-up", waited)
	}
	if got := c.flushLinger.Load(); got != 1 {
		t.Fatalf("flushLinger %d, want 1", got)
	}
	if len(req.preds) != 1 || req.preds[0] != 3 {
		t.Fatalf("preds %v, want [3]", req.preds)
	}
}

// TestBatcherDeadlineFlush: a rider whose latency budget closes before the
// linger window flushes at the deadline and is counted as a deadline flush.
func TestBatcherDeadlineFlush(t *testing.T) {
	b, c := stubBatcher(100, time.Minute, 100)
	start := time.Now()
	preds, err := b.submit(sample(9), QoSGold, start.Add(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 || preds[0] != 9 {
		t.Fatalf("preds %v, want [9]", preds)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("deadline rider waited %v against a 1m linger", waited)
	}
	if got := c.flushDeadline.Load(); got != 1 {
		t.Fatalf("flushDeadline %d, want 1 (size=%d linger=%d forced=%d)",
			got, c.flushSize.Load(), c.flushLinger.Load(), c.flushForced.Load())
	}
}

// TestBatcherQueueWaitObserved: every flushed rider lands one observation in
// its class's queue-wait histogram, with sum and count coherent.
func TestBatcherQueueWaitObserved(t *testing.T) {
	b, c := stubBatcher(2, time.Minute, 100)
	var wg sync.WaitGroup
	for i, class := range []QoSClass{QoSGold, QoSBatch} {
		wg.Add(1)
		go func(i int, class QoSClass) {
			defer wg.Done()
			if _, err := b.submit(sample(i), class, time.Time{}); err != nil {
				t.Error(err)
			}
		}(i, class)
	}
	wg.Wait()
	for _, class := range []QoSClass{QoSGold, QoSBatch} {
		if got := c.qwCount[class].Load(); got != 1 {
			t.Fatalf("class %v wait count %d, want 1", class, got)
		}
		var hist uint64
		for i := range c.qwHist[class] {
			hist += c.qwHist[class][i].Load()
		}
		if hist != 1 {
			t.Fatalf("class %v histogram total %d, want 1", class, hist)
		}
	}
	if got := c.qwCount[QoSStandard].Load(); got != 0 {
		t.Fatalf("standard wait count %d, want 0 (no standard riders)", got)
	}
}

// ---- QoS policy plumbing. ----

func TestQoSClassRoundTrip(t *testing.T) {
	for c := QoSClass(0); c < NumQoSClasses; c++ {
		got, err := ParseQoSClass(c.String())
		if err != nil || got != c {
			t.Fatalf("round trip %v: got %v err %v", c, got, err)
		}
	}
	if got, err := ParseQoSClass(""); err != nil || got != QoSStandard {
		t.Fatalf("empty class: got %v err %v, want standard", got, err)
	}
	if _, err := ParseQoSClass("platinum"); err == nil {
		t.Fatal("unknown class must be rejected")
	}
}

func TestParseQoSPolicy(t *testing.T) {
	base := DefaultQoSPolicy(QoSGold)
	pol, err := ParseQoSPolicy(base, "budget=5ms,rps=123,burst=7")
	if err != nil {
		t.Fatal(err)
	}
	if pol.LatencyBudget != 5*time.Millisecond || pol.QuotaRPS != 123 || pol.QuotaBurst != 7 {
		t.Fatalf("parsed %+v", pol)
	}
	if pol, err := ParseQoSPolicy(base, ""); err != nil || pol != base {
		t.Fatalf("empty spec must return base unchanged: %+v err %v", pol, err)
	}
	for _, bad := range []string{"budget", "budget=xyz", "rps=abc", "color=red"} {
		if _, err := ParseQoSPolicy(base, bad); err == nil {
			t.Fatalf("spec %q must be rejected", bad)
		}
	}
}

func TestQoSRuntimeDefaults(t *testing.T) {
	rt := newQoSRuntime(QoSOptions{}, 256)
	// Default watermark 0.5 of default global queue 4*MaxQueue.
	if rt.shedAt != 512 {
		t.Fatalf("shedAt %d, want 512", rt.shedAt)
	}
	if rt.policy(QoSGold).LatencyBudget >= rt.policy(QoSBatch).LatencyBudget {
		t.Fatal("gold budget must be tighter than batch")
	}
	if rt.policy(QoSGold).QuotaRPS <= rt.policy(QoSBatch).QuotaRPS {
		t.Fatal("gold quota must exceed batch")
	}
	// Out-of-range classes degrade to standard, never panic.
	if rt.policy(QoSClass(99)) != rt.policy(QoSStandard) {
		t.Fatal("out-of-range class must degrade to standard")
	}
}

func TestTokenBucket(t *testing.T) {
	var tb tokenBucket
	now := time.Now()
	// Starts full at burst.
	if !tb.take(3, 10, 3, now) {
		t.Fatal("full bucket must cover burst")
	}
	if tb.take(1, 10, 3, now) {
		t.Fatal("empty bucket must refuse")
	}
	// Refills at rps; a failed take leaves the balance untouched.
	if !tb.take(1, 10, 3, now.Add(100*time.Millisecond)) {
		t.Fatal("0.1s at 10 rps refills 1 token")
	}
	// Cap at burst, never beyond.
	if !tb.take(3, 10, 3, now.Add(time.Hour)) {
		t.Fatal("bucket must refill to burst")
	}
	if tb.take(1, 10, 3, now.Add(time.Hour)) {
		t.Fatal("bucket must not refill beyond burst")
	}
	// rps <= 0 is unlimited.
	if !tb.take(1e9, 0, 0, now) {
		t.Fatal("rps<=0 must always admit")
	}
}

// ---- Admission and shedding through Server.Predict (stub-free table). ----

// shedOpts returns serving options with an aggressive QoS config: burst-1
// quotas with negligible refill and a shed watermark of one queued sample,
// so a second over-quota predict sheds deterministically while the first
// pins the queue.
func shedOpts(class QoSClass) Options {
	opts := quickOpts()
	opts.MaxBatch = 100 // only forceFlush releases the pinned leader
	opts.Linger = 30 * time.Second
	opts.MaxQueue = 64
	pol := QoSPolicy{LatencyBudget: time.Hour, QuotaRPS: 1e-9, QuotaBurst: 1}
	opts.QoS = QoSOptions{ShedWatermark: 1, GlobalQueue: 1}
	switch class {
	case QoSGold:
		opts.QoS.Gold = pol
	case QoSBatch:
		opts.QoS.Batch = pol
	default:
		opts.QoS.Standard = pol
	}
	return opts
}

// TestWeightedSheddingPerClass: for every QoS class, a tenant that exhausts
// its quota while the server is past the shed watermark is dropped with
// ErrOverQuota and counted in ShedByClass — and a compliant tenant keeps
// being served through the same pressure.
func TestWeightedSheddingPerClass(t *testing.T) {
	for c := QoSClass(0); c < NumQoSClasses; c++ {
		t.Run(c.String(), func(t *testing.T) {
			s := newTestServer(t, shedOpts(c))
			abuser, compliant := []int{0, 2}, []int{1, 3}
			p, _, err := s.PersonalizeQoS(abuser, c)
			if err != nil {
				t.Fatal(err)
			}
			// The compliant tenant keeps the default (unthrottled) policy of
			// a DIFFERENT class, so only the abuser's bucket is burst-1.
			other := QoSGold
			if c == QoSGold {
				other = QoSStandard
			}
			pc, _, err := s.PersonalizeQoS(compliant, other)
			if err != nil {
				t.Fatal(err)
			}
			xs := splitRows(s.ds.MakeSplit("shed-"+c.String(), abuser, 2).X)
			cx := splitRows(s.ds.MakeSplit("shed-ok-"+c.String(), compliant, 2).X)

			// First predict spends the burst-1 bucket and pins the queue
			// behind the lingering leader (queued=1 >= shedAt=1).
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := s.Predict(abuser, xs[0]); err != nil {
					t.Errorf("first predict (burst) failed: %v", err)
				}
			}()
			waitFor(t, func() bool { return s.Stats().QueueDepth >= 1 })

			// Second predict: bucket empty, pressure on → shed.
			if _, err := s.Predict(abuser, xs[1]); !errors.Is(err, ErrOverQuota) {
				t.Fatalf("over-quota predict returned %v, want ErrOverQuota", err)
			}
			// Compliant tenant rides through the same pressure untouched.
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := s.Predict(compliant, cx[0]); err != nil {
					t.Errorf("compliant predict shed: %v", err)
				}
			}()
			waitFor(t, func() bool { return s.Stats().QueueDepth >= 2 })

			p.bat.forceFlush()
			pc.bat.forceFlush()
			wg.Wait()

			st := s.Stats()
			if got := st.ShedByClass[c.String()]; got != 1 {
				t.Fatalf("ShedByClass[%s] = %d, want 1 (%v)", c, got, st.ShedByClass)
			}
			var total uint64
			for _, v := range st.ShedByClass {
				total += v
			}
			if total != 1 {
				t.Fatalf("total sheds %d, want 1 (%v)", total, st.ShedByClass)
			}
			if st.Rejected != 0 {
				t.Fatalf("Rejected %d, want 0 — shedding must not masquerade as queue overflow", st.Rejected)
			}
		})
	}
}

// TestOverQuotaAdmittedBelowWatermark: quotas only bite under pressure — an
// over-quota tenant on an idle server is still served.
func TestOverQuotaAdmittedBelowWatermark(t *testing.T) {
	opts := quickOpts()
	opts.MaxBatch = 4
	opts.Linger = time.Millisecond
	opts.MaxQueue = 64
	// Burst-1 quota but a sky-high watermark: pressure never arrives.
	opts.QoS = QoSOptions{Standard: QoSPolicy{LatencyBudget: time.Hour, QuotaRPS: 1e-9, QuotaBurst: 1}}
	s := newTestServer(t, opts)
	if _, _, err := s.Personalize([]int{0, 4}); err != nil {
		t.Fatal(err)
	}
	xs := splitRows(s.ds.MakeSplit("underwm", []int{0, 4}, 2).X)
	for i := 0; i < 2; i++ {
		if _, err := s.Predict([]int{0, 4}, xs[i]); err != nil {
			t.Fatalf("predict %d on an idle server shed: %v", i, err)
		}
	}
	if st := s.Stats(); st.ShedByClass["standard"] != 0 {
		t.Fatalf("idle server shed %v", st.ShedByClass)
	}
}

// TestQoSDisabledNeverSheds: -qos-off (QoSOptions.Disabled) must bypass
// quotas and deadlines entirely — the FIFO baseline semantics.
func TestQoSDisabledNeverSheds(t *testing.T) {
	opts := quickOpts()
	opts.MaxBatch = 4
	opts.Linger = time.Millisecond
	opts.MaxQueue = 64
	opts.QoS = QoSOptions{
		Disabled: true,
		Standard: QoSPolicy{QuotaRPS: 1e-9, QuotaBurst: 1},
		// Even an absurd watermark must be ignored when disabled.
		ShedWatermark: 1, GlobalQueue: 1,
	}
	s := newTestServer(t, opts)
	if s.Stats().QoSEnabled {
		t.Fatal("QoSEnabled must report false when disabled")
	}
	if _, _, err := s.Personalize([]int{2, 5}); err != nil {
		t.Fatal(err)
	}
	xs := splitRows(s.ds.MakeSplit("fifo", []int{2, 5}, 3).X)
	for i, x := range xs {
		if _, err := s.Predict([]int{2, 5}, x); err != nil {
			t.Fatalf("predict %d with QoS disabled failed: %v", i, err)
		}
	}
}

// TestPersonalizeQoSReclass: PersonalizeQoS on a cached tenant re-classes it
// in place (serving-time state only; snapshots do not persist it).
func TestPersonalizeQoSReclass(t *testing.T) {
	s := newTestServer(t, quickOpts())
	p, cached, err := s.Personalize([]int{1, 4})
	if err != nil || cached {
		t.Fatalf("first personalize: cached=%v err=%v", cached, err)
	}
	if got := p.QoS(); got != QoSStandard {
		t.Fatalf("default class %v, want standard", got)
	}
	p2, cached, err := s.PersonalizeQoS([]int{1, 4}, QoSGold)
	if err != nil || !cached {
		t.Fatalf("re-class: cached=%v err=%v", cached, err)
	}
	if p2 != p {
		t.Fatal("re-class must hit the cached personalization")
	}
	if got := p.QoS(); got != QoSGold {
		t.Fatalf("class after re-class %v, want gold", got)
	}
}

// ---- Priority lanes. ----

// TestPoolLaneStarvationFreedom: with >= 2 workers, a personalize flood can
// never occupy every worker — a predict-lane job still runs. This is the
// guarantee that a burst of explicit /personalize prunes cannot starve
// /predict cache-miss resolution (and vice versa, by symmetry).
func TestPoolLaneStarvationFreedom(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	// Flood the personalize lane far past the worker count; the lane cap
	// (workers-1 = 1) admits one at a time, leaving a worker free.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.DoLane(LanePersonalize, func() {
				started <- struct{}{}
				<-block
			})
		}()
	}
	<-started // at least one personalize job is occupying its worker

	done := make(chan struct{})
	go func() {
		p.DoLane(LanePredict, func() {})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("predict-lane job starved behind the personalize flood")
	}
	close(block)
	wg.Wait()
}

// ---- The -race storm with mixed QoS classes. ----

// TestQoSStormRace hammers one QoS-enabled server with concurrent predicts
// across all three classes, tight quotas, deadline flushes, re-classing and
// a forced drain — the -race interleaving test for the scheduling layer.
func TestQoSStormRace(t *testing.T) {
	opts := quickOpts()
	opts.CacheSize = 4
	opts.MaxBatch = 4
	opts.Linger = 2 * time.Millisecond
	opts.MaxQueue = 16
	opts.QoS = QoSOptions{
		Gold:     QoSPolicy{LatencyBudget: time.Millisecond, QuotaRPS: 50, QuotaBurst: 4},
		Standard: QoSPolicy{LatencyBudget: 5 * time.Millisecond, QuotaRPS: 25, QuotaBurst: 2},
		Batch:    QoSPolicy{LatencyBudget: 50 * time.Millisecond, QuotaRPS: 10, QuotaBurst: 2},
		// Low watermark so the storm actually sheds.
		ShedWatermark: 0.1, GlobalQueue: 10,
	}
	s := newTestServer(t, opts)

	sets := [][]int{{0, 1}, {2, 3}, {4, 5}}
	classes := []QoSClass{QoSGold, QoSStandard, QoSBatch}
	inputs := make([][]*tensor.Tensor, len(sets))
	for i, set := range sets {
		if _, _, err := s.PersonalizeQoS(set, classes[i]); err != nil {
			t.Fatal(err)
		}
		inputs[i] = splitRows(s.ds.MakeSplit("qos-storm", set, 2).X)
	}

	const clients = 8
	const rounds = 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (c + r) % len(sets)
				switch {
				case c == 0 && r == rounds/2:
					// Re-class a tenant mid-storm.
					if _, _, err := s.PersonalizeQoS(sets[i], classes[(i+1)%len(classes)]); err != nil {
						t.Errorf("re-class: %v", err)
					}
				case c == 1 && r == rounds-1:
					s.DrainBatches()
				default:
					x := inputs[i][(c+r)%len(inputs[i])]
					_, err := s.Predict(sets[i], x)
					if err != nil && !errors.Is(err, ErrOverQuota) && !errors.Is(err, ErrOverloaded) {
						t.Errorf("predict: %v", err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	s.DrainBatches()

	st := s.Stats()
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth stuck at %d", st.QueueDepth)
	}
	if !st.QoSEnabled {
		t.Fatal("QoSEnabled must report true")
	}
	// Served + shed + overloaded must cover every attempted predict; the
	// wait histograms must be coherent with their counts.
	var waits uint64
	for name, qw := range st.QueueWait {
		var hist uint64
		for _, b := range qw.Hist {
			hist += b
		}
		if hist != qw.Count {
			t.Fatalf("class %s histogram total %d != count %d", name, hist, qw.Count)
		}
		waits += qw.Count
	}
	if st.SamplesPredicted == 0 {
		t.Fatal("storm predicted nothing")
	}
	if waits != st.SamplesPredicted {
		// Every predicted sample in this test is a 1-row request that went
		// through a batcher, so wait observations must match samples.
		t.Fatalf("wait observations %d != samples predicted %d", waits, st.SamplesPredicted)
	}
}
