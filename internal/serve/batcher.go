package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
)

// ErrOverloaded reports an admission-control rejection: the personalization's
// predict queue is full, so the request was dropped instead of queued without
// bound. cmd/crisp-serve maps it to HTTP 429; callers should back off and
// retry.
var ErrOverloaded = errors.New("serve: overloaded: predict queue full")

// predictReq is one caller's Predict waiting in a batcher's queue. The
// caller blocks on done; the flusher fills preds/err and then sends one
// value on done (not close: requests are pooled, and a buffered channel can
// be reused where a closed one cannot).
type predictReq struct {
	x    *tensor.Tensor // [B,C,H,W]
	rows int            // x.Shape[0]
	done chan struct{}  // buffered(1); one send per enqueue
	// arrival is when the request entered the queue; the leader's flush
	// decision and the queue-wait histogram are both relative to it.
	arrival time.Time
	// deadline is arrival + the rider's QoS latency budget; zero means no
	// deadline (QoS disabled or no budget). class tags the rider's QoS
	// class for the queue-wait histogram.
	deadline time.Time
	class    QoSClass
	// preds is this request's slice of the fanned-out batch result; err is
	// set instead when the whole batch failed (or the queue rejected it
	// before enqueueing).
	preds []int
	err   error
}

// reqPool recycles predictReqs (with their channels) across Predict calls:
// the submitting goroutine is the only owner after the done signal, so it
// returns the request once it has copied the result out. Keeps the
// steady-state batched predict path allocation-free on the serve side.
var reqPool = sync.Pool{New: func() any {
	return &predictReq{done: make(chan struct{}, 1)}
}}

// lingerTimers recycles the leaders' linger timers (one per flush).
var lingerTimers sync.Pool

// batcher coalesces concurrent Predict calls against one personalized
// engine into shared LogitsBatch invocations. There is no background
// goroutine: the first caller into an empty queue becomes the batch
// *leader*, waits up to linger for followers to accumulate (woken early via
// kick when the queue reaches maxBatch samples), then takes the whole queue,
// runs one engine call over the concatenated inputs, and fans the argmax
// rows back out to every waiter. Followers just block on their request.
//
// The engine call is bit-identical to running each request alone: batched
// SpMM accumulates every output element in the same order regardless of
// batch size (see inference.Engine.LogitsBatch), and the concat the engine
// performs inside its arena is a pure row-wise copy.
//
// Admission control: at most maxQueue samples wait in the queue; a request
// that would overflow it is rejected with ErrOverloaded instead of queueing
// unboundedly (a single request larger than maxQueue is still admitted when
// the queue is empty — it flushes as its own batch and could never be
// admitted otherwise).
type batcher struct {
	// run is one engine invocation over the batch's sample tensors
	// (inference.Engine.PredictBatch): the engine concatenates them inside
	// its own arena, so a coalesced flush allocates no more than a solo one.
	run      func([]*tensor.Tensor) []int
	maxBatch int              // soft flush threshold, in samples
	linger   time.Duration    // leader's max wait for followers
	maxQueue int              // admission bound, in samples
	counters *predictCounters // shared with the owning Server

	mu      sync.Mutex
	pending []*predictReq
	queued  int  // samples in pending
	forced  bool // a forceFlush kicked the current generation
	// spareReqs/spareXs recycle the previous generation's queue and fan-out
	// slices (returned by the leader after the flush, picked up by the next
	// generation's first submit), so steady-state batching never regrows
	// them.
	spareReqs []*predictReq
	spareXs   []*tensor.Tensor

	// kick wakes a lingering leader early (queue reached maxBatch, or a
	// forced flush). Buffered so enqueuers never block on it; sends and
	// drains happen under mu, so a kick can never go stale.
	kick chan struct{}

	// ewmaNS tracks the engine's recent batch latency (exponentially
	// weighted, 1/8 gain). The deadline-aware flush subtracts it from the
	// oldest rider's deadline so the rider's *total* latency — queue wait
	// plus the engine call — lands inside its budget, not just the wait.
	ewmaNS atomic.Int64
}

// newBatcher builds the per-personalization batcher, or returns nil when
// batching is disabled (MaxBatch <= 1): a nil batcher makes Server.Predict
// take the solo path.
func (s *Server) newBatcher(run func([]*tensor.Tensor) []int) *batcher {
	if s.opts.MaxBatch <= 1 {
		return nil
	}
	return &batcher{
		run:      run,
		maxBatch: s.opts.MaxBatch,
		linger:   s.opts.Linger,
		maxQueue: s.opts.MaxQueue,
		counters: &s.counters,
		kick:     make(chan struct{}, 1),
	}
}

// submit enqueues x, drives the flush if this caller is the leader, and
// blocks until the request's rows are predicted (or rejected/failed).
// deadline is the rider's QoS latency deadline (zero: none); class tags the
// rider for the queue-wait histogram.
func (b *batcher) submit(x *tensor.Tensor, class QoSClass, deadline time.Time) ([]int, error) {
	req := reqPool.Get().(*predictReq)
	req.x, req.rows, req.preds, req.err = x, x.Shape[0], nil, nil
	req.arrival, req.deadline, req.class = time.Now(), deadline, class

	b.mu.Lock()
	if b.queued > 0 && b.queued+req.rows > b.maxQueue {
		queued := b.queued
		b.mu.Unlock()
		req.x = nil
		reqPool.Put(req)
		b.counters.rejected.Add(1)
		return nil, fmt.Errorf("%w (%d samples queued, bound %d)", ErrOverloaded, queued, b.maxQueue)
	}
	leader := len(b.pending) == 0
	if b.pending == nil && b.spareReqs != nil {
		b.pending, b.spareReqs = b.spareReqs, nil
	}
	b.pending = append(b.pending, req)
	b.queued += req.rows
	b.counters.queued.Add(int64(req.rows))
	if b.queued >= b.maxBatch {
		b.kickLocked()
	}
	b.mu.Unlock()

	if leader {
		b.lead()
	}
	<-req.done
	// The flusher is done with req after the send; this goroutine owns it
	// again and recycles it once the result is copied out.
	preds, err := req.preds, req.err
	req.x, req.preds, req.err = nil, nil, nil
	reqPool.Put(req)
	return preds, err
}

// kickLocked wakes the lingering leader without blocking; callers hold mu.
func (b *batcher) kickLocked() {
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

// forceFlush wakes the current leader immediately, flushing whatever is
// queued without waiting out the linger (Server.DrainBatches; a no-op when
// nothing is queued). The flush runs on the leader's goroutine — callers
// that need the results delivered must wait on those requests, not on this.
func (b *batcher) forceFlush() {
	b.mu.Lock()
	if b.queued > 0 {
		b.forced = true
		b.kickLocked()
	}
	b.mu.Unlock()
}

// flushWait returns how long the leader should linger before flushing, and
// whether the wait is deadline-limited rather than linger-limited. Both
// bounds are relative to the OLDEST rider, not to when the leader's
// goroutine happens to run:
//
//   - the linger window closes at oldestArrival + linger, so a leader that
//     was descheduled between enqueueing and leading does not tax the queue
//     with a second full linger — a queue whose oldest rider arrived long
//     ago flushes immediately;
//   - the deadline window closes at oldestDeadline - estimated engine time,
//     so the rider's whole budget is not eaten lingering for batch mates.
func (b *batcher) flushWait(oldestArrival, oldestDeadline time.Time, now time.Time) (wait time.Duration, deadlineCut bool) {
	wait = oldestArrival.Add(b.linger).Sub(now)
	if !oldestDeadline.IsZero() {
		guard := time.Duration(b.ewmaNS.Load())
		if d := oldestDeadline.Add(-guard).Sub(now); d < wait {
			return d, true
		}
	}
	return wait, false
}

// lead is the leader's side of the protocol: linger, take the queue, run
// the engine once, fan out.
func (b *batcher) lead() {
	deadlineCut := false
	if b.linger > 0 {
		b.mu.Lock()
		// The leader's own request is in pending (only lead removes), so
		// the queue is non-empty; its head is the oldest rider.
		oldest := b.pending[0]
		arrival, deadline := oldest.arrival, oldest.deadline
		b.mu.Unlock()

		var wait time.Duration
		wait, deadlineCut = b.flushWait(arrival, deadline, time.Now())
		if wait > 0 {
			t, _ := lingerTimers.Get().(*time.Timer)
			if t == nil {
				t = time.NewTimer(wait)
			} else {
				t.Reset(wait)
			}
			select {
			case <-t.C:
			case <-b.kick:
				// Drain a concurrent fire so the recycled timer's channel is
				// empty before the next Reset.
				if !t.Stop() {
					<-t.C
				}
				// The kick (size/forced) took the wait, not the deadline.
				deadlineCut = false
			}
			lingerTimers.Put(t)
		}
	}

	flushStart := time.Now()
	b.mu.Lock()
	batch := b.pending
	total := b.queued
	forced := b.forced
	xs := b.spareXs
	b.pending = nil
	b.spareXs = nil
	b.queued = 0
	b.forced = false
	b.counters.queued.Add(-int64(total))
	// Drain a kick sent between the leader waking on the timer and taking
	// the queue: it refers to requests this flush already covers, and must
	// not wake the next leader early.
	select {
	case <-b.kick:
	default:
	}
	b.mu.Unlock()

	// Classify the flush by what actually took the queue, not by which
	// channel happened to wake the leader: a full batch is a size flush
	// even if the timer won the race, a forced drain of a partial batch is
	// neither a size nor a linger flush, and a deadline flush is a timer
	// expiry whose wait was cut short by the oldest rider's budget.
	switch {
	case total >= b.maxBatch:
		b.counters.flushSize.Add(1)
	case forced:
		b.counters.flushForced.Add(1)
	case deadlineCut:
		b.counters.flushDeadline.Add(1)
	default:
		b.counters.flushLinger.Add(1)
	}

	// Retire every rider's queue wait (arrival → flush start) into the
	// per-class histograms before the engine call so the distribution
	// reflects pure scheduling delay, not engine time.
	for _, r := range batch {
		b.counters.observeWait(r.class, flushStart.Sub(r.arrival))
	}

	xs = xs[:0]
	for _, r := range batch {
		xs = append(xs, r.x)
	}
	preds, err := b.invoke(xs, total)
	off := 0
	for _, r := range batch {
		if err != nil {
			r.err = err
		} else {
			r.preds = preds[off : off+r.rows : off+r.rows]
		}
		off += r.rows
		r.done <- struct{}{} // hands ownership of r back to its submitter
	}

	// Return this generation's slices for the next one to reuse (cleared:
	// the requests are already back with their submitters).
	clear(batch)
	clear(xs)
	b.mu.Lock()
	b.spareReqs = batch[:0]
	b.spareXs = xs[:0]
	b.mu.Unlock()
}

// invoke runs one engine call over the concatenated batch, recovering a
// panic into an error: a poisoned batch must fail every waiter, not strand
// the followers behind a dead leader.
func (b *batcher) invoke(xs []*tensor.Tensor, total int) (preds []int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: batched predict over %d samples failed: %v", total, r)
		}
	}()
	start := time.Now()
	preds = b.run(xs)
	d := time.Since(start)
	b.counters.observe(total, d)
	// Fold this invocation into the latency estimate the deadline flush
	// subtracts from rider budgets (1/8 gain; a lost race between loads
	// only smooths a sample into the average twice — harmless).
	if old := b.ewmaNS.Load(); old == 0 {
		b.ewmaNS.Store(d.Nanoseconds())
	} else {
		b.ewmaNS.Store(old - old/8 + d.Nanoseconds()/8)
	}
	return preds, nil
}
