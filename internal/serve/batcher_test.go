package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// stubBatcher builds a batcher around a fake engine for deterministic
// protocol tests: every sample is a single [1,1,1,1] tensor whose one value
// identifies the submitting request, and the fake engine "predicts" that
// value back, so each caller can verify it received exactly its own rows.
func stubBatcher(maxBatch int, linger time.Duration, maxQueue int) (*batcher, *predictCounters) {
	c := &predictCounters{}
	b := &batcher{
		run: func(xs []*tensor.Tensor) []int {
			var preds []int
			for _, x := range xs {
				for r := 0; r < x.Shape[0]; r++ {
					preds = append(preds, int(x.Data[r]))
				}
			}
			return preds
		},
		maxBatch: maxBatch,
		linger:   linger,
		maxQueue: maxQueue,
		counters: c,
		kick:     make(chan struct{}, 1),
	}
	return b, c
}

// sample builds a 1-sample [1,1,1,1] tensor carrying id.
func sample(id int) *tensor.Tensor {
	return tensor.FromSlice([]float64{float64(id)}, 1, 1, 1, 1)
}

// TestBatcherLingerFlush: a lone request must not wait for MaxBatch samples
// that never arrive — the linger timer flushes it.
func TestBatcherLingerFlush(t *testing.T) {
	b, c := stubBatcher(100, 5*time.Millisecond, 100)
	start := time.Now()
	preds, err := b.submit(sample(7), QoSStandard, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 || preds[0] != 7 {
		t.Fatalf("preds %v, want [7]", preds)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("lone request waited %v; linger flush broken", waited)
	}
	if got := c.flushLinger.Load(); got != 1 {
		t.Fatalf("flushLinger %d, want 1", got)
	}
	if got := c.flushSize.Load(); got != 0 {
		t.Fatalf("flushSize %d, want 0", got)
	}
	if got := c.queued.Load(); got != 0 {
		t.Fatalf("queue gauge %d after flush, want 0", got)
	}
}

// TestBatcherSizeFlushCoalesces: with an effectively infinite linger, the
// queue reaching MaxBatch is what flushes — and all requests share one
// engine invocation, each receiving its own rows.
func TestBatcherSizeFlushCoalesces(t *testing.T) {
	const n = 4
	b, c := stubBatcher(n, time.Minute, 100)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(id int) {
			defer wg.Done()
			preds, err := b.submit(sample(id), QoSStandard, time.Time{})
			if err != nil {
				t.Error(err)
				return
			}
			if len(preds) != 1 || preds[0] != id {
				t.Errorf("request %d got %v", id, preds)
			}
		}(i)
	}
	wg.Wait()
	if got := c.batches.Load(); got != 1 {
		t.Fatalf("batches %d, want 1 (requests did not coalesce)", got)
	}
	if got := c.samples.Load(); got != n {
		t.Fatalf("samples %d, want %d", got, n)
	}
	if got := c.flushSize.Load(); got != 1 {
		t.Fatalf("flushSize %d, want 1", got)
	}
	// n=4 lands in histogram bucket 2 (bounds 1,2,4,8,...).
	if got := c.hist[2].Load(); got != 1 {
		t.Fatalf("hist[2] %d, want 1 (hist %v)", got, &c.hist)
	}
}

// TestBatcherAdmissionControl: a full queue rejects with ErrOverloaded
// instead of queueing; already-admitted requests still complete.
func TestBatcherAdmissionControl(t *testing.T) {
	const cap = 4
	b, c := stubBatcher(100, time.Minute, cap)
	var wg sync.WaitGroup
	wg.Add(cap)
	for i := 0; i < cap; i++ {
		go func(id int) {
			defer wg.Done()
			if _, err := b.submit(sample(id), QoSStandard, time.Time{}); err != nil {
				t.Errorf("admitted request %d failed: %v", id, err)
			}
		}(i)
	}
	waitFor(t, func() bool { return c.queued.Load() == cap })

	if _, err := b.submit(sample(99), QoSStandard, time.Time{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow submit returned %v, want ErrOverloaded", err)
	}
	if got := c.rejected.Load(); got != 1 {
		t.Fatalf("rejected %d, want 1", got)
	}
	b.forceFlush()
	wg.Wait()
	if got := c.queued.Load(); got != 0 {
		t.Fatalf("queue gauge %d after flush, want 0", got)
	}
	// A forced partial batch is its own flush class — not a size flush
	// (the queue never reached MaxBatch) and not a linger flush.
	if got := c.flushForced.Load(); got != 1 {
		t.Fatalf("flushForced %d, want 1", got)
	}
	if c.flushSize.Load() != 0 || c.flushLinger.Load() != 0 {
		t.Fatalf("forced flush miscounted: size=%d linger=%d", c.flushSize.Load(), c.flushLinger.Load())
	}
}

// TestBatcherOversizeRequestAdmitted: a request larger than MaxQueue is
// still admitted when the queue is empty (it could never be admitted
// otherwise) and flushes as its own batch.
func TestBatcherOversizeRequestAdmitted(t *testing.T) {
	b, c := stubBatcher(4, time.Minute, 4)
	x := tensor.New(8, 1, 1, 1)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	preds, err := b.submit(x, QoSStandard, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 8 {
		t.Fatalf("preds %v, want 8 rows", preds)
	}
	for i, p := range preds {
		if p != i {
			t.Fatalf("row %d predicted %d", i, p)
		}
	}
	if got := c.flushSize.Load(); got != 1 {
		t.Fatalf("flushSize %d, want 1 (8 samples >= MaxBatch must flush immediately)", got)
	}
}

// TestBatcherPanicFansOutError: a poisoned batch must fail every rider with
// an error, never strand followers behind a dead leader.
func TestBatcherPanicFansOutError(t *testing.T) {
	b, _ := stubBatcher(3, time.Minute, 100)
	b.run = func([]*tensor.Tensor) []int { panic("kernel exploded") }
	const n = 3
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.submit(sample(i), QoSStandard, time.Time{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "kernel exploded") {
			t.Fatalf("request %d error %v, want the batch panic surfaced", i, err)
		}
	}
}

// waitFor polls cond up to ~5s; the storm tests use it instead of sleeps.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// splitRows cuts a [N,C,H,W] batch into N single-sample tensors.
func splitRows(x *tensor.Tensor) []*tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	vol := c * h * w
	out := make([]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		out[i] = tensor.FromSlice(x.Data[i*vol:(i+1)*vol], 1, c, h, w)
	}
	return out
}

// TestServeBatchedPredictBitIdentical is the tentpole invariant: Predict
// through the dynamic batcher — with every request verifiably coalesced
// into ONE engine invocation — returns exactly what the pre-batching solo
// path (a direct engine call per request) returns.
func TestServeBatchedPredictBitIdentical(t *testing.T) {
	opts := quickOpts()
	opts.MaxBatch = 100 // only forceFlush (or linger) flushes
	opts.Linger = 30 * time.Second
	opts.MaxQueue = 100
	s := newTestServer(t, opts)
	p, _, err := s.Personalize([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	split := s.ds.MakeSplit("batcher-bitident", []int{1, 3}, 6)
	xs := splitRows(split.X)

	// Ground truth: the solo path, one engine call per sample.
	solo := make([][]int, len(xs))
	for i, x := range xs {
		solo[i] = p.engine.Predict(x)
	}

	got := make([][]int, len(xs))
	var wg sync.WaitGroup
	wg.Add(len(xs))
	for i, x := range xs {
		go func(i int, x *tensor.Tensor) {
			defer wg.Done()
			preds, err := s.Predict([]int{1, 3}, x)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = preds
		}(i, x)
	}
	waitFor(t, func() bool { return s.Stats().QueueDepth == len(xs) })
	p.bat.forceFlush()
	wg.Wait()

	for i := range xs {
		if len(got[i]) != 1 || got[i][0] != solo[i][0] {
			t.Fatalf("sample %d: batched %v vs solo %v", i, got[i], solo[i])
		}
	}
	st := s.Stats()
	if st.PredictBatches != 1 {
		t.Fatalf("PredictBatches %d, want 1 (all requests in one shared batch)", st.PredictBatches)
	}
	if st.SamplesPredicted != uint64(len(xs)) {
		t.Fatalf("SamplesPredicted %d, want %d", st.SamplesPredicted, len(xs))
	}
	// 12 samples (6 per class × 2 classes): histogram bucket ≤16.
	if st.BatchSizeHist[4] != 1 {
		t.Fatalf("batch size histogram %v, want one batch in the ≤16 bucket", st.BatchSizeHist)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after flush, want 0", st.QueueDepth)
	}
	if st.PredictNS == 0 {
		t.Fatal("PredictNS not recorded")
	}
	if st.FlushForced != 1 || st.FlushSize != 0 || st.FlushLinger != 0 {
		t.Fatalf("flush accounting forced=%d size=%d linger=%d, want 1/0/0", st.FlushForced, st.FlushSize, st.FlushLinger)
	}
}

// TestServePredictOverload drives admission control end to end through
// Server.Predict: with the queue pinned full by a lingering leader, the
// next request is rejected with ErrOverloaded.
func TestServePredictOverload(t *testing.T) {
	opts := quickOpts()
	opts.MaxBatch = 100
	opts.Linger = 30 * time.Second
	opts.MaxQueue = 2
	s := newTestServer(t, opts)
	p, _, err := s.Personalize([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	split := s.ds.MakeSplit("batcher-overload", []int{0, 2}, 2)
	xs := splitRows(split.X)

	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			defer wg.Done()
			if _, err := s.Predict([]int{0, 2}, xs[i]); err != nil {
				t.Errorf("admitted predict failed: %v", err)
			}
		}(i)
	}
	waitFor(t, func() bool { return s.Stats().QueueDepth == 2 })
	if _, err := s.Predict([]int{0, 2}, xs[2]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow predict returned %v, want ErrOverloaded", err)
	}
	p.bat.forceFlush()
	wg.Wait()
	st := s.Stats()
	if st.Rejected != 1 {
		t.Fatalf("Rejected %d, want 1", st.Rejected)
	}
}

// TestServePredictRejectsBadShape: shape validation happens at admission,
// before a malformed tensor can poison a shared batch.
func TestServePredictRejectsBadShape(t *testing.T) {
	s := newTestServer(t, quickOpts())
	if _, err := s.Predict([]int{1, 2}, tensor.New(1, 3, 4, 4)); err == nil {
		t.Fatal("wrong H×W must be rejected")
	}
	if _, err := s.Predict([]int{1, 2}, tensor.New(3, 8, 8)); err == nil {
		t.Fatal("rank-3 input must be rejected")
	}
	if _, err := s.Predict([]int{1, 2}, nil); err == nil {
		t.Fatal("nil input must be rejected")
	}
}

// TestBatchedPredictAcrossRestore: the bit-identical invariant holds across
// a snapshot restore — a warm-restarted server's batched Predict returns
// exactly what the original server's solo engine returned.
func TestBatchedPredictAcrossRestore(t *testing.T) {
	dir := t.TempDir()
	opts := quickOpts()
	opts.SnapshotDir = dir
	opts.MaxBatch = 8
	opts.Linger = time.Millisecond
	env := sharedEnv()

	s1, err := NewServer(env.build, env.base, env.ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	p1, _, err := s1.Personalize([]int{2, 4})
	if err != nil {
		s1.Close()
		t.Fatal(err)
	}
	split := env.ds.MakeSplit("batcher-restore", []int{2, 4}, 4)
	xs := splitRows(split.X)
	solo := make([]int, len(xs))
	for i, x := range xs {
		solo[i] = p1.engine.Predict(x)[0]
	}
	s1.Close() // drains the write-behind snapshot

	s2, err := NewServer(env.build, env.base, env.ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	if n, err := s2.Restore(); err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	var wg sync.WaitGroup
	wg.Add(len(xs))
	for i, x := range xs {
		go func(i int, x *tensor.Tensor) {
			defer wg.Done()
			preds, err := s2.Predict([]int{2, 4}, x)
			if err != nil {
				t.Error(err)
				return
			}
			if preds[0] != solo[i] {
				t.Errorf("sample %d: restored batched %d vs original solo %d", i, preds[0], solo[i])
			}
		}(i, x)
	}
	wg.Wait()
	if st := s2.Stats(); st.Personalizations != 0 {
		t.Fatalf("restored server re-pruned %d times; restore path broken", st.Personalizations)
	}
}

// TestBatchingStormRace is the -race hammer for the batching era: one
// snapshotting server with a tiny LRU under concurrent Predict fan-in (the
// batched hot path), Personalize-driven eviction, write-behind snapshots,
// explicit Flush and a live Restore — all at once.
func TestBatchingStormRace(t *testing.T) {
	opts := quickOpts()
	opts.SnapshotDir = t.TempDir()
	opts.CacheSize = 2
	opts.MaxBatch = 4
	opts.Linger = 500 * time.Microsecond
	opts.MaxQueue = 64
	s := newTestServer(t, opts)

	sets := [][]int{{0, 1}, {1, 2}, {2, 3}}
	// Pre-build one split per set so the storm goroutines only predict.
	inputs := make([][]*tensor.Tensor, len(sets))
	for i, set := range sets {
		inputs[i] = splitRows(s.ds.MakeSplit("storm", set, 2).X)
	}

	const clients = 8
	const rounds = 4
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (c + r) % len(sets)
				switch {
				case c == 0 && r == rounds-1:
					if _, err := s.Flush(); err != nil {
						t.Errorf("flush: %v", err)
					}
				case c == 1 && r == rounds-1:
					if _, err := s.Restore(); err != nil {
						t.Errorf("restore: %v", err)
					}
				default:
					x := inputs[i][(c+r)%len(inputs[i])]
					preds, err := s.Predict(sets[i], x)
					if errors.Is(err, ErrOverloaded) {
						continue // admission control under the storm is fine
					}
					if err != nil {
						t.Errorf("predict: %v", err)
						return
					}
					if len(preds) != 1 || preds[0] < 0 || preds[0] >= 6 {
						t.Errorf("bad prediction %v", preds)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	st := s.Stats()
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth stuck at %d", st.QueueDepth)
	}
	if st.SamplesPredicted == 0 || st.PredictBatches == 0 {
		t.Fatalf("storm predicted nothing: %+v", st)
	}
	if st.SamplesPredicted < st.PredictBatches {
		t.Fatalf("accounting inverted: %d samples over %d batches", st.SamplesPredicted, st.PredictBatches)
	}
}
