package serve

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/inference"
	"repro/internal/nn"
	"repro/internal/pruner"
)

// The three-tier cache (Options.MemoryBudgetBytes > 0):
//
//	hot   — compiled engines, ready to Predict (up to HotFraction of budget)
//	warm  — delta records over the shared universal weights (rest of budget)
//	cold  — disk snapshots (Options.SnapshotDir), unbounded
//
// An engine squeezed out of the hot tier is demoted: its personalized state
// is re-encoded as a checkpoint model delta (mask + kept-position values
// only — a small fraction of a full copy), its compiled plans return their
// registry references, and the delta parks in a warm LRU. A later request
// promotes the record instead of re-pruning: apply the delta to a fresh
// clone of the universal model and recompile against the shared slabs.
// Because compilation and quantization only ever read the effective weights
// W ⊙ Mask — exactly what the delta preserves — promotion is bit-identical
// on the float path and QuantSignature-identical on int8; both are verified
// structurally at promote time against fingerprints captured at demotion.
// Warm records squeezed out by the byte budget drop to the cold tier
// (demotion synchronously ensures the disk copy first, when a store is
// configured), and cold records re-prune only if the store is absent.

// estimated fixed overhead charged per resident object on top of the
// measured buffers (struct headers, batcher, LRU bookkeeping).
const (
	personalizationOverheadBytes = 2048
	warmEntryOverheadBytes       = 256
)

// warmEntry is one demoted tenant: everything needed to rebuild the hot
// Personalization without touching disk or the pruner, plus the identity
// fingerprints the rebuild is checked against.
type warmEntry struct {
	key       string
	classes   []int
	report    pruner.Report
	accuracy  float64
	agreement float64
	// delta is the checkpoint model delta over the universal base.
	delta []byte
	// fp pins the float structural identity (plan fingerprints in compile
	// order); qsig pins the int8 code identity on Int8 servers.
	fp   uint64
	qsig uint64
	size int64
}

func warmEntryBytes(we *warmEntry) int64 {
	return int64(len(we.delta)) + int64(len(we.key)) + int64(len(we.classes))*8 + warmEntryOverheadBytes
}

// newEngine compiles the serving engine for a personalized clone at the
// server's precision, referencing the shared universal slabs and the
// cross-tenant plan registry.
func (s *Server) newEngine(clone *nn.Classifier, key string) (*inference.Engine, error) {
	bs, nm := s.opts.Prune.BlockSize, s.opts.Prune.NM
	eng, err := inference.NewWithOptions(clone, bs, nm, inference.CompileOptions{
		Precision: s.opts.Precision, Shared: s.shared, Registry: s.registry,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: compiling engine for {%s}: %w", key, err)
	}
	return eng, nil
}

// newPersonalization assembles a cache entry and fixes its resident cost:
// the engine's owned compiled state plus the model clone it serves from.
func (s *Server) newPersonalization(key string, classes []int, rep pruner.Report, acc, agreement float64, eng *inference.Engine, clone *nn.Classifier) *Personalization {
	p := &Personalization{
		Key:       key,
		Classes:   classes,
		Report:    rep,
		Accuracy:  acc,
		Agreement: agreement,
		engine:    eng,
		clf:       clone,
		bat:       s.newBatcher(eng.PredictBatch),
	}
	p.size = eng.MemoryFootprint() + inference.ModelBytes(clone) + personalizationOverheadBytes
	return p
}

// hotFullLocked reports whether the hot tier has no room for another
// engine — by count, or by bytes when a budget governs.
func (s *Server) hotFullLocked() bool {
	if s.lru.Len() >= s.opts.CacheSize {
		return true
	}
	return s.budget > 0 && s.hotBytes >= s.hotBudget
}

// hotOverLocked reports whether the hot tier is over its bound and must
// evict. The len > 1 guard keeps at least the newest engine resident even
// when a single engine exceeds the hot budget — a budget too small for one
// tenant degrades to a cache of one, never to livelock.
func (s *Server) hotOverLocked() bool {
	if s.lru.Len() > s.opts.CacheSize {
		return true
	}
	return s.budget > 0 && s.hotBytes > s.hotBudget && s.lru.Len() > 1
}

// rebalance enforces the tier bounds after an insert: hot engines past the
// count or byte bound demote (LRU order) to warm records, then warm records
// past the remaining budget drop to cold. Demotion work (delta encoding,
// snapshot writes) runs outside mu; only the list surgery holds it.
func (s *Server) rebalance() {
	for {
		s.mu.Lock()
		if !s.hotOverLocked() {
			s.trimWarmLocked()
			s.mu.Unlock()
			return
		}
		el := s.lru.Back()
		victim := el.Value.(*Personalization)
		s.lru.Remove(el)
		delete(s.entries, victim.Key)
		s.hotBytes -= victim.size
		s.stats.Evictions++
		s.stats.CachedEngines = s.lru.Len()
		s.stats.HotBytes = s.hotBytes
		s.mu.Unlock()
		s.demote(victim)
	}
}

// trimWarmLocked drops warm-LRU tails until hot+warm fit the budget. A
// dropped record's durable copy (written at demotion) stays on disk, so the
// tenant falls to the cold tier, not back to the pruner.
func (s *Server) trimWarmLocked() {
	for s.budget > 0 && s.hotBytes+s.warmBytes > s.budget && s.warmLRU.Len() > 0 {
		el := s.warmLRU.Back()
		we := el.Value.(*warmEntry)
		s.warmLRU.Remove(el)
		delete(s.warm, we.key)
		s.warmBytes -= we.size
		s.stats.WarmEvictions++
	}
	s.stats.WarmEntries = s.warmLRU.Len()
	s.stats.WarmBytes = s.warmBytes
}

// demote turns an evicted hot engine into a warm record (budgeted servers)
// or simply releases it (legacy count-LRU servers). Either way the durable
// copy is ensured first when a store is configured, so no tier transition
// can lose the only recoverable state, and the engine's shared plan
// references return to the registry.
func (s *Server) demote(p *Personalization) {
	if s.budget <= 0 {
		p.release()
		return
	}
	delta, derr := checkpoint.EncodeModelDelta(s.base, p.clf)
	if s.store != nil && !s.store.has(p.Key) {
		// The write-behind snapshot may not have landed yet; demotion must
		// not strand the tenant without a durable copy. put is idempotent,
		// so racing the scheduled write is harmless.
		s.writeSnapshot(p)
	}
	if derr != nil {
		// A clone of base cannot fail to delta-encode; fail safe to cold.
		p.release()
		return
	}
	we := &warmEntry{
		key:       p.Key,
		classes:   p.Classes,
		report:    p.Report,
		accuracy:  p.Accuracy,
		agreement: p.Agreement,
		delta:     delta,
		fp:        p.engine.Fingerprint(),
	}
	if s.opts.Precision == inference.Int8 {
		we.qsig = p.engine.QuantSignature()
	}
	we.size = warmEntryBytes(we)
	p.release()

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, hot := s.entries[we.key]; hot {
		return // re-personalized while encoding; the hot copy wins
	}
	if _, ok := s.warm[we.key]; !ok {
		s.warm[we.key] = s.warmLRU.PushFront(we)
		s.warmBytes += we.size
		s.stats.Demotions++
	}
	s.stats.WarmEntries = s.warmLRU.Len()
	s.stats.WarmBytes = s.warmBytes
}

// takeWarm removes and returns the warm record for key, or nil. The caller
// owns the record: a successful promote re-inserts the tenant hot, a failed
// one falls through to the cold/prune path (and the record is gone — it was
// not trustworthy).
func (s *Server) takeWarm(key string) *warmEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.warm[key]
	if !ok {
		return nil
	}
	we := el.Value.(*warmEntry)
	s.warmLRU.Remove(el)
	delete(s.warm, key)
	s.warmBytes -= we.size
	s.stats.WarmHits++
	s.stats.WarmEntries = s.warmLRU.Len()
	s.stats.WarmBytes = s.warmBytes
	return we
}

// promoteWarm rebuilds a hot Personalization from a warm record: apply the
// delta to a fresh clone of the universal model, recompile against the
// shared slabs, and verify the result is the engine that was demoted — the
// structural fingerprint must match on every server, and on Int8 the quant
// signature must too. The stored accuracy/agreement carry over: the rebuilt
// engine is pinned identical, so re-measuring would be wasted work.
func (s *Server) promoteWarm(we *warmEntry) (*Personalization, error) {
	clone := s.build()
	if err := checkpoint.ApplyModelDelta(we.delta, s.base, clone); err != nil {
		return nil, fmt.Errorf("serve: promoting {%s}: %w", we.key, err)
	}
	eng, err := s.newEngine(clone, we.key)
	if err != nil {
		return nil, err
	}
	if fp := eng.Fingerprint(); fp != we.fp {
		eng.Release()
		return nil, fmt.Errorf("serve: promoting {%s}: fingerprint %016x, demoted engine had %016x", we.key, fp, we.fp)
	}
	if s.opts.Precision == inference.Int8 {
		if sig := eng.QuantSignature(); sig != we.qsig {
			eng.Release()
			return nil, fmt.Errorf("serve: promoting {%s}: quant signature %016x, demoted engine had %016x", we.key, sig, we.qsig)
		}
	}
	return s.newPersonalization(we.key, we.classes, we.report, we.accuracy, we.agreement, eng, clone), nil
}
