// Package serve turns the one-shot Personalize workflow into a concurrent,
// multi-tenant personalization service — the serving layer CRISP implies:
// every user gets a model pruned to their own class subset, so a deployment
// is many small engines derived from one universal model.
//
// # Architecture
//
// Server owns a pretrained universal classifier and a bounded worker Pool.
// A Personalize request is resolved in one of three ways:
//
//   - Cache hit: the class set (canonicalized by sorting and deduplicating,
//     e.g. {17,3,3,42} → "3,17,42") already has a compiled engine; it is
//     returned immediately and refreshed in the LRU order.
//   - In-flight join (singleflight): an identical request is already being
//     pruned; the new request waits on the same job instead of starting a
//     duplicate, and both receive the same Personalization.
//   - Miss: a job is scheduled on the pool — clone the universal model,
//     run pruner.NewCRISP(...).Prune for the class set, compile the
//     compressed representation with inference.New, and measure held-out
//     accuracy. The pool bounds concurrent pruning jobs at Options.Workers
//     (default GOMAXPROCS); submission blocks for backpressure.
//
// Completed engines land in an LRU cache of Options.CacheSize entries;
// inserting past capacity evicts the least recently used engine (counted in
// Stats.Evictions). A Personalization is immutable and its engine is safe
// for concurrent batched inference, so any number of Predict calls may
// share one cached entry.
//
// Predict runs one batched sparse forward pass (Engine.Predict →
// Engine.Logits on a [B,C,H,W] batch), so B samples cost one SpMM per
// layer rather than B.
//
// # Snapshot lifecycle (Options.SnapshotDir)
//
// With a snapshot directory configured the cache becomes durable, so a
// restart reloads engines from disk instead of re-running the
// prune+fine-tune pipeline per tenant (the re-prune stampede the paper's
// amortization argument assumes away):
//
//   - Write-behind: when a pruning job completes, its Personalization is
//     serialized as a checkpoint v2 record (pruned weights, masks,
//     batch-norm statistics, class set, report, accuracy) on the worker
//     pool — Personalize and Predict never wait on disk. Records land via
//     temp-file + rename, and an index file names the valid records, so a
//     crash mid-write can never surface a torn snapshot.
//   - Restore-on-start: Server.Restore rebuilds indexed records into
//     cached engines — up to the cache capacity; any remaining keys load
//     lazily on first request — recompiling the CSR/CRISP formats from the
//     stored masks (compiled buffers are never persisted). Corrupt or
//     truncated
//     records are skipped and counted in Stats.RestoreErrors; a bad
//     snapshot never takes the server down. Restored engines are
//     bit-identical to the originals: the checkpoint preserves exact
//     float64 bits and format compilation is deterministic.
//   - Eviction keeps the disk copy: an engine dropped by the LRU policy
//     stays on disk, and the next request for its class set restores it
//     (counted in Stats.RestoreHits) instead of re-pruning.
//   - Explicit flush: Server.Flush waits for pending write-behind
//     snapshots and writes any cached engine not yet on disk — the admin
//     hook before a planned restart (POST /snapshot in cmd/crisp-serve).
//
// # HTTP endpoints (cmd/crisp-serve)
//
//	POST /personalize {"classes":[3,17,42]}
//	  → {"key","classes","cached","accuracy","sparsity","flops_ratio","compressed_layers"}
//	  Builds (or fetches) the engine for the class set.
//
//	POST /predict {"classes":[3,17,42], "samples":16}
//	  → {"key","predictions","labels","accuracy","samples"}
//	  Personalizes if needed, synthesizes a batch of the class set's
//	  samples, and classifies it in one batched sparse forward pass.
//	  Alternatively pass "inputs": [[...C*H*W floats...], ...] to classify
//	  caller-provided images; "labels" is then omitted.
//
//	POST /snapshot
//	  → {"written","snapshot_writes","snapshot_errors"}
//	  Flushes every cached engine to the snapshot dir (400 when the server
//	  runs memory-only, i.e. without -snapshot-dir).
//
//	GET /stats
//	  → the serve.Stats counters (requests, cache_hits, cache_misses,
//	  dedup_joins, evictions, personalizations, predict_batches,
//	  samples_predicted, snapshot_writes, snapshot_errors, restore_hits,
//	  restore_errors, cached_engines, in_flight, workers).
//
// The same Pool type fans the experiment suite out across GOMAXPROCS
// (exp.RunParallel), so the serving scheduler and the figure runner share
// one scheduling substrate.
package serve
