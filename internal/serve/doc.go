// Package serve turns the one-shot Personalize workflow into a concurrent,
// multi-tenant personalization service — the serving layer CRISP implies:
// every user gets a model pruned to their own class subset, so a deployment
// is many small engines derived from one universal model.
//
// # Architecture
//
// Server owns a pretrained universal classifier and a bounded worker Pool.
// A Personalize request is resolved in one of three ways:
//
//   - Cache hit: the class set (canonicalized by sorting and deduplicating,
//     e.g. {17,3,3,42} → "3,17,42") already has a compiled engine; it is
//     returned immediately and refreshed in the LRU order.
//   - In-flight join (singleflight): an identical request is already being
//     pruned; the new request waits on the same job instead of starting a
//     duplicate, and both receive the same Personalization.
//   - Miss: a job is scheduled on the pool — clone the universal model,
//     run pruner.NewCRISP(...).Prune for the class set, compile the
//     compressed representation with inference.New, and measure held-out
//     accuracy. The pool bounds concurrent pruning jobs at Options.Workers
//     (default GOMAXPROCS); submission blocks for backpressure.
//
// Completed engines land in an LRU cache of Options.CacheSize entries;
// inserting past capacity evicts the least recently used engine (counted in
// Stats.Evictions). A Personalization is immutable and its engine is safe
// for concurrent batched inference, so any number of Predict calls may
// share one cached entry.
//
// Predict runs one batched sparse forward pass (Engine.Predict →
// Engine.Logits on a [B,C,H,W] batch), so B samples cost one SpMM per
// layer rather than B.
//
// # Dynamic batching (Options.MaxBatch, Linger, MaxQueue)
//
// A busy tenant sends many concurrent Predict calls at one personalized
// engine; with batching enabled (MaxBatch > 1, the default is 16) those
// calls coalesce into shared engine invocations instead of each running
// its own forward pass. Every cached Personalization owns a batcher, and
// one request flows through it as:
//
//   - Admission: the input shape is validated against the dataset (a
//     malformed tensor must never poison a shared batch) and the request is
//     appended to the personalization's queue — unless the queue already
//     holds MaxQueue samples, in which case the request is rejected
//     immediately with ErrOverloaded (Stats.Rejected; HTTP 429 in
//     cmd/crisp-serve). Load sheds at the door instead of queueing without
//     bound. A single request larger than MaxQueue is still admitted when
//     the queue is empty, since it could never be admitted otherwise.
//   - Leading: the first request into an empty queue becomes the batch
//     leader. There are no background goroutines — the leader's own
//     goroutine waits up to Linger (default 2ms) for followers, woken
//     early the moment the queue reaches MaxBatch samples
//     (Stats.FlushSize / Stats.FlushLinger / Stats.FlushForced record
//     whether MaxBatch, the timer, or a DrainBatches flushed each batch).
//   - Flushing: the leader takes the whole queue and runs ONE engine call
//     over the sample tensors (inference.Engine.PredictBatch, which
//     concatenates them inside the engine's recycled arena — a coalesced
//     flush allocates no more than a solo predict; Stats.PredictBatches,
//     Stats.PredictNS, Stats.BatchSizeHist), then fans the argmax rows back
//     out to every waiting request. A panic inside the engine fails every
//     rider with an error instead of stranding followers. Requests that
//     arrived during the flush have already elected the next leader.
//
// Batched results are bit-identical to running each request alone — the
// batched SpMM accumulates every output element in the same order
// regardless of batch size — and the invariant survives snapshot restore,
// because restored engines are themselves bit-identical. MaxBatch = 1
// disables coalescing entirely: Predict calls the engine directly (the
// pre-batching solo path, still counted in the predict stats).
// Server.DrainBatches flushes all queued batches immediately — the
// graceful-drain hook for shutdown.
//
// # QoS scheduling (Options.QoS)
//
// Tenants carry a service class — QoSGold, QoSStandard (the zero default),
// QoSBatch — set at personalization time (PersonalizeQoS; the "qos" field
// of POST /personalize) and re-classable in place on a cached tenant. The
// class is serving-time state only: snapshots do not persist it, so a
// restored tenant reverts to Standard until the next PersonalizeQoS. Each
// class resolves to a QoSPolicy (LatencyBudget, QuotaRPS, QuotaBurst;
// DefaultQoSPolicy, overridable per class via QoSOptions) and a request
// flows through the scheduler as:
//
//   - Quota: the tenant's token bucket (refilled at its class QuotaRPS,
//     capped at QuotaBurst, charged per sample) is debited. An over-quota
//     tenant is only actually shed when the server is under pressure —
//     global queued samples at or past ShedWatermark × GlobalQueue — and
//     then fails with ErrOverQuota (HTTP 429, Stats.ShedByClass). This is
//     weighted shedding: the over-quota tenant is dropped before per-queue
//     admission control has to 429 everyone, and below the watermark
//     quotas never bite (the failed take leaves the bucket untouched, so
//     recovery is immediate).
//   - Deadline: an admitted request enters its tenant's batch queue
//     carrying deadline = arrival + LatencyBudget. The batch leader's wait
//     is min(oldestArrival + Linger, oldestDeadline − EWMA engine latency),
//     both anchored at the OLDEST rider — a leader descheduled between
//     enqueueing and leading never taxes the queue with a second full
//     linger, and a gold rider never spends its whole budget lingering for
//     batch mates (Stats.FlushDeadline counts deadline-cut flushes). Queue
//     waits are recorded per class in Stats.QueueWait histograms
//     (QueueWaitBoundsMS buckets).
//   - Lanes: pool work is split into two priority lanes — explicit
//     Personalize prunes (LanePersonalize) and predict-triggered cache-miss
//     resolution (LanePredict) — each capped at workers−1 concurrent jobs,
//     so with two or more workers neither lane can occupy every worker: a
//     flood of multi-second prunes cannot starve predicts, and vice versa.
//
// QoSOptions.Disabled turns the whole layer off (the FIFO baseline
// cmd/crisp-load compares against); the arrival-relative linger remains,
// because that is a correctness fix rather than policy. cmd/crisp-load
// replays a Zipf-skewed, diurnally-bursty multi-tenant trace against this
// scheduler and cmd/slocheck gates the resulting per-class latency and
// shed-rate report against SLO_baseline.json in CI.
//
// # Snapshot lifecycle (Options.SnapshotDir)
//
// With a snapshot directory configured the cache becomes durable, so a
// restart reloads engines from disk instead of re-running the
// prune+fine-tune pipeline per tenant (the re-prune stampede the paper's
// amortization argument assumes away):
//
//   - Write-behind: when a pruning job completes, its Personalization is
//     serialized as a checkpoint v2 record (pruned weights, masks,
//     batch-norm statistics, class set, report, accuracy) on the worker
//     pool — Personalize and Predict never wait on disk. Records land via
//     temp-file + rename, and an index file names the valid records, so a
//     crash mid-write can never surface a torn snapshot.
//   - Restore-on-start: Server.Restore rebuilds indexed records into
//     cached engines — up to the cache capacity; any remaining keys load
//     lazily on first request — recompiling the CSR/CRISP formats from the
//     stored masks (compiled buffers are never persisted). Corrupt or
//     truncated
//     records are skipped and counted in Stats.RestoreErrors; a bad
//     snapshot never takes the server down. Restored engines are
//     bit-identical to the originals: the checkpoint preserves exact
//     float64 bits and format compilation is deterministic.
//   - Eviction keeps the disk copy: an engine dropped by the LRU policy
//     stays on disk, and the next request for its class set restores it
//     (counted in Stats.RestoreHits) instead of re-pruning.
//   - Explicit flush: Server.Flush waits for pending write-behind
//     snapshots and writes any cached engine not yet on disk — the admin
//     hook before a planned restart (POST /snapshot in cmd/crisp-serve).
//
// # Memory tiers (Options.MemoryBudgetBytes)
//
// A full-copy engine cache cannot reach millions of tenants: every cached
// Personalization holds a complete model clone plus compiled plans. With a
// byte budget configured the cache becomes a three-tier hierarchy, built on
// two structural facts: every tenant is a delta over ONE universal model,
// and serving only ever reads the effective weights W ⊙ Mask.
//
//	hot   — compiled engines, ready to Predict. Bounded by CacheSize and
//	        by HotFraction (default 0.75) of the budget. Engines compile
//	        against shared universal weight slabs (inference.SharedWeights)
//	        and deduplicate bit-identical plans through a format.Registry,
//	        so even the hot tier never clones what it can reference.
//	warm  — demoted tenants as delta records (checkpoint.EncodeModelDelta):
//	        bit-packed masks plus kept-position weight values only, a small
//	        fraction of a full copy. Bounded by the rest of the budget.
//	ssd   — (cold) the snapshot store, unbounded; demotion synchronously
//	        ensures the disk copy before the engine is released, so no
//	        transition can lose the only durable state.
//
// Lifecycle: an insert past the hot bound demotes the LRU engine — its
// state is delta-encoded, its plans return their registry references, its
// batcher flushes — and the record parks in a warm LRU (Stats.Demotions).
// A request for a warm tenant promotes instead of re-pruning: apply the
// delta to a fresh clone, recompile, and verify the rebuild against the
// structural fingerprint (and, on Int8, the quant signature) captured at
// demotion (Stats.WarmHits/Promotions; a failed verification counts
// PromoteErrors and falls through to the cold tier). Warm records squeezed
// out by the budget drop to disk (Stats.WarmEvictions); cold tenants
// restore as before. Every transition is exact: promotion is bit-identical
// on the float path and QuantSignature-identical on int8, because the delta
// preserves precisely what compilation and deterministic quantization read.
// Budget 0 (the default) keeps the single-level count LRU; evicted engines
// release immediately and rely on the cold tier alone.
//
// # HTTP endpoints (internal/api, served by cmd/crisp-serve)
//
//	POST /personalize {"classes":[3,17,42]}
//	  → {"key","classes","cached","accuracy","sparsity","flops_ratio","compressed_layers"}
//	  Builds (or fetches) the engine for the class set.
//
//	POST /predict {"classes":[3,17,42], "samples":16}
//	  → {"key","predictions","labels","accuracy","samples"}
//	  Personalizes if needed, synthesizes a batch of the class set's
//	  samples, and classifies it in one batched sparse forward pass.
//	  Alternatively pass "inputs": [[...C*H*W floats...], ...] to classify
//	  caller-provided images; "labels" is then omitted.
//
//	POST /snapshot
//	  → {"written","snapshot_writes","snapshot_errors"}
//	  Flushes every cached engine to the snapshot dir (400 when the server
//	  runs memory-only, i.e. without -snapshot-dir).
//
//	GET /stats
//	  → the serve.Stats counters (requests, cache_hits, cache_misses,
//	  dedup_joins, evictions, personalizations, predict_batches,
//	  samples_predicted, rejected, flush_size, flush_linger, flush_forced,
//	  predict_ns, batch_size_hist, queue_depth, snapshot_writes,
//	  snapshot_errors, restore_hits, restore_errors, cached_engines,
//	  in_flight, workers).
//
//	GET /metrics
//	  → the same counters in the Prometheus text exposition format
//	  (crisp_serve_* families; batch sizes as a cumulative histogram).
//
// # Precision (Options.Precision)
//
// Options.Precision selects the execution precision every personalized
// engine compiles at: inference.Float32 (default — compiled float plans,
// bit-identical to the masked dense model) or inference.Int8 (quantized
// plans: int8 weight codes at per-row scales, on-the-fly activation
// quantization, 32-bit integer accumulation, dequantize-on-store — the
// CRISP-STC deployment precision). Int8 is approximate, and the server
// treats that as a first-class, measured property:
//
//   - At personalization (and restore) time the server compiles the float
//     reference engine once and measures top-1 agreement on the held-out
//     split — never on the predict path. The result is surfaced per
//     tenant (Personalization.Agreement) and aggregated in Stats
//     (AgreementSamples/AgreementMatches/Top1Agreement).
//   - Snapshot records are precision-agnostic: they persist float weights
//     and masks only, so a directory written by a Float32 server restores
//     on an Int8 server (re-quantizing) and vice versa. Quantization is
//     deterministic — a restored engine carries exactly the pre-restart
//     codes (inference.Engine.QuantSignature pins this in the tests), so
//     int8 predictions are bit-identical across restarts even though they
//     are approximate relative to float.
//   - Quantization fails closed: a model with NaN/Inf weights errors at
//     compile instead of encoding garbage, and the personalization
//     surfaces that error to the caller.
//
// # Drain and handoff (the cluster shard surface)
//
// A Server doubles as one shard of a consistent-hash cluster
// (internal/cluster); the shard-side lifecycle is three exported hooks,
// all built on the fact that a tenant's durable state is its snapshot
// record and restores are bit-identical:
//
//   - BeginDrain flips the server into draining: Personalize (and thus
//     Predict) for tenants it does not already hold — hot or warm — fails
//     with ErrDraining (HTTP 503 + Retry-After), while residents keep
//     serving. There is no way back; a drained shard restarts fresh.
//   - Drain is the full shard-side handoff: BeginDrain, force queued
//     batches out, Flush every resident to the (shared) snapshot store,
//     and return the manifest of tenants — key, classes, structural
//     fingerprint, quant signature on int8 — another shard can adopt.
//   - RestoreTenant is the receiving side: adopt one tenant from the
//     cheapest tier that has it (local warm record, else the shared store,
//     re-reading the store's index first to pick up records written by
//     peer shards) and verify the rebuilt engine against the sending
//     shard's fingerprints. It never falls back to a pruning run — a
//     handoff for missing state is a loud error
//     (Stats.HandoffRestores/HandoffErrors).
//
// Crash recovery needs no handoff call at all: the ordinary personalize
// miss path refreshes the shared store index before pruning, so a
// survivor that inherits a dead shard's tenant restores it on first touch
// (Stats.RestoreHits, zero re-prunes).
//
// The same Pool type fans the experiment suite out across GOMAXPROCS
// (exp.RunParallel), so the serving scheduler and the figure runner share
// one scheduling substrate.
package serve
