package serve

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/inference"
	"repro/internal/tensor"
)

// tierX returns a deterministic predict batch for a class set.
func tierX(s *Server, classes []int) *tensor.Tensor {
	return s.ds.MakeSplit("tier-probe", classes, 2).X
}

// TestTierRoundTripBitIdentical drives one tenant through every tier
// transition and asserts the promoted engine is the demoted one, bit for
// bit: identical logits at both precisions, identical structural
// fingerprint, identical quant signature on int8, and the stored
// accuracy/agreement carried over.
func TestTierRoundTripBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		prec inference.Precision
		// budget: huge keeps the warm tier intact (hot→warm→hot); tiny
		// trims every warm record immediately, forcing the cold tier into
		// the chain (hot→warm→cold→hot). Cold cases need a snapshot dir.
		budget int64
		dir    bool
	}{
		{"float32/warm", inference.Float32, 1 << 40, false},
		{"int8/warm", inference.Int8, 1 << 40, false},
		{"float32/cold", inference.Float32, 1, true},
		{"int8/cold", inference.Int8, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := quickOpts()
			opts.CacheSize = 1
			opts.Precision = tc.prec
			opts.MemoryBudgetBytes = tc.budget
			if tc.dir {
				opts.SnapshotDir = t.TempDir()
			}
			s := newTestServer(t, opts)

			a := []int{1, 3}
			x := tierX(s, a)
			p1, _, err := s.Personalize(a)
			if err != nil {
				t.Fatal(err)
			}
			want := append([]float64(nil), p1.Engine().Logits(x).Data...)
			fp, qsig := p1.Engine().Fingerprint(), p1.Engine().QuantSignature()

			// A second tenant squeezes the first out of the one-engine hot
			// tier; rebalance runs synchronously before Personalize returns.
			if _, _, err := s.Personalize([]int{0, 2}); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Evictions != 1 || st.CachedEngines != 1 {
				t.Fatalf("eviction bookkeeping: %+v", st)
			}
			wantWarm := tc.budget > 1
			if wantWarm && (st.Demotions != 1 || st.WarmEntries != 1 || st.WarmBytes <= 0) {
				t.Fatalf("demotion bookkeeping: %+v", st)
			}
			if !wantWarm {
				if st.WarmEntries != 0 {
					t.Fatalf("tiny budget kept a warm record: %+v", st)
				}
				if !tc.dir {
					t.Fatal("bad case: cold chain without a snapshot dir")
				}
			}

			p2, cached, err := s.Personalize(a)
			if err != nil {
				t.Fatal(err)
			}
			if cached || p2 == p1 {
				t.Fatal("evicted tenant cannot be a cache hit")
			}
			st = s.Stats()
			if wantWarm {
				if st.WarmHits != 1 || st.Promotions != 1 {
					t.Fatalf("expected a warm promotion: %+v", st)
				}
			} else if st.RestoreHits != 1 {
				t.Fatalf("expected a cold restore: %+v", st)
			}
			if st.PromoteErrors != 0 {
				t.Fatalf("promote errors: %+v", st)
			}

			got := p2.Engine().Logits(x)
			for i, v := range want {
				if got.Data[i] != v {
					t.Fatalf("logit %d changed across the tier round-trip: %v vs %v", i, got.Data[i], v)
				}
			}
			if p2.Engine().Fingerprint() != fp {
				t.Fatal("structural fingerprint changed across the round-trip")
			}
			if p2.Engine().QuantSignature() != qsig {
				t.Fatal("quant signature changed across the round-trip")
			}
			if p2.Accuracy != p1.Accuracy || p2.Agreement != p1.Agreement {
				t.Fatalf("stored metrics changed: %v/%v vs %v/%v", p2.Accuracy, p2.Agreement, p1.Accuracy, p1.Agreement)
			}
		})
	}
}

// TestTierStorm mixes Predict traffic, demotions, promotions and cold
// restores across more tenants than the hot tier holds — the -race guard
// for the tier transitions (eviction releases racing in-flight predicts,
// demote racing re-personalization).
func TestTierStorm(t *testing.T) {
	opts := quickOpts()
	opts.CacheSize = 2
	opts.MemoryBudgetBytes = 1 << 40
	opts.SnapshotDir = t.TempDir()
	opts.MaxBatch = 4
	s := newTestServer(t, opts)

	sets := [][]int{{0, 1}, {2, 3}, {4, 5}, {0, 5}, {1, 4}}
	xs := make([]*tensor.Tensor, len(sets))
	for i, set := range sets {
		xs[i] = tierX(s, set)
	}
	iters := 12
	if testing.Short() {
		iters = 4
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % len(sets)
				if _, err := s.Predict(sets[k], xs[k]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.CachedEngines > opts.CacheSize {
		t.Fatalf("hot tier overflowed: %+v", st)
	}
	if st.Evictions == 0 || st.Demotions == 0 {
		t.Fatalf("storm never exercised demotion: %+v", st)
	}
	if st.PromoteErrors != 0 {
		t.Fatalf("promote errors under load: %+v", st)
	}
}

// TestTierCycleDoesNotLeak cycles two tenants through a one-engine hot
// tier — every round promotes one and demotes the other — and asserts
// nothing accretes: registry entries and references stay constant, tier
// byte gauges do not drift, no predict queue is stranded, and the heap
// stays bounded.
func TestTierCycleDoesNotLeak(t *testing.T) {
	opts := quickOpts()
	opts.CacheSize = 1
	opts.MemoryBudgetBytes = 1 << 40
	s := newTestServer(t, opts)

	keys := [][]int{{1, 3}, {0, 2}}
	for _, k := range keys { // initial prunes, outside the measured cycle
		if _, _, err := s.Personalize(k); err != nil {
			t.Fatal(err)
		}
	}
	base := s.Stats()
	if base.Demotions != 1 || base.WarmEntries != 1 {
		t.Fatalf("fixture did not tier: %+v", base)
	}

	rounds := 10_000
	if testing.Short() {
		rounds = 300
	}
	var ms0 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	for i := 0; i < rounds; i++ {
		if _, _, err := s.Personalize(keys[i%2]); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Promotions != base.Promotions+uint64(rounds) {
		t.Fatalf("rounds fell off the warm path: %d promotions for %d rounds (%+v)", st.Promotions-base.Promotions, rounds, st)
	}
	if st.SharedPlans != base.SharedPlans || st.SharedPlanRefs != base.SharedPlanRefs {
		t.Fatalf("registry drifted: %d plans/%d refs, started %d/%d",
			st.SharedPlans, st.SharedPlanRefs, base.SharedPlans, base.SharedPlanRefs)
	}
	if st.HotBytes != base.HotBytes || st.WarmBytes != base.WarmBytes {
		t.Fatalf("tier gauges drifted: hot %d→%d warm %d→%d",
			base.HotBytes, st.HotBytes, base.WarmBytes, st.WarmBytes)
	}
	if st.CachedEngines != 1 || st.WarmEntries != 1 || st.QueueDepth != 0 {
		t.Fatalf("residency drifted: %+v", st)
	}
	var ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	// Soft heap bound: cycling must not accrete live memory. Allow slack
	// for allocator noise; a real leak of 10k engine cycles would be far
	// larger than 32 MiB.
	if growth := int64(ms1.HeapAlloc) - int64(ms0.HeapAlloc); growth > 32<<20 {
		t.Fatalf("heap grew %d bytes across %d tier cycles", growth, rounds)
	}
}

// TestTieredDensityAtLeast3x is the acceptance gate in miniature: resident
// tenants per byte under a budget must beat the full-copy cache by >= 3x,
// with every tenant still resident (hot or warm, none dropped).
func TestTieredDensityAtLeast3x(t *testing.T) {
	sets := [][]int{{0, 1}, {2, 3}, {4, 5}, {0, 5}, {1, 4}, {2, 5}}

	full := newTestServer(t, quickOpts()) // budget 0: every tenant hot
	for _, set := range sets {
		if _, _, err := full.Personalize(set); err != nil {
			t.Fatal(err)
		}
	}
	fullBytes := full.Stats().HotBytes
	if fullBytes <= 0 {
		t.Fatalf("full-copy residency not measured: %+v", full.Stats())
	}

	opts := quickOpts()
	opts.MemoryBudgetBytes = fullBytes / 3
	tiered := newTestServer(t, opts)
	for _, set := range sets {
		if _, _, err := tiered.Personalize(set); err != nil {
			t.Fatal(err)
		}
	}
	st := tiered.Stats()
	if st.CachedEngines+st.WarmEntries != len(sets) || st.WarmEvictions != 0 {
		t.Fatalf("tenants fell out of residency: %+v", st)
	}
	resident := st.HotBytes + st.WarmBytes
	if resident <= 0 || resident > opts.MemoryBudgetBytes {
		t.Fatalf("budget not honored: resident %d of %d", resident, opts.MemoryBudgetBytes)
	}
	ratio := float64(fullBytes) / float64(resident)
	if ratio < 3 {
		t.Fatalf("density %.2fx, want >= 3x (full %d bytes, tiered %d bytes for %d tenants)",
			ratio, fullBytes, resident, len(sets))
	}
	t.Logf("density %.2fx: %d tenants in %d bytes vs %d full-copy", ratio, len(sets), resident, fullBytes)
}
