package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCloseUnderLoad races Close against concurrent Predict and
// Personalize traffic. The ordering contract — pending snapshots, pool
// drain, inline-job wait, final snapshot wait — must hold while requests
// are still arriving: no panic, no deadlock, and every personalization
// that completed before Close returned has its snapshot on disk. Run with
// -race; the assertions here are mostly "we got out alive".
func TestCloseUnderLoad(t *testing.T) {
	opts := quickOpts()
	opts.Workers = 4
	opts.SnapshotDir = t.TempDir()
	s := newTestServer(t, opts)

	// Seed two tenants so predicts have somewhere to land.
	keys := [][]int{{1, 3}, {0, 2}}
	for _, k := range keys {
		if _, _, err := s.Personalize(k); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var calls atomic.Int64
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				calls.Add(1)
				switch {
				case i%3 == 0:
					// Keep minting fresh tenants so Close races live
					// pruning jobs, not just cached predicts.
					_, _, _ = s.Personalize([]int{i % 6, (i + n) % 6})
				default:
					_, _, _, _ = s.PredictSamples(keys[n%len(keys)], 2)
				}
			}
		}(i)
	}

	// Let the storm build, then close under it.
	time.Sleep(50 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(120 * time.Second):
		t.Fatal("Close deadlocked under load")
	}
	close(stop)
	wg.Wait()

	if calls.Load() == 0 {
		t.Fatal("load generators never ran")
	}
	// Close waited out every registered write-behind snapshot.
	st := s.Stats()
	if st.InFlight != 0 {
		t.Fatalf("jobs still in flight after Close: %+v", st)
	}
	if st.SnapshotErrors != 0 {
		t.Fatalf("snapshot errors under close: %+v", st)
	}
}
