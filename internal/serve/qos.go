package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// ErrOverQuota reports a weighted-shedding drop: the tenant exhausted its
// class's token bucket while the server was under queue pressure, so the
// request was shed before admission-control had to 429 everyone. Like
// ErrOverloaded it maps to HTTP 429 in internal/api; unlike ErrOverloaded it
// singles out the over-quota tenant — compliant tenants keep being served.
var ErrOverQuota = errors.New("serve: over quota: tenant exceeded its class rate under load")

// QoSClass is a tenant's service class. The zero value is Standard, so
// tenants personalized without an explicit class get the middle tier.
type QoSClass int

const (
	// QoSStandard is the default interactive tier.
	QoSStandard QoSClass = iota
	// QoSGold is the premium interactive tier: the tightest latency budget
	// and the largest per-tenant quota.
	QoSGold
	// QoSBatch is the throughput tier: a loose latency budget (its riders
	// linger longest, forming the biggest batches) and the first to shed.
	QoSBatch
	// NumQoSClasses sizes per-class counter arrays.
	NumQoSClasses = 3
)

// String returns the wire name of the class ("standard", "gold", "batch").
func (c QoSClass) String() string {
	switch c {
	case QoSGold:
		return "gold"
	case QoSBatch:
		return "batch"
	default:
		return "standard"
	}
}

// ParseQoSClass parses a wire name; the empty string is Standard so callers
// can pass an optional field through unchecked.
func ParseQoSClass(s string) (QoSClass, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "standard":
		return QoSStandard, nil
	case "gold":
		return QoSGold, nil
	case "batch":
		return QoSBatch, nil
	}
	return QoSStandard, fmt.Errorf("serve: unknown QoS class %q (want gold, standard or batch)", s)
}

// QoSPolicy is one class's scheduling contract.
type QoSPolicy struct {
	// LatencyBudget is the end-to-end budget a batched predict of this class
	// carries: the batch leader flushes early once the oldest rider's budget,
	// minus the estimated engine time, nears exhaustion — so a rider never
	// spends its whole budget lingering for batch mates. <= 0 disables the
	// deadline (the plain arrival-relative linger still applies).
	LatencyBudget time.Duration
	// QuotaRPS is the per-tenant token refill rate, in samples per second;
	// this is where class weighting lives (gold refills fastest). A tenant
	// whose bucket is empty is shed with ErrOverQuota once the server's
	// global predict queue passes the shed watermark. <= 0 means unlimited.
	QuotaRPS float64
	// QuotaBurst is the bucket capacity in samples (how far a tenant may
	// briefly exceed QuotaRPS); <= 0 defaults to QuotaRPS/4, floored at 8.
	QuotaBurst float64
}

// withDefaults fills a policy's unset fields from the class default.
func (p QoSPolicy) withDefaults(def QoSPolicy) QoSPolicy {
	if p.LatencyBudget <= 0 {
		p.LatencyBudget = def.LatencyBudget
	}
	if p.QuotaRPS == 0 {
		p.QuotaRPS = def.QuotaRPS
	}
	if p.QuotaBurst <= 0 {
		p.QuotaBurst = p.QuotaRPS / 4
		if p.QuotaBurst < 8 {
			p.QuotaBurst = 8
		}
	}
	return p
}

// QoSOptions configures the load-shaping layer (Options.QoS).
type QoSOptions struct {
	// Disabled turns the whole layer off: no per-tenant quotas, no deadline
	// flushes, every tenant effectively Standard. The batcher still flushes
	// relative to the oldest rider's arrival (that is a correctness fix, not
	// a policy). This is the FIFO baseline cmd/crisp-load compares against.
	Disabled bool
	// Gold, Standard and Batch override the per-class policies; zero fields
	// take the class defaults (DefaultQoSPolicy).
	Gold, Standard, Batch QoSPolicy
	// ShedWatermark is the fraction of GlobalQueue at which over-quota
	// tenants start being shed (outside (0,1]: 0.5). Below the watermark an
	// over-quota tenant is still admitted — quotas only bite under pressure.
	ShedWatermark float64
	// GlobalQueue is the server-wide queued-sample count the watermark is a
	// fraction of (<= 0: 4 × Options.MaxQueue). It is a soft pressure
	// signal, not an admission bound — per-tenant MaxQueue still hard-limits
	// each queue.
	GlobalQueue int
}

// DefaultQoSPolicy returns the built-in policy for a class: gold gets the
// tightest deadline and the fattest quota, batch the loosest of both.
func DefaultQoSPolicy(c QoSClass) QoSPolicy {
	switch c {
	case QoSGold:
		return QoSPolicy{LatencyBudget: 10 * time.Millisecond, QuotaRPS: 400, QuotaBurst: 100}
	case QoSBatch:
		return QoSPolicy{LatencyBudget: 250 * time.Millisecond, QuotaRPS: 100, QuotaBurst: 200}
	default:
		return QoSPolicy{LatencyBudget: 40 * time.Millisecond, QuotaRPS: 200, QuotaBurst: 50}
	}
}

// qosRuntime is the resolved, immutable scheduling policy a Server derives
// from QoSOptions at construction.
type qosRuntime struct {
	disabled bool
	policies [NumQoSClasses]QoSPolicy
	shedAt   int // queued-sample watermark above which over-quota tenants shed
}

func newQoSRuntime(o QoSOptions, maxQueue int) qosRuntime {
	rt := qosRuntime{disabled: o.Disabled}
	rt.policies[QoSGold] = o.Gold.withDefaults(DefaultQoSPolicy(QoSGold))
	rt.policies[QoSStandard] = o.Standard.withDefaults(DefaultQoSPolicy(QoSStandard))
	rt.policies[QoSBatch] = o.Batch.withDefaults(DefaultQoSPolicy(QoSBatch))
	global := o.GlobalQueue
	if global <= 0 {
		global = 4 * maxQueue
	}
	wm := o.ShedWatermark
	if wm <= 0 || wm > 1 {
		wm = 0.5
	}
	rt.shedAt = int(wm * float64(global))
	if rt.shedAt < 1 {
		rt.shedAt = 1
	}
	return rt
}

// policy returns the resolved policy for a class (Standard for anything out
// of range, so a corrupted class value degrades, never panics).
func (rt *qosRuntime) policy(c QoSClass) QoSPolicy {
	if c < 0 || int(c) >= NumQoSClasses {
		c = QoSStandard
	}
	return rt.policies[c]
}

// ParseQoSPolicy overlays comma-separated key=value settings onto a policy:
// "budget=5ms,rps=400,burst=100". Shared by the crisp-serve and crisp-load
// flag surfaces.
func ParseQoSPolicy(base QoSPolicy, s string) (QoSPolicy, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return base, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return base, fmt.Errorf("serve: bad QoS setting %q (want key=value)", part)
		}
		switch strings.TrimSpace(k) {
		case "budget":
			d, err := time.ParseDuration(strings.TrimSpace(v))
			if err != nil {
				return base, fmt.Errorf("serve: bad QoS budget %q: %w", v, err)
			}
			base.LatencyBudget = d
		case "rps":
			var f float64
			if _, err := fmt.Sscanf(strings.TrimSpace(v), "%g", &f); err != nil {
				return base, fmt.Errorf("serve: bad QoS rps %q: %w", v, err)
			}
			base.QuotaRPS = f
		case "burst":
			var f float64
			if _, err := fmt.Sscanf(strings.TrimSpace(v), "%g", &f); err != nil {
				return base, fmt.Errorf("serve: bad QoS burst %q: %w", v, err)
			}
			base.QuotaBurst = f
		default:
			return base, fmt.Errorf("serve: unknown QoS setting %q (want budget, rps or burst)", k)
		}
	}
	return base, nil
}

// tokenBucket is one tenant's request quota: refilled at the class
// QuotaRPS, capped at QuotaBurst, charged one token per predicted sample.
// Buckets start full. A failed take leaves the bucket untouched — an
// over-quota request that is admitted anyway (no pressure) rides for free
// rather than driving the balance negative, so recovery is immediate once
// the tenant slows down.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// take refills by elapsed wall time and attempts to spend n tokens,
// reporting whether the bucket covered them. rps <= 0 always admits.
func (tb *tokenBucket) take(n, rps, burst float64, now time.Time) bool {
	if rps <= 0 {
		return true
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.last.IsZero() {
		tb.tokens = burst
	} else {
		tb.tokens += now.Sub(tb.last).Seconds() * rps
		if tb.tokens > burst {
			tb.tokens = burst
		}
	}
	tb.last = now
	if tb.tokens < n {
		return false
	}
	tb.tokens -= n
	return true
}
