package serve

import (
	"runtime"
	"sync"
)

// Lane classifies pool work for priority admission: jobs submitted through
// DoLane are capped per lane at workers-1 concurrent executions, so one
// lane can never occupy every worker — a flood of explicit /personalize
// prunes always leaves a worker for predict-triggered restores, and vice
// versa. Unlaned Do/Map work (snapshots, the experiment runner) is subject
// to no cap.
type Lane int

const (
	// LanePersonalize carries explicit Personalize prunes (the expensive,
	// multi-second jobs).
	LanePersonalize Lane = iota
	// LanePredict carries predict-triggered cache-miss resolution (warm
	// promotions, cold restores, miss prunes) and cluster handoff adopts.
	LanePredict
	laneCount
)

// Pool is a bounded worker pool: a fixed set of goroutines draining an
// unbuffered job channel. Submission blocks until a worker is free, which
// gives natural backpressure — at most Workers() jobs run at once and
// nothing queues without bound. The same pool schedules personalization
// jobs in Server and fans the experiment-suite figures out across
// GOMAXPROCS (exp.RunParallel).
type Pool struct {
	jobs    chan func()
	workers int
	wg      sync.WaitGroup

	// lanes are counting semaphores bounding each lane at workers-1 in
	// flight (1 when the pool has a single worker, where no reservation is
	// possible). A laned job holds its slot across the whole Do — including
	// the wait for a worker — so at most cap(lane) workers ever run that
	// lane and at least one worker stays available to the other lane.
	lanes [laneCount]chan struct{}

	// mu guards closed; submitters hold it shared while handing a job to a
	// worker, so Close cannot close the channel under an in-flight send.
	mu     sync.RWMutex
	closed bool
}

// NewPool starts a pool with the given number of workers; workers <= 0
// means GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: make(chan func()), workers: workers}
	laneCap := workers - 1
	if laneCap < 1 {
		laneCap = 1
	}
	for i := range p.lanes {
		p.lanes[i] = make(chan struct{}, laneCap)
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// submit hands f to a worker, blocking until one accepts it. It reports
// false without running f if the pool is closed.
func (p *Pool) submit(f func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	p.jobs <- f
	return true
}

// Do runs f on a worker and waits for it to complete. On a closed pool f
// runs inline on the caller's goroutine instead — degraded, never dropped.
// Do must not be called from inside a pool job: with every worker blocked
// on a nested Do the pool would deadlock.
func (p *Pool) Do(f func()) {
	done := make(chan struct{})
	if !p.submit(func() {
		defer close(done)
		f()
	}) {
		f()
		return
	}
	<-done
}

// DoLane is Do with priority admission: the job first claims one of its
// lane's workers-1 slots (blocking behind its own lane's backlog, never the
// other lane's), then runs like Do. With two or more workers this
// guarantees starvation-freedom between the lanes: however deep the
// personalize backlog, a predict-triggered job waits behind at most its own
// lane, and there is always a worker the saturated lane cannot hold.
func (p *Pool) DoLane(lane Lane, f func()) {
	sem := p.lanes[lane]
	sem <- struct{}{}
	defer func() { <-sem }()
	p.Do(f)
}

// Map runs f(0..n-1) across the pool and waits for all of them; on a
// closed pool the remaining calls run inline.
func (p *Pool) Map(n int, f func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		if p.submit(func() {
			defer wg.Done()
			f(i)
		}) {
			continue
		}
		f(i)
		wg.Done()
	}
	wg.Wait()
}

// Close stops accepting pool work and waits for in-flight jobs to drain.
// It is idempotent and safe to call concurrently with Do/Map: submissions
// that lose the race run inline on their caller instead of panicking.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
