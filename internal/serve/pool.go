package serve

import (
	"runtime"
	"sync"
)

// Pool is a bounded worker pool: a fixed set of goroutines draining an
// unbuffered job channel. Submission blocks until a worker is free, which
// gives natural backpressure — at most Workers() jobs run at once and
// nothing queues without bound. The same pool schedules personalization
// jobs in Server and fans the experiment-suite figures out across
// GOMAXPROCS (exp.RunParallel).
type Pool struct {
	jobs    chan func()
	workers int
	wg      sync.WaitGroup

	// mu guards closed; submitters hold it shared while handing a job to a
	// worker, so Close cannot close the channel under an in-flight send.
	mu     sync.RWMutex
	closed bool
}

// NewPool starts a pool with the given number of workers; workers <= 0
// means GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: make(chan func()), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// submit hands f to a worker, blocking until one accepts it. It reports
// false without running f if the pool is closed.
func (p *Pool) submit(f func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	p.jobs <- f
	return true
}

// Do runs f on a worker and waits for it to complete. On a closed pool f
// runs inline on the caller's goroutine instead — degraded, never dropped.
// Do must not be called from inside a pool job: with every worker blocked
// on a nested Do the pool would deadlock.
func (p *Pool) Do(f func()) {
	done := make(chan struct{})
	if !p.submit(func() {
		defer close(done)
		f()
	}) {
		f()
		return
	}
	<-done
}

// Map runs f(0..n-1) across the pool and waits for all of them; on a
// closed pool the remaining calls run inline.
func (p *Pool) Map(n int, f func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		if p.submit(func() {
			defer wg.Done()
			f(i)
		}) {
			continue
		}
		f(i)
		wg.Done()
	}
	wg.Wait()
}

// Close stops accepting pool work and waits for in-flight jobs to drain.
// It is idempotent and safe to call concurrently with Do/Map: submissions
// that lose the race run inline on their caller instead of panicking.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
